#!/usr/bin/env bash
# scripts/ci.sh — the repository's tier-1 gate.
#
# Legs, in order (fail-fast):
#   1. gofmt         -- no unformatted files
#   2. go vet        -- stdlib static checks
#   3. go build      -- whole module compiles
#   4. go test       -- full test suite
#   5. go test -race -- the full module under the race detector (-short)
#   6. starlint      -- the project's own analyzers (see cmd/starlint),
#                       strict: stale suppressions/config entries fail
#   7. obs smoke     -- starring -debug-addr end to end: scrape /metrics
#                       (OpenMetrics parse, plus the exposition must
#                       carry labeled series), validate the Perfetto
#                       trace and the NDJSON event log via starmon
#   7b. slo smoke    -- starmon -watch over a replayed series: a rule
#                       engineered to fire must exit 1, a passing
#                       policy must exit 0 (the CI gate contract)
#   8. flight smoke  -- starring past the fault budget must fail AND
#                       auto-dump the flight-recorder bundle; starmon
#                       validates all three artifacts, including the
#                       events-to-trace causal cross-check
#   9. stream smoke  -- starring -stream end to end: embed S_8 with
#                       explicit faults at O(#blocks) memory, save the
#                       chunked stream file, starverify -stream it, and
#                       byte-compare the streamed -print output against
#                       the materialized run's
#   9b. serve smoke  -- starserve end to end: boot the service, drive
#                       the fault-churn load generator against it,
#                       starmon -watch live against the committed SLO
#                       policy (scripts/slo-serve.json) must exit 0;
#                       then a deliberately overloaded server (admission
#                       limit 1) under the same policy must make watch
#                       exit 1, and an injected /chaos 500 must
#                       auto-dump a flight bundle whose -postmortem
#                       render reconstructs the failed request's trace
#  10. bench smoke   -- scripts/bench.sh with -benchtime 1x
#  11. starlint artifact -- starlint -json archived next to the bench
#                       record, so lint state diffs across revisions
#  12. perf gate     -- starbench: validate the bench trajectory, then
#                       compare the fresh record against the baseline
#                       (STARBENCH_BASELINE; defaults to the fresh
#                       record itself, i.e. pipeline-only smoke) at
#                       STARBENCH_THRESHOLD (default 0.30)
#  13. fuzz smoke    -- each fuzz target for a few seconds
#
# Runs from any directory; needs only the Go toolchain. Override the
# fuzz budget with FUZZTIME (default 5s), e.g. FUZZTIME=30s scripts/ci.sh.
# Point STARBENCH_BASELINE at a committed record (e.g. a saved
# BENCH_record.json from the last release) to turn the perf gate into a
# real regression check; without it the leg proves the gate pipeline
# end to end against the run's own numbers.
set -u

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"
failures=0

leg() {
    local name="$1"
    shift
    echo "==> $name: $*"
    local start
    start=$(date +%s)
    if "$@"; then
        echo "    ok ($(($(date +%s) - start))s)"
    else
        echo "    FAIL: $name" >&2
        failures=$((failures + 1))
        return 1
    fi
}

# 1. Formatting: gofmt -l prints offending files; any output is a failure.
gofmt_check() {
    local out
    out=$(gofmt -l .)
    if [ -n "$out" ]; then
        echo "unformatted files:" >&2
        echo "$out" >&2
        return 1
    fi
}

leg "gofmt" gofmt_check || exit 1
leg "vet" go vet ./... || exit 1
leg "build" go build ./... || exit 1
leg "test" go test ./... || exit 1

# Race leg: the full module with -short, which keeps the heavyweight
# campaign tests out and the leg under ~2 minutes (see README "Static
# analysis & CI").
leg "race" go test -short -race ./... || exit 1

leg "starlint" go run ./cmd/starlint -strict-config ./... || exit 1

# Obs smoke: run starring with a live debug server held open, scrape
# its /metrics endpoint, and validate every exported artifact through
# starmon's checkers (OpenMetrics parse, Perfetto trace with at least
# one complete event, NDJSON replay).
obs_smoke() {
    local tmp pid addr i
    tmp=$(mktemp -d)
    go build -o "$tmp/starring" ./cmd/starring || return 1
    go build -o "$tmp/starmon" ./cmd/starmon || return 1

    "$tmp/starring" -n 6 -faults 2 -seed 1 -debug-addr 127.0.0.1:0 \
        -trace-out "$tmp/trace.json" -events-out "$tmp/events.ndjson" \
        -hold 60s >"$tmp/out.log" 2>&1 &
    pid=$!

    # The run announces its ephemeral address, then holds once the
    # artifacts are on disk; poll for both before scraping.
    addr=""
    for i in $(seq 1 300); do
        addr=$(sed -n 's#^debug server listening on http://\([^/]*\)/.*#\1#p' "$tmp/out.log")
        if [ -n "$addr" ] && grep -q '^holding for' "$tmp/out.log"; then
            break
        fi
        addr=""
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "starring never reached its hold phase:" >&2
        cat "$tmp/out.log" >&2
        kill "$pid" 2>/dev/null
        return 1
    fi

    # The exposition must be dimensional: a completed embedding leaves
    # core_embed_completed_total{mode=...,n=...} behind, so -want-label
    # fails the leg if the labeled pipeline ever stops exporting.
    if ! "$tmp/starmon" -check-metrics "http://$addr/metrics" -want-label mode; then
        kill "$pid" 2>/dev/null
        return 1
    fi
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null

    "$tmp/starmon" -check-trace "$tmp/trace.json" || return 1
    "$tmp/starmon" -replay "$tmp/events.ndjson" >/dev/null || return 1
}

leg "obs smoke" obs_smoke || exit 1

# SLO smoke: the starmon -watch exit-code contract over a replayed
# series. The ring dips to 80 mid-series: a floor of 100 must fire
# (exit 1, sticky even though the curve recovers), a floor of 50 plus a
# generous failure-rate rule must hold (exit 0).
slo_smoke() {
    local tmp
    tmp=$(mktemp -d)
    go build -o "$tmp/starmon" ./cmd/starmon || return 1

    cat >"$tmp/series.ndjson" <<'EOF'
{"t_unix_ns":1000000000,"samples":{"sim.ring_length":120,"sim.failures":0}}
{"t_unix_ns":2000000000,"samples":{"sim.ring_length":118,"sim.failures":1}}
{"t_unix_ns":3000000000,"samples":{"sim.ring_length":80,"sim.failures":2}}
{"t_unix_ns":4000000000,"samples":{"sim.ring_length":116,"sim.failures":2}}
EOF
    cat >"$tmp/firing.json" <<'EOF'
{"rules": [
  {"name": "ring-floor", "kind": "threshold",
   "metric": "sim.ring_length", "window_s": 2, "min": 100}
]}
EOF
    cat >"$tmp/passing.json" <<'EOF'
{"rules": [
  {"name": "ring-floor", "kind": "threshold",
   "metric": "sim.ring_length", "window_s": 2, "min": 50},
  {"name": "failure-rate", "kind": "rate",
   "metric": "sim.failures", "window_s": 4, "max_per_s": 5}
]}
EOF

    "$tmp/starmon" -watch -series "$tmp/series.ndjson" -rules "$tmp/firing.json" >"$tmp/firing.log"
    if [ "$?" -ne 1 ]; then
        echo "firing policy should exit 1:" >&2
        cat "$tmp/firing.log" >&2
        return 1
    fi
    grep -q 'FIRING   ring-floor' "$tmp/firing.log" || {
        echo "watch never reported the FIRING transition:" >&2
        cat "$tmp/firing.log" >&2
        return 1
    }
    "$tmp/starmon" -watch -series "$tmp/series.ndjson" -rules "$tmp/passing.json" >"$tmp/passing.log" || {
        echo "passing policy should exit 0:" >&2
        cat "$tmp/passing.log" >&2
        return 1
    }
}

leg "slo smoke" slo_smoke || exit 1

# Flight smoke: drive an embed past the paper's fault budget
# (n=5 tolerates n-3=2 vertex faults; 3 must fail), so the flight
# recorder auto-dumps its post-mortem bundle, then validate the bundle
# through every checker — including the causal cross-check that each
# traced event-log record resolves to a span in the bundle's trace.
flight_smoke() {
    local tmp
    tmp=$(mktemp -d)
    go build -o "$tmp/starring" ./cmd/starring || return 1
    go build -o "$tmp/starmon" ./cmd/starmon || return 1

    if "$tmp/starring" -n 5 -faults 3 -seed 1 \
        -flight-dump "$tmp/flight" >"$tmp/out.log" 2>&1; then
        echo "starring should have failed beyond the fault budget" >&2
        cat "$tmp/out.log" >&2
        return 1
    fi
    if [ ! -f "$tmp/flight/flight-events.ndjson" ]; then
        echo "budget overflow did not auto-dump a flight bundle:" >&2
        cat "$tmp/out.log" >&2
        return 1
    fi

    "$tmp/starmon" -check-events "$tmp/flight/flight-events.ndjson" \
        -trace "$tmp/flight/flight-trace.json" || return 1
    "$tmp/starmon" -check-trace "$tmp/flight/flight-trace.json" || return 1
    "$tmp/starmon" -check-metrics "$tmp/flight/flight-metrics.txt" || return 1
    "$tmp/starmon" -postmortem "$tmp/flight" >/dev/null || return 1
}

leg "flight smoke" flight_smoke || exit 1

# Stream smoke: the ring-cursor pipeline end to end. One S_8 embedding
# (40320 vertices) with explicit faults runs twice — streaming and
# materialized — and must print byte-identical rings; the streamed save
# must pass starverify -stream at the guaranteed minimum length.
stream_smoke() {
    local tmp fv minlen
    tmp=$(mktemp -d)
    go build -o "$tmp/starring" ./cmd/starring || return 1
    go build -o "$tmp/starverify" ./cmd/starverify || return 1

    fv="21345678,31245678,41235678"
    minlen=$((40320 - 2 * 3)) # n! - 2|Fv|

    "$tmp/starring" -n 8 -fv "$fv" -stream -save "$tmp/ring.srs" \
        -print >"$tmp/stream.txt" || return 1
    "$tmp/starring" -n 8 -fv "$fv" -print >"$tmp/materialized.txt" || return 1

    # The summary and save lines differ by design (mode=stream, -save);
    # the rings must not.
    if ! cmp -s <(grep -v -e '^algorithm=' -e '^saved ' "$tmp/stream.txt") \
                <(grep -v -e '^algorithm=' -e '^saved ' "$tmp/materialized.txt"); then
        echo "streamed ring differs from materialized ring" >&2
        return 1
    fi
    "$tmp/starverify" -ring "$tmp/ring.srs" -stream -fv "$fv" -minlen "$minlen" || return 1
}

leg "stream smoke" stream_smoke || exit 1

# Serve smoke: the embedding service end to end, both halves of the
# SLO contract. A healthy server under the fault-churn load must hold
# the committed policy (watch exit 0); a server strangled to one
# admitted request must shed hard enough to fire it (watch exit 1),
# and an injected /chaos 500 must leave a flight bundle in which
# -postmortem reconstructs that request's trace by its client-supplied
# X-Star-Trace id.
serve_smoke() {
    local tmp pid addr i code
    tmp=$(mktemp -d)
    go build -o "$tmp/starserve" ./cmd/starserve || return 1
    go build -o "$tmp/starmon" ./cmd/starmon || return 1

    # --- Healthy half -------------------------------------------------
    "$tmp/starserve" -addr 127.0.0.1:0 -min-n 4 -max-n 6 \
        >"$tmp/serve.log" 2>&1 &
    pid=$!
    addr=""
    for i in $(seq 1 300); do
        addr=$(sed -n 's#^starserve listening on http://\([^ ]*\)$#\1#p' "$tmp/serve.log")
        if [ -n "$addr" ] && grep -q '^pools warm' "$tmp/serve.log"; then
            break
        fi
        addr=""
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "starserve never warmed up:" >&2
        cat "$tmp/serve.log" >&2
        kill "$pid" 2>/dev/null
        return 1
    fi

    # Warm pools must report ready, and the exposition must carry the
    # labeled RED families.
    curl -fsS "http://$addr/readyz" >/dev/null || { kill "$pid"; return 1; }
    "$tmp/starserve" -load -target "http://$addr" -load-n 6 -requests 120 \
        -concurrency 4 -ring-every 9 -seed 1 -out "$tmp/BENCH_serve.json" \
        >/dev/null || { kill "$pid"; return 1; }
    if ! "$tmp/starmon" -check-metrics "http://$addr/metrics" -want-label route; then
        kill "$pid" 2>/dev/null
        return 1
    fi

    # Watch the live server against the committed policy while more
    # churn (repairs in flight) runs in the background: must stay clean.
    local load_pid
    "$tmp/starserve" -load -target "http://$addr" -load-n 6 -requests 400 \
        -concurrency 2 -ring-every 9 -seed 2 >/dev/null 2>&1 &
    load_pid=$!
    "$tmp/starmon" -watch -attach "$addr" -rules scripts/slo-serve.json \
        -interval 1s -frames 4 >"$tmp/watch-ok.log"
    code=$?
    wait "$load_pid" 2>/dev/null
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
    if [ "$code" -ne 0 ]; then
        echo "healthy server violated the SLO policy (exit $code):" >&2
        cat "$tmp/watch-ok.log" >&2
        return 1
    fi

    # --- Overload half ------------------------------------------------
    "$tmp/starserve" -addr 127.0.0.1:0 -min-n 4 -max-n 4 \
        -max-inflight 1 -max-queue 0 -chaos -flight-dump "$tmp/flight" \
        >"$tmp/serve2.log" 2>&1 &
    pid=$!
    addr=""
    for i in $(seq 1 300); do
        addr=$(sed -n 's#^starserve listening on http://\([^ ]*\)$#\1#p' "$tmp/serve2.log")
        if [ -n "$addr" ] && grep -q '^pools warm' "$tmp/serve2.log"; then
            break
        fi
        addr=""
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "overload starserve never warmed up:" >&2
        cat "$tmp/serve2.log" >&2
        kill "$pid" 2>/dev/null
        return 1
    fi

    # Start the watch first and wait for its first scrape, so the shed
    # storm's counter deltas land between two frames it sees.
    local watch_pid
    "$tmp/starmon" -watch -attach "$addr" -rules scripts/slo-serve.json \
        -interval 1s -frames 5 >"$tmp/watch-fire.log" &
    watch_pid=$!
    for i in $(seq 1 100); do
        [ -s "$tmp/watch-fire.log" ] && break
        sleep 0.1
    done

    # 8 workers against one admitted slot: a 429 shed storm, plus
    # injected /chaos 500s riding along.
    "$tmp/starserve" -load -target "http://$addr" -load-n 4 -requests 400 \
        -concurrency 8 -chaos-every 10 -seed 3 >/dev/null 2>&1
    # A directly injected failure with a known trace id: admitted for
    # sure (the storm is over), 500s for sure, and gives -postmortem a
    # specific request to reconstruct.
    curl -sS -H 'X-Star-Trace: 00000000deadbeef' "http://$addr/chaos" >/dev/null

    wait "$watch_pid"
    code=$?
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
    if [ "$code" -ne 1 ]; then
        echo "overloaded server should fire the SLO policy (exit $code):" >&2
        cat "$tmp/watch-fire.log" >&2
        return 1
    fi
    grep -q 'FIRING' "$tmp/watch-fire.log" || {
        echo "watch never reported a FIRING transition:" >&2
        cat "$tmp/watch-fire.log" >&2
        return 1
    }

    # The 5xx auto-dump left a readable bundle; the post-mortem render
    # must reconstruct the injected request under its client trace id.
    # (No -trace causal cross-check here: under a 400-request storm the
    # bundle's event and span rings evict independently, so full causal
    # closure only holds for the bounded flight_smoke scenario above.)
    if [ ! -f "$tmp/flight/flight-events.ndjson" ]; then
        echo "5xx never auto-dumped a flight bundle" >&2
        return 1
    fi
    "$tmp/starmon" -check-events "$tmp/flight/flight-events.ndjson" || return 1
    "$tmp/starmon" -postmortem "$tmp/flight" >"$tmp/postmortem.log" || return 1
    grep -q '00000000deadbeef' "$tmp/postmortem.log" || {
        echo "postmortem lost the injected request's trace:" >&2
        cat "$tmp/postmortem.log" >&2
        return 1
    }
    grep -q 'serve.op.request' "$tmp/postmortem.log" || {
        echo "postmortem carries no serve.op.request span:" >&2
        cat "$tmp/postmortem.log" >&2
        return 1
    }
}

leg "serve smoke" serve_smoke || exit 1

# Bench smoke: one iteration of every benchmark plus the JSON sweep,
# into a throwaway directory — proves the bench pipeline stays runnable.
# The directory is kept for the perf gate below.
BENCH_TMP=$(mktemp -d)
leg "bench smoke" env BENCH_OUT="$BENCH_TMP" BENCHTIME=1x scripts/bench.sh || exit 1

# Starlint artifact: the same findings as a machine-readable archive
# next to BENCH_record.json, so lint state can be diffed across
# revisions. A clean tree writes "[]"; the leg fails on findings or on
# malformed JSON output.
starlint_json() {
    go run ./cmd/starlint -json ./... >"$BENCH_TMP/starlint.json" || return 1
    head -c 1 "$BENCH_TMP/starlint.json" | grep -q '\[' || return 1
}

leg "starlint artifact" starlint_json || exit 1

# Perf gate: validate the trajectory bench.sh appended, then compare
# the fresh record against the baseline. With no STARBENCH_BASELINE the
# record is compared to itself, which still exercises ingestion,
# joining and verdict logic and fails on schema breakage.
perf_gate() {
    local rec="$BENCH_TMP/BENCH_record.json"
    go run ./cmd/starbench -check "$BENCH_TMP/BENCH_trajectory.ndjson" || return 1
    go run ./cmd/starbench -compare -threshold "${STARBENCH_THRESHOLD:-0.30}" \
        "${STARBENCH_BASELINE:-$rec}" "$rec"
}

leg "perf gate" perf_gate || exit 1

# Fuzz smoke: one target per invocation (the go tool's -fuzz accepts a
# single match), a few seconds each. These catch regressions in input
# handling and, for FuzzEmbedRing, in the embedding pipeline itself.
fuzz_smoke() {
    local pkg="$1" target="$2"
    go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
}

leg "fuzz perm/FuzzParse" fuzz_smoke ./internal/perm FuzzParse || exit 1
leg "fuzz perm/FuzzCodeOps" fuzz_smoke ./internal/perm FuzzCodeOps || exit 1
leg "fuzz ringio/FuzzReadBinary" fuzz_smoke ./internal/ringio FuzzReadBinary || exit 1
leg "fuzz ringio/FuzzReadBinaryStream" fuzz_smoke ./internal/ringio FuzzReadBinaryStream || exit 1
leg "fuzz ringio/FuzzReadText" fuzz_smoke ./internal/ringio FuzzReadText || exit 1
leg "fuzz core/FuzzEmbedRing" fuzz_smoke ./internal/core FuzzEmbedRing || exit 1
leg "fuzz serve/FuzzServeRequest" fuzz_smoke ./internal/serve FuzzServeRequest || exit 1

echo "==> ci.sh: all legs passed"
