#!/usr/bin/env bash
# scripts/bench.sh — archive the embedding benchmarks and a quick
# machine-readable sweep.
#
# Writes into BENCH_OUT (default: repo root):
#   BENCH_embed.txt    go test -bench output: BenchmarkEmbedTheorem1,
#                      BenchmarkEmbedScaling, BenchmarkRingCursor (the
#                      streaming emit path, vertices/s), the
#                      BenchmarkObs* instrumentation-overhead suite
#                      (disabled path must stay 0 allocs/op), and the
#                      BenchmarkFamilyWith* labeled-lookup suite next
#                      to the BENCH_obs.json registry dump
#   BENCH_embed.json   starsweep -quick -exp F2 -json: construction time
#                      and output size vs n as {"experiments": [...]}
#   BENCH_repair.txt   go test -bench output: BenchmarkRepair, the
#                      splice-vs-cold sub-benchmarks of the incremental
#                      repair engine
#   BENCH_repair.json  starsweep -exp F7 -maxn 8 -json: repair latency
#                      table; its "splice speedup" column at n=8 is the
#                      acceptance claim (>= 10x over cold embedding)
#   BENCH_obs.json     the F2 sweep's registry dump (phase histograms,
#                      cache counters, worker utilization), for
#                      run-over-run comparison of instrumentation data
#   BENCH_serve.json   starserve -load against a self-hosted server:
#                      per-route (embed/repair/ring) client-observed
#                      p50/p95 latency under the fault-churn workload
#   BENCH_record.json  all of the above normalized into one starbench
#                      record (the input to `starbench -compare`)
#   BENCH_trajectory.ndjson  append-only history: one record line per
#                      bench.sh run, validated with `starbench -check`
#
# BENCHTIME (default 1x) is passed to -benchtime; use e.g.
# BENCHTIME=2s scripts/bench.sh for stable numbers. ci.sh runs this as a
# smoke leg with a throwaway BENCH_OUT, then gates on the record (see
# its perf gate leg).
set -eu

cd "$(dirname "$0")/.."

BENCH_OUT="${BENCH_OUT:-.}"
BENCHTIME="${BENCHTIME:-1x}"
mkdir -p "$BENCH_OUT"

{
    go test -run '^$' -bench 'BenchmarkEmbedTheorem1|BenchmarkEmbedScaling' \
        -benchmem -benchtime "$BENCHTIME" .
    go test -run '^$' -bench 'BenchmarkObs|BenchmarkRingCursor' \
        -benchmem -benchtime "$BENCHTIME" ./internal/core
    # The tracing hot paths: a child span off a live op (exemplar
    # reservoir included) and one structured event-log record; plus the
    # labeled-family lookup suite (live With, pre-resolved handle, and
    # the disabled path, which must stay 0 allocs/op).
    go test -run '^$' -bench 'BenchmarkSpanEnabledWithOp|BenchmarkEventLogRecord|BenchmarkFamilyWith' \
        -benchmem -benchtime "$BENCHTIME" ./internal/obs
} | tee "$BENCH_OUT/BENCH_embed.txt"

go test -run '^$' -bench 'BenchmarkRepair' \
    -benchmem -benchtime "$BENCHTIME" . | tee "$BENCH_OUT/BENCH_repair.txt"

go run ./cmd/starsweep -quick -exp F2 -json \
    -metrics-json "$BENCH_OUT/BENCH_obs.json" > "$BENCH_OUT/BENCH_embed.json"

# F7 needs n=8 for the headline speedup, so it bypasses -quick (which
# caps the sweep at n=7) and trims the seed count instead.
go run ./cmd/starsweep -exp F7 -maxn 8 -seeds 3 -json > "$BENCH_OUT/BENCH_repair.json"

# Service latency under fault churn: starserve boots a private server
# and replays degrading-instance lifecycles against it. Deterministic
# seed, fixed request count — the p50/p95 numbers land in the record
# as serve/<route> metrics.
go run ./cmd/starserve -load -load-n 6 -requests 120 -concurrency 4 \
    -ring-every 9 -seed 1 -out "$BENCH_OUT/BENCH_serve.json" >/dev/null

# Normalize every artifact into one starbench record and append it to
# the run-over-run trajectory, then validate the whole history.
go run ./cmd/starbench -record "$BENCH_OUT/BENCH_record.json" \
    -label "$(git rev-parse --short HEAD 2>/dev/null || date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -append "$BENCH_OUT/BENCH_trajectory.ndjson" \
    "$BENCH_OUT/BENCH_embed.txt" "$BENCH_OUT/BENCH_embed.json" \
    "$BENCH_OUT/BENCH_repair.txt" "$BENCH_OUT/BENCH_repair.json" \
    "$BENCH_OUT/BENCH_obs.json" "$BENCH_OUT/BENCH_serve.json"
go run ./cmd/starbench -check "$BENCH_OUT/BENCH_trajectory.ndjson"

echo "bench artifacts written to $BENCH_OUT/BENCH_embed.{txt,json}, $BENCH_OUT/BENCH_repair.{txt,json}, $BENCH_OUT/BENCH_obs.json, $BENCH_OUT/BENCH_serve.json and $BENCH_OUT/BENCH_record.json (trajectory: $BENCH_OUT/BENCH_trajectory.ndjson)"
