package repro_test

import (
	"testing"

	repro "repro"
)

// TestPublicAPIQuickstart mirrors the doc-comment quick start.
func TestPublicAPIQuickstart(t *testing.T) {
	fs := repro.NewFaultSet(7)
	if err := fs.AddVertexString("2134567"); err != nil {
		t.Fatal(err)
	}
	res, err := repro.EmbedRing(7, fs, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != repro.Factorial(7)-2 {
		t.Fatalf("ring length %d", res.Len())
	}
	if err := repro.VerifyRing(repro.NewGraph(7), res.Ring, fs, res.Len()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIVertexHelpers(t *testing.T) {
	v, err := repro.ParseVertex("321")
	if err != nil {
		t.Fatal(err)
	}
	if got := repro.FormatVertex(v, 3); got != "321" {
		t.Fatalf("roundtrip %q", got)
	}
	if _, err := repro.ParseVertex("3x1"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	fs := repro.NewFaultSet(6)
	fs.AddVertexString("214356")
	fs.AddVertexString("215346")

	p, err := repro.EmbedRing(6, fs, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := repro.EmbedRingTseng(6, fs, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() <= len(q.Ring)-1 && p.Len() < p.Guarantee {
		t.Fatal("paper result under guarantee")
	}
	l, err := repro.EmbedRingClustered(6, fs, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Ring) < l.Guarantee {
		t.Fatal("clustered result under guarantee")
	}
}

func TestPublicAPIBounds(t *testing.T) {
	fs := repro.NewFaultSet(5)
	fs.AddVertexString("12345")
	fs.AddVertexString("12453")
	if got := repro.RingUpperBound(5, fs); got != 116 {
		t.Fatalf("upper bound %d", got)
	}
	if repro.MaxFaults(5) != 2 || repro.Factorial(5) != 120 {
		t.Fatal("constants wrong")
	}
}

func TestPublicAPIBudgetError(t *testing.T) {
	fs := repro.NewFaultSet(5)
	for _, s := range []string{"21345", "31245", "41325"} {
		fs.AddVertexString(s)
	}
	_, err := repro.EmbedRing(5, fs, repro.Options{})
	if err == nil {
		t.Fatal("over-budget embedding accepted")
	}
	res, err := repro.EmbedRing(5, fs, repro.Options{BestEffort: true})
	if err != nil {
		t.Fatalf("best effort failed: %v", err)
	}
	if res.Guaranteed {
		t.Fatal("best-effort result claims guarantee")
	}
}
