// Benchmarks regenerating the evaluation of DESIGN.md's experiment
// index: one benchmark per table/series (T1-T6, F1-F5, F7; the A1 ablation
// benchmarks live next to the code they measure, in internal/pathsearch
// and internal/core). Run with
//
//	go test -bench=. -benchmem
//
// Custom metrics attach the scientific payload to the timing: ring
// length, guarantee and ceiling per operation. The same sweeps, at
// tabular resolution, are produced by cmd/starsweep.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	repro "repro"
	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pathsearch"
	"repro/internal/perm"
	"repro/internal/sim"
)

// BenchmarkEmbedTheorem1 (T1): the paper's algorithm at the full fault
// budget across dimensions and distributions.
func BenchmarkEmbedTheorem1(b *testing.B) {
	for n := 5; n <= 8; n++ {
		k := faults.MaxTolerated(n)
		for _, dist := range []string{"uniform", "samePartite"} {
			b.Run(fmt.Sprintf("n=%d/Fv=%d/%s", n, k, dist), func(b *testing.B) {
				rng := rand.New(rand.NewSource(int64(n)))
				var fs *faults.Set
				if dist == "uniform" {
					fs = faults.RandomVertices(n, k, rng)
				} else {
					fs = faults.SamePartiteVertices(n, k, 0, rng)
				}
				var lastLen int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Embed(n, fs, core.Config{})
					if err != nil {
						b.Fatal(err)
					}
					lastLen = res.Len()
				}
				b.ReportMetric(float64(lastLen), "ringlen")
				b.ReportMetric(float64(perm.Factorial(n)-2*k), "guarantee")
			})
		}
	}
}

// BenchmarkOptimalityCertification (T2): exhaustive longest-cycle
// search over every single-fault placement in S4, certifying the 22
// ceiling the paper's bound rests on.
func BenchmarkOptimalityCertification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for f := 0; f < pathsearch.BlockOrder; f++ {
			_, l := pathsearch.Canon.LongestCycleAvoiding(1<<uint(f), nil)
			if l != 22 {
				b.Fatalf("fault %d: longest cycle %d, want 22", f, l)
			}
		}
	}
	b.ReportMetric(22, "ceiling")
}

// BenchmarkEmbedVsTseng (T3): both algorithms on identical fault sets;
// the ringlen metrics expose the 2|Fv| measured gap.
func BenchmarkEmbedVsTseng(b *testing.B) {
	for n := 5; n <= 7; n++ {
		k := faults.MaxTolerated(n)
		rng := rand.New(rand.NewSource(int64(n) * 17))
		fs := faults.RandomVertices(n, k, rng)
		b.Run(fmt.Sprintf("paper/n=%d/Fv=%d", n, k), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			b.ReportMetric(float64(l), "ringlen")
		})
		b.Run(fmt.Sprintf("tseng/n=%d/Fv=%d", n, k), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := baseline.Tseng(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = len(res.Ring)
			}
			b.ReportMetric(float64(l), "ringlen")
		})
	}
}

// BenchmarkEmbedClustered (T4): the clustered regime on both sides of
// the m! = 2|Fv| crossover.
func BenchmarkEmbedClustered(b *testing.B) {
	n := 7
	for _, tc := range []struct {
		m, k int
	}{{2, 2}, {3, 4}, {4, 4}} {
		rng := rand.New(rand.NewSource(int64(tc.m*10 + tc.k)))
		fs, _, err := faults.ClusteredVertices(n, tc.k, tc.m, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("paper/m=%d/Fv=%d", tc.m, tc.k), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			b.ReportMetric(float64(l), "ringlen")
		})
		b.Run(fmt.Sprintf("latifi/m=%d/Fv=%d", tc.m, tc.k), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := baseline.Latifi(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = len(res.Ring)
			}
			b.ReportMetric(float64(l), "ringlen")
		})
	}
}

// BenchmarkEmbedEdgeFaults (T5): Hamiltonian embeddings under the edge
// fault budget.
func BenchmarkEmbedEdgeFaults(b *testing.B) {
	for n := 5; n <= 8; n++ {
		k := faults.MaxTolerated(n)
		rng := rand.New(rand.NewSource(int64(n) * 29))
		fs := faults.RandomEdges(n, k, rng)
		b.Run(fmt.Sprintf("n=%d/Fe=%d", n, k), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			if l != perm.Factorial(n) {
				b.Fatalf("length %d, want Hamiltonian %d", l, perm.Factorial(n))
			}
			b.ReportMetric(float64(l), "ringlen")
		})
	}
}

// BenchmarkEmbedMixed (T6): the concluding-remark extension, splitting
// the budget between vertex and edge faults.
func BenchmarkEmbedMixed(b *testing.B) {
	n := 7
	budget := faults.MaxTolerated(n)
	for kv := 0; kv <= budget; kv += 2 {
		ke := budget - kv
		rng := rand.New(rand.NewSource(int64(kv) + 3))
		fs := faults.Mixed(n, kv, ke, rng)
		b.Run(fmt.Sprintf("n=%d/Fv=%d/Fe=%d", n, kv, ke), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			b.ReportMetric(float64(l), "ringlen")
			b.ReportMetric(float64(perm.Factorial(n)-2*kv), "guarantee")
		})
	}
}

// BenchmarkSeriesLengthVsFaults (F1): the headline series at n=7, one
// sub-benchmark per fault count.
func BenchmarkSeriesLengthVsFaults(b *testing.B) {
	n := 7
	for k := 0; k <= faults.MaxTolerated(n); k++ {
		rng := rand.New(rand.NewSource(int64(k) * 7))
		fs := faults.RandomVertices(n, k, rng)
		b.Run(fmt.Sprintf("n=%d/Fv=%d", n, k), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			b.ReportMetric(float64(l), "ringlen")
			b.ReportMetric(float64(check.BipartiteUpperBound(n, fs)), "ceiling")
		})
	}
}

// BenchmarkEmbedScaling (F2): construction cost versus dimension at the
// full fault budget; ns/op against n! output entries shows the
// near-linear scaling.
func BenchmarkEmbedScaling(b *testing.B) {
	for n := 5; n <= 9; n++ {
		k := faults.MaxTolerated(n)
		rng := rand.New(rand.NewSource(int64(n)))
		fs := faults.RandomVertices(n, k, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			b.ReportMetric(float64(l), "ringlen")
		})
	}
}

// BenchmarkParityMix (F3): the construction under fault sets split
// across the bipartition; the ceiling metric exposes the beyond-worst-
// case gap.
func BenchmarkParityMix(b *testing.B) {
	n := 7
	k := faults.MaxTolerated(n)
	for j := 0; j <= k; j++ {
		rng := rand.New(rand.NewSource(int64(j) * 13))
		fs := faults.NewSet(n)
		for fs.NumVertices() < j {
			v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
			if v.Parity(n) == 0 {
				fs.AddVertex(v)
			}
		}
		for fs.NumVertices() < k {
			v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
			if v.Parity(n) == 1 {
				fs.AddVertex(v)
			}
		}
		b.Run(fmt.Sprintf("even=%d/odd=%d", j, k-j), func(b *testing.B) {
			var l int
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			b.ReportMetric(float64(l), "ringlen")
			b.ReportMetric(float64(check.BipartiteUpperBound(n, fs)), "ceiling")
		})
	}
}

// BenchmarkVerify measures the independent checker on a full-size ring,
// since every embedding pays for one verification pass.
func BenchmarkVerify(b *testing.B) {
	n := 8
	res, err := core.Embed(n, nil, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	g := repro.NewGraph(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := check.Ring(g, res.Ring, nil, res.Len()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Len()), "ringlen")
}

// BenchmarkEmbedPath (F4): the longest s-t path extension across
// endpoint parities.
func BenchmarkEmbedPath(b *testing.B) {
	n := 7
	k := faults.MaxTolerated(n)
	rng := rand.New(rand.NewSource(61))
	fs := faults.RandomVertices(n, k, rng)
	var s, tOpp, tSame perm.Code
	for {
		s = perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
		if !fs.HasVertex(s) {
			break
		}
	}
	pick := func(parity int) perm.Code {
		for {
			v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
			if v != s && !fs.HasVertex(v) && v.Parity(n) == parity {
				return v
			}
		}
	}
	tOpp = pick(1 - s.Parity(n))
	tSame = pick(s.Parity(n))

	b.Run("oppositeParity", func(b *testing.B) {
		var l int
		for i := 0; i < b.N; i++ {
			res, err := core.EmbedPath(n, fs, s, tOpp, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			l = res.Len()
		}
		b.ReportMetric(float64(l), "pathlen")
	})
	b.Run("sameParity", func(b *testing.B) {
		var l int
		for i := 0; i < b.N; i++ {
			res, err := core.EmbedPath(n, fs, s, tSame, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			l = res.Len()
		}
		b.ReportMetric(float64(l), "pathlen")
	})
}

// BenchmarkRepair (F7): the incremental repair engine. The splice
// sub-benchmarks time Plan.Repair on a fault that the fast path can
// absorb (one 24-vertex block re-routed and spliced in place); the cold
// sub-benchmarks time a from-scratch Embed of a single-fault set at the
// same dimension. scripts/bench.sh archives both; the acceptance claim
// is splice beating cold by at least 10x at n=8.
func BenchmarkRepair(b *testing.B) {
	for n := 6; n <= 8; n++ {
		b.Run(fmt.Sprintf("splice/n=%d", n), func(b *testing.B) {
			e, err := core.NewEmbedder(n, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			p, err := e.Embed(nil)
			if err != nil {
				b.Fatal(err)
			}
			budget := faults.MaxTolerated(n)
			used := 0
			rng := rand.New(rand.NewSource(int64(n) * 41))
			victim := func() perm.Code {
				// Rejection-sample an on-ring vertex the fast path accepts;
				// fresh plans always have spliceable blocks.
				for {
					v := p.RingAt(rng.Intn(p.RingLen()))
					if p.CanSplice(v) {
						return v
					}
				}
			}
			v := victim()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := p.Repair(v)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Outcome != core.RepairSplice {
					b.Fatalf("iteration %d: outcome %v, want splice", i, rep.Outcome)
				}
				used++
				if used == budget {
					// Budget exhausted: start over with a fresh plan,
					// outside the timer.
					b.StopTimer()
					p, err = e.Embed(nil)
					if err != nil {
						b.Fatal(err)
					}
					used = 0
					v = victim()
					b.StartTimer()
					continue
				}
				b.StopTimer()
				v = victim()
				b.StartTimer()
			}
			b.ReportMetric(float64(p.RingLen()), "ringlen")
		})
		b.Run(fmt.Sprintf("cold/n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n) * 43))
			fs := faults.RandomVertices(n, 1, rng)
			var l int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				l = res.Len()
			}
			b.ReportMetric(float64(l), "ringlen")
		})
	}
}

// BenchmarkCampaign (F5): one full failure campaign on the simulator
// per iteration.
func BenchmarkCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := sim.RunCampaign(sim.CampaignConfig{
			Machine:     sim.Config{N: 6, HopCost: 1, ReembedCostPerBlock: 4, Embed: core.Config{BestEffort: true}},
			Failures:    5,
			LapsBetween: 2,
			Seed:        9,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*rep.Availability, "availability%")
			b.ReportMetric(float64(rep.FinalRing), "ringlen")
		}
	}
}
