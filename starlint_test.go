package repro_test

import (
	"os/exec"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// End-to-end coverage of the starlint driver: exit status, one-line
// diagnostic format, and a clean pass over the repository itself.
// These tests spawn the go tool and are skipped under -short.

// runStarlint executes the driver and returns combined output plus the
// exit code (go run forwards the child's exit status).
func runStarlint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/starlint"}, args...)...)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run ./cmd/starlint %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), exitErr.ExitCode()
}

// TestStarlintFindsSeededViolations runs each analyzer over its fixture
// package and checks the exit status and the "file:line: [name]"
// diagnostic line format.
func TestStarlintFindsSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	for _, name := range []string{"permalias", "globalrand", "nakedpanic", "uncheckederr", "factsize", "walltime", "metricname", "hotalloc", "maporder", "goroleak"} {
		t.Run(name, func(t *testing.T) {
			out, code := runStarlint(t, "-analyzers", name, "./internal/analysis/testdata/src/"+name)
			if code != 1 {
				t.Fatalf("want exit 1 on seeded violations, got %d:\n%s", code, out)
			}
			lineRE := regexp.MustCompile(`(?m)^\S+fixture\.go:\d+: \[` + name + `\] .`)
			if !lineRE.MatchString(out) {
				t.Errorf("no %q diagnostic in driver format:\n%s", name, out)
			}
			if !strings.Contains(out, "starlint: ") || !strings.Contains(out, "finding(s)") {
				t.Errorf("missing findings summary line:\n%s", out)
			}
		})
	}
}

// TestStarlintCleanRepo asserts the repository's own tree lints clean
// under all ten analyzers with strict config — the same gate
// scripts/ci.sh enforces. Cleanliness under hotalloc is load-bearing:
// it proves the annotated hot paths (Plan.spliceSegment, S4.lookup and
// signature, the obs metric primitives, the core instr counters) are
// transitively allocation-free on the real module, not just in
// fixtures.
func TestStarlintCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out, code := runStarlint(t, "-strict-config", "./...")
	if code != 0 {
		t.Fatalf("repository does not lint clean (exit %d):\n%s", code, out)
	}
}

// TestStarlintHotpathsEnforced asserts the real module actually has
// hotalloc-enforced functions: the hotalloc-only run must consume the
// .starlint hotpath entries (none may go stale) and still pass. A
// refactor that renamed or deleted an annotated hot path without
// updating the config would fail here.
func TestStarlintHotpathsEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out, code := runStarlint(t, "-strict-config", "-analyzers", "hotalloc", "./...")
	if code != 0 {
		t.Fatalf("hotalloc gate failed (exit %d):\n%s", code, out)
	}
	if strings.Contains(out, "stale hotpath entry") {
		t.Fatalf("stale hotpath entries:\n%s", out)
	}
}

// TestStarlintJSON runs the driver with -json over a seeded fixture and
// round-trips the output through analysis.ReadJSON, checking the
// machine-readable fields carry what the text format carries.
func TestStarlintJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	cmd := exec.Command("go", "run", "./cmd/starlint", "-json",
		"-analyzers", "hotalloc", "./internal/analysis/testdata/src/hotalloc")
	cmd.Dir = repoRoot(t)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	exitErr, ok := err.(*exec.ExitError)
	if !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("want exit 1 on seeded violations, got %v\nstderr: %s", err, stderr.String())
	}
	diags, err := analysis.ReadJSON(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("ReadJSON on driver output: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("driver emitted an empty JSON array for a seeded fixture")
	}
	for _, d := range diags {
		if d.Analyzer != "hotalloc" {
			t.Errorf("unexpected analyzer %q in JSON output", d.Analyzer)
		}
		if d.Pos.Filename == "" || d.Pos.Line == 0 || d.Message == "" {
			t.Errorf("JSON diagnostic missing position or message: %+v", d)
		}
		if d.Symbol == "" {
			t.Errorf("JSON diagnostic missing attributed symbol: %+v", d)
		}
	}
	// The clean subset must emit a parseable empty array, not nothing.
	cmd = exec.Command("go", "run", "./cmd/starlint", "-json", "-analyzers", "hotalloc", "./internal/perm")
	cmd.Dir = repoRoot(t)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("clean -json run failed: %v", err)
	}
	if diags, err := analysis.ReadJSON(strings.NewReader(string(out))); err != nil || len(diags) != 0 {
		t.Errorf("clean run: want empty JSON array, got %q (err %v)", out, err)
	}
}

// TestStarlintListAndSubset covers the -list flag and rejection of an
// unknown analyzer name.
func TestStarlintListAndSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out, code := runStarlint(t, "-list")
	if code != 0 {
		t.Fatalf("-list failed (exit %d):\n%s", code, out)
	}
	for _, name := range []string{"permalias", "globalrand", "nakedpanic", "uncheckederr", "factsize", "walltime", "metricname", "hotalloc", "maporder", "goroleak"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
	out, code = runStarlint(t, "-analyzers", "nosuch", "./internal/perm")
	if code == 0 {
		t.Fatalf("unknown analyzer accepted:\n%s", out)
	}
}
