package repro_test

import (
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// End-to-end coverage of the starlint driver: exit status, one-line
// diagnostic format, and a clean pass over the repository itself.
// These tests spawn the go tool and are skipped under -short.

// runStarlint executes the driver and returns combined output plus the
// exit code (go run forwards the child's exit status).
func runStarlint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/starlint"}, args...)...)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run ./cmd/starlint %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), exitErr.ExitCode()
}

// TestStarlintFindsSeededViolations runs each analyzer over its fixture
// package and checks the exit status and the "file:line: [name]"
// diagnostic line format.
func TestStarlintFindsSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	for _, name := range []string{"permalias", "globalrand", "nakedpanic", "uncheckederr", "factsize", "walltime", "metricname"} {
		t.Run(name, func(t *testing.T) {
			out, code := runStarlint(t, "-analyzers", name, "./internal/analysis/testdata/src/"+name)
			if code != 1 {
				t.Fatalf("want exit 1 on seeded violations, got %d:\n%s", code, out)
			}
			lineRE := regexp.MustCompile(`(?m)^\S+fixture\.go:\d+: \[` + name + `\] .`)
			if !lineRE.MatchString(out) {
				t.Errorf("no %q diagnostic in driver format:\n%s", name, out)
			}
			if !strings.Contains(out, "starlint: ") || !strings.Contains(out, "finding(s)") {
				t.Errorf("missing findings summary line:\n%s", out)
			}
		})
	}
}

// TestStarlintCleanRepo asserts the repository's own tree lints clean —
// the same gate scripts/ci.sh enforces.
func TestStarlintCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out, code := runStarlint(t, "./...")
	if code != 0 {
		t.Fatalf("repository does not lint clean (exit %d):\n%s", code, out)
	}
}

// TestStarlintListAndSubset covers the -list flag and rejection of an
// unknown analyzer name.
func TestStarlintListAndSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out, code := runStarlint(t, "-list")
	if code != 0 {
		t.Fatalf("-list failed (exit %d):\n%s", code, out)
	}
	for _, name := range []string{"permalias", "globalrand", "nakedpanic", "uncheckederr", "factsize", "walltime", "metricname"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
	out, code = runStarlint(t, "-analyzers", "nosuch", "./internal/perm")
	if code == 0 {
		t.Fatalf("unknown analyzer accepted:\n%s", out)
	}
}
