// Resilience drill: a long-running simulated campaign on a star-graph
// multiprocessor. The machine circulates work over its embedded ring
// while processors fail at scheduled points; each failure is repaired
// online — most through the incremental splice fast path (one 24-vertex
// block re-routed in place), the rest by a full re-embedding — and the
// run ends with an availability report: uptime vs repair downtime, ring
// capacity over time, and the exact 2-slot cost per failure the paper
// proves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func main() {
	const n = 6
	m, err := sim.New(sim.Config{
		N:                   n,
		HopCost:             1,
		ReembedCostPerBlock: 4, // recomputing a block's route costs ~4 hops
		Embed:               core.Config{BestEffort: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	fmt.Printf("campaign on S_%d: %d processors, fault budget %d (then best effort)\n\n",
		n, 720, faults.MaxTolerated(n))
	fmt.Printf("%-8s %-10s %-8s %-12s %-8s %-12s\n", "event", "clock", "ring", "guarantee", "repair", "note")
	fmt.Printf("%-8s %-10d %-8d %-12d %-8s %-12s\n", "boot", m.Clock(), m.RingLength(), m.GuaranteedLength(), "embed", "")

	// Alternate work phases and failures; two failures beyond budget.
	for k := 1; k <= faults.MaxTolerated(n)+2; k++ {
		if err := m.Circulate(2); err != nil {
			log.Fatal(err)
		}
		before := m.Stats()
		victim := m.Ring()[rng.Intn(m.RingLength())]
		if err := m.FailVertex(victim); err != nil {
			log.Fatal(err)
		}
		after := m.Stats()
		repair := "avoided"
		switch {
		case after.Splices > before.Splices:
			repair = "splice"
		case after.Reembeds > before.Reembeds:
			repair = "rebuild"
		}
		note := ""
		if g := m.GuaranteedLength(); g == 0 {
			note = "best effort"
		} else if m.RingLength() == g {
			note = "= n!-2|Fv|"
		}
		fmt.Printf("%-8s %-10d %-8d %-12d %-8s %-12s\n",
			fmt.Sprintf("fail %d", k), m.Clock(), m.RingLength(), m.GuaranteedLength(), repair, note)
	}
	if err := m.Circulate(2); err != nil {
		log.Fatal(err)
	}

	st := m.Stats()
	total := st.Uptime + st.Downtime
	fmt.Printf("\ncampaign summary\n")
	fmt.Printf("  laps completed:     %d (%d hops)\n", st.Laps, st.Hops)
	fmt.Printf("  failures handled:   %d (%d splices, %d full re-embeddings, %d hit the token holder)\n",
		m.Faults(), st.Splices, st.Reembeds, st.TokenLost)
	fmt.Printf("  availability:       %.2f%% (%d uptime / %d downtime ticks)\n",
		100*float64(st.Uptime)/float64(total), st.Uptime, st.Downtime)
	fmt.Printf("  ring capacity path: %v\n", st.RingLengths)
	fmt.Println("\nwithin the fault budget every failure cost exactly 2 ring slots,")
	fmt.Println("and splice repairs paid for one re-routed block instead of all 30 —")
	fmt.Println("the bipartite-optimal loss that the paper proves achievable.")
}
