// Token-ring all-reduce on a faulty star graph: the embedded ring is
// used as an actual communication schedule. Every healthy processor
// holds one datum; a token circulates along the embedded ring
// accumulating the global sum, then circulates once more broadcasting
// it. The simulation executes hop by hop over real star-graph edges
// (each hop re-checked against adjacency), demonstrating that the
// embedding is directly usable as a virtual ring interconnect: the
// round-trip takes exactly ring-length hops regardless of which
// processors have failed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	repro "repro"
)

// processor models one node of the machine.
type processor struct {
	datum int
	sum   int // filled by the broadcast pass
}

func main() {
	const n = 6
	g := repro.NewGraph(n)
	rng := rand.New(rand.NewSource(9))

	// Fail three processors.
	fs := repro.NewFaultSet(n)
	for _, v := range []string{"214365", "345126", "654321"} {
		if err := fs.AddVertexString(v); err != nil {
			log.Fatal(err)
		}
	}

	res, err := repro.EmbedRing(n, fs, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual ring over S_%d: %d of %d processors participate (%d failed)\n",
		n, res.Len(), g.Order(), fs.NumVertices())

	// Give every participating processor a random datum.
	nodes := make(map[repro.Vertex]*processor, res.Len())
	expected := 0
	for _, v := range res.Ring {
		d := rng.Intn(1000)
		nodes[v] = &processor{datum: d}
		expected += d
	}

	// Pass 1: accumulate. The token moves along ring edges only; every
	// hop is validated against the physical topology.
	hops := 0
	token := 0
	for i, v := range res.Ring {
		token += nodes[v].datum
		next := res.Ring[(i+1)%res.Len()]
		if !g.Adjacent(v, next) {
			log.Fatalf("hop %d: %s -> %s is not a physical link",
				i, repro.FormatVertex(v, n), repro.FormatVertex(next, n))
		}
		hops++
	}
	if token != expected {
		log.Fatalf("reduce produced %d, want %d", token, expected)
	}

	// Pass 2: broadcast the total.
	for _, v := range res.Ring {
		nodes[v].sum = token
		hops++
	}
	for v, p := range nodes {
		if p.sum != expected {
			log.Fatalf("processor %s missed the broadcast", repro.FormatVertex(v, n))
		}
	}

	fmt.Printf("all-reduce complete: sum=%d in %d hops (2 ring laps)\n", token, hops)
	fmt.Printf("per-lap latency: %d hops — the minimum possible for %d participants\n",
		res.Len(), res.Len())
}
