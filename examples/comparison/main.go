// Comparison: all three embedding algorithms on identical fault sets,
// showing the guarantee landscape the paper's evaluation claims —
// the paper's n!-2|Fv| dominates Tseng's n!-4|Fv| everywhere, while
// against the clustered bound n!-m! there is a genuine crossover at
// m! = 2|Fv|: excising a tightly packed cluster is cheaper than paying
// 2 per fault, but as soon as faults spread (m grows) the clustered
// bound collapses.
package main

import (
	"fmt"
	"log"
	"math/rand"

	repro "repro"
	"repro/internal/faults"
)

func main() {
	const n = 7
	rng := rand.New(rand.NewSource(3))

	fmt.Printf("S_%d, comparing on identical fault sets (lengths are measured, not just bounds)\n\n", n)
	fmt.Printf("%-28s %-6s %-8s %-8s %-8s %-10s\n",
		"fault set", "|Fv|", "paper", "tseng", "latifi", "winner")

	type scenario struct {
		name string
		fs   *repro.FaultSet
	}
	scenarios := []scenario{}

	// Spread faults: the paper's home turf.
	scenarios = append(scenarios,
		scenario{"4 spread faults", faults.RandomVertices(n, 4, rng)})

	// Clustered faults: two in one S_2 (an adjacent pair): m! = 2 <
	// 2|Fv| = 4, so excising the cluster beats paying 2 per fault.
	if fs, _, err := faults.ClusteredVertices(n, 2, 2, rng); err == nil {
		scenarios = append(scenarios, scenario{"2 faults in one S_2", fs})
	}

	// Clustered faults: four packed into one S_3: still dense enough
	// (3! = 6 < 2|Fv| = 8) for the clustered bound to win, but only
	// barely; a fifth spread fault would flip it.
	if fs, _, err := faults.ClusteredVertices(n, 4, 3, rng); err == nil {
		scenarios = append(scenarios, scenario{"4 faults in one S_3", fs})
	}

	for _, sc := range scenarios {
		p, err := repro.EmbedRing(n, sc.fs, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		t, err := repro.EmbedRingTseng(n, sc.fs, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		lat := "n/a"
		latLen := -1
		if l, err := repro.EmbedRingClustered(n, sc.fs, repro.Options{}); err == nil {
			lat = fmt.Sprint(len(l.Ring))
			latLen = len(l.Ring)
		}
		winner := "paper"
		if latLen > p.Len() {
			winner = "latifi"
		} else if latLen == p.Len() {
			winner = "tie"
		}
		fmt.Printf("%-28s %-6d %-8d %-8d %-8s %-10s\n",
			sc.name, sc.fs.NumVertices(), p.Len(), len(t.Ring), lat, winner)
	}

	fmt.Println("\npaper - tseng = 2|Fv| always; paper - latifi = 2|Fv| - m! flips sign at 2|Fv| = m!.")
}
