// Fault-tolerance drill: processors of a star-graph multiprocessor fail
// one by one, and after every failure the ring interconnect is
// re-embedded around the survivors. The drill shows the paper's
// guarantee tracking reality — each failure costs exactly two ring
// slots — until the fault budget n-3 is exhausted, after which the
// library degrades to best-effort embeddings.
//
// This is the scenario the paper's introduction motivates: a
// ring-structured computation (pipelines, token protocols, systolic
// loops) that must keep running as processors die.
package main

import (
	"fmt"
	"log"
	"math/rand"

	repro "repro"
)

func main() {
	const n = 7
	rng := rand.New(rand.NewSource(42))
	g := repro.NewGraph(n)
	fmt.Printf("multiprocessor: S_%d, %d processors, fault budget %d\n\n",
		n, g.Order(), repro.MaxFaults(n))

	fs := repro.NewFaultSet(n)
	fmt.Printf("%-7s %-10s %-10s %-11s %-9s\n", "faults", "ring", "guarantee", "ceiling", "mode")

	embedOnce := func(label string) {
		opts := repro.Options{}
		mode := "strict"
		if fs.NumVertices() > repro.MaxFaults(n) {
			opts.BestEffort = true
			mode = "best-effort"
		}
		res, err := repro.EmbedRing(n, fs, opts)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		guar := "-"
		if res.Guaranteed {
			guar = fmt.Sprint(res.Guarantee)
		}
		fmt.Printf("%-7d %-10d %-10s %-11d %-9s\n",
			fs.NumVertices(), res.Len(), guar, res.UpperBound, mode)
	}

	embedOnce("initial")
	// Fail processors one at a time, two beyond the formal budget.
	for i := 0; i < repro.MaxFaults(n)+2; i++ {
		for {
			v, err := repro.ParseVertex(randomVertexString(n, rng))
			if err != nil {
				log.Fatal(err)
			}
			if !fs.HasVertex(v) {
				fs.AddVertex(v)
				break
			}
		}
		embedOnce(fmt.Sprintf("failure %d", i+1))
	}

	fmt.Println("\nEach failure within budget shrinks the ring by exactly 2 —")
	fmt.Println("the optimal loss, since the star graph is bipartite with equal sides.")
}

// randomVertexString draws a uniform permutation of 1..n in the paper's
// string notation.
func randomVertexString(n int, rng *rand.Rand) string {
	digits := []byte("123456789abcdefg")[:n]
	rng.Shuffle(n, func(i, j int) { digits[i], digits[j] = digits[j], digits[i] })
	return string(digits)
}
