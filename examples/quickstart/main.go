// Quickstart: embed a longest ring into a star graph with vertex
// faults and verify it — the paper's Theorem 1 in ten lines.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	const n = 6 // S_6: 720 processors, each a permutation of 1..6

	// Mark three processors faulty (the budget for S_6 is n-3 = 3).
	fs := repro.NewFaultSet(n)
	for _, v := range []string{"213456", "312456", "456123"} {
		if err := fs.AddVertexString(v); err != nil {
			log.Fatal(err)
		}
	}

	// Embed: the ring is guaranteed to have n! - 2|Fv| = 714 vertices.
	res, err := repro.EmbedRing(n, fs, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("S_%d with %d faulty vertices\n", n, fs.NumVertices())
	fmt.Printf("ring length: %d (guarantee %d, bipartite ceiling %d)\n",
		res.Len(), res.Guarantee, res.UpperBound)
	fmt.Printf("first five hops: ")
	for i := 0; i < 5; i++ {
		fmt.Printf("%s ", repro.FormatVertex(res.Ring[i], n))
	}
	fmt.Println("...")

	// The result was already verified internally; verify once more by
	// hand to show the checker API.
	if err := repro.VerifyRing(repro.NewGraph(n), res.Ring, fs, res.Guarantee); err != nil {
		log.Fatal(err)
	}
	fmt.Println("independent verification: ok")
}
