// Scheduler hand-off: compute an embedding once, persist it in the
// compact binary format, and later re-load and re-verify it against the
// live fault set before use — the workflow of a job scheduler that maps
// ring-structured jobs onto a star-graph machine and must not trust
// stale embeddings.
package main

import (
	"bytes"
	"fmt"
	"log"

	repro "repro"
)

func main() {
	const n = 7
	fs := repro.NewFaultSet(n)
	for _, v := range []string{"2134567", "3124567"} {
		if err := fs.AddVertexString(v); err != nil {
			log.Fatal(err)
		}
	}

	// Compute and persist.
	res, err := repro.EmbedRing(n, fs, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var store bytes.Buffer // stands in for a file or an RPC payload
	if err := repro.SaveRing(&store, n, res.Ring); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed ring of %d vertices; serialized to %d bytes (%.2f B/vertex)\n",
		res.Len(), store.Len(), float64(store.Len())/float64(res.Len()))

	// Later: load and re-verify against the CURRENT fault set.
	gotN, ring, err := repro.LoadRing(bytes.NewReader(store.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyRing(repro.NewGraph(gotN), ring, fs, res.Guarantee); err != nil {
		log.Fatal(err)
	}
	fmt.Println("reloaded embedding verified against the live fault set: ok")

	// A new failure invalidates the stored embedding; verification
	// catches it and the scheduler recomputes.
	if err := fs.AddVertex(ring[10]); err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyRing(repro.NewGraph(gotN), ring, fs, 0); err != nil {
		fmt.Printf("stale embedding rejected after new failure: %v\n", err)
	} else {
		log.Fatal("stale embedding was not rejected")
	}
	fresh, err := repro.EmbedRing(n, fs, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recomputed ring: %d vertices (was %d)\n", fresh.Len(), res.Len())
}
