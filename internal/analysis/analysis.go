// Package analysis implements starlint, the project's zero-dependency
// static-analysis layer (stdlib go/parser + go/ast + go/types only).
//
// The repository's value is a *verified* reproduction of the paper's
// n!-2|Fv| ring embedding, and its worst failure mode is silent
// invariant corruption: an aliased permutation slice or a
// nondeterministic RNG draw produces a ring that still "looks" valid
// until internal/check or a fuzzer happens to hit it. The analyzers in
// this package machine-enforce the disciplines that keep the harness
// reproducible and the theorem refactor-safe:
//
//	permalias    - a Perm/int-slice parameter is stored or mutated
//	               without an explicit Clone/copy
//	globalrand   - math/rand package-level functions in internal code
//	               (fault campaigns must draw from a plumbed *rand.Rand)
//	nakedpanic   - panic outside Must*/must* invariant helpers in
//	               library packages
//	uncheckederr - discarded error returns in library packages
//	factsize     - unguarded int arithmetic on factorial-scale values
//	walltime     - time.Now/time.Since outside internal/obs (timing
//	               must flow through an injectable obs.Clock)
//	metricname   - metric-name literals off the pkg.group.name dotted
//	               convention, or duplicating a package constant
//
// Diagnostics print as "file:line: [name] message". A finding can be
// suppressed at its site with a reasoned comment,
//
//	//starlint:ignore <name> <reason>
//
// placed on the offending line or the line directly above it, or
// allowlisted for a whole symbol through the driver config (see
// Config). cmd/starlint is the command-line driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PermAlias,
		GlobalRand,
		NakedPanic,
		UncheckedErr,
		FactSize,
		WallTime,
		MetricName,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, locatable and attributable.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Symbol is the qualified symbol the finding is attributed to (the
	// offending callee, or the enclosing function), used by the config
	// allowlist. It may be empty when no symbol is identifiable.
	Symbol  string
	Message string
}

// String renders the diagnostic in the driver's one-line format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos, attributed to symbol.
func (p *Pass) Reportf(pos token.Pos, symbol, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Symbol:   symbol,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InternalPackage reports whether the package under analysis is part of
// the module's library surface: the module root package or anything
// under internal/. The cmd/ and examples/ trees are deliberately out of
// scope for the discipline analyzers (a main package may panic and may
// keep a seeded local RNG).
func (p *Pass) InternalPackage() bool {
	path := p.Pkg.ImportPath
	mod := p.Pkg.Module
	return path == mod || strings.HasPrefix(path, mod+"/internal/")
}

// EnclosingFuncName returns the name of the innermost function
// declaration containing pos ("" at package scope). The second result
// is the qualified symbol for the allowlist.
func (p *Pass) EnclosingFuncName(pos token.Pos) (name, symbol string) {
	for _, f := range p.Pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				return fd.Name.Name, FuncSymbol(obj)
			}
			return fd.Name.Name, p.Pkg.ImportPath + "." + fd.Name.Name
		}
	}
	return "", ""
}

// FuncSymbol renders a function or method object as the qualified form
// the allowlist matches against: "pkg/path.Func" for functions and
// "pkg/path.(*Type).Method" / "pkg/path.(Type).Method" for methods.
func FuncSymbol(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if pt, isPtr := t.(*types.Pointer); isPtr {
			t = pt.Elem()
			ptr = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return fmt.Sprintf("%s.(%s%s).%s", named.Obj().Pkg().Path(), ptr, named.Obj().Name(), fn.Name())
		}
		return fn.FullName()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// Run executes the analyzers over the packages, drops suppressed and
// allowlisted findings, and returns the rest sorted by position. cfg
// may be nil. Malformed suppression comments are themselves reported
// under the pseudo-analyzer name "starlint".
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg, analyzers, &diags)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
		for _, d := range raw {
			if sup.covers(d) {
				continue
			}
			if cfg.Allowed(d.Analyzer, d.Symbol) {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppressions maps file -> line -> analyzer names suppressed there.
type suppressions map[string]map[int]map[string]bool

// covers reports whether d is suppressed by an ignore comment on its
// own line or the line directly above.
func (s suppressions) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[line]; names != nil && (names[d.Analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//starlint:ignore"

// collectSuppressions scans every comment of the package for
// //starlint:ignore directives, reporting malformed ones.
func collectSuppressions(pkg *Package, analyzers []*Analyzer, diags *[]Diagnostic) suppressions {
	known := make(map[string]bool, len(analyzers)+1)
	known["all"] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "starlint",
						Message:  "malformed suppression: want //starlint:ignore <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "starlint",
						Message:  fmt.Sprintf("suppression names unknown analyzer %q", name),
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[pos.Line] = names
				}
				names[name] = true
			}
		}
	}
	return sup
}
