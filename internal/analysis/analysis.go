// Package analysis implements starlint, the project's zero-dependency
// static-analysis layer (stdlib go/parser + go/ast + go/types only).
//
// The repository's value is a *verified* reproduction of the paper's
// n!-2|Fv| ring embedding, and its worst failure mode is silent
// invariant corruption: an aliased permutation slice or a
// nondeterministic RNG draw produces a ring that still "looks" valid
// until internal/check or a fuzzer happens to hit it. The analyzers in
// this package machine-enforce the disciplines that keep the harness
// reproducible and the theorem refactor-safe:
//
//	permalias    - a Perm/int-slice parameter is stored or mutated
//	               without an explicit Clone/copy
//	globalrand   - math/rand package-level functions in internal code
//	               (fault campaigns must draw from a plumbed *rand.Rand)
//	nakedpanic   - panic outside Must*/must* invariant helpers in
//	               library packages
//	uncheckederr - discarded error returns in library packages
//	factsize     - unguarded int arithmetic on factorial-scale values
//	walltime     - time.Now/time.Since outside internal/obs (timing
//	               must flow through an injectable obs.Clock)
//	metricname   - metric-name literals off the pkg.group.name dotted
//	               convention, or duplicating a package constant
//	hotalloc     - allocations reachable from //starlint:hotpath
//	               functions, transitively through module call chains
//	maporder     - map iteration order reaching a returned slice,
//	               emitted metric/event, or written output unsorted
//	goroleak     - goroutine launches with no join path (WaitGroup,
//	               channel receive, or stop closure)
//
// The last three are built on the facts engine (see facts.go): one
// shared traversal computes per-function facts — allocates, joins,
// mapOrdered — and propagates them bottom-up across the package graph
// in dependency order, so the analyzers reason transitively through
// call chains instead of one function body at a time. All analyzers
// share one flattened AST per package (see Inspector).
//
// Diagnostics print as "file:line: [name] message". A finding can be
// suppressed at its site with a reasoned comment,
//
//	//starlint:ignore <name> <reason>
//
// placed on the offending line or the line directly above it, or
// allowlisted for a whole symbol through the driver config (see
// Config). Suppressions and allow entries that no longer match any
// finding are themselves reported as stale, so the ignore surface
// cannot silently outgrow the problems it was written for.
// cmd/starlint is the command-line driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PermAlias,
		GlobalRand,
		NakedPanic,
		UncheckedErr,
		FactSize,
		WallTime,
		MetricName,
		HotAlloc,
		MapOrder,
		GoroLeak,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, locatable and attributable.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Symbol is the qualified symbol the finding is attributed to (the
	// offending callee, or the enclosing function), used by the config
	// allowlist. It may be empty when no symbol is identifiable.
	Symbol  string
	Message string
}

// String renders the diagnostic in the driver's one-line format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package, plus the
// run-wide facts and driver config shared by every pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *Facts  // per-function facts over every loaded package; may be nil
	Cfg      *Config // driver config (hotpath entries); may be nil

	diags *[]Diagnostic
}

// Reportf records a finding at pos, attributed to symbol.
func (p *Pass) Reportf(pos token.Pos, symbol, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Symbol:   symbol,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InternalPackage reports whether the package under analysis is part of
// the module's library surface: the module root package or anything
// under internal/. The cmd/ and examples/ trees are deliberately out of
// scope for the discipline analyzers (a main package may panic and may
// keep a seeded local RNG).
func (p *Pass) InternalPackage() bool {
	path := p.Pkg.ImportPath
	mod := p.Pkg.Module
	return path == mod || strings.HasPrefix(path, mod+"/internal/")
}

// EnclosingFuncName returns the name of the innermost function
// declaration containing pos ("" at package scope). The second result
// is the qualified symbol for the allowlist.
func (p *Pass) EnclosingFuncName(pos token.Pos) (name, symbol string) {
	for _, f := range p.Pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				return fd.Name.Name, FuncSymbol(obj)
			}
			return fd.Name.Name, p.Pkg.ImportPath + "." + fd.Name.Name
		}
	}
	return "", ""
}

// FuncSymbol renders a function or method object as the qualified form
// the allowlist matches against: "pkg/path.Func" for functions and
// "pkg/path.(*Type).Method" / "pkg/path.(Type).Method" for methods.
func FuncSymbol(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if pt, isPtr := t.(*types.Pointer); isPtr {
			t = pt.Elem()
			ptr = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return fmt.Sprintf("%s.(%s%s).%s", named.Obj().Pkg().Path(), ptr, named.Obj().Name(), fn.Name())
		}
		return fn.FullName()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// Run executes the analyzers over the packages, drops suppressed and
// allowlisted findings, and returns the rest sorted by position. cfg
// may be nil. Malformed suppression comments are themselves reported
// under the pseudo-analyzer name "starlint".
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	diags, _ := Analyze(pkgs, analyzers, cfg)
	return diags
}

// A Stale records a suppression comment or config entry that no longer
// suppresses anything. The ignore surface is part of the lint contract:
// an entry that outlived its finding hides future regressions at the
// same site.
type Stale struct {
	Pos     token.Position
	Message string
}

// String renders the stale entry in the driver's one-line format.
func (s Stale) String() string {
	return fmt.Sprintf("%s:%d: %s", s.Pos.Filename, s.Pos.Line, s.Message)
}

// Analyze is Run plus stale detection: it additionally returns every
// //starlint:ignore comment and config entry that suppressed nothing
// during this run. Staleness is only judged for entries whose analyzer
// actually ran ("all" entries need the full suite), so a subset run
// never produces false stale reports.
func Analyze(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, []Stale) {
	runset := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		runset[a.Name] = true
	}
	fullSuite := len(runset) == len(All())
	cfg.resetUsage()

	facts := ComputeFacts(pkgs)
	var diags []Diagnostic
	var stale []Stale
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg, &diags)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Facts: facts, Cfg: cfg, diags: &raw}
			a.Run(pass)
		}
		for _, d := range raw {
			if sup.covers(d) {
				continue
			}
			if cfg.Allowed(d.Analyzer, d.Symbol) {
				continue
			}
			diags = append(diags, d)
		}
		stale = append(stale, sup.stale(runset, fullSuite)...)
	}
	stale = append(stale, cfg.stale(runset)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return diags, stale
}

// A supEntry is one //starlint:ignore comment: the analyzer names it
// suppresses and which of them it actually suppressed this run.
type supEntry struct {
	pos   token.Position
	names map[string]bool
	used  map[string]bool
}

// suppressions maps file -> comment line -> the entry there.
type suppressions map[string]map[int]*supEntry

// covers reports whether d is suppressed by an ignore comment on its
// own line or the line directly above, marking the matched name used.
func (s suppressions) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		e := lines[line]
		if e == nil {
			continue
		}
		if e.names[d.Analyzer] {
			e.used[d.Analyzer] = true
			return true
		}
		if e.names["all"] {
			e.used["all"] = true
			return true
		}
	}
	return false
}

// stale returns the entries that suppressed nothing, restricted to
// analyzers that ran (an "all" entry is judged only under the full
// suite, when any finding it could cover had a chance to fire). The
// result is sorted: the receiver is a map and maporder holds this
// package to its own standard.
func (s suppressions) stale(runset map[string]bool, fullSuite bool) []Stale {
	var out []Stale
	for _, lines := range s {
		for _, e := range lines {
			for name := range e.names {
				if name == "all" {
					if fullSuite && len(e.used) == 0 {
						out = append(out, Stale{Pos: e.pos,
							Message: "stale suppression: this //starlint:ignore all comment no longer suppresses anything"})
					}
					continue
				}
				if runset[name] && !e.used[name] && !e.used["all"] {
					out = append(out, Stale{Pos: e.pos,
						Message: fmt.Sprintf("stale suppression: no %s finding here; remove the //starlint:ignore comment", name)})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//starlint:ignore"

// collectSuppressions scans every comment of the package for
// //starlint:ignore directives, reporting malformed ones. Names are
// validated against the full suite, not the run subset: a comment for
// an analyzer that simply is not running this time is inert, not
// malformed.
func collectSuppressions(pkg *Package, diags *[]Diagnostic) suppressions {
	known := make(map[string]bool, len(All())+1)
	known["all"] = true
	for _, a := range All() {
		known[a.Name] = true
	}
	sup := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "starlint",
						Message:  "malformed suppression: want //starlint:ignore <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "starlint",
						Message:  fmt.Sprintf("suppression names unknown analyzer %q", name),
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*supEntry)
					sup[pos.Filename] = byLine
				}
				e := byLine[pos.Line]
				if e == nil {
					e = &supEntry{pos: pos, names: make(map[string]bool), used: make(map[string]bool)}
					byLine[pos.Line] = e
				}
				e.names[name] = true
			}
		}
	}
	return sup
}
