package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedPanic flags panic calls in library packages outside sanctioned
// invariant helpers. A reachable-on-bad-input panic should be a
// returned error; a true invariant violation should fail through a
// helper whose name carries the Must/must convention (MustParse,
// mustf, mustInvariant, ...), which both documents the contract and
// gives this analyzer its allowlist. Test files are never analyzed.
var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "panic outside Must*/must* invariant helpers in library packages",
	Run:  runNakedPanic,
}

func runNakedPanic(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		if strings.HasPrefix(fd.Name.Name, "Must") || strings.HasPrefix(fd.Name.Name, "must") {
			return
		}
		_, symbol := pass.EnclosingFuncName(fd.Name.Pos())
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a shadowed local named panic
			}
			pass.Reportf(call.Pos(), symbol,
				"naked panic in %s; return an error for reachable inputs or move the check into a must* invariant helper",
				fd.Name.Name)
			return true
		})
	})
}
