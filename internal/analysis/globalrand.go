package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags uses of math/rand package-level functions (Intn,
// Shuffle, Perm, Seed, ...) in library packages. The fault-campaign
// harness is only adversarially reproducible if every random draw comes
// from a plumbed, seeded *rand.Rand; the process-global source makes a
// campaign unrepeatable and its counterexamples unreportable.
// Constructing local generators (rand.New, rand.NewSource, rand.NewZipf)
// is the sanctioned pattern and is not flagged.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "math/rand package-level functions in internal code",
	Run:  runGlobalRand,
}

// globalRandAllowed lists the math/rand package-level functions that
// build explicit generators rather than drawing from the global one.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	pass.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // a *rand.Rand method: exactly what we want
		}
		if globalRandAllowed[fn.Name()] {
			return
		}
		pass.Reportf(sel.Pos(), path+"."+fn.Name(),
			"%s.%s draws from the process-global RNG; plumb a seeded *rand.Rand instead",
			path, fn.Name())
	})
}
