package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak flags goroutine launches with no join path. A `go` statement
// is accepted when any of the following holds:
//
//   - the goroutine's own body contains a channel receive or a range
//     over a channel (it terminates itself when its input closes or a
//     done channel fires);
//   - the goroutine runs a module function whose joins fact is set
//     (the callee owns its termination, e.g. a worker ranging over a
//     work channel);
//   - the launching function reaches a join construct — a
//     WaitGroup.Wait, a channel receive, or a returned stop closure
//     that performs one — directly or through a module callee, per the
//     facts engine.
//
// Anything else is a goroutine that outlives the call that spawned it
// with nothing waiting on it: in a measurement harness that is a slow
// leak that skews every long fault campaign after the first. Test
// files are not analyzed; cmd/ packages are out of scope as usual.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutine launches with no WaitGroup/channel/context join path",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		fact := pass.Facts.FuncFact(fn)
		name, symbol := pass.EnclosingFuncName(fd.Name.Pos())
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineSelfTerminates(pass, gs) {
				return true
			}
			if fact.Joins() {
				return true
			}
			pass.Reportf(gs.Pos(), symbol,
				"goroutine launched in %s has no join path: no WaitGroup.Wait, channel receive, or stop closure reaches it, so it outlives the campaign that spawned it",
				name)
			return true
		})
	})
}

// goroutineSelfTerminates reports whether the spawned call owns its own
// termination: a function literal whose body joins (receives on a done
// or work channel), or a module function whose joins fact is set.
func goroutineSelfTerminates(pass *Pass, gs *ast.GoStmt) bool {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return localJoins(pass.Pkg, fun.Body)
	case *ast.Ident:
		if fn, ok := pass.Pkg.Info.Uses[fun].(*types.Func); ok {
			return pass.Facts.FuncFact(fn).Joins()
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return pass.Facts.FuncFact(fn).Joins()
		}
	}
	return false
}
