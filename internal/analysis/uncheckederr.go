package analysis

import (
	"go/ast"
	"go/types"
)

// UncheckedErr flags statement-level calls in library packages whose
// error result is silently discarded. An ignored AddVertex or decoder
// error is exactly how an invalid fault set or ring slips past the
// verifier. Explicit discards (_ = f(), _, _ = g()) remain visible in
// the source and are accepted; deferred and go statements are out of
// scope. Writers that render tables to a caller-supplied io.Writer may
// be allowlisted via the driver config (e.g. "allow uncheckederr
// fmt.Fprintf") instead of checking every print.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "discarded error returns in library packages",
	Run:  runUncheckedErr,
}

var errorType = types.Universe.Lookup("error").Type()

func runUncheckedErr(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	pass.Preorder([]ast.Node{(*ast.ExprStmt)(nil)}, func(n ast.Node) {
		stmt := n.(*ast.ExprStmt)
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := pass.Pkg.Info.Types[call]
		if !ok || !returnsError(tv.Type) {
			return
		}
		symbol, name := calleeSymbol(pass, call)
		pass.Reportf(call.Pos(), symbol,
			"error returned by %s is discarded; handle it or discard explicitly with _ =",
			name)
	})
}

// returnsError reports whether a call result type is or contains error.
func returnsError(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return t != nil && types.Identical(t, errorType)
	}
}

// calleeSymbol resolves the called function to its allowlist symbol and
// a short display name. Calls through function values resolve to the
// value's name only (not allowlistable by package path).
func calleeSymbol(pass *Pass, call *ast.CallExpr) (symbol, name string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", "call"
	}
	if fn, ok := pass.Pkg.Info.Uses[id].(*types.Func); ok {
		return FuncSymbol(fn), fn.Name()
	}
	return "", id.Name
}
