package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked module package.
type Package struct {
	ImportPath string
	Module     string // module path from go.mod
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checking problems. The analyzers still
	// run over a partially checked package, but the driver treats any
	// entry as a load failure.
	TypeErrors []error

	insp *Inspector // lazily built shared traversal (Inspector())
}

// A Loader parses and type-checks packages of one module. It resolves
// module-internal imports from the module tree itself and everything
// else (the standard library) through the stdlib source importer, so
// the whole pipeline needs no dependencies beyond the Go installation.
type Loader struct {
	fset   *token.FileSet
	root   string // module root directory (absolute)
	module string // module path declared in go.mod
	std    types.ImporterFrom
	cache  map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader returns a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    std,
		cache:  make(map[string]*loadEntry),
	}, nil
}

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.root }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.module }

// findModule walks up from dir to the enclosing go.mod and reads its
// module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, readErr := os.ReadFile(filepath.Join(d, "go.mod"))
		if readErr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// LoadModule loads every package in the module: each directory under
// the root that holds at least one non-test .go file, skipping
// testdata, hidden and vendor-style directories.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if names, err := goSources(path); err == nil && len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir. Test files (_test.go) are
// excluded: the analyzers police library code, and external test
// packages would otherwise clash with the primary package.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(importPath, abs)
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", abs, l.root)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirForImport inverts importPathFor for module-internal import paths.
func (l *Loader) dirForImport(path string) (string, bool) {
	if path == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks one package, memoized by import path.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if e, ok := l.cache[importPath]; ok {
		return e.pkg, e.err
	}
	// Reserve the slot to fail fast on import cycles instead of
	// recursing forever.
	l.cache[importPath] = &loadEntry{err: fmt.Errorf("analysis: import cycle through %s", importPath)}

	pkg, err := l.loadUncached(importPath, dir)
	l.cache[importPath] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) loadUncached(importPath, dir string) (*Package, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: importPath,
		Module:     l.module,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns the (possibly incomplete) package even on error;
	// the collected TypeErrors are the authoritative failure signal.
	pkg.Types, _ = conf.Check(importPath, l.fset, files, pkg.Info)
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from the module tree, everything else is delegated to the
// standard library source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir, ok := l.dirForImport(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("analysis: %s: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
