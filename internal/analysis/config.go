package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Config is the driver-level allowlist: findings attributed to an
// allowed symbol are dropped without a per-site suppression comment.
// The format is line-oriented:
//
//	# comment
//	allow <analyzer> <symbol>
//
// where <symbol> is the qualified symbol a diagnostic reports (e.g.
// "fmt.Fprintf" or "repro/internal/faults.(*Set).AddVertex"); a
// trailing '*' matches any suffix. <analyzer> may be "all".
type Config struct {
	allow map[string][]string
}

// ParseConfig reads the allowlist format from r. name is used in error
// messages.
func ParseConfig(r io.Reader, name string) (*Config, error) {
	cfg := &Config{allow: make(map[string][]string)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "allow" {
			return nil, fmt.Errorf("%s:%d: want \"allow <analyzer> <symbol>\", got %q", name, lineNo, line)
		}
		analyzer, symbol := fields[1], fields[2]
		if analyzer != "all" && ByName(analyzer) == nil {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q", name, lineNo, analyzer)
		}
		cfg.allow[analyzer] = append(cfg.allow[analyzer], symbol)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// LoadConfig reads the allowlist from a file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f, path)
}

// Allowed reports whether a diagnostic from the named analyzer,
// attributed to symbol, is allowlisted. A nil Config allows nothing.
func (c *Config) Allowed(analyzer, symbol string) bool {
	if c == nil || symbol == "" {
		return false
	}
	for _, key := range []string{analyzer, "all"} {
		for _, pat := range c.allow[key] {
			if matchSymbol(pat, symbol) {
				return true
			}
		}
	}
	return false
}

// matchSymbol matches pattern against symbol; a trailing '*' matches
// any suffix.
func matchSymbol(pattern, symbol string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(symbol, prefix)
	}
	return pattern == symbol
}
