package analysis

import (
	"bufio"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// Config is the driver-level configuration. The format is
// line-oriented:
//
//	# comment
//	allow <analyzer> <symbol>
//	hotpath <symbol>
//
// An allow entry drops findings attributed to the symbol without a
// per-site suppression comment; <analyzer> may be "all". A hotpath
// entry marks the symbol for hotalloc enforcement without touching its
// source — equivalent to a //starlint:hotpath doc directive. <symbol>
// is the qualified form a diagnostic reports (e.g. "fmt.Fprintf" or
// "repro/internal/faults.(*Set).AddVertex"); a trailing '*' matches
// any suffix.
//
// Every entry tracks whether it did anything during a run, so the
// driver can report entries that have gone stale (see Analyze).
type Config struct {
	name     string
	allows   []*configEntry
	hotpaths []*configEntry
}

// configEntry is one config line; analyzer is empty for hotpath
// entries.
type configEntry struct {
	line     int
	analyzer string
	symbol   string
	used     bool
}

// ParseConfig reads the config format from r. name is used in error
// messages and stale-entry positions.
func ParseConfig(r io.Reader, name string) (*Config, error) {
	cfg := &Config{name: name}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 3 && fields[0] == "allow":
			analyzer, symbol := fields[1], fields[2]
			if analyzer != "all" && ByName(analyzer) == nil {
				return nil, fmt.Errorf("%s:%d: unknown analyzer %q", name, lineNo, analyzer)
			}
			cfg.allows = append(cfg.allows, &configEntry{line: lineNo, analyzer: analyzer, symbol: symbol})
		case len(fields) == 2 && fields[0] == "hotpath":
			cfg.hotpaths = append(cfg.hotpaths, &configEntry{line: lineNo, symbol: fields[1]})
		default:
			return nil, fmt.Errorf("%s:%d: want \"allow <analyzer> <symbol>\" or \"hotpath <symbol>\", got %q", name, lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// LoadConfig reads the config from a file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f, path)
}

// Allowed reports whether a diagnostic from the named analyzer,
// attributed to symbol, is allowlisted; a match marks the entry used.
// A nil Config allows nothing.
func (c *Config) Allowed(analyzer, symbol string) bool {
	if c == nil || symbol == "" {
		return false
	}
	for _, e := range c.allows {
		if e.analyzer != analyzer && e.analyzer != "all" {
			continue
		}
		if matchSymbol(e.symbol, symbol) {
			e.used = true
			return true
		}
	}
	return false
}

// Hotpath reports whether symbol is marked for hotalloc enforcement by
// a config entry; a match marks the entry used. A nil Config marks
// nothing.
func (c *Config) Hotpath(symbol string) bool {
	if c == nil || symbol == "" {
		return false
	}
	for _, e := range c.hotpaths {
		if matchSymbol(e.symbol, symbol) {
			e.used = true
			return true
		}
	}
	return false
}

// resetUsage clears per-run usage marks so one Config can serve
// repeated Analyze calls.
func (c *Config) resetUsage() {
	if c == nil {
		return
	}
	for _, e := range c.allows {
		e.used = false
	}
	for _, e := range c.hotpaths {
		e.used = false
	}
}

// stale returns the config entries that did nothing this run: allow
// entries that suppressed no finding (judged only when their analyzer
// ran; "all" entries only under the full suite) and hotpath entries
// that matched no function (judged only when hotalloc ran).
func (c *Config) stale(runset map[string]bool) []Stale {
	if c == nil {
		return nil
	}
	fullSuite := len(runset) == len(All())
	var out []Stale
	for _, e := range c.allows {
		if e.used {
			continue
		}
		if e.analyzer == "all" && !fullSuite {
			continue
		}
		if e.analyzer != "all" && !runset[e.analyzer] {
			continue
		}
		out = append(out, Stale{
			Pos:     token.Position{Filename: c.name, Line: e.line},
			Message: fmt.Sprintf("stale allow entry: no %s finding is attributed to %q", e.analyzer, e.symbol),
		})
	}
	for _, e := range c.hotpaths {
		if e.used || !runset[HotAlloc.Name] {
			continue
		}
		out = append(out, Stale{
			Pos:     token.Position{Filename: c.name, Line: e.line},
			Message: fmt.Sprintf("stale hotpath entry: no analyzed function matches %q", e.symbol),
		})
	}
	return out
}

// matchSymbol matches pattern against symbol; a trailing '*' matches
// any suffix.
func matchSymbol(pattern, symbol string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(symbol, prefix)
	}
	return pattern == symbol
}
