package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc machine-enforces the repository's allocation-free hot
// paths. A function opts in with a
//
//	//starlint:hotpath
//
// directive in its doc comment, or by being listed in the driver
// config as "hotpath <symbol>". A marked function must be
// *transitively* allocation-free under the facts engine's conservative
// model: no make/new/append, no escaping composite literals, no
// interface boxing, no capturing closures, no string building, no
// go statements, and every call must resolve to a function that is
// itself proven allocation-free (module callees by their facts,
// stdlib callees by a small trusted vocabulary — sync/atomic,
// math/bits, math, mutex lock/unlock). Dynamic calls through
// interfaces or function values cannot be proven and are flagged.
//
// The enforced sites are the per-step ring surgery in Plan.Repair,
// the pathsearch lookup-table hit, and the disabled-observability
// fast path; see ROADMAP.md. The analyzer keeps them honest against
// refactors that would put an allocation on the paper's O(1)-per-step
// repair claim.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocations reachable from //starlint:hotpath functions",
	Run:  runHotAlloc,
}

// hotpathDirective marks a function as a hot path in its doc comment.
const hotpathDirective = "//starlint:hotpath"

func runHotAlloc(pass *Pass) {
	pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		name, symbol := pass.EnclosingFuncName(fd.Name.Pos())
		if !hotpathMarked(pass, fd, symbol) {
			return
		}
		scanAllocs(pass.Pkg, fd.Body, func(pos token.Pos, what string, callee *types.Func) {
			if callee == nil {
				pass.Reportf(pos, symbol, "hotpath function %s allocates: %s", name, what)
				return
			}
			cf := pass.Facts.FuncFact(callee)
			if cf == nil {
				pass.Reportf(pos, symbol,
					"hotpath function %s calls %s, which was not analyzed and cannot be proven allocation-free",
					name, shortFunc(callee))
				return
			}
			if cause := cf.Allocates(); cause != nil {
				pass.Reportf(pos, symbol,
					"hotpath function %s calls %s, which allocates (%s)",
					name, shortFunc(callee), pass.Facts.AllocChainString(callee))
			}
		})
	})
}

// hotpathMarked reports whether fd opts into hotalloc enforcement via
// its doc comment or the driver config.
func hotpathMarked(pass *Pass, fd *ast.FuncDecl, symbol string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
				return true
			}
		}
	}
	return pass.Cfg.Hotpath(symbol)
}
