package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName flags metric-name arguments to obs.Registry's Counter,
// Gauge, Histogram and Span methods that break the repository's naming
// convention: a lowercase dotted path of at least two segments,
// "pkg.group.name" (segments are [a-z][a-z0-9_]*). The README's
// Observability glossary, the OpenMetrics exporter and the expvar
// bridge all assume this shape, and a one-off name silently falls out
// of every dashboard. Dynamically built names ("core.repair." +
// outcome) are allowed when the literal prefix is itself a dotted path
// ending in "."; a literal that duplicates a package-level string
// constant is flagged toward the constant, since two spellings of one
// name drift apart.
// It also guards the labeled-family surface: the CounterVec, GaugeVec
// and HistogramVec constructors get the same name check plus label-key
// validation, and the key positions of Registry.Child and the vec With
// methods must be compile-time lower_snake strings — a dynamic key is a
// cardinality accident waiting to happen (dynamic *values* are fine;
// the runtime cap bounds those).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric-name literals off the pkg.group.name convention",
	Run:  runMetricName,
}

// metricNameRE is the convention for complete names: two or more
// lowercase dotted segments.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// metricPrefixRE covers the trimmed literal prefix of a dynamic name,
// which may be a single segment ("sim." + kind).
var metricPrefixRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// labelKeyRE is the label-key convention: lower_snake, starting with a
// letter, no dots (keys render inside OpenMetrics label clauses, where
// dots are illegal).
var labelKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricMethods are the obs.Registry methods whose first argument is a
// metric name.
var metricMethods = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
	"Span":         true,
	"CounterVec":   true,
	"GaugeVec":     true,
	"HistogramVec": true,
}

// vecMethods are the metricMethods that additionally declare label keys
// in their trailing arguments.
var vecMethods = map[string]bool{
	"CounterVec":   true,
	"GaugeVec":     true,
	"HistogramVec": true,
}

// vecTypes are the labeled-family handle types whose With method takes
// alternating key/value pairs.
var vecTypes = map[string]bool{
	"CounterVec":   true,
	"GaugeVec":     true,
	"HistogramVec": true,
}

func runMetricName(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	consts := packageStringConsts(pass)
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if len(call.Args) == 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		recv := obsReceiverName(pass, fn)
		switch {
		case recv == "Registry" && metricMethods[fn.Name()]:
			checkMetricName(pass, fn.Name(), call.Args[0], consts)
			if vecMethods[fn.Name()] {
				checkLabelKeys(pass, fn.Name(), call, call.Args[1:], false)
			}
		case recv == "Registry" && fn.Name() == "Child":
			checkLabelKeys(pass, "Child", call, call.Args, true)
		case vecTypes[recv] && fn.Name() == "With":
			checkLabelKeys(pass, "With", call, call.Args, true)
		}
	})
}

// packageStringConsts maps the value of every package-level string
// constant with an explicit literal initializer to its name.
func packageStringConsts(pass *Pass) map[string]string {
	consts := map[string]string{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					if v, ok := stringConstOf(pass, lit); ok {
						if _, dup := consts[v]; !dup {
							consts[v] = name.Name
						}
					}
				}
			}
		}
	}
	return consts
}

// obsReceiverName returns the name of fn's receiver type when that
// type is declared in the module's internal/obs package, and ""
// otherwise. It is how the analyzer recognizes Registry and the vec
// handle types without importing obs itself.
func obsReceiverName(pass *Pass, fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.Module+"/internal/obs" {
		return ""
	}
	return obj.Name()
}

// stringConstOf resolves e's compile-time string value, if it has one.
func stringConstOf(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkMetricName validates one name argument. Names that cannot be
// resolved at compile time (a plain variable) are out of scope.
func checkMetricName(pass *Pass, method string, arg ast.Expr, consts map[string]string) {
	_, symbol := pass.EnclosingFuncName(arg.Pos())
	if v, ok := stringConstOf(pass, arg); ok {
		if lit, isLit := arg.(*ast.BasicLit); isLit {
			if name, dup := consts[v]; dup {
				pass.Reportf(lit.Pos(), symbol,
					"%s(%q) duplicates the package constant %s; use the constant so the name cannot drift",
					method, v, name)
				return
			}
		}
		if !metricNameRE.MatchString(v) {
			pass.Reportf(arg.Pos(), symbol,
				"%s(%q): metric names are lowercase dotted paths of two or more segments, like \"pkg.group.name\"",
				method, v)
		}
		return
	}
	be, ok := arg.(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return
	}
	prefix, ok := stringConstOf(pass, be.X)
	if !ok {
		return
	}
	trimmed, dotted := strings.CutSuffix(prefix, ".")
	if !dotted || !metricPrefixRE.MatchString(trimmed) {
		pass.Reportf(be.Pos(), symbol,
			"%s(%q + ...): a dynamic metric name needs a lowercase dotted literal prefix ending in \".\"",
			method, prefix)
	}
}

// checkLabelKeys validates the label-key positions of a vec
// constructor (every arg is a key) or a Child/With call (alternating
// key/value pairs; even indices are keys). Keys must be compile-time
// strings in lower_snake — a dynamic key turns user data into schema,
// and a dotted or mixed-case key dies at the OpenMetrics boundary.
// Values stay out of scope: dynamic values are the whole point of a
// labeled family, and the runtime cardinality cap bounds them. Calls
// that spread a slice (kv...) can't be checked statically and are
// skipped.
func checkLabelKeys(pass *Pass, method string, call *ast.CallExpr, args []ast.Expr, kvPairs bool) {
	if call.Ellipsis.IsValid() {
		return
	}
	_, symbol := pass.EnclosingFuncName(call.Pos())
	if kvPairs && len(args)%2 != 0 {
		pass.Reportf(call.Pos(), symbol,
			"%s with %d label arguments: keys and values must come in pairs",
			method, len(args))
	}
	for i, arg := range args {
		if kvPairs && i%2 != 0 {
			continue // value position
		}
		v, ok := stringConstOf(pass, arg)
		if !ok {
			pass.Reportf(arg.Pos(), symbol,
				"%s: label keys must be compile-time constants (a dynamic key is unbounded cardinality); pass the variable as the value",
				method)
			continue
		}
		if !labelKeyRE.MatchString(v) {
			pass.Reportf(arg.Pos(), symbol,
				"%s(%q): label keys are lower_snake identifiers — no dots, no uppercase",
				method, v)
		}
	}
}
