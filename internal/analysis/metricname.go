package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName flags metric-name arguments to obs.Registry's Counter,
// Gauge, Histogram and Span methods that break the repository's naming
// convention: a lowercase dotted path of at least two segments,
// "pkg.group.name" (segments are [a-z][a-z0-9_]*). The README's
// Observability glossary, the OpenMetrics exporter and the expvar
// bridge all assume this shape, and a one-off name silently falls out
// of every dashboard. Dynamically built names ("core.repair." +
// outcome) are allowed when the literal prefix is itself a dotted path
// ending in "."; a literal that duplicates a package-level string
// constant is flagged toward the constant, since two spellings of one
// name drift apart.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric-name literals off the pkg.group.name convention",
	Run:  runMetricName,
}

// metricNameRE is the convention for complete names: two or more
// lowercase dotted segments.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// metricPrefixRE covers the trimmed literal prefix of a dynamic name,
// which may be a single segment ("sim." + kind).
var metricPrefixRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// metricMethods are the obs.Registry methods whose first argument is a
// metric name.
var metricMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Span":      true,
}

func runMetricName(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	consts := packageStringConsts(pass)
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if len(call.Args) == 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || !isRegistryMetricMethod(pass, fn) {
			return
		}
		checkMetricName(pass, fn.Name(), call.Args[0], consts)
	})
}

// packageStringConsts maps the value of every package-level string
// constant with an explicit literal initializer to its name.
func packageStringConsts(pass *Pass) map[string]string {
	consts := map[string]string{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					if v, ok := stringConstOf(pass, lit); ok {
						if _, dup := consts[v]; !dup {
							consts[v] = name.Name
						}
					}
				}
			}
		}
	}
	return consts
}

// isRegistryMetricMethod reports whether fn is one of the metric
// constructors on the module's *obs.Registry.
func isRegistryMetricMethod(pass *Pass, fn *types.Func) bool {
	if !metricMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		obj.Pkg().Path() == pass.Pkg.Module+"/internal/obs"
}

// stringConstOf resolves e's compile-time string value, if it has one.
func stringConstOf(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkMetricName validates one name argument. Names that cannot be
// resolved at compile time (a plain variable) are out of scope.
func checkMetricName(pass *Pass, method string, arg ast.Expr, consts map[string]string) {
	_, symbol := pass.EnclosingFuncName(arg.Pos())
	if v, ok := stringConstOf(pass, arg); ok {
		if lit, isLit := arg.(*ast.BasicLit); isLit {
			if name, dup := consts[v]; dup {
				pass.Reportf(lit.Pos(), symbol,
					"%s(%q) duplicates the package constant %s; use the constant so the name cannot drift",
					method, v, name)
				return
			}
		}
		if !metricNameRE.MatchString(v) {
			pass.Reportf(arg.Pos(), symbol,
				"%s(%q): metric names are lowercase dotted paths of two or more segments, like \"pkg.group.name\"",
				method, v)
		}
		return
	}
	be, ok := arg.(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return
	}
	prefix, ok := stringConstOf(pass, be.X)
	if !ok {
		return
	}
	trimmed, dotted := strings.CutSuffix(prefix, ".")
	if !dotted || !metricPrefixRE.MatchString(trimmed) {
		pass.Reportf(be.Pos(), symbol,
			"%s(%q + ...): a dynamic metric name needs a lowercase dotted literal prefix ending in \".\"",
			method, prefix)
	}
}
