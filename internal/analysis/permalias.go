package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PermAlias flags the aliasing bug class most likely to corrupt rings:
// a permutation-like slice parameter (perm.Perm, []perm.Code, []int,
// []uint8, ...) that is stored into a struct or package-level variable,
// or mutated through an index assignment, without an explicit
// Clone/copy. Storing the bare parameter shares the caller's backing
// array, so a later in-place swap silently rewrites a ring the caller
// believes is frozen. Assigning a Clone() (or any other call result)
// and building fresh slices are not flagged; copy(dst, src) is the
// sanctioned primitive and is likewise not flagged.
var PermAlias = &Analyzer{
	Name: "permalias",
	Doc:  "permutation slice parameters stored or mutated without Clone/copy",
	Run:  runPermAlias,
}

func runPermAlias(pass *Pass) {
	pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		params := permParams(pass, fd)
		if len(params) == 0 {
			return
		}
		checkPermParams(pass, fd, params)
	})
}

// permParams collects the declared parameter objects of fd (receivers
// excluded: in-place methods own their receiver by convention) whose
// type is permutation-like.
func permParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Pkg.Info.Defs[name]
			if obj != nil && permLike(obj.Type()) {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return nil
	}
	return params
}

// permLike reports whether t is a slice of integer-like elements,
// directly or through a named type (perm.Perm is a named []uint8,
// perm.Code a named uint64, so []perm.Code qualifies too).
func permLike(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := s.Elem().Underlying()
	b, ok := elem.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func checkPermParams(pass *Pass, fd *ast.FuncDecl, params map[types.Object]bool) {
	info := pass.Pkg.Info
	paramOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Uses[id]; obj != nil && params[obj] {
			return obj
		}
		return nil
	}
	_, symbol := pass.EnclosingFuncName(fd.Name.Pos())

	// One report per parameter and kind: a swap like p[i], p[j] = p[j],
	// p[i] is a single finding, not four.
	type finding struct {
		obj  types.Object
		kind string
	}
	seen := make(map[finding]bool)
	reportf := func(obj types.Object, kind string, pos token.Pos, format string, args ...interface{}) {
		if seen[finding{obj, kind}] {
			return
		}
		seen[finding{obj, kind}] = true
		pass.Reportf(pos, symbol, format, args...)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// Mutation: p[i] = x writes through the caller's array.
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if obj := paramOf(idx.X); obj != nil {
						reportf(obj, "mutate", lhs.Pos(),
							"parameter %s (%s) is mutated in place; operate on a Clone or document ownership",
							obj.Name(), obj.Type())
					}
					continue
				}
				// Store: field or package-level variable keeps the bare
				// parameter alive past the call.
				if i >= len(n.Rhs) {
					continue
				}
				obj := paramOf(n.Rhs[i])
				if obj == nil {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					reportf(obj, "store", n.Rhs[i].Pos(),
						"parameter %s (%s) is stored into %s without Clone/copy; the caller's slice is aliased",
						obj.Name(), obj.Type(), exprString(l))
				case *ast.Ident:
					if tgt := info.Uses[l]; tgt != nil && tgt.Parent() == pass.Pkg.Types.Scope() {
						reportf(obj, "store", n.Rhs[i].Pos(),
							"parameter %s (%s) is stored into package variable %s without Clone/copy",
							obj.Name(), obj.Type(), l.Name)
					}
				}
			}
		case *ast.CompositeLit:
			// Store: a bare parameter frozen into a composite literal
			// escapes the call just like a field assignment.
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if obj := paramOf(val); obj != nil {
					reportf(obj, "store", val.Pos(),
						"parameter %s (%s) is stored into a composite literal without Clone/copy",
						obj.Name(), obj.Type())
				}
			}
		}
		return true
	})
}

// exprString renders simple l-value expressions for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expression"
	}
}
