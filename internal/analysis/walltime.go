package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime flags time.Now and time.Since in library packages outside
// internal/obs. Reading the process wall clock directly makes timing
// untestable and threatens the simulator's determinism; internal/obs
// owns the module's single sanctioned time.Now site (obs.Wall) and
// everything else must accept an injectable obs.Clock. Time arithmetic
// (time.Duration math, t.Add, t.Sub) is not flagged — only the two
// clock readers.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now/time.Since outside internal/obs",
	Run:  runWallTime,
}

func runWallTime(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	obsPath := pass.Pkg.Module + "/internal/obs"
	if pass.Pkg.ImportPath == obsPath || strings.HasPrefix(pass.Pkg.ImportPath, obsPath+"/") {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a time.Time/Timer method, not a clock read
			}
			name := fn.Name()
			if name != "Now" && name != "Since" {
				return true
			}
			pass.Reportf(sel.Pos(), "time."+name,
				"time.%s reads the process wall clock; inject an obs.Clock (obs.Wall in production) so timing stays testable and sims deterministic",
				name)
			return true
		})
	}
}
