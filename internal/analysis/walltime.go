package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime flags direct reads of process-global runtime state in
// library packages:
//
//   - time.Now and time.Since outside internal/obs. Reading the
//     process wall clock directly makes timing untestable and
//     threatens the simulator's determinism; internal/obs owns the
//     module's single sanctioned time.Now site (obs.Wall) and
//     everything else must accept an injectable obs.Clock. Time
//     arithmetic (time.Duration math, t.Add, t.Sub) is not flagged —
//     only the two clock readers.
//
//   - runtime.ReadMemStats and runtime/metrics.Read outside
//     internal/obs/prof. ReadMemStats stops the world, and ad-hoc
//     runtime/metrics readers fragment the telemetry story;
//     prof.RuntimeSampler is the one sanctioned reader and publishes
//     the results as registry gauges every consumer shares.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now/time.Since outside internal/obs; runtime stats readers outside internal/obs/prof",
	Run:  runWallTime,
}

func runWallTime(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	obsPath := pass.Pkg.Module + "/internal/obs"
	profPath := obsPath + "/prof"
	inObs := pass.Pkg.ImportPath == obsPath || strings.HasPrefix(pass.Pkg.ImportPath, obsPath+"/")
	inProf := pass.Pkg.ImportPath == profPath
	pass.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // a method, not a package-level reader
		}
		name := fn.Name()
		switch fn.Pkg().Path() {
		case "time":
			if inObs || (name != "Now" && name != "Since") {
				return
			}
			pass.Reportf(sel.Pos(), "time."+name,
				"time.%s reads the process wall clock; inject an obs.Clock (obs.Wall in production) so timing stays testable and sims deterministic",
				name)
		case "runtime":
			if inProf || name != "ReadMemStats" {
				return
			}
			pass.Reportf(sel.Pos(), "runtime.ReadMemStats",
				"runtime.ReadMemStats stops the world on every call; internal/obs/prof owns runtime telemetry — read prof.RuntimeSampler's registry gauges instead")
		case "runtime/metrics":
			if inProf || name != "Read" {
				return
			}
			pass.Reportf(sel.Pos(), "metrics.Read",
				"ad-hoc runtime/metrics.Read fragments runtime telemetry; internal/obs/prof owns the sanctioned reader (prof.RuntimeSampler) and publishes shared gauges")
		}
	})
}
