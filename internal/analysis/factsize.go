package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FactSize flags growing int arithmetic (*, +, <<) on factorial-scale
// quantities: the direct results of perm.Factorial, star.Graph.Order
// and substar.Pattern.Order. n! crosses 32-bit int at n = 13 and int64
// at n = 21, so a product like Factorial(n) * (n-1) silently wraps on
// 32-bit platforms well inside the supported range (MaxN = 16).
// Shrinking operations (-, /, %, comparisons) are safe and not flagged.
// A site whose n is provably bounded should carry a
// //starlint:ignore factsize <bound> suppression stating the bound.
var FactSize = &Analyzer{
	Name: "factsize",
	Doc:  "unguarded int arithmetic on factorial-scale values",
	Run:  runFactSize,
}

func runFactSize(pass *Pass) {
	pass.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		switch be.Op {
		case token.MUL, token.ADD, token.SHL:
		default:
			return
		}
		// One report per expression even when both operands are
		// factorial-scale.
		for _, operand := range []ast.Expr{be.X, be.Y} {
			name := factorialCall(pass, operand)
			if name == "" {
				continue
			}
			_, symbol := pass.EnclosingFuncName(be.Pos())
			pass.Reportf(be.Pos(), symbol,
				"factorial-scale value from %s used in %q without an overflow guard (n! overflows 32-bit int at n=13); bound n and state it in a suppression",
				name, be.Op)
			break
		}
	})
}

// factorialCall reports the display name of a factorial-scale callee
// when e (modulo parentheses) is a direct call to one, else "".
func factorialCall(pass *Pass, e ast.Expr) string {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sym := FuncSymbol(fn)
	for _, known := range factorialScale {
		if strings.HasSuffix(sym, known) {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return ""
}

// factorialScale are the qualified-symbol suffixes of functions whose
// result is of order n! (suffix-matched so the module path prefix does
// not matter).
var factorialScale = []string{
	"internal/perm.Factorial",
	"internal/star.(Graph).Order",
	"internal/substar.(Pattern).Order",
}
