package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the facts engine: a shared bottom-up computation of
// per-function facts that lets analyzers reason *transitively* through
// call chains instead of one function body at a time. Facts are
// computed once per Run over every loaded package, in package
// dependency order, with a fixpoint pass over the call graph so that
// mutual recursion and cross-package cycles of helpers converge:
//
//	allocates   - the function performs a heap allocation (directly or
//	              by calling something that does); carries the earliest
//	              cause in source order for deterministic reporting
//	joins       - the function contains a goroutine join construct
//	              (WaitGroup.Wait, a channel receive or range), itself
//	              or via a module callee
//	mapOrdered  - the function returns a slice whose element order is
//	              derived from map iteration without an intervening sort
//
// hotalloc, goroleak and maporder consume these facts; the allocation
// model is deliberately conservative (it proves absence of allocation
// for straight-line atomic/copy/index code, and assumes the worst for
// dynamic calls and calls that leave the module), because its job is
// to machine-enforce the ROADMAP's allocation-free hot paths, not to
// reproduce the compiler's escape analysis.

// Facts holds the per-function facts of one Run.
type Facts struct {
	module string
	fns    map[*types.Func]*FuncFact
}

// FuncFact is the computed fact set of one declared function.
type FuncFact struct {
	Decl *ast.FuncDecl
	Pkg  *Package

	alloc      *AllocCause
	localAlloc *AllocCause // earliest syntactic cause inside the body, if any
	edges      []callEdge  // module-internal callees, in source order
	joins      bool
	mapOrdered bool
}

// Allocates reports whether the function is known to allocate, with
// its earliest cause. A nil receiver (unknown function) reports an
// unknown cause: absence of facts is never proof of cleanliness.
func (f *FuncFact) Allocates() *AllocCause {
	if f == nil {
		return nil
	}
	return f.alloc
}

// Joins reports whether the function reaches a goroutine join.
func (f *FuncFact) Joins() bool { return f != nil && f.joins }

// MapOrdered reports whether the function returns map-iteration-ordered
// data.
func (f *FuncFact) MapOrdered() bool { return f != nil && f.mapOrdered }

// AllocCause describes why a function allocates: a local site (Callee
// nil) or a call into an allocating module function (Callee set).
type AllocCause struct {
	Pos    token.Position
	What   string
	Callee *types.Func
}

// callEdge is one module-internal call site.
type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

// FuncFact returns the fact set of fn, or nil when fn was not declared
// in any analyzed package.
func (f *Facts) FuncFact(fn *types.Func) *FuncFact {
	if f == nil || fn == nil {
		return nil
	}
	return f.fns[fn.Origin()]
}

// ComputeFacts builds the fact set for the packages, which must share
// one loader (facts flow across package boundaries through the shared
// *types.Func objects). Packages are processed in dependency order —
// imported packages first — so by the time a caller is scanned its
// callees' local facts exist; a worklist then iterates the transitive
// facts to a fixpoint, which handles recursion and same-package cycles.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{fns: make(map[*types.Func]*FuncFact)}
	if len(pkgs) == 0 {
		return f
	}
	f.module = pkgs[0].Module

	// Dependency order: depth-first over module-internal imports,
	// visiting imports before importers, ties broken by import path.
	ordered := dependencyOrder(pkgs)

	// Local pass: syntactic facts and call edges per function.
	type scanned struct {
		fn   *types.Func
		fact *FuncFact
	}
	var all []scanned
	for _, pkg := range ordered {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fact := &FuncFact{Decl: fd, Pkg: pkg}
				scanAllocs(pkg, fd.Body, func(pos token.Pos, what string, callee *types.Func) {
					if callee != nil {
						fact.edges = append(fact.edges, callEdge{pos: pos, callee: callee})
						return
					}
					if fact.localAlloc == nil {
						fact.localAlloc = &AllocCause{Pos: pkg.Fset.Position(pos), What: what}
					}
				})
				fact.alloc = fact.localAlloc
				fact.joins = localJoins(pkg, fd.Body)
				f.fns[fn] = fact
				all = append(all, scanned{fn, fact})
			}
		}
	}

	// Transitive fixpoint. All three facts are monotone (false to true,
	// or an alloc cause moving to an earlier position as more callees
	// turn out to allocate), so repeated re-evaluation converges.
	for changed := true; changed; {
		changed = false
		for _, s := range all {
			fact := s.fact
			// allocates: earliest cause among the local site and calls to
			// allocating module callees.
			best := fact.localAlloc
			for _, e := range fact.edges {
				cf := f.fns[e.callee.Origin()]
				if cf == nil || cf.alloc == nil {
					continue
				}
				pos := fact.Pkg.Fset.Position(e.pos)
				if best == nil || less(pos, best.Pos) {
					best = &AllocCause{Pos: pos, What: "call to " + shortFunc(e.callee), Callee: e.callee}
				}
			}
			if !sameCause(fact.alloc, best) {
				fact.alloc = best
				changed = true
			}
			// joins: local join or any module callee that joins.
			if !fact.joins {
				for _, e := range fact.edges {
					if cf := f.fns[e.callee.Origin()]; cf != nil && cf.joins {
						fact.joins = true
						changed = true
						break
					}
				}
			}
			// mapOrdered: a returned slice ordered by map iteration,
			// directly or through a mapOrdered callee's result.
			if !fact.mapOrdered && returnsSlice(s.fn) {
				if ordered := mapOrderScan(fact.Pkg, f, fact.Decl, nil); ordered {
					fact.mapOrdered = true
					changed = true
				}
			}
		}
	}
	return f
}

// less orders token positions by file, then line, then column.
func less(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func sameCause(a, b *AllocCause) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Pos == b.Pos && a.What == b.What && a.Callee == b.Callee
}

// returnsSlice reports whether fn has at least one slice-typed result.
func returnsSlice(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if _, ok := res.At(i).Type().Underlying().(*types.Slice); ok {
			return true
		}
	}
	return false
}

// dependencyOrder sorts packages so that module-internal imports come
// before their importers (Go forbids import cycles, so this is a DAG),
// with ties broken by import path for determinism.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)
	var out []*Package
	done := make(map[string]bool, len(pkgs))
	var visit func(path string)
	visit = func(path string) {
		if done[path] {
			return
		}
		done[path] = true
		pkg := byPath[path]
		if pkg.Types != nil {
			var imps []string
			for _, imp := range pkg.Types.Imports() {
				if _, inSet := byPath[imp.Path()]; inSet {
					imps = append(imps, imp.Path())
				}
			}
			sort.Strings(imps)
			for _, imp := range imps {
				visit(imp)
			}
		}
		out = append(out, pkg)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// AllocChainString renders why callee allocates, following transitive
// causes a few hops deep: "sig.go:12: make([]uint16)" or
// "via pkg.helper: sig.go:12: make([]uint16)".
func (f *Facts) AllocChainString(callee *types.Func) string {
	var parts []string
	seen := map[*types.Func]bool{}
	for depth := 0; callee != nil && depth < 5; depth++ {
		if seen[callee] {
			parts = append(parts, "recursive")
			break
		}
		seen[callee] = true
		fact := f.FuncFact(callee)
		if fact == nil {
			parts = append(parts, "facts unavailable (package not analyzed); assumed to allocate")
			break
		}
		cause := fact.alloc
		if cause == nil {
			break
		}
		if cause.Callee == nil {
			parts = append(parts, fmt.Sprintf("%s:%d: %s", shortPath(cause.Pos.Filename), cause.Pos.Line, cause.What))
			break
		}
		parts = append(parts, "via "+shortFunc(cause.Callee))
		callee = cause.Callee
	}
	return strings.Join(parts, ", ")
}

// shortFunc renders a function for messages: "pkg.Func" or
// "pkg.(*Type).Method" without the module path prefix.
func shortFunc(fn *types.Func) string {
	sym := FuncSymbol(fn)
	if i := strings.LastIndex(sym, "/"); i >= 0 {
		return sym[i+1:]
	}
	return sym
}

// shortPath trims a position's path to its base name for messages
// (diagnostic positions already carry the full path).
func shortPath(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// allocFreePkgs are the standard-library packages whose functions are
// trusted not to allocate: the atomic/bit-twiddling vocabulary of the
// module's hot paths.
var allocFreePkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"math":        true,
}

// allocFreeSyncMethods are the sync methods trusted not to allocate.
var allocFreeSyncMethods = map[string]bool{
	"Lock":     true,
	"Unlock":   true,
	"RLock":    true,
	"RUnlock":  true,
	"TryLock":  true,
	"TryRLock": true,
}

// scanAllocs walks a function body and reports every modeled
// allocation cause in source order. Local causes arrive with a nil
// callee; calls into module-internal declared functions arrive with
// their *types.Func (the caller resolves them against the facts).
// FuncLit bodies are scanned as part of the enclosing function: a
// closure a hot path constructs and runs still allocates on its
// behalf.
func scanAllocs(pkg *Package, body *ast.BlockStmt, report func(pos token.Pos, what string, callee *types.Func)) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			scanCall(pkg, n, report)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates its backing array", nil)
			case *types.Map:
				report(n.Pos(), "map literal allocates", nil)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal escapes to the heap", nil)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates", nil)
					}
				}
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine", nil)
		case *ast.FuncLit:
			if capt := captures(pkg, n); capt != "" {
				report(n.Pos(), fmt.Sprintf("closure captures %s and escapes to the heap", capt), nil)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				reportBoxed(pkg, info.TypeOf(lhs), n.Rhs[i], report)
			}
		}
		return true
	})
}

// scanCall classifies one call: a builtin, a conversion, a boxing
// arg-pass, a module-internal edge, a trusted stdlib call, or an
// assumed-allocating call.
func scanCall(pkg *Package, call *ast.CallExpr, report func(token.Pos, string, *types.Func)) {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Type conversion: string <-> byte/rune slice copies; conversion to
	// an interface type boxes.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		checkConversion(call, tv.Type, info, report)
		return
	}

	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.FuncLit:
		return // immediately-invoked literal: its body is scanned inline
	default:
		report(call.Pos(), "dynamic call; cannot be proven allocation-free", nil)
		return
	}

	switch obj := info.Uses[id].(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			report(call.Pos(), "make allocates", nil)
		case "new":
			report(call.Pos(), "new allocates", nil)
		case "append":
			report(call.Pos(), "append may grow its backing array on the heap", nil)
		case "panic":
			report(call.Pos(), "panic allocates its argument", nil)
		case "print", "println":
			report(call.Pos(), obj.Name()+" allocates", nil)
		}
		return
	case *types.Func:
		fn := obj
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			report(call.Pos(), fmt.Sprintf("dynamic call through interface method %s; cannot be proven allocation-free", fn.Name()), nil)
			return
		}
		if fn.Pkg() == nil {
			return // error.Error and friends resolve above; universe funcs are safe
		}
		path := fn.Pkg().Path()
		switch {
		case path == pkg.Module || strings.HasPrefix(path, pkg.Module+"/"):
			report(call.Pos(), "", fn)
		case allocFreePkgs[path]:
			// trusted allocation-free vocabulary
		case path == "sync" && sig != nil && sig.Recv() != nil && allocFreeSyncMethods[fn.Name()]:
			// mutex operations
		default:
			report(call.Pos(), fmt.Sprintf("call to %s leaves the module and is assumed to allocate", shortFunc(fn)), nil)
			return
		}
		// A structurally safe call can still box its arguments.
		if sig != nil {
			checkArgBoxing(call, sig, info, report)
		}
		return
	default:
		// A func-typed variable, field or parameter: dynamic.
		report(call.Pos(), "dynamic call through a function value; cannot be proven allocation-free", nil)
	}
}

// checkConversion reports allocating conversions.
func checkConversion(call *ast.CallExpr, target types.Type, info *types.Info, report func(token.Pos, string, *types.Func)) {
	if len(call.Args) != 1 {
		return
	}
	argT := info.TypeOf(call.Args[0])
	if argT == nil {
		return
	}
	if types.IsInterface(target) && !types.IsInterface(argT) {
		report(call.Pos(), "conversion to interface boxes the value on the heap", nil)
		return
	}
	_, targetSlice := target.Underlying().(*types.Slice)
	_, argSlice := argT.Underlying().(*types.Slice)
	targetStr := isString(target)
	argStr := isString(argT)
	if (targetStr && argSlice) || (targetSlice && argStr) {
		report(call.Pos(), "string/slice conversion copies into a fresh allocation", nil)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkArgBoxing reports concrete values passed to interface
// parameters (including variadic ...interface{}): each such pass boxes.
func checkArgBoxing(call *ast.CallExpr, sig *types.Signature, info *types.Info, report func(token.Pos, string, *types.Func)) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		reportBoxed0(info, pt, arg, report)
	}
}

// reportBoxed reports rhs being stored into an interface-typed lhs.
func reportBoxed(pkg *Package, lhsType types.Type, rhs ast.Expr, report func(token.Pos, string, *types.Func)) {
	if lhsType == nil || !types.IsInterface(lhsType) {
		return
	}
	reportBoxed0(pkg.Info, lhsType, rhs, report)
}

func reportBoxed0(info *types.Info, ifaceType types.Type, val ast.Expr, report func(token.Pos, string, *types.Func)) {
	tv, ok := info.Types[val]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) || tv.IsNil() {
		return
	}
	// Pointers box without copying the pointee but still write an
	// escaping interface header when the value escapes; constants of
	// interface type resolve above. Flag everything concrete.
	report(val.Pos(), "interface boxing: concrete value converted to "+ifaceType.String(), nil)
}

// localJoins reports whether the body syntactically contains a
// goroutine join construct: a channel receive (which covers select
// cases), a range over a channel, or sync.WaitGroup.Wait/Cond.Wait.
// Nested function literals count — a Start that returns a stop closure
// performing the join owns that join path.
func localJoins(pkg *Package, body *ast.BlockStmt) bool {
	joins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joins = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					joins = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Name() == "Wait" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					joins = true
				}
			}
		}
		return !joins
	})
	return joins
}

// captures returns the name of a variable the function literal closes
// over ("" when it captures nothing): a *types.Var used inside the
// literal but declared outside it, excluding package-level variables
// (reached through static addresses, not a closure environment) and
// struct fields.
func captures(pkg *Package, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe {
			return true
		}
		if pkg.Types != nil && v.Parent() == pkg.Types.Scope() {
			return true // package-level variable
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = v.Name()
		}
		return true
	})
	return found
}
