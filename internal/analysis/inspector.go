package analysis

import (
	"go/ast"
	"reflect"
)

// Inspector is the package's shared traversal: the ASTs of all files
// are walked exactly once, in source order, and the preorder event
// stream is replayed to every analyzer that asks for it. Before the
// facts engine, each analyzer re-walked the package on its own; with
// ten analyzers plus the fact computation sharing one package, a
// single flattened traversal keeps the whole suite one-pass.
//
// Replaying the flattened stream visits nodes in exactly the order a
// fresh ast.Inspect would, so analyzers ported from ast.Inspect emit
// byte-identical diagnostics.
type Inspector struct {
	nodes []ast.Node
}

// NewInspector flattens the files into one preorder event stream.
func NewInspector(files []*ast.File) *Inspector {
	in := &Inspector{}
	// A file averages a few thousand nodes; start big enough that the
	// append doubling settles quickly.
	in.nodes = make([]ast.Node, 0, 4096*len(files))
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				in.nodes = append(in.nodes, n)
			}
			return true
		})
	}
	return in
}

// Preorder replays the shared traversal, calling f for every node
// whose dynamic type matches one of the example values in types (all
// nodes when types is empty). Nodes arrive in source order.
func (in *Inspector) Preorder(types []ast.Node, f func(ast.Node)) {
	if len(types) == 0 {
		for _, n := range in.nodes {
			f(n)
		}
		return
	}
	want := make(map[reflect.Type]bool, len(types))
	for _, t := range types {
		want[reflect.TypeOf(t)] = true
	}
	for _, n := range in.nodes {
		if want[reflect.TypeOf(n)] {
			f(n)
		}
	}
}

// Inspector returns the package's shared traversal, building it on
// first use.
func (p *Package) Inspector() *Inspector {
	if p.insp == nil {
		p.insp = NewInspector(p.Files)
	}
	return p.insp
}

// Preorder replays the package's shared traversal for the analyzer:
// one AST walk serves the whole suite. types filters by node type as
// in Inspector.Preorder.
func (p *Pass) Preorder(types []ast.Node, f func(ast.Node)) {
	p.Pkg.Inspector().Preorder(types, f)
}
