package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags map iteration whose order can reach an
// order-sensitive sink without an intervening sort: a returned slice,
// an emitted metric or event, or written output. Go randomizes map
// iteration order per run, so any such path makes ring output, metric
// streams or reports differ between identical fault campaigns — the
// exact reproducibility the harness exists to provide. Filling another
// map or accumulating order-insensitive aggregates is fine and not
// flagged.
//
// The check is transitive through the facts engine: a helper whose
// returned slice is ordered by map iteration marks every caller's use
// of that result as tainted, so the diagnostic lands where the
// nondeterminism escapes, not just where the range statement sits.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order reaching a returned slice, metric/event, or output without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !pass.InternalPackage() {
		return
	}
	pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		_, symbol := pass.EnclosingFuncName(fd.Name.Pos())
		mapOrderScan(pass.Pkg, pass.Facts, fd, func(pos token.Pos, format string, args ...interface{}) {
			pass.Reportf(pos, symbol, format, args...)
		})
	})
}

// moOrigin describes where a tainted slice's map-dependent order came
// from.
type moOrigin struct {
	local bool   // a map range in this very function
	desc  string // human form for messages
}

// mapOrderScan performs the per-function taint walk shared by the
// analyzer and the facts engine. It reports whether the function
// returns map-iteration-ordered data (the mapOrdered fact). When
// report is non-nil each escape is reported:
//
//   - an append inside a map-range body taints the destination slice;
//   - the result of a callee whose mapOrdered fact is set is tainted;
//   - assignments propagate taint, sort.*/slices.Sort* calls clear it;
//   - a tainted slice reaching a return or an output/metric/event sink,
//     or a sink called inside the range body with loop-variable data,
//     is an escape.
//
// Taint tracking is source-order over the body — adequate for the
// straight-line collect-then-return shape this repository writes, and
// a deliberate simplification over full dataflow.
func mapOrderScan(pkg *Package, facts *Facts, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...interface{})) bool {
	info := pkg.Info
	tainted := make(map[types.Object]*moOrigin)
	returnsOrdered := false
	reportf := func(pos token.Pos, format string, args ...interface{}) {
		if report != nil {
			report(pos, format, args...)
		}
	}

	// The walk keeps the ancestor stack so statements know whether they
	// sit inside a map-range body (ast.Inspect signals post-order with a
	// nil node).
	var stack []ast.Node

	// innermost enclosing range-over-map and its loop variables.
	enclosingMapRange := func() (*ast.RangeStmt, map[types.Object]bool) {
		for i := len(stack) - 1; i >= 0; i-- {
			rs, ok := stack[i].(*ast.RangeStmt)
			if !ok {
				continue
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				continue
			}
			vars := make(map[types.Object]bool, 2)
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						vars[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
			return rs, vars
		}
		return nil, nil
	}

	// referencesAny reports whether the expression mentions one of the
	// given objects; second result is the first tainted object's origin.
	mentions := func(e ast.Expr, objs map[types.Object]bool) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && objs[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	taintOf := func(e ast.Expr) *moOrigin {
		var origin *moOrigin
		ast.Inspect(e, func(n ast.Node) bool {
			if origin != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if o := tainted[obj]; o != nil {
						origin = o
					}
				}
			}
			return origin == nil
		})
		return origin
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	// calleeFact resolves a call to a module function's facts.
	calleeFact := func(call *ast.CallExpr) (*types.Func, *FuncFact) {
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return nil, nil
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return nil, nil
		}
		return fn, facts.FuncFact(fn)
	}

	reportedRanges := make(map[token.Pos]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			rs, loopVars := enclosingMapRange()
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := n.Rhs[i]
				obj := objOf(lhs)
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
					continue
				}
				// append of loop-variable data inside a map-range body.
				if rs != nil {
					if call, ok := rhs.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
							if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 1 {
								appendsLoop := false
								for _, a := range call.Args[1:] {
									if mentions(a, loopVars) {
										appendsLoop = true
										break
									}
								}
								if appendsLoop {
									tainted[obj] = &moOrigin{local: true, desc: "map-iteration-ordered data"}
									continue
								}
							}
						}
					}
				}
				// result of a mapOrdered callee.
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if fn, cf := calleeFact(call); cf.MapOrdered() {
						tainted[obj] = &moOrigin{desc: "the result of " + shortFunc(fn) + " (ordered by map iteration)"}
						continue
					}
				}
				// plain propagation: x = tainted, x = tainted[a:b], ...
				if o := taintOf(rhs); o != nil {
					tainted[obj] = o
				}
			}
		case *ast.CallExpr:
			// sort.* / slices.Sort* clear taint on their argument.
			if fn, _ := calleeFact(n); fn != nil && isSortCall(fn) {
				for obj := range tainted {
					for _, a := range n.Args {
						if mentions(a, map[types.Object]bool{obj: true}) {
							delete(tainted, obj)
							break
						}
					}
				}
			} else if fn != nil {
				if sink := sinkDesc(pkg, fn); sink != "" {
					if rs, loopVars := enclosingMapRange(); rs != nil {
						for _, a := range n.Args {
							if mentions(a, loopVars) {
								if !reportedRanges[n.Pos()] {
									reportedRanges[n.Pos()] = true
									reportf(n.Pos(), "map iteration order reaches %s via %s; iterate sorted keys instead", sink, shortFunc(fn))
								}
								break
							}
						}
					}
					for _, a := range n.Args {
						if o := taintOf(a); o != nil {
							if !reportedRanges[n.Pos()] {
								reportedRanges[n.Pos()] = true
								reportf(n.Pos(), "%s reaches %s via %s without a sort", upperFirst(o.desc), sink, shortFunc(fn))
							}
							break
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if o := taintOf(res); o != nil {
					returnsOrdered = true
					if o.local && !reportedRanges[n.Pos()] {
						reportedRanges[n.Pos()] = true
						reportf(n.Pos(), "returned slice is ordered by map iteration; sort it before returning (campaign reproducibility)")
					}
					continue
				}
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
					if _, cf := calleeFact(call); cf.MapOrdered() {
						returnsOrdered = true // the fact chains; the origin already reported
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return returnsOrdered
}

// isSortCall reports whether fn establishes a deterministic order:
// anything in package sort, or a Sort* function in package slices.
func isSortCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// sinkDesc classifies order-sensitive sinks: written output, emitted
// events, and emitted metrics. Returns "" for non-sinks.
func sinkDesc(pkg *Package, fn *types.Func) string {
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "written output"
		}
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return "written output"
	case "Emit", "Log", "Record":
		return "an emitted event"
	}
	if metricMethods[name] && obsReceiverName(&Pass{Pkg: pkg}, fn) == "Registry" {
		return "an emitted metric"
	}
	return ""
}

// upperFirst capitalizes a message fragment's first byte.
func upperFirst(s string) string {
	if s == "" {
		return s
	}
	if c := s[0]; c >= 'a' && c <= 'z' {
		return string(c-'a'+'A') + s[1:]
	}
	return s
}
