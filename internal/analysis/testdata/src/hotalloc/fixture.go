// Package fixture seeds intentional hotalloc violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "sync/atomic"

// counter mimics the obs fast path: a nil-safe atomic increment is the
// canonical allocation-free hot-path shape and stays clean.
type counter struct{ v uint64 }

// Inc is a clean hot path: nil check, address-of field, atomic add.
//
//starlint:hotpath
func (c *counter) Inc() {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.v, 1)
}

// Splice is a clean hot path: pure copies, index arithmetic, reslicing.
//
//starlint:hotpath
func Splice(ring, path []uint8, start int) []uint8 {
	copy(ring[start:], path)
	return ring[:start+len(path)]
}

// Grow appends in a hot path: append may move the backing array.
//
//starlint:hotpath
func Grow(ring []uint8, v uint8) []uint8 {
	return append(ring, v)
}

// scratch is not itself a hot path; it just allocates.
func scratch(n int) []uint8 {
	return make([]uint8, n)
}

// mid launders the allocation through one more frame.
func mid(n int) []uint8 {
	return scratch(n)
}

// ViaHelper allocates transitively: the facts engine follows the call.
//
//starlint:hotpath
func ViaHelper(n int) []uint8 {
	return scratch(n)
}

// ViaChain allocates two frames down; the diagnostic carries the chain.
//
//starlint:hotpath
func ViaChain(n int) []uint8 {
	return mid(n)
}

// observer stands in for any interface-typed dependency.
type observer interface{ Observe(uint64) }

// Dynamic calls through an interface: unprovable, flagged.
//
//starlint:hotpath
func Dynamic(c *counter, sink observer) {
	sink.Observe(c.v)
}

// Label builds a string on a hot path.
//
//starlint:hotpath
func Label(a, b string) string {
	return a + b
}

// Warm accepts its one-time allocation with a reasoned suppression.
//
//starlint:hotpath
func Warm(n int) []uint8 {
	//starlint:ignore hotalloc warm-up path runs once at construction, allocation accepted
	return make([]uint8, n)
}

// Unmarked allocates freely: without the directive nothing is checked.
func Unmarked(n int) []int {
	return make([]int, n)
}
