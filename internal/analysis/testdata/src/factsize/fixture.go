// Package fixture seeds intentional factsize violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "repro/internal/perm"

// EdgeCount multiplies a factorial-scale value without bounding n.
func EdgeCount(n int) int {
	return perm.Factorial(n) * (n - 1) / 2
}

// Doubled grows a factorial-scale value by addition.
func Doubled(n int) int {
	return perm.Factorial(n) + perm.Factorial(n)
}

// Guarantee subtracts from the factorial, which cannot overflow, and
// is clean.
func Guarantee(n, faults int) int {
	return perm.Factorial(n) - 2*faults
}

// Half shrinks by division and is clean.
func Half(n int) int {
	return perm.Factorial(n) / 2
}

// Bounded documents its bound through a suppression and stays out of
// the report.
func Bounded(n int) int {
	if n > 8 {
		n = 8
	}
	//starlint:ignore factsize n clamped to 8 above, 8!*7 < 2^19
	return perm.Factorial(n) * (n - 1)
}
