// Package fixture seeds intentional maporder violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// Keys returns map keys in iteration order: nondeterministic per run.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys sorts before returning and is clean.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump writes entries in iteration order: two identical campaigns
// produce two different reports.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Wrapped launders the nondeterminism through Keys; the mapOrdered
// fact chains through the call, and the sink is flagged here.
func Wrapped(w io.Writer, m map[string]int) {
	ks := Keys(m)
	fmt.Fprintln(w, ks)
}

// WrappedSorted sorts the helper's result before the sink and is clean.
func WrappedSorted(w io.Writer, m map[string]int) {
	ks := Keys(m)
	sort.Strings(ks)
	fmt.Fprintln(w, ks)
}

// Totals is an order-insensitive aggregate and is clean.
func Totals(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Rekey fills another map; order cannot escape and it is clean.
func Rekey(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Suppressed documents an accepted nondeterministic return.
func Suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	//starlint:ignore maporder fixture demonstrates a reasoned suppression
	return out
}
