// Package fixture seeds intentional metricname violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "repro/internal/obs"

// ringLength is the sanctioned spelling of the gauge's name.
const ringLength = "fixture.ring.length"

// repairPrefix is a well-formed dynamic-name prefix.
const repairPrefix = "fixture.repair."

// Instrument registers one metric of each kind, mostly badly.
func Instrument(reg *obs.Registry, outcome string) {
	reg.Counter("BadName")                  // uppercase, undotted
	reg.Gauge("single")                     // one segment only
	reg.Histogram("fixture..latency")       // empty middle segment
	reg.Span("Fixture.Phase.Total")         // uppercase segments
	reg.Counter("fixture.repair" + outcome) // prefix misses the trailing dot
	reg.Gauge("fixture.ring.length")        // duplicates the ringLength constant

	reg.Counter("fixture.run.steps")    // clean: dotted lowercase path
	reg.Gauge(ringLength)               // clean: uses the constant
	reg.Counter(repairPrefix + outcome) // clean: dotted prefix constant
	reg.Histogram("sim." + outcome)     // clean: single-segment prefix still dotted
	//starlint:ignore metricname fixture demonstrates a reasoned suppression
	reg.Span("LegacyPhase")
}

// Indirect goes through a plain variable; compile-time-opaque names are
// out of scope.
func Indirect(reg *obs.Registry, name string) {
	reg.Counter(name)
}
