// Package fixture seeds intentional metricname violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "repro/internal/obs"

// ringLength is the sanctioned spelling of the gauge's name.
const ringLength = "fixture.ring.length"

// repairPrefix is a well-formed dynamic-name prefix.
const repairPrefix = "fixture.repair."

// Instrument registers one metric of each kind, mostly badly.
func Instrument(reg *obs.Registry, outcome string) {
	reg.Counter("BadName")                  // uppercase, undotted
	reg.Gauge("single")                     // one segment only
	reg.Histogram("fixture..latency")       // empty middle segment
	reg.Span("Fixture.Phase.Total")         // uppercase segments
	reg.Counter("fixture.repair" + outcome) // prefix misses the trailing dot
	reg.Gauge("fixture.ring.length")        // duplicates the ringLength constant

	reg.Counter("fixture.run.steps")    // clean: dotted lowercase path
	reg.Gauge(ringLength)               // clean: uses the constant
	reg.Counter(repairPrefix + outcome) // clean: dotted prefix constant
	reg.Histogram("sim." + outcome)     // clean: single-segment prefix still dotted
	//starlint:ignore metricname fixture demonstrates a reasoned suppression
	reg.Span("LegacyPhase")
}

// Indirect goes through a plain variable; compile-time-opaque names are
// out of scope.
func Indirect(reg *obs.Registry, name string) {
	reg.Counter(name)
}

// Labeled seeds the labeled-family violations: bad vec names, label
// keys off the lower_snake convention, dynamic keys, and odd kv
// counts. Dynamic values are fine everywhere.
func Labeled(reg *obs.Registry, machine string, key string) {
	reg.CounterVec("VecBad", "n")             // vec name off convention
	reg.CounterVec("fixture.embeds", "N")     // uppercase label key
	reg.GaugeVec("fixture.depth", "ring.len") // dotted label key
	reg.HistogramVec("fixture.lat", key)      // dynamic label key
	reg.Child(machine, "m0")                  // dynamic key in Child
	reg.Child("Machine", "m0")                // uppercase key in Child
	v := reg.CounterVec("fixture.embeds2", "n", "mode")
	v.With("n", "6", "mode")               // odd kv count
	v.With("n", "6", key, "x")             // dynamic key in With
	v.With("n", "6", "Mode", "guaranteed") // uppercase key in With

	clean := reg.CounterVec("fixture.repairs", "n", "outcome") // clean: names and keys in shape
	clean.With("n", "6", "outcome", machine)                   // clean: dynamic value, literal keys
	reg.Child("machine", machine)                              // clean: literal key, dynamic value
	kv := []string{"n", "6"}
	clean.With(kv...) // clean: slice spread is out of scope
}
