// Package fixture seeds intentional uncheckederr violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import (
	"fmt"
	"os"
	"strconv"
)

// Drop discards the error (and the value) from Atoi.
func Drop(s string) {
	strconv.Atoi(s)
}

// Emit discards the Fprintln error; the repo allowlists the fmt.Fprint
// family in .starlint, but the golden test runs without a config, so
// this is reported.
func Emit() {
	fmt.Fprintln(os.Stderr, "fixture")
}

// Checked handles its error and is clean.
func Checked(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}

// Discarded makes the discard explicit, which stays visible in review
// and is accepted.
func Discarded(s string) {
	_, _ = strconv.Atoi(s)
}
