// Package fixture seeds intentional goroleak violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "sync"

// Leak launches a goroutine nothing ever waits for.
func Leak(work []int) {
	go func() {
		for range work {
			_ = compute()
		}
	}()
}

// LeakLoop spawns one goroutine per item, still with no join.
func LeakLoop(items []int) {
	for range items {
		go func() {
			_ = compute()
		}()
	}
}

func compute() int { return 1 }

// Joined spawns and waits: the classic WaitGroup shape is clean.
func Joined(work []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range work {
			_ = compute()
		}
	}()
	wg.Wait()
}

// SelfStopping is clean: the goroutine's own body receives on a done
// channel, so it terminates when its owner closes it.
func SelfStopping(done chan struct{}) func() {
	fin := make(chan struct{})
	go func() {
		<-done
		close(fin)
	}()
	return func() { <-fin }
}

// worker ranges its input channel and exits when it closes.
func worker(ch chan int) {
	for range ch {
	}
}

// SpawnWorker is clean transitively: the spawned module function's
// joins fact says it owns its termination.
func SpawnWorker(ch chan int) {
	go worker(ch)
}

// joinHelper performs the wait on behalf of its caller.
func joinHelper(wg *sync.WaitGroup) {
	wg.Wait()
}

// ViaHelper is clean transitively: the launching function reaches a
// join through a module callee.
func ViaHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go compute2(&wg)
	joinHelper(&wg)
}

func compute2(wg *sync.WaitGroup) {
	defer wg.Done()
	_ = compute()
}

// FireAndForget documents an accepted detached goroutine.
func FireAndForget(f func()) {
	//starlint:ignore goroleak fixture demonstrates a reasoned suppression
	go f()
}
