// Package fixture seeds intentional globalrand violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "math/rand"

// Draw pulls from the process-global RNG, breaking campaign
// reproducibility.
func Draw(n int) int {
	return rand.Intn(n)
}

// Mix shuffles through the global source.
func Mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// picker captures a package-level function value.
var picker = rand.Perm

// Seeded constructs an explicit generator; rand.New and rand.NewSource
// are the sanctioned pattern and stay clean, as do methods on the
// resulting *rand.Rand.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
