// Package fixture seeds intentional walltime violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import (
	"runtime"
	"runtime/metrics"
	"time"
)

// Stamp reads the wall clock directly instead of an injected obs.Clock.
func Stamp() time.Time {
	return time.Now()
}

// Age measures elapsed wall time through the package-level helper.
func Age(t time.Time) time.Duration {
	return time.Since(t)
}

// reader captures the package-level clock function as a value.
var reader = time.Now

// Deadline is sanctioned wall-clock use: the call is justified at the
// site and suppressed with a reason.
func Deadline(t time.Time) bool {
	//starlint:ignore walltime fixture demonstrates a reasoned suppression
	return time.Now().After(t)
}

// Shift does pure time arithmetic; Time methods and Duration math never
// touch the process clock and stay clean.
func Shift(t time.Time, d time.Duration) time.Time {
	return t.Add(d - time.Second)
}

// HeapInUse reads allocator state directly: runtime.ReadMemStats
// stops the world and bypasses the prof.RuntimeSampler gauges.
func HeapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Goroutines reads runtime/metrics outside internal/obs/prof, the one
// package sanctioned to own a metrics.Read site.
func Goroutines() uint64 {
	samples := []metrics.Sample{{Name: "/sched/goroutines:goroutines"}}
	metrics.Read(samples)
	return samples[0].Value.Uint64()
}

// SuppressedStats is a reasoned suppression of the runtime reader, the
// same escape hatch the clock check honors.
func SuppressedStats() {
	var ms runtime.MemStats
	//starlint:ignore walltime fixture demonstrates a reasoned suppression
	runtime.ReadMemStats(&ms)
}
