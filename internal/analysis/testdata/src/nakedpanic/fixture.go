// Package fixture seeds intentional nakedpanic violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "fmt"

// Explode panics on input any caller can supply.
func Explode(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("fixture: negative %d", n))
	}
	return n
}

// mustPositive is a sanctioned invariant helper: the must prefix
// documents the contract and satisfies the analyzer.
func mustPositive(n int) {
	if n <= 0 {
		panic("fixture: invariant violated")
	}
}

// MustParse follows the stdlib Must convention and stays clean.
func MustParse(s string) int {
	if s == "" {
		panic("fixture: empty input")
	}
	return len(s)
}

// Checked routes its precondition through the helper and stays clean.
func Checked(n int) int {
	mustPositive(n)
	return n * 2
}
