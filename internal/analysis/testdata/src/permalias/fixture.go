// Package fixture seeds intentional permalias violations for the
// golden-file tests; it is under testdata and never built by go build.
package fixture

import "repro/internal/perm"

type holder struct {
	p    perm.Perm
	ring []int
}

var global []int

// Keep stores both parameters, aliasing the caller's slices.
func (h *holder) Keep(p perm.Perm, ring []int) {
	h.p = p
	h.ring = ring
}

// Stash publishes the parameter through a package variable.
func Stash(xs []int) {
	global = xs
}

// Zero scribbles on the caller's slice through several writes; the
// analyzer reports the parameter once.
func Zero(p perm.Perm) {
	p[0] = 1
	p[1] = 2
}

// Wrap freezes the parameter into a returned composite literal.
func Wrap(p perm.Perm) holder {
	return holder{p: p}
}

// KeepClone stores a defensive copy and is clean.
func (h *holder) KeepClone(p perm.Perm) {
	h.p = p.Clone()
}

// Fill copies into the caller-provided buffer with the sanctioned
// primitive and is clean.
func Fill(dst []int, n int) {
	src := make([]int, n)
	copy(dst, src)
}

// Adopt takes ownership deliberately; the suppression keeps it out of
// the report.
func (h *holder) Adopt(ring []int) {
	//starlint:ignore permalias caller hands off ownership of ring by contract
	h.ring = ring
}
