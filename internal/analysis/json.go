package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
)

// diagJSON is the machine-readable diagnostic shape emitted by
// `starlint -json`: one array of these, so CI can archive findings
// alongside BENCH_record.json and diff them across revisions.
type diagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Symbol   string `json:"symbol,omitempty"`
	Message  string `json:"message"`
}

// WriteJSON writes diags as an indented JSON array. An empty run
// writes "[]" rather than null so consumers always parse an array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]diagJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, diagJSON{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Symbol:   d.Symbol,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses WriteJSON's output back into diagnostics, so tests
// and tooling can round-trip the archive format.
func ReadJSON(r io.Reader) ([]Diagnostic, error) {
	var in []diagJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("starlint json: %w", err)
	}
	diags := make([]Diagnostic, 0, len(in))
	for _, d := range in {
		diags = append(diags, Diagnostic{
			Pos:      token.Position{Filename: d.File, Line: d.Line, Column: d.Column},
			Analyzer: d.Analyzer,
			Symbol:   d.Symbol,
			Message:  d.Message,
		})
	}
	return diags, nil
}
