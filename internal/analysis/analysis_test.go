package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestGolden runs each analyzer over its seeded fixture package under
// testdata/src/<name> and compares the rendered diagnostics against
// testdata/golden/<name>.txt. Run with -update to regenerate.
func TestGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", a.Name))
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{a}, nil)
			var b strings.Builder
			for _, d := range diags {
				rel, err := filepath.Rel(srcRoot, d.Pos.Filename)
				if err != nil {
					rel = d.Pos.Filename
				}
				fmt.Fprintf(&b, "%s:%d: [%s] %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Analyzer, d.Message)
			}
			got := b.String()
			if got == "" {
				t.Fatalf("analyzer %s found nothing in its fixture; the golden test is vacuous", a.Name)
			}
			goldenPath := filepath.Join("testdata", "golden", a.Name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// parseTestPackage type-checks a single stdlib-import-free source file
// into a Package, for driver-level unit tests that do not need the
// module loader.
func parseTestPackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{
		ImportPath: "repro/internal/fixture",
		Module:     "repro",
		Dir:        ".",
		Fset:       fset,
		Files:      []*ast.File{f},
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{Error: func(err error) {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}}
	pkg.Types, _ = conf.Check(pkg.ImportPath, fset, pkg.Files, pkg.Info)
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors in test source: %v", pkg.TypeErrors)
	}
	return pkg
}

func diagStrings(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%d: [%s] %s", d.Pos.Line, d.Analyzer, d.Message)
	}
	return out
}

// TestSuppressionSameLine checks that an ignore comment trailing the
// offending line suppresses the finding (the golden fixtures cover the
// line-above form).
func TestSuppressionSameLine(t *testing.T) {
	pkg := parseTestPackage(t, `package fixture

func Explode() {
	panic("boom") //starlint:ignore nakedpanic unrecoverable by design in this test
}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{NakedPanic}, nil)
	if len(diags) != 0 {
		t.Errorf("same-line suppression ignored: %v", diagStrings(diags))
	}
}

// TestSuppressionMalformed checks that broken or unknown suppressions
// are themselves reported under the "starlint" pseudo-analyzer, and do
// not suppress anything.
func TestSuppressionMalformed(t *testing.T) {
	pkg := parseTestPackage(t, `package fixture

func Explode() {
	//starlint:ignore nakedpanic
	panic("boom")
}

func Implode() {
	//starlint:ignore nosuchanalyzer because reasons
	panic("boom")
}
`)
	diags := Run([]*Package{pkg}, All(), nil)
	var starlint, nakedpanic int
	for _, d := range diags {
		switch d.Analyzer {
		case "starlint":
			starlint++
		case "nakedpanic":
			nakedpanic++
		}
	}
	if starlint != 2 {
		t.Errorf("want 2 starlint diagnostics for malformed suppressions, got %d: %v", starlint, diagStrings(diags))
	}
	if nakedpanic != 2 {
		t.Errorf("malformed suppressions must not suppress: want 2 nakedpanic diagnostics, got %d: %v", nakedpanic, diagStrings(diags))
	}
}

// TestConfigAllowlist checks that a config allowlist drops findings by
// attributed symbol, including the trailing-* glob form.
func TestConfigAllowlist(t *testing.T) {
	pkg := parseTestPackage(t, `package fixture

func Explode() {
	panic("boom")
}

func Collapse() {
	panic("bang")
}
`)
	cfg, err := ParseConfig(strings.NewReader(`
# test allowlist
allow nakedpanic repro/internal/fixture.Explode
`), "test")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{NakedPanic}, cfg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "Collapse") {
		t.Errorf("want only the Collapse finding, got %v", diagStrings(diags))
	}

	glob, err := ParseConfig(strings.NewReader("allow all repro/internal/fixture.*\n"), "test")
	if err != nil {
		t.Fatalf("ParseConfig glob: %v", err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{NakedPanic}, glob); len(diags) != 0 {
		t.Errorf("glob allowlist should drop everything, got %v", diagStrings(diags))
	}
}

// TestConfigParseErrors checks that malformed config lines and unknown
// analyzer names are rejected with positions.
func TestConfigParseErrors(t *testing.T) {
	for _, bad := range []string{
		"deny nakedpanic x\n",
		"allow nakedpanic\n",
		"allow nosuch repro/internal/perm.Factorial\n",
	} {
		if _, err := ParseConfig(strings.NewReader(bad), "test"); err == nil {
			t.Errorf("ParseConfig(%q): want error, got nil", bad)
		}
	}
	cfg, err := ParseConfig(strings.NewReader("# only comments\n\n"), "test")
	if err != nil {
		t.Fatalf("comment-only config: %v", err)
	}
	if cfg.Allowed("nakedpanic", "anything") {
		t.Error("empty config must allow nothing")
	}
	var nilCfg *Config
	if nilCfg.Allowed("nakedpanic", "anything") {
		t.Error("nil config must allow nothing")
	}
}

// TestStaleSuppressions is the golden test for stale detection: an
// ignore comment that suppresses nothing is reported with its position,
// one that fires is not, and entries naming analyzers outside the run
// set are never judged.
func TestStaleSuppressions(t *testing.T) {
	pkg := parseTestPackage(t, `package fixture

func Explode() {
	//starlint:ignore nakedpanic unrecoverable by design in this test
	panic("boom")
}

func Quiet() int {
	//starlint:ignore nakedpanic nothing here panics anymore
	return 1
}

func AlsoQuiet() int {
	//starlint:ignore globalrand the rand call was removed long ago
	return 2
}
`)
	_, stale := Analyze([]*Package{pkg}, All(), nil)
	want := []string{
		"fixture.go:9: stale suppression: no nakedpanic finding here; remove the //starlint:ignore comment",
		"fixture.go:14: stale suppression: no globalrand finding here; remove the //starlint:ignore comment",
	}
	var got []string
	for _, s := range stale {
		got = append(got, s.String())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("stale suppressions differ\n got: %v\nwant: %v", got, want)
	}

	// A subset run that excludes globalrand must not judge its comment.
	_, stale = Analyze([]*Package{pkg}, []*Analyzer{NakedPanic}, nil)
	got = nil
	for _, s := range stale {
		got = append(got, s.String())
	}
	if len(got) != 1 || !strings.Contains(got[0], "fixture.go:9") {
		t.Errorf("subset run: want only the line-9 stale entry, got %v", got)
	}
}

// TestStaleConfig checks stale detection over driver-config entries:
// allow entries that suppress nothing and hotpath entries that match no
// function are reported with the config file's position.
func TestStaleConfig(t *testing.T) {
	pkg := parseTestPackage(t, `package fixture

func Explode() {
	panic("boom")
}
`)
	cfg, err := ParseConfig(strings.NewReader(`# header comment
allow nakedpanic repro/internal/fixture.Explode
allow nakedpanic repro/internal/fixture.Gone
hotpath repro/internal/fixture.Removed
`), ".starlint")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	diags, stale := Analyze([]*Package{pkg}, All(), cfg)
	for _, d := range diags {
		if d.Analyzer == "nakedpanic" {
			t.Errorf("allow entry did not suppress: %v", d)
		}
	}
	want := []string{
		`.starlint:3: stale allow entry: no nakedpanic finding is attributed to "repro/internal/fixture.Gone"`,
		`.starlint:4: stale hotpath entry: no analyzed function matches "repro/internal/fixture.Removed"`,
	}
	var got []string
	for _, s := range stale {
		got = append(got, s.String())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("stale config entries differ\n got: %v\nwant: %v", got, want)
	}
}

// TestConfigHotpath checks that a config hotpath entry subjects the
// symbol to hotalloc without a source annotation.
func TestConfigHotpath(t *testing.T) {
	pkg := parseTestPackage(t, `package fixture

func Hot(n int) []int {
	return make([]int, n)
}
`)
	cfg, err := ParseConfig(strings.NewReader("hotpath repro/internal/fixture.Hot\n"), ".starlint")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	diags, stale := Analyze([]*Package{pkg}, []*Analyzer{HotAlloc}, cfg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "make allocates") {
		t.Errorf("want one make-allocates finding, got %v", diagStrings(diags))
	}
	if len(stale) != 0 {
		t.Errorf("a matching hotpath entry must not be stale, got %v", stale)
	}
}

// TestJSONRoundTrip checks that WriteJSON output parses back into the
// same diagnostics, and that an empty run still encodes a JSON array.
func TestJSONRoundTrip(t *testing.T) {
	pkg := parseTestPackage(t, `package fixture

func Explode() {
	panic("boom")
}
`)
	diags := Run([]*Package{pkg}, All(), nil)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	var buf strings.Builder
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if fmt.Sprint(diags) != fmt.Sprint(back) {
		t.Errorf("round trip differs\n got: %v\nwant: %v", back, diags)
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty run must encode as [], got %q", buf.String())
	}
}
