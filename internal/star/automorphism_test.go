package star

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

func randomAutomorphism(rng *rand.Rand, n int) Automorphism {
	sigma := perm.Unrank(n, rng.Intn(perm.Factorial(n)))
	// Random tau fixing position 1.
	rest := perm.Unrank(n-1, rng.Intn(perm.Factorial(n-1)))
	tau := make(perm.Perm, n)
	tau[0] = 1
	for i, s := range rest {
		tau[i+1] = s + 1
	}
	a, err := NewAutomorphism(sigma, tau)
	if err != nil {
		panic(err)
	}
	return a
}

func TestAutomorphismValidation(t *testing.T) {
	if _, err := NewAutomorphism(perm.Identity(4), perm.MustParse("2134")); err == nil {
		t.Fatal("tau moving position 1 accepted")
	}
	if _, err := NewAutomorphism(perm.Identity(4), perm.Identity(5)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestAutomorphismPreservesAdjacency checks the defining property
// exhaustively on S_4 for a sample of automorphisms, and on S_5 for a
// few random ones.
func TestAutomorphismPreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{4, 5} {
		g := New(n)
		var all []perm.Code
		g.Vertices(func(v perm.Code) bool { all = append(all, v); return true })
		for trial := 0; trial < 10; trial++ {
			a := randomAutomorphism(rng, n)
			if !a.PreservesAdjacency(g, all) {
				t.Fatalf("S_%d: automorphism %v/%v breaks adjacency", n, a.Sigma, a.Tau)
			}
			// Bijectivity.
			seen := map[perm.Code]bool{}
			for _, v := range all {
				w := a.Apply(v)
				if !w.Valid(n) || seen[w] {
					t.Fatalf("S_%d: automorphism not a bijection at %s", n, v.StringN(n))
				}
				seen[w] = true
			}
		}
	}
}

func TestAutomorphismGroupLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 5
	g := New(n)
	for trial := 0; trial < 20; trial++ {
		a := randomAutomorphism(rng, n)
		b := randomAutomorphism(rng, n)
		v := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
		// Compose semantics: (a then b)(v) == b(a(v)).
		if a.Compose(b).Apply(v) != b.Apply(a.Apply(v)) {
			t.Fatal("Compose semantics wrong")
		}
		// Inverse undoes.
		if a.Inverse().Apply(a.Apply(v)) != v {
			t.Fatal("Inverse broken")
		}
		// Identity.
		if IdentityAutomorphism(n).Apply(v) != v {
			t.Fatal("identity broken")
		}
	}
}

// TestVertexTransitivity: a symbol relabeling carries any vertex to any
// other, preserving distances.
func TestVertexTransitivity(t *testing.T) {
	n := 5
	g := New(n)
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		u := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
		v := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
		a := VertexTransporter(n, u, v)
		if a.Apply(u) != v {
			t.Fatal("transporter misses")
		}
		// Distance preservation spot check.
		w := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
		if g.Distance(u, w) != g.Distance(v, a.Apply(w)) {
			t.Fatal("transporter distorts distances")
		}
	}
}

// TestEdgeTransitivity: every directed edge maps to every other — the
// symmetry Lemma 4's "without loss of generality" rests on. Exhaustive
// over a sample of edge pairs in S_4.
func TestEdgeTransitivity(t *testing.T) {
	n := 4
	g := New(n)
	type edge struct{ a, b perm.Code }
	var edges []edge
	g.Vertices(func(v perm.Code) bool {
		g.VisitNeighbors(v, func(w perm.Code, _ int) bool {
			edges = append(edges, edge{v, w})
			return true
		})
		return true
	})
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 200; trial++ {
		e1 := edges[rng.Intn(len(edges))]
		e2 := edges[rng.Intn(len(edges))]
		a, err := EdgeTransporter(n, e1.a, e1.b, e2.a, e2.b)
		if err != nil {
			t.Fatal(err)
		}
		if a.Apply(e1.a) != e2.a || a.Apply(e1.b) != e2.b {
			t.Fatal("edge transporter misses")
		}
	}
	if _, err := EdgeTransporter(n, edges[0].a, edges[0].a, edges[1].a, edges[1].b); err == nil {
		t.Fatal("non-edge accepted")
	}
}

func TestQuickAutomorphismPreservesParityRelation(t *testing.T) {
	// Automorphisms either preserve or flip the bipartition globally;
	// adjacent vertices must stay in different classes either way.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		g := New(n)
		a := randomAutomorphism(rng, n)
		v := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
		w := v.SwapFirst(2 + rng.Intn(n-1))
		return g.PartiteSet(a.Apply(v)) != g.PartiteSet(a.Apply(w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
