package star

import (
	"fmt"

	"repro/internal/perm"
)

// Node-disjoint path routing. The star graph is maximally fault
// tolerant — its vertex connectivity equals its degree n-1 — which is
// the structural fact behind every fault-tolerance result on it,
// including the paper's: n-3 faults can never disconnect S_n (they
// cannot even isolate a vertex). DisjointPaths constructs a maximum
// family of internally vertex-disjoint u-v paths by unit-capacity
// max flow on the node-split graph (by Menger's theorem the family size
// equals the local connectivity), giving the library an executable
// witness of the claim and a routing primitive that survives up to n-2
// arbitrary vertex failures.

// arc is a directed edge carrying one unit of flow.
type arc struct{ from, to perm.Code }

// flowState is the residual network of the node-split unit-capacity
// flow between two fixed endpoints.
type flowState struct {
	g    Graph
	u, v perm.Code
	// edgeFlow[a] reports one unit on the directed edge a; at most one
	// direction of an undirected edge ever carries flow (net updates).
	edgeFlow map[arc]bool
	// vertexUsed[w] reports that internal vertex w carries flow (its
	// split arc w_in -> w_out is saturated).
	vertexUsed map[perm.Code]bool
}

// bfsState is a position in the split residual graph: at w_out
// (in=false) or w_in (in=true).
type bfsState struct {
	w  perm.Code
	in bool
}

// augment finds one augmenting u->v path in the residual graph and
// applies it, reporting success. Residual moves:
//
//	x_out -> y_in   forward over edge {x,y} with no x->y flow (y != u)
//	y_in  -> x_out  reverse of a flowing edge x->y
//	w_in  -> w_out  the split arc, when w carries no flow
//	w_out -> w_in   reverse of the split arc, when w carries flow
func (fs *flowState) augment() bool {
	src := bfsState{w: fs.u, in: false}
	goal := bfsState{w: fs.v, in: true}
	prev := map[bfsState]bfsState{}
	seen := map[bfsState]bool{src: true}
	queue := []bfsState{src}
	var scratch []perm.Code

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == goal {
			break
		}
		var nexts []bfsState
		if !cur.in {
			// At w_out: forward edges, or reverse the split arc.
			scratch = fs.g.Neighbors(cur.w, scratch[:0])
			for _, y := range scratch {
				if y == fs.u || fs.edgeFlow[arc{cur.w, y}] {
					continue
				}
				nexts = append(nexts, bfsState{w: y, in: true})
			}
			if fs.vertexUsed[cur.w] {
				nexts = append(nexts, bfsState{w: cur.w, in: true})
			}
		} else {
			// At w_in: the split arc forward (w internal and unused), or
			// reverse an incoming flow edge.
			if cur.w != fs.v {
				if !fs.vertexUsed[cur.w] {
					nexts = append(nexts, bfsState{w: cur.w, in: false})
				}
				scratch = fs.g.Neighbors(cur.w, scratch[:0])
				for _, x := range scratch {
					if fs.edgeFlow[arc{x, cur.w}] {
						nexts = append(nexts, bfsState{w: x, in: false})
					}
				}
			}
		}
		for _, nx := range nexts {
			if seen[nx] {
				continue
			}
			seen[nx] = true
			prev[nx] = cur
			queue = append(queue, nx)
		}
	}
	if !seen[goal] {
		return false
	}

	// Apply the residual updates along the path, walking back.
	for cur := goal; cur != src; {
		p := prev[cur]
		switch {
		case !p.in && cur.in && p.w != cur.w:
			// Forward move over edge p.w -> cur.w: net update.
			back := arc{cur.w, p.w}
			if fs.edgeFlow[back] {
				delete(fs.edgeFlow, back)
			} else {
				fs.edgeFlow[arc{p.w, cur.w}] = true
			}
		case p.in && !cur.in && p.w == cur.w:
			// Split arc consumed.
			fs.vertexUsed[cur.w] = true
		case !p.in && cur.in && p.w == cur.w:
			// Split arc reversed: w no longer carries flow.
			fs.vertexUsed[cur.w] = false
		case p.in && !cur.in && p.w != cur.w:
			// Reverse of flowing edge cur.w -> p.w: cancel it.
			delete(fs.edgeFlow, arc{cur.w, p.w})
		}
		cur = p
	}
	return true
}

// DisjointPaths returns a maximum set of u-v paths that share no
// internal vertices; for distinct vertices of S_n (n >= 2) the set has
// exactly n-1 paths — the connectivity. Each path includes both
// endpoints. Exact but Θ(n * n!)-ish per call; intended for the
// moderate dimensions where routing tables are actually built.
func (g Graph) DisjointPaths(u, v perm.Code) ([][]perm.Code, error) {
	if !g.Contains(u) || !g.Contains(v) {
		return nil, fmt.Errorf("star: DisjointPaths endpoints must be vertices of S_%d", g.n)
	}
	if u == v {
		return nil, fmt.Errorf("star: DisjointPaths needs distinct endpoints")
	}

	fs := &flowState{
		g: g, u: u, v: v,
		edgeFlow:   make(map[arc]bool),
		vertexUsed: make(map[perm.Code]bool),
	}
	flow := 0
	for fs.augment() {
		flow++
		if flow > g.Degree() {
			return nil, fmt.Errorf("star: internal: flow exceeded the degree bound")
		}
	}

	// Decompose the flow into vertex-disjoint paths from u.
	var paths [][]perm.Code
	var scratch []perm.Code
	for i := 0; i < flow; i++ {
		path := []perm.Code{u}
		cur := u
		for cur != v {
			scratch = g.Neighbors(cur, scratch[:0])
			next := perm.None
			for _, y := range scratch {
				if fs.edgeFlow[arc{cur, y}] {
					next = y
					break
				}
			}
			if next == perm.None {
				return nil, fmt.Errorf("star: internal: flow decomposition stuck at %s", cur.StringN(g.n))
			}
			delete(fs.edgeFlow, arc{cur, next})
			path = append(path, next)
			cur = next
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// Connectivity returns the vertex connectivity of S_n, which equals the
// degree n-1 (maximal fault tolerance; Akers, Harel, Krishnamurthy).
// The disjoint-paths tests certify the value on small dimensions rather
// than trusting the formula.
func (g Graph) Connectivity() int {
	if g.n <= 1 {
		return 0
	}
	return g.n - 1
}
