// Package star implements the n-dimensional star graph S_n substrate:
// adjacency, traversal, the bipartition into even and odd permutations,
// exact distances (both by breadth-first search and by the closed-form
// cycle formula of Akers and Krishnamurthy), shortest-path routing and
// diameter. The star graph is the interconnection topology the paper
// embeds rings into; everything else in this repository sits on top of
// this package.
package star

import (
	"fmt"

	"repro/internal/perm"
)

// Graph is the n-dimensional star graph S_n. It is a lightweight value:
// the vertex set (the n! permutations of 1..n) is never materialized by
// the Graph itself; callers iterate or rank/unrank on demand.
type Graph struct {
	n int
}

// New returns S_n. The paper considers n >= 3 throughout (S_1 is a
// vertex, S_2 an edge, S_3 a 6-cycle); we accept n >= 1 so the trivial
// cases remain expressible in tests.
func New(n int) Graph {
	mustf(n >= 1 && n <= perm.MaxN, "star: dimension %d out of range [1,%d]", n, perm.MaxN)
	return Graph{n: n}
}

// mustf is the package's invariant helper: it panics with a formatted
// message when cond is false. Used only for programmer-error
// preconditions, never data-dependent conditions.
func mustf(cond bool, format string, args ...interface{}) {
	if !cond {
		panic(fmt.Sprintf(format, args...))
	}
}

// N returns the dimension of the graph.
func (g Graph) N() int { return g.n }

// Order returns the number of vertices, n!.
func (g Graph) Order() int { return perm.Factorial(g.n) }

// Size returns the number of edges, n!*(n-1)/2.
//
//starlint:ignore factsize n <= MaxN = 16 keeps n!*(n-1)/2 below 2^48; perm's compile guard requires 64-bit int
func (g Graph) Size() int { return g.Order() * (g.n - 1) / 2 }

// Degree returns the regular degree n-1.
func (g Graph) Degree() int { return g.n - 1 }

// Diameter returns the exact diameter floor(3(n-1)/2) (Akers, Harel,
// Krishnamurthy 1986).
func (g Graph) Diameter() int { return 3 * (g.n - 1) / 2 }

// Contains reports whether c encodes a vertex of this graph.
func (g Graph) Contains(c perm.Code) bool { return c.Valid(g.n) }

// Neighbors appends the n-1 neighbors of v to dst and returns it.
// Neighbor i-2 of the result is v with positions 1 and i swapped.
func (g Graph) Neighbors(v perm.Code, dst []perm.Code) []perm.Code {
	for i := 2; i <= g.n; i++ {
		dst = append(dst, v.SwapFirst(i))
	}
	return dst
}

// VisitNeighbors calls f for each neighbor of v along with the dimension
// of the connecting edge, stopping early if f returns false.
func (g Graph) VisitNeighbors(v perm.Code, f func(w perm.Code, dim int) bool) {
	for i := 2; i <= g.n; i++ {
		if !f(v.SwapFirst(i), i) {
			return
		}
	}
}

// Adjacent reports whether u and v are joined by an edge of S_n.
func (g Graph) Adjacent(u, v perm.Code) bool { return perm.Adjacent(u, v, g.n) }

// EdgeDim returns the dimension (2..n) of the edge {u, v}, or 0 when the
// two vertices are not adjacent.
func (g Graph) EdgeDim(u, v perm.Code) int { return perm.DimOf(u, v, g.n) }

// Vertices calls f on every vertex of S_n in lexicographic rank order,
// stopping early if f returns false. The enumeration is allocation-free
// per step apart from the iteration permutation itself.
func (g Graph) Vertices(f func(v perm.Code) bool) {
	p := perm.Identity(g.n)
	for {
		if !f(perm.Pack(p)) {
			return
		}
		if !nextPermutation(p) {
			return
		}
	}
}

// nextPermutation advances p to its lexicographic successor in place,
// returning false when p was the final permutation.
func nextPermutation(p perm.Perm) bool {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	//starlint:ignore permalias advancing p to its successor in place is this helper's whole contract
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}

// PartiteSet returns 0 or 1: the side of the bipartition (even or odd
// permutations) containing v. Every edge of S_n joins the two sides, and
// both sides have exactly n!/2 vertices for n >= 2.
func (g Graph) PartiteSet(v perm.Code) int { return v.Parity(g.n) }

// Distance returns the exact shortest-path distance between u and v
// using the closed-form cycle formula; see DistanceToIdentity.
func (g Graph) Distance(u, v perm.Code) int {
	// The star graph is vertex transitive under left multiplication:
	// relabeling symbols by u^-1 maps u to the identity and preserves
	// the generators (which act on positions). d(u,v) = d(e, u^-1 ∘ v).
	up := u.Unpack(g.n)
	vp := v.Unpack(g.n)
	rel := up.Inverse().Compose(vp)
	return DistanceToIdentity(rel)
}

// DistanceToIdentity returns the shortest number of star operations
// (swap position 1 with position i) needed to sort p. With c the number
// of nontrivial cycles of p and m the number of misplaced symbols:
//
//	d = m + c      if p fixes position 1,
//	d = m + c - 2  otherwise.
//
// (Akers and Krishnamurthy, 1989.)
func DistanceToIdentity(p perm.Perm) int {
	n := len(p)
	var visited uint32
	m, c := 0, 0
	for i := 0; i < n; i++ {
		if visited&(1<<uint(i)) != 0 {
			continue
		}
		if int(p[i]) == i+1 {
			visited |= 1 << uint(i)
			continue
		}
		c++
		for j := i; visited&(1<<uint(j)) == 0; j = int(p[j]) - 1 {
			visited |= 1 << uint(j)
			m++
		}
	}
	if m == 0 {
		return 0
	}
	if int(p[0]) == 1 {
		return m + c
	}
	return m + c - 2
}

// Route returns a shortest u-v path, inclusive of both endpoints, as a
// sequence of adjacent vertices. It follows the greedy optimal routing
// rule for star graphs: if the symbol at position 1 is misplaced, send
// it home; otherwise move any misplaced symbol's home position forward.
func (g Graph) Route(u, v perm.Code) []perm.Code {
	n := g.n
	path := []perm.Code{u}
	// Work with the relative permutation target: we want cur == v.
	cur := u
	for cur != v {
		// rel(i) = position in v of the symbol at position i of cur.
		first := cur.Symbol(1)
		home := v.PositionOf(n, first)
		var next perm.Code
		if home != 1 {
			// The symbol in position 1 is misplaced: one star operation
			// sends it home.
			next = cur.SwapFirst(home)
		} else {
			// Position 1 already holds the right symbol; bring any
			// misplaced symbol to the front.
			dim := 0
			for i := 2; i <= n; i++ {
				if cur.Symbol(i) != v.Symbol(i) {
					dim = i
					break
				}
			}
			if dim == 0 {
				break // cur == v
			}
			next = cur.SwapFirst(dim)
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

// BFSDistances runs a breadth-first search from src and returns a map
// from vertex code to hop distance. Intended for tests and small n; the
// map holds all n! vertices.
func (g Graph) BFSDistances(src perm.Code) map[perm.Code]int {
	dist := make(map[perm.Code]int, g.Order())
	dist[src] = 0
	frontier := []perm.Code{src}
	var scratch []perm.Code
	for len(frontier) > 0 {
		var next []perm.Code
		for _, v := range frontier {
			d := dist[v]
			scratch = g.Neighbors(v, scratch[:0])
			for _, w := range scratch {
				if _, ok := dist[w]; !ok {
					dist[w] = d + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// InducedSubgraph materializes the adjacency lists of the subgraph of
// S_n induced by the given vertex set. Useful for the exact searches in
// small blocks (the 24-vertex S4 blocks of the embedding algorithm).
func (g Graph) InducedSubgraph(vertices []perm.Code) map[perm.Code][]perm.Code {
	in := make(map[perm.Code]bool, len(vertices))
	for _, v := range vertices {
		in[v] = true
	}
	adj := make(map[perm.Code][]perm.Code, len(vertices))
	var scratch []perm.Code
	for _, v := range vertices {
		scratch = g.Neighbors(v, scratch[:0])
		for _, w := range scratch {
			if in[w] {
				adj[v] = append(adj[v], w)
			}
		}
	}
	return adj
}

// RouteAvoiding returns a shortest u-v path whose internal vertices all
// satisfy healthy (endpoints are not checked), or ok=false when the
// forbidden set disconnects the pair. Plain BFS over the healthy
// subgraph; the greedy Route is optimal only in the fault-free graph.
func (g Graph) RouteAvoiding(u, v perm.Code, healthy func(perm.Code) bool) ([]perm.Code, bool) {
	if u == v {
		return []perm.Code{u}, true
	}
	prev := map[perm.Code]perm.Code{u: u}
	frontier := []perm.Code{u}
	var scratch []perm.Code
	for len(frontier) > 0 {
		var next []perm.Code
		for _, x := range frontier {
			scratch = g.Neighbors(x, scratch[:0])
			for _, y := range scratch {
				if _, seen := prev[y]; seen {
					continue
				}
				if y != v && !healthy(y) {
					continue
				}
				prev[y] = x
				if y == v {
					var path []perm.Code
					for cur := v; ; cur = prev[cur] {
						path = append(path, cur)
						if cur == u {
							break
						}
					}
					for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
						path[l], path[r] = path[r], path[l]
					}
					return path, true
				}
				next = append(next, y)
			}
		}
		frontier = next
	}
	return nil, false
}
