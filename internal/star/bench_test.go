package star

import (
	"testing"

	"repro/internal/perm"
)

func BenchmarkNeighbors(b *testing.B) {
	g := New(9)
	v := perm.IdentityCode(9)
	buf := make([]perm.Code, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = g.Neighbors(v, buf[:0])
	}
	_ = buf
}

func BenchmarkDistanceFormula(b *testing.B) {
	g := New(9)
	u := perm.Pack(perm.MustParse("351724698"))
	v := perm.Pack(perm.MustParse("987654321"[:9]))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Distance(u, v)
	}
}

func BenchmarkRoute(b *testing.B) {
	g := New(9)
	u := perm.Pack(perm.MustParse("351724698"))
	v := perm.Pack(perm.MustParse("987654321"[:9]))
	for i := 0; i < b.N; i++ {
		_ = g.Route(u, v)
	}
}

func BenchmarkVerticesEnumeration(b *testing.B) {
	g := New(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		g.Vertices(func(perm.Code) bool { count++; return true })
		if count != g.Order() {
			b.Fatal("bad count")
		}
	}
}
