package star

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestBasicParameters(t *testing.T) {
	cases := []struct {
		n, order, size, degree, diameter int
	}{
		{1, 1, 0, 0, 0},
		{2, 2, 1, 1, 1},
		{3, 6, 6, 2, 3},
		{4, 24, 36, 3, 4},
		{5, 120, 240, 4, 6},
		{6, 720, 1800, 5, 7},
		{7, 5040, 15120, 6, 9},
	}
	for _, c := range cases {
		g := New(c.n)
		if g.Order() != c.order || g.Size() != c.size || g.Degree() != c.degree || g.Diameter() != c.diameter {
			t.Errorf("S_%d: got (%d,%d,%d,%d), want (%d,%d,%d,%d)", c.n,
				g.Order(), g.Size(), g.Degree(), g.Diameter(),
				c.order, c.size, c.degree, c.diameter)
		}
	}
}

func TestVerticesEnumeration(t *testing.T) {
	for n := 1; n <= 6; n++ {
		g := New(n)
		count := 0
		prev := perm.Code(0)
		g.Vertices(func(v perm.Code) bool {
			if !g.Contains(v) {
				t.Fatalf("S_%d enumerated non-vertex %#v", n, v)
			}
			if count > 0 && v.Rank(n) <= prev.Rank(n) {
				t.Fatalf("S_%d enumeration not rank-increasing", n)
			}
			prev = v
			count++
			return true
		})
		if count != g.Order() {
			t.Fatalf("S_%d enumerated %d vertices, want %d", n, count, g.Order())
		}
		// Early stop (needs at least 3 vertices to observe).
		if g.Order() >= 3 {
			count = 0
			g.Vertices(func(perm.Code) bool { count++; return count < 3 })
			if count != 3 {
				t.Fatalf("early stop visited %d", count)
			}
		}
	}
}

func TestAdjacencyStructure(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := New(n)
		var scratch []perm.Code
		g.Vertices(func(v perm.Code) bool {
			scratch = g.Neighbors(v, scratch[:0])
			if len(scratch) != n-1 {
				t.Fatalf("S_%d: %s has %d neighbors", n, v.StringN(n), len(scratch))
			}
			seen := map[perm.Code]bool{}
			for _, w := range scratch {
				if w == v {
					t.Fatalf("S_%d: self loop at %s", n, v.StringN(n))
				}
				if seen[w] {
					t.Fatalf("S_%d: duplicate neighbor of %s", n, v.StringN(n))
				}
				seen[w] = true
				if !g.Adjacent(v, w) || !g.Adjacent(w, v) {
					t.Fatalf("S_%d: adjacency not symmetric between %s and %s", n, v.StringN(n), w.StringN(n))
				}
				if d := g.EdgeDim(v, w); d < 2 || d > n || v.SwapFirst(d) != w {
					t.Fatalf("S_%d: bad edge dimension %d", n, d)
				}
			}
			return true
		})
	}
}

func TestBipartition(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := New(n)
		counts := [2]int{}
		var scratch []perm.Code
		g.Vertices(func(v perm.Code) bool {
			counts[g.PartiteSet(v)]++
			scratch = g.Neighbors(v, scratch[:0])
			for _, w := range scratch {
				if g.PartiteSet(v) == g.PartiteSet(w) {
					t.Fatalf("S_%d: edge inside partite set at %s", n, v.StringN(n))
				}
			}
			return true
		})
		if counts[0] != counts[1] {
			t.Fatalf("S_%d: unequal partite sets %v", n, counts)
		}
	}
}

func TestVisitNeighborsEarlyStop(t *testing.T) {
	g := New(5)
	visits := 0
	g.VisitNeighbors(perm.IdentityCode(5), func(perm.Code, int) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Fatalf("visited %d, want 2", visits)
	}
}

func TestDistanceAgainstBFS(t *testing.T) {
	// Exhaustive all-pairs for n = 3, 4; all pairs from several sources
	// for n = 5.
	for n := 3; n <= 4; n++ {
		g := New(n)
		g.Vertices(func(u perm.Code) bool {
			dist := g.BFSDistances(u)
			g.Vertices(func(v perm.Code) bool {
				if got := g.Distance(u, v); got != dist[v] {
					t.Fatalf("S_%d: Distance(%s, %s) = %d, BFS %d", n, u.StringN(n), v.StringN(n), got, dist[v])
				}
				return true
			})
			return true
		})
	}
	g := New(5)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		u := perm.Pack(perm.Unrank(5, rng.Intn(120)))
		dist := g.BFSDistances(u)
		g.Vertices(func(v perm.Code) bool {
			if got := g.Distance(u, v); got != dist[v] {
				t.Fatalf("S_5: Distance(%s, %s) = %d, BFS %d", u.StringN(5), v.StringN(5), got, dist[v])
			}
			return true
		})
	}
}

func TestDiameterMatchesEccentricity(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := New(n)
		dist := g.BFSDistances(perm.IdentityCode(n))
		ecc := 0
		for _, d := range dist {
			if d > ecc {
				ecc = d
			}
		}
		// Vertex transitivity: the eccentricity of any vertex is the
		// diameter.
		if ecc != g.Diameter() {
			t.Fatalf("S_%d: eccentricity %d, diameter formula %d", n, ecc, g.Diameter())
		}
		if len(dist) != g.Order() {
			t.Fatalf("S_%d: BFS reached %d of %d vertices (disconnected?)", n, len(dist), g.Order())
		}
	}
}

func TestRouteIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 2; n <= 8; n++ {
		g := New(n)
		for trial := 0; trial < 50; trial++ {
			u := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
			v := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
			path := g.Route(u, v)
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("S_%d: route endpoints wrong", n)
			}
			for i := 0; i+1 < len(path); i++ {
				if !g.Adjacent(path[i], path[i+1]) {
					t.Fatalf("S_%d: route hop %d not an edge", n, i)
				}
			}
			if len(path)-1 != g.Distance(u, v) {
				t.Fatalf("S_%d: route length %d != distance %d for %s -> %s",
					n, len(path)-1, g.Distance(u, v), u.StringN(n), v.StringN(n))
			}
		}
	}
}

func TestDistanceToIdentityKnownValues(t *testing.T) {
	cases := []struct {
		p    string
		want int
	}{
		{"1234", 0},
		{"2134", 1}, // one star operation
		{"2314", 2}, // cycle (1 2 3) through the front
		{"1324", 3}, // swap of positions 2,3 with 1 fixed: costs 3
		{"4321", 4},
		{"21", 1},
		{"132", 3},
	}
	for _, c := range cases {
		if got := DistanceToIdentity(perm.MustParse(c.p)); got != c.want {
			t.Errorf("DistanceToIdentity(%s) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(4)
	// The six vertices with symbol 4 in position 4 form an embedded S3,
	// i.e. a 6-cycle.
	var vs []perm.Code
	g.Vertices(func(v perm.Code) bool {
		if v.Symbol(4) == 4 {
			vs = append(vs, v)
		}
		return true
	})
	if len(vs) != 6 {
		t.Fatalf("expected 6 vertices, got %d", len(vs))
	}
	adj := g.InducedSubgraph(vs)
	for _, v := range vs {
		if len(adj[v]) != 2 {
			t.Fatalf("induced degree %d at %s, want 2", len(adj[v]), v.StringN(4))
		}
	}
}

func TestEdgeSymmetrySpotCheck(t *testing.T) {
	// The star graph is edge transitive; a cheap consequence is that
	// every edge lies on the same number of 6-cycles. Count 6-cycles
	// through two structurally different-looking edges of S4 by BFS
	// enumeration of closed walks.
	g := New(4)
	countHexagons := func(u, v perm.Code) int {
		// paths u -> v of length 5 avoiding revisits = 6-cycles through
		// the edge (u, v).
		var rec func(cur perm.Code, visited map[perm.Code]bool, depth int) int
		rec = func(cur perm.Code, visited map[perm.Code]bool, depth int) int {
			if depth == 5 {
				if g.Adjacent(cur, u) && cur == v {
					return 1
				}
				return 0
			}
			total := 0
			var scratch []perm.Code
			scratch = g.Neighbors(cur, scratch)
			for _, w := range scratch {
				if visited[w] {
					continue
				}
				if w == v && depth != 4 {
					continue
				}
				visited[w] = true
				total += rec(w, visited, depth+1)
				delete(visited, w)
			}
			return total
		}
		id := u
		return rec(id, map[perm.Code]bool{u: true}, 0)
	}
	a := perm.IdentityCode(4)
	e1 := countHexagons(a, a.SwapFirst(2))
	e2 := countHexagons(a.SwapFirst(3), a.SwapFirst(3).SwapFirst(4))
	if e1 != e2 || e1 == 0 {
		t.Fatalf("hexagon counts differ: %d vs %d", e1, e2)
	}
}

func TestRouteAvoiding(t *testing.T) {
	g := New(5)
	u := perm.IdentityCode(5)
	v := perm.Pack(perm.MustParse("54321"))
	all := func(perm.Code) bool { return true }
	path, ok := g.RouteAvoiding(u, v, all)
	if !ok || len(path)-1 != g.Distance(u, v) {
		t.Fatalf("unobstructed RouteAvoiding not shortest: %d vs %d", len(path)-1, g.Distance(u, v))
	}

	// Forbid every vertex on the shortest path's interior: a detour must
	// exist (connectivity 4) and be at least as long.
	blocked := map[perm.Code]bool{}
	for _, w := range path[1 : len(path)-1] {
		blocked[w] = true
	}
	detour, ok := g.RouteAvoiding(u, v, func(w perm.Code) bool { return !blocked[w] })
	if !ok {
		t.Fatal("no detour despite high connectivity")
	}
	if len(detour) < len(path) {
		t.Fatal("detour shorter than the shortest path")
	}
	for _, w := range detour[1 : len(detour)-1] {
		if blocked[w] {
			t.Fatal("detour used a blocked vertex")
		}
	}

	// Sealing off the target: all neighbors of v blocked.
	sealed := map[perm.Code]bool{}
	g.VisitNeighbors(v, func(w perm.Code, _ int) bool { sealed[w] = true; return true })
	if _, ok := g.RouteAvoiding(u, v, func(w perm.Code) bool { return !sealed[w] }); ok {
		t.Fatal("route through a sealed target")
	}

	// Trivial case.
	if p, ok := g.RouteAvoiding(u, u, all); !ok || len(p) != 1 {
		t.Fatal("self route wrong")
	}
}
