package star

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// validateDisjointFamily checks that paths form a family of u-v paths
// sharing no internal vertex.
func validateDisjointFamily(t *testing.T, g Graph, u, v perm.Code, paths [][]perm.Code) {
	t.Helper()
	seen := map[perm.Code]int{}
	for pi, path := range paths {
		if len(path) < 2 || path[0] != u || path[len(path)-1] != v {
			t.Fatalf("path %d has bad endpoints", pi)
		}
		for i := 0; i+1 < len(path); i++ {
			if !g.Adjacent(path[i], path[i+1]) {
				t.Fatalf("path %d hop %d not an edge", pi, i)
			}
		}
		inner := map[perm.Code]bool{}
		for _, w := range path[1 : len(path)-1] {
			if w == u || w == v {
				t.Fatalf("path %d passes through an endpoint", pi)
			}
			if inner[w] {
				t.Fatalf("path %d revisits %s", pi, w.StringN(g.N()))
			}
			inner[w] = true
			seen[w]++
			if seen[w] > 1 {
				t.Fatalf("vertex %s shared by two paths", w.StringN(g.N()))
			}
		}
	}
}

// TestDisjointPathsExhaustiveS4: every ordered pair of S_4 admits
// exactly 3 internally disjoint paths — the executable form of
// "maximal fault tolerance" the paper's introduction cites.
func TestDisjointPathsExhaustiveS4(t *testing.T) {
	g := New(4)
	var all []perm.Code
	g.Vertices(func(v perm.Code) bool { all = append(all, v); return true })
	for _, u := range all {
		for _, v := range all {
			if u == v {
				continue
			}
			paths, err := g.DisjointPaths(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != g.Connectivity() {
				t.Fatalf("%s -> %s: %d disjoint paths, want %d",
					u.StringN(4), v.StringN(4), len(paths), g.Connectivity())
			}
			validateDisjointFamily(t, g, u, v, paths)
		}
	}
}

// TestDisjointPathsSampledS5S6 samples pairs at larger n.
func TestDisjointPathsSampledS5S6(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{5, 6} {
		g := New(n)
		for trial := 0; trial < 5; trial++ {
			u := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
			v := perm.Pack(perm.Unrank(n, rng.Intn(g.Order())))
			if u == v {
				continue
			}
			paths, err := g.DisjointPaths(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != n-1 {
				t.Fatalf("S_%d: %d paths, want %d", n, len(paths), n-1)
			}
			validateDisjointFamily(t, g, u, v, paths)
		}
	}
}

// TestDisjointPathsAdjacent: adjacent endpoints still yield n-1 paths,
// one of them the direct edge.
func TestDisjointPathsAdjacent(t *testing.T) {
	g := New(5)
	u := perm.IdentityCode(5)
	v := u.SwapFirst(3)
	paths, err := g.DisjointPaths(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("%d paths", len(paths))
	}
	direct := false
	for _, p := range paths {
		if len(p) == 2 {
			direct = true
		}
	}
	if !direct {
		t.Fatal("no direct edge among the disjoint paths")
	}
	validateDisjointFamily(t, g, u, v, paths)
}

// TestDisjointPathsSurviveFaults ties the primitive to fault tolerance:
// remove any n-2 internal vertices and at least one path remains whole.
func TestDisjointPathsSurviveFaults(t *testing.T) {
	g := New(5)
	rng := rand.New(rand.NewSource(82))
	u := perm.IdentityCode(5)
	v := perm.Pack(perm.MustParse("54321"))
	paths, err := g.DisjointPaths(u, v)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		faulty := map[perm.Code]bool{}
		for len(faulty) < 3 { // n-2 = 3 arbitrary failures
			w := perm.Pack(perm.Unrank(5, rng.Intn(120)))
			if w != u && w != v {
				faulty[w] = true
			}
		}
		survivors := 0
		for _, p := range paths {
			ok := true
			for _, w := range p {
				if faulty[w] {
					ok = false
					break
				}
			}
			if ok {
				survivors++
			}
		}
		if survivors == 0 {
			t.Fatalf("trial %d: all %d disjoint paths hit by %d faults", trial, len(paths), len(faulty))
		}
	}
}

func TestDisjointPathsValidation(t *testing.T) {
	g := New(4)
	u := perm.IdentityCode(4)
	if _, err := g.DisjointPaths(u, u); err == nil {
		t.Fatal("equal endpoints accepted")
	}
	if _, err := g.DisjointPaths(u, perm.None); err == nil {
		t.Fatal("invalid endpoint accepted")
	}
}
