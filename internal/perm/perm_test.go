package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for n := 1; n <= MaxN; n++ {
		p := Identity(n)
		if !p.Valid() {
			t.Fatalf("Identity(%d) invalid", n)
		}
		for i, s := range p {
			if int(s) != i+1 {
				t.Fatalf("Identity(%d)[%d] = %d", n, i, s)
			}
		}
		if p.Parity() != 0 {
			t.Fatalf("Identity(%d) has odd parity", n)
		}
	}
}

func TestIdentityPanics(t *testing.T) {
	for _, n := range []int{0, -1, MaxN + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Identity(%d) did not panic", n)
				}
			}()
			Identity(n)
		}()
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		in []uint8
		ok bool
	}{
		{[]uint8{1}, true},
		{[]uint8{2, 1, 3}, true},
		{[]uint8{1, 1, 2}, false}, // duplicate
		{[]uint8{0, 1, 2}, false}, // symbol 0
		{[]uint8{1, 2, 4}, false}, // out of range
		{[]uint8{}, false},        // empty
	}
	for _, c := range cases {
		_, err := New(c.in)
		if (err == nil) != c.ok {
			t.Errorf("New(%v): err=%v, want ok=%v", c.in, err, c.ok)
		}
	}
}

func TestParseStringRoundtrip(t *testing.T) {
	for _, s := range []string{"1", "21", "4231", "123456789", "123456789abcdefg"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
	for _, s := range []string{"", "12x", "11", "13", "0"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestSwapFirst(t *testing.T) {
	p := MustParse("1234")
	q := p.SwapFirst(3)
	if want := "3214"; q.String() != want {
		t.Fatalf("SwapFirst(3) = %s, want %s", q, want)
	}
	// Involution.
	if !q.SwapFirst(3).Equal(p) {
		t.Fatal("SwapFirst not an involution")
	}
	// Original untouched.
	if p.String() != "1234" {
		t.Fatal("SwapFirst mutated receiver")
	}
	// In-place variant.
	r := p.Clone()
	r.SwapFirstInPlace(2)
	if want := "2134"; r.String() != want {
		t.Fatalf("SwapFirstInPlace(2) = %s, want %s", r, want)
	}
}

func TestSwapFirstPanics(t *testing.T) {
	p := MustParse("123")
	for _, i := range []int{0, 1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SwapFirst(%d) did not panic", i)
				}
			}()
			p.SwapFirst(i)
		}()
	}
}

func TestComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 8; n++ {
		id := Identity(n)
		for trial := 0; trial < 50; trial++ {
			p := Unrank(n, rng.Intn(Factorial(n)))
			q := Unrank(n, rng.Intn(Factorial(n)))
			// Inverse laws.
			if !p.Inverse().Compose(p).Equal(id) || !p.Compose(p.Inverse()).Equal(id) {
				t.Fatalf("n=%d: inverse law fails for %s", n, p)
			}
			// Associativity spot check with a third element.
			r := Unrank(n, rng.Intn(Factorial(n)))
			if !p.Compose(q).Compose(r).Equal(p.Compose(q.Compose(r))) {
				t.Fatalf("n=%d: associativity fails", n)
			}
			// Parity is a homomorphism.
			if p.Compose(q).Parity() != (p.Parity()+q.Parity())%2 {
				t.Fatalf("n=%d: parity not multiplicative for %s, %s", n, p, q)
			}
		}
	}
}

func TestParityMatchesInversionCount(t *testing.T) {
	// Cross-validate the cycle-based parity against a direct inversion
	// count, exhaustively for n <= 6.
	inversions := func(p Perm) int {
		k := 0
		for i := 0; i < len(p); i++ {
			for j := i + 1; j < len(p); j++ {
				if p[i] > p[j] {
					k++
				}
			}
		}
		return k
	}
	for n := 1; n <= 6; n++ {
		for r := 0; r < Factorial(n); r++ {
			p := Unrank(n, r)
			if p.Parity() != inversions(p)%2 {
				t.Fatalf("parity mismatch at %s", p)
			}
		}
	}
}

func TestRankUnrankBijection(t *testing.T) {
	for n := 1; n <= 7; n++ {
		seen := make(map[string]bool)
		prev := ""
		for r := 0; r < Factorial(n); r++ {
			p := Unrank(n, r)
			if !p.Valid() {
				t.Fatalf("Unrank(%d, %d) invalid: %v", n, r, p)
			}
			if p.Rank() != r {
				t.Fatalf("Rank(Unrank(%d, %d)) = %d", n, r, p.Rank())
			}
			s := p.String()
			if seen[s] {
				t.Fatalf("Unrank(%d, %d) repeats %s", n, r, s)
			}
			seen[s] = true
			if s <= prev {
				t.Fatalf("Unrank not lexicographically increasing at rank %d (%s after %s)", r, s, prev)
			}
			prev = s
		}
	}
}

func TestUnrankPanics(t *testing.T) {
	for _, c := range []struct{ n, r int }{{3, -1}, {3, 6}, {0, 0}, {17, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Unrank(%d, %d) did not panic", c.n, c.r)
				}
			}()
			Unrank(c.n, c.r)
		}()
	}
}

func TestTranspositions(t *testing.T) {
	cases := []struct {
		p    string
		want int
	}{
		{"1234", 0},
		{"2134", 1},
		{"2143", 2},
		{"2341", 3},
		{"4321", 2},
	}
	for _, c := range cases {
		if got := MustParse(c.p).Transpositions(); got != c.want {
			t.Errorf("Transpositions(%s) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []int{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Factorial(21) did not panic")
			}
		}()
		Factorial(21)
	}()
}

func TestPositionOf(t *testing.T) {
	p := MustParse("3142")
	for i, s := range p {
		if got := p.PositionOf(s); got != i+1 {
			t.Errorf("PositionOf(%d) = %d, want %d", s, got, i+1)
		}
	}
	if p.PositionOf(9) != 0 {
		t.Error("PositionOf(absent) != 0")
	}
}

// randomPerm draws a uniformly random permutation for property tests.
func randomPerm(rng *rand.Rand, n int) Perm {
	return Unrank(n, rng.Intn(Factorial(n)))
}

func TestQuickRankRoundtrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		p := randomPerm(rng, n)
		return Unrank(n, p.Rank()).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseIsInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		rng := rand.New(rand.NewSource(seed))
		p := randomPerm(rng, n)
		return p.Inverse().Inverse().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSwapFirstChangesParity(t *testing.T) {
	f := func(seed int64, nRaw, dimRaw uint8) bool {
		n := int(nRaw)%9 + 2 // >= 2 so a dimension exists
		dim := int(dimRaw)%(n-1) + 2
		rng := rand.New(rand.NewSource(seed))
		p := randomPerm(rng, n)
		return p.SwapFirst(dim).Parity() == 1-p.Parity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
