// Package perm implements the permutation kernel underlying the star
// graph S_n: permutations of the symbols 1..n as both a friendly slice
// type (Perm) and a packed 4-bit word type (Code) for hot paths.
//
// Conventions follow the paper "Embed Longest Rings onto Star Graphs
// with Vertex Faults" (Hsieh, Chen, Ho; ICPP 1998): a vertex of S_n is
// written a1 a2 ... an, a permutation of 1..n, and the i-th dimensional
// star operation swaps the leftmost symbol a1 with ai (2 <= i <= n).
package perm

import (
	"errors"
	"fmt"
	"strings"
)

// MaxN is the largest supported dimension. A Code packs one symbol into
// four bits, so 16 positions fill a uint64 exactly.
const MaxN = 16

// Factorial-scale arithmetic throughout the module assumes a 64-bit
// int (13! already overflows 32 bits); refuse to compile on 32-bit
// platforms via a constant divide-by-zero.
const _ = 1 / (^uint(0) >> 63)

// mustf is the package's invariant helper: it panics with a formatted
// message when cond is false. Exported entry points use it for
// programmer-error preconditions (dimension ranges, matched operand
// sizes) that are bugs at the call site, never data-dependent
// conditions; those return errors instead.
func mustf(cond bool, format string, args ...interface{}) {
	if !cond {
		panic(fmt.Sprintf(format, args...))
	}
}

// Perm is a permutation of the symbols 1..n, stored one symbol per
// element: p[i] is the symbol in position i+1 (positions are 1-based in
// the paper, 0-based in this slice).
type Perm []uint8

// ErrNotPermutation reports that a slice or string does not denote a
// permutation of 1..n.
var ErrNotPermutation = errors.New("perm: not a permutation of 1..n")

// Identity returns the identity permutation 1 2 ... n.
func Identity(n int) Perm {
	mustf(n >= 1 && n <= MaxN, "perm: dimension %d out of range [1,%d]", n, MaxN)
	p := make(Perm, n)
	for i := range p {
		p[i] = uint8(i + 1)
	}
	return p
}

// New validates and copies the given symbols into a Perm. It returns
// ErrNotPermutation if the symbols are not a permutation of 1..n.
func New(symbols []uint8) (Perm, error) {
	p := make(Perm, len(symbols))
	copy(p, symbols)
	if !p.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrNotPermutation, symbols)
	}
	return p, nil
}

// MustNew is New, panicking on invalid input. For tests and literals.
func MustNew(symbols ...uint8) Perm {
	p, err := New(symbols)
	if err != nil {
		panic(err)
	}
	return p
}

// Valid reports whether p is a permutation of 1..len(p) with
// 1 <= len(p) <= MaxN.
func (p Perm) Valid() bool {
	n := len(p)
	if n < 1 || n > MaxN {
		return false
	}
	var seen uint32
	for _, s := range p {
		if s < 1 || int(s) > n {
			return false
		}
		bit := uint32(1) << (s - 1)
		if seen&bit != 0 {
			return false
		}
		seen |= bit
	}
	return true
}

// N returns the dimension of the permutation.
func (p Perm) N() int { return len(p) }

// Clone returns a fresh copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// symbolRunes maps symbol values 1..16 to their single-character
// spelling: 1..9 then a..g, matching the paper's digit strings for
// n <= 9 and extending them compactly beyond.
const symbolRunes = "123456789abcdefg"

// String renders p in the paper's notation, e.g. "2134" for n=4 and
// "123a56789" style strings (with letters) for n >= 10.
func (p Perm) String() string {
	var b strings.Builder
	b.Grow(len(p))
	for _, s := range p {
		if s < 1 || int(s) > MaxN {
			b.WriteByte('?')
			continue
		}
		b.WriteByte(symbolRunes[s-1])
	}
	return b.String()
}

// Parse reads a permutation written as one character per symbol
// (digits 1..9 then letters a..g), the inverse of String.
func Parse(s string) (Perm, error) {
	p := make(Perm, 0, len(s))
	for _, r := range s {
		idx := strings.IndexRune(symbolRunes, r)
		if idx < 0 {
			return nil, fmt.Errorf("%w: bad symbol %q in %q", ErrNotPermutation, r, s)
		}
		p = append(p, uint8(idx+1))
	}
	if !p.Valid() {
		return nil, fmt.Errorf("%w: %q", ErrNotPermutation, s)
	}
	return p, nil
}

// MustParse is Parse, panicking on invalid input.
func MustParse(s string) Perm {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// SwapFirst returns the neighbor of p along dimension i: the permutation
// obtained by exchanging the symbol in position 1 with the symbol in
// position i. Positions are 1-based as in the paper, so 2 <= i <= n.
func (p Perm) SwapFirst(i int) Perm {
	mustf(i >= 2 && i <= len(p), "perm: SwapFirst dimension %d out of range [2,%d]", i, len(p))
	q := p.Clone()
	q[0], q[i-1] = q[i-1], q[0]
	return q
}

// SwapFirstInPlace applies the dimension-i star operation to p itself.
func (p Perm) SwapFirstInPlace(i int) {
	mustf(i >= 2 && i <= len(p), "perm: SwapFirst dimension %d out of range [2,%d]", i, len(p))
	p[0], p[i-1] = p[i-1], p[0]
}

// PositionOf returns the 1-based position holding symbol s, or 0 if s
// does not occur in p.
func (p Perm) PositionOf(s uint8) int {
	for i, t := range p {
		if t == s {
			return i + 1
		}
	}
	return 0
}

// Compose returns the permutation r with r(i) = p(q(i)), where a
// permutation is read as the function position -> symbol. Both operands
// must have the same dimension.
func (p Perm) Compose(q Perm) Perm {
	mustf(len(p) == len(q), "perm: Compose dimension mismatch: %d vs %d", len(p), len(q))
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]-1]
	}
	return r
}

// Inverse returns p^-1 under Compose: Inverse(p).Compose(p) is the
// identity.
func (p Perm) Inverse() Perm {
	r := make(Perm, len(p))
	for i, s := range p {
		r[s-1] = uint8(i + 1)
	}
	return r
}

// Parity returns 0 for even permutations and 1 for odd ones. The two
// values index the two partite sets of the bipartite graph S_n, which
// have equal size n!/2 (Jwo, Lakshmivarahan, Dhall).
func (p Perm) Parity() int {
	// Count inversions via cycle decomposition: a permutation is even
	// iff n minus the number of cycles is even.
	var visited uint32
	cycles := 0
	for i := 0; i < len(p); i++ {
		if visited&(1<<uint(i)) != 0 {
			continue
		}
		cycles++
		for j := i; visited&(1<<uint(j)) == 0; j = int(p[j]) - 1 {
			visited |= 1 << uint(j)
		}
	}
	return (len(p) - cycles) & 1
}

// Transpositions returns the minimum number of arbitrary transpositions
// needed to sort p, i.e. n minus the number of cycles of p.
func (p Perm) Transpositions() int {
	var visited uint32
	cycles := 0
	for i := 0; i < len(p); i++ {
		if visited&(1<<uint(i)) != 0 {
			continue
		}
		cycles++
		for j := i; visited&(1<<uint(j)) == 0; j = int(p[j]) - 1 {
			visited |= 1 << uint(j)
		}
	}
	return len(p) - cycles
}

// Factorial returns n! as an int. It panics if the product overflows a
// 64-bit int (n > 20), far beyond MaxN.
func Factorial(n int) int {
	mustf(n >= 0 && n <= 20, "perm: Factorial(%d) out of range", n)
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// Rank returns the lexicographic rank of p among all permutations of
// 1..n, in the range [0, n!). Rank(Identity(n)) == 0.
func (p Perm) Rank() int {
	n := len(p)
	rank := 0
	// Lehmer code with an O(n^2) scan; n <= 16 keeps this trivial.
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank = rank*(n-i) + smaller
	}
	return rank
}

// Unrank returns the permutation of 1..n with the given lexicographic
// rank. It is the inverse of Rank.
func Unrank(n, rank int) Perm {
	mustf(n >= 1 && n <= MaxN, "perm: dimension %d out of range [1,%d]", n, MaxN)
	total := Factorial(n)
	mustf(rank >= 0 && rank < total, "perm: rank %d out of range [0,%d)", rank, total)
	// Decode the factorial-number-system digits, most significant first:
	// rank = sum(digits[i] * (n-1-i)!).
	var digits [MaxN]int
	for i := 0; i < n; i++ {
		f := Factorial(n - 1 - i)
		digits[i] = rank / f
		rank %= f
	}
	avail := make([]uint8, n)
	for i := range avail {
		avail[i] = uint8(i + 1)
	}
	p := make(Perm, n)
	for i := 0; i < n; i++ {
		d := digits[i]
		p[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return p
}
