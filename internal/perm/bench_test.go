package perm

import (
	"math/rand"
	"testing"
)

func BenchmarkPack(b *testing.B) {
	p := MustParse("a123456789bcdefg"[:10])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Pack(p)
	}
}

func BenchmarkCodeSwapFirst(b *testing.B) {
	c := Pack(MustParse("3517246"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c = c.SwapFirst(2 + i%6)
	}
	_ = c
}

func BenchmarkCodeParity(b *testing.B) {
	c := Pack(MustParse("351724698"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Parity(9)
	}
}

func BenchmarkRank(b *testing.B) {
	p := MustParse("351724698")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Rank()
	}
}

func BenchmarkUnrank(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ranks := make([]int, 1024)
	for i := range ranks {
		ranks[i] = rng.Intn(Factorial(9))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Unrank(9, ranks[i%len(ranks)])
	}
}

func BenchmarkDimOf(b *testing.B) {
	a := Pack(MustParse("351724698"))
	c := a.SwapFirst(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DimOf(a, c, 9)
	}
}
