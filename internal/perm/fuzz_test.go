package perm

import "testing"

// FuzzParse feeds arbitrary strings to the permutation parser; accepted
// inputs must roundtrip exactly and satisfy every invariant.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"1", "21", "4231", "123456789abcdefg", "", "11", "xy"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if !p.Valid() {
			t.Fatalf("Parse(%q) produced invalid permutation %v", s, p)
		}
		if p.String() != s {
			t.Fatalf("roundtrip %q -> %q", s, p.String())
		}
		if got := Unrank(p.N(), p.Rank()); !got.Equal(p) {
			t.Fatalf("rank roundtrip failed for %q", s)
		}
		c := Pack(p)
		if !c.Valid(p.N()) || !c.Unpack(p.N()).Equal(p) {
			t.Fatalf("code roundtrip failed for %q", s)
		}
	})
}

// FuzzCodeOps drives the packed-code operations with arbitrary words;
// only valid permutation codes may pass Valid, and operations on valid
// codes must preserve validity.
func FuzzCodeOps(f *testing.F) {
	f.Add(uint64(0), uint8(4), uint8(2))
	f.Add(uint64(0x3210), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, raw uint64, nRaw, dimRaw uint8) {
		n := int(nRaw)%MaxN + 1
		c := Code(raw)
		if !c.Valid(n) {
			return
		}
		p := c.Unpack(n)
		if !p.Valid() {
			t.Fatalf("Valid code %x unpacked to invalid %v", raw, p)
		}
		if n >= 2 {
			dim := int(dimRaw)%(n-1) + 2
			d := c.SwapFirst(dim)
			if !d.Valid(n) {
				t.Fatalf("SwapFirst broke validity: %x dim %d", raw, dim)
			}
			if d.SwapFirst(dim) != c {
				t.Fatalf("SwapFirst not an involution: %x dim %d", raw, dim)
			}
			if got := DimOf(c, d, n); got != dim {
				t.Fatalf("DimOf = %d, want %d", got, dim)
			}
			if c.Parity(n) == d.Parity(n) {
				t.Fatalf("edge does not cross the bipartition")
			}
		}
	})
}
