package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= MaxN; n++ {
		for trial := 0; trial < 50; trial++ {
			p := randomPerm(rng, min(n, 10)) // Factorial beyond 10 overflows rng.Intn usage ranges slowly; stay modest
			if p.N() != min(n, 10) {
				t.Fatal("bad test setup")
			}
			c := Pack(p)
			if !c.Valid(p.N()) {
				t.Fatalf("Pack(%s) invalid", p)
			}
			if !c.Unpack(p.N()).Equal(p) {
				t.Fatalf("roundtrip failed for %s", p)
			}
		}
	}
}

func TestCodeSymbolOps(t *testing.T) {
	c := Pack(MustParse("35142"))
	want := []uint8{3, 5, 1, 4, 2}
	for i, w := range want {
		if got := c.Symbol(i + 1); got != w {
			t.Errorf("Symbol(%d) = %d, want %d", i+1, got, w)
		}
	}
	c2 := c.WithSymbol(2, 9)
	if c2.Symbol(2) != 9 {
		t.Error("WithSymbol did not set")
	}
	if c2.Symbol(1) != 3 || c2.Symbol(3) != 1 {
		t.Error("WithSymbol disturbed neighbors")
	}
}

func TestCodeSwapFirstMatchesPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 2; n <= 10; n++ {
		for trial := 0; trial < 100; trial++ {
			p := randomPerm(rng, n)
			dim := rng.Intn(n-1) + 2
			if Pack(p).SwapFirst(dim) != Pack(p.SwapFirst(dim)) {
				t.Fatalf("SwapFirst mismatch at %s dim %d", p, dim)
			}
		}
	}
}

func TestCodeValid(t *testing.T) {
	if !Pack(MustParse("123")).Valid(3) {
		t.Error("valid code rejected")
	}
	if Pack(MustParse("123")).Valid(4) {
		t.Error("wrong dimension accepted")
	}
	if Code(0).Valid(2) {
		t.Error("duplicate-symbol code accepted")
	}
	if None.Valid(16) {
		t.Error("None accepted as a permutation")
	}
	// High bits must be clear.
	c := Pack(MustParse("123")) | Code(5)<<32
	if c.Valid(3) {
		t.Error("code with dirty high bits accepted")
	}
}

func TestCodeParityMatchesPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 1; n <= 10; n++ {
		for trial := 0; trial < 100; trial++ {
			p := randomPerm(rng, n)
			if Pack(p).Parity(n) != p.Parity() {
				t.Fatalf("parity mismatch at %s", p)
			}
		}
	}
}

func TestCodeRankMatchesPerm(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for r := 0; r < Factorial(n); r++ {
			p := Unrank(n, r)
			if Pack(p).Rank(n) != r {
				t.Fatalf("Code.Rank mismatch at %s", p)
			}
		}
	}
}

func TestCodePositionOf(t *testing.T) {
	c := Pack(MustParse("4213"))
	for i := 1; i <= 4; i++ {
		s := c.Symbol(i)
		if got := c.PositionOf(4, s); got != i {
			t.Errorf("PositionOf(%d) = %d, want %d", s, got, i)
		}
	}
	if c.PositionOf(4, 9) != 0 {
		t.Error("PositionOf(absent) != 0")
	}
}

func TestDimOfExhaustiveS4(t *testing.T) {
	// Every pair of S4 codes: DimOf agrees with explicit SwapFirst
	// construction, and is 0 exactly for non-neighbors.
	var codes []Code
	for r := 0; r < 24; r++ {
		codes = append(codes, Pack(Unrank(4, r)))
	}
	for _, a := range codes {
		neighbors := map[Code]int{}
		for dim := 2; dim <= 4; dim++ {
			neighbors[a.SwapFirst(dim)] = dim
		}
		for _, b := range codes {
			want := neighbors[b] // 0 when absent
			if got := DimOf(a, b, 4); got != want {
				t.Fatalf("DimOf(%s, %s) = %d, want %d", a.StringN(4), b.StringN(4), got, want)
			}
			if Adjacent(a, b, 4) != (want != 0) {
				t.Fatalf("Adjacent(%s, %s) inconsistent", a.StringN(4), b.StringN(4))
			}
		}
	}
}

func TestIdentityCode(t *testing.T) {
	for n := 1; n <= MaxN; n++ {
		if IdentityCode(n) != Pack(Identity(n)) {
			t.Fatalf("IdentityCode(%d) mismatch", n)
		}
	}
}

func TestQuickCodeStringRoundtrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		rng := rand.New(rand.NewSource(seed))
		p := randomPerm(rng, n)
		c := Pack(p)
		q, err := Parse(c.StringN(n))
		return err == nil && Pack(q) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
