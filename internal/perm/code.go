package perm

import "fmt"

// Code is a permutation packed into a single machine word: position i
// (0-based) occupies bits [4i, 4i+4) and stores symbol-1. It supports
// the same operations as Perm without allocating, which matters on the
// embedder's hot paths where rings of millions of vertices are built.
//
// The zero Code is the (invalid as a permutation, but useful as a
// sentinel) all-symbol-1 word; use None for an explicit sentinel.
type Code uint64

// None is a sentinel Code that cannot equal any valid permutation code
// for n <= MaxN (it decodes to symbol 16 in every position).
const None Code = ^Code(0)

// Pack converts a Perm to its Code. The dimension is not stored; all
// Code operations take n explicitly.
func Pack(p Perm) Code {
	var c Code
	for i, s := range p {
		c |= Code(s-1) << (4 * uint(i))
	}
	return c
}

// Unpack converts a Code back to a Perm of dimension n.
func (c Code) Unpack(n int) Perm {
	p := make(Perm, n)
	for i := 0; i < n; i++ {
		p[i] = uint8(c>>(4*uint(i))&0xF) + 1
	}
	return p
}

// Symbol returns the symbol (1..n) in 1-based position i.
func (c Code) Symbol(i int) uint8 {
	return uint8(c>>(4*uint(i-1))&0xF) + 1
}

// WithSymbol returns a copy of c with 1-based position i set to symbol s.
func (c Code) WithSymbol(i int, s uint8) Code {
	shift := 4 * uint(i-1)
	return c&^(Code(0xF)<<shift) | Code(s-1)<<shift
}

// SwapFirst returns the neighbor of c along dimension i (2 <= i <= n):
// the code with positions 1 and i exchanged.
func (c Code) SwapFirst(i int) Code {
	shift := 4 * uint(i-1)
	a := c & 0xF
	b := (c >> shift) & 0xF
	return c ^ (a ^ b) ^ ((a ^ b) << shift)
}

// Valid reports whether c encodes a permutation of 1..n.
func (c Code) Valid(n int) bool {
	if n < 1 || n > MaxN {
		return false
	}
	var seen uint32
	for i := 0; i < n; i++ {
		s := c >> (4 * uint(i)) & 0xF
		if int(s) >= n {
			return false
		}
		bit := uint32(1) << s
		if seen&bit != 0 {
			return false
		}
		seen |= bit
	}
	// Higher positions must be zero so that equal permutations have
	// equal codes.
	if n < MaxN && c>>(4*uint(n)) != 0 {
		return false
	}
	return true
}

// Parity returns 0 for even and 1 for odd permutation codes, matching
// Perm.Parity.
func (c Code) Parity(n int) int {
	var visited uint32
	cycles := 0
	for i := 0; i < n; i++ {
		if visited&(1<<uint(i)) != 0 {
			continue
		}
		cycles++
		for j := i; visited&(1<<uint(j)) == 0; j = int(c >> (4 * uint(j)) & 0xF) {
			visited |= 1 << uint(j)
		}
	}
	return (n - cycles) & 1
}

// PositionOf returns the 1-based position of symbol s in c, or 0 if the
// symbol does not occur among the first n positions.
func (c Code) PositionOf(n int, s uint8) int {
	want := Code(s - 1)
	for i := 0; i < n; i++ {
		if c>>(4*uint(i))&0xF == want {
			return i + 1
		}
	}
	return 0
}

// String renders the code as a dimension-n permutation string.
func (c Code) StringN(n int) string {
	return c.Unpack(n).String()
}

// IdentityCode returns Pack(Identity(n)).
func IdentityCode(n int) Code {
	var c Code
	for i := 0; i < n; i++ {
		c |= Code(i) << (4 * uint(i))
	}
	return c
}

// RankCode returns the lexicographic rank of c among permutations of
// 1..n, equivalent to c.Unpack(n).Rank() without allocating.
func (c Code) Rank(n int) int {
	rank := 0
	for i := 0; i < n; i++ {
		si := c >> (4 * uint(i)) & 0xF
		smaller := 0
		for j := i + 1; j < n; j++ {
			if c>>(4*uint(j))&0xF < si {
				smaller++
			}
		}
		rank = rank*(n-i) + smaller
	}
	return rank
}

// DimOf returns the dimension i (2 <= i <= n) such that b == a.SwapFirst(i),
// or 0 when a and b are not adjacent in S_n.
func DimOf(a, b Code, n int) int {
	if a == b {
		return 0
	}
	x := a ^ b
	// Adjacent codes differ in exactly two nibbles, one of them nibble 0,
	// and the differing nibbles hold swapped symbols.
	if x&0xF == 0 {
		return 0
	}
	dim := 0
	for i := 1; i < n; i++ {
		if x>>(4*uint(i))&0xF != 0 {
			if dim != 0 {
				return 0 // more than two nibbles differ
			}
			dim = i + 1
		}
	}
	if dim == 0 {
		return 0
	}
	if a.SwapFirst(dim) != b {
		return 0
	}
	return dim
}

// Adjacent reports whether a and b are neighbors in S_n.
func Adjacent(a, b Code, n int) bool { return DimOf(a, b, n) != 0 }

// Format implements fmt.Formatter-ish debugging support: %v prints the
// raw word, use StringN for permutation notation.
func (c Code) GoString() string { return fmt.Sprintf("perm.Code(%#x)", uint64(c)) }
