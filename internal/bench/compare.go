package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Verdicts for one compared metric.
const (
	// VerdictOK means the change is inside the noise threshold.
	VerdictOK = "ok"
	// VerdictFaster means the metric improved past the threshold.
	VerdictFaster = "faster"
	// VerdictRegressed means the metric worsened past the threshold.
	VerdictRegressed = "REGRESSED"
)

// Options tunes Compare.
type Options struct {
	// Threshold is the relative change that counts as significant:
	// 0.30 means a metric must move 30% to leave "ok". Zero means the
	// DefaultThreshold.
	Threshold float64
	// MinNS is the noise floor for nanosecond metrics: if both sides
	// are below it the comparison is always "ok" (micro-timings jitter
	// far beyond any threshold). Zero means DefaultMinNS.
	MinNS float64
}

// DefaultThreshold is the relative change treated as significant. 30%
// is deliberately loose: the gate runs on shared CI machines, and the
// repo's own embed benchmarks vary ~10-15% run over run.
const DefaultThreshold = 0.30

// DefaultMinNS is the timing noise floor (1ms): sub-millisecond
// absolute timings are dominated by scheduler jitter at -benchtime 1x.
const DefaultMinNS = float64(time.Millisecond)

func (o Options) defaults() Options {
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.MinNS == 0 {
		o.MinNS = DefaultMinNS
	}
	return o
}

// Delta is one metric's old-vs-new comparison.
type Delta struct {
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Change  float64 `json:"change"` // relative: (new-old)/old
	Verdict string  `json:"verdict"`
}

// Comparison is the full result of comparing two records.
type Comparison struct {
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// OnlyOld / OnlyNew list metrics present on one side only; they
	// never fail the gate but are reported so schema drift is visible.
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
}

// Regressions returns the metrics that worsened past the threshold.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Verdict == VerdictRegressed {
			out = append(out, d)
		}
	}
	return out
}

// Compare joins two records on metric name and classifies every shared
// metric as ok / faster / REGRESSED. Metrics below the timing noise
// floor on both sides are always ok.
func Compare(old, new *Record, opts Options) *Comparison {
	opts = opts.defaults()
	c := &Comparison{Threshold: opts.Threshold}
	names := make([]string, 0, len(old.Metrics))
	for name := range old.Metrics {
		if _, ok := new.Metrics[name]; ok {
			names = append(names, name)
		} else {
			c.OnlyOld = append(c.OnlyOld, name)
		}
	}
	for name := range new.Metrics {
		if _, ok := old.Metrics[name]; !ok {
			c.OnlyNew = append(c.OnlyNew, name)
		}
	}
	sort.Strings(names)
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)

	for _, name := range names {
		om, nm := old.Metrics[name], new.Metrics[name]
		d := Delta{Name: name, Unit: nm.Unit, Old: om.Value, New: nm.Value}
		d.Change = relChange(om.Value, nm.Value)
		d.Verdict = classify(om, nm, d.Change, opts)
		c.Deltas = append(c.Deltas, d)
	}
	return c
}

// relChange is (new-old)/old with the zero-denominator cases pinned:
// 0 -> 0 is no change; 0 -> x is an unbounded increase.
func relChange(old, new float64) float64 {
	if old == new {
		return 0
	}
	if old == 0 {
		return math.Inf(sign(new))
	}
	return (new - old) / math.Abs(old)
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

func classify(om, nm Metric, change float64, opts Options) string {
	// Noise floor: timings too small to measure reliably never gate.
	if nm.Unit == "ns" && math.Abs(om.Value) < opts.MinNS && math.Abs(nm.Value) < opts.MinNS {
		return VerdictOK
	}
	worse := change > opts.Threshold
	better := change < -opts.Threshold
	if !nm.lowerIsBetter() {
		worse, better = better, worse
	}
	switch {
	case worse:
		return VerdictRegressed
	case better:
		return VerdictFaster
	default:
		return VerdictOK
	}
}

// Fprint renders the comparison as an aligned benchstat-style table.
// With verbose false only non-ok rows (and the summary) print.
func (c *Comparison) Fprint(w io.Writer, verbose bool) {
	nameW := len("metric")
	for _, d := range c.Deltas {
		if !verbose && d.Verdict == VerdictOK {
			continue
		}
		if len(d.Name) > nameW {
			nameW = len(d.Name)
		}
	}
	shown := 0
	fmt.Fprintf(w, "%-*s  %14s  %14s  %8s  %s\n", nameW, "metric", "old", "new", "delta", "verdict")
	for _, d := range c.Deltas {
		if !verbose && d.Verdict == VerdictOK {
			continue
		}
		shown++
		fmt.Fprintf(w, "%-*s  %14s  %14s  %8s  %s\n",
			nameW, d.Name, formatValue(d.Old, d.Unit), formatValue(d.New, d.Unit),
			formatChange(d.Change), d.Verdict)
	}
	if shown == 0 {
		fmt.Fprintf(w, "(all %d shared metrics within ±%.0f%%)\n", len(c.Deltas), c.Threshold*100)
	}
	if len(c.OnlyOld) > 0 {
		fmt.Fprintf(w, "only in old record: %d metrics\n", len(c.OnlyOld))
	}
	if len(c.OnlyNew) > 0 {
		fmt.Fprintf(w, "only in new record: %d metrics\n", len(c.OnlyNew))
	}
	reg := c.Regressions()
	fmt.Fprintf(w, "compared %d metrics: %d regressed (threshold %.0f%%)\n",
		len(c.Deltas), len(reg), c.Threshold*100)
}

func formatValue(v float64, unit string) string {
	if unit == "ns" {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d %s", int64(v), unit)
	}
	return fmt.Sprintf("%.2f %s", v, unit)
}

func formatChange(change float64) string {
	if math.IsInf(change, 1) {
		return "+inf"
	}
	if math.IsInf(change, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%+.1f%%", change*100)
}
