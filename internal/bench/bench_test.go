package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sweepDoc = `{
  "experiments": [{
    "id": "F2",
    "headers": ["n", "|Fv|", "ring len", "blocks", "time", "ring MiB"],
    "rows": [
      [{"text":"6","num":6}, {"text":"3","num":3}, {"text":"714","num":714},
       {"text":"30","num":30}, {"text":"1.44ms","ns":1440000}, {"text":"0.01","num":0.01}],
      [{"text":"7","num":7}, {"text":"4","num":4}, {"text":"5032","num":5032},
       {"text":"210","num":210}, {"text":"3.56ms","ns":3560000}, {"text":"0.04","num":0.04}]
    ]
  }]
}`

const snapshotDoc = `{
  "counters": {"core.s4.cache_hits": 12},
  "gauges": {"core.route.workers": 4},
  "histograms": {
    "core.phase.total": {"count": 5, "sum_ns": 5000000, "p50_ns": 900000, "p95_ns": 2000000},
    "core.phase.verify": {"count": 0, "sum_ns": 0, "p50_ns": 0, "p95_ns": 0}
  }
}`

const goBenchDoc = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEmbedTheorem1-8   	     100	  12000000 ns/op	  500000 B/op	    1200 allocs/op
BenchmarkObsDisabled-8     	100000000	         8.849 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestIngestSweepJSON(t *testing.T) {
	rec := NewRecord("test")
	if err := Ingest(rec, "BENCH_embed.json", []byte(sweepDoc)); err != nil {
		t.Fatal(err)
	}
	m, ok := rec.Metrics["F2/n=7/time"]
	if !ok {
		t.Fatalf("missing F2/n=7/time; have %v", names(rec))
	}
	if m.Value != 3560000 || m.Unit != "ns" {
		t.Errorf("F2/n=7/time = %+v", m)
	}
	// Count columns (blocks, ring len) are workload shape, not perf.
	if _, ok := rec.Metrics["F2/n=7/blocks"]; ok {
		t.Error("count column ingested as a metric")
	}
	if len(rec.Sources) != 1 || rec.Sources[0] != "BENCH_embed.json" {
		t.Errorf("sources = %v", rec.Sources)
	}
}

func TestIngestSweepSpeedupRatio(t *testing.T) {
	doc := `{"experiments":[{"id":"F7","headers":["n","splice speedup"],
	  "rows":[[{"text":"8","num":8},{"text":"458x","num":458}]]}]}`
	rec := NewRecord("test")
	if err := Ingest(rec, "BENCH_repair.json", []byte(doc)); err != nil {
		t.Fatal(err)
	}
	m, ok := rec.Metrics["F7/n=8/splice_speedup"]
	if !ok || m.Better != HigherBetter || m.Value != 458 {
		t.Fatalf("speedup metric = %+v (present %v)", m, ok)
	}
}

func TestIngestSnapshotJSON(t *testing.T) {
	rec := NewRecord("test")
	if err := Ingest(rec, "BENCH_obs.json", []byte(snapshotDoc)); err != nil {
		t.Fatal(err)
	}
	if m := rec.Metrics["obs/core.phase.total/p95_ns"]; m.Value != 2000000 || m.Unit != "ns" {
		t.Errorf("p95 metric = %+v", m)
	}
	// Zero-count histograms are skipped, counters/gauges never ingested.
	if _, ok := rec.Metrics["obs/core.phase.verify/p50_ns"]; ok {
		t.Error("empty histogram ingested")
	}
}

const serveLoadDoc = `{
  "serve_load": {
    "target": "http://127.0.0.1:43627",
    "n": 6,
    "requests": 160,
    "concurrency": 4,
    "seed": 1,
    "routes": {
      "embed": {"count": 20, "errors": 0, "shed": 0, "p50_ns": 800000, "p95_ns": 1500000, "max_ns": 2000000},
      "repair": {"count": 118, "errors": 0, "shed": 0, "p50_ns": 400000, "p95_ns": 1100000, "max_ns": 1800000},
      "ring": {"count": 22, "errors": 0, "shed": 0, "p50_ns": 900000, "p95_ns": 1600000, "max_ns": 2100000},
      "chaos": {"count": 0, "errors": 0, "shed": 0, "p50_ns": 0, "p95_ns": 0, "max_ns": 0}
    }
  }
}`

func TestIngestServeLoad(t *testing.T) {
	rec := NewRecord("test")
	if err := Ingest(rec, "BENCH_serve.json", []byte(serveLoadDoc)); err != nil {
		t.Fatal(err)
	}
	if m := rec.Metrics["serve/repair/p95_ns"]; m.Value != 1100000 || m.Unit != "ns" {
		t.Errorf("serve/repair/p95_ns = %+v", m)
	}
	if m := rec.Metrics["serve/embed/p50_ns"]; m.Value != 800000 {
		t.Errorf("serve/embed/p50_ns = %+v", m)
	}
	// Routes that saw no traffic are skipped, like empty histograms.
	if _, ok := rec.Metrics["serve/chaos/p50_ns"]; ok {
		t.Error("zero-count route ingested")
	}
	if len(rec.Sources) != 1 || rec.Sources[0] != "BENCH_serve.json" {
		t.Errorf("sources = %v", rec.Sources)
	}
}

func TestIngestServeLoadRejectsEmpty(t *testing.T) {
	rec := NewRecord("test")
	if err := Ingest(rec, "bad", []byte(`{"serve_load": {"routes": {}}}`)); err == nil {
		t.Error("ingest accepted a serve_load document with no traffic")
	}
}

func TestIngestGoBench(t *testing.T) {
	rec := NewRecord("test")
	if err := Ingest(rec, "BENCH_embed.txt", []byte(goBenchDoc)); err != nil {
		t.Fatal(err)
	}
	if m := rec.Metrics["BenchmarkEmbedTheorem1/ns_op"]; m.Value != 12000000 {
		t.Errorf("ns_op = %+v", m)
	}
	if m := rec.Metrics["BenchmarkObsDisabled/allocs_op"]; m.Value != 0 || m.Unit != "allocs/op" {
		t.Errorf("allocs_op = %+v", m)
	}
	if _, ok := rec.Metrics["BenchmarkObsDisabled-8/ns_op"]; ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	rec := NewRecord("test")
	for _, bad := range []string{"", "not json not bench", `{"experiments": []}`, `{"histograms": {}}`} {
		if err := Ingest(rec, "bad", []byte(bad)); err == nil {
			t.Errorf("ingest accepted %q", bad)
		}
	}
}

// TestCompareDetectsSlowdown is the acceptance criterion: a synthetic
// 2x slowdown on a metric above the noise floor must come back
// REGRESSED, and identical records must produce zero regressions.
func TestCompareDetectsSlowdown(t *testing.T) {
	old := NewRecord("old")
	old.Add("F2/n=7/time", Metric{Value: 5e6, Unit: "ns"})
	old.Add("BenchmarkEmbedTheorem1/ns_op", Metric{Value: 12e6, Unit: "ns"})

	same := Compare(old, old, Options{})
	if reg := same.Regressions(); len(reg) != 0 {
		t.Fatalf("identical records regressed: %+v", reg)
	}

	slow := NewRecord("new")
	slow.Add("F2/n=7/time", Metric{Value: 10e6, Unit: "ns"}) // 2x slower
	slow.Add("BenchmarkEmbedTheorem1/ns_op", Metric{Value: 12e6, Unit: "ns"})
	cmp := Compare(old, slow, Options{})
	reg := cmp.Regressions()
	if len(reg) != 1 || reg[0].Name != "F2/n=7/time" {
		t.Fatalf("regressions = %+v", reg)
	}
	if reg[0].Verdict != VerdictRegressed || math.Abs(reg[0].Change-1.0) > 1e-9 {
		t.Errorf("delta = %+v", reg[0])
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// 2x slowdown on a 10µs timing: both sides below the 1ms floor.
	old := NewRecord("old")
	old.Add("tiny", Metric{Value: float64(10 * time.Microsecond), Unit: "ns"})
	new := NewRecord("new")
	new.Add("tiny", Metric{Value: float64(20 * time.Microsecond), Unit: "ns"})
	if reg := Compare(old, new, Options{}).Regressions(); len(reg) != 0 {
		t.Fatalf("sub-floor jitter regressed: %+v", reg)
	}
	// The floor does not apply to unit-less metrics like allocs/op.
	old.Add("allocs", Metric{Value: 0, Unit: "allocs/op"})
	new.Add("allocs", Metric{Value: 3, Unit: "allocs/op"})
	if reg := Compare(old, new, Options{}).Regressions(); len(reg) != 1 {
		t.Fatalf("alloc regression missed: %+v", reg)
	}
}

func TestCompareHigherBetter(t *testing.T) {
	old := NewRecord("old")
	old.Add("speedup", Metric{Value: 400, Unit: "ratio", Better: HigherBetter})
	worse := NewRecord("new")
	worse.Add("speedup", Metric{Value: 100, Unit: "ratio", Better: HigherBetter})
	if reg := Compare(old, worse, Options{}).Regressions(); len(reg) != 1 {
		t.Fatalf("speedup collapse not flagged: %+v", reg)
	}
	better := NewRecord("new")
	better.Add("speedup", Metric{Value: 900, Unit: "ratio", Better: HigherBetter})
	cmp := Compare(old, better, Options{})
	if len(cmp.Regressions()) != 0 || cmp.Deltas[0].Verdict != VerdictFaster {
		t.Fatalf("improvement misclassified: %+v", cmp.Deltas)
	}
}

func TestCompareDisjointMetrics(t *testing.T) {
	old := NewRecord("old")
	old.Add("gone", Metric{Value: 1, Unit: "count"})
	old.Add("shared", Metric{Value: 1, Unit: "count"})
	new := NewRecord("new")
	new.Add("added", Metric{Value: 1, Unit: "count"})
	new.Add("shared", Metric{Value: 1, Unit: "count"})
	cmp := Compare(old, new, Options{})
	if len(cmp.OnlyOld) != 1 || cmp.OnlyOld[0] != "gone" {
		t.Errorf("OnlyOld = %v", cmp.OnlyOld)
	}
	if len(cmp.OnlyNew) != 1 || cmp.OnlyNew[0] != "added" {
		t.Errorf("OnlyNew = %v", cmp.OnlyNew)
	}
	if len(cmp.Deltas) != 1 {
		t.Errorf("Deltas = %+v", cmp.Deltas)
	}
}

func TestRecordRoundTripAndTrajectory(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecord("run-1")
	rec.Add("m", Metric{Value: 42, Unit: "count"})

	path := filepath.Join(dir, "rec.json")
	if err := WriteRecordFile(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "run-1" || back.Metrics["m"].Value != 42 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	traj := filepath.Join(dir, "traj.ndjson")
	for i := 0; i < 3; i++ {
		if err := AppendNDJSONFile(traj, rec); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(traj)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := CheckNDJSON(f)
	if err != nil || n != 3 {
		t.Fatalf("CheckNDJSON = %d, %v", n, err)
	}
}

func TestCheckNDJSONRejectsBadLines(t *testing.T) {
	for _, bad := range []string{
		"not json\n",
		`{"schema": 99, "metrics": {"m": {"value": 1, "unit": "count"}}}` + "\n",
		`{"schema": 1, "metrics": {}}` + "\n",
	} {
		if _, err := CheckNDJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestReadRecordFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"schema": 2, "metrics": {"m": {"value": 1, "unit": "x"}}}`), 0o644)
	if _, err := ReadRecordFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema record accepted: %v", err)
	}
}

func TestComparisonFprint(t *testing.T) {
	old := NewRecord("old")
	old.Add("slow", Metric{Value: 5e6, Unit: "ns"})
	old.Add("fine", Metric{Value: 5e6, Unit: "ns"})
	new := NewRecord("new")
	new.Add("slow", Metric{Value: 15e6, Unit: "ns"})
	new.Add("fine", Metric{Value: 5e6, Unit: "ns"})
	var b strings.Builder
	Compare(old, new, Options{}).Fprint(&b, false)
	out := b.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "slow") {
		t.Fatalf("missing regression row:\n%s", out)
	}
	if strings.Contains(out, "fine") {
		t.Fatalf("ok row shown without -v:\n%s", out)
	}
	if !strings.Contains(out, "compared 2 metrics: 1 regressed") {
		t.Fatalf("missing summary:\n%s", out)
	}
}

func names(r *Record) []string {
	out := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		out = append(out, k)
	}
	return out
}
