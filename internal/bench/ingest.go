package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Ingest sniffs the artifact format and merges its metrics into rec.
// Three formats are understood:
//
//   - starsweep -json documents ({"experiments": [...]}), the shape of
//     BENCH_embed.json and BENCH_repair.json
//   - obs registry snapshots ({"counters": ..., "histograms": ...}),
//     the shape of BENCH_obs.json
//   - starserve -load results ({"serve_load": {...}}), the shape of
//     BENCH_serve.json
//   - go test -bench text (Benchmark... lines), the shape of
//     BENCH_embed.txt and BENCH_repair.txt
func Ingest(rec *Record, name string, data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return fmt.Errorf("bench: %s: empty artifact", name)
	}
	var err error
	switch {
	case trimmed[0] == '{' && bytes.Contains(trimmed, []byte(`"experiments"`)):
		err = IngestSweepJSON(rec, trimmed)
	case trimmed[0] == '{' && bytes.Contains(trimmed, []byte(`"serve_load"`)):
		err = IngestServeLoad(rec, trimmed)
	case trimmed[0] == '{':
		err = IngestSnapshotJSON(rec, trimmed)
	default:
		err = IngestGoBench(rec, trimmed)
	}
	if err != nil {
		return fmt.Errorf("bench: %s: %w", name, err)
	}
	rec.Sources = append(rec.Sources, name)
	return nil
}

// sweepCell mirrors harness.Cell without importing the harness (the
// bench layer consumes artifacts, not live tables).
type sweepCell struct {
	Text string   `json:"text"`
	Num  *float64 `json:"num"`
	NS   *int64   `json:"ns"`
}

// IngestSweepJSON extracts the typed cells of a starsweep -json
// document. Timing cells (NS set) become "<exp>/<key>/<header>"
// nanosecond metrics; "speedup" columns (trailing "x" ratios) become
// higher-is-better ratios. Plain count columns are skipped — they are
// workload shape, not performance.
func IngestSweepJSON(rec *Record, data []byte) error {
	var doc struct {
		Experiments []struct {
			ID      string        `json:"id"`
			Headers []string      `json:"headers"`
			Rows    [][]sweepCell `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if len(doc.Experiments) == 0 {
		return fmt.Errorf("no experiments in sweep document")
	}
	for _, exp := range doc.Experiments {
		for _, row := range exp.Rows {
			if len(row) == 0 || len(row) != len(exp.Headers) {
				return fmt.Errorf("experiment %s: ragged row", exp.ID)
			}
			// The first column keys the row (the swept dimension n).
			key := fmt.Sprintf("%s=%s", sanitize(exp.Headers[0]), row[0].Text)
			for i, cell := range row {
				name := fmt.Sprintf("%s/%s/%s", exp.ID, key, sanitize(exp.Headers[i]))
				switch {
				case cell.NS != nil:
					rec.Add(name, Metric{Value: float64(*cell.NS), Unit: "ns"})
				case cell.Num != nil && strings.Contains(exp.Headers[i], "speedup"):
					rec.Add(name, Metric{Value: *cell.Num, Unit: "ratio", Better: HigherBetter})
				}
			}
		}
	}
	return nil
}

// IngestSnapshotJSON extracts the phase histograms of an obs registry
// snapshot (BENCH_obs.json): each histogram contributes p50 and p95
// nanosecond metrics under "obs/<name>/p50_ns". Counters and gauges
// are workload- and host-dependent, so they are not compared.
func IngestSnapshotJSON(rec *Record, data []byte) error {
	var snap struct {
		Histograms map[string]struct {
			Count int64 `json:"count"`
			P50NS int64 `json:"p50_ns"`
			P95NS int64 `json:"p95_ns"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	if len(snap.Histograms) == 0 {
		return fmt.Errorf("no histograms in snapshot")
	}
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		rec.Add("obs/"+name+"/p50_ns", Metric{Value: float64(h.P50NS), Unit: "ns"})
		rec.Add("obs/"+name+"/p95_ns", Metric{Value: float64(h.P95NS), Unit: "ns"})
	}
	return nil
}

// IngestServeLoad extracts the per-route latency quantiles of a
// starserve -load result (BENCH_serve.json): each route with traffic
// contributes "serve/<route>/p50_ns" and "serve/<route>/p95_ns"
// nanosecond metrics, joining the regression gate alongside the embed
// and repair artifacts. Counts, errors and shed totals are workload
// shape, not performance, so they are not compared.
func IngestServeLoad(rec *Record, data []byte) error {
	var doc struct {
		ServeLoad struct {
			Routes map[string]struct {
				Count int64 `json:"count"`
				P50NS int64 `json:"p50_ns"`
				P95NS int64 `json:"p95_ns"`
			} `json:"routes"`
		} `json:"serve_load"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	found := 0
	for route, st := range doc.ServeLoad.Routes {
		if st.Count == 0 {
			continue
		}
		found++
		rec.Add("serve/"+route+"/p50_ns", Metric{Value: float64(st.P50NS), Unit: "ns"})
		rec.Add("serve/"+route+"/p95_ns", Metric{Value: float64(st.P95NS), Unit: "ns"})
	}
	if found == 0 {
		return fmt.Errorf("no served routes in serve_load document")
	}
	return nil
}

// IngestGoBench parses go test -bench text output. Each benchmark line
//
//	BenchmarkEmbedTheorem1-8  100  12345 ns/op  67 B/op  8 allocs/op
//
// contributes "<name>/ns_op" (and B_op / allocs_op when -benchmem was
// on). The -GOMAXPROCS suffix is stripped so records from machines
// with different core counts still join.
func IngestGoBench(rec *Record, data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	found := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; value/unit pairs follow.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				rec.Add(name+"/ns_op", Metric{Value: v, Unit: "ns"})
				found++
			case "B/op":
				rec.Add(name+"/B_op", Metric{Value: v, Unit: "B/op"})
			case "allocs/op":
				rec.Add(name+"/allocs_op", Metric{Value: v, Unit: "allocs/op"})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if found == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	return nil
}

// sanitize maps header text onto metric-name-friendly tokens.
func sanitize(s string) string {
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "|", "")
	return s
}
