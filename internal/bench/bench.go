// Package bench is the performance-record layer behind cmd/starbench:
// it normalizes the repository's heterogeneous benchmark artifacts
// (starsweep -json sweeps, obs registry snapshots, go test -bench
// text) into one versioned Record schema, compares two records
// benchstat-style with a noise threshold, and maintains the append-only
// BENCH_trajectory.ndjson history that scripts/bench.sh grows one line
// per run.
//
// A Record is a flat map from metric name (e.g. "F2/n=7/time" or
// "BenchmarkEmbedTheorem1/ns_op") to a typed Metric value. Names are
// stable across runs so records from different commits join on them.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is the current Record schema. Readers accept only this
// version so a future breaking change fails loudly instead of
// comparing incompatible numbers.
const SchemaVersion = 1

// Better values for Metric.Better.
const (
	// LowerBetter marks latencies, allocation counts and sizes.
	LowerBetter = "lower"
	// HigherBetter marks throughputs and speedup ratios.
	HigherBetter = "higher"
)

// Metric is one measured value.
type Metric struct {
	// Value is the measurement in Unit.
	Value float64 `json:"value"`
	// Unit names the dimension: "ns", "allocs/op", "B/op", "count",
	// "ratio", "MiB".
	Unit string `json:"unit"`
	// Better is LowerBetter or HigherBetter; empty means LowerBetter.
	Better string `json:"better,omitempty"`
}

// Record is one run's worth of normalized benchmark results.
type Record struct {
	// Schema is SchemaVersion; readers reject anything else.
	Schema int `json:"schema"`
	// Label identifies the run (commit, date, or caller-chosen tag).
	Label string `json:"label,omitempty"`
	// Sources lists the artifact files the record was built from.
	Sources []string `json:"sources,omitempty"`
	// Metrics maps stable metric names to values.
	Metrics map[string]Metric `json:"metrics"`
}

// NewRecord returns an empty record at the current schema version.
func NewRecord(label string) *Record {
	return &Record{Schema: SchemaVersion, Label: label, Metrics: map[string]Metric{}}
}

// Add inserts a metric, overwriting any previous value under the name.
func (r *Record) Add(name string, m Metric) {
	if r.Metrics == nil {
		r.Metrics = map[string]Metric{}
	}
	r.Metrics[name] = m
}

// Validate checks the schema version and shape.
func (r *Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("bench: record schema %d, want %d", r.Schema, SchemaVersion)
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("bench: record has no metrics")
	}
	for name, m := range r.Metrics {
		if name == "" {
			return fmt.Errorf("bench: empty metric name")
		}
		if m.Better != "" && m.Better != LowerBetter && m.Better != HigherBetter {
			return fmt.Errorf("bench: metric %s: bad better %q", name, m.Better)
		}
	}
	return nil
}

// lowerIsBetter resolves the Better default.
func (m Metric) lowerIsBetter() bool { return m.Better != HigherBetter }

// ReadRecordFile loads and validates a record from path.
func ReadRecordFile(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// WriteRecordFile writes the record to path as indented JSON.
func WriteRecordFile(path string, r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// AppendNDJSONFile appends the record as one NDJSON line to the
// trajectory file at path, creating it if absent. The file is the
// run-over-run history CI and scripts/bench.sh grow.
func AppendNDJSONFile(path string, r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// CheckNDJSON validates a trajectory stream: every non-empty line must
// be a valid Record. It returns the number of records read.
func CheckNDJSON(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return n, fmt.Errorf("bench: trajectory line %d: %w", n, err)
		}
		if err := rec.Validate(); err != nil {
			return n, fmt.Errorf("trajectory line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
