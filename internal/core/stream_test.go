package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// drain materializes a cursor's whole output, failing the test on any
// cursor error.
func drain(t *testing.T, c *RingCursor) []perm.Code {
	t.Helper()
	var out []perm.Code
	for {
		v, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return out
}

// TestCursorMatchesMaterializedCampaign is the cross-check campaign:
// for n = 6..8 across randomized fault sets, the streaming embedding's
// cursor output must be byte-identical to the materialized embedding
// of the same fault set — the two modes share the deterministic
// skeleton, so any divergence is a replay bug, not a tolerance.
func TestCursorMatchesMaterializedCampaign(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	for n := 6; n <= 8; n++ {
		if n == 8 && testing.Short() {
			break
		}
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(1000*n + seed)))
			fs := faults.RandomVertices(n, rng.Intn(faults.MaxTolerated(n)+1), rng)

			mat, err := Embed(n, fs, Config{})
			if err != nil {
				t.Fatalf("n=%d seed=%d materialized: %v", n, seed, err)
			}
			e, err := NewEmbedder(n, Config{Streaming: true})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := e.Embed(fs)
			if err != nil {
				t.Fatalf("n=%d seed=%d streaming: %v", n, seed, err)
			}
			if sp.Result().Ring != nil {
				t.Fatalf("n=%d seed=%d: streaming plan materialized its ring", n, seed)
			}
			if !sp.Streaming() {
				t.Fatalf("n=%d seed=%d: plan does not report streaming", n, seed)
			}
			got := drain(t, sp.Cursor())
			if len(got) != len(mat.Ring) {
				t.Fatalf("n=%d seed=%d: stream %d vertices, materialized %d", n, seed, len(got), len(mat.Ring))
			}
			for i := range got {
				if got[i] != mat.Ring[i] {
					t.Fatalf("n=%d seed=%d: divergence at position %d: %s vs %s",
						n, seed, i, got[i].StringN(n), mat.Ring[i].StringN(n))
				}
			}
			// The random-access path must agree with the sequential one.
			for probe := 0; probe < 16; probe++ {
				i := rng.Intn(len(got))
				if sp.RingAt(i) != got[i] {
					t.Fatalf("n=%d seed=%d: RingAt(%d) diverges from cursor", n, seed, i)
				}
			}
			// And check.RingStream must pass exactly where check.Ring does.
			g := star.New(n)
			minLen := sp.Result().Guarantee
			if _, err := check.RingStream(g, sp.Cursor().Next, fs, minLen); err != nil {
				t.Fatalf("n=%d seed=%d: RingStream: %v", n, seed, err)
			}
			if err := check.Ring(g, got, fs, minLen); err != nil {
				t.Fatalf("n=%d seed=%d: Ring on drained stream: %v", n, seed, err)
			}
		}
	}
}

// TestCursorOverMaterializedPlan locks the mode-agnostic contract:
// on a default (materialized) plan the cursor walks the stored ring.
func TestCursorOverMaterializedPlan(t *testing.T) {
	p := planOn(t, 6, Config{})
	got := drain(t, p.Cursor())
	if len(got) != len(p.res.Ring) {
		t.Fatalf("cursor %d vertices, ring %d", len(got), len(p.res.Ring))
	}
	for i := range got {
		if got[i] != p.res.Ring[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

// TestRepairThenStream proves splices are visible through the cursor:
// after a splice fast-path repair on a streaming plan, a fresh cursor
// emits the post-repair cycle (two vertices shorter, avoiding the new
// fault) byte-identically to a materialized plan repaired the same way.
func TestRepairThenStream(t *testing.T) {
	n := 6
	e, err := NewEmbedder(n, Config{Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := e.Embed(nil)
	if err != nil {
		t.Fatal(err)
	}
	mp := planOn(t, n, Config{})

	// A streaming plan exposes no materialized segment, so find an
	// interior victim through the skeleton instead.
	var victim perm.Code
	found := false
	pb := sp.blocks[0]
	for _, v := range sp.ringSegment(0) {
		if v != pb.entry && v != pb.exit {
			victim, found = v, true
			break
		}
	}
	if !found {
		t.Fatal("block 0 has no interior vertex")
	}
	if !sp.CanSplice(victim) {
		t.Fatal("interior vertex of a healthy block must be spliceable")
	}

	before := sp.RingLen()
	rep, err := sp.Repair(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairSplice {
		t.Fatalf("outcome %v, want splice", rep.Outcome)
	}
	if sp.RingLen() != before-2 {
		t.Fatalf("length %d after splice, want %d", sp.RingLen(), before-2)
	}

	if rep2, err := mp.Repair(victim); err != nil {
		t.Fatal(err)
	} else if rep2.Outcome != RepairSplice {
		t.Fatalf("materialized twin outcome %v", rep2.Outcome)
	}

	got := drain(t, sp.Cursor())
	want := mp.Ring()
	if len(got) != len(want) {
		t.Fatalf("stream %d vertices, materialized twin %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("post-repair divergence at %d", i)
		}
		if got[i] == victim {
			t.Fatalf("spliced-out vertex still emitted at %d", i)
		}
	}
	g := star.New(n)
	if _, err := check.RingStream(g, sp.Cursor().Next, sp.Faults(), sp.Result().Guarantee); err != nil {
		t.Fatalf("post-repair stream verification: %v", err)
	}
}

// TestCursorStaleAfterRepair pins the failure mode: a cursor opened
// before a repair must refuse to keep emitting the dead cycle.
func TestCursorStaleAfterRepair(t *testing.T) {
	e, err := NewEmbedder(6, Config{Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Embed(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Cursor()
	for i := 0; i < 5; i++ { // start emitting mid-block
		if _, ok := c.Next(); !ok {
			t.Fatal("cursor ended early")
		}
	}
	victim := interiorStreamVertex(t, p, 1)
	if _, err := p.Repair(victim); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if !errors.Is(c.Err(), ErrStaleCursor) {
		t.Fatalf("stale cursor error = %v, want ErrStaleCursor", c.Err())
	}
	// A fresh cursor streams the repaired ring fine.
	if got := drain(t, p.Cursor()); len(got) != p.RingLen() {
		t.Fatalf("fresh cursor %d vertices, want %d", len(got), p.RingLen())
	}
}

// interiorStreamVertex returns a non-junction vertex of block k on a
// streaming plan.
func interiorStreamVertex(t *testing.T, p *Plan, k int) perm.Code {
	t.Helper()
	pb := p.blocks[k]
	for _, v := range p.ringSegment(k) {
		if v != pb.entry && v != pb.exit {
			return v
		}
	}
	t.Fatalf("block %d has no interior vertex", k)
	return 0
}

// TestStreamingRepairEquivalence drives both plan modes through the
// same random repair sequence and demands identical rings after every
// step — splices and rebuilds both.
func TestStreamingRepairEquivalence(t *testing.T) {
	n := 6
	rng := rand.New(rand.NewSource(77))
	e, err := NewEmbedder(n, Config{Streaming: true, VerifyRepairs: true})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := e.Embed(nil)
	if err != nil {
		t.Fatal(err)
	}
	mp := planOn(t, n, Config{VerifyRepairs: true})

	for step := 0; step < faults.MaxTolerated(n); step++ {
		victim := sp.RingAt(rng.Intn(sp.RingLen()))
		rs, err := sp.Repair(victim)
		if err != nil {
			t.Fatalf("step %d streaming repair: %v", step, err)
		}
		rm, err := mp.Repair(victim)
		if err != nil {
			t.Fatalf("step %d materialized repair: %v", step, err)
		}
		if rs.Outcome != rm.Outcome {
			t.Fatalf("step %d: outcomes diverge: %v vs %v", step, rs.Outcome, rm.Outcome)
		}
		got, want := sp.Ring(), mp.Ring()
		if len(got) != len(want) {
			t.Fatalf("step %d: lengths diverge: %d vs %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: rings diverge at %d", step, i)
			}
		}
	}
}

// BenchmarkRingCursor measures the streaming emit rate: one op is a
// full drain of the S_7 ring (5040 vertices, 210 block replays through
// the memo cache).
func BenchmarkRingCursor(b *testing.B) {
	e, err := NewEmbedder(7, Config{Streaming: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := e.Embed(nil)
	if err != nil {
		b.Fatal(err)
	}
	ringLen := p.RingLen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := p.Cursor()
		count := 0
		for {
			if _, ok := c.Next(); !ok {
				break
			}
			count++
		}
		if count != ringLen {
			b.Fatalf("drained %d vertices, want %d", count, ringLen)
		}
	}
	b.ReportMetric(float64(ringLen*b.N)/b.Elapsed().Seconds(), "vertices/s")
}
