package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// FuzzEmbedRing drives the full paper pipeline on randomized fault
// sets: dimension n in [4,7], |Fv| <= n-3 distinct faulty vertices
// derived from the fuzzed seed, then the embedding is independently
// re-verified by internal/check (simple cycle, fault-free, adjacency
// along every hop, length >= n! - 2|Fv|). This is the target the
// scripts/ci.sh fuzz smoke leg exercises.
func FuzzEmbedRing(f *testing.F) {
	f.Add(uint8(0), uint8(0), int64(1))  // n=4, no faults
	f.Add(uint8(2), uint8(3), int64(7))  // n=6, 3 faults (paper budget)
	f.Add(uint8(3), uint8(9), int64(42)) // n=7, 4 faults
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, seed int64) {
		n := 4 + int(nRaw)%4     // S_4 .. S_7
		k := int(kRaw) % (n - 2) // 0 .. n-3 vertex faults
		rng := rand.New(rand.NewSource(seed))

		order := perm.Factorial(n)
		fs := faults.NewSet(n)
		for fs.NumVertices() < k {
			v := perm.Pack(perm.Unrank(n, rng.Intn(order)))
			if fs.HasVertex(v) {
				continue
			}
			if err := fs.AddVertex(v); err != nil {
				t.Fatalf("AddVertex(%s): %v", v.StringN(n), err)
			}
		}

		res, err := core.Embed(n, fs, core.Config{})
		if err != nil {
			t.Fatalf("Embed(n=%d, |Fv|=%d, seed=%d): %v", n, k, seed, err)
		}
		if !res.Guaranteed {
			t.Fatalf("n=%d |Fv|=%d is within budget but Guaranteed=false", n, k)
		}
		if want := order - 2*k; res.Guarantee != want {
			t.Fatalf("guarantee = %d, want n!-2|Fv| = %d", res.Guarantee, want)
		}
		if len(res.Ring) < res.Guarantee {
			t.Fatalf("ring length %d below guarantee %d", len(res.Ring), res.Guarantee)
		}
		if err := check.Ring(star.New(n), res.Ring, fs, res.Guarantee); err != nil {
			t.Fatalf("independent verification failed (n=%d |Fv|=%d seed=%d): %v", n, k, seed, err)
		}
	})
}
