package core

import (
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// TestBestEffortRelaxedDiscipline drives the over-budget ring path that
// must drop the Lemma 3 discipline: S_5 with 4 faults can have three or
// more faulty blocks among five, which no cycle can keep non-adjacent.
func TestBestEffortRelaxedDiscipline(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for seed := 0; seed < 10; seed++ {
		fs := faults.RandomVertices(5, 4, rng)
		res, err := Embed(5, fs, Config{BestEffort: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Guaranteed {
			t.Fatal("over-budget result guaranteed")
		}
		if err := check.Ring(star.New(5), res.Ring, fs, 0); err != nil {
			t.Fatal(err)
		}
		// The bipartite ceiling still binds.
		if res.Len() > check.BipartiteUpperBound(5, fs) {
			t.Fatalf("seed %d: ring %d exceeds the ceiling", seed, res.Len())
		}
	}
}

// TestBestEffortPathBeyondBudget exercises the chain pipeline's
// degraded block targets.
func TestBestEffortPathBeyondBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	n := 6
	for seed := 0; seed < 5; seed++ {
		fs := faults.RandomVertices(n, 5, rng) // budget is 3
		var s, tt perm.Code
		for {
			s = perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
			tt = perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
			if s != tt && !fs.HasVertex(s) && !fs.HasVertex(tt) {
				break
			}
		}
		res, err := EmbedPath(n, fs, s, tt, Config{BestEffort: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Guaranteed {
			t.Fatal("over-budget path guaranteed")
		}
		if err := check.Path(star.New(n), res.Path, fs); err != nil {
			t.Fatal(err)
		}
		// Losing more than 4 vertices per fault would indicate the
		// degraded targets are too loose.
		if res.Len() < perm.Factorial(n)-4*5-2 {
			t.Fatalf("seed %d: best-effort path only %d vertices", seed, res.Len())
		}
	}
}

// TestBestEffortPathStrictRejects mirrors the ring budget check.
func TestBestEffortPathStrictRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	fs := faults.RandomVertices(6, 5, rng)
	var s, tt perm.Code
	for {
		s = perm.Pack(perm.Unrank(6, rng.Intn(720)))
		tt = perm.Pack(perm.Unrank(6, rng.Intn(720)))
		if s != tt && !fs.HasVertex(s) && !fs.HasVertex(tt) {
			break
		}
	}
	if _, err := EmbedPath(6, fs, s, tt, Config{}); err == nil {
		t.Fatal("over-budget strict path accepted")
	}
}

// TestEmbedPathSingleBlockChainNeverArises documents a structural
// invariant: because the first partition position separates s from t,
// their blocks always differ, so the single-block branch of
// chooseChainJunctions is unreachable through EmbedPath. Exercise the
// branch directly instead.
func TestChainSingleBlockDirect(t *testing.T) {
	n := 5
	fs := faults.NewSet(n)
	// Route within one block by hand: same block means same symbols at
	// the separating positions, which EmbedPath forbids; call the block
	// router's single-plan path through the canonical search instead.
	s := perm.IdentityCode(n)
	tt := s.SwapFirst(2)
	res, err := EmbedPath(n, fs, s, tt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent endpoints, fault-free: a Hamiltonian path.
	if res.Len() != perm.Factorial(n) {
		t.Fatalf("path %d", res.Len())
	}
}
