package core

import (
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/pathsearch"
	"repro/internal/perm"
	"repro/internal/star"
	"repro/internal/substar"
	"repro/internal/superring"
)

// Longest fault-free s-t paths (an extension beyond the paper; the
// authors' follow-up work studies exactly this problem). With
// |Fv| + |Fe| <= n-3 and healthy distinct s, t:
//
//   - s and t in different partite sets: a healthy path visiting
//     n! - 2|Fv| vertices (the same yield as the ring);
//   - same partite set: n! - 2|Fv| - 1 vertices, and one better
//     (n! - 2|Fv| + 1) whenever some faulty block's fault lies in the
//     other partite set, because that block can then shed only its
//     fault (the 23-vertex block paths verified in internal/pathsearch).
//
// The construction reuses the paper's machinery with the super-ring
// replaced by a super-CHAIN anchored at s and t: the first partition
// position must distinguish s from t (SeparatingPositionsSplitting), so
// their blocks sit at opposite ends, and every refinement forces the
// s-descendant first and the t-descendant last.

// PathResult is a verified s-t path embedding.
type PathResult struct {
	N    int
	S, T perm.Code
	Path []perm.Code // Path[0] == S, Path[len-1] == T

	VertexFaults int
	EdgeFaults   int
	// Guarantee is the assured number of visited vertices: n!-2|Fv| for
	// endpoints in different partite sets, n!-2|Fv|-1 otherwise.
	Guarantee  int
	Guaranteed bool
	Blocks     int
}

// Len returns the number of vertices the path visits.
func (r *PathResult) Len() int { return len(r.Path) }

// ErrBadEndpoints reports invalid, equal or faulty endpoints.
var ErrBadEndpoints = errors.New("core: invalid path endpoints")

// EmbedPath constructs a longest healthy path from s to t in S_n
// avoiding the given faults. Preconditions mirror Embed's, plus both
// endpoints must be healthy, distinct vertices.
func EmbedPath(n int, fs *faults.Set, s, t perm.Code, cfg Config) (*PathResult, error) {
	if n < 3 || n > perm.MaxN {
		return nil, fmt.Errorf("core: dimension %d out of range [3,%d]", n, perm.MaxN)
	}
	if fs == nil {
		fs = faults.NewSet(n)
	}
	if fs.N() != n {
		return nil, fmt.Errorf("core: fault set is for S_%d, embedding in S_%d", fs.N(), n)
	}
	if !s.Valid(n) || !t.Valid(n) || s == t {
		return nil, fmt.Errorf("%w: need two distinct vertices of S_%d", ErrBadEndpoints, n)
	}
	if fs.HasVertex(s) || fs.HasVertex(t) {
		return nil, fmt.Errorf("%w: endpoint is faulty", ErrBadEndpoints)
	}
	nv, ne := fs.NumVertices(), fs.NumEdges()
	withinBudget := nv+ne <= faults.MaxTolerated(n)
	if !withinBudget && !cfg.BestEffort {
		return nil, fmt.Errorf("%w: |Fv|=%d, |Fe|=%d, n=%d", ErrBudget, nv, ne, n)
	}

	sameSide := s.Parity(n) == t.Parity(n)
	res := &PathResult{
		N: n, S: s, T: t,
		VertexFaults: nv,
		EdgeFaults:   ne,
		Guarantee:    perm.Factorial(n) - 2*nv,
		Guaranteed:   withinBudget,
	}
	if sameSide {
		res.Guarantee--
	}

	var err error
	switch {
	case n <= 4:
		err = embedPathSmall(res, fs)
	default:
		err = embedPathLarge(res, fs, cfg)
	}
	if err != nil {
		return nil, err
	}

	if len(res.Path) == 0 || res.Path[0] != s || res.Path[len(res.Path)-1] != t {
		return nil, errors.New("core: internal: path endpoints wrong")
	}
	if res.Guaranteed && res.Len() < res.Guarantee {
		return nil, fmt.Errorf("core: internal: path length %d under guarantee %d", res.Len(), res.Guarantee)
	}
	if err := check.Path(star.New(n), res.Path, fs); err != nil {
		return nil, fmt.Errorf("core: self-verification failed: %w", err)
	}
	return res, nil
}

// embedPathSmall solves n = 3, 4 by direct search on the (canonical)
// block.
func embedPathSmall(res *PathResult, fs *faults.Set) error {
	n := res.N
	if n == 3 {
		// S_3 is a 6-cycle; with the zero fault budget the best s-t path
		// follows the longer arc.
		if fs.NumVertices() > 0 || fs.NumEdges() > 0 {
			return fmt.Errorf("%w: S_3 tolerates no faults", ErrNoRing)
		}
		ring, err := Embed(3, nil, Config{})
		if err != nil {
			return err
		}
		var si, ti int
		for i, v := range ring.Ring {
			if v == res.S {
				si = i
			}
			if v == res.T {
				ti = i
			}
		}
		// Two arcs; take the longer.
		m := len(ring.Ring)
		fwd := (ti - si + m) % m
		var path []perm.Code
		if fwd >= m-fwd {
			for i := 0; i <= fwd; i++ {
				path = append(path, ring.Ring[(si+i)%m])
			}
		} else {
			for i := 0; i <= m-fwd; i++ {
				path = append(path, ring.Ring[(si-i+2*m)%m])
			}
		}
		res.Path = path
		// The 6-cycle bound depends on the arc; adjust the guarantee to
		// what is structurally possible.
		if res.Len() < res.Guarantee {
			res.Guarantee = res.Len()
		}
		return nil
	}

	// n == 4: exact search.
	block, err := pathsearch.NewBlock(substar.Whole(4))
	if err != nil {
		return err
	}
	var avoidV []perm.Code
	avoidV = append(avoidV, fs.Vertices()...)
	var avoidE [][2]perm.Code
	for _, e := range fs.Edges() {
		avoidE = append(avoidE, [2]perm.Code{e.U, e.V})
	}
	spec := pathsearch.PathSpec{From: res.S, To: res.T, AvoidV: avoidV, AvoidE: avoidE}
	best := block.MaxPathLen(spec)
	if best == 0 {
		return fmt.Errorf("%w: no healthy path in S_4", ErrNoRing)
	}
	spec.Target = best
	path, ok := block.Path(spec)
	if !ok {
		return errors.New("core: internal: max path vanished")
	}
	res.Path = path
	if res.Len() < res.Guarantee {
		res.Guarantee = res.Len() // |Fe| > 0 can cost a vertex in S_4's tiny budget
	}
	return nil
}

// embedPathLarge runs the chain pipeline for n >= 5.
func embedPathLarge(res *PathResult, fs *faults.Set, cfg Config) error {
	n := res.N
	positions, separated, err := fs.SeparatingPositionsSplitting(res.S, res.T)
	if err != nil {
		return err
	}
	if !separated && !cfg.BestEffort {
		return fmt.Errorf("core: the forced anchor position prevents Lemma 2 separation for %v; retry with BestEffort", fs)
	}

	chain, err := buildChain(n, positions, fs, res.S, res.T)
	if err != nil {
		return err
	}
	res.Blocks = chain.Len()

	path, err := routeChain(chain, fs, res.S, res.T, cfg)
	if err != nil {
		return err
	}
	res.Path = path
	return nil
}

// buildChain mirrors buildR4 for the anchored chain.
func buildChain(n int, positions []int, fs *faults.Set, s, t perm.Code) (*superring.Chain, error) {
	weight := weightOf(fs)
	finalOpts := superring.Options{
		FaultCount:       weight,
		SpreadFaults:     true,
		HealthyJunctions: true,
	}
	midOpts := superring.Options{FaultCount: weight}

	opts := midOpts
	if n == 5 {
		opts = finalOpts
	}
	chain, err := superring.InitialChain(n, positions[0], s, t, opts)
	if err != nil {
		return nil, fmt.Errorf("core: initial chain: %w", err)
	}
	for j := 1; j < len(positions); j++ {
		opts := midOpts
		if j == len(positions)-1 {
			opts = finalOpts
		}
		next, err := chain.Refine(positions[j], s, t, opts)
		if err != nil {
			// The strict discipline can fail on chains (the anchors
			// constrain the ends); retry relaxed — the router degrades
			// per block and the final verification still gates.
			next, err = chain.Refine(positions[j], s, t, superring.Options{FaultCount: weight})
			if err != nil {
				return nil, fmt.Errorf("core: chain refinement %d at position %d: %w", j, positions[j], err)
			}
		}
		chain = next
	}
	if err := chain.Validate(); err != nil {
		return nil, fmt.Errorf("core: internal: %w", err)
	}
	return chain, nil
}
