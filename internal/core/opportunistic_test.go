package core

import (
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// TestOpportunisticBeatsGuarantee: with faults split across the
// bipartition, the opportunistic router recovers vertices beyond
// n!-2|Fv| — one per upgraded block — while staying within the ceiling.
func TestOpportunisticBeatsGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 6; n <= 8; n++ {
		k := faults.MaxTolerated(n)
		for seed := 0; seed < 10; seed++ {
			// Force a balanced parity mix so upgrades are available.
			fs := faults.NewSet(n)
			for fs.NumVertices() < k/2 {
				v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
				if v.Parity(n) == 0 {
					fs.AddVertex(v)
				}
			}
			for fs.NumVertices() < k {
				v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
				if v.Parity(n) == 1 {
					fs.AddVertex(v)
				}
			}
			res, err := Embed(n, fs, Config{Opportunistic: true})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if res.Len() != res.Guarantee+res.Upgrades {
				t.Fatalf("n=%d: len %d != guarantee %d + upgrades %d",
					n, res.Len(), res.Guarantee, res.Upgrades)
			}
			if res.Upgrades == 0 {
				t.Fatalf("n=%d seed=%d: balanced faults yielded no upgrades", n, seed)
			}
			if res.Len() > res.UpperBound {
				t.Fatalf("n=%d: len %d exceeds ceiling %d", n, res.Len(), res.UpperBound)
			}
			if err := check.Ring(star.New(n), res.Ring, fs, res.Guarantee+res.Upgrades); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestOpportunisticSamePartiteNoop: with all faults on one side there is
// nothing to upgrade and the result matches the plain algorithm (which
// is already optimal there).
func TestOpportunisticSamePartiteNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 7
	fs := faults.SamePartiteVertices(n, faults.MaxTolerated(n), 0, rng)
	res, err := Embed(n, fs, Config{Opportunistic: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upgrades != 0 {
		t.Fatalf("same-partite upgrades = %d", res.Upgrades)
	}
	if res.Len() != res.Guarantee || res.Len() != res.UpperBound {
		t.Fatalf("len %d, guarantee %d, ceiling %d", res.Len(), res.Guarantee, res.UpperBound)
	}
}

// TestOpportunisticCeilingOftenReached: the upgrade count is bounded by
// the number of parity runs; across random balanced instances the
// ceiling itself is reached whenever fault parities alternate in block
// order. Assert the accounting (upgrades = cyclic parity runs) rather
// than luck.
func TestOpportunisticUpgradeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 7
	for seed := 0; seed < 20; seed++ {
		fs := faults.RandomVertices(n, 4, rng)
		f0 := 0
		for _, v := range fs.Vertices() {
			if v.Parity(n) == 0 {
				f0++
			}
		}
		res, err := Embed(n, fs, Config{Opportunistic: true})
		if err != nil {
			t.Fatal(err)
		}
		maxUp := 2 * min(f0, 4-f0)
		if res.Upgrades > maxUp {
			t.Fatalf("upgrades %d exceed 2*min(f0,f1) = %d", res.Upgrades, maxUp)
		}
		if res.Upgrades%2 != 0 {
			t.Fatalf("odd upgrade count %d", res.Upgrades)
		}
		if res.Len() != res.Guarantee+res.Upgrades {
			t.Fatalf("length accounting broken")
		}
	}
}

// TestOpportunisticDisabledByDefault: the plain configuration never
// upgrades, preserving the paper's exact behavior.
func TestOpportunisticDisabledByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	fs := faults.RandomVertices(7, 4, rng)
	res, err := Embed(7, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upgrades != 0 || res.Len() != res.Guarantee {
		t.Fatalf("plain mode deviated: len %d, upgrades %d", res.Len(), res.Upgrades)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
