package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/prof"
)

// TestEmbedMetrics embeds with a live registry and checks that every
// advertised metric materializes: per-phase durations, S4 cache
// activity, the junction backtrack counter, and worker-pool accounting.
func TestEmbedMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetSink(obs.NewRecorder(64))
	rng := rand.New(rand.NewSource(7))
	fs := faults.RandomVertices(6, 3, rng)
	res, err := Embed(6, fs, Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, phase := range []string{
		"core.phase.total", "core.phase.separation", "core.phase.build_r4",
		"core.phase.junction", "core.phase.route", "core.phase.verify",
		"superring.phase.initial", "superring.phase.refine",
		"core.route.worker_busy",
	} {
		if snap.Histograms[phase].Count == 0 {
			t.Errorf("phase %s not recorded; snapshot %+v", phase, snap.Histograms)
		}
	}
	for _, counter := range []string{
		"core.s4.cache_hits", "core.s4.cache_misses", "core.s4.cache_bypasses",
		"core.junction.backtracks", "core.route.blocks",
		"superring.junction.backtracks",
	} {
		if _, ok := snap.Counters[counter]; !ok {
			t.Errorf("counter %s missing from snapshot", counter)
		}
	}
	if got := snap.Counters["core.route.blocks"]; got != int64(res.Blocks) {
		t.Errorf("core.route.blocks = %d, want %d", got, res.Blocks)
	}
	if snap.Counters["core.s4.cache_hits"]+snap.Counters["core.s4.cache_misses"] == 0 {
		t.Error("no S4 cache activity recorded")
	}
	if w := snap.Gauges["core.route.workers"]; w < 1 {
		t.Errorf("core.route.workers = %d", w)
	}
	if u, ok := snap.Gauges["core.route.utilization_pct"]; !ok || u < 0 || u > 100 {
		t.Errorf("core.route.utilization_pct = %d (present %v)", u, ok)
	}
	if len(snap.Events) == 0 {
		t.Error("no span events reached the sink")
	}
	// The labeled families materialize with the run's dimension: three
	// vertex faults on S_6 is exactly the paper's budget, so the embed
	// completes in guaranteed mode.
	labeled := `core.embed.completed{mode="guaranteed",n="6"}`
	if got := snap.Counters[labeled]; got != 1 {
		t.Errorf("%s = %d, want 1; counters %+v", labeled, got, snap.Counters)
	}
}

// TestRepairMetricsLabeled drives one splice repair and checks the
// labeled outcome family materializes alongside the flat counter.
func TestRepairMetricsLabeled(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := NewEmbedder(6, Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Embed(faults.NewSet(6))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Repair(p.Ring()[0])
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	want := map[RepairOutcome]string{
		RepairSplice:  `core.repair.outcome{n="6",outcome="splices"}`,
		RepairRebuild: `core.repair.outcome{n="6",outcome="rebuilds"}`,
		RepairAvoided: `core.repair.outcome{n="6",outcome="avoided"}`,
	}[rep.Outcome]
	if want == "" {
		t.Fatalf("unexpected outcome %v", rep.Outcome)
	}
	if got := snap.Counters[want]; got != 1 {
		t.Errorf("%s = %d, want 1; counters %+v", want, got, snap.Counters)
	}
}

// TestEmbedMetricsConcurrent shares one registry between concurrent
// embeddings; under the ci.sh race leg this certifies the
// instrumentation is data-race free end to end.
func TestEmbedMetricsConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetSink(obs.NewRecorder(256))
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			fs := faults.RandomVertices(5, 2, rng)
			_, errs[i] = Embed(5, fs, Config{Obs: reg})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("embed %d: %v", i, err)
		}
	}
	if got := reg.Histogram("core.phase.total").Stats().Count; got != int64(len(errs)) {
		t.Errorf("core.phase.total count = %d, want %d", got, len(errs))
	}
}

// TestObsDisabledAllocs proves the disabled instrumentation path on the
// block-routing loop allocates nothing: with a nil instr every hook is
// a nil test, and a nil CounterVec resolves label sets for free.
func TestObsDisabledAllocs(t *testing.T) {
	var in *instr
	var vec *obs.CounterVec
	var busy int64
	if allocs := testing.AllocsPerRun(1000, func() {
		start := in.now()
		in.blockRouted()
		in.junctionBacktrack()
		in.workerDone(start, &busy)
		in.span("core.phase.route").End()
		in.repair("splices")
		in.embedCompleted(true)
		vec.With("n", "6", "mode", "guaranteed").Inc()
	}); allocs != 0 {
		t.Errorf("disabled hooks allocate %.1f times per block", allocs)
	}
}

// BenchmarkObsDisabled measures the per-block cost of the disabled
// instrumentation path — the exact hook sequence the assemble worker
// loop executes per routed block, plus a disabled runtime sampler (the
// state every uninstrumented run carries now that prof.RuntimeSampler
// exists) and a disabled labeled-family lookup (CounterVec.With on a
// nil vec must not heap-allocate its key/value pairs). Expect
// single-digit nanoseconds and 0 allocs/op.
func BenchmarkObsDisabled(b *testing.B) {
	var in *instr
	var vec *obs.CounterVec
	rt := prof.NewRuntimeSampler(nil)
	var busy int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := in.now()
		in.blockRouted()
		in.workerDone(start, &busy)
		vec.With("n", "6", "mode", "guaranteed").Inc()
		rt.Sample()
	}
}

// BenchmarkObsEnabled is the same hook sequence against a live
// registry, for comparison.
func BenchmarkObsEnabled(b *testing.B) {
	in := newInstr(obs.NewRegistry(), 6)
	var busy int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := in.now()
		in.blockRouted()
		in.workerDone(start, &busy)
	}
}

// BenchmarkObsEmbedOverhead embeds S_7 with instrumentation on, to be
// read against BenchmarkEmbedTheorem1's uninstrumented numbers.
func BenchmarkObsEmbedOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	fs := faults.RandomVertices(7, 4, rng)
	reg := obs.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(7, fs, Config{Obs: reg}); err != nil {
			b.Fatal(err)
		}
	}
}
