package core

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/perm"
)

// TestStressVertexFaults hammers the embedder with many seeded fault
// sets at the maximum budget, including the worst-case same-partite
// distribution where the guarantee is exactly the upper bound.
func TestStressVertexFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for n := 5; n <= 8; n++ {
		k := faults.MaxTolerated(n)
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			for name, fs := range map[string]*faults.Set{
				"uniform":     faults.RandomVertices(n, k, rng),
				"samePartite": faults.SamePartiteVertices(n, k, int(seed)%2, rng),
			} {
				res, err := Embed(n, fs, Config{})
				if err != nil {
					t.Fatalf("n=%d seed=%d %s: %v", n, seed, name, err)
				}
				if res.Len() < res.Guarantee {
					t.Fatalf("n=%d seed=%d %s: len %d < %d", n, seed, name, res.Len(), res.Guarantee)
				}
			}
		}
	}
}

// TestStressEdgeAndMixedFaults checks the concluding-remark variants:
// edge faults keep the ring Hamiltonian, mixed faults keep n! - 2|Fv|.
func TestStressEdgeAndMixedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for n := 5; n <= 8; n++ {
		budget := faults.MaxTolerated(n)
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(1000 + seed))
			for kv := 0; kv <= budget; kv++ {
				ke := budget - kv
				fs := faults.Mixed(n, kv, ke, rng)
				res, err := Embed(n, fs, Config{})
				if err != nil {
					t.Fatalf("n=%d seed=%d kv=%d ke=%d: %v", n, seed, kv, ke, err)
				}
				want := perm.Factorial(n) - 2*kv
				if res.Len() < want {
					t.Fatalf("n=%d seed=%d kv=%d ke=%d: len %d < %d", n, seed, kv, ke, res.Len(), want)
				}
			}
		}
	}
}

// TestEmbedLargeN exercises n=9 once to confirm the pipeline scales.
func TestEmbedLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large n")
	}
	n := 9
	rng := rand.New(rand.NewSource(7))
	fs := faults.RandomVertices(n, faults.MaxTolerated(n), rng)
	res, err := Embed(n, fs, Config{})
	if err != nil {
		t.Fatalf("n=9: %v", err)
	}
	if res.Len() < res.Guarantee {
		t.Fatalf("n=9: len %d < %d", res.Len(), res.Guarantee)
	}
	t.Logf("n=9: ring %d over %d blocks", res.Len(), res.Blocks)
}

// TestEmbedScaleN10 exercises the largest practical dimension: 3.6M
// vertices, 7 faults. Run explicitly; skipped with -short and in the
// default suite it stays enabled because it finishes in ~1-2 s.
func TestEmbedScaleN10(t *testing.T) {
	if testing.Short() {
		t.Skip("large n")
	}
	n := 10
	rng := rand.New(rand.NewSource(10))
	fs := faults.RandomVertices(n, faults.MaxTolerated(n), rng)
	res, err := Embed(n, fs, Config{})
	if err != nil {
		t.Fatalf("n=10: %v", err)
	}
	if res.Len() < res.Guarantee {
		t.Fatalf("n=10: len %d < %d", res.Len(), res.Guarantee)
	}
	t.Logf("n=10: ring %d over %d blocks", res.Len(), res.Blocks)
}
