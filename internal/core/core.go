// Package core implements the paper's contribution (Hsieh, Chen, Ho;
// ICPP 1998): embedding a healthy ring of length n! - 2|Fv| onto an
// n-dimensional star graph with |Fv| <= n-3 vertex faults, which is
// optimal in the worst case because the star graph is bipartite with
// equal partite sets. The concluding-remark extensions are included:
// with mixed faults (|Fv| + |Fe| <= n-3) the same length is achieved,
// and with edge faults only the ring is Hamiltonian (length n!).
//
// The pipeline follows the paper's proof structure:
//
//  1. Lemma 2 — choose separating positions a1..a_{n-4} so every
//     4-dimensional block holds at most one fault (internal/faults).
//  2. Lemma 3 — build a super-ring R4 of blocks with properties (P1),
//     (P2), (P3) by refining R_{n-1} -> ... -> R4 (internal/superring).
//  3. Lemma 7 / Theorem 1 — route a healthy path through every block
//     (exact search in the canonical S4, internal/pathsearch), choosing
//     the junction edges between consecutive blocks so that every
//     healthy block contributes all 24 vertices and every faulty block
//     contributes 22.
//
// Every embedding is re-verified by internal/check before it is
// returned.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/substar"
	"repro/internal/superring"
)

// Config tunes an embedding run. The zero value asks for the strict
// paper algorithm with automatic parallelism.
type Config struct {
	// Workers bounds the number of goroutines materializing block paths;
	// 0 means GOMAXPROCS.
	Workers int
	// BestEffort permits fault sets beyond the paper's budget
	// (|Fv|+|Fe| > n-3): separation and per-block routing then fall back
	// to the longest achievable paths and the result carries no length
	// guarantee (Result.Guaranteed is false).
	BestEffort bool
	// Opportunistic enables the beyond-worst-case extension: when
	// faults split across the bipartition, some faulty blocks are
	// routed with 23 vertices instead of 22 (losing only the fault
	// itself), recovering up to 2*min(f0, f1) of the slack between the
	// paper's n!-2|Fv| and the bipartite ceiling n!-2*max(f0, f1). The
	// guarantee is unchanged; only the achieved length grows. See
	// planUpgrades for the parity-alternation limit.
	Opportunistic bool
	// VerifyRepairs re-runs the full check.Ring after every successful
	// Plan.Repair splice. By default only the spliced segment is
	// verified (the point of the fast path); tests and paranoid callers
	// set this to keep the one-shot self-verification discipline.
	VerifyRepairs bool
	// Streaming keeps the embedding in skeleton form: the ring is never
	// materialized as a []perm.Code (Result.Ring stays nil for n >= 5)
	// and is consumed through Plan.Cursor / Plan.Ring instead, holding
	// peak memory at O(#blocks) rather than O(n!). Self-verification
	// switches to check.RingStream. This is what makes n >= 10 (3.6M+
	// vertices) embeddable on bounded memory; for n <= 4 the <= 24-vertex
	// ring is materialized regardless.
	Streaming bool
	// Obs receives the run's telemetry: phase spans (core.phase.*), S4
	// cache activity, junction backtracks and worker utilization — see
	// the README's Observability section for the glossary. nil disables
	// instrumentation at a cost of a few nanoseconds per hook.
	Obs *obs.Registry
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is a verified ring embedding.
type Result struct {
	N    int
	Ring []perm.Code // the healthy cycle, consecutive entries adjacent; nil in streaming mode
	// Length is the ring length. It always equals len(Ring) when Ring is
	// materialized; in streaming mode (Config.Streaming, Ring nil) it is
	// the only record of the achieved length — the cycle itself lives in
	// the Plan's skeleton and is emitted through Plan.Cursor.
	Length int

	VertexFaults int
	EdgeFaults   int

	// Guarantee is the paper's bound n! - 2|Fv| (n! for edge faults
	// only); the ring length always reaches it when Guaranteed is true.
	Guarantee  int
	Guaranteed bool
	// UpperBound is the bipartite ceiling n! - 2*max(f0, f1) on any
	// healthy cycle for this fault set.
	UpperBound int

	// Blocks and FaultyBlocks describe the R4 decomposition (zero for
	// the small-n direct cases).
	Blocks       int
	FaultyBlocks int
	// Upgrades counts faulty blocks routed with 23 vertices by the
	// opportunistic extension (zero under the plain paper algorithm).
	Upgrades int
	// Positions are the Lemma 2 separating positions a1..a_{n-4}.
	Positions []int
}

// Len returns the ring length (valid in both materialized and
// streaming modes).
func (r *Result) Len() int {
	if r.Ring != nil {
		return len(r.Ring)
	}
	return r.Length
}

// ErrBudget reports a fault set exceeding the paper's tolerance.
var ErrBudget = errors.New("core: fault set exceeds the paper's budget |Fv|+|Fe| <= n-3")

// ErrNoRing reports that no healthy ring exists at all (only possible
// outside the paper's preconditions, e.g. S_3 with a fault).
var ErrNoRing = errors.New("core: no healthy ring exists")

// Embed constructs a healthy ring in S_n avoiding the given faults.
// With fs nil or empty the ring is a Hamiltonian cycle. The paper's
// precondition is n >= 3 and |Fv| + |Fe| <= n - 3; beyond it, Embed
// fails unless cfg.BestEffort is set.
//
// Embed is the one-shot convenience wrapper over the session-oriented
// engine: it builds a throwaway Embedder, runs one Plan and returns its
// Result. Callers embedding repeatedly in the same dimension — or who
// want incremental Repair — should hold an Embedder instead.
func Embed(n int, fs *faults.Set, cfg Config) (*Result, error) {
	e, err := NewEmbedder(n, cfg)
	if err != nil {
		return nil, err
	}
	p, err := e.Embed(fs)
	if err != nil {
		return nil, err
	}
	return p.Result(), nil
}

// embedLarge handles n >= 5: Lemma 2 separation, Lemma 3 construction
// of the R4 with (P1)(P2)(P3), and Lemma 7 block routing. Beyond
// filling res it returns the skeleton — the R4 plus the per-block
// routing state — that Plan.Repair re-uses for incremental splices.
func embedLarge(res *Result, fs *faults.Set, cfg Config, in *instr) (*skeleton, error) {
	n := res.N
	sspan := in.span("core.phase.separation")
	positions, separated := fs.SeparatingPositions()
	sspan.End()
	if !separated && !cfg.BestEffort {
		return nil, fmt.Errorf("core: internal: Lemma 2 separation failed for %v", fs)
	}
	res.Positions = positions

	bspan := in.span("core.phase.build_r4")
	r4, err := buildR4(n, positions, fs, cfg)
	bspan.End()
	if err != nil {
		return nil, err
	}
	res.Blocks = r4.Len()
	for _, p := range r4.Vertices() {
		if fs.CountIn(p) > 0 {
			res.FaultyBlocks++
		}
	}

	if cfg.Opportunistic && !cfg.BestEffort && fs.NumVertices() >= 2 && fs.NumEdges() == 0 {
		upgraded, exitParity := planUpgrades(r4, fs)
		if exitParity != nil {
			rt, err := routeR4x(r4, fs, opportunisticTargets(upgraded), exitParity, cfg, in)
			if err == nil {
				for _, u := range upgraded {
					if u {
						res.Upgrades++
					}
				}
				return finishLarge(res, r4, rt, cfg, in)
			}
			// Fall through to the plain paper routing: the guarantee
			// never depends on the upgrade pass succeeding.
		}
	}

	targetsFor := paperTargets(cfg.BestEffort)
	rt, err := routeR4x(r4, fs, func(_, vf int) []int { return targetsFor(vf) }, nil, cfg, in)
	if err != nil {
		return nil, err
	}
	return finishLarge(res, r4, rt, cfg, in)
}

// finishLarge turns a routed skeleton into the embedding outcome: in
// the default mode the ring is materialized through the parallel
// assembler; in streaming mode only the length is recorded and the
// cycle stays implicit in the skeleton, to be emitted by Plan.Cursor.
func finishLarge(res *Result, r4 *superring.Ring, rt *routed, cfg Config, in *instr) (*skeleton, error) {
	res.Length = rt.ringLen()
	if !cfg.Streaming {
		ring, _, err := assemble(rt.plans, cfg, in)
		if err != nil {
			return nil, err
		}
		res.Ring = ring
	}
	return &skeleton{r4: r4, rt: rt}, nil
}

// paperTargets is the paper's per-block length policy: a healthy block
// contributes all 24 vertices, a block with one vertex fault contributes
// 22 (Lemma 4); intra-block edge faults cost nothing (the exact search
// routes around them). In best-effort mode blocks holding several faults
// fall back through successively shorter paths.
func paperTargets(bestEffort bool) func(numVertexFaults int) []int {
	return func(vf int) []int {
		base := blockOrder - 2*vf
		if !bestEffort {
			return []int{base}
		}
		var ts []int
		for t := base; t >= 2; t -= 2 {
			ts = append(ts, t)
		}
		return ts
	}
}

// weightOf returns the fault-count function used for (P3), fault
// spreading and junction health during construction: the number of
// faulty vertices plus fully-interior faulty edges inside a pattern.
func weightOf(fs *faults.Set) func(substar.Pattern) int {
	return func(p substar.Pattern) int {
		w := fs.CountIn(p)
		for _, e := range fs.Edges() {
			if p.Contains(e.U) && p.Contains(e.V) {
				w++
			}
		}
		return w
	}
}

// buildR4 realizes Lemma 3 (and the n = 5 base case of Theorem 1's
// proof): an R4 whose supervertices satisfy (P1), (P2) and (P3).
func buildR4(n int, positions []int, fs *faults.Set, cfg Config) (*superring.Ring, error) {
	spec := BuildSpec{
		Positions:      append([]int(nil), positions...),
		SpreadFaults:   true,
		HealthyBorders: true,
		VerifyP1:       !cfg.BestEffort,
		VerifyP2:       !cfg.BestEffort,
		VerifyP3:       !cfg.BestEffort,
		Obs:            cfg.Obs,
	}
	r4, err := BuildR4(n, fs, spec)
	if err != nil && cfg.BestEffort {
		// Beyond the budget the Lemma 3 discipline can become
		// unsatisfiable (e.g. more faulty blocks than a cycle can keep
		// apart); drop it and let the router degrade per block instead.
		relaxed := spec
		relaxed.SpreadFaults = false
		relaxed.HealthyBorders = false
		r4, err = BuildR4(n, fs, relaxed)
	}
	return r4, err
}

// BuildSpec parameterizes R4 construction. The paper's algorithm uses
// SpreadFaults and HealthyBorders with all three properties verified;
// the baselines in internal/baseline reuse the machinery with weaker
// settings (Tseng: no (P2)/(P3) discipline) or with exclusion (Latifi-
// Bagherzadeh: the clustered substar is dropped from the ring entirely).
type BuildSpec struct {
	// Positions is the partition sequence a1..a_{n-4}; all must be
	// distinct positions in 2..n.
	Positions []int
	// Exclude drops matching supervertices from the ring as soon as a
	// partition creates them.
	Exclude func(substar.Pattern) bool
	// SpreadFaults and HealthyBorders enable the Lemma 3 discipline at
	// the final refinement: fault-bearing blocks pairwise non-adjacent
	// and every junction block fault-free.
	SpreadFaults   bool
	HealthyBorders bool
	// VerifyP1/P2/P3 assert the corresponding property on the result.
	VerifyP1, VerifyP2, VerifyP3 bool
	// Obs receives the refinement telemetry (superring.phase.*,
	// superring.junction.backtracks); nil disables it.
	Obs *obs.Registry
}

// BuildR4 partitions S_n along spec.Positions and threads the
// super-ring refinements of Lemma 3, returning the ring of order-4
// supervertices. It is exported for internal/baseline, which shares the
// substrate; library users should call Embed.
func BuildR4(n int, fs *faults.Set, spec BuildSpec) (*superring.Ring, error) {
	if len(spec.Positions) != n-4 {
		return nil, fmt.Errorf("core: need %d partition positions for S_%d, got %d", n-4, n, len(spec.Positions))
	}
	weight := weightOf(fs)
	finalOpts := superring.Options{
		FaultCount:       weight,
		Exclude:          spec.Exclude,
		SpreadFaults:     spec.SpreadFaults,
		HealthyJunctions: spec.HealthyBorders,
		Obs:              spec.Obs,
	}
	midOpts := superring.Options{FaultCount: weight, Exclude: spec.Exclude, Obs: spec.Obs}

	var r *superring.Ring
	var err error
	if n == 5 {
		// A single partition splits S_5 into five blocks forming a K_5;
		// arranging the (at most two) faulty blocks apart yields the R4
		// directly, with (P2) trivial because all superedges share the
		// same dif position.
		r, err = superring.Initial(n, spec.Positions[0], finalOpts)
		if err != nil {
			return nil, fmt.Errorf("core: R4 construction (n=5): %w", err)
		}
	} else {
		r, err = superring.Initial(n, spec.Positions[0], midOpts)
		if err != nil {
			return nil, fmt.Errorf("core: initial super-ring: %w", err)
		}
		for j := 1; j < len(spec.Positions); j++ {
			opts := midOpts
			if j == len(spec.Positions)-1 {
				opts = finalOpts
			}
			r, err = r.Refine(spec.Positions[j], opts)
			if err != nil {
				return nil, fmt.Errorf("core: refinement %d at position %d: %w", j, spec.Positions[j], err)
			}
		}
	}

	if r.Order() != 4 {
		return nil, fmt.Errorf("core: internal: super-ring has order %d, want 4", r.Order())
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("core: internal: %w", err)
	}
	if spec.VerifyP1 && !r.P1(func(p substar.Pattern) int { return fs.CountIn(p) }) {
		return nil, errors.New("core: internal: R4 violates (P1)")
	}
	if spec.VerifyP2 {
		if v := r.FirstP2Violation(); v != -1 {
			return nil, fmt.Errorf("core: internal: R4 violates (P2) at supervertex %d", v)
		}
	}
	if spec.VerifyP3 && !r.P3(weight) {
		return nil, errors.New("core: internal: R4 violates (P3)")
	}
	return r, nil
}
