package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/pathsearch"
	"repro/internal/perm"
	"repro/internal/star"
	"repro/internal/substar"
)

// embedS3 handles the degenerate base S_3, which is itself a 6-cycle:
// the only healthy ring is the whole graph, so any fault (possible only
// in best-effort mode, since the budget n-3 is zero) is fatal.
func embedS3(res *Result, fs *faults.Set) error {
	if fs.NumVertices() > 0 || fs.NumEdges() > 0 {
		return fmt.Errorf("%w: S_3 is a single 6-cycle; removing anything leaves no cycle", ErrNoRing)
	}
	g := star.New(3)
	// Walk the 6-cycle: alternate dimensions 2 and 3.
	v := perm.IdentityCode(3)
	ring := make([]perm.Code, 0, 6)
	dim := 2
	for i := 0; i < 6; i++ {
		ring = append(ring, v)
		v = v.SwapFirst(dim)
		dim = 5 - dim // alternate 2 <-> 3
	}
	if !g.Adjacent(ring[len(ring)-1], ring[0]) {
		return fmt.Errorf("core: internal: S_3 walk did not close")
	}
	res.Ring = ring
	return nil
}

// embedS4 handles the base case n = 4 of Theorem 1 directly on the
// canonical S4 (Lemma 4's graph): with no faults the ring is a
// Hamiltonian cycle (24); with one vertex fault the exact search yields
// the bipartite-optimal 22-cycle; with one edge fault the cycle remains
// Hamiltonian (the edge-fault companion result). Best-effort mode
// accepts any fault set and returns the longest cycle found.
func embedS4(res *Result, fs *faults.Set) error {
	whole := substar.Whole(4)
	block, err := pathsearch.NewBlock(whole)
	if err != nil {
		return fmt.Errorf("core: internal: %w", err)
	}
	var forbV uint32
	for _, v := range fs.Vertices() {
		idx, ok := block.ToCanon(v)
		if !ok {
			return fmt.Errorf("core: internal: fault outside S_4")
		}
		forbV |= 1 << uint(idx)
	}
	var forbE []pathsearch.Edge
	for _, e := range fs.Edges() {
		ce, ok := block.CanonEdge(e.U, e.V)
		if !ok {
			return fmt.Errorf("core: internal: faulty edge outside S_4")
		}
		forbE = append(forbE, ce)
	}
	cycle, n := pathsearch.Canon.LongestCycleAvoiding(forbV, forbE)
	if n == 0 {
		return fmt.Errorf("%w: S_4 with %d vertex and %d edge faults", ErrNoRing, fs.NumVertices(), fs.NumEdges())
	}
	ring := make([]perm.Code, n)
	for i, idx := range cycle {
		ring[i] = block.FromCanon(idx)
	}
	res.Ring = ring
	return nil
}
