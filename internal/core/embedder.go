package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/pathsearch"
	"repro/internal/perm"
	"repro/internal/star"
	"repro/internal/substar"
	"repro/internal/superring"
)

// Embedder is a session-oriented handle on one star graph S_n: it owns
// the substrate shared by every embedding of that dimension (the graph,
// the configuration, and — transitively through internal/pathsearch —
// the canonical S4 block cache) and turns fault sets into Plans. Create
// one per dimension and reuse it across runs; the one-shot Embed
// function remains as a convenience wrapper.
type Embedder struct {
	n   int
	g   star.Graph
	cfg Config
}

// NewEmbedder validates the dimension and returns an engine for S_n.
func NewEmbedder(n int, cfg Config) (*Embedder, error) {
	if n < 3 || n > perm.MaxN {
		return nil, fmt.Errorf("core: dimension %d out of range [3,%d]", n, perm.MaxN)
	}
	return &Embedder{n: n, g: star.New(n), cfg: cfg}, nil
}

// N returns the engine's dimension.
func (e *Embedder) N() int { return e.n }

// Graph returns the underlying star graph.
func (e *Embedder) Graph() star.Graph { return e.g }

// Config returns the engine's configuration.
func (e *Embedder) Config() Config { return e.cfg }

// Reuse returns an engine for the same dimension under a different
// configuration, sharing the immutable substrate (the graph). Pools
// that keep one warmed Embedder per dimension use it to serve the
// occasional request with divergent options (best-effort, streaming)
// without paying NewEmbedder validation or holding a second pool.
func (e *Embedder) Reuse(cfg Config) *Embedder {
	return &Embedder{n: e.n, g: e.g, cfg: cfg}
}

// Warm runs one fault-free embedding and discards the plan, forcing
// the lazily built shared caches (the canonical S4 block cache behind
// internal/pathsearch) hot before the engine serves traffic. Pools
// call it at startup so the first real request does not pay the
// cold-cache cost.
func (e *Embedder) Warm() error {
	_, err := e.Embed(nil)
	return err
}

// Embed constructs a healthy ring in S_n avoiding the given faults and
// returns it as a live Plan. The Plan owns a private clone of fs, so the
// caller may keep mutating its set; new faults reach the Plan through
// Repair. Preconditions and errors match the package-level Embed.
//
// Embed runs as its own traced operation (a fresh core.op.embed trace);
// callers that already hold an operation context use EmbedOp.
func (e *Embedder) Embed(fs *faults.Set) (*Plan, error) {
	return e.EmbedOp(nil, fs)
}

// EmbedOp is Embed under an existing operation context: every phase
// span and event-log record of the run carries op's trace id, so a
// caller spanning several engine calls (the simulator, a repair's
// rebuild) gets one causal timeline. A nil op opens a fresh
// core.op.embed operation, owned by the call: ended on success, failed
// into the flight recorder on error.
func (e *Embedder) EmbedOp(op *obs.Op, fs *faults.Set) (*Plan, error) {
	n := e.n
	if fs == nil {
		fs = faults.NewSet(n)
	} else {
		if fs.N() != n {
			return nil, fmt.Errorf("core: fault set is for S_%d, embedding in S_%d", fs.N(), n)
		}
		fs = fs.Clone()
	}
	in := newInstr(e.cfg.Obs, n)
	owned := op == nil
	if owned {
		op = e.cfg.Obs.StartOp("core.op.embed")
	}
	in.bind(op)

	nv, ne := fs.NumVertices(), fs.NumEdges()
	withinBudget := nv+ne <= faults.MaxTolerated(n)
	if !withinBudget && !e.cfg.BestEffort {
		err := fmt.Errorf("%w: |Fv|=%d, |Fe|=%d, n=%d", ErrBudget, nv, ne, n)
		in.fail(op, owned, "core.embed", err)
		return nil, err
	}

	res := &Result{
		N:            n,
		VertexFaults: nv,
		EdgeFaults:   ne,
		Guarantee:    perm.Factorial(n) - 2*nv,
		Guaranteed:   withinBudget,
		UpperBound:   check.BipartiteUpperBound(n, fs),
	}

	total := in.span("core.phase.total")

	// The whole construction (and its self-verification) runs under the
	// phase=embed pprof label, so CPU profiles captured while embedding —
	// -cpuprofile or a live /debug/pprof/profile scrape — attribute their
	// samples to it. The parallel routing workers inherit the label.
	var p *Plan
	var err error
	prof.Do("embed", func() {
		var sk *skeleton
		switch {
		case n == 3:
			err = embedS3(res, fs)
		case n == 4:
			err = embedS4(res, fs)
		default:
			sk, err = embedLarge(res, fs, e.cfg, in)
		}
		if err != nil {
			return
		}
		if res.Ring != nil {
			res.Length = len(res.Ring)
		}
		// The plan exists before self-verification so that streaming mode
		// can verify through its cursor: check.RingStream re-derives every
		// block path from the skeleton instead of touching a materialized
		// ring (which does not exist in that mode).
		p = newPlan(e, res, fs, sk)
		minLen := 0
		if res.Guaranteed {
			minLen = res.Guarantee
		}
		vspan := in.span("core.phase.verify")
		var verr error
		if res.Ring != nil {
			verr = check.Ring(e.g, res.Ring, fs, minLen)
		} else {
			_, verr = check.RingStream(e.g, p.Cursor().Next, fs, minLen)
		}
		vspan.End()
		if verr != nil {
			err = fmt.Errorf("core: self-verification failed: %w", verr)
		}
	})
	total.End()
	in.finish()
	if err != nil {
		in.fail(op, owned, "core.embed", err)
		return nil, err
	}
	in.embedCompleted(res.Guaranteed)
	if op.Enabled(obs.LevelInfo) {
		op.Log(obs.LevelInfo, "core.embed",
			obs.F("n", n), obs.F("vertex_faults", nv), obs.F("edge_faults", ne),
			obs.F("ring", res.Len()), obs.F("guarantee", res.Guarantee))
	}
	in.done(op, owned)
	return p, nil
}

// skeleton is the pipeline state embedLarge leaves behind beyond the
// ring itself: the R4 super-ring and the routing outcome (per-block
// plans with their chosen junctions, plus segment offsets). The small-n
// direct embeddings have none.
type skeleton struct {
	r4 *superring.Ring
	rt *routed
}

// Plan is a live embedding: the verified Result plus the skeleton that
// produced it — separating positions, the R4 ring, per-block plans with
// their chosen junctions, and the block-to-ring-segment offsets. The
// skeleton is what makes Repair incremental: a new fault that lands in
// a previously healthy block invalidates exactly one 24-vertex segment,
// which can be re-routed and spliced without touching the other n!/24-1
// blocks.
type Plan struct {
	e   *Embedder
	res *Result
	fs  *faults.Set // owned; Repair mutates it

	// nil r4 marks the small-n direct embeddings (n <= 4): no skeleton,
	// every repair is a rebuild.
	r4       *superring.Ring
	blocks   []*blockPlan
	offsets  []int // block k occupies Ring[offsets[k]:offsets[k+1]]
	blockIdx map[substar.Pattern]int

	// gen counts ring mutations (splices and rebuilds). Cursors snapshot
	// it at creation and refuse to refill once it moves on, so a stale
	// iterator fails loudly instead of emitting a pre-repair cycle.
	gen int
	// seg/segBlock cache the most recently re-derived block segment for
	// the random-access paths (RingAt, OnRing) in streaming mode;
	// segBlock is -1 when the cache is empty or invalidated.
	seg      []perm.Code
	segBlock int

	broken bool // a failed rebuild poisons the plan
}

func newPlan(e *Embedder, res *Result, fs *faults.Set, sk *skeleton) *Plan {
	p := &Plan{e: e, res: res, fs: fs, segBlock: -1}
	if sk != nil {
		p.r4 = sk.r4
		p.blocks = sk.rt.plans
		p.offsets = sk.rt.offsets
		p.blockIdx = make(map[substar.Pattern]int, sk.r4.Len())
		for k, pat := range sk.r4.Vertices() {
			p.blockIdx[pat] = k
		}
	}
	return p
}

// Streaming reports whether the plan holds its ring in skeleton form
// only (Config.Streaming with n >= 5): Result().Ring is nil and the
// cycle is consumed through Cursor, Ring, or the random-access
// accessors, all of which re-derive block segments on demand.
func (p *Plan) Streaming() bool { return p.res.Ring == nil }

// Result returns the plan's current verified embedding. The pointer is
// live: Repair updates it in place.
func (p *Plan) Result() *Result { return p.res }

// N returns the plan's dimension.
func (p *Plan) N() int { return p.e.n }

// RingLen returns the current ring length.
func (p *Plan) RingLen() int { return p.res.Len() }

// RingAt returns the i-th ring vertex (0 <= i < RingLen). Materialized
// plans index the ring directly; streaming plans locate the owning
// block by binary search over the segment offsets and re-derive just
// that block's <= 24-vertex path (cached, so sequential or
// block-local access patterns stay cheap).
func (p *Plan) RingAt(i int) perm.Code {
	if p.res.Ring != nil {
		return p.res.Ring[i]
	}
	k := sort.Search(len(p.offsets)-1, func(k int) bool { return p.offsets[k+1] > i })
	return p.segment(k)[i-p.offsets[k]]
}

// Ring returns a copy of the current ring, built by draining a fresh
// cursor; mutating it cannot corrupt the plan. In streaming mode this
// materializes the full cycle — callers there should normally stay on
// Cursor, but small-n tooling and the cross-check tests want the flat
// slice.
func (p *Plan) Ring() []perm.Code {
	out := make([]perm.Code, 0, p.RingLen())
	c := p.Cursor()
	for {
		v, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	// Unreachable from a fresh cursor on an unbroken plan: replay of a
	// feasibility-proven block failed, which is an engine invariant
	// violation, not a caller error.
	mustf(c.Err() == nil, "core: Ring materialization: %v", c.Err())
	return out
}

// mustf is the package's invariant helper: it panics with a formatted
// message when cond is false. It guards engine invariants (a
// feasibility-proven block must replay) that can only break through a
// bug in this package, never through caller input; those paths return
// errors instead.
func mustf(cond bool, format string, args ...interface{}) {
	if !cond {
		panic(fmt.Sprintf(format, args...))
	}
}

// segment returns block k's current path in ring order, re-deriving it
// from the skeleton via the memoized canonical search (one-entry
// cache). Only valid on streaming plans.
func (p *Plan) segment(k int) []perm.Code {
	if p.segBlock == k {
		return p.seg
	}
	pb := p.blocks[k]
	seg, ok := pb.block.PathAppend(p.seg[:0], pathsearch.PathSpec{
		From: pb.entry, To: pb.exit,
		AvoidV: pb.avoidV, AvoidE: pb.avoidE,
		Target: pb.length,
	})
	mustf(ok, "core: block %d path vanished on replay", k)
	p.seg, p.segBlock = seg, k
	return seg
}

// ringSegment returns block k's segment of the current ring without
// copying: a subslice in materialized mode, the replay cache in
// streaming mode.
func (p *Plan) ringSegment(k int) []perm.Code {
	if p.res.Ring != nil {
		return p.res.Ring[p.offsets[k]:p.offsets[k+1]]
	}
	return p.segment(k)
}

// Faulty reports whether v is a known-faulty vertex.
func (p *Plan) Faulty(v perm.Code) bool { return p.fs.HasVertex(v) }

// Faults returns a snapshot clone of the plan's fault set.
func (p *Plan) Faults() *faults.Set { return p.fs.Clone() }

// Blocks returns the number of R4 blocks (zero for n <= 4).
func (p *Plan) Blocks() int { return len(p.blocks) }

// OnRing reports whether v currently sits on the ring. With a skeleton
// this is an O(1) block lookup plus a scan of one <= 24-vertex segment
// (re-derived from the skeleton in streaming mode); without one
// (n <= 4) the whole <= 24-vertex ring is scanned.
func (p *Plan) OnRing(v perm.Code) bool {
	seg := p.res.Ring
	if p.r4 != nil {
		k, ok := p.blockOf(v)
		if !ok {
			return false
		}
		seg = p.ringSegment(k)
	}
	for _, u := range seg {
		if u == v {
			return true
		}
	}
	return false
}

// blockOf locates the R4 block containing v via the Lemma 2 separating
// positions.
func (p *Plan) blockOf(v perm.Code) (int, bool) {
	pat := substar.PatternOf(p.e.n, v, p.res.Positions)
	k, ok := p.blockIdx[pat]
	return k, ok
}

// RepairOutcome classifies what Repair had to do.
type RepairOutcome int

const (
	// RepairNoop: the vertex was already faulty; nothing changed.
	RepairNoop RepairOutcome = iota
	// RepairAvoided: the vertex was off-ring (a spare), so the existing
	// ring is still healthy; only the fault accounting changed.
	RepairAvoided
	// RepairSplice: the fast path — one block re-routed via Lemma 4 and
	// its segment spliced in place; the ring shrank by exactly 2.
	RepairSplice
	// RepairRebuild: the skeleton was invalidated; a full re-embedding
	// replaced the plan.
	RepairRebuild
)

// String implements fmt.Stringer.
func (o RepairOutcome) String() string {
	switch o {
	case RepairNoop:
		return "noop"
	case RepairAvoided:
		return "avoided"
	case RepairSplice:
		return "splice"
	case RepairRebuild:
		return "rebuild"
	}
	return fmt.Sprintf("RepairOutcome(%d)", int(o))
}

// RepairReport describes one Repair call.
type RepairReport struct {
	Outcome RepairOutcome
	// Block is the re-routed block index (splice only; -1 otherwise).
	Block int
	// SegmentStart/SegmentOldLen frame the replaced segment in the
	// pre-repair ring (splice only); the new segment is two shorter.
	SegmentStart  int
	SegmentOldLen int
	// OldLen and NewLen are the ring lengths before and after.
	OldLen, NewLen int
	// BlocksRerouted is the work actually done: 0 (noop/avoided), 1
	// (splice), or the full block count (rebuild).
	BlocksRerouted int
}

// ErrPlanBroken reports Repair being called on a plan whose last rebuild
// failed; its ring is stale and must not be used.
var ErrPlanBroken = errors.New("core: plan is broken (a previous rebuild failed)")

// Repair folds one newly failed vertex into the plan. The fast path
// applies when the fault lands in a previously healthy block and leaves
// the skeleton's invariants intact — (P1) still holds (the block gains
// its first fault, so the Lemma 2 separation survives), (P3) still holds
// (the vertex is not a junction endpoint and the neighbor blocks stay
// fault-free) — in which case only that block is re-routed via Lemma 4
// to a path two vertices shorter and the segment is spliced in place:
// O(24-vertex search + splice) instead of a full O(n!) re-embedding.
// Only the spliced segment is re-verified (the junction edges and every
// other block are untouched); set Config.VerifyRepairs to re-run the
// full check.Ring after every successful splice.
//
// When the fast path does not apply — off-skeleton dimensions, a second
// fault in the same block, a junction vertex, an adjacent faulty block,
// or a failed block search — Repair falls back to a full re-embedding of
// the accumulated fault set.
//
// A vertex beyond the paper's budget returns ErrBudget without mutating
// the plan (unless BestEffort). A fault landing off-ring returns
// RepairAvoided: the ring is untouched and still meets the new, smaller
// guarantee.
func (p *Plan) Repair(v perm.Code) (RepairReport, error) {
	return p.RepairOp(nil, v)
}

// RepairOp is Repair under an existing operation context (see EmbedOp
// for the contract). A nil op opens a fresh core.op.repair operation
// owned by the call.
func (p *Plan) RepairOp(op *obs.Op, v perm.Code) (RepairReport, error) {
	rep := RepairReport{Block: -1, OldLen: p.res.Len()}
	if p.broken {
		return rep, ErrPlanBroken
	}
	if p.fs.HasVertex(v) {
		rep.Outcome = RepairNoop
		rep.NewLen = rep.OldLen
		return rep, nil
	}

	in := newInstr(p.e.cfg.Obs, p.e.n)
	owned := op == nil
	if owned {
		op = p.e.cfg.Obs.StartOp("core.op.repair")
	}
	in.bind(op)
	defer in.finish()

	n := p.e.n
	nv, ne := p.fs.NumVertices(), p.fs.NumEdges()
	if nv+1+ne > faults.MaxTolerated(n) && !p.e.cfg.BestEffort {
		err := fmt.Errorf("%w: |Fv|=%d, |Fe|=%d, n=%d", ErrBudget, nv+1, ne, n)
		in.fail(op, owned, "core.repair", err)
		return rep, err
	}
	if err := p.fs.AddVertex(v); err != nil {
		in.fail(op, owned, "core.repair", err)
		return rep, err
	}
	p.res.VertexFaults++
	p.res.Guarantee = perm.Factorial(n) - 2*p.res.VertexFaults
	p.res.Guaranteed = p.res.VertexFaults+p.res.EdgeFaults <= faults.MaxTolerated(n)
	p.res.UpperBound = check.BipartiteUpperBound(n, p.fs)

	if !p.OnRing(v) {
		// A spare died: the ring never visited it, so it is still healthy
		// and its unchanged length still meets the reduced guarantee.
		in.repair("avoided")
		rep.Outcome = RepairAvoided
		rep.NewLen = rep.OldLen
		p.logRepair(in, v, rep)
		in.done(op, owned)
		return rep, nil
	}

	if k, ok := p.spliceTarget(v); ok {
		span := in.span("core.phase.repair_splice")
		var err error
		prof.Do("splice", func() { err = p.splice(k, v) })
		span.End()
		if err == nil {
			in.repair("splices")
			rep.Outcome = RepairSplice
			rep.Block = k
			rep.SegmentStart = p.offsets[k]
			rep.SegmentOldLen = p.offsets[k+1] - p.offsets[k] + 2
			rep.NewLen = p.res.Len()
			rep.BlocksRerouted = 1
			p.logRepair(in, v, rep)
			in.done(op, owned)
			return rep, nil
		}
		// Lemma 4 covers the strict regime, so a failed splice should
		// only happen under BestEffort degradation; fall through.
	}

	span := in.span("core.phase.repair_rebuild")
	var err error
	// The nested Embed re-labels its own extent phase=embed; samples in
	// the rebuild bookkeeping around it stay phase=rebuild.
	prof.Do("rebuild", func() { err = p.rebuild(op) })
	span.End()
	if err != nil {
		// The nested EmbedOp already noted the failure against this trace
		// (or the plan is poisoned); just close an owned root span.
		in.done(op, owned)
		return rep, err
	}
	in.repair("rebuilds")
	rep.Outcome = RepairRebuild
	rep.NewLen = p.res.Len()
	rep.BlocksRerouted = p.res.Blocks
	p.logRepair(in, v, rep)
	in.done(op, owned)
	return rep, nil
}

// logRepair emits the structured core.repair event when an event log is
// attached: which vertex failed, what Repair did, and what it cost. The
// record carries the bound operation's trace id.
func (p *Plan) logRepair(in *instr, v perm.Code, rep RepairReport) {
	if in == nil || !in.op.Enabled(obs.LevelInfo) {
		return
	}
	in.op.Log(obs.LevelInfo, "core.repair",
		obs.F("vertex", v.StringN(p.e.n)),
		obs.F("outcome", rep.Outcome.String()),
		obs.F("blocks_rerouted", rep.BlocksRerouted),
		obs.F("old_len", rep.OldLen),
		obs.F("new_len", rep.NewLen))
}

// CanSplice reports whether a failure of v would take the splice fast
// path, without mutating the plan. (Off-ring and already-faulty vertices
// report false: those repairs never re-route anything.)
func (p *Plan) CanSplice(v perm.Code) bool {
	if p.broken || p.fs.HasVertex(v) || !p.OnRing(v) {
		return false
	}
	_, ok := p.spliceTarget(v)
	return ok
}

// spliceTarget re-checks the skeleton invariants incrementally for a
// fault at v and returns the block to re-route when they all hold:
//
//   - the block was fault-free, so it gains its first fault and (P1) —
//     hence the Lemma 2 separation — survives;
//   - v is not the block's entry or exit junction endpoint, and the two
//     neighbor blocks carry no faults, so the Lemma 3 spread/healthy-
//     junction discipline ((P3)) survives;
//   - the block's current path is long enough to shed two vertices.
func (p *Plan) spliceTarget(v perm.Code) (int, bool) {
	if p.r4 == nil {
		return -1, false
	}
	k, ok := p.blockOf(v)
	if !ok {
		return -1, false
	}
	pb := p.blocks[k]
	if len(pb.avoidV) != 0 || len(pb.avoidE) != 0 {
		return -1, false
	}
	if v == pb.entry || v == pb.exit {
		return -1, false
	}
	m := len(p.blocks)
	for _, j := range [2]int{(k - 1 + m) % m, (k + 1) % m} {
		if j == k {
			continue
		}
		nb := p.blocks[j]
		if len(nb.avoidV) != 0 || len(nb.avoidE) != 0 {
			return -1, false
		}
	}
	if pb.length < 4 {
		return -1, false
	}
	return k, true
}

// splice re-routes block k around its new fault v — Lemma 4 guarantees a
// path two vertices shorter between the unchanged entry and exit — and
// splices the segment into the ring in place. Only the new segment is
// verified: the junction edges are untouched (same healthy endpoints,
// and Repair adds no edge faults) and every other segment is unchanged.
func (p *Plan) splice(k int, v perm.Code) error {
	pb := p.blocks[k]
	target := pb.length - 2
	path, ok := pb.block.Path(pathsearch.PathSpec{
		From: pb.entry, To: pb.exit,
		AvoidV: []perm.Code{v}, AvoidE: pb.avoidE,
		Target: target,
	})
	if !ok {
		return fmt.Errorf("core: block %d admits no %d-vertex detour around the new fault", k, target)
	}
	if err := check.Path(p.e.g, path, p.fs); err != nil {
		return fmt.Errorf("core: repair splice self-check: %w", err)
	}

	p.applySplice(k, path)
	pb.avoidV = append(pb.avoidV, v)
	pb.length = target
	p.res.FaultyBlocks++

	if p.e.cfg.VerifyRepairs {
		minLen := 0
		if p.res.Guaranteed {
			minLen = p.res.Guarantee
		}
		var err error
		if p.res.Ring != nil {
			err = check.Ring(p.e.g, p.res.Ring, p.fs, minLen)
		} else {
			_, err = check.RingStream(p.e.g, p.Cursor().Next, p.fs, minLen)
		}
		if err != nil {
			// The splice is already applied; the rebuild fallback replaces
			// the whole plan, so the inconsistent state cannot leak.
			return fmt.Errorf("core: repair verification failed: %w", err)
		}
	}
	return nil
}

// applySplice commits block k's replacement path to the plan's ring
// representation and invalidates every derived view: materialized
// plans rewrite the segment in place, streaming plans only shift the
// downstream offsets (the path itself is implicit — the skeleton's
// updated avoid/length tuple re-derives it on the next read). Either
// way the generation counter advances, expiring open cursors, and the
// one-entry segment cache is dropped.
func (p *Plan) applySplice(k int, path []perm.Code) {
	if p.res.Ring != nil {
		p.spliceSegment(k, path)
	} else {
		delta := (p.offsets[k+1] - p.offsets[k]) - len(path)
		for j := k + 1; j < len(p.offsets); j++ {
			p.offsets[j] -= delta
		}
		p.res.Length -= delta
	}
	p.gen++
	p.segBlock = -1
}

// spliceSegment overwrites block k's segment of the ring with the
// replacement path in place and shifts the downstream block offsets.
// This is the O(1)-extra-space ring surgery behind the repair fast
// path's per-step cost: two copies bounded by the block width plus the
// ring tail, and no allocation — hotalloc enforces that invariant
// against refactors.
//
//starlint:hotpath
func (p *Plan) spliceSegment(k int, path []perm.Code) {
	ring := p.res.Ring
	start, oldEnd := p.offsets[k], p.offsets[k+1]
	delta := (oldEnd - start) - len(path)
	copy(ring[start:], path)
	copy(ring[start+len(path):], ring[oldEnd:])
	p.res.Ring = ring[:len(ring)-delta]
	p.res.Length = len(p.res.Ring)
	for j := k + 1; j < len(p.offsets); j++ {
		p.offsets[j] -= delta
	}
}

// rebuild replaces the plan with a cold embedding of the accumulated
// fault set, joined to the repair's operation context so the whole
// fallback shows up under one trace. On failure the plan is poisoned:
// its ring predates the fault that triggered the rebuild.
func (p *Plan) rebuild(op *obs.Op) error {
	np, err := p.e.EmbedOp(op, p.fs)
	if err != nil {
		p.broken = true
		return err
	}
	// Carry the mutation counter forward so cursors opened on the old
	// ring observe the rebuild as a generation change, not a fresh plan.
	np.gen = p.gen + 1
	*p = *np
	return nil
}
