package core

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
)

// TestSmokeEmbed drives the full pipeline across small dimensions and
// fault counts; the detailed suites live alongside each package.
func TestSmokeEmbed(t *testing.T) {
	for n := 3; n <= 7; n++ {
		for k := 0; k <= faults.MaxTolerated(n); k++ {
			rng := rand.New(rand.NewSource(int64(100*n + k)))
			fs := faults.RandomVertices(n, k, rng)
			res, err := Embed(n, fs, Config{})
			if err != nil {
				t.Fatalf("Embed(n=%d, |Fv|=%d): %v", n, k, err)
			}
			if res.Len() < res.Guarantee {
				t.Fatalf("Embed(n=%d, |Fv|=%d): length %d < guarantee %d", n, k, res.Len(), res.Guarantee)
			}
			t.Logf("n=%d |Fv|=%d: ring %d (guarantee %d, upper %d, blocks %d)",
				n, k, res.Len(), res.Guarantee, res.UpperBound, res.Blocks)
		}
	}
}
