package core

import (
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/pathsearch"
	"repro/internal/perm"
	"repro/internal/superring"
)

// blockOrder is the number of vertices per S4 block.
const blockOrder = pathsearch.BlockOrder

// blockPlan collects everything needed to route one block of the R4.
type blockPlan struct {
	block   *pathsearch.Block
	avoidV  []perm.Code    // faulty vertices inside the block
	avoidE  [][2]perm.Code // faulty edges interior to the block
	targets []int          // acceptable path lengths, best first

	// Chosen by the junction search:
	entry, exit perm.Code
	length      int // the target that succeeded
}

// junction is one candidate crossing edge between consecutive blocks:
// exit u in block k, entry w in block k+1.
type junction struct {
	u, w perm.Code
}

// routed is the skeleton-level outcome of one RouteR4 run: the
// per-block state (entry/exit junctions, achieved lengths) and the
// block-to-ring-segment offsets. It deliberately does NOT hold the
// ring: once every junction is fixed, each block's path is a
// deterministic function of its (entry, exit, avoid, length) tuple —
// the memoized canonical-S4 search replays it bit-identically — so the
// cycle can be re-materialized block by block on demand. Plan keeps
// the routed alive so Repair can re-route a single block and splice
// its segment in place, and so RingCursor can stream the ring at
// O(#blocks) memory. Callers that want the flat []perm.Code run
// assemble over it.
type routed struct {
	plans   []*blockPlan
	offsets []int // block k occupies ring[offsets[k]:offsets[k+1]]
}

// ringLen returns the total ring length implied by the block lengths.
func (rt *routed) ringLen() int { return rt.offsets[len(rt.offsets)-1] }

// RouteR4 is the executable Lemma 7: given an R4 with (P1)(P2)(P3), it
// selects a healthy junction edge across every superedge and threads a
// healthy path of the per-block target length through every block,
// producing the final ring. Junction selection is a sequential scan with
// backtracking; (P2) guarantees (via Lemmas 1, 5 and 6) that a valid
// combination exists, and the exact block search makes each feasibility
// test cheap and memoized.
//
// targetsFor maps a block's vertex-fault count to the acceptable path
// lengths, best first. RouteR4 is exported for internal/baseline, which
// routes its own R4 variants through the same engine; library users
// should call Embed.
func RouteR4(r4 *superring.Ring, fs *faults.Set, targetsFor func(int) []int, cfg Config) ([]perm.Code, error) {
	in := newInstr(cfg.Obs, fs.N())
	rt, err := routeR4x(r4, fs, func(_, vf int) []int { return targetsFor(vf) }, nil, cfg, in)
	if err != nil {
		return nil, err
	}
	ring, _, err := assemble(rt.plans, cfg, in)
	return ring, err
}

// routeR4x is RouteR4 with two extra degrees of freedom used by the
// opportunistic mode: per-block-index target policies and, when
// exitParity is non-nil, a forced partite side for every block's exit
// vertex (which pins the global parity chain that odd-length block
// paths require).
func routeR4x(r4 *superring.Ring, fs *faults.Set, targetsFor func(blockIdx, vf int) []int, exitParity []int, cfg Config, in *instr) (*routed, error) {
	m := r4.Len()
	plans := make([]*blockPlan, m)
	for k := 0; k < m; k++ {
		pat := r4.At(k)
		b, err := pathsearch.NewBlock(pat)
		if err != nil {
			return nil, fmt.Errorf("core: internal: %w", err)
		}
		plan := &blockPlan{block: b}
		plan.avoidV = fs.FaultyIn(pat, nil)
		for _, e := range fs.IntraEdgesIn(pat, nil) {
			plan.avoidE = append(plan.avoidE, [2]perm.Code{e.U, e.V})
		}
		plan.targets = targetsFor(k, len(plan.avoidV))
		plans[k] = plan
	}

	// Candidate junctions per superedge: healthy endpoints, healthy
	// crossing edges, and (in opportunistic mode) the forced exit side.
	n := r4.N()
	cands := make([][]junction, m)
	for k := 0; k < m; k++ {
		us, ws := r4.At(k).CrossEdges(r4.At(k+1), nil, nil)
		var js []junction
		for i := range us {
			u, w := us[i], ws[i]
			if fs.HasVertex(u) || fs.HasVertex(w) || fs.HasEdge(u, w) {
				continue
			}
			if exitParity != nil && u.Parity(n) != exitParity[k] {
				continue
			}
			js = append(js, junction{u: u, w: w})
		}
		if len(js) == 0 {
			return nil, fmt.Errorf("core: superedge %d has no healthy crossing edge", k)
		}
		cands[k] = js
	}

	jspan := in.span("core.phase.junction")
	err := chooseJunctions(plans, cands, in)
	jspan.End()
	if err != nil {
		return nil, err
	}
	offsets := make([]int, m+1)
	for k, p := range plans {
		offsets[k+1] = offsets[k] + p.length
	}
	return &routed{plans: plans, offsets: offsets}, nil
}

// chooseJunctions assigns one junction per superedge such that every
// block admits a path of one of its target lengths between its entry
// (from the previous junction) and exit (from its own junction).
// Junction k joins block k to block k+1; block k is validated once
// junctions k-1 and k are set, and block 0 closes the cycle when the
// final junction is chosen.
func chooseJunctions(plans []*blockPlan, cands [][]junction, in *instr) error {
	m := len(plans)
	idx := make([]int, m)
	chosen := make([]junction, m)

	// blockFeasible reports whether block k supports one of its target
	// lengths between entry and exit, recording the first that works.
	blockFeasible := func(k int, entry, exit perm.Code) bool {
		p := plans[k]
		for _, t := range p.targets {
			_, ok := p.block.Path(pathsearch.PathSpec{
				From: entry, To: exit,
				AvoidV: p.avoidV, AvoidE: p.avoidE,
				Target: t,
			})
			if ok {
				p.entry, p.exit, p.length = entry, exit, t
				return true
			}
		}
		return false
	}

	// The step bound guards against pathological backtracking; it must
	// scale with the block count or the bound itself becomes the limit —
	// n = 11 already has 1.66M blocks, more than the old fixed 2^21.
	maxSteps := 1 << 21
	if s := 32 * m; s > maxSteps {
		maxSteps = s
	}
	steps := 0
	k := 0
	for k < m {
		if steps++; steps > maxSteps {
			return fmt.Errorf("core: junction search exceeded %d steps (blocks=%d)", maxSteps, m)
		}
		if idx[k] >= len(cands[k]) {
			idx[k] = 0
			k--
			if k < 0 {
				return fmt.Errorf("core: no junction assignment routes the ring")
			}
			idx[k]++
			in.junctionBacktrack()
			continue
		}
		chosen[k] = cands[k][idx[k]]
		ok := true
		if k >= 1 && !blockFeasible(k, chosen[k-1].w, chosen[k].u) {
			ok = false
		}
		if ok && k == m-1 && !blockFeasible(0, chosen[m-1].w, chosen[0].u) {
			ok = false
		}
		if !ok {
			idx[k]++
			in.junctionBacktrack()
			continue
		}
		k++
	}

	// Feasibility calls above recorded entry/exit for blocks 1..m-1 and
	// finally block 0; but intermediate backtracking may have left stale
	// state, so re-record the final assignment.
	for k := 0; k < m; k++ {
		prev := (k - 1 + m) % m
		if !blockFeasible(k, chosen[prev].w, chosen[k].u) {
			return fmt.Errorf("core: internal: block %d lost feasibility on replay", k)
		}
	}
	return nil
}

// assemble materializes every block path and concatenates them into the
// ring, returning the ring and the per-block segment offsets. Path
// extraction per block is independent given the junctions, so it is
// fanned out over a worker pool; results land directly in their
// precomputed segment of the output slice.
func assemble(plans []*blockPlan, cfg Config, in *instr) ([]perm.Code, []int, error) {
	m := len(plans)
	offsets := make([]int, m+1)
	for k, p := range plans {
		offsets[k+1] = offsets[k] + p.length
	}
	ring := make([]perm.Code, offsets[m])

	workers := cfg.workers()
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		outErr error
		busyNS int64
	)
	rspan := in.span("core.phase.route")
	next := make(chan int, m)
	for k := 0; k < m; k++ {
		next <- k
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker spans its whole drain of the block queue as a
			// child of the route phase, so the trace shows the pool's
			// per-worker extents, not just the aggregate.
			wspan := rspan.Span("core.route.worker")
			defer wspan.End()
			wstart := in.now()
			for k := range next {
				p := plans[k]
				path, ok := p.block.Path(pathsearch.PathSpec{
					From: p.entry, To: p.exit,
					AvoidV: p.avoidV, AvoidE: p.avoidE,
					Target: p.length,
				})
				if !ok {
					mu.Lock()
					if outErr == nil {
						outErr = fmt.Errorf("core: internal: block %d path vanished", k)
					}
					mu.Unlock()
					continue
				}
				copy(ring[offsets[k]:offsets[k+1]], path)
				in.blockRouted()
			}
			in.workerDone(wstart, &busyNS)
		}()
	}
	wg.Wait()
	in.routeDone(workers, busyNS, rspan.End())
	if outErr != nil {
		return nil, nil, outErr
	}
	return ring, offsets, nil
}
