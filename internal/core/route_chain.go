package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/pathsearch"
	"repro/internal/perm"
	"repro/internal/superring"
)

// routeChain threads the concrete s-t path through an anchored block
// chain. It mirrors RouteR4 with three differences: the first block's
// entry is the source vertex itself, the last block's exit is the
// target, and — when s and t share a partite set — exactly one block is
// routed with an odd vertex count to fix the global parity (preferring
// a faulty block whose fault lies on the other side, which then sheds
// only its fault).
func routeChain(chain *superring.Chain, fs *faults.Set, s, t perm.Code, cfg Config) ([]perm.Code, error) {
	m := chain.Len()
	n := chain.N()
	plans := make([]*blockPlan, m)
	for k := 0; k < m; k++ {
		pat := chain.At(k)
		b, err := pathsearch.NewBlock(pat)
		if err != nil {
			return nil, fmt.Errorf("core: internal: %w", err)
		}
		plan := &blockPlan{block: b}
		plan.avoidV = fs.FaultyIn(pat, nil)
		for _, e := range fs.IntraEdgesIn(pat, nil) {
			plan.avoidE = append(plan.avoidE, [2]perm.Code{e.U, e.V})
		}
		plans[k] = plan
	}
	if !plans[0].block.Contains(s) || !plans[m-1].block.Contains(t) {
		return nil, fmt.Errorf("core: internal: chain anchors misplaced")
	}

	cands := make([][]junction, m-1)
	for k := 0; k+1 < m; k++ {
		us, ws := chain.At(k).CrossEdges(chain.At(k+1), nil, nil)
		var js []junction
		for i := range us {
			u, w := us[i], ws[i]
			if fs.HasVertex(u) || fs.HasVertex(w) || fs.HasEdge(u, w) {
				continue
			}
			if k == 0 && u == s {
				continue // the source cannot double as the exit
			}
			if k+1 == m-1 && w == t {
				continue
			}
			js = append(js, junction{u: u, w: w})
		}
		if len(js) == 0 {
			return nil, fmt.Errorf("core: chain gap %d has no healthy crossing edge", k)
		}
		cands[k] = js
	}

	needOdd := s.Parity(n) == t.Parity(n)
	in := newInstr(cfg.Obs, n)
	for _, odd := range oddBlockCandidates(plans, n, s, needOdd) {
		for k, p := range plans {
			p.targets = chainTargets(k == odd, len(p.avoidV), cfg.BestEffort)
		}
		if err := chooseChainJunctions(plans, cands, s, t); err == nil {
			path, _, err := assemble(plans, cfg, in)
			return path, err
		}
	}
	return nil, fmt.Errorf("core: no odd-block designation routes the chain (s, t %v-parity)", needOdd)
}

// oddBlockCandidates orders the blocks to try as the designated
// odd-length block: none when the endpoints already differ in parity;
// otherwise faulty blocks whose fault sits on the other side (those
// UPGRADE to 23 vertices), then healthy blocks (23 with one healthy
// vertex shed), then the remaining faulty blocks (21).
func oddBlockCandidates(plans []*blockPlan, n int, s perm.Code, needOdd bool) []int {
	if !needOdd {
		return []int{-1}
	}
	var upgrade, healthy, downgrade []int
	for k, p := range plans {
		switch {
		case len(p.avoidV) == 1 && p.avoidV[0].Parity(n) != s.Parity(n):
			upgrade = append(upgrade, k)
		case len(p.avoidV) == 0:
			healthy = append(healthy, k)
		default:
			downgrade = append(downgrade, k)
		}
	}
	out := append(upgrade, healthy...)
	return append(out, downgrade...)
}

// chainTargets is the per-block length policy for chains.
func chainTargets(odd bool, vf int, bestEffort bool) []int {
	base := blockOrder - 2*vf
	if odd {
		// One vertex more than the even yield when the block can shed
		// only its fault, one fewer otherwise; the search tries both
		// (a healthy block has no fault to shed, so only base-1 = 23 is
		// within the block order).
		ts := []int{}
		if base+1 <= blockOrder {
			ts = append(ts, base+1)
		}
		ts = append(ts, base-1)
		if bestEffort {
			for t := base - 3; t >= 1; t -= 2 {
				ts = append(ts, t)
			}
		}
		return ts
	}
	if !bestEffort {
		return []int{base}
	}
	var ts []int
	for t := base; t >= 2; t -= 2 {
		ts = append(ts, t)
	}
	return ts
}

// chooseChainJunctions assigns the m-1 junctions left to right with
// backtracking; block k is validated once junction k is fixed, and the
// final block when the last junction lands.
func chooseChainJunctions(plans []*blockPlan, cands [][]junction, s, t perm.Code) error {
	m := len(plans)
	if m == 1 {
		p := plans[0]
		for _, target := range p.targets {
			if _, ok := p.block.Path(pathsearch.PathSpec{
				From: s, To: t, AvoidV: p.avoidV, AvoidE: p.avoidE, Target: target,
			}); ok {
				p.entry, p.exit, p.length = s, t, target
				return nil
			}
		}
		return fmt.Errorf("core: single-block chain unroutable")
	}

	idx := make([]int, m-1)
	chosen := make([]junction, m-1)

	blockFeasible := func(k int, entry, exit perm.Code) bool {
		p := plans[k]
		for _, target := range p.targets {
			if _, ok := p.block.Path(pathsearch.PathSpec{
				From: entry, To: exit, AvoidV: p.avoidV, AvoidE: p.avoidE, Target: target,
			}); ok {
				p.entry, p.exit, p.length = entry, exit, target
				return true
			}
		}
		return false
	}

	entryOf := func(k int) perm.Code {
		if k == 0 {
			return s
		}
		return chosen[k-1].w
	}

	const maxSteps = 1 << 21
	steps := 0
	k := 0
	for k < m-1 {
		if steps++; steps > maxSteps {
			return fmt.Errorf("core: chain junction search exceeded %d steps", maxSteps)
		}
		if idx[k] >= len(cands[k]) {
			idx[k] = 0
			k--
			if k < 0 {
				return fmt.Errorf("core: no junction assignment routes the chain")
			}
			idx[k]++
			continue
		}
		chosen[k] = cands[k][idx[k]]
		ok := blockFeasible(k, entryOf(k), chosen[k].u)
		if ok && k == m-2 && !blockFeasible(m-1, chosen[m-2].w, t) {
			ok = false
		}
		if !ok {
			idx[k]++
			continue
		}
		k++
	}

	// Replay to pin every block's final entry/exit/length (backtracking
	// may have left stale recordings).
	for k := 0; k < m; k++ {
		exit := t
		if k < m-1 {
			exit = chosen[k].u
		}
		if !blockFeasible(k, entryOf(k), exit) {
			return fmt.Errorf("core: internal: chain block %d lost feasibility on replay", k)
		}
	}
	return nil
}
