package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// planOn embeds a fault-free plan for S_n.
func planOn(t *testing.T, n int, cfg Config) *Plan {
	t.Helper()
	e, err := NewEmbedder(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Embed(nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// interiorOf returns a vertex of block k that is neither its entry nor
// its exit junction endpoint.
func interiorOf(t *testing.T, p *Plan, k int) perm.Code {
	t.Helper()
	pb := p.blocks[k]
	for _, v := range p.res.Ring[p.offsets[k]:p.offsets[k+1]] {
		if v != pb.entry && v != pb.exit {
			return v
		}
	}
	t.Fatalf("block %d has no interior vertex", k)
	return 0
}

// verifyPlan re-checks the plan's ring against the paper bound.
func verifyPlan(t *testing.T, p *Plan) {
	t.Helper()
	res := p.Result()
	minLen := 0
	if res.Guaranteed {
		minLen = res.Guarantee
	}
	if err := check.Ring(star.New(p.N()), res.Ring, p.fs, minLen); err != nil {
		t.Fatalf("plan fails full verification: %v", err)
	}
}

func TestRepairSpliceFastPath(t *testing.T) {
	p := planOn(t, 6, Config{})
	full := p.RingLen()
	v := interiorOf(t, p, 0)
	if !p.CanSplice(v) {
		t.Fatalf("interior vertex of a healthy block must be spliceable")
	}
	rep, err := p.Repair(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairSplice {
		t.Fatalf("outcome %v, want splice", rep.Outcome)
	}
	if rep.Block != 0 || rep.SegmentStart != 0 || rep.SegmentOldLen != blockOrder {
		t.Fatalf("report frames segment %d+%d of block %d", rep.SegmentStart, rep.SegmentOldLen, rep.Block)
	}
	if rep.BlocksRerouted != 1 {
		t.Fatalf("splice re-routed %d blocks", rep.BlocksRerouted)
	}
	if rep.OldLen != full || rep.NewLen != full-2 || p.RingLen() != full-2 {
		t.Fatalf("lengths %d -> %d, want %d -> %d", rep.OldLen, rep.NewLen, full, full-2)
	}
	if got, want := p.Result().Guarantee, perm.Factorial(6)-2; got != want {
		t.Fatalf("guarantee %d, want %d", got, want)
	}
	if p.OnRing(v) || !p.Faulty(v) {
		t.Fatal("repaired vertex still looks healthy")
	}
	verifyPlan(t, p)
}

func TestRepairJunctionVertexRebuilds(t *testing.T) {
	p := planOn(t, 6, Config{})
	v := p.blocks[0].entry
	if p.CanSplice(v) {
		t.Fatal("junction endpoint must not be spliceable ((P3))")
	}
	rep, err := p.Repair(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairRebuild {
		t.Fatalf("outcome %v, want rebuild", rep.Outcome)
	}
	if rep.BlocksRerouted != p.Result().Blocks {
		t.Fatalf("rebuild charged %d blocks, want %d", rep.BlocksRerouted, p.Result().Blocks)
	}
	verifyPlan(t, p)
}

func TestRepairSecondFaultSameBlockRebuilds(t *testing.T) {
	p := planOn(t, 6, Config{})
	if rep, err := p.Repair(interiorOf(t, p, 0)); err != nil || rep.Outcome != RepairSplice {
		t.Fatalf("setup splice: %v %v", rep.Outcome, err)
	}
	// A second fault in the now-faulty block breaks (P1) for the
	// existing separation; the skeleton cannot absorb it.
	v := interiorOf(t, p, 0)
	if p.CanSplice(v) {
		t.Fatal("second fault in a block must not be spliceable ((P1))")
	}
	rep, err := p.Repair(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairRebuild {
		t.Fatalf("outcome %v, want rebuild", rep.Outcome)
	}
	verifyPlan(t, p)
}

func TestRepairOffRingAvoided(t *testing.T) {
	p := planOn(t, 6, Config{})
	if rep, err := p.Repair(interiorOf(t, p, 0)); err != nil || rep.Outcome != RepairSplice {
		t.Fatalf("setup splice: %v %v", rep.Outcome, err)
	}
	// The spliced block shed two vertices: its fault and one healthy
	// casualty. Failing the casualty must not disturb the ring.
	var spare perm.Code
	found := false
	for _, v := range p.r4.At(0).Vertices(nil) {
		if !p.Faulty(v) && !p.OnRing(v) {
			spare, found = v, true
			break
		}
	}
	if !found {
		t.Fatal("spliced block has no healthy off-ring vertex")
	}
	if p.CanSplice(spare) {
		t.Fatal("off-ring vertex must not be spliceable")
	}
	length := p.RingLen()
	rep, err := p.Repair(spare)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairAvoided {
		t.Fatalf("outcome %v, want avoided", rep.Outcome)
	}
	if rep.BlocksRerouted != 0 || p.RingLen() != length {
		t.Fatalf("avoided repair touched the ring (%d blocks, len %d -> %d)",
			rep.BlocksRerouted, length, p.RingLen())
	}
	if !p.Faulty(spare) {
		t.Fatal("avoided fault not recorded")
	}
	// Guarantee dropped by 2 but the unchanged ring still clears it.
	verifyPlan(t, p)
}

func TestRepairNoopOnKnownFault(t *testing.T) {
	p := planOn(t, 6, Config{})
	v := interiorOf(t, p, 0)
	if _, err := p.Repair(v); err != nil {
		t.Fatal(err)
	}
	length := p.RingLen()
	faultsBefore := p.Result().VertexFaults
	rep, err := p.Repair(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairNoop {
		t.Fatalf("outcome %v, want noop", rep.Outcome)
	}
	if p.RingLen() != length || p.Result().VertexFaults != faultsBefore {
		t.Fatal("noop repair mutated the plan")
	}
}

func TestRepairBudgetExceeded(t *testing.T) {
	n := 6
	p := planOn(t, n, Config{})
	first := p.RingAt(1)
	for i := 0; i < faults.MaxTolerated(n); i++ {
		if _, err := p.Repair(p.RingAt(1)); err != nil {
			t.Fatal(err)
		}
	}
	length := p.RingLen()
	nv := p.Result().VertexFaults
	v := p.RingAt(1)
	_, err := p.Repair(v)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if p.Faulty(v) || p.RingLen() != length || p.Result().VertexFaults != nv {
		t.Fatal("over-budget repair mutated the plan")
	}
	// The plan is not poisoned: known faults still no-op cleanly.
	rep, err := p.Repair(first)
	if err != nil || rep.Outcome != RepairNoop {
		t.Fatalf("post-budget noop: %v %v", rep.Outcome, err)
	}
}

func TestRepairBestEffortBeyondBudget(t *testing.T) {
	n := 6
	p := planOn(t, n, Config{BestEffort: true})
	for i := 0; i <= faults.MaxTolerated(n); i++ {
		rep, err := p.Repair(p.RingAt(1))
		if err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
		if rep.Outcome == RepairNoop {
			t.Fatalf("fault %d: picked a known fault", i)
		}
	}
	if p.Result().Guaranteed {
		t.Fatal("beyond-budget plan still claims the guarantee")
	}
	verifyPlan(t, p) // minLen 0: healthiness only
}

func TestRepairVerifyRepairsFlag(t *testing.T) {
	p := planOn(t, 6, Config{VerifyRepairs: true})
	rep, err := p.Repair(interiorOf(t, p, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairSplice {
		t.Fatalf("outcome %v, want splice", rep.Outcome)
	}
}

func TestRepairSmallNRebuilds(t *testing.T) {
	p := planOn(t, 4, Config{})
	v := p.RingAt(3)
	if p.CanSplice(v) {
		t.Fatal("n=4 has no skeleton to splice")
	}
	rep, err := p.Repair(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairRebuild {
		t.Fatalf("outcome %v, want rebuild", rep.Outcome)
	}
	if p.RingLen() != perm.Factorial(4)-2 {
		t.Fatalf("ring %d after one fault in S_4", p.RingLen())
	}
	verifyPlan(t, p)
}

func TestPlanRingIsDefensiveCopy(t *testing.T) {
	p := planOn(t, 5, Config{})
	ring := p.Ring()
	ring[0], ring[1] = ring[1], ring[0]
	if p.RingAt(0) == ring[0] && p.RingAt(1) == ring[1] {
		t.Fatal("mutating Ring()'s result reached the plan")
	}
	verifyPlan(t, p)
}

// TestRepairEquivalence is the acceptance criterion: over randomized
// fault campaigns, Repair-maintained rings satisfy exactly the bounds a
// cold embedding of the same fault set does — full check.Ring health
// with minLen = n! - 2|Fv| — and the splice fast path is actually
// exercised.
func TestRepairEquivalence(t *testing.T) {
	ns := []int{6, 7}
	if !testing.Short() {
		ns = append(ns, 8)
	}
	for _, n := range ns {
		splices := 0
		for seed := int64(0); seed < 3; seed++ {
			e, err := NewEmbedder(n, Config{})
			if err != nil {
				t.Fatal(err)
			}
			p, err := e.Embed(nil)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < faults.MaxTolerated(n); i++ {
				v := p.RingAt(rng.Intn(p.RingLen()))
				rep, err := p.Repair(v)
				if err != nil {
					t.Fatalf("n=%d seed=%d fault=%d: %v", n, seed, i, err)
				}
				if rep.Outcome == RepairSplice {
					splices++
				}
				res := p.Result()
				if !res.Guaranteed {
					t.Fatalf("n=%d: guarantee lost within budget", n)
				}
				if err := check.Ring(star.New(n), res.Ring, p.fs, res.Guarantee); err != nil {
					t.Fatalf("n=%d seed=%d after fault %d (%v): %v", n, seed, i, rep.Outcome, err)
				}
				cold, err := Embed(n, p.fs, Config{})
				if err != nil {
					t.Fatalf("n=%d seed=%d: cold embed: %v", n, seed, err)
				}
				if cold.Guarantee != res.Guarantee {
					t.Fatalf("guarantee diverged: repair %d, cold %d", res.Guarantee, cold.Guarantee)
				}
				if res.Len() < res.Guarantee || cold.Len() < cold.Guarantee {
					t.Fatalf("length under guarantee: repair %d, cold %d, bound %d",
						res.Len(), cold.Len(), res.Guarantee)
				}
			}
		}
		if splices == 0 {
			t.Errorf("n=%d: campaigns never exercised the splice fast path", n)
		}
	}
}
