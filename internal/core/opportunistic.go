package core

import (
	"repro/internal/faults"
	"repro/internal/superring"
)

// Opportunistic upgrades (an extension beyond the paper).
//
// Theorem 1 always pays 2 vertices per fault, which is optimal only in
// the worst case (all faults in one partite set). When faults split
// across the bipartition the ceiling n! - 2*max(f0, f1) is higher, and
// a faulty block can contribute 23 vertices instead of 22: the block
// loses only the fault itself, by entering and exiting on the fault's
// opposite side (such a 23-vertex path exists for EVERY same-side
// endpoint pair — verified exhaustively in internal/pathsearch).
//
// The obstruction is global parity. Walking the ring, the entry-side
// parity state flips exactly at upgraded (odd-length) blocks, and an
// upgraded block with fault parity p requires the incoming state to be
// 1-p. Consecutive upgraded blocks must therefore carry alternating
// fault parities around the cycle, so the number of upgrades equals the
// number of maximal runs of equal fault parity among the faulty blocks
// in ring order (an even number; zero when all faults share one side).
//
// planUpgrades selects one block per run and returns the upgrade set
// plus the forced exit-side parity for every block (nil when no upgrade
// is possible, leaving the router parity-unconstrained as in the plain
// algorithm).
func planUpgrades(r4 *superring.Ring, fs *faults.Set) (upgraded []bool, exitParity []int) {
	m := r4.Len()
	n := r4.N()
	upgraded = make([]bool, m)

	// Fault parity per faulty block (blocks hold at most one vertex
	// fault under (P1); opportunistic mode is skipped otherwise).
	type fb struct {
		idx    int
		parity int
	}
	var faulty []fb
	for k := 0; k < m; k++ {
		fv := fs.FaultyIn(r4.At(k), nil)
		if len(fv) == 1 {
			faulty = append(faulty, fb{idx: k, parity: fv[0].Parity(n)})
		} else if len(fv) > 1 {
			return upgraded, nil // outside (P1); no upgrades
		}
	}
	if len(faulty) < 2 {
		return upgraded, nil
	}

	// One upgrade per maximal cyclic run of equal parity: select the
	// first member of each run. If every fault shares one parity there
	// is a single run and no alternation is possible.
	runs := 0
	for i, f := range faulty {
		prev := faulty[(i-1+len(faulty))%len(faulty)]
		if f.parity != prev.parity {
			runs++
			upgraded[f.idx] = true
		}
	}
	if runs == 0 {
		return make([]bool, m), nil
	}
	// runs is even for a cyclic binary sequence with both symbols
	// present, so the alternation closes.

	// Propagate the entry-side parity state around the ring. The state
	// is pinned by any upgraded block: entering block k (upgraded,
	// fault parity p) the state must be 1-p; it flips after the block.
	exitParity = make([]int, m)
	entry := -1
	// Find an anchor upgrade to pin the state.
	anchor := -1
	anchorParity := 0
	for _, f := range faulty {
		if upgraded[f.idx] {
			anchor = f.idx
			anchorParity = f.parity
			break
		}
	}
	entry = 1 - anchorParity
	for off := 0; off < m; off++ {
		k := (anchor + off) % m
		if upgraded[k] {
			// Odd block: exit side equals entry side.
			exitParity[k] = entry
		} else {
			exitParity[k] = 1 - entry
		}
		// The junction flips the side again for the next entry.
		entry = 1 - exitParity[k]
	}
	return upgraded, exitParity
}

// opportunisticTargets returns the per-block target policy for the
// upgraded routing: 24 for healthy blocks, 23 for upgraded faulty
// blocks, 22 otherwise.
func opportunisticTargets(upgraded []bool) func(blockIdx, vf int) []int {
	return func(blockIdx, vf int) []int {
		if vf == 0 {
			return []int{blockOrder}
		}
		if upgraded[blockIdx] {
			return []int{blockOrder - 1}
		}
		return []int{blockOrder - 2*vf}
	}
}
