package core

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pathsearch"
)

// instr is the resolved instrumentation handle of one embedding run:
// every metric looked up once, so the hot paths touch only atomics. A
// nil *instr is the disabled state — each method is a nil test and a
// return, keeping the block-routing loop allocation-free (certified by
// TestObsDisabledAllocs and BenchmarkObsDisabled).
type instr struct {
	reg *obs.Registry
	op  *obs.Op // the run's operation context; set by bind, never nil there

	backtracks *obs.Counter
	blocks     *obs.Counter
	workerBusy *obs.Histogram
	workers    *obs.Gauge
	utilPct    *obs.Gauge

	// Labeled families: per-n degradation curves come out of snapshots
	// as labeled series instead of one aggregate (ISSUE 9). nLabel is
	// the run's star-graph dimension, rendered once.
	nLabel  string
	embeds  *obs.CounterVec // core.embed.completed{n,mode}
	repairs *obs.CounterVec // core.repair.outcome{n,outcome}

	hits0, misses0, bypasses0 int64
}

// newInstr resolves the registry's core metrics for one run on S_n;
// nil in, nil out.
func newInstr(r *obs.Registry, n int) *instr {
	if r == nil {
		return nil
	}
	in := &instr{
		reg:        r,
		backtracks: r.Counter("core.junction.backtracks"),
		blocks:     r.Counter("core.route.blocks"),
		workerBusy: r.Histogram("core.route.worker_busy"),
		workers:    r.Gauge("core.route.workers"),
		utilPct:    r.Gauge("core.route.utilization_pct"),
		nLabel:     strconv.Itoa(n),
		embeds:     r.CounterVec("core.embed.completed", "n", "mode"),
		repairs:    r.CounterVec("core.repair.outcome", "n", "outcome"),
	}
	// Materialize the cache counters up front so every snapshot carries
	// them, then baseline against the process-global canonical cache.
	r.Counter("core.s4.cache_hits")
	r.Counter("core.s4.cache_misses")
	r.Counter("core.s4.cache_bypasses")
	in.hits0, in.misses0, in.bypasses0 = pathsearch.Canon.CacheStats()
	return in
}

// bind attaches the run's operation context. Every phase span opened
// through in.span afterwards is a child of the operation's root, and
// event-log records carry its trace id.
func (in *instr) bind(op *obs.Op) {
	if in == nil {
		return
	}
	in.op = op
}

// span opens a phase span ("core.phase.*") under the bound operation;
// zero Span when disabled.
func (in *instr) span(name string) obs.Span {
	if in == nil {
		return obs.Span{}
	}
	if in.op != nil {
		return in.op.Span(name)
	}
	return in.reg.Span(name)
}

// fail ends a failed operation. Owned ops (created by this layer) end
// through Op.Fail, which closes the root span and fires the flight
// recorder; caller-owned ops only get the error noted — the owner
// decides when the root span closes.
func (in *instr) fail(op *obs.Op, owned bool, source string, err error) {
	if in == nil {
		return
	}
	if owned {
		op.Fail(source, err)
		return
	}
	in.reg.Flight().NoteError(op.Trace(), op.SpanID(), source, err)
}

// done ends a successful owned operation; caller-owned ops pass through.
func (in *instr) done(op *obs.Op, owned bool) {
	if in != nil && owned {
		op.Done()
	}
}

// finish folds the S4 cache activity of this run into the registry.
// The canonical cache is shared by every embedding in the process, so
// deltas against the baseline taken at newInstr are recorded, not
// absolutes.
func (in *instr) finish() {
	if in == nil {
		return
	}
	h, m, b := pathsearch.Canon.CacheStats()
	in.reg.Counter("core.s4.cache_hits").Add(h - in.hits0)
	in.reg.Counter("core.s4.cache_misses").Add(m - in.misses0)
	in.reg.Counter("core.s4.cache_bypasses").Add(b - in.bypasses0)
	in.hits0, in.misses0, in.bypasses0 = h, m, b
}

// eventLog returns the registry's structured event log, nil when
// disabled. Call sites guard on the result before building fields so
// the disabled path constructs nothing.
func (in *instr) eventLog() *obs.EventLog {
	if in == nil {
		return nil
	}
	return in.reg.EventLog()
}

// repair bumps one of the repair-outcome counters
// (core.repair.{splices,rebuilds,avoided}) plus the labeled
// core.repair.outcome family, which breaks the same tally down by
// dimension n for fleet dashboards. Resolved lazily: repairs are rare
// next to block routing, and plain embedding runs then never
// materialize the repair counters in their snapshots.
func (in *instr) repair(outcome string) {
	if in == nil {
		return
	}
	in.reg.Counter("core.repair." + outcome).Inc()
	in.repairs.With("n", in.nLabel, "outcome", outcome).Inc()
}

// embedCompleted counts one successful embedding in the labeled
// core.embed.completed family, split by dimension and by whether the
// run stayed within the paper's fault budget (mode=guaranteed) or
// degraded best-effort past it.
func (in *instr) embedCompleted(guaranteed bool) {
	if in == nil {
		return
	}
	mode := "guaranteed"
	if !guaranteed {
		mode = "besteffort"
	}
	in.embeds.With("n", in.nLabel, "mode", mode).Inc()
}

// junctionBacktrack and blockRouted sit inside the routing loop, so
// both the disabled (nil receiver) and enabled (atomic add) paths must
// stay allocation-free; hotalloc enforces it.
//
//starlint:hotpath
func (in *instr) junctionBacktrack() {
	if in == nil {
		return
	}
	in.backtracks.Inc()
}

//starlint:hotpath
func (in *instr) blockRouted() {
	if in == nil {
		return
	}
	in.blocks.Inc()
}

// now reads the registry clock; the zero time when disabled.
func (in *instr) now() time.Time {
	if in == nil {
		return time.Time{}
	}
	return in.reg.Clock().Now()
}

// workerDone records one routing worker's busy time and accumulates it
// into the shared total for the utilization gauge.
func (in *instr) workerDone(start time.Time, busyNS *int64) {
	if in == nil {
		return
	}
	busy := obs.Since(in.reg.Clock(), start)
	in.workerBusy.Observe(busy)
	atomic.AddInt64(busyNS, int64(busy))
}

// routeDone publishes the pool size and its utilization: total worker
// busy time over workers x wall time, in percent.
func (in *instr) routeDone(workers int, busyNS int64, wall time.Duration) {
	if in == nil {
		return
	}
	in.workers.Set(int64(workers))
	if wall > 0 && workers > 0 {
		pct := 100 * busyNS / (int64(workers) * int64(wall))
		if pct > 100 {
			pct = 100
		}
		in.utilPct.Set(pct)
	}
}
