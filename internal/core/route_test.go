package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
	"repro/internal/substar"
)

// TestRouteR4NoHealthyCrossing constructs a fault set that poisons
// every crossing edge of one superedge; RouteR4 must fail loudly, not
// emit an invalid ring. (Such sets exceed the paper's budget — the
// router is exercised directly.)
func TestRouteR4NoHealthyCrossing(t *testing.T) {
	n := 6
	fs := faults.NewSet(n)
	positions := []int{2, 3}
	r4, err := BuildR4(n, fs, BuildSpec{Positions: positions})
	if err != nil {
		t.Fatal(err)
	}
	// Poison superedge 0 -> 1: all 6 crossing endpoints on the 0 side.
	us, _ := r4.At(0).CrossEdges(r4.At(1), nil, nil)
	if len(us) != 6 {
		t.Fatalf("expected 6 crossing edges, got %d", len(us))
	}
	for _, u := range us {
		if err := fs.AddVertex(u); err != nil {
			t.Fatal(err)
		}
	}
	_, err = RouteR4(r4, fs, paperTargets(true), Config{})
	if err == nil {
		t.Fatal("poisoned superedge routed")
	}
	if !strings.Contains(err.Error(), "no healthy crossing edge") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRouteR4FaultyEdgeCrossing: a faulty crossing EDGE removes exactly
// that junction candidate; the route succeeds on another.
func TestRouteR4FaultyEdgeCrossing(t *testing.T) {
	n := 6
	fs := faults.NewSet(n)
	positions := []int{2, 3}
	r4, err := BuildR4(n, fs, BuildSpec{Positions: positions})
	if err != nil {
		t.Fatal(err)
	}
	us, ws := r4.At(0).CrossEdges(r4.At(1), nil, nil)
	if err := fs.AddEdge(us[0], ws[0]); err != nil {
		t.Fatal(err)
	}
	ring, err := RouteR4(r4, fs, paperTargets(false), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ring) != perm.Factorial(n) {
		t.Fatalf("ring %d with one edge fault", len(ring))
	}
	for i, v := range ring {
		w := ring[(i+1)%len(ring)]
		if fs.HasEdge(v, w) {
			t.Fatal("ring used the faulty edge")
		}
	}
}

// TestRouteR4ParityFilter drives routeR4x with an explicit exit-parity
// plan and confirms every junction honors it.
func TestRouteR4ParityFilter(t *testing.T) {
	n := 6
	g := star.New(n)
	fs := faults.NewSet(n)
	r4, err := BuildR4(n, fs, BuildSpec{Positions: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// All-even-length blocks with a consistent alternating parity plan.
	exitParity := make([]int, r4.Len())
	p := 0
	for k := range exitParity {
		exitParity[k] = p // entry parity of k+1 is 1-p; even blocks keep entry==... rotate naturally
	}
	// Derive a consistent plan: pick exits all parity 0; then entries
	// are parity 1, and 24-vertex blocks connect parity-1 entries to
	// parity-0 exits — consistent.
	rt, err := routeR4x(r4, fs, func(_, vf int) []int { return []int{blockOrder - 2*vf} }, exitParity, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ring, _, err := assemble(rt.plans, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ring) != perm.Factorial(n) {
		t.Fatalf("ring %d", len(ring))
	}
	// Check the plan: the last vertex of each block segment must have
	// the planned parity. Blocks are 24 long here.
	for k := 0; k < r4.Len(); k++ {
		exit := ring[(k+1)*blockOrder-1]
		if g.PartiteSet(exit) != exitParity[k] {
			t.Fatalf("block %d exits with parity %d, plan %d", k, g.PartiteSet(exit), exitParity[k])
		}
	}
}

// TestRouteChainGapPoisoning mirrors the crossing test for chains.
func TestRouteChainGapPoisoning(t *testing.T) {
	n := 6
	fs := faults.NewSet(n)
	s := perm.IdentityCode(n)
	tt := perm.Pack(perm.MustParse("654321"))
	positions, _, err := fs.SeparatingPositionsSplitting(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := buildChain(n, positions, fs, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := chain.At(0).CrossEdges(chain.At(1), nil, nil)
	for _, u := range us {
		if u == s {
			continue // the source must stay healthy
		}
		fs.AddVertex(u)
	}
	_, err = routeChain(chain, fs, s, tt, Config{})
	if err == nil {
		t.Fatal("poisoned chain gap routed")
	}
}

// TestMetamorphicAutomorphism: relabeling the whole instance by a star
// automorphism must preserve embeddability and the achieved length —
// the symmetry the paper's "without loss of generality" steps rely on.
func TestMetamorphicAutomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 6
	for trial := 0; trial < 10; trial++ {
		fs := faults.RandomVertices(n, 3, rng)
		base, err := Embed(n, fs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Random symbol relabeling (vertex-transitive family).
		sigma := perm.Unrank(n, rng.Intn(perm.Factorial(n)))
		a := star.Automorphism{Sigma: sigma, Tau: perm.Identity(n)}
		mapped := faults.NewSet(n)
		for _, v := range fs.Vertices() {
			if err := mapped.AddVertex(a.Apply(v)); err != nil {
				t.Fatal(err)
			}
		}
		img, err := Embed(n, mapped, Config{})
		if err != nil {
			t.Fatalf("trial %d: image instance failed: %v", trial, err)
		}
		if img.Len() != base.Len() {
			t.Fatalf("trial %d: automorphic image length %d != %d", trial, img.Len(), base.Len())
		}
		// The base ring mapped through the automorphism is a valid ring
		// for the image instance.
		mappedRing := make([]perm.Code, len(base.Ring))
		for i, v := range base.Ring {
			mappedRing[i] = a.Apply(v)
		}
		g := star.New(n)
		for i, v := range mappedRing {
			w := mappedRing[(i+1)%len(mappedRing)]
			if !g.Adjacent(v, w) || mapped.HasVertex(v) {
				t.Fatalf("trial %d: mapped ring invalid at %d", trial, i)
			}
		}
	}
}

// TestWeightCountsIntraEdges pins weightOf's edge handling.
func TestWeightCountsIntraEdges(t *testing.T) {
	n := 5
	fs := faults.NewSet(n)
	u := perm.Pack(perm.MustParse("21345"))
	fs.AddVertex(u.SwapFirst(3))
	fs.AddEdge(u, u.SwapFirst(2))
	w := weightOf(fs)
	pat := substar.MustParse("***45")
	// Both the vertex fault and the edge (whose endpoints only permute
	// positions 1..3) are inside the pattern.
	if got := w(pat); got != 2 {
		t.Fatalf("weight = %d, want 2", got)
	}
	outside := substar.MustParse("***54")
	if got := w(outside); got != 0 {
		t.Fatalf("outside weight = %d", got)
	}
}

// TestOpportunisticWithSuperRing ensures planUpgrades degrades cleanly
// when (P1) is violated (best-effort style input).
func TestPlanUpgradesP1Violation(t *testing.T) {
	n := 6
	fs := faults.NewSet(n)
	// Two faults in the same block of the 2,3-partition: agree at 2, 3.
	fs.AddVertexString("125346")
	fs.AddVertexString("125364")
	r4, err := BuildR4(n, fs, BuildSpec{Positions: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	upgraded, exitParity := planUpgrades(r4, fs)
	if exitParity != nil {
		t.Fatal("upgrades planned despite (P1) violation")
	}
	for _, u := range upgraded {
		if u {
			t.Fatal("block marked upgraded despite (P1) violation")
		}
	}
}

// TestSuperRingReuseAcrossRouters: one R4 serves both the plain and the
// opportunistic router without mutation.
func TestSuperRingReuseAcrossRouters(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n := 6
	fs := faults.NewSet(n)
	for fs.NumVertices() < 2 {
		v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
		if v.Parity(n) == fs.NumVertices()%2 { // one fault per side
			fs.AddVertex(v)
		}
	}
	positions, _ := fs.SeparatingPositions()
	r4, err := BuildR4(n, fs, BuildSpec{
		Positions: positions, SpreadFaults: true, HealthyBorders: true,
		VerifyP1: true, VerifyP2: true, VerifyP3: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]substar.Pattern{}, r4.Vertices()...)

	plain, err := RouteR4(r4, fs, paperTargets(false), Config{})
	if err != nil {
		t.Fatal(err)
	}
	upgraded, exitParity := planUpgrades(r4, fs)
	if exitParity == nil {
		t.Fatal("balanced faults produced no upgrade plan")
	}
	opp, err := routeR4x(r4, fs, opportunisticTargets(upgraded), exitParity, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if opp.ringLen() <= len(plain) {
		t.Fatalf("opportunistic %d <= plain %d", opp.ringLen(), len(plain))
	}
	for i, p := range r4.Vertices() {
		if p != snapshot[i] {
			t.Fatal("router mutated the super-ring")
		}
	}
}
