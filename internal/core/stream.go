package core

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pathsearch"
	"repro/internal/perm"
)

// ErrStaleCursor reports a RingCursor outliving a ring mutation: a
// Repair (splice or rebuild) advanced the plan's generation after the
// cursor was opened, so continuing would emit a cycle that no longer
// exists. Open a fresh cursor to stream the post-repair ring.
var ErrStaleCursor = errors.New("core: ring cursor invalidated by a plan mutation")

// RingCursor emits the plan's ring one vertex at a time in cycle
// order. On a streaming plan it is the only full view of the ring:
// block segments are re-derived from the skeleton on demand — the
// junction assignment pins every block's (entry, exit, avoid, length)
// tuple and the memoized canonical-S4 search replays each path
// deterministically — so the cursor's live state is one <= 24-vertex
// buffer regardless of ring length. On a materialized plan it walks
// the stored ring, which keeps Plan.Ring and every consumer mode-
// agnostic.
//
// The cursor is a snapshot of one generation of the ring: Repair
// invalidates it (Next returns false and Err reports ErrStaleCursor at
// the next block boundary). Not safe for concurrent use; open one
// cursor per goroutine instead — they share the process-wide S4 memo
// cache, so replays stay cheap.
type RingCursor struct {
	p   *Plan
	gen int

	seg []perm.Code // current segment; emitted up to position i
	i   int
	k   int         // next block to re-derive (streaming mode)
	buf []perm.Code // reusable replay buffer (streaming mode)

	err  error
	done bool
	span obs.Span
}

// Cursor opens a ring iterator positioned at the start of the cycle
// (the first vertex of block 0's segment, which equals Ring()[0]). The
// traversal is spanned as core.phase.stream_emit from open to
// exhaustion when the embedder's registry is attached.
func (p *Plan) Cursor() *RingCursor {
	c := &RingCursor{p: p, gen: p.gen, span: newInstr(p.e.cfg.Obs, p.e.n).span("core.phase.stream_emit")}
	if p.res.Ring != nil {
		c.seg = p.res.Ring
	} else {
		c.buf = make([]perm.Code, 0, blockOrder)
	}
	return c
}

// Next returns the next ring vertex, or ok=false when the cycle has
// been fully emitted (or the cursor failed — check Err). The in-buffer
// step is the allocation-free hot path (see .starlint); the per-block
// refill re-derives one segment through the memo cache.
func (c *RingCursor) Next() (perm.Code, bool) {
	if c.i < len(c.seg) {
		return c.nextFast(), true
	}
	return c.refill()
}

// nextFast is the per-vertex emit step: a bounds-checked read out of
// the current segment buffer. It sits inside every streaming consumer's
// innermost loop (3.6M iterations at n = 10), so it must stay
// allocation-free; the .starlint hotpath entry has hotalloc enforce
// that against refactors.
func (c *RingCursor) nextFast() perm.Code {
	v := c.seg[c.i]
	c.i++
	return v
}

// refill advances to the next block segment (the cold path, hit once
// per <= 24 vertices). It is also where exhaustion, staleness and
// replay failure are decided.
func (c *RingCursor) refill() (perm.Code, bool) {
	var zero perm.Code
	if c.done || c.err != nil {
		return zero, false
	}
	p := c.p
	if c.gen != p.gen {
		c.fail(ErrStaleCursor)
		return zero, false
	}
	if p.res.Ring != nil || c.k >= len(p.blocks) {
		// Materialized rings are a single segment; streaming rings end
		// after the last block.
		c.finish()
		return zero, false
	}
	pb := p.blocks[c.k]
	seg, ok := pb.block.PathAppend(c.buf[:0], pathsearch.PathSpec{
		From: pb.entry, To: pb.exit,
		AvoidV: pb.avoidV, AvoidE: pb.avoidE,
		Target: pb.length,
	})
	if !ok {
		c.fail(fmt.Errorf("core: block %d path vanished on streaming replay", c.k))
		return zero, false
	}
	if r := p.e.cfg.Obs; r != nil {
		// Lazy like the repair counters: materialized-only runs never
		// carry the streaming metrics in their snapshots.
		r.Counter("core.stream.blocks").Inc()
	}
	c.buf, c.seg, c.i = seg, seg, 0
	c.k++
	return c.nextFast(), true
}

func (c *RingCursor) fail(err error) {
	c.err = err
	c.finish()
}

func (c *RingCursor) finish() {
	if !c.done {
		c.done = true
		c.span.End()
	}
}

// Err returns the terminal error, if any: ErrStaleCursor after a
// Repair, or an internal replay failure. A fully drained cursor on an
// untouched plan always reports nil.
func (c *RingCursor) Err() error { return c.err }
