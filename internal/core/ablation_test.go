package core

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/substar"
)

// Ablation: Lemma 2's greedy separating positions vs naive fixed
// positions (2, 3, ..., n-3). With clustered faults the naive choice
// leaves one block holding every fault, breaking (P1): the router must
// fall back to degraded multi-fault block paths whose existence is no
// longer covered by Lemma 4, so the n!-2|Fv| GUARANTEE is lost even
// when the measured length happens to survive. The benchmarks report
// both the achieved length and the number of (P1) violations (faulty
// blocks holding >= 2 faults) under each policy.

// clusteredSet builds a fault set that the naive positions (2..n-3)
// cannot separate: every fault holds the identity symbols at those
// positions and the faults differ only among the remaining positions,
// so all of them land in a single naive block. The greedy of Lemma 2
// separates them by choosing positions where they differ.
func clusteredSet(b testing.TB, n int) *faults.Set {
	fs := faults.NewSet(n)
	k := faults.MaxTolerated(n)
	// Free positions under the naive split: 1 and n-3+1 .. n. Rotate the
	// symbols {1, n-2, n-1, n} through position 1.
	base := make([]uint8, n)
	for i := range base {
		base[i] = uint8(i + 1)
	}
	swapWith := []int{0, n - 3, n - 2, n - 1} // 0-based positions outside 2..n-3
	for j := 0; j < k && j < len(swapWith); j++ {
		v := append([]uint8{}, base...)
		p := swapWith[j]
		v[0], v[p] = v[p], v[0]
		pp, err := perm.New(v)
		if err != nil {
			b.Fatal(err)
		}
		if err := fs.AddVertex(perm.Pack(pp)); err != nil {
			b.Fatal(err)
		}
	}
	return fs
}

func naivePositions(n int) []int {
	ps := make([]int, 0, n-4)
	for i := 2; len(ps) < n-4; i++ {
		ps = append(ps, i)
	}
	return ps
}

func embedWithPositions(b testing.TB, n int, fs *faults.Set, positions []int) int {
	spec := BuildSpec{Positions: positions}
	r4, err := BuildR4(n, fs, spec)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := routeR4x(r4, fs, func(_, vf int) []int {
		var ts []int
		for t := blockOrder - 2*vf; t >= 2; t -= 2 {
			ts = append(ts, t)
		}
		return ts
	}, nil, Config{}, nil)
	if err != nil {
		return 0 // routing can fail outright without (P1)
	}
	return rt.ringLen()
}

func p1Violations(n int, fs *faults.Set, positions []int) int {
	v := 0
	for _, blk := range substar.Whole(n).PartitionSeq(positions) {
		if fs.CountIn(blk) > 1 {
			v++
		}
	}
	return v
}

func BenchmarkAblationSeparationGreedy(b *testing.B) {
	n := 7
	fs := clusteredSet(b, n)
	positions, _ := fs.SeparatingPositions()
	var l int
	for i := 0; i < b.N; i++ {
		l = embedWithPositions(b, n, fs, positions)
	}
	b.ReportMetric(float64(l), "ringlen")
	b.ReportMetric(float64(p1Violations(n, fs, positions)), "p1viol")
}

func BenchmarkAblationSeparationNaive(b *testing.B) {
	n := 7
	fs := clusteredSet(b, n)
	positions := naivePositions(n)
	var l int
	for i := 0; i < b.N; i++ {
		l = embedWithPositions(b, n, fs, positions)
	}
	b.ReportMetric(float64(l), "ringlen")
	b.ReportMetric(float64(p1Violations(n, fs, positions)), "p1viol")
}

// TestAblationGreedyNeverWorse pins the ablation's direction across
// seeds: greedy separation yields rings at least as long as the naive
// positions on clustered fault sets, and always meets the paper bound.
func TestAblationGreedyNeverWorse(t *testing.T) {
	n := 7
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs, _, err := faults.ClusteredVertices(n, 4, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		positions, separated := fs.SeparatingPositions()
		if !separated {
			t.Fatal("greedy failed to separate")
		}
		greedy := embedWithPositions(t, n, fs, positions)
		naive := embedWithPositions(t, n, fs, naivePositions(n))
		if greedy < 5040-2*4 {
			t.Fatalf("greedy ring %d under the bound", greedy)
		}
		if naive > greedy {
			t.Fatalf("naive positions beat greedy: %d > %d", naive, greedy)
		}
		// Sanity: the naive split really does violate (P1) here — if it
		// doesn't for this seed, the comparison is vacuous but harmless.
		violations := 0
		for _, blk := range substar.Whole(n).PartitionSeq(naivePositions(n)) {
			if fs.CountIn(blk) > 1 {
				violations++
			}
		}
		if violations == 0 && naive != greedy {
			t.Logf("seed %d: naive happened to separate; lengths %d vs %d", seed, naive, greedy)
		}
	}
}
