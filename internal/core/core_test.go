package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

func TestEmbedValidation(t *testing.T) {
	if _, err := Embed(2, nil, Config{}); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := Embed(17, nil, Config{}); err == nil {
		t.Error("n=17 accepted")
	}
	fs := faults.NewSet(5)
	if _, err := Embed(6, fs, Config{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestEmbedBudgetEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	fs := faults.RandomVertices(6, 4, rng) // budget is 3
	_, err := Embed(6, fs, Config{})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	// Best effort proceeds and the result is verified but unguaranteed.
	res, err := Embed(6, fs, Config{BestEffort: true})
	if err != nil {
		t.Fatalf("best effort failed: %v", err)
	}
	if res.Guaranteed {
		t.Fatal("over-budget result claims a guarantee")
	}
	if err := check.Ring(star.New(6), res.Ring, fs, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedS3(t *testing.T) {
	res, err := Embed(3, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 {
		t.Fatalf("S_3 ring length %d", res.Len())
	}
	fs := faults.NewSet(3)
	fs.AddVertexString("213")
	if _, err := Embed(3, fs, Config{BestEffort: true}); !errors.Is(err, ErrNoRing) {
		t.Fatalf("faulty S_3: want ErrNoRing, got %v", err)
	}
}

// TestEmbedS4Exhaustive covers the n = 4 base case of Theorem 1 for
// every possible fault: ring of exactly 22 = 4! - 2.
func TestEmbedS4Exhaustive(t *testing.T) {
	g := star.New(4)
	for r := 0; r < 24; r++ {
		fs := faults.NewSet(4)
		fs.AddVertex(perm.Pack(perm.Unrank(4, r)))
		res, err := Embed(4, fs, Config{})
		if err != nil {
			t.Fatalf("fault %d: %v", r, err)
		}
		if res.Len() != 22 {
			t.Fatalf("fault %d: length %d", r, res.Len())
		}
		if err := check.Ring(g, res.Ring, fs, 22); err != nil {
			t.Fatalf("fault %d: %v", r, err)
		}
	}
}

// TestEmbedS4EdgeFaultExhaustive: every single edge fault leaves S4
// Hamiltonian (the |Fe| <= n-3 = 1 companion result).
func TestEmbedS4EdgeFaultExhaustive(t *testing.T) {
	g := star.New(4)
	g.Vertices(func(u perm.Code) bool {
		g.VisitNeighbors(u, func(w perm.Code, _ int) bool {
			if w < u {
				return true
			}
			fs := faults.NewSet(4)
			fs.AddEdge(u, w)
			res, err := Embed(4, fs, Config{})
			if err != nil {
				t.Fatalf("edge %s-%s: %v", u.StringN(4), w.StringN(4), err)
			}
			if res.Len() != 24 {
				t.Fatalf("edge %s-%s: length %d", u.StringN(4), w.StringN(4), res.Len())
			}
			if err := check.Ring(g, res.Ring, fs, 24); err != nil {
				t.Fatal(err)
			}
			return true
		})
		return true
	})
}

// TestEmbedS5ExhaustiveSingles: every single-fault position in S_5
// yields a verified ring of exactly 118.
func TestEmbedS5ExhaustiveSingles(t *testing.T) {
	g := star.New(5)
	for r := 0; r < 120; r++ {
		fs := faults.NewSet(5)
		fs.AddVertex(perm.Pack(perm.Unrank(5, r)))
		res, err := Embed(5, fs, Config{})
		if err != nil {
			t.Fatalf("fault %d: %v", r, err)
		}
		if res.Len() < 118 {
			t.Fatalf("fault %d: length %d", r, res.Len())
		}
		if err := check.Ring(g, res.Ring, fs, 118); err != nil {
			t.Fatalf("fault %d: %v", r, err)
		}
	}
}

// TestEmbedS5ExhaustivePairs sweeps all C(120,2) = 7140 fault pairs in
// S_5, the full budget: the strongest exhaustive witness of Theorem 1
// this suite affords.
func TestEmbedS5ExhaustivePairs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive pair sweep")
	}
	for a := 0; a < 120; a++ {
		va := perm.Pack(perm.Unrank(5, a))
		for b := a + 1; b < 120; b++ {
			fs := faults.NewSet(5)
			fs.AddVertex(va)
			fs.AddVertex(perm.Pack(perm.Unrank(5, b)))
			res, err := Embed(5, fs, Config{})
			if err != nil {
				t.Fatalf("faults (%d,%d): %v", a, b, err)
			}
			if res.Len() < 116 {
				t.Fatalf("faults (%d,%d): length %d", a, b, res.Len())
			}
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	fs := faults.RandomVertices(7, 4, rng)
	a, err := Embed(7, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(7, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ring) != len(b.Ring) {
		t.Fatal("non-deterministic length")
	}
	for i := range a.Ring {
		if a.Ring[i] != b.Ring[i] {
			t.Fatalf("rings diverge at %d", i)
		}
	}
}

func TestEmbedWorkersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	fs := faults.RandomVertices(7, 4, rng)
	a, err := Embed(7, fs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(7, fs, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ring {
		if a.Ring[i] != b.Ring[i] {
			t.Fatalf("worker counts disagree at %d", i)
		}
	}
}

func TestEmbedFaultFreeIsHamiltonian(t *testing.T) {
	for n := 3; n <= 8; n++ {
		res, err := Embed(n, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != perm.Factorial(n) {
			t.Fatalf("S_%d: length %d", n, res.Len())
		}
	}
}

func TestEmbedResultMetadata(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	fs := faults.RandomVertices(7, 3, rng)
	res, err := Embed(7, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 7 || res.VertexFaults != 3 || res.EdgeFaults != 0 {
		t.Fatal("metadata wrong")
	}
	if res.Blocks != perm.Factorial(7)/24 {
		t.Fatalf("blocks %d", res.Blocks)
	}
	if res.FaultyBlocks < 1 || res.FaultyBlocks > 3 {
		t.Fatalf("faulty blocks %d", res.FaultyBlocks)
	}
	if len(res.Positions) != 3 {
		t.Fatalf("positions %v", res.Positions)
	}
	if !res.Guaranteed || res.Guarantee != 5040-6 {
		t.Fatal("guarantee wrong")
	}
}

// TestWorstCaseMatchesCeiling: same-partite faults make the algorithm
// provably optimal; confirm equality achieved across dimensions.
func TestWorstCaseMatchesCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 5; n <= 8; n++ {
		for parity := 0; parity <= 1; parity++ {
			fs := faults.SamePartiteVertices(n, faults.MaxTolerated(n), parity, rng)
			res, err := Embed(n, fs, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != res.UpperBound {
				t.Fatalf("S_%d parity %d: len %d != ceiling %d", n, parity, res.Len(), res.UpperBound)
			}
		}
	}
}

// TestBuildSpecValidation exercises the exported plumbing directly.
func TestBuildSpecValidation(t *testing.T) {
	fs := faults.NewSet(6)
	if _, err := BuildR4(6, fs, BuildSpec{Positions: []int{2}}); err == nil {
		t.Fatal("wrong position count accepted")
	}
	r4, err := BuildR4(6, fs, BuildSpec{Positions: []int{2, 3}, VerifyP1: true, VerifyP2: true, VerifyP3: true})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Len() != 30 || r4.Order() != 4 {
		t.Fatalf("R4: len=%d order=%d", r4.Len(), r4.Order())
	}
}

// TestEmbedS6ExhaustiveSingles: every single-fault position in S_6
// yields a verified ring of at least 718.
func TestEmbedS6ExhaustiveSingles(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	for r := 0; r < 720; r++ {
		fs := faults.NewSet(6)
		fs.AddVertex(perm.Pack(perm.Unrank(6, r)))
		res, err := Embed(6, fs, Config{})
		if err != nil {
			t.Fatalf("fault %d: %v", r, err)
		}
		if res.Len() < 718 {
			t.Fatalf("fault %d: length %d", r, res.Len())
		}
	}
}
