package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

func randomHealthyPair(rng *rand.Rand, n int, fs *faults.Set) (perm.Code, perm.Code) {
	total := perm.Factorial(n)
	for {
		s := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		t := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		if s != t && !fs.HasVertex(s) && !fs.HasVertex(t) {
			return s, t
		}
	}
}

// TestEmbedPathGuarantees sweeps dimensions, fault counts and endpoint
// parities: every path must meet n!-2|Fv| (opposite sides) or
// n!-2|Fv|-1 (same side) and verify end to end.
func TestEmbedPathGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for n := 5; n <= 7; n++ {
		g := star.New(n)
		for k := 0; k <= faults.MaxTolerated(n); k++ {
			for trial := 0; trial < 8; trial++ {
				fs := faults.RandomVertices(n, k, rng)
				s, tt := randomHealthyPair(rng, n, fs)
				res, err := EmbedPath(n, fs, s, tt, Config{})
				if err != nil {
					t.Fatalf("n=%d k=%d trial=%d: %v", n, k, trial, err)
				}
				want := perm.Factorial(n) - 2*k
				if s.Parity(n) == tt.Parity(n) {
					want--
				}
				if res.Len() < want {
					t.Fatalf("n=%d k=%d: path %d < %d", n, k, res.Len(), want)
				}
				if res.Path[0] != s || res.Path[res.Len()-1] != tt {
					t.Fatal("endpoints wrong")
				}
				if err := check.Path(g, res.Path, fs); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestEmbedPathUpgradeSamesideFault: same-side endpoints with a fault
// on the opposite side let one block shed only its fault, beating the
// base guarantee by two (n!-2|Fv|+1 total).
func TestEmbedPathUpgrade(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 6
	hits := 0
	for trial := 0; trial < 20 && hits < 5; trial++ {
		fs := faults.RandomVertices(n, 2, rng)
		s, tt := randomHealthyPair(rng, n, fs)
		if s.Parity(n) != tt.Parity(n) {
			continue
		}
		oppositeFault := false
		for _, f := range fs.Vertices() {
			if f.Parity(n) != s.Parity(n) {
				oppositeFault = true
			}
		}
		if !oppositeFault {
			continue
		}
		res, err := EmbedPath(n, fs, s, tt, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() >= perm.Factorial(n)-2*2+1 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("upgrade never fired across 20 same-side instances")
	}
}

func TestEmbedPathSmallDimensions(t *testing.T) {
	// n = 3: longer arc of the hexagon.
	s := perm.IdentityCode(3)
	tt := s.SwapFirst(2)
	res, err := EmbedPath(3, nil, s, tt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 {
		t.Fatalf("S_3 adjacent pair: path %d, want 6", res.Len())
	}

	// n = 4 with one fault: exact block search.
	fs := faults.NewSet(4)
	fs.AddVertexString("4321")
	s4 := perm.IdentityCode(4)
	t4 := s4.SwapFirst(3)
	res4, err := EmbedPath(4, fs, s4, t4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Len() < 22 {
		t.Fatalf("S_4: path %d", res4.Len())
	}
}

func TestEmbedPathEndpointValidation(t *testing.T) {
	n := 5
	fs := faults.NewSet(n)
	fs.AddVertexString("21345")
	s := perm.IdentityCode(n)

	if _, err := EmbedPath(n, fs, s, s, Config{}); !errors.Is(err, ErrBadEndpoints) {
		t.Fatalf("s == t: %v", err)
	}
	faulty := perm.Pack(perm.MustParse("21345"))
	if _, err := EmbedPath(n, fs, s, faulty, Config{}); !errors.Is(err, ErrBadEndpoints) {
		t.Fatalf("faulty endpoint: %v", err)
	}
	if _, err := EmbedPath(n, fs, s, perm.None, Config{}); !errors.Is(err, ErrBadEndpoints) {
		t.Fatalf("invalid endpoint: %v", err)
	}
}

func TestEmbedPathMixedFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 6
	for trial := 0; trial < 10; trial++ {
		fs := faults.Mixed(n, 1, 2, rng)
		s, tt := randomHealthyPair(rng, n, fs)
		res, err := EmbedPath(n, fs, s, tt, Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := perm.Factorial(n) - 2
		if s.Parity(n) == tt.Parity(n) {
			want--
		}
		if res.Len() < want {
			t.Fatalf("trial %d: path %d < %d", trial, res.Len(), want)
		}
	}
}

// TestEmbedPathAdjacentEndpoints closes the loop with the ring result:
// a path between adjacent endpoints plus the closing edge is a ring, so
// its length must match Theorem 1's bound.
func TestEmbedPathAdjacentEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 6
	g := star.New(n)
	for trial := 0; trial < 5; trial++ {
		fs := faults.RandomVertices(n, 3, rng)
		var s, tt perm.Code
		for {
			s, _ = randomHealthyPair(rng, n, fs)
			tt = s.SwapFirst(2 + rng.Intn(n-1))
			if !fs.HasVertex(tt) {
				break
			}
		}
		res, err := EmbedPath(n, fs, s, tt, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() < perm.Factorial(n)-2*3 {
			t.Fatalf("adjacent endpoints: path %d", res.Len())
		}
		// Close it into a verified ring.
		if !g.Adjacent(s, tt) {
			t.Fatal("test setup broken")
		}
		if err := check.Ring(g, res.Path, fs, res.Len()); err != nil {
			t.Fatalf("closed path is not a ring: %v", err)
		}
	}
}

// TestEmbedPathExhaustiveS5Singles: every fault position and a spread
// of endpoint pairs in S_5.
func TestEmbedPathExhaustiveS5Singles(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	n := 5
	g := star.New(n)
	rng := rand.New(rand.NewSource(35))
	for r := 0; r < 120; r += 7 {
		fs := faults.NewSet(n)
		f := perm.Pack(perm.Unrank(n, r))
		fs.AddVertex(f)
		for trial := 0; trial < 6; trial++ {
			s, tt := randomHealthyPair(rng, n, fs)
			res, err := EmbedPath(n, fs, s, tt, Config{})
			if err != nil {
				t.Fatalf("fault %d, %s->%s: %v", r, s.StringN(n), tt.StringN(n), err)
			}
			want := 118
			if s.Parity(n) == tt.Parity(n) {
				want--
			}
			if res.Len() < want {
				t.Fatalf("fault %d: path %d < %d", r, res.Len(), want)
			}
			if err := check.Path(g, res.Path, fs); err != nil {
				t.Fatal(err)
			}
		}
	}
}
