package pathsearch

import (
	"math/bits"
	"testing"

	"repro/internal/perm"
)

func TestCanonStructure(t *testing.T) {
	var sides [2]int
	for i := 0; i < BlockOrder; i++ {
		if d := bits.OnesCount32(Canon.Adjacency(uint8(i))); d != 3 {
			t.Fatalf("vertex %d has degree %d", i, d)
		}
		if Canon.Adjacency(uint8(i))&(1<<uint(i)) != 0 {
			t.Fatalf("self loop at %d", i)
		}
		sides[Canon.Parity(uint8(i))]++
		// Symmetry.
		for a := Canon.Adjacency(uint8(i)); a != 0; a &= a - 1 {
			j := bits.TrailingZeros32(a)
			if Canon.Adjacency(uint8(j))&(1<<uint(i)) == 0 {
				t.Fatalf("asymmetric adjacency %d-%d", i, j)
			}
			if Canon.Parity(uint8(i)) == Canon.Parity(uint8(j)) {
				t.Fatalf("edge %d-%d inside a partite set", i, j)
			}
		}
	}
	if sides != [2]int{12, 12} {
		t.Fatalf("partite sizes %v", sides)
	}
	// Index/Code roundtrip.
	for i := 0; i < BlockOrder; i++ {
		if Canon.Index(Canon.Code(uint8(i))) != uint8(i) {
			t.Fatalf("index roundtrip failed at %d", i)
		}
	}
}

func TestHamiltonianCycle(t *testing.T) {
	cycle := Canon.HamiltonianCycle()
	if len(cycle) != BlockOrder {
		t.Fatalf("cycle length %d", len(cycle))
	}
	seen := map[uint8]bool{}
	for i, v := range cycle {
		if seen[v] {
			t.Fatalf("repeat at %d", i)
		}
		seen[v] = true
		w := cycle[(i+1)%len(cycle)]
		if Canon.Adjacency(v)&(1<<uint(w)) == 0 {
			t.Fatalf("hop %d-%d not an edge", v, w)
		}
	}
}

// TestLaceability: S4 is Hamiltonian laceable — between EVERY pair of
// vertices in different partite sets there is a Hamiltonian path. The
// block router's healthy-block step relies on this; verified
// exhaustively (276 ordered pairs).
func TestLaceability(t *testing.T) {
	for u := 0; u < BlockOrder; u++ {
		for v := 0; v < BlockOrder; v++ {
			if u == v {
				continue
			}
			_, ok := Canon.FindPath(Query{From: uint8(u), To: uint8(v), Target: BlockOrder})
			want := Canon.Parity(uint8(u)) != Canon.Parity(uint8(v))
			if ok != want {
				t.Fatalf("Hamiltonian path %d->%d: got %v, want %v", u, v, ok, want)
			}
		}
	}
}

// TestLemma4Exhaustive is the executable Lemma 4, strengthened: for
// every faulty vertex f and every ordered pair of healthy vertices u, v
// in different partite sets (the paper requires u, v adjacent; any
// opposite-parity pair works), there is a healthy u-v path of exactly
// 22 vertices — the maximum, since the 24-vertex block is bipartite and
// loses one vertex per side. The paper's six hand-listed paths are
// replaced by this complete enumeration (24 * 253 cases).
func TestLemma4Exhaustive(t *testing.T) {
	for f := 0; f < BlockOrder; f++ {
		forb := uint32(1) << uint(f)
		for u := 0; u < BlockOrder; u++ {
			for v := 0; v < BlockOrder; v++ {
				if u == f || v == f || u == v {
					continue
				}
				if Canon.Parity(uint8(u)) == Canon.Parity(uint8(v)) {
					continue
				}
				path, ok := Canon.FindPath(Query{From: uint8(u), To: uint8(v), ForbidV: forb, Target: 22})
				if !ok {
					t.Fatalf("no 22-path %d->%d avoiding %d", u, v, f)
				}
				validatePath(t, path, 22, forb, nil)
			}
		}
	}
}

// TestLemma4PaperForm restates the original Lemma 4: u, v adjacent and
// healthy, one fault; a healthy u-v path of length 4!-3 = 21 edges (22
// vertices) exists, and no longer one can (bipartite bound).
func TestLemma4PaperForm(t *testing.T) {
	for f := 0; f < BlockOrder; f++ {
		forb := uint32(1) << uint(f)
		for u := 0; u < BlockOrder; u++ {
			if u == f {
				continue
			}
			for a := Canon.Adjacency(uint8(u)) &^ forb; a != 0; a &= a - 1 {
				v := uint8(bits.TrailingZeros32(a))
				_, n, ok := Canon.MaxPath(Query{From: uint8(u), To: v, ForbidV: forb})
				if !ok || n != 22 {
					t.Fatalf("max path %d->%d avoiding %d: %d vertices, want 22", u, v, f, n)
				}
			}
		}
	}
}

// TestEdgeAvoidingLaceability: a Hamiltonian path exists between every
// opposite-parity pair even with any single edge forbidden — the fact
// behind the edge-fault Hamiltonicity result (T5).
func TestEdgeAvoidingLaceability(t *testing.T) {
	for a := 0; a < BlockOrder; a++ {
		for m := Canon.Adjacency(uint8(a)); m != 0; m &= m - 1 {
			b := uint8(bits.TrailingZeros32(m))
			if int(b) < a {
				continue
			}
			forbE := []Edge{{A: uint8(a), B: b}}
			for u := 0; u < BlockOrder; u++ {
				for v := 0; v < BlockOrder; v++ {
					if u == v || Canon.Parity(uint8(u)) == Canon.Parity(uint8(v)) {
						continue
					}
					path, ok := Canon.FindPath(Query{From: uint8(u), To: uint8(v), ForbidE: forbE, Target: BlockOrder})
					if !ok {
						t.Fatalf("no Hamiltonian %d->%d avoiding edge %d-%d", u, v, a, b)
					}
					validatePath(t, path, BlockOrder, 0, forbE)
				}
			}
		}
	}
}

// validatePath re-checks a search result against the canonical graph.
func validatePath(t *testing.T, path []uint8, target int, forbV uint32, forbE []Edge) {
	t.Helper()
	if len(path) != target {
		t.Fatalf("path has %d vertices, want %d", len(path), target)
	}
	seen := map[uint8]bool{}
	for i, v := range path {
		if seen[v] {
			t.Fatalf("repeat vertex %d", v)
		}
		seen[v] = true
		if forbV&(1<<uint(v)) != 0 {
			t.Fatalf("forbidden vertex %d used", v)
		}
		if i == 0 {
			continue
		}
		u := path[i-1]
		if Canon.Adjacency(u)&(1<<uint(v)) == 0 {
			t.Fatalf("hop %d-%d not an edge", u, v)
		}
		for _, e := range forbE {
			e = normEdge(e)
			if (e.A == u && e.B == v) || (e.A == v && e.B == u) {
				t.Fatalf("forbidden edge %d-%d used", u, v)
			}
		}
	}
}

func TestFindPathDegenerateCases(t *testing.T) {
	if _, ok := Canon.FindPath(Query{From: 0, To: 0, Target: 1}); !ok {
		t.Error("trivial single-vertex path rejected")
	}
	if _, ok := Canon.FindPath(Query{From: 0, To: 0, Target: 2}); ok {
		t.Error("2-vertex path with equal endpoints accepted")
	}
	if _, ok := Canon.FindPath(Query{From: 0, To: 1, Target: 0}); ok {
		t.Error("target 0 accepted")
	}
	if _, ok := Canon.FindPath(Query{From: 0, To: 1, Target: 25}); ok {
		t.Error("target beyond block order accepted")
	}
	// Forbidden endpoint.
	if _, ok := Canon.FindPath(Query{From: 0, To: 1, ForbidV: 1, Target: 2}); ok {
		t.Error("forbidden source accepted")
	}
	// Parity-impossible: equal-parity endpoints with even target.
	var sameParity uint8
	for i := 1; i < BlockOrder; i++ {
		if Canon.Parity(uint8(i)) == Canon.Parity(0) {
			sameParity = uint8(i)
			break
		}
	}
	if _, ok := Canon.FindPath(Query{From: 0, To: sameParity, Target: BlockOrder}); ok {
		t.Error("parity-impossible Hamiltonian accepted")
	}
}

func TestMaxPathMonotonicity(t *testing.T) {
	// MaxPath with two same-side faults: block keeps 24-4 = 20 usable
	// on the constrained side; the longest opposite-parity path is 20.
	var f1, f2 int = -1, -1
	for i := 0; i < BlockOrder && f2 < 0; i++ {
		if Canon.Parity(uint8(i)) == 0 {
			if f1 < 0 {
				f1 = i
			} else {
				f2 = i
			}
		}
	}
	forb := uint32(1)<<uint(f1) | uint32(1)<<uint(f2)
	best := 0
	for u := 0; u < BlockOrder; u++ {
		if forb&(1<<uint(u)) != 0 {
			continue
		}
		for v := 0; v < BlockOrder; v++ {
			if v == u || forb&(1<<uint(v)) != 0 {
				continue
			}
			_, n, ok := Canon.MaxPath(Query{From: uint8(u), To: uint8(v), ForbidV: forb})
			if ok && n > best {
				best = n
			}
		}
	}
	// 10 even + 12 odd available: a path alternates, so at most
	// 10+11 = 21 vertices.
	if best != 21 {
		t.Fatalf("longest path with two same-side faults: %d, want 21", best)
	}
}

func TestLongestCycleAvoiding(t *testing.T) {
	if _, n := Canon.LongestCycleAvoiding(0, nil); n != BlockOrder {
		t.Fatalf("fault-free longest cycle %d", n)
	}
	// One fault: 22, for every position (the optimality certification).
	for f := 0; f < BlockOrder; f++ {
		cycle, n := Canon.LongestCycleAvoiding(1<<uint(f), nil)
		if n != 22 {
			t.Fatalf("fault %d: longest cycle %d", f, n)
		}
		validateCycle(t, cycle, 1<<uint(f), nil)
	}
	// Two same-side faults: 20.
	var evens []int
	for i := 0; i < BlockOrder; i++ {
		if Canon.Parity(uint8(i)) == 0 {
			evens = append(evens, i)
		}
	}
	forb := uint32(1)<<uint(evens[0]) | uint32(1)<<uint(evens[1])
	if _, n := Canon.LongestCycleAvoiding(forb, nil); n != 20 {
		t.Fatalf("two same-side faults: longest cycle %d, want 20", n)
	}
	// One forbidden edge: still Hamiltonian.
	e := []Edge{{A: 0, B: uint8(bits.TrailingZeros32(Canon.Adjacency(0)))}}
	cycle, n := Canon.LongestCycleAvoiding(0, e)
	if n != BlockOrder {
		t.Fatalf("one edge fault: longest cycle %d", n)
	}
	validateCycle(t, cycle, 0, e)
}

func validateCycle(t *testing.T, cycle []uint8, forbV uint32, forbE []Edge) {
	t.Helper()
	validatePath(t, cycle, len(cycle), forbV, forbE)
	u, v := cycle[len(cycle)-1], cycle[0]
	if Canon.Adjacency(u)&(1<<uint(v)) == 0 {
		t.Fatalf("closing hop %d-%d not an edge", u, v)
	}
	for _, e := range forbE {
		e = normEdge(e)
		if (e.A == u && e.B == v) || (e.A == v && e.B == u) {
			t.Fatalf("closing hop uses forbidden edge")
		}
	}
}

func TestCacheConsistency(t *testing.T) {
	// Repeated identical queries return identical results (and exercise
	// the cache path).
	q := Query{From: 0, To: 1, Target: BlockOrder}
	p1, ok1 := Canon.FindPath(q)
	p2, ok2 := Canon.FindPath(q)
	if ok1 != ok2 || len(p1) != len(p2) {
		t.Fatal("cache returned different results")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("cache returned different path")
		}
	}
}

func TestSignatureLimits(t *testing.T) {
	var edges []Edge
	for i := 0; i < 9; i++ {
		edges = append(edges, Edge{A: uint8(i), B: uint8(i + 1)})
	}
	if _, ok := signature(edges); ok {
		t.Error("9 edges unexpectedly cacheable")
	}
	if sig1, ok := signature([]Edge{{A: 1, B: 0}, {A: 2, B: 3}}); ok {
		sig2, _ := signature([]Edge{{A: 3, B: 2}, {A: 0, B: 1}})
		if sig1 != sig2 {
			t.Error("signature not order/orientation independent")
		}
	} else {
		t.Error("2 edges not cacheable")
	}
}

// TestParityPruneSoundness cross-checks the parity feasibility helper
// against brute force on random-ish cases: whenever parityFeasible says
// no, exhaustive search must also find nothing.
func TestParityPruneSoundness(t *testing.T) {
	for u := 0; u < 8; u++ {
		for v := 8; v < 16; v++ {
			if u == v {
				continue
			}
			for target := 2; target <= BlockOrder; target++ {
				feasible := parityFeasible(Canon, uint8(u), uint8(v), 0, target)
				_, ok := Canon.FindPath(Query{From: uint8(u), To: uint8(v), Target: target})
				if ok && !feasible {
					t.Fatalf("parityFeasible rejected an existing %d-path %d->%d", target, u, v)
				}
			}
		}
	}
}

// TestCodeIndexAgreesWithRank ties the canonical indexing to the
// permutation kernel.
func TestCodeIndexAgreesWithRank(t *testing.T) {
	for r := 0; r < BlockOrder; r++ {
		c := perm.Pack(perm.Unrank(4, r))
		if Canon.Index(c) != uint8(r) {
			t.Fatalf("Index(%s) = %d, want %d", c.StringN(4), Canon.Index(c), r)
		}
	}
}

// TestBudgetCapTermination: a tiny node budget makes the search give up
// instead of hanging; the shared cache must not memoize the truncated
// verdict for budget-limited queries.
func TestBudgetCapTermination(t *testing.T) {
	q := Query{From: 2, To: 3, Target: BlockOrder, NoCache: true}
	q.budgetCap = 1
	if _, ok := Canon.FindPath(q); ok {
		t.Fatal("1-node budget found a Hamiltonian path")
	}
	// The same query unconstrained succeeds (parity permitting).
	q2 := Query{From: 2, To: 3, Target: BlockOrder}
	want := Canon.Parity(2) != Canon.Parity(3)
	if _, ok := Canon.FindPath(q2); ok != want {
		t.Fatalf("unconstrained search: got %v, want %v", ok, want)
	}
}

// TestMaxPathNoRoute: MaxPath reports failure when the endpoints are
// disconnected by the forbidden set.
func TestMaxPathNoRoute(t *testing.T) {
	// Forbid all neighbors of vertex 0.
	forb := Canon.Adjacency(0)
	var to uint8
	for v := uint8(1); v < BlockOrder; v++ {
		if forb&(1<<uint(v)) == 0 {
			to = v
			break
		}
	}
	_, _, ok := Canon.MaxPath(Query{From: 0, To: to, ForbidV: forb})
	if ok {
		t.Fatal("walled-in source reached its target")
	}
}
