// Package pathsearch performs exact path searches inside the 24-vertex
// S4 blocks that the embedding algorithm routes through. It is the
// operational form of the paper's Lemmas 4, 5 and 6: instead of the six
// hand-listed fault-avoiding paths of Lemma 4 and the 6-cycle case
// analysis of Lemmas 5-6, every block query is answered by an exhaustive
// depth-first search over the canonical S4 (with parity and
// reachability pruning), and results are memoized. Every embedded S4 of
// S_n is isomorphic to the canonical S4 by relabeling free positions and
// free symbols, so one small cache serves every block of every
// embedding.
package pathsearch

import (
	"math/bits"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/perm"
	"repro/internal/star"
)

// BlockOrder is the number of vertices of an S4 block, 4!.
const BlockOrder = 24

// S4 is the canonical 4-dimensional star graph with vertices indexed by
// lexicographic rank (0..23). The package-level singleton Canon is
// shared by all searches; it is immutable after construction apart from
// its internal result cache, which is synchronized.
type S4 struct {
	adj    [BlockOrder]uint32 // adjacency bitmasks
	parity [BlockOrder]uint8  // 0 = even permutation, 1 = odd
	codes  [BlockOrder]perm.Code

	mu    sync.RWMutex
	cache map[searchKey]cacheEntry

	// Cache effectiveness counters, always on (an atomic add is noise
	// next to the map access they sit beside). Read via CacheStats;
	// internal/core folds per-run deltas into its obs registry.
	hits, misses, bypasses obs.Counter
}

type searchKey struct {
	from, to uint8
	forbV    uint32
	edgeSig  edgeSig
	target   uint8
}

// edgeSig identifies a set of up to eight forbidden edges; each edge is
// packed as from*24+to with from < to, in ascending order. Blocks with
// more forbidden edges bypass the cache (they cannot occur within the
// paper's fault budget for practical n).
type edgeSig [8]uint16

type cacheEntry struct {
	path []uint8 // nil when no path with the keyed target exists
	ok   bool
}

// Canon is the shared canonical S4.
var Canon = newS4()

func newS4() *S4 {
	s := &S4{cache: make(map[searchKey]cacheEntry)}
	g := star.New(4)
	i := 0
	g.Vertices(func(v perm.Code) bool {
		s.codes[i] = v
		s.parity[i] = uint8(v.Parity(4))
		i++
		return true
	})
	for a := 0; a < BlockOrder; a++ {
		for dim := 2; dim <= 4; dim++ {
			b := s.codes[a].SwapFirst(dim).Rank(4)
			s.adj[a] |= 1 << uint(b)
		}
	}
	return s
}

// CacheStats returns the cumulative result-cache counters: hits
// (answered from the memo), misses (searched then memoized) and
// bypasses (uncacheable queries: NoCache set, or more than eight
// forbidden edges).
func (s *S4) CacheStats() (hits, misses, bypasses int64) {
	return s.hits.Value(), s.misses.Value(), s.bypasses.Value()
}

// Code returns the canonical vertex code with the given rank index.
func (s *S4) Code(idx uint8) perm.Code { return s.codes[idx] }

// Index returns the rank index of a canonical S4 code.
func (s *S4) Index(c perm.Code) uint8 { return uint8(c.Rank(4)) }

// Parity returns the bipartition side of the indexed vertex.
func (s *S4) Parity(idx uint8) uint8 { return s.parity[idx] }

// Adjacency returns the neighbor bitmask of the indexed vertex.
func (s *S4) Adjacency(idx uint8) uint32 { return s.adj[idx] }

// Edge is a forbidden edge given by two canonical vertex indices.
type Edge struct{ A, B uint8 }

func normEdge(e Edge) Edge {
	if e.A > e.B {
		e.A, e.B = e.B, e.A
	}
	return e
}

// signature packs the forbidden edges into the fixed-size cache key,
// sorting in place inside the array: it runs on every FindPath call,
// so it builds the key without touching the heap.
//
//starlint:hotpath
func signature(edges []Edge) (edgeSig, bool) {
	var sig edgeSig
	if len(edges) > len(sig) {
		return sig, false
	}
	for i, e := range edges {
		e = normEdge(e)
		sig[i] = uint16(e.A)*BlockOrder + uint16(e.B) + 1 // +1 keeps 0 as "no edge"
	}
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && sig[j-1] > sig[j]; j-- {
			sig[j-1], sig[j] = sig[j], sig[j-1]
		}
	}
	return sig, true
}

// Query describes one block search. Target is the exact number of
// vertices the path must visit (endpoints included).
type Query struct {
	From, To  uint8
	ForbidV   uint32 // bitmask of forbidden vertices
	ForbidE   []Edge // forbidden edges, if any
	Target    int
	budgetCap int64 // 0 means default

	// Ablation switches (benchmarks only): disable the result cache or
	// the Warnsdorff branch ordering to measure their contribution.
	NoCache     bool
	NoHeuristic bool
}

// FindPath searches for a path visiting exactly q.Target vertices from
// q.From to q.To, avoiding forbidden vertices and edges. The returned
// slice lists canonical vertex indices, starting at From and ending at
// To; it is owned by the cache and must not be modified. The second
// result reports success.
func (s *S4) FindPath(q Query) ([]uint8, bool) {
	if q.Target < 1 || q.Target > BlockOrder {
		return nil, false
	}
	if q.ForbidV&(1<<uint(q.From)) != 0 || q.ForbidV&(1<<uint(q.To)) != 0 {
		return nil, false
	}
	if q.From == q.To {
		if q.Target == 1 {
			return []uint8{q.From}, true
		}
		return nil, false
	}

	sig, cacheable := signature(q.ForbidE)
	if q.NoCache {
		cacheable = false
	}
	key := searchKey{from: q.From, to: q.To, forbV: q.ForbidV, edgeSig: sig, target: uint8(q.Target)}
	if cacheable {
		if e, ok := s.lookup(key); ok {
			return e.path, e.ok
		}
	} else {
		s.bypasses.Inc()
	}

	adjEff := s.adj
	for _, e := range q.ForbidE {
		e = normEdge(e)
		adjEff[e.A] &^= 1 << uint(e.B)
		adjEff[e.B] &^= 1 << uint(e.A)
	}

	d := dfs{
		s:           s,
		adj:         &adjEff,
		to:          q.To,
		target:      q.Target,
		budget:      1 << 22,
		noHeuristic: q.NoHeuristic,
	}
	if q.budgetCap > 0 {
		d.budget = q.budgetCap
	}
	d.path = append(d.path, q.From)
	// Cold searches (cache misses and bypasses) are where FindPath's CPU
	// actually goes, so they run under their own pprof label; the hit
	// path above stays label-free — a map lookup needs no attribution.
	var found bool
	prof.Do("s4-search", func() {
		found = d.run(q.From, q.ForbidV|1<<uint(q.From))
	})

	var path []uint8
	if found {
		path = make([]uint8, len(d.path))
		copy(path, d.path)
	}
	if cacheable {
		s.mu.Lock()
		s.cache[key] = cacheEntry{path: path, ok: found}
		s.mu.Unlock()
	}
	return path, found
}

// lookup probes the result cache under the read lock and maintains the
// hit/miss counters. This is the steady state of long repair campaigns
// — Table-driven queries repeat endlessly — so the paper's amortized
// cost claim rests on the hit path staying an RLock, a map probe and
// an atomic add, with no allocation; hotalloc enforces that.
//
//starlint:hotpath
func (s *S4) lookup(key searchKey) (cacheEntry, bool) {
	s.mu.RLock()
	e, ok := s.cache[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Inc()
	} else {
		s.misses.Inc()
	}
	return e, ok
}

// dfs carries the state of one target-path search.
type dfs struct {
	s           *S4
	adj         *[BlockOrder]uint32
	to          uint8
	target      int
	path        []uint8
	budget      int64
	noHeuristic bool
}

// run extends the path from cur (already in path and in visited) and
// reports whether a full target path was completed.
func (d *dfs) run(cur uint8, visited uint32) bool {
	if len(d.path) == d.target {
		return cur == d.to
	}
	d.budget--
	if d.budget < 0 {
		return false
	}
	if !d.feasible(cur, visited) {
		return false
	}
	// Order candidate moves by ascending remaining degree (Warnsdorff's
	// heuristic): forced moves first keeps the branching factor near one
	// on Hamiltonian instances.
	cands := d.adj[cur] &^ visited
	var order [4]uint8
	var deg [4]int
	m := 0
	for c := cands; c != 0; c &= c - 1 {
		w := uint8(bits.TrailingZeros32(c))
		if w == d.to && len(d.path)+1 != d.target {
			continue // touching the goal early would strand it
		}
		order[m] = w
		deg[m] = bits.OnesCount32(d.adj[w] &^ visited)
		m++
	}
	if !d.noHeuristic {
		for i := 1; i < m; i++ {
			for j := i; j > 0 && deg[j-1] > deg[j]; j-- {
				deg[j-1], deg[j] = deg[j], deg[j-1]
				order[j-1], order[j] = order[j], order[j-1]
			}
		}
	}
	for i := 0; i < m; i++ {
		w := order[i]
		d.path = append(d.path, w)
		if d.run(w, visited|1<<uint(w)) {
			return true
		}
		d.path = d.path[:len(d.path)-1]
	}
	return false
}

// feasible applies the parity and reachability prunes.
func (d *dfs) feasible(cur uint8, visited uint32) bool {
	remaining := d.target - len(d.path) // vertices still to append
	// Parity prune: appended vertices alternate parity starting from the
	// opposite of cur; the final vertex must be d.to.
	pc := d.s.parity[cur]
	wantLast := pc
	if remaining%2 == 1 {
		wantLast = 1 - pc
	}
	if d.s.parity[d.to] != wantLast {
		return false
	}
	needOpp := (remaining + 1) / 2 // parity 1-pc
	needSame := remaining / 2      // parity pc

	// Reachability prune: BFS over unvisited vertices from cur.
	reach := uint32(1) << uint(cur)
	frontier := d.adj[cur] &^ visited
	for frontier != 0 {
		reach |= frontier
		next := uint32(0)
		for f := frontier; f != 0; f &= f - 1 {
			w := uint8(bits.TrailingZeros32(f))
			next |= d.adj[w]
		}
		frontier = next &^ visited &^ reach
	}
	if reach&(1<<uint(d.to)) == 0 {
		return false
	}
	avail := reach &^ (1 << uint(cur))
	if bits.OnesCount32(avail) < remaining {
		return false
	}
	// Count available vertices per parity.
	opp, same := 0, 0
	for a := avail; a != 0; a &= a - 1 {
		w := uint8(bits.TrailingZeros32(a))
		if d.s.parity[w] == pc {
			same++
		} else {
			opp++
		}
	}
	return opp >= needOpp && same >= needSame
}

// MaxPath returns the longest path from From to To avoiding the given
// vertices and edges, searching targets downward from the best parity-
// feasible bound. It returns the path and its vertex count, or ok=false
// when no path exists at all.
func (s *S4) MaxPath(q Query) ([]uint8, int, bool) {
	avail := BlockOrder - bits.OnesCount32(q.ForbidV)
	for t := avail; t >= 2; t-- {
		if !parityFeasible(s, q.From, q.To, q.ForbidV, t) {
			continue
		}
		qq := q
		qq.Target = t
		if path, ok := s.FindPath(qq); ok {
			return path, t, true
		}
	}
	if q.From == q.To && q.ForbidV&(1<<uint(q.From)) == 0 {
		return []uint8{q.From}, 1, true
	}
	return nil, 0, false
}

// parityFeasible checks the bipartite counting bound for a t-vertex path
// from a to b avoiding forbV.
func parityFeasible(s *S4, a, b uint8, forbV uint32, t int) bool {
	if t < 1 {
		return false
	}
	sameEnds := s.parity[a] == s.parity[b]
	if sameEnds != (t%2 == 1) {
		return false
	}
	// Count healthy vertices per parity.
	var n0, n1 int
	for i := 0; i < BlockOrder; i++ {
		if forbV&(1<<uint(i)) != 0 {
			continue
		}
		if s.parity[i] == 0 {
			n0++
		} else {
			n1++
		}
	}
	// A t-path starting at parity p uses ceil(t/2) of p when t is odd...
	p := int(s.parity[a])
	usedP := (t + 1) / 2
	usedQ := t / 2
	if p == 0 {
		return n0 >= usedP && n1 >= usedQ
	}
	return n1 >= usedP && n0 >= usedQ
}

// HamiltonianCycle returns a Hamiltonian cycle of the canonical S4 as a
// sequence of 24 vertex indices (the closing edge back to index 0 is
// implicit).
func (s *S4) HamiltonianCycle() []uint8 {
	// A cycle is a Hamiltonian path from 0 to one of its neighbors.
	for a := s.adj[0]; a != 0; a &= a - 1 {
		w := uint8(bits.TrailingZeros32(a))
		if path, ok := s.FindPath(Query{From: 0, To: w, Target: BlockOrder}); ok {
			return path
		}
	}
	return nil // unreachable: S4 is Hamiltonian
}

// LongestCycleAvoiding returns the longest cycle that avoids the given
// vertex and edge sets, found by exhaustive search with the bipartite
// parity bound as the starting target. Intended for the small-n direct
// embeddings and the optimality certification experiments on S4.
func (s *S4) LongestCycleAvoiding(forbV uint32, forbE []Edge) ([]uint8, int) {
	// Upper bound from the bipartition.
	var n0, n1 int
	for i := 0; i < BlockOrder; i++ {
		if forbV&(1<<uint(i)) != 0 {
			continue
		}
		if s.parity[i] == 0 {
			n0++
		} else {
			n1++
		}
	}
	// Remove forbidden edges from the adjacency used to pick closing
	// edges; FindPath gets them through the query.
	adjEff := s.adj
	for _, e := range forbE {
		e = normEdge(e)
		adjEff[e.A] &^= 1 << uint(e.B)
		adjEff[e.B] &^= 1 << uint(e.A)
	}

	maxLen := 2 * min(n0, n1)
	for t := maxLen; t >= 4; t -= 2 { // cycles in bipartite graphs are even
		// A t-cycle is a t-path between two adjacent vertices plus the
		// closing edge; anchoring at every healthy vertex is affordable
		// at this size.
		for v := 0; v < BlockOrder; v++ {
			if forbV&(1<<uint(v)) != 0 {
				continue
			}
			for a := adjEff[v] &^ forbV; a != 0; a &= a - 1 {
				w := uint8(bits.TrailingZeros32(a))
				if int(w) < v {
					continue
				}
				q := Query{From: uint8(v), To: w, ForbidV: forbV, ForbidE: forbE, Target: t}
				if path, ok := s.FindPath(q); ok {
					return path, t
				}
			}
		}
	}
	return nil, 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
