package pathsearch

import (
	"testing"

	"repro/internal/substar"
)

// BenchmarkHamiltonianPathCold measures the raw exhaustive search by
// bypassing the cache (fresh S4 each iteration would be unfair; instead
// vary endpoints across a precomputed uncacheable edge set).
func BenchmarkHamiltonianPathWarm(b *testing.B) {
	// Warm the cache once.
	Canon.FindPath(Query{From: 0, To: 1, Target: BlockOrder})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Canon.FindPath(Query{From: 0, To: 1, Target: BlockOrder}); !ok {
			b.Fatal("path vanished")
		}
	}
}

func BenchmarkLemma4SearchAllPairs(b *testing.B) {
	// One full Lemma 4 sweep per iteration: every fault, every adjacent
	// healthy pair, served from the shared cache after the first pass.
	for i := 0; i < b.N; i++ {
		for f := 0; f < BlockOrder; f++ {
			forb := uint32(1) << uint(f)
			for u := 0; u < BlockOrder; u++ {
				if u == f {
					continue
				}
				for a := Canon.Adjacency(uint8(u)) &^ forb; a != 0; a &= a - 1 {
					v := trailingZeros(a)
					if _, ok := Canon.FindPath(Query{From: uint8(u), To: v, ForbidV: forb, Target: 22}); !ok {
						b.Fatal("Lemma 4 failed")
					}
				}
			}
		}
	}
}

func trailingZeros(x uint32) uint8 {
	var i uint8
	for x&1 == 0 {
		x >>= 1
		i++
	}
	return i
}

func BenchmarkBlockMapping(b *testing.B) {
	p := substar.MustParse("****56789")
	blk, err := NewBlock(p)
	if err != nil {
		b.Fatal(err)
	}
	verts := p.Vertices(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, _ := blk.ToCanon(verts[i%len(verts)])
		_ = blk.FromCanon(idx)
	}
}

func BenchmarkLongestCycleOneFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, n := Canon.LongestCycleAvoiding(1<<uint(i%BlockOrder), nil)
		if n != 22 {
			b.Fatal("wrong cycle length")
		}
	}
}
