package pathsearch

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/substar"
)

// Block is one embedded S4 of S_n, equipped with the isomorphism onto
// the canonical S4: free positions map to positions 1..4 in increasing
// order (position 1 is always free and maps to position 1) and free
// symbols map to symbols 1..4 in increasing order. The isomorphism
// preserves adjacency because every intra-block edge swaps position 1
// with a free position.
type Block struct {
	pat     substar.Pattern
	freePos [4]int
	freeSym [4]uint8
	symIdx  [perm.MaxN + 1]uint8 // ambient symbol -> canonical symbol (1..4)
}

// NewBlock builds the isomorphism for an order-4 pattern.
func NewBlock(pat substar.Pattern) (*Block, error) {
	if pat.R() != 4 {
		return nil, fmt.Errorf("pathsearch: pattern %v has order %d, want 4", pat, pat.R())
	}
	b := &Block{pat: pat}
	fp := pat.FreePositions(make([]int, 0, 4))
	fs := pat.FreeSymbols(make([]uint8, 0, 4))
	copy(b.freePos[:], fp)
	copy(b.freeSym[:], fs)
	for i, s := range b.freeSym {
		b.symIdx[s] = uint8(i + 1)
	}
	return b, nil
}

// Pattern returns the block's substar pattern.
func (b *Block) Pattern() substar.Pattern { return b.pat }

// Contains reports whether ambient vertex v lies in the block.
func (b *Block) Contains(v perm.Code) bool { return b.pat.Contains(v) }

// ToCanon maps an ambient vertex of the block to its canonical S4
// index. The boolean is false when v is not in the block.
func (b *Block) ToCanon(v perm.Code) (uint8, bool) {
	if !b.pat.Contains(v) {
		return 0, false
	}
	var c perm.Code
	for j, pos := range b.freePos {
		sym := b.symIdx[v.Symbol(pos)]
		c = c.WithSymbol(j+1, sym)
	}
	return Canon.Index(c), true
}

// FromCanon maps a canonical S4 index back to the ambient vertex.
func (b *Block) FromCanon(idx uint8) perm.Code {
	canon := Canon.Code(idx)
	// Start from the pattern's fixed symbols and fill free positions.
	var v perm.Code
	for i := 1; i <= b.pat.N(); i++ {
		if s := b.pat.SymbolAt(i); s != substar.Star {
			v = v.WithSymbol(i, s)
		}
	}
	for j, pos := range b.freePos {
		v = v.WithSymbol(pos, b.freeSym[canon.Symbol(j+1)-1])
	}
	return v
}

// CanonEdge maps an ambient intra-block edge to a canonical Edge. The
// boolean is false when either endpoint lies outside the block or the
// endpoints are not adjacent within it.
func (b *Block) CanonEdge(u, v perm.Code) (Edge, bool) {
	a, ok := b.ToCanon(u)
	if !ok {
		return Edge{}, false
	}
	c, ok := b.ToCanon(v)
	if !ok {
		return Edge{}, false
	}
	if Canon.Adjacency(a)&(1<<uint(c)) == 0 {
		return Edge{}, false
	}
	return normEdge(Edge{A: a, B: c}), true
}

// PathSpec is a block routing request in ambient coordinates.
type PathSpec struct {
	From, To perm.Code
	AvoidV   []perm.Code    // faulty vertices inside the block
	AvoidE   [][2]perm.Code // faulty intra-block edges
	Target   int            // exact number of vertices to visit
}

// Path solves the routing request, returning the path in ambient
// coordinates (a fresh slice), or ok=false when no such path exists.
func (b *Block) Path(spec PathSpec) ([]perm.Code, bool) {
	return b.PathAppend(make([]perm.Code, 0, spec.Target), spec)
}

// PathAppend is Path writing into dst (appended and returned, like
// append): with a dst of sufficient capacity the only allocations left
// are the canonical search's own, which the memo cache absorbs after
// the first solve of each symmetry class. The streaming ring cursor
// leans on this to re-materialize one block segment at a time into a
// single reusable buffer.
func (b *Block) PathAppend(dst []perm.Code, spec PathSpec) ([]perm.Code, bool) {
	from, ok := b.ToCanon(spec.From)
	if !ok {
		return dst, false
	}
	to, ok := b.ToCanon(spec.To)
	if !ok {
		return dst, false
	}
	var forbV uint32
	for _, v := range spec.AvoidV {
		idx, ok := b.ToCanon(v)
		if !ok {
			continue // faults outside the block do not constrain it
		}
		forbV |= 1 << uint(idx)
	}
	var forbE []Edge
	for _, e := range spec.AvoidE {
		if ce, ok := b.CanonEdge(e[0], e[1]); ok {
			forbE = append(forbE, ce)
		}
	}
	path, ok := Canon.FindPath(Query{From: from, To: to, ForbidV: forbV, ForbidE: forbE, Target: spec.Target})
	if !ok {
		return dst, false
	}
	for _, idx := range path {
		dst = append(dst, b.FromCanon(idx))
	}
	return dst, true
}

// MaxPathLen returns the number of vertices on the longest From-To path
// under the spec's avoidance sets (Target is ignored).
func (b *Block) MaxPathLen(spec PathSpec) int {
	from, ok := b.ToCanon(spec.From)
	if !ok {
		return 0
	}
	to, ok := b.ToCanon(spec.To)
	if !ok {
		return 0
	}
	var forbV uint32
	for _, v := range spec.AvoidV {
		if idx, ok := b.ToCanon(v); ok {
			forbV |= 1 << uint(idx)
		}
	}
	var forbE []Edge
	for _, e := range spec.AvoidE {
		if ce, ok := b.CanonEdge(e[0], e[1]); ok {
			forbE = append(forbE, ce)
		}
	}
	_, n, ok := Canon.MaxPath(Query{From: from, To: to, ForbidV: forbV, ForbidE: forbE})
	if !ok {
		return 0
	}
	return n
}
