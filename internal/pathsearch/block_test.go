package pathsearch

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
	"repro/internal/star"
	"repro/internal/substar"
)

// randomBlockPattern produces a random order-4 pattern in S_n.
func randomBlockPattern(rng *rand.Rand, n int) substar.Pattern {
	p := substar.Whole(n)
	for p.R() > 4 {
		free := p.FreePositions(nil)
		pos := free[rng.Intn(len(free)-1)+1]
		syms := p.FreeSymbols(nil)
		p = p.Fix(pos, syms[rng.Intn(len(syms))])
	}
	return p
}

func TestNewBlockValidation(t *testing.T) {
	if _, err := NewBlock(substar.Whole(5)); err == nil {
		t.Fatal("order-5 pattern accepted")
	}
	if _, err := NewBlock(substar.Whole(4)); err != nil {
		t.Fatalf("whole S4 rejected: %v", err)
	}
}

func TestBlockIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{5, 6, 7, 9} {
		g := star.New(n)
		for trial := 0; trial < 10; trial++ {
			pat := randomBlockPattern(rng, n)
			b, err := NewBlock(pat)
			if err != nil {
				t.Fatal(err)
			}
			verts := pat.Vertices(nil)
			if len(verts) != BlockOrder {
				t.Fatalf("pattern %v has %d vertices", pat, len(verts))
			}
			seen := map[uint8]bool{}
			for _, v := range verts {
				idx, ok := b.ToCanon(v)
				if !ok {
					t.Fatalf("ToCanon rejected member %s", v.StringN(n))
				}
				if seen[idx] {
					t.Fatalf("ToCanon not injective at %d", idx)
				}
				seen[idx] = true
				if b.FromCanon(idx) != v {
					t.Fatalf("FromCanon(ToCanon) != id at %s", v.StringN(n))
				}
			}
			// Adjacency preservation, both directions.
			for _, u := range verts {
				ui, _ := b.ToCanon(u)
				for _, v := range verts {
					vi, _ := b.ToCanon(v)
					ambient := g.Adjacent(u, v)
					canon := Canon.Adjacency(ui)&(1<<uint(vi)) != 0
					if ambient != canon {
						t.Fatalf("adjacency not preserved: %s-%s ambient=%v canon=%v",
							u.StringN(n), v.StringN(n), ambient, canon)
					}
				}
			}
			// Non-members rejected.
			if _, ok := b.ToCanon(perm.IdentityCode(n)); ok && !pat.Contains(perm.IdentityCode(n)) {
				t.Fatal("ToCanon accepted a non-member")
			}
		}
	}
}

func TestBlockPathAmbient(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 6
	g := star.New(n)
	pat := randomBlockPattern(rng, n)
	b, err := NewBlock(pat)
	if err != nil {
		t.Fatal(err)
	}
	verts := pat.Vertices(nil)
	fault := verts[5]
	// Any opposite-parity healthy pair admits a 22-path (strengthened
	// Lemma 4, mapped through the isomorphism).
	var from, to perm.Code
	for _, v := range verts {
		if v == fault {
			continue
		}
		if from == 0 {
			from = v
			continue
		}
		if v.Parity(n) != from.Parity(n) {
			to = v
			break
		}
	}
	path, ok := b.Path(PathSpec{From: from, To: to, AvoidV: []perm.Code{fault}, Target: 22})
	if !ok {
		t.Fatal("no 22-path in ambient block")
	}
	if len(path) != 22 || path[0] != from || path[21] != to {
		t.Fatal("bad endpoints or length")
	}
	seen := map[perm.Code]bool{}
	for i, v := range path {
		if v == fault || seen[v] || !pat.Contains(v) {
			t.Fatalf("bad vertex at %d", i)
		}
		seen[v] = true
		if i > 0 && !g.Adjacent(path[i-1], v) {
			t.Fatalf("hop %d not an edge", i)
		}
	}
	// MaxPathLen agrees.
	if l := b.MaxPathLen(PathSpec{From: from, To: to, AvoidV: []perm.Code{fault}}); l != 22 {
		t.Fatalf("MaxPathLen = %d", l)
	}
}

func TestBlockCanonEdge(t *testing.T) {
	b, _ := NewBlock(substar.Whole(4))
	u := perm.IdentityCode(4)
	v := u.SwapFirst(2)
	e, ok := b.CanonEdge(u, v)
	if !ok {
		t.Fatal("edge rejected")
	}
	if e.A > e.B {
		t.Fatal("edge not normalized")
	}
	if _, ok := b.CanonEdge(u, u.SwapFirst(2).SwapFirst(3)); ok {
		t.Fatal("non-edge accepted")
	}
}

// TestLemma5 reproduces Lemma 5: with U and V adjacent 3-vertices, U's
// six vertices form a 6-cycle, and exactly two of them have cross edges
// to V — and those two are antipodal on the cycle (c_j and c_{j+3}).
func TestLemma5(t *testing.T) {
	for _, n := range []int{4, 5, 6} {
		g := star.New(n)
		// Build adjacent 3-vertex pairs by partitioning an order-4
		// pattern at its last free position.
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 5; trial++ {
			parent := randomBlockPattern(rng, n)
			free := parent.FreePositions(nil)
			pos := free[len(free)-1]
			kids := parent.Partition(pos)
			for i := range kids {
				for j := range kids {
					if i == j {
						continue
					}
					u, v := kids[i], kids[j]
					checkLemma5(t, g, u, v)
				}
			}
		}
	}
}

func checkLemma5(t *testing.T, g star.Graph, u, v substar.Pattern) {
	t.Helper()
	verts := u.Vertices(nil)
	if len(verts) != 6 {
		t.Fatalf("3-vertex with %d vertices", len(verts))
	}
	// Walk the 6-cycle.
	adj := g.InducedSubgraph(verts)
	cycle := []perm.Code{verts[0]}
	prev := perm.Code(0)
	for len(cycle) < 6 {
		cur := cycle[len(cycle)-1]
		ns := adj[cur]
		if len(ns) != 2 {
			t.Fatalf("induced degree %d inside a 3-vertex", len(ns))
		}
		next := ns[0]
		if next == prev {
			next = ns[1]
		}
		prev = cur
		cycle = append(cycle, next)
	}
	// Find the vertices with cross edges to v.
	var ports []int
	for i, c := range cycle {
		has := false
		g.VisitNeighbors(c, func(w perm.Code, _ int) bool {
			if v.Contains(w) {
				has = true
				return false
			}
			return true
		})
		if has {
			ports = append(ports, i)
		}
	}
	if len(ports) != 2 {
		t.Fatalf("3-vertex has %d ports to its neighbor, want 2", len(ports))
	}
	if d := ports[1] - ports[0]; d != 3 {
		t.Fatalf("ports at cycle distance %d, want 3 (antipodal)", d)
	}
}

// TestLemma6 reproduces Lemma 6: V a 3-vertex adjacent to U and W with
// u_dif(U,V) != w_dif(V,W); then V's two ports toward U are disjoint
// from its two ports toward W.
func TestLemma6(t *testing.T) {
	n := 5
	g := star.New(n)
	whole := substar.Whole(n)
	// All order-3 patterns arise from fixing two positions; enumerate a
	// family with adjacent triples: partition at position 4 then 5.
	for _, mid := range whole.PartitionSeq([]int{4, 5}) {
		// Find neighbors U, W of V=mid among patterns differing at one
		// fixed position.
		var neighbors []substar.Pattern
		for _, other := range whole.PartitionSeq([]int{4, 5}) {
			if mid.Adjacent(other) {
				neighbors = append(neighbors, other)
			}
		}
		for _, u := range neighbors {
			for _, w := range neighbors {
				if u == w {
					continue
				}
				p := u.Dif(mid)
				q := mid.Dif(w)
				if u.SymbolAt(p) == w.SymbolAt(q) {
					continue // Lemma 6's hypothesis fails
				}
				portsU := ports(g, mid, u)
				portsW := ports(g, mid, w)
				for _, a := range portsU {
					for _, b := range portsW {
						if a == b {
							t.Fatalf("ports not disjoint for %v between %v and %v", mid, u, w)
						}
					}
				}
			}
		}
	}
}

// ports lists the vertices of pattern p that have a neighbor inside q.
func ports(g star.Graph, p, q substar.Pattern) []perm.Code {
	var out []perm.Code
	for _, c := range p.Vertices(nil) {
		g.VisitNeighbors(c, func(w perm.Code, _ int) bool {
			if q.Contains(w) {
				out = append(out, c)
				return false
			}
			return true
		})
	}
	return out
}
