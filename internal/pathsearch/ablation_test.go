package pathsearch

import (
	"testing"
)

// Ablation benchmarks for the two design choices DESIGN.md calls out in
// the block engine: the shared canonical result cache and the
// Warnsdorff branch ordering. Run with
//
//	go test -bench=Ablation ./internal/pathsearch
//
// Expected shape: the cache turns repeat queries into map hits (orders
// of magnitude), and the heuristic cuts the cold Hamiltonian search by
// keeping the branching factor near one.

func lemma4Sweep(b *testing.B, noCache, noHeuristic bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for f := 0; f < BlockOrder; f++ {
			forb := uint32(1) << uint(f)
			for u := 0; u < BlockOrder; u += 3 { // subsample: identical work per variant
				if u == f {
					continue
				}
				for a := Canon.Adjacency(uint8(u)) &^ forb; a != 0; a &= a - 1 {
					v := trailingZeros(a)
					q := Query{From: uint8(u), To: v, ForbidV: forb, Target: 22,
						NoCache: noCache, NoHeuristic: noHeuristic}
					if _, ok := Canon.FindPath(q); !ok {
						b.Fatal("path missing")
					}
				}
			}
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B)    { lemma4Sweep(b, false, false) }
func BenchmarkAblationNoCache(b *testing.B)     { lemma4Sweep(b, true, false) }
func BenchmarkAblationNoHeuristic(b *testing.B) { lemma4Sweep(b, true, true) }

// TestAblationVariantsAgree pins correctness: all switch combinations
// find paths for exactly the same queries.
func TestAblationVariantsAgree(t *testing.T) {
	for f := 0; f < BlockOrder; f++ {
		forb := uint32(1) << uint(f)
		for u := 0; u < BlockOrder; u += 5 {
			for v := 0; v < BlockOrder; v += 3 {
				if u == f || v == f || u == v {
					continue
				}
				base := Query{From: uint8(u), To: uint8(v), ForbidV: forb, Target: 22}
				_, ok1 := Canon.FindPath(base)
				noCache := base
				noCache.NoCache = true
				_, ok2 := Canon.FindPath(noCache)
				plain := base
				plain.NoCache, plain.NoHeuristic = true, true
				_, ok3 := Canon.FindPath(plain)
				if ok1 != ok2 || ok2 != ok3 {
					t.Fatalf("variants disagree at f=%d u=%d v=%d: %v %v %v", f, u, v, ok1, ok2, ok3)
				}
			}
		}
	}
}
