package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/perm"
)

// TraceHeader is the request/response header carrying the 16-hex-digit
// trace id. A client that sets it has the whole server-side timeline —
// op spans, event-log records, flight-recorder entries — filed under
// its own id (reconstruct with starmon -postmortem); the server always
// echoes the effective id back, minting a fresh one when the header is
// absent or malformed.
const TraceHeader = "X-Star-Trace"

// Config sizes the service.
type Config struct {
	// MinN..MaxN is the range of served dimensions; one engine pool is
	// built per dimension. Defaults: 3..7.
	MinN, MaxN int
	// PoolSize is the number of Embedders per dimension (default 2).
	PoolSize int
	// MaxInflight caps concurrently admitted requests across all routes;
	// beyond it requests are shed with 429. <= 0 disables the cap.
	MaxInflight int
	// MaxQueue caps callers queued per pool shard waiting for an engine;
	// beyond it requests are shed with 429. <= 0 disables the cap.
	MaxQueue int
	// BestEffort, Workers, VerifyRepairs seed the pooled engines'
	// core.Config (a request's best_effort flag can still override per
	// call via Embedder.Reuse).
	BestEffort    bool
	Workers       int
	VerifyRepairs bool
	// Chaos enables the /chaos route, which fails with a deterministic
	// 500 — the overload drill's 5xx source for flight-dump coverage.
	Chaos bool
	// Obs is the service registry; nil gets a fresh private one. Attach
	// the event log and flight recorder to it BEFORE calling New so the
	// middleware's 5xx hook and /debug/flight find them.
	Obs *obs.Registry
}

func (c *Config) setDefaults() {
	if c.MinN == 0 {
		c.MinN = 3
	}
	if c.MaxN == 0 {
		c.MaxN = 7
	}
	if c.PoolSize == 0 {
		c.PoolSize = 2
	}
}

// Server is the embedding service: the HTTP mux, the per-dimension
// engine pools, and the request-scoped observability pipeline (see the
// package comment). Build one with New, expose Handler on any
// http.Server, and optionally Warm it before accepting traffic.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	red   *red
	pools []*pool // indexed by dimension; nil outside [MinN, MaxN]
	mux   *http.ServeMux

	// inflight is the admission count the middleware checks; inflightG
	// mirrors it into the serve.inflight gauge for the exposition.
	inflight  atomic.Int64
	inflightG *obs.Gauge
	warming   *obs.Gauge
	shed      *obs.Counter
	errChaos  error
	errShed   error
	errNoPool error
}

// New validates cfg, builds the pools and the pre-resolved metric
// tables, and wires the mux. It does not warm the pools; call Warm (or
// let the first requests pay the cache fill).
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.MinN < 3 || cfg.MaxN > perm.MaxN || cfg.MinN > cfg.MaxN {
		return nil, fmt.Errorf("serve: dimension range [%d,%d] outside [3,%d]", cfg.MinN, cfg.MaxN, perm.MaxN)
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Obs,
		red:       newRED(cfg.Obs, cfg.MinN, cfg.MaxN),
		pools:     make([]*pool, cfg.MaxN+1),
		shed:      cfg.Obs.Counter("serve.shed"),
		errChaos:  errors.New("serve: chaos: injected failure"),
		errShed:   errors.New("serve: overloaded"),
		errNoPool: errors.New("serve: dimension not served"),
	}
	s.inflightG = cfg.Obs.Gauge("serve.inflight")
	s.warming = cfg.Obs.Gauge("serve.warming")
	depth := s.reg.GaugeVec("serve.queue_depth", "n")
	ecfg := core.Config{
		Workers:       cfg.Workers,
		BestEffort:    cfg.BestEffort,
		VerifyRepairs: cfg.VerifyRepairs,
		Obs:           cfg.Obs,
	}
	for n := cfg.MinN; n <= cfg.MaxN; n++ {
		p, err := newPool(n, cfg.PoolSize, cfg.MaxQueue, ecfg, depth.With("n", strconv.Itoa(n)))
		if err != nil {
			return nil, err
		}
		s.pools[n] = p
	}

	s.mux = http.NewServeMux()
	s.mux.Handle("/embed", s.wrap(routeEmbed, s.handleEmbed))
	s.mux.Handle("/repair", s.wrap(routeRepair, s.handleRepair))
	s.mux.Handle("/ring", s.wrap(routeRing, s.handleRing))
	if cfg.Chaos {
		s.mux.Handle("/chaos", s.wrap(routeChaos, s.handleChaos))
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", export.MetricsHandler(s.reg))
	if f := s.reg.Flight(); f != nil {
		s.mux.Handle("/debug/flight", export.FlightHandler(f))
	}
	return s, nil
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the service registry (for /metrics co-hosting and
// tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Warm primes every pool's shared caches with one fault-free
// embedding per dimension. /readyz reports 503 until it returns.
func (s *Server) Warm() error {
	s.warming.Set(1)
	defer s.warming.Set(0)
	for n := s.cfg.MinN; n <= s.cfg.MaxN; n++ {
		if err := s.pools[n].warm(); err != nil {
			return fmt.Errorf("serve: warm n=%d: %w", n, err)
		}
	}
	return nil
}

// pool returns the shard for dimension n, nil when n is outside the
// served range.
func (s *Server) pool(n int) *pool {
	if n < s.cfg.MinN || n > s.cfg.MaxN {
		return nil
	}
	return s.pools[n]
}

// nIndex maps a request dimension onto its requests-table slot; out of
// range (including the pre-parse 0) lands in the catch-all slot 0.
func (s *Server) nIndex(n int) int {
	if n < s.cfg.MinN || n > s.cfg.MaxN {
		return 0
	}
	return n
}

// handlerFunc is one route's logic: it writes the response and reports
// the dimension it served (0 when rejected before parsing), the status
// code it wrote, and the error behind a non-2xx (recorded to the event
// log, and to the flight recorder on 5xx).
type handlerFunc func(w http.ResponseWriter, r *http.Request, op *obs.Op) (n, code int, err error)

// wrap is the observability middleware. Per request it:
//
//  1. admits or sheds (429 once inflight exceeds Config.MaxInflight),
//  2. opens a serve.op.request op continuing the X-Star-Trace trace id
//     (fresh when absent/malformed) and echoes the id in the response,
//  3. runs the route handler under that op,
//  4. logs the structured serve.request event,
//  5. notes any 5xx to the flight recorder (auto-dumping when armed),
//  6. feeds the pre-resolved RED families through red.observe, with
//     the trace id riding the latency exemplar.
func (s *Server) wrap(ri int, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := s.inflight.Add(1)
		s.inflightG.Add(1)
		defer func() {
			s.inflight.Add(-1)
			s.inflightG.Add(-1)
		}()

		// A malformed header is not worth a 400: the request is still
		// serviceable, it just gets a fresh trace (and learns the id from
		// the echo).
		trace, _ := obs.ParseTraceID(r.Header.Get(TraceHeader))
		op := s.reg.StartOpTrace("serve.op.request", trace)
		w.Header().Set(TraceHeader, op.Trace().String())

		var n, code int
		var err error
		if s.cfg.MaxInflight > 0 && cur > int64(s.cfg.MaxInflight) {
			code, err = s.shedRequest(w)
		} else {
			n, code, err = h(w, r, op)
		}

		d := op.Done()
		if op.Enabled(obs.LevelInfo) {
			op.Log(obs.LevelInfo, "serve.request",
				obs.F("route", routeNames[ri]), obs.F("code", code),
				obs.F("n", n), obs.F("dur_ns", d.Nanoseconds()))
		}
		if code >= 500 {
			// After Done and the event record, so an auto-dumped bundle
			// already contains this request's full timeline.
			s.reg.Flight().NoteError(op.Trace(), op.SpanID(), "serve."+routeNames[ri], err)
		}
		s.red.observe(ri, codeIndex(code), s.nIndex(n), code, d, op.Trace())
	})
}

// shedRequest writes the 429 load-shed response.
func (s *Server) shedRequest(w http.ResponseWriter) (int, error) {
	s.shed.Inc()
	http.Error(w, s.errShed.Error(), http.StatusTooManyRequests)
	return http.StatusTooManyRequests, s.errShed
}

// statusFor maps an engine error onto a response code: a fault set
// beyond the paper's budget is the caller's problem (400), anything
// else is ours (500).
func statusFor(err error) int {
	if errors.Is(err, core.ErrBudget) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// session runs fn with a pooled engine for req's dimension, embedding
// req.Faults first — the shared prologue of every API route. It
// handles the unserved-dimension 400, the queue-shed 429, and the
// embed-error mapping; fn only sees a healthy plan.
func (s *Server) session(w http.ResponseWriter, req *Request, op *obs.Op,
	fn func(eng *core.Embedder, plan *core.Plan) (int, error)) (int, int, error) {
	p := s.pool(req.N)
	if p == nil {
		err := fmt.Errorf("%w: n=%d outside [%d,%d]", s.errNoPool, req.N, s.cfg.MinN, s.cfg.MaxN)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return req.N, http.StatusBadRequest, err
	}
	eng, ok := p.acquire()
	if !ok {
		code, err := s.shedRequest(w)
		return req.N, code, err
	}
	defer p.release(eng)
	if req.BestEffort != eng.Config().BestEffort {
		cfg := eng.Config()
		cfg.BestEffort = req.BestEffort
		eng = eng.Reuse(cfg)
	}
	plan, err := eng.EmbedOp(op, req.Faults)
	if err != nil {
		code := statusFor(err)
		http.Error(w, err.Error(), code)
		return req.N, code, err
	}
	code, err := fn(eng, plan)
	return req.N, code, err
}

// embedResponse is the JSON body of /embed and /repair.
type embedResponse struct {
	N            int    `json:"n"`
	Length       int    `json:"length"`
	Guarantee    int    `json:"guarantee"`
	Guaranteed   bool   `json:"guaranteed"`
	VertexFaults int    `json:"vertex_faults"`
	EdgeFaults   int    `json:"edge_faults"`
	Blocks       int    `json:"blocks"`
	Streaming    bool   `json:"streaming,omitempty"`
	Repair       string `json:"repair,omitempty"`
	OldLength    int    `json:"old_length,omitempty"`
	Rerouted     int    `json:"blocks_rerouted,omitempty"`
}

func writeJSON(w http.ResponseWriter, v interface{}) (int, error) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a 5xx status (the 200 header is out), but the
		// middleware still files the failure.
		return http.StatusOK, err
	}
	return http.StatusOK, nil
}

// handleEmbed answers GET /embed?n=6&fv=...&fe=...[&best_effort=1]
// with the embedding summary.
func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request, op *obs.Op) (int, int, error) {
	req, err := ParseRequest(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return 0, http.StatusBadRequest, err
	}
	return s.session(w, req, op, func(_ *core.Embedder, plan *core.Plan) (int, error) {
		res := plan.Result()
		return writeJSON(w, embedResponse{
			N: req.N, Length: res.Len(),
			Guarantee: res.Guarantee, Guaranteed: res.Guaranteed,
			VertexFaults: res.VertexFaults, EdgeFaults: res.EdgeFaults,
			Blocks: res.Blocks, Streaming: plan.Streaming(),
		})
	})
}

// handleRepair answers GET /repair?n=6&fv=...&v=NEWFAULT: it embeds
// around the prior faults, folds the new one in through the plan's
// repair path, and reports what the repair did.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request, op *obs.Op) (int, int, error) {
	req, err := ParseRequest(r.URL.Query())
	if err == nil && !req.HasV {
		err = errors.New("serve: /repair needs v=<vertex> (the new fault)")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return 0, http.StatusBadRequest, err
	}
	return s.session(w, req, op, func(_ *core.Embedder, plan *core.Plan) (int, error) {
		old := plan.RingLen()
		rep, err := plan.RepairOp(op, req.V)
		if err != nil {
			code := statusFor(err)
			http.Error(w, err.Error(), code)
			return code, err
		}
		res := plan.Result()
		return writeJSON(w, embedResponse{
			N: req.N, Length: res.Len(),
			Guarantee: res.Guarantee, Guaranteed: res.Guaranteed,
			VertexFaults: res.VertexFaults, EdgeFaults: res.EdgeFaults,
			Blocks: res.Blocks, Streaming: plan.Streaming(),
			Repair: rep.Outcome.String(), OldLength: old, Rerouted: rep.BlocksRerouted,
		})
	})
}

// handleRing answers GET /ring?n=6&fv=... with the full ring, one
// vertex per line in permutation notation, streamed through the
// plan's cursor.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request, op *obs.Op) (int, int, error) {
	req, err := ParseRequest(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return 0, http.StatusBadRequest, err
	}
	return s.session(w, req, op, func(_ *core.Embedder, plan *core.Plan) (int, error) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		c := plan.Cursor()
		for {
			v, ok := c.Next()
			if !ok {
				break
			}
			if _, err := fmt.Fprintln(w, v.StringN(req.N)); err != nil {
				return http.StatusOK, err // client went away mid-stream
			}
		}
		return http.StatusOK, c.Err()
	})
}

// handleChaos (only routed under Config.Chaos) fails deterministically
// with a 500, exercising the flight-recorder auto-dump path end to end
// — the overload drill's 5xx source.
func (s *Server) handleChaos(w http.ResponseWriter, _ *http.Request, _ *obs.Op) (int, int, error) {
	http.Error(w, s.errChaos.Error(), http.StatusInternalServerError)
	return 0, http.StatusInternalServerError, s.errChaos
}

// healthState is the JSON body of /healthz and /readyz.
type healthState struct {
	Ready       bool         `json:"ready"`
	Warming     bool         `json:"warming"`
	Inflight    int64        `json:"inflight"`
	MaxInflight int          `json:"max_inflight"`
	Pools       []poolHealth `json:"pools"`
}

type poolHealth struct {
	N         int  `json:"n"`
	Size      int  `json:"size"`
	Saturated bool `json:"saturated"`
}

func (s *Server) health() healthState {
	h := healthState{
		Warming:     s.warming.Value() != 0,
		Inflight:    s.inflight.Load(),
		MaxInflight: s.cfg.MaxInflight,
	}
	saturated := true
	for n := s.cfg.MinN; n <= s.cfg.MaxN; n++ {
		p := s.pools[n]
		sat := p.saturated()
		saturated = saturated && sat
		h.Pools = append(h.Pools, poolHealth{N: n, Size: cap(p.engines), Saturated: sat})
	}
	overAdmission := s.cfg.MaxInflight > 0 && h.Inflight >= int64(s.cfg.MaxInflight)
	h.Ready = !h.Warming && !saturated && !overAdmission
	return h
}

// handleHealthz is liveness: 200 as long as the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_, _ = writeJSON(w, s.health())
}

// handleReadyz is readiness: 503 while warming, while every pool is
// saturated, or while the admission limit is reached — the signals a
// balancer should drain on.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(h)
}
