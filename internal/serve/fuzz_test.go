package serve

import (
	"net/url"
	"strings"
	"testing"

	"repro/internal/perm"
)

// FuzzServeRequest throws arbitrary query strings at the HTTP request
// decoder — the server's outermost attacker-controlled surface — and
// checks its invariants: no panic, and every accepted request is
// internally consistent (dimension in range, every parsed fault valid
// for that dimension, fault counts within the decoder caps, the
// repair vertex well-formed). This is the target the scripts/ci.sh
// fuzz smoke leg exercises.
func FuzzServeRequest(f *testing.F) {
	for _, seed := range []string{
		"n=6",
		"n=5&fv=21345,31245&fe=12345-21345&v=41235&best_effort=1",
		"n=4&fv=2134",
		"n=16&fv=" + strings.Repeat("2134567898abcdefg,", 3),
		"n=3&v=213&best_effort=true",
		"n=-1",
		"n=999999999999999999999",
		"fv=21345",
		"n=6&fe=--",
		"n=6&fe=123456-123456",
		"n=6&best_effort=yes",
		"n=6&fv=%2C%2C",
		"n=6&fv=" + strings.Repeat("213456,", 80),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return // not this decoder's input space
		}
		req, err := ParseRequest(q)
		if err != nil {
			if req != nil {
				t.Fatalf("ParseRequest(%q) returned both a request and %v", raw, err)
			}
			return
		}
		if req.N < 3 || req.N > perm.MaxN {
			t.Fatalf("accepted out-of-range n=%d from %q", req.N, raw)
		}
		if req.Faults.N() != req.N {
			t.Fatalf("fault set dimension %d != n=%d from %q", req.Faults.N(), req.N, raw)
		}
		if nv := req.Faults.NumVertices(); nv > MaxRequestVertexFaults {
			t.Fatalf("accepted %d vertex faults (cap %d) from %q", nv, MaxRequestVertexFaults, raw)
		}
		if ne := req.Faults.NumEdges(); ne > MaxRequestEdgeFaults {
			t.Fatalf("accepted %d edge faults (cap %d) from %q", ne, MaxRequestEdgeFaults, raw)
		}
		for _, v := range req.Faults.Vertices() {
			if !v.Valid(req.N) {
				t.Fatalf("accepted invalid faulty vertex %#v for S_%d from %q", v, req.N, raw)
			}
		}
		if req.HasV && !req.V.Valid(req.N) {
			t.Fatalf("accepted invalid repair vertex %#v for S_%d from %q", req.V, req.N, raw)
		}
		if !req.HasV && req.V != 0 {
			t.Fatalf("HasV=false but V=%#v from %q", req.V, raw)
		}
	})
}
