// Package serve is the embedding-as-a-service layer behind
// cmd/starserve: a stdlib HTTP surface over the sessionful
// core.Embedder/Plan API with per-dimension embedder pools, admission
// control with load shedding, and a request-scoped observability
// pipeline — every request runs under an obs.Op whose trace id is
// accepted from and echoed via the X-Star-Trace header, is measured
// into labeled serve.* RED families, and auto-dumps the flight
// recorder on any 5xx.
package serve

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/perm"
)

// Decoder limits: a request may name at most this many explicit faults
// of each kind. The paper's budget (n-3) is far smaller, but
// best-effort mode accepts arbitrarily degraded sets, so the decoder
// bounds the parse work instead of trusting the budget to.
const (
	MaxRequestVertexFaults = 64
	MaxRequestEdgeFaults   = 64
)

// Request is one decoded API call: the dimension, the fault set the
// ring must avoid, the optional repair vertex, and the best-effort
// flag. It is produced by ParseRequest and consumed by the route
// handlers.
type Request struct {
	N          int
	Faults     *faults.Set
	V          perm.Code // repair vertex (/repair only)
	HasV       bool
	BestEffort bool
}

// ParseRequest decodes the query parameters shared by every API route:
//
//	n            star-graph dimension, required, 3..perm.MaxN
//	fv           comma-separated faulty vertices ("213456,312456")
//	fe           comma-separated faulty edges as u-v pairs
//	v            one vertex (the fault /repair folds into the plan)
//	best_effort  "1"/"true": accept fault sets beyond the n-3 budget
//
// Fault budget enforcement is the engine's job (core.ErrBudget); the
// decoder enforces only syntax, dimensional consistency, and the
// MaxRequest*Faults parse bounds.
func ParseRequest(q url.Values) (*Request, error) {
	ns := q.Get("n")
	if ns == "" {
		return nil, fmt.Errorf("serve: missing required parameter n")
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return nil, fmt.Errorf("serve: bad n %q: %w", ns, err)
	}
	if n < 3 || n > perm.MaxN {
		return nil, fmt.Errorf("serve: n=%d out of range [3,%d]", n, perm.MaxN)
	}

	req := &Request{N: n, Faults: faults.NewSet(n)}

	if fv := q.Get("fv"); fv != "" {
		parts := strings.Split(fv, ",")
		if len(parts) > MaxRequestVertexFaults {
			return nil, fmt.Errorf("serve: %d vertex faults exceed the request cap %d",
				len(parts), MaxRequestVertexFaults)
		}
		for _, s := range parts {
			if err := req.Faults.AddVertexString(strings.TrimSpace(s)); err != nil {
				return nil, fmt.Errorf("serve: fv: %w", err)
			}
		}
	}
	if fe := q.Get("fe"); fe != "" {
		parts := strings.Split(fe, ",")
		if len(parts) > MaxRequestEdgeFaults {
			return nil, fmt.Errorf("serve: %d edge faults exceed the request cap %d",
				len(parts), MaxRequestEdgeFaults)
		}
		for _, s := range parts {
			u, v, err := parseEdge(strings.TrimSpace(s), n)
			if err != nil {
				return nil, err
			}
			if err := req.Faults.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("serve: fe: %w", err)
			}
		}
	}
	if vs := q.Get("v"); vs != "" {
		v, err := parseVertex(vs, n)
		if err != nil {
			return nil, fmt.Errorf("serve: v: %w", err)
		}
		req.V, req.HasV = v, true
	}
	switch be := q.Get("best_effort"); be {
	case "", "0", "false":
	case "1", "true":
		req.BestEffort = true
	default:
		return nil, fmt.Errorf("serve: bad best_effort %q (want 1/true/0/false)", be)
	}
	return req, nil
}

// parseVertex reads one vertex of S_n in permutation notation.
func parseVertex(s string, n int) (perm.Code, error) {
	p, err := perm.Parse(s)
	if err != nil {
		return 0, err
	}
	if p.N() != n {
		return 0, fmt.Errorf("%q has dimension %d, want %d", s, p.N(), n)
	}
	return perm.Pack(p), nil
}

// parseEdge reads one "u-v" edge of S_n.
func parseEdge(s string, n int) (u, v perm.Code, err error) {
	uv := strings.SplitN(s, "-", 2)
	if len(uv) != 2 {
		return 0, 0, fmt.Errorf("serve: fe: bad edge %q, want u-v", s)
	}
	if u, err = parseVertex(uv[0], n); err != nil {
		return 0, 0, fmt.Errorf("serve: fe: %w", err)
	}
	if v, err = parseVertex(uv[1], n); err != nil {
		return 0, 0, fmt.Errorf("serve: fe: %w", err)
	}
	return u, v, nil
}
