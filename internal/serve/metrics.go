package serve

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/perm"
)

// The instrumented API routes, indexed by the constants below. The
// health/metrics endpoints are deliberately absent: scraping /metrics
// must not move the request curves it reports.
const (
	routeEmbed = iota
	routeRepair
	routeRing
	routeChaos
	numRoutes
)

// routeNames maps route indexes to their label values.
var routeNames = [numRoutes]string{"embed", "repair", "ring", "chaos"}

// The response codes the server emits, indexed for the pre-resolved
// handle tables. Anything else (there is nothing else today) falls
// into the 500 slot rather than minting an unbounded label value.
var redCodes = [...]int{200, 400, 404, 429, 500}

// codeIndex maps a status code onto its redCodes slot.
func codeIndex(code int) int {
	for i, c := range redCodes {
		if c == code {
			return i
		}
	}
	return len(redCodes) - 1
}

// red holds the server's RED metric families with every handle
// resolved at construction, so the per-request path is pure array
// indexing plus atomic updates — no map lookups, no label encoding,
// no allocation. The hotalloc analyzer enforces that on observe via
// the .starlint hotpath entry.
//
// Families (see the README glossary):
//
//	serve.requests{route,code,n}  counter   every completed request
//	serve.errors{route,code}      counter   4xx/5xx responses
//	serve.good{route}             counter   non-error responses
//	serve.latency{route}          histogram request latency + exemplars
type red struct {
	// requests is indexed [route][code][n]; n slots outside the served
	// range stay nil (a nil Counter is a no-op) and such requests are
	// recorded under the n=0 slot by Server.nIndex.
	requests [numRoutes][len(redCodes)][perm.MaxN + 1]*obs.Counter
	errors   [numRoutes][len(redCodes)]*obs.Counter
	good     [numRoutes]*obs.Counter
	latency  [numRoutes]*obs.Histogram
}

// newRED resolves every handle the middleware will touch for
// dimensions minN..maxN (plus the n=0 slot that absorbs requests shed
// or rejected before a dimension is known).
func newRED(reg *obs.Registry, minN, maxN int) *red {
	rv := reg.CounterVec("serve.requests", "route", "code", "n")
	ev := reg.CounterVec("serve.errors", "route", "code")
	gv := reg.CounterVec("serve.good", "route")
	lv := reg.HistogramVec("serve.latency", "route")

	m := &red{}
	for ri, route := range routeNames {
		m.good[ri] = gv.With("route", route)
		m.latency[ri] = lv.With("route", route)
		for ci, code := range redCodes {
			cs := strconv.Itoa(code)
			m.errors[ri][ci] = ev.With("route", route, "code", cs)
			m.requests[ri][ci][0] = rv.With("route", route, "code", cs, "n", "0")
			for n := minN; n <= maxN; n++ {
				m.requests[ri][ci][n] = rv.With("route", route, "code", cs, "n", strconv.Itoa(n))
			}
		}
	}
	return m
}

// observe is the middleware's metric fast path: one call per request,
// after the response is written. ri/ci/ni are pre-clamped indexes into
// the handle tables (routeIndex, codeIndex, Server.nIndex); code is
// the actual response status; trace rides into the latency exemplar
// reservoir so a slow quantile links to its request trace. Kept
// allocation-free by the hotalloc analyzer (.starlint hotpath entry).
func (m *red) observe(ri, ci, ni, code int, d time.Duration, trace obs.TraceID) {
	m.requests[ri][ci][ni].Inc()
	if code >= 400 {
		m.errors[ri][ci].Inc()
	} else {
		m.good[ri].Inc()
	}
	m.latency[ri].ObserveTrace(d, trace)
}
