package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestRunLoadFaultChurn(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, PoolSize: 2, Chaos: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(LoadConfig{
		Target:      ts.URL,
		N:           4,
		Requests:    40,
		Concurrency: 2,
		Seed:        1,
		RingEvery:   7,
		ChaosEvery:  10,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var total int64
	for route, st := range res.Routes {
		total += st.Count
		if st.Count > 0 && st.MaxNS == 0 {
			t.Errorf("route %s: %d requests but MaxNS=0 (latency not measured)", route, st.Count)
		}
		if st.P95NS < st.P50NS || st.MaxNS < st.P95NS {
			t.Errorf("route %s: quantiles out of order: %+v", route, st)
		}
	}
	if total != 40 {
		t.Fatalf("tallied %d requests, want 40", total)
	}
	for _, route := range []string{"embed", "repair", "ring", "chaos"} {
		if res.Routes[route] == nil {
			t.Errorf("churn never hit /%s: %+v", route, res.Routes)
		}
	}
	// The chaos injections are client-visible errors...
	if ch := res.Routes["chaos"]; ch != nil && ch.Errors != ch.Count {
		t.Errorf("chaos: %d errors of %d requests, want all", ch.Errors, ch.Count)
	}
	// ...and the healthy routes are clean.
	for _, route := range []string{"embed", "repair", "ring"} {
		if st := res.Routes[route]; st != nil && (st.Errors != 0 || st.Shed != 0) {
			t.Errorf("route %s: errors=%d shed=%d, want clean", route, st.Errors, st.Shed)
		}
	}

	// Server-side RED agrees on the totals: every client request landed
	// in exactly one serve.requests series.
	var served int64
	for ri := range routeNames {
		for ci := range redCodes {
			for n := 0; n < len(s.red.requests[ri][ci]); n++ {
				served += s.red.requests[ri][ci][n].Value()
			}
		}
	}
	if served != total {
		t.Errorf("server RED counted %d requests, client sent %d", served, total)
	}

	// The artifact round-trips through the bench ingester's sniffer
	// shape: {"serve_load": {...}}.
	var buf bytes.Buffer
	if err := res.BenchJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]*LoadResult
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["serve_load"] == nil || doc["serve_load"].Routes["repair"] == nil {
		t.Fatalf("BenchJSON artifact malformed: %s", buf.String())
	}
}

func TestRunLoadShedTally(t *testing.T) {
	// An overloaded server, deterministically: the single admission slot
	// is pre-occupied, so every load request is shed with 429 — and the
	// client-side tally must agree with the server's serve.shed counter.
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, PoolSize: 1, MaxInflight: 1})
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(LoadConfig{
		Target:      ts.URL,
		N:           4,
		Requests:    30,
		Concurrency: 3,
		Seed:        2,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var shed int64
	for _, st := range res.Routes {
		shed += st.Shed
		if st.Errors != 0 {
			t.Errorf("429s must tally as Shed, not Errors: %+v", st)
		}
	}
	if shed != 30 {
		t.Fatalf("fully overloaded server shed %d of 30", shed)
	}
	if got := s.shed.Value(); got != shed {
		t.Errorf("server serve.shed=%d, client tallied %d", got, shed)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Error("RunLoad without Target should fail")
	}
	if _, err := RunLoad(LoadConfig{Target: "http://x", N: 99}); err == nil {
		t.Error("RunLoad with absurd N should fail")
	}
}
