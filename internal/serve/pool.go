package serve

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// pool is the per-dimension Embedder shard: a fixed set of warmed
// engines for one S_n behind a buffered channel. Acquire admits up to
// size concurrent borrowers immediately; beyond that callers queue,
// and once the queue itself exceeds maxQueue the request is shed so a
// burst degrades into fast 429s instead of an unbounded latency tail.
type pool struct {
	n       int
	engines chan *core.Embedder
	// queued counts callers blocked in Acquire; maxQueue <= 0 disables
	// shedding (unbounded queue).
	queued   atomic.Int64
	maxQueue int
	depth    *obs.Gauge // serve.queue_depth{n}
}

func newPool(n, size, maxQueue int, cfg core.Config, depth *obs.Gauge) (*pool, error) {
	if size < 1 {
		size = 1
	}
	p := &pool{n: n, engines: make(chan *core.Embedder, size), maxQueue: maxQueue, depth: depth}
	for i := 0; i < size; i++ {
		e, err := core.NewEmbedder(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: pool n=%d: %w", n, err)
		}
		p.engines <- e
	}
	return p, nil
}

// warm forces the shared per-dimension caches hot. One engine suffices:
// the substrate they prime is process-wide.
func (p *pool) warm() error {
	e := <-p.engines
	err := e.Warm()
	p.engines <- e
	return err
}

// acquire borrows an engine, queueing when the shard is busy. It
// returns ok=false — without blocking — when the queue is already at
// its admission limit; the caller turns that into a 429.
func (p *pool) acquire() (*core.Embedder, bool) {
	select {
	case e := <-p.engines:
		return e, true
	default:
	}
	q := p.queued.Add(1)
	if p.maxQueue > 0 && q > int64(p.maxQueue) {
		p.queued.Add(-1)
		return nil, false
	}
	p.depth.Add(1)
	e := <-p.engines
	p.depth.Add(-1)
	p.queued.Add(-1)
	return e, true
}

// release returns a borrowed engine to the shard.
func (p *pool) release(e *core.Embedder) { p.engines <- e }

// saturated reports whether every engine is currently borrowed — the
// readiness signal: a saturated shard still serves, but new load will
// queue or shed.
func (p *pool) saturated() bool { return len(p.engines) == 0 }
