package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

// syncBuffer lets the event log write from handler goroutines while
// the test reads it back after the server drains.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// testServer builds a fully instrumented server (recorder sink, event
// log, flight recorder) over a small dimension range.
func testServer(t *testing.T, cfg Config) (*Server, *obs.Recorder, *syncBuffer) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(1024)
	reg.SetSink(rec)
	logBuf := &syncBuffer{}
	reg.SetEventLog(obs.NewEventLog(logBuf, obs.LevelDebug, reg.Clock()))
	obs.NewFlightRecorder(reg, 128)
	cfg.Obs = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec, logBuf
}

func TestTraceRoundTrip(t *testing.T) {
	s, rec, logBuf := testServer(t, Config{MinN: 4, MaxN: 4, PoolSize: 1})
	ts := httptest.NewServer(s.Handler())

	const wantHex = "00000000deadbeef"
	want, err := obs.ParseTraceID(wantHex)
	if err != nil || want == 0 {
		t.Fatalf("ParseTraceID(%q) = %v, %v", wantHex, want, err)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/embed?n=4&fv=2134", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, wantHex)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/embed: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(TraceHeader); got != wantHex {
		t.Fatalf("echoed %s = %q, want %q", TraceHeader, got, wantHex)
	}
	// Close waits for the in-flight handler (and its middleware tail) to
	// finish, so spans and log records are complete below.
	ts.Close()

	// The client trace id must be on the request op's spans — the root
	// serve.op.request span and the engine's phase spans under it.
	var sawRoot, sawPhase bool
	for _, e := range rec.Events() {
		if e.Trace != want {
			continue
		}
		switch e.Name {
		case "serve.op.request":
			sawRoot = true
		case "core.phase.total":
			sawPhase = true
		}
	}
	if !sawRoot || !sawPhase {
		t.Errorf("spans under trace %s: root=%v phase=%v, want both", wantHex, sawRoot, sawPhase)
	}

	// ... and on the event-log records, both the middleware's
	// serve.request summary and the engine's core.embed narrative.
	recs, err := obs.ReadLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sawServe, sawEmbed bool
	for _, r := range recs {
		if r.Trace != want {
			continue
		}
		switch r.Event {
		case "serve.request":
			sawServe = true
			if r.Fields["route"] != "embed" {
				t.Errorf("serve.request route = %v, want embed", r.Fields["route"])
			}
		case "core.embed":
			sawEmbed = true
		}
	}
	if !sawServe || !sawEmbed {
		t.Errorf("records under trace %s: serve.request=%v core.embed=%v, want both", wantHex, sawServe, sawEmbed)
	}
}

func TestFreshTraceWhenHeaderAbsentOrMalformed(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, PoolSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, hdr := range []string{"", "not-hex!"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/embed?n=4", nil)
		if hdr != "" {
			req.Header.Set(TraceHeader, hdr)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		echo := resp.Header.Get(TraceHeader)
		if id, err := obs.ParseTraceID(echo); err != nil || id == 0 {
			t.Errorf("header %q: echoed trace %q is not a fresh id (%v, %v)", hdr, echo, id, err)
		}
	}
}

func TestEmbedAndRepairHandlers(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 5, MaxN: 5, PoolSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string, wantCode int) []byte {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: %d, want %d: %s", path, resp.StatusCode, wantCode, body)
		}
		return body
	}

	var em embedResponse
	if err := json.Unmarshal(get("/embed?n=5&fv=21345", http.StatusOK), &em); err != nil {
		t.Fatal(err)
	}
	if em.N != 5 || em.VertexFaults != 1 || em.Length < em.Guarantee || !em.Guaranteed {
		t.Fatalf("embed response: %+v", em)
	}

	var rp embedResponse
	if err := json.Unmarshal(get("/repair?n=5&fv=21345&v=31245", http.StatusOK), &rp); err != nil {
		t.Fatal(err)
	}
	if rp.VertexFaults != 2 || rp.Repair == "" || rp.OldLength == 0 {
		t.Fatalf("repair response: %+v", rp)
	}
	if rp.Repair == "splice" && rp.Length != rp.OldLength-2 {
		t.Fatalf("splice shrank %d -> %d, want exactly 2 shorter", rp.OldLength, rp.Length)
	}

	ring := get("/ring?n=5&fv=21345", http.StatusOK)
	lines := strings.Count(strings.TrimSpace(string(ring)), "\n") + 1
	if lines != em.Length {
		t.Fatalf("/ring returned %d vertices, /embed reported length %d", lines, em.Length)
	}

	// Error mapping: bad syntax and unserved dimensions are 400s, as is
	// a fault set beyond the budget without best_effort.
	get("/embed?n=bogus", http.StatusBadRequest)
	get("/embed?n=7", http.StatusBadRequest)
	get("/repair?n=5&fv=21345", http.StatusBadRequest) // missing v
	get("/embed?n=5&fv=21345,31245,41235", http.StatusBadRequest)
	get("/embed?n=5&fv=21345,31245,41235&best_effort=1", http.StatusOK)
}

func TestInflightShed(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the admission slot synthetically; the next request must be
	// shed before it touches a pool.
	s.inflight.Add(1)
	resp, err := ts.Client().Get(ts.URL + "/embed?n=4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.inflight.Add(-1)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded /embed: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get(TraceHeader) == "" {
		t.Error("shed response lost the trace echo")
	}
	if got := s.shed.Value(); got != 1 {
		t.Errorf("serve.shed = %d, want 1", got)
	}
	// The shed request still lands in the RED tables, under the
	// catch-all n=0 slot.
	if got := s.red.requests[routeEmbed][codeIndex(429)][0].Value(); got != 1 {
		t.Errorf("serve.requests{route=embed,code=429,n=0} = %d, want 1", got)
	}
}

func TestQueueShed(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, PoolSize: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	p := s.pools[4]
	eng, ok := p.acquire()
	if !ok {
		t.Fatal("test could not borrow the only engine")
	}

	// First request queues behind the borrowed engine...
	done := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/embed?n=4")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	for p.queued.Load() == 0 {
		runtime.Gosched()
	}

	// ... so the second exceeds MaxQueue and sheds.
	resp, err := ts.Client().Get(ts.URL + "/embed?n=4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued-out /embed: %d, want 429", resp.StatusCode)
	}

	p.release(eng)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued /embed finished with %d, want 200", code)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, PoolSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("idle /readyz = %d", got)
	}

	s.warming.Set(1)
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("warming /readyz = %d, want 503", got)
	}
	s.warming.Set(0)

	eng, _ := s.pools[4].acquire()
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("saturated /readyz = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("saturated /healthz = %d, want 200 (still alive)", got)
	}
	s.pools[4].release(eng)
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("recovered /readyz = %d", got)
	}
}

func TestChaosFlightAutoDump(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, Chaos: true})
	dir := filepath.Join(t.TempDir(), "flight")
	f := s.Registry().Flight()
	f.SetAutoDump(dir, export.FlightBundleWriter(f))
	ts := httptest.NewServer(s.Handler())

	resp, err := ts.Client().Get(ts.URL + "/chaos?anything=ignored")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("/chaos = %d, want 500", resp.StatusCode)
	}
	trace := resp.Header.Get(TraceHeader)
	ts.Close()

	if got := s.Registry().Counter("obs.flight.errors").Value(); got != 1 {
		t.Errorf("obs.flight.errors = %d, want 1", got)
	}
	data, err := os.ReadFile(filepath.Join(dir, "flight-events.ndjson"))
	if err != nil {
		t.Fatalf("auto-dumped bundle missing: %v", err)
	}
	for _, want := range []string{"obs.flight.error", "serve.chaos", trace} {
		if !strings.Contains(string(data), want) {
			t.Errorf("flight-events.ndjson missing %q", want)
		}
	}
	// The RED error family saw the 5xx too.
	if got := s.red.errors[routeChaos][codeIndex(500)].Value(); got != 1 {
		t.Errorf("serve.errors{route=chaos,code=500} = %d, want 1", got)
	}
}

func TestChaosRouteAbsentByDefault(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/chaos")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/chaos without Config.Chaos = %d, want 404", resp.StatusCode)
	}
}

func TestMetricsEndpointExposesLabeledFamilies(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 4, MaxN: 4, PoolSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/embed?n=4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := export.ValidateOpenMetrics(scrape); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		`serve_requests_total{code="200",n="4",route="embed"} 1`,
		`serve_latency{quantile=`,
		`serve_inflight 0`,
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestWarm(t *testing.T) {
	s, _, _ := testServer(t, Config{MinN: 3, MaxN: 4, PoolSize: 1})
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if s.warming.Value() != 0 {
		t.Error("warming gauge stuck after Warm")
	}
}
