package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/perm"
)

// LoadConfig drives RunLoad, the built-in fault-churn load generator:
// each worker replays the lifecycle of one degrading S_n instance —
// embed fresh, then report one random new vertex fault per /repair
// until the paper's n-3 budget is exhausted, then reset — with
// periodic /ring materializations (and, for overload drills, /chaos
// faults) mixed in.
type LoadConfig struct {
	// Target is the server's base URL ("http://127.0.0.1:8080"),
	// required.
	Target string
	// N is the churned dimension (default 6).
	N int
	// Requests is the total request count across workers (default 200).
	Requests int
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Seed makes the churn sequence reproducible (default 1).
	Seed int64
	// RingEvery makes every k-th request per worker a /ring full
	// materialization (0 = never).
	RingEvery int
	// ChaosEvery makes every k-th request per worker a /chaos injected
	// failure (0 = never); the server must run with Config.Chaos.
	ChaosEvery int
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Clock overrides the latency clock (default obs.Wall).
	Clock obs.Clock
}

func (c *LoadConfig) setDefaults() error {
	if c.Target == "" {
		return fmt.Errorf("serve: load: Target is required")
	}
	if c.N == 0 {
		c.N = 6
	}
	if c.N < 3 || c.N > perm.MaxN {
		return fmt.Errorf("serve: load: n=%d out of range [3,%d]", c.N, perm.MaxN)
	}
	if c.Requests == 0 {
		c.Requests = 200
	}
	if c.Concurrency < 1 {
		c.Concurrency = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Clock == nil {
		c.Clock = obs.Wall
	}
	return nil
}

// RouteLoadStats is one route's client-side view of the run.
type RouteLoadStats struct {
	// Count is every request sent to the route, shed ones included.
	Count int64 `json:"count"`
	// Errors counts non-2xx responses other than 429, plus transport
	// failures.
	Errors int64 `json:"errors"`
	// Shed counts 429 load-shed responses.
	Shed int64 `json:"shed"`
	// P50NS/P95NS/MaxNS summarize the client-observed latency.
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	MaxNS int64 `json:"max_ns"`
}

// LoadResult is the run summary RunLoad returns and BenchJSON encodes.
type LoadResult struct {
	Target      string                     `json:"target"`
	N           int                        `json:"n"`
	Requests    int                        `json:"requests"`
	Concurrency int                        `json:"concurrency"`
	Seed        int64                      `json:"seed"`
	Routes      map[string]*RouteLoadStats `json:"routes"`
}

// BenchJSON writes the result as the {"serve_load": ...} artifact that
// bench.Ingest understands (BENCH_serve.json).
func (r *LoadResult) BenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]*LoadResult{"serve_load": r})
}

// routeTally accumulates one route's stats across workers: atomics for
// the counts, a zero-value obs.Histogram for the latency distribution.
type routeTally struct {
	count, errors, shed atomic.Int64
	lat                 obs.Histogram
}

func (t *routeTally) stats() *RouteLoadStats {
	hs := t.lat.Stats()
	return &RouteLoadStats{
		Count: t.count.Load(), Errors: t.errors.Load(), Shed: t.shed.Load(),
		P50NS: hs.P50NS, P95NS: hs.P95NS, MaxNS: hs.MaxNS,
	}
}

// RunLoad drives the fault-churn workload against cfg.Target and
// returns the per-route latency/error/shed tallies. Every request
// carries its own X-Star-Trace id (derived from the seed), so a slow
// or failed request spotted in the result can be reconstructed from
// the server's flight bundle by that id. The first transport-level
// error aborts the run; HTTP-level errors (including shed 429s) are
// tallied and the run continues.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	base := strings.TrimSuffix(cfg.Target, "/")

	tallies := map[string]*routeTally{}
	for _, route := range routeNames {
		tallies[route] = &routeTally{}
	}

	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	per := cfg.Requests / cfg.Concurrency
	extra := cfg.Requests % cfg.Concurrency
	for w := 0; w < cfg.Concurrency; w++ {
		quota := per
		if w < extra {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, quota int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			churn := newChurn(cfg.N, rng)
			for i := 0; i < quota; i++ {
				route, target := churn.next(base, i, cfg.RingEvery, cfg.ChaosEvery)
				if err := loadRequest(&cfg, tallies[route], rng, target); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w, quota)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}

	res := &LoadResult{
		Target: cfg.Target, N: cfg.N, Requests: cfg.Requests,
		Concurrency: cfg.Concurrency, Seed: cfg.Seed,
		Routes: map[string]*RouteLoadStats{},
	}
	for route, t := range tallies {
		if t.count.Load() > 0 {
			res.Routes[route] = t.stats()
		}
	}
	return res, nil
}

// loadRequest issues one GET, tallies it, and returns only transport
// errors.
func loadRequest(cfg *LoadConfig, tally *routeTally, rng *rand.Rand, target string) error {
	req, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	trace := obs.TraceID(rng.Uint64() | 1)
	req.Header.Set(TraceHeader, trace.String())

	tally.count.Add(1)
	start := cfg.Clock.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		tally.errors.Add(1)
		return fmt.Errorf("serve: load: %s: %w", target, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	tally.lat.ObserveTrace(obs.Since(cfg.Clock, start), trace)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		tally.shed.Add(1)
	case resp.StatusCode >= 400:
		tally.errors.Add(1)
	}
	return nil
}

// churn is one worker's degrading instance: the accumulated fault list
// it reports to the server query by query.
type churn struct {
	n   int
	rng *rand.Rand
	fv  []string
}

func newChurn(n int, rng *rand.Rand) *churn { return &churn{n: n, rng: rng} }

// next picks the i-th request: /chaos and /ring on their configured
// cadence, otherwise the embed-repair-...-repair-reset fault lifecycle.
// It returns the route name (a tally key) and the full URL.
func (c *churn) next(base string, i, ringEvery, chaosEvery int) (route, target string) {
	q := url.Values{}
	q.Set("n", fmt.Sprint(c.n))
	switch {
	case chaosEvery > 0 && i%chaosEvery == chaosEvery-1:
		return "chaos", base + "/chaos?" + q.Encode()
	case ringEvery > 0 && i%ringEvery == ringEvery-1:
		c.setFaults(q)
		return "ring", base + "/ring?" + q.Encode()
	case len(c.fv) >= faults.MaxTolerated(c.n):
		c.fv = c.fv[:0]
		return "embed", base + "/embed?" + q.Encode()
	default:
		v := c.freshFault()
		c.setFaults(q)
		q.Set("v", v)
		c.fv = append(c.fv, v)
		return "repair", base + "/repair?" + q.Encode()
	}
}

func (c *churn) setFaults(q url.Values) {
	if len(c.fv) > 0 {
		q.Set("fv", strings.Join(c.fv, ","))
	}
}

// freshFault draws a uniformly random vertex not already in the fault
// list.
func (c *churn) freshFault() string {
	total := perm.Factorial(c.n)
	for {
		v := perm.Unrank(c.n, c.rng.Intn(total)).String()
		fresh := true
		for _, f := range c.fv {
			if f == v {
				fresh = false
				break
			}
		}
		if fresh {
			return v
		}
	}
}
