package serve

import (
	"net/url"
	"strings"
	"testing"
)

func TestParseRequest(t *testing.T) {
	parse := func(raw string) (*Request, error) {
		t.Helper()
		q, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", raw, err)
		}
		return ParseRequest(q)
	}

	req, err := parse("n=5&fv=21345,31245&fe=12345-21345&v=41235&best_effort=1")
	if err != nil {
		t.Fatal(err)
	}
	if req.N != 5 || req.Faults.NumVertices() != 2 || req.Faults.NumEdges() != 1 ||
		!req.HasV || !req.BestEffort {
		t.Fatalf("full request parsed wrong: %+v (fv=%d fe=%d)",
			req, req.Faults.NumVertices(), req.Faults.NumEdges())
	}

	req, err = parse("n=4")
	if err != nil {
		t.Fatal(err)
	}
	if req.N != 4 || req.Faults.NumVertices() != 0 || req.HasV || req.BestEffort {
		t.Fatalf("minimal request parsed wrong: %+v", req)
	}

	for _, bad := range []string{
		"",                      // missing n
		"n=abc",                 // non-numeric n
		"n=2",                   // below the smallest star graph
		"n=17",                  // above perm.MaxN
		"n=5&fv=2134",           // wrong dimension
		"n=5&fv=21345,notaperm", // junk vertex
		"n=5&fv=11345",          // repeated symbol
		"n=5&fe=12345",          // edge missing the dash
		"n=5&fe=12345-21354",    // not adjacent (not one first-symbol swap apart)
		"n=5&v=2134",            // repair vertex wrong dimension
		"n=5&best_effort=maybe", // unknown flag value
		"n=5&fv=" + strings.Repeat("21345,", MaxRequestVertexFaults) + "21345", // over cap
	} {
		if _, err := parse(bad); err == nil {
			t.Errorf("ParseRequest(%q) accepted, want error", bad)
		}
	}
}

func TestParseRequestDuplicateFaultIdempotent(t *testing.T) {
	q, _ := url.ParseQuery("n=5&fv=21345,21345")
	req, err := ParseRequest(q)
	if err != nil {
		t.Fatalf("duplicate vertex fault should be tolerated by the set: %v", err)
	}
	if got := req.Faults.NumVertices(); got != 1 {
		t.Fatalf("duplicate fault counted twice: %d", got)
	}
}
