// Package ringio serializes embedded rings so that a computed embedding
// can be stored, shipped to the job scheduler of a star-graph machine,
// and re-verified on load. Two formats are provided:
//
//   - a compact binary format: a small header plus one Lehmer rank per
//     vertex, varint-encoded (rings compress well because consecutive
//     vertices differ by one star operation, but ranks keep decoding
//     trivial and dimension-independent);
//   - a line-oriented text format using the paper's permutation
//     notation, for human inspection and interoperability.
//
// Loading re-validates structure: dimensions, vertex validity and the
// declared length must match. Adjacency re-verification is the caller's
// job (internal/check.Ring), since it needs the fault set.
package ringio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/perm"
)

// magic identifies the binary format ("SRG1" = star ring v1).
var magic = [4]byte{'S', 'R', 'G', '1'}

// ErrFormat reports malformed input.
var ErrFormat = errors.New("ringio: malformed input")

// WriteBinary encodes the ring in the compact binary format.
func WriteBinary(w io.Writer, n int, ring []perm.Code) error {
	if n < 1 || n > perm.MaxN {
		return fmt.Errorf("ringio: dimension %d out of range", n)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64 * 2]byte
	k := binary.PutUvarint(hdr[:], uint64(n))
	k += binary.PutUvarint(hdr[k:], uint64(len(ring)))
	if _, err := bw.Write(hdr[:k]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for i, v := range ring {
		if !v.Valid(n) {
			return fmt.Errorf("ringio: entry %d is not a vertex of S_%d", i, n)
		}
		k := binary.PutUvarint(buf[:], uint64(v.Rank(n)))
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a ring written by WriteBinary, re-validating every
// vertex.
func ReadBinary(r io.Reader) (n int, ring []perm.Code, err error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if m != magic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:])
	}
	nn, err := binary.ReadUvarint(br)
	if err != nil || nn < 1 || nn > perm.MaxN {
		return 0, nil, fmt.Errorf("%w: bad dimension", ErrFormat)
	}
	n = int(nn)
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: bad length", ErrFormat)
	}
	total := uint64(perm.Factorial(n))
	if length > total {
		return 0, nil, fmt.Errorf("%w: length %d exceeds n! = %d", ErrFormat, length, total)
	}
	ring = make([]perm.Code, 0, length)
	for i := uint64(0); i < length; i++ {
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: truncated at entry %d", ErrFormat, i)
		}
		if rank >= total {
			return 0, nil, fmt.Errorf("%w: rank %d out of range at entry %d", ErrFormat, rank, i)
		}
		ring = append(ring, perm.Pack(perm.Unrank(n, int(rank))))
	}
	// Trailing garbage is an error: the format is self-delimiting.
	if _, err := br.ReadByte(); err != io.EOF {
		return 0, nil, fmt.Errorf("%w: trailing data", ErrFormat)
	}
	return n, ring, nil
}

// WriteText encodes the ring as a header line "ring n=<n> len=<l>"
// followed by one permutation string per line.
func WriteText(w io.Writer, n int, ring []perm.Code) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "ring n=%d len=%d\n", n, len(ring)); err != nil {
		return err
	}
	for i, v := range ring {
		if !v.Valid(n) {
			return fmt.Errorf("ringio: entry %d is not a vertex of S_%d", i, n)
		}
		if _, err := fmt.Fprintln(bw, v.StringN(n)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text format.
func ReadText(r io.Reader) (n int, ring []perm.Code, err error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return 0, nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	var length int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "ring n=%d len=%d", &n, &length); err != nil {
		return 0, nil, fmt.Errorf("%w: bad header %q", ErrFormat, sc.Text())
	}
	if n < 1 || n > perm.MaxN || length < 0 || length > perm.Factorial(n) {
		return 0, nil, fmt.Errorf("%w: implausible header", ErrFormat)
	}
	ring = make([]perm.Code, 0, length)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		p, err := perm.Parse(line)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if p.N() != n {
			return 0, nil, fmt.Errorf("%w: vertex %q has dimension %d, want %d", ErrFormat, line, p.N(), n)
		}
		ring = append(ring, perm.Pack(p))
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if len(ring) != length {
		return 0, nil, fmt.Errorf("%w: header says %d vertices, read %d", ErrFormat, length, len(ring))
	}
	return n, ring, nil
}
