package ringio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
)

func sampleRing(t *testing.T, n, k int) []perm.Code {
	t.Helper()
	fs := faults.NewSet(n)
	if k > 0 {
		fs.AddVertexString("213456"[:n])
	}
	res, err := core.Embed(n, fs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ring
}

func TestBinaryRoundtrip(t *testing.T) {
	for _, n := range []int{4, 5, 6} {
		ring := sampleRing(t, n, 1)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, n, ring); err != nil {
			t.Fatal(err)
		}
		gotN, got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != n || len(got) != len(ring) {
			t.Fatalf("n=%d len=%d, want n=%d len=%d", gotN, len(got), n, len(ring))
		}
		for i := range got {
			if got[i] != ring[i] {
				t.Fatalf("entry %d differs", i)
			}
		}
	}
}

func TestTextRoundtrip(t *testing.T) {
	n := 5
	ring := sampleRing(t, n, 1)
	var buf bytes.Buffer
	if err := WriteText(&buf, n, ring); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "ring n=5 len=118\n") {
		t.Fatalf("header: %q", buf.String()[:20])
	}
	gotN, got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != n || len(got) != len(ring) {
		t.Fatal("text roundtrip size mismatch")
	}
	for i := range got {
		if got[i] != ring[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestBinaryRejections(t *testing.T) {
	ring := sampleRing(t, 4, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, 4, ring); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XXXX"), data[4:]...),
		"truncated":      data[:len(data)-2],
		"trailing bytes": append(append([]byte{}, data...), 0),
	}
	for name, d := range cases {
		if _, _, err := ReadBinary(bytes.NewReader(d)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}

	// Out-of-range rank.
	var bad bytes.Buffer
	bad.Write([]byte("SRG1"))
	bad.Write([]byte{4, 1})       // n=4, len=1
	bad.Write([]byte{0x80, 0x02}) // varint 256 >= 24
	if _, _, err := ReadBinary(&bad); !errors.Is(err, ErrFormat) {
		t.Errorf("oversized rank: %v", err)
	}

	// Invalid vertex on write.
	if err := WriteBinary(&bytes.Buffer{}, 4, []perm.Code{perm.None}); err == nil {
		t.Error("invalid vertex written")
	}
}

func TestTextRejections(t *testing.T) {
	for name, in := range map[string]string{
		"empty":           "",
		"bad header":      "hello\n",
		"length mismatch": "ring n=4 len=3\n1234\n",
		"wrong dimension": "ring n=4 len=1\n12345\n",
		"bad vertex":      "ring n=4 len=1\nzzzz\n",
		"huge length":     "ring n=4 len=99\n",
	} {
		if _, _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestBinaryCompactness(t *testing.T) {
	n := 6
	ring := sampleRing(t, n, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, n, ring); err != nil {
		t.Fatal(err)
	}
	// Ranks below 720 need at most 2 varint bytes: the encoding must
	// beat 8-byte raw codes comfortably.
	if buf.Len() > len(ring)*2+16 {
		t.Fatalf("binary encoding too large: %d bytes for %d vertices", buf.Len(), len(ring))
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	ring := benchRing(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, 6, ring); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	ring := benchRing(b)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, 6, ring); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRing(b *testing.B) []perm.Code {
	b.Helper()
	res, err := core.Embed(6, nil, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Ring
}
