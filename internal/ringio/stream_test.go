package ringio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/perm"
)

// sliceNext adapts a materialized ring to the producer iterator shape.
func sliceNext(ring []perm.Code) func() (perm.Code, bool) {
	i := 0
	return func() (perm.Code, bool) {
		if i >= len(ring) {
			var zero perm.Code
			return zero, false
		}
		v := ring[i]
		i++
		return v, true
	}
}

// drainStream reads a StreamReader to the end.
func drainStream(t *testing.T, sr *StreamReader) []perm.Code {
	t.Helper()
	var out []perm.Code
	for {
		v, ok := sr.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if err := sr.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return out
}

func TestStreamRoundtrip(t *testing.T) {
	for _, n := range []int{4, 5, 6} {
		ring := sampleRing(t, n, 1)
		var buf bytes.Buffer
		if err := WriteBinaryStream(&buf, n, len(ring), sliceNext(ring)); err != nil {
			t.Fatal(err)
		}
		sr, err := ReadBinaryStream(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if sr.N() != n || sr.Len() != len(ring) {
			t.Fatalf("header n=%d len=%d, want n=%d len=%d", sr.N(), sr.Len(), n, len(ring))
		}
		got := drainStream(t, sr)
		if len(got) != len(ring) {
			t.Fatalf("read %d vertices, want %d", len(got), len(ring))
		}
		for i := range got {
			if got[i] != ring[i] {
				t.Fatalf("entry %d differs", i)
			}
		}
	}
}

// TestStreamSpansChunks crosses the 4096-rank chunk boundary with a
// real ring: the fault-free S_7 Hamiltonian cycle is 5040 vertices,
// two chunks.
func TestStreamSpansChunks(t *testing.T) {
	n := 7
	long := sampleRing(t, n, 0)
	if len(long) <= streamChunk {
		t.Fatalf("test setup: %d vertices do not span a chunk", len(long))
	}
	var buf bytes.Buffer
	if err := WriteBinaryStream(&buf, n, len(long), sliceNext(long)); err != nil {
		t.Fatal(err)
	}
	sr, err := ReadBinaryStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, sr)
	if len(got) != len(long) {
		t.Fatalf("read %d vertices, want %d", len(got), len(long))
	}
}

// TestStreamReaderAcceptsLegacyBinary locks the compatibility bridge:
// an SRG1 file written by WriteBinary decodes through the streaming
// reader, so starverify -stream works on pre-stream archives.
func TestStreamReaderAcceptsLegacyBinary(t *testing.T) {
	n := 5
	ring := sampleRing(t, n, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, n, ring); err != nil {
		t.Fatal(err)
	}
	sr, err := ReadBinaryStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, sr)
	if len(got) != len(ring) {
		t.Fatalf("read %d vertices, want %d", len(got), len(ring))
	}
	for i := range got {
		if got[i] != ring[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestStreamWriterRejections(t *testing.T) {
	ring := sampleRing(t, 4, 0)

	// Producer stops short of the declared length.
	if err := WriteBinaryStream(&bytes.Buffer{}, 4, len(ring)+2, sliceNext(ring)); err == nil {
		t.Error("short producer accepted")
	}
	// Producer overruns the declared length.
	if err := WriteBinaryStream(&bytes.Buffer{}, 4, len(ring)-2, sliceNext(ring)); err == nil {
		t.Error("overlong producer accepted")
	}
	// Declared length beyond n!.
	if err := WriteBinaryStream(&bytes.Buffer{}, 4, perm.Factorial(4)+1, sliceNext(ring)); err == nil {
		t.Error("length > n! accepted")
	}
	// Invalid vertex.
	if err := WriteBinaryStream(&bytes.Buffer{}, 4, 1, sliceNext([]perm.Code{perm.None})); err == nil {
		t.Error("invalid vertex accepted")
	}
}

func TestStreamReaderRejections(t *testing.T) {
	n := 4
	ring := sampleRing(t, n, 0)
	var buf bytes.Buffer
	if err := WriteBinaryStream(&buf, n, len(ring), sliceNext(ring)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	headerErr := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), data[4:]...),
	}
	for name, d := range headerErr {
		if _, err := ReadBinaryStream(bytes.NewReader(d)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}

	// Declared length beyond n! is rejected at the header.
	var bad bytes.Buffer
	bad.Write(magicStream[:])
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], 4)
	bad.Write(tmp[:k])
	k = binary.PutUvarint(tmp[:], uint64(perm.Factorial(4)+1))
	bad.Write(tmp[:k])
	if _, err := ReadBinaryStream(&bad); !errors.Is(err, ErrFormat) {
		t.Errorf("length > n!: err = %v, want ErrFormat", err)
	}

	bodyErr := map[string][]byte{
		"truncated body":     data[:len(data)-3],
		"missing terminator": data[:len(data)-1],
		"trailing bytes":     append(append([]byte{}, data...), 7),
	}
	for name, d := range bodyErr {
		sr, err := ReadBinaryStream(bytes.NewReader(d))
		if err != nil {
			t.Errorf("%s: header rejected: %v", name, err)
			continue
		}
		for {
			if _, ok := sr.Next(); !ok {
				break
			}
		}
		if !errors.Is(sr.Err(), ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, sr.Err())
		}
	}
}

// TestLegacyHeaderLengthBound pins the header validation of the
// non-stream decoders: a declared length exceeding n! must be rejected
// before any allocation sized by it.
func TestLegacyHeaderLengthBound(t *testing.T) {
	var bin bytes.Buffer
	bin.Write(magic[:])
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], 4)
	bin.Write(tmp[:k])
	k = binary.PutUvarint(tmp[:], uint64(perm.Factorial(4)+1))
	bin.Write(tmp[:k])
	if _, _, err := ReadBinary(&bin); !errors.Is(err, ErrFormat) {
		t.Errorf("ReadBinary length > n!: err = %v, want ErrFormat", err)
	}

	if _, _, err := ReadText(bytes.NewReader([]byte("ring n=4 len=25\n"))); err == nil {
		t.Error("ReadText length > n! accepted")
	}
}
