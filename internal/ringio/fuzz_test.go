package ringio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perm"
)

// FuzzReadBinary throws arbitrary bytes at the binary decoder: it must
// never panic, and anything it accepts must re-encode to an equivalent
// ring.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	WriteBinary(&seed, 4, []perm.Code{perm.IdentityCode(4), perm.IdentityCode(4).SwapFirst(2)})
	f.Add(seed.Bytes())
	f.Add([]byte("SRG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, ring, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, v := range ring {
			if !v.Valid(n) {
				t.Fatalf("decoder accepted invalid vertex at %d", i)
			}
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, n, ring); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		n2, ring2, err := ReadBinary(&out)
		if err != nil || n2 != n || len(ring2) != len(ring) {
			t.Fatalf("re-decode mismatch: %v", err)
		}
		for i := range ring {
			if ring[i] != ring2[i] {
				t.Fatalf("entry %d changed across roundtrip", i)
			}
		}
	})
}

// FuzzReadBinaryStream throws arbitrary bytes at the chunked stream
// decoder: it must never panic, anything it accepts must consist of
// valid vertices matching the declared header length, and an accepted
// stream must survive a re-encode/re-decode roundtrip.
func FuzzReadBinaryStream(f *testing.F) {
	ring := []perm.Code{perm.IdentityCode(4), perm.IdentityCode(4).SwapFirst(2)}
	next := func() func() (perm.Code, bool) {
		i := 0
		return func() (perm.Code, bool) {
			if i >= len(ring) {
				var zero perm.Code
				return zero, false
			}
			v := ring[i]
			i++
			return v, true
		}
	}
	var seed bytes.Buffer
	WriteBinaryStream(&seed, 4, len(ring), next())
	f.Add(seed.Bytes())
	// The legacy flat format decodes through the same reader.
	var legacy bytes.Buffer
	WriteBinary(&legacy, 4, ring)
	f.Add(legacy.Bytes())
	// Framing-focused seeds: bare magics, a header with no body, a
	// chunk count pointing past the declared length, and a stream cut
	// at the terminator.
	f.Add([]byte("SRS1"))
	f.Add([]byte("SRG1"))
	f.Add([]byte{'S', 'R', 'S', '1', 4, 2})
	f.Add([]byte{'S', 'R', 'S', '1', 4, 1, 5, 0, 0, 0, 0, 0})
	f.Add(seed.Bytes()[:seed.Len()-1])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := ReadBinaryStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		var got []perm.Code
		for {
			v, ok := sr.Next()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if sr.Err() != nil {
			return
		}
		n := sr.N()
		if len(got) != sr.Len() {
			t.Fatalf("accepted stream delivered %d vertices, header says %d", len(got), sr.Len())
		}
		for i, v := range got {
			if !v.Valid(n) {
				t.Fatalf("decoder accepted invalid vertex at %d", i)
			}
		}
		i := 0
		var out bytes.Buffer
		err = WriteBinaryStream(&out, n, len(got), func() (perm.Code, bool) {
			if i >= len(got) {
				var zero perm.Code
				return zero, false
			}
			v := got[i]
			i++
			return v, true
		})
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		sr2, err := ReadBinaryStream(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		for j := 0; ; j++ {
			v, ok := sr2.Next()
			if !ok {
				if j != len(got) {
					t.Fatalf("roundtrip length changed: %d vs %d", j, len(got))
				}
				break
			}
			if v != got[j] {
				t.Fatalf("entry %d changed across roundtrip", j)
			}
		}
		if sr2.Err() != nil {
			t.Fatalf("roundtrip rejected: %v", sr2.Err())
		}
	})
}

// FuzzReadText does the same for the text decoder.
func FuzzReadText(f *testing.F) {
	f.Add("ring n=4 len=1\n1234\n")
	f.Add("ring n=3 len=0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		n, ring, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := WriteText(&out, n, ring); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		n2, ring2, err := ReadText(strings.NewReader(out.String()))
		if err != nil || n2 != n || len(ring2) != len(ring) {
			t.Fatalf("re-decode mismatch: %v", err)
		}
	})
}
