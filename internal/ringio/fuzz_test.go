package ringio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perm"
)

// FuzzReadBinary throws arbitrary bytes at the binary decoder: it must
// never panic, and anything it accepts must re-encode to an equivalent
// ring.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	WriteBinary(&seed, 4, []perm.Code{perm.IdentityCode(4), perm.IdentityCode(4).SwapFirst(2)})
	f.Add(seed.Bytes())
	f.Add([]byte("SRG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, ring, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, v := range ring {
			if !v.Valid(n) {
				t.Fatalf("decoder accepted invalid vertex at %d", i)
			}
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, n, ring); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		n2, ring2, err := ReadBinary(&out)
		if err != nil || n2 != n || len(ring2) != len(ring) {
			t.Fatalf("re-decode mismatch: %v", err)
		}
		for i := range ring {
			if ring[i] != ring2[i] {
				t.Fatalf("entry %d changed across roundtrip", i)
			}
		}
	})
}

// FuzzReadText does the same for the text decoder.
func FuzzReadText(f *testing.F) {
	f.Add("ring n=4 len=1\n1234\n")
	f.Add("ring n=3 len=0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		n, ring, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := WriteText(&out, n, ring); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		n2, ring2, err := ReadText(strings.NewReader(out.String()))
		if err != nil || n2 != n || len(ring2) != len(ring) {
			t.Fatalf("re-decode mismatch: %v", err)
		}
	})
}
