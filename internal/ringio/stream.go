package ringio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/perm"
)

// magicStream identifies the chunked binary format ("SRS1" = star ring
// stream v1). It shares the SRG1 header (uvarint dimension, uvarint
// length) but carries the ranks in length-prefixed chunks ended by a
// zero terminator, so a producer can emit a multi-million-vertex ring
// without ever holding it and a consumer can detect truncation at
// chunk granularity.
var magicStream = [4]byte{'S', 'R', 'S', '1'}

// streamChunk is the number of ranks per chunk: big enough to amortize
// framing (one uvarint per 4096 ranks), small enough that writer-side
// buffering stays a few tens of KB.
const streamChunk = 4096

// WriteBinaryStream encodes a ring delivered by an iterator into the
// chunked binary format: next returns consecutive cycle vertices and
// false at the end. length must declare the exact count up front (the
// embedder knows it from the skeleton without materializing anything);
// a producer that stops early or runs long is an error, so a reader
// can trust the header. Writer-side memory is one chunk regardless of
// ring length.
func WriteBinaryStream(w io.Writer, n int, length int, next func() (perm.Code, bool)) error {
	if n < 1 || n > perm.MaxN {
		return fmt.Errorf("ringio: dimension %d out of range", n)
	}
	if length < 0 || length > perm.Factorial(n) {
		return fmt.Errorf("ringio: length %d exceeds n! = %d", length, perm.Factorial(n))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicStream[:]); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64 * 2]byte
	k := binary.PutUvarint(hdr[:], uint64(n))
	k += binary.PutUvarint(hdr[k:], uint64(length))
	if _, err := bw.Write(hdr[:k]); err != nil {
		return err
	}

	// Chunks are framed count-first, so ranks are staged here until the
	// chunk fills (or the stream ends) and the prefix is known.
	chunk := make([]byte, 0, streamChunk*binary.MaxVarintLen64)
	var buf [binary.MaxVarintLen64]byte
	inChunk := 0
	written := 0
	flush := func() error {
		if inChunk == 0 {
			return nil
		}
		k := binary.PutUvarint(buf[:], uint64(inChunk))
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
		if _, err := bw.Write(chunk); err != nil {
			return err
		}
		chunk = chunk[:0]
		inChunk = 0
		return nil
	}
	for {
		v, ok := next()
		if !ok {
			break
		}
		if !v.Valid(n) {
			return fmt.Errorf("ringio: entry %d is not a vertex of S_%d", written, n)
		}
		if written >= length {
			return fmt.Errorf("ringio: producer exceeded declared length %d", length)
		}
		k := binary.PutUvarint(buf[:], uint64(v.Rank(n)))
		chunk = append(chunk, buf[:k]...)
		written++
		if inChunk++; inChunk == streamChunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if written != length {
		return fmt.Errorf("ringio: producer emitted %d vertices, header declares %d", written, length)
	}
	if err := flush(); err != nil {
		return err
	}
	// The zero terminator distinguishes a complete stream from one cut
	// off at a chunk boundary.
	k = binary.PutUvarint(buf[:], 0)
	if _, err := bw.Write(buf[:k]); err != nil {
		return err
	}
	return bw.Flush()
}

// StreamReader decodes a ring one vertex at a time, scanner-style:
// Next until it returns false, then Err for the verdict. It accepts
// both the chunked SRS1 format and the flat SRG1 format (a legacy file
// is just a single implicit chunk), so constant-memory consumers like
// `starverify -stream` work on either. Memory is O(1) in ring length.
type StreamReader struct {
	br      *bufio.Reader
	n       int
	length  uint64
	total   uint64 // n!
	chunked bool

	read      uint64
	chunkLeft uint64
	err       error
	done      bool
}

// ReadBinaryStream opens a streaming decoder, consuming and validating
// the header: magic (SRS1 or SRG1), dimension, and declared length,
// which is rejected when it exceeds n!.
func ReadBinaryStream(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	var chunked bool
	switch m {
	case magicStream:
		chunked = true
	case magic:
		chunked = false
	default:
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:])
	}
	nn, err := binary.ReadUvarint(br)
	if err != nil || nn < 1 || nn > perm.MaxN {
		return nil, fmt.Errorf("%w: bad dimension", ErrFormat)
	}
	n := int(nn)
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: bad length", ErrFormat)
	}
	total := uint64(perm.Factorial(n))
	if length > total {
		return nil, fmt.Errorf("%w: length %d exceeds n! = %d", ErrFormat, length, total)
	}
	return &StreamReader{br: br, n: n, length: length, total: total, chunked: chunked}, nil
}

// N returns the ring's dimension.
func (s *StreamReader) N() int { return s.n }

// Len returns the header-declared ring length.
func (s *StreamReader) Len() int { return int(s.length) }

// Next returns the next ring vertex; false at the end of the stream or
// on error (check Err afterwards — a clean end reports nil).
func (s *StreamReader) Next() (perm.Code, bool) {
	var zero perm.Code
	if s.done {
		return zero, false
	}
	if s.read == s.length {
		s.finish()
		return zero, false
	}
	if s.chunked && s.chunkLeft == 0 {
		c, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.fail(fmt.Errorf("%w: truncated chunk header at entry %d", ErrFormat, s.read))
			return zero, false
		}
		if c == 0 || c > s.length-s.read {
			s.fail(fmt.Errorf("%w: chunk of %d ranks at entry %d (need %d more)", ErrFormat, c, s.read, s.length-s.read))
			return zero, false
		}
		s.chunkLeft = c
	}
	rank, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.fail(fmt.Errorf("%w: truncated at entry %d", ErrFormat, s.read))
		return zero, false
	}
	if rank >= s.total {
		s.fail(fmt.Errorf("%w: rank %d out of range at entry %d", ErrFormat, rank, s.read))
		return zero, false
	}
	if s.chunked {
		s.chunkLeft--
	}
	s.read++
	return perm.Pack(perm.Unrank(s.n, int(rank))), true
}

// finish validates the end of a fully-read stream: the chunked format
// must close with its zero terminator, and both formats are
// self-delimiting — trailing bytes are an error.
func (s *StreamReader) finish() {
	s.done = true
	if s.chunked {
		c, err := binary.ReadUvarint(s.br)
		if err != nil || c != 0 {
			s.err = fmt.Errorf("%w: missing stream terminator", ErrFormat)
			return
		}
	}
	if _, err := s.br.ReadByte(); err != io.EOF {
		s.err = fmt.Errorf("%w: trailing data", ErrFormat)
	}
}

func (s *StreamReader) fail(err error) {
	s.done = true
	s.err = err
}

// Err returns the terminal error: nil only when the stream delivered
// exactly the declared number of valid ranks and ended cleanly.
func (s *StreamReader) Err() error { return s.err }
