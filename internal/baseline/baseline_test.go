package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
)

// TestTsengGuarantee runs the prior algorithm across dimensions and
// fault counts and confirms its ring meets (and, by construction,
// pins to) the n! - 4|Fv| bound while remaining a valid healthy ring.
func TestTsengGuarantee(t *testing.T) {
	for n := 4; n <= 7; n++ {
		for k := 0; k <= faults.MaxTolerated(n); k++ {
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed*31 + int64(n*10+k)))
				fs := faults.RandomVertices(n, k, rng)
				res, err := Tseng(n, fs, core.Config{})
				if err != nil {
					t.Fatalf("Tseng(n=%d, k=%d, seed=%d): %v", n, k, seed, err)
				}
				if len(res.Ring) < res.Guarantee {
					t.Fatalf("Tseng(n=%d, k=%d): len %d < guarantee %d", n, k, len(res.Ring), res.Guarantee)
				}
			}
		}
	}
}

// TestTsengDominatedByPaper verifies the headline comparison on
// identical fault sets: the paper's ring is at least as long, with gap
// exactly 2|Fv| between the guarantees.
func TestTsengDominatedByPaper(t *testing.T) {
	for n := 5; n <= 7; n++ {
		k := faults.MaxTolerated(n)
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(1000*int64(n) + seed))
			fs := faults.RandomVertices(n, k, rng)
			hch, err := core.Embed(n, fs, core.Config{})
			if err != nil {
				t.Fatalf("Embed: %v", err)
			}
			old, err := Tseng(n, fs, core.Config{})
			if err != nil {
				t.Fatalf("Tseng: %v", err)
			}
			if hch.Len() < len(old.Ring) {
				t.Errorf("n=%d seed=%d: paper ring %d shorter than Tseng ring %d", n, seed, hch.Len(), len(old.Ring))
			}
			if hch.Guarantee-old.Guarantee != 2*k {
				t.Errorf("n=%d: guarantee gap %d, want %d", n, hch.Guarantee-old.Guarantee, 2*k)
			}
		}
	}
}

// TestLatifiClustered checks the clustered baseline on fault sets inside
// an S_m for m = 2..5 and confirms the n! - m! yield and its dominance
// by the paper's n! - 2|Fv|.
func TestLatifiClustered(t *testing.T) {
	for n := 5; n <= 7; n++ {
		for m := 2; m <= 5 && m < n; m++ {
			k := faults.MaxTolerated(n)
			if f := perm.Factorial(m); k > f {
				k = f
			}
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed + int64(100*n+m)))
				fs, _, err := faults.ClusteredVertices(n, k, m, rng)
				if err != nil {
					t.Fatalf("ClusteredVertices: %v", err)
				}
				res, err := Latifi(n, fs, core.Config{})
				if err != nil {
					t.Fatalf("Latifi(n=%d, m=%d, seed=%d): %v", n, m, seed, err)
				}
				if res.M > m {
					t.Fatalf("n=%d: minimal cluster order %d exceeds generator order %d", n, res.M, m)
				}
				wantAtLeast := perm.Factorial(n) - perm.Factorial(m)
				if len(res.Ring) < wantAtLeast {
					t.Fatalf("Latifi(n=%d, m=%d): len %d < %d", n, m, len(res.Ring), wantAtLeast)
				}
				hch, err := core.Embed(n, fs, core.Config{})
				if err != nil {
					t.Fatalf("Embed: %v", err)
				}
				// The guarantees differ by exactly m! - 2|Fv| (the
				// paper's advantage; negative when faults pack into a
				// tiny cluster, which is the crossover the evaluation
				// charts). Compare through the minimal cluster order the
				// baseline actually found, not the generator's m.
				gap := hch.Guarantee - res.Guarantee
				if want := perm.Factorial(res.M) - 2*fs.NumVertices(); gap != want {
					t.Errorf("n=%d m=%d: guarantee gap %d, want %d", n, m, gap, want)
				}
				if 2*fs.NumVertices() <= perm.Factorial(res.M) && hch.Len() < len(res.Ring) {
					t.Errorf("n=%d m=%d: paper ring %d shorter than clustered ring %d despite dominance condition",
						n, m, hch.Len(), len(res.Ring))
				}
			}
		}
	}
}

// TestLatifiSingleFault exercises the m < 2 widening.
func TestLatifiSingleFault(t *testing.T) {
	fs := faults.NewSet(6)
	fs.AddVertex(perm.Pack(perm.MustParse("213456")))
	res, err := Latifi(6, fs, core.Config{})
	if err != nil {
		t.Fatalf("Latifi: %v", err)
	}
	if res.M != 2 {
		t.Fatalf("M = %d, want 2", res.M)
	}
	if want := perm.Factorial(6) - 2; len(res.Ring) < want {
		t.Fatalf("len %d < %d", len(res.Ring), want)
	}
}

// TestMinimalCluster checks minimality directly.
func TestMinimalCluster(t *testing.T) {
	vs := []perm.Code{
		perm.Pack(perm.MustParse("123456")),
		perm.Pack(perm.MustParse("213456")),
		perm.Pack(perm.MustParse("312456")),
	}
	p, m := MinimalCluster(6, vs)
	if m != 3 {
		t.Fatalf("m = %d, want 3 (pattern %v)", m, p)
	}
	for _, v := range vs {
		if !p.Contains(v) {
			t.Fatalf("cluster %v misses %s", p, v.StringN(6))
		}
	}
}

func TestTsengValidation(t *testing.T) {
	if _, err := Tseng(3, nil, core.Config{}); err == nil {
		t.Error("n=3 accepted")
	}
	rng := rand.New(rand.NewSource(99))
	over := faults.RandomVertices(6, 4, rng) // budget 3
	if _, err := Tseng(6, over, core.Config{}); err == nil {
		t.Error("over-budget fault set accepted")
	}
	// Edge faults keep the ring Hamiltonian under the baseline too.
	es := faults.RandomEdges(6, 3, rng)
	res, err := Tseng(6, es, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ring) != perm.Factorial(6) {
		t.Fatalf("edge-fault Tseng ring %d", len(res.Ring))
	}
}

func TestLatifiValidation(t *testing.T) {
	if _, err := Latifi(4, nil, core.Config{}); err == nil {
		t.Error("n=4 accepted")
	}
	if _, err := Latifi(6, faults.NewSet(6), core.Config{}); err == nil {
		t.Error("empty fault set accepted")
	}
	rng := rand.New(rand.NewSource(98))
	es := faults.RandomEdges(6, 2, rng)
	if _, err := Latifi(6, es, core.Config{}); err == nil {
		t.Error("edge faults accepted")
	}
}

func TestLatifiSpreadFaultsVacuous(t *testing.T) {
	// Faults that agree at no position >= 2 make m = n and the bound
	// vacuous; the baseline must refuse rather than return an empty
	// ring.
	fs := faults.NewSet(6)
	fs.AddVertexString("213456")
	fs.AddVertexString("345621") // disagrees at every position >= 2
	vs := fs.Vertices()
	agree := false
	for i := 2; i <= 6; i++ {
		if vs[0].Symbol(i) == vs[1].Symbol(i) {
			agree = true
		}
	}
	if agree {
		t.Skip("test vector unexpectedly clusters; adjust vectors")
	}
	if _, err := Latifi(6, fs, core.Config{}); !errors.Is(err, ErrNoCluster) {
		t.Fatalf("want ErrNoCluster, got %v", err)
	}
}

func TestTsengFaultyBlocksLoseFour(t *testing.T) {
	// The measured ring normally realizes exactly n!-4|Fv|: every faulty
	// block is pinned to a 20-vertex path.
	rng := rand.New(rand.NewSource(97))
	hits := 0
	for trial := 0; trial < 10; trial++ {
		fs := faults.RandomVertices(6, 3, rng)
		res, err := Tseng(6, fs, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Ring) == res.Guarantee {
			hits++
		}
		if len(res.Ring) < res.Guarantee {
			t.Fatalf("trial %d under guarantee", trial)
		}
	}
	if hits < 8 {
		t.Fatalf("only %d/10 trials realized the pinned bound", hits)
	}
}
