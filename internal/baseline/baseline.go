// Package baseline reimplements the two prior fault-tolerant ring
// embeddings the paper compares against, on the same substrate as the
// paper's algorithm so that the evaluation harness can run all three on
// identical fault sets:
//
//   - Tseng, Chang, Sheu ("Fault-tolerant ring embedding in star
//     graphs"): a ring of length >= n! - 4|Fv| for |Fv| <= n-3 vertex
//     faults, and a Hamiltonian ring (n!) for |Fe| <= n-3 edge faults.
//     Structurally this is the paper's pipeline without the (P2)/(P3)
//     discipline of Lemma 3; each faulty block contributes 4 fewer
//     vertices, reproducing the guarantee the paper improves on.
//
//   - Latifi, Bagherzadeh ("Hamiltonicity of the clustered-star
//     graph"): when all faults lie inside one embedded S_m with m
//     minimal, a ring of length n! - m! that avoids that entire substar.
//
// Both return rings verified by internal/check. The point the evaluation
// reproduces is the comparison SHAPE: the paper's n! - 2|Fv| dominates
// n! - 4|Fv| by exactly 2|Fv|, and dominates n! - m! by m! - 2|Fv|
// (strictly, whenever m >= 2).
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
	"repro/internal/substar"
)

// TsengResult is the outcome of the Tseng-Chang-Sheu embedding.
type TsengResult struct {
	N         int
	Ring      []perm.Code
	Guarantee int // n! - 4|Fv|
}

// ErrTsengBudget mirrors the baseline's precondition |Fv|+|Fe| <= n-3.
var ErrTsengBudget = errors.New("baseline: fault set exceeds |Fv|+|Fe| <= n-3")

// Tseng embeds a ring of length >= n! - 4|Fv| (n! when only edges are
// faulty) following the framework of [32]: Lemma 2 separation, a block
// super-ring without the (P2)/(P3) discipline, and per-block routing in
// which a faulty block contributes 24-4 = 20 vertices. The block paths
// themselves come from the same exact search as the paper's algorithm,
// pinned to the baseline's per-block length so that measured lengths
// reproduce the baseline's guaranteed bound.
func Tseng(n int, fs *faults.Set, cfg core.Config) (*TsengResult, error) {
	if n < 4 || n > perm.MaxN {
		return nil, fmt.Errorf("baseline: dimension %d out of range [4,%d]", n, perm.MaxN)
	}
	if fs == nil {
		fs = faults.NewSet(n)
	}
	nv, ne := fs.NumVertices(), fs.NumEdges()
	if nv+ne > faults.MaxTolerated(n) {
		return nil, fmt.Errorf("%w: |Fv|=%d, |Fe|=%d, n=%d", ErrTsengBudget, nv, ne, n)
	}
	res := &TsengResult{N: n, Guarantee: perm.Factorial(n) - 4*nv}

	if n == 4 {
		// Delegate the base case: with at most one fault the direct
		// search already meets the weaker bound.
		r, err := core.Embed(n, fs, cfg)
		if err != nil {
			return nil, err
		}
		res.Ring = r.Ring
		return res, nil
	}

	positions, separated := fs.SeparatingPositions()
	if !separated {
		return nil, fmt.Errorf("baseline: Lemma 2 separation failed for %v", fs)
	}
	r4, err := core.BuildR4(n, fs, core.BuildSpec{
		Positions: positions,
		// No SpreadFaults / HealthyBorders: [32] predates properties
		// (P2) and (P3). (P1) still holds via Lemma 2, which is theirs.
		VerifyP1: true,
	})
	if err != nil {
		return nil, err
	}
	// A faulty block loses 4 vertices ([32]'s per-block yield). If the
	// looser structure leaves no 20-vertex path between the junction
	// pair that backtracking reaches, fall back to the longer 22-vertex
	// path: the bound is "at least" n!-4|Fv|, so overshooting is valid,
	// and undershooting would break the guarantee.
	ring, err := core.RouteR4(r4, fs, func(vf int) []int {
		if vf == 0 {
			return []int{blockOrder}
		}
		return []int{blockOrder - 4*vf, blockOrder - 4*vf + 2}
	}, cfg)
	if err != nil {
		return nil, err
	}
	if err := check.Ring(star.New(n), ring, fs, res.Guarantee); err != nil {
		return nil, fmt.Errorf("baseline: Tseng self-verification failed: %w", err)
	}
	res.Ring = ring
	return res, nil
}

// blockOrder mirrors core's per-block size 4!.
const blockOrder = 24

// LatifiResult is the outcome of the clustered-star embedding.
type LatifiResult struct {
	N         int
	Ring      []perm.Code
	M         int             // minimal order of a substar containing all faults
	Cluster   substar.Pattern // that substar
	Guarantee int             // n! - m!
}

// ErrNoCluster reports a fault set whose minimal enclosing substar is
// all of S_n (m = n), for which the clustered bound n! - n! is vacuous.
var ErrNoCluster = errors.New("baseline: faults span S_n; the clustered bound is vacuous")

// Latifi embeds a ring of length n! - m! where m is minimal such that
// every faulty vertex lies in one embedded S_m: the entire substar
// (faulty and healthy vertices alike) is excised from the ring, which is
// exactly the clustered-star construction's yield. Edge faults are not
// supported by this baseline.
func Latifi(n int, fs *faults.Set, cfg core.Config) (*LatifiResult, error) {
	if n < 5 || n > perm.MaxN {
		return nil, fmt.Errorf("baseline: dimension %d out of range [5,%d]", n, perm.MaxN)
	}
	if fs == nil || fs.NumVertices() == 0 {
		return nil, errors.New("baseline: Latifi-Bagherzadeh needs at least one vertex fault")
	}
	if fs.NumEdges() > 0 {
		return nil, errors.New("baseline: Latifi-Bagherzadeh handles vertex faults only")
	}

	cluster, m := MinimalCluster(n, fs.Vertices())
	if m >= n {
		return nil, fmt.Errorf("%w (m=%d)", ErrNoCluster, m)
	}
	if m < 2 {
		// A single fault fits in an S_1, but a ring of odd length n!-1
		// cannot exist in a bipartite graph; the clustered construction
		// effectively excises an S_2 (the fault and one neighbor).
		cluster = substar.Whole(n)
		f := fs.Vertices()[0]
		for i := 3; i <= n; i++ {
			cluster = cluster.Fix(i, f.Symbol(i))
		}
		m = 2
	}
	res := &LatifiResult{N: n, M: m, Cluster: cluster, Guarantee: perm.Factorial(n) - perm.Factorial(m)}

	// Partition along the cluster's fixed positions first so that the
	// cluster materializes as one supervertex (m >= 5), one block
	// (m == 4), or the interior of one block (m <= 3); pad with unused
	// positions up to the required n-4.
	var positions []int
	for i := 2; i <= n; i++ {
		if cluster.SymbolAt(i) != substar.Star {
			positions = append(positions, i)
		}
	}
	if len(positions) > n-4 {
		positions = positions[:n-4]
	}
	for i := 2; i <= n && len(positions) < n-4; i++ {
		if cluster.SymbolAt(i) == substar.Star {
			positions = append(positions, i)
		}
	}

	// Treat every cluster vertex as unusable during routing: junctions
	// and block paths then avoid the whole substar.
	virtual := fs.Clone()
	if m <= 3 {
		for _, v := range cluster.Vertices(nil) {
			if err := virtual.AddVertex(v); err != nil {
				return nil, err
			}
		}
	}

	exclude := func(p substar.Pattern) bool { return p == cluster }
	r4, err := core.BuildR4(n, virtual, core.BuildSpec{
		Positions: positions,
		Exclude:   exclude,
		// The excision leaves every remaining block fault-free, so the
		// strict discipline is unnecessary; borders must still be
		// healthy with respect to the virtual faults, which junction
		// selection enforces during routing.
	})
	if err != nil {
		return nil, err
	}
	ring, err := core.RouteR4(r4, virtual, func(vf int) []int {
		// vf counts virtual faults in a block: 0 for untouched blocks,
		// m! for the block hosting a small cluster (m <= 3). The cluster
		// splits evenly across the bipartition (an S_m has m!/2 vertices
		// on each side), so the block still yields 24 - m! vertices.
		return []int{blockOrder - vf}
	}, cfg)
	if err != nil {
		return nil, err
	}
	if err := check.Ring(star.New(n), ring, fs, res.Guarantee); err != nil {
		return nil, fmt.Errorf("baseline: Latifi self-verification failed: %w", err)
	}
	res.Ring = ring
	return res, nil
}

// MinimalCluster returns the smallest-order embedded substar containing
// every given vertex: it fixes every position (>= 2) at which all the
// vertices agree. The returned order m = n - (number of fixed
// positions) is minimal because any enclosing pattern can only fix
// positions where all members agree.
func MinimalCluster(n int, vs []perm.Code) (substar.Pattern, int) {
	p := substar.Whole(n)
	if len(vs) == 0 {
		return p, n
	}
	for i := 2; i <= n; i++ {
		sym := vs[0].Symbol(i)
		agree := true
		for _, v := range vs[1:] {
			if v.Symbol(i) != sym {
				agree = false
				break
			}
		}
		if agree {
			p = p.Fix(i, sym)
		}
	}
	return p, p.R()
}
