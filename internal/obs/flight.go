package obs

import "sync"

// FlightRecorder is the registry's always-on black box: two bounded
// rings — the most recent event-log records and the most recent
// completed spans — plus access to the registry for a metrics
// snapshot, so a post-mortem bundle (NDJSON + trace + metrics) can be
// produced at the moment of failure rather than reconstructed after it.
//
// It is fed automatically once installed via NewFlightRecorder: every
// Span.End lands in the span ring, every EventLog write is teed into
// the record ring, and NoteError (called by Op.Fail and the embedder's
// error paths) counts the failure and, when armed by SetAutoDump,
// writes the bundle. The rings overwrite oldest-first; memory is
// bounded by the capacity chosen at construction.
//
// Metrics (see the README glossary): obs.flight.events and
// obs.flight.spans count ring appends, obs.flight.errors counts
// NoteError calls, obs.flight.dumps counts bundles written.
type FlightRecorder struct {
	reg *Registry

	mu      sync.Mutex
	events  []Record
	evLen   int // filled slots
	evNext  int // next write index
	spans   []Event
	spLen   int
	spNext  int
	autoDir string
	dump    func(dir string) error

	cEvents *Counter
	cSpans  *Counter
	cErrors *Counter
	cDumps  *Counter
}

// NewFlightRecorder builds a recorder holding the last capacity events
// and the last capacity spans (<= 0 means 512), installs it on the
// registry via SetFlight, and returns it. A nil registry yields a nil
// recorder, on which every method is a no-op.
func NewFlightRecorder(r *Registry, capacity int) *FlightRecorder {
	if r == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 512
	}
	f := &FlightRecorder{
		reg:     r,
		events:  make([]Record, capacity),
		spans:   make([]Event, capacity),
		cEvents: r.Counter("obs.flight.events"),
		cSpans:  r.Counter("obs.flight.spans"),
		cErrors: r.Counter("obs.flight.errors"),
		cDumps:  r.Counter("obs.flight.dumps"),
	}
	r.SetFlight(f)
	return f
}

// Registry returns the registry the recorder snapshots metrics from.
func (f *FlightRecorder) Registry() *Registry {
	if f == nil {
		return nil
	}
	return f.reg
}

// noteRecord appends one event-log record to the ring (EventLog tee).
func (f *FlightRecorder) noteRecord(rec Record) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.events[f.evNext] = rec
	f.evNext = (f.evNext + 1) % len(f.events)
	if f.evLen < len(f.events) {
		f.evLen++
	}
	f.mu.Unlock()
	f.cEvents.Inc()
}

// noteSpan appends one completed span to the ring (Span.End feed).
func (f *FlightRecorder) noteSpan(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.spans[f.spNext] = e
	f.spNext = (f.spNext + 1) % len(f.spans)
	if f.spLen < len(f.spans) {
		f.spLen++
	}
	f.mu.Unlock()
	f.cSpans.Inc()
}

// Events returns the retained event-log records, oldest first.
func (f *FlightRecorder) Events() []Record {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Record, 0, f.evLen)
	start := f.evNext - f.evLen
	for i := 0; i < f.evLen; i++ {
		out = append(out, f.events[(start+i+len(f.events))%len(f.events)])
	}
	return out
}

// SpanEvents returns the retained completed spans, oldest first.
func (f *FlightRecorder) SpanEvents() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, f.spLen)
	start := f.spNext - f.spLen
	for i := 0; i < f.spLen; i++ {
		out = append(out, f.spans[(start+i+len(f.spans))%len(f.spans)])
	}
	return out
}

// SetAutoDump arms automatic post-mortem capture: on the next
// NoteError, dump(dir) runs once per error. The dump function lives in
// internal/obs/export (WriteFlightBundle via FlightBundleWriter); it is
// a parameter here to keep this package dependency-free. An empty dir
// or nil dump disarms.
func (f *FlightRecorder) SetAutoDump(dir string, dump func(dir string) error) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.autoDir = dir
	f.dump = dump
	f.mu.Unlock()
}

// NoteError records an operation failure: it bumps obs.flight.errors,
// logs an obs.flight.error record carrying the failing trace identity
// (through the attached EventLog so the user's stream and the ring both
// see it; straight into the ring when no log is attached), and, when
// armed, writes the post-mortem bundle. err == nil is a no-op.
func (f *FlightRecorder) NoteError(trace TraceID, span SpanID, source string, err error) {
	if f == nil || err == nil {
		return
	}
	f.cErrors.Inc()
	if lg := f.reg.EventLog(); lg != nil {
		lg.log(trace, span, LevelError, "obs.flight.error",
			F("source", source), F("error", err.Error()))
	} else {
		f.noteRecord(Record{
			T:     f.reg.Clock().Now().UnixNano(),
			Level: LevelError.String(),
			Event: "obs.flight.error",
			Trace: trace,
			Span:  span,
			Fields: map[string]interface{}{
				"source": source,
				"error":  err.Error(),
			},
		})
	}
	f.mu.Lock()
	dir, dump := f.autoDir, f.dump
	f.mu.Unlock()
	if dir == "" || dump == nil {
		return
	}
	if dumpErr := dump(dir); dumpErr == nil {
		f.cDumps.Inc()
	}
}

// Dump writes the bundle on demand through the given writer (the same
// function SetAutoDump arms) and counts it. It backs the CLIs'
// -flight-dump flag for successful runs, where NoteError never fires.
func (f *FlightRecorder) Dump(dir string, dump func(dir string) error) error {
	if f == nil || dump == nil {
		return nil
	}
	if err := dump(dir); err != nil {
		return err
	}
	f.cDumps.Inc()
	return nil
}
