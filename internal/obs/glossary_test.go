package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestGlossaryComplete keeps the README's Observability glossary and
// the code's registered metric names in lockstep, in both directions:
// every name a non-test source file registers (Counter/Gauge/Histogram/
// Span, including the lowercase instr helpers) must appear in the
// glossary table, and every glossary entry must still be backed by a
// registration site. Brace patterns (`core.phase.{total,route}`) are
// expanded; `<ID>`-style entries and dynamic registrations with a
// literal prefix ("core.repair." + outcome) are treated as prefix
// wildcards.
func TestGlossaryComplete(t *testing.T) {
	root := filepath.Join("..", "..")
	glossNames, glossPrefixes := readGlossary(t, filepath.Join(root, "README.md"))
	codeNames, codePrefixes := scanMetricNames(t, root)

	if len(glossNames)+len(glossPrefixes) == 0 {
		t.Fatal("no glossary entries parsed from README.md")
	}
	if len(codeNames)+len(codePrefixes) == 0 {
		t.Fatal("no metric registrations found in source")
	}

	hasPrefix := func(name string, prefixes map[string][]string) bool {
		for p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}

	// Code -> glossary: every registered name or dynamic prefix must be
	// documented.
	for name, sites := range codeNames {
		if !glossNames[name] && !hasPrefix(name, glossPrefixes) {
			t.Errorf("metric %q (registered at %s) is missing from the README glossary",
				name, strings.Join(sites, ", "))
		}
	}
	for prefix, sites := range codePrefixes {
		covered := glossPrefixes[prefix] != nil
		for g := range glossNames {
			if strings.HasPrefix(g, prefix) {
				covered = true
			}
		}
		if !covered {
			t.Errorf("dynamic metric prefix %q* (registered at %s) is missing from the README glossary",
				prefix, strings.Join(sites, ", "))
		}
	}

	// Glossary -> code: every documented entry must still exist.
	for name := range glossNames {
		if _, ok := codeNames[name]; !ok && !hasPrefix(name, codePrefixes) {
			t.Errorf("glossary entry %q has no registration site in the code", name)
		}
	}
	for prefix := range glossPrefixes {
		covered := codePrefixes[prefix] != nil
		for c := range codeNames {
			if strings.HasPrefix(c, prefix) {
				covered = true
			}
		}
		if !covered {
			t.Errorf("glossary wildcard %q* has no registration site in the code", prefix)
		}
	}
}

// glossaryToken pulls backticked tokens out of a table cell.
var glossaryToken = regexp.MustCompile("`([^`]+)`")

// readGlossary parses the metric table of the README's Observability
// section into exact names and `<ID>`-style prefix wildcards (mapped to
// a non-nil marker slice for uniform handling).
func readGlossary(t *testing.T, path string) (names map[string]bool, prefixes map[string][]string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	names = map[string]bool{}
	prefixes = map[string][]string{}
	inTable := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "| Metric ") {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		if !strings.HasPrefix(trimmed, "|") {
			break
		}
		cells := strings.Split(trimmed, "|")
		if len(cells) < 2 || strings.HasPrefix(strings.TrimSpace(cells[1]), "---") {
			continue
		}
		for _, m := range glossaryToken.FindAllStringSubmatch(cells[1], -1) {
			for _, expanded := range expandBraces(m[1]) {
				if i := strings.IndexByte(expanded, '<'); i >= 0 {
					prefixes[expanded[:i]] = []string{"README.md"}
					continue
				}
				names[expanded] = true
			}
		}
	}
	return names, prefixes
}

// expandBraces expands every {a,b,c} alternation in pattern.
func expandBraces(pattern string) []string {
	open := strings.IndexByte(pattern, '{')
	if open < 0 {
		return []string{pattern}
	}
	close := strings.IndexByte(pattern[open:], '}')
	if close < 0 {
		return []string{pattern}
	}
	close += open
	var out []string
	for _, alt := range strings.Split(pattern[open+1:close], ",") {
		out = append(out, expandBraces(pattern[:open]+alt+pattern[close+1:])...)
	}
	return out
}

// metricMethods are the method names whose first argument is a metric
// name — the Registry constructors (scalar and labeled-family), core's
// lowercase instr helper, and StartOp (whose root span lands in the
// histogram of the same name).
var metricMethods = map[string]bool{
	"counter":      true,
	"gauge":        true,
	"histogram":    true,
	"span":         true,
	"startop":      true,
	"startoptrace": true,
	"countervec":   true,
	"gaugevec":     true,
	"histogramvec": true,
}

// scanMetricNames walks every non-test .go file under root (skipping
// testdata and hidden directories) and collects the string-literal
// metric names passed to registration calls. A concatenation with a
// literal prefix becomes a prefix wildcard. Values map to the
// registration sites for error messages.
func scanMetricNames(t *testing.T, root string) (names, prefixes map[string][]string) {
	t.Helper()
	names = map[string][]string{}
	prefixes = map[string][]string{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" ||
				(path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_"))) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricMethods[strings.ToLower(sel.Sel.Name)] {
				return true
			}
			site := func(pos token.Pos) string {
				p := fset.Position(pos)
				rel, relErr := filepath.Rel(root, p.Filename)
				if relErr != nil {
					rel = p.Filename
				}
				return filepath.ToSlash(rel) + ":" + strconv.Itoa(p.Line)
			}
			switch arg := call.Args[0].(type) {
			case *ast.BasicLit:
				if arg.Kind != token.STRING {
					return true
				}
				if v, err := strconv.Unquote(arg.Value); err == nil {
					names[v] = append(names[v], site(arg.Pos()))
				}
			case *ast.BinaryExpr:
				if lit, ok := arg.X.(*ast.BasicLit); ok && lit.Kind == token.STRING && arg.Op == token.ADD {
					if v, err := strconv.Unquote(lit.Value); err == nil {
						prefixes[v] = append(prefixes[v], site(lit.Pos()))
					}
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return names, prefixes
}
