package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// PublishExpvar exposes the registry's live snapshot as the named
// expvar, for the /debug/vars endpoint. expvar names are process-global
// and permanent, so publish once per name; a name already taken is left
// untouched (first writer wins).
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}

// StartDebugServer serves /debug/vars (expvar, including registries
// published via PublishExpvar) and /debug/pprof/* on its own mux at
// addr ("host:port"; port 0 picks a free one). It returns the bound
// address. The server runs until the process exits — CLIs call this
// behind a -debug-addr flag for profiling long runs.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
