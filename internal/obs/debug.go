package obs

import (
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// PublishExpvar exposes the registry's live snapshot as the named
// expvar, for the /debug/vars endpoint. expvar names are process-global
// and permanent, so publish once per name; a name already taken is left
// untouched (first writer wins).
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}

// DebugServer is a running debug HTTP endpoint started by
// StartDebugServer. Close releases its port, so sequential runs (and
// tests) can reuse an address; additional handlers — the OpenMetrics
// /metrics exposition from internal/obs/export, for one — attach
// through Handle.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// StartDebugServer serves /debug/vars (expvar, including registries
// published via PublishExpvar) and /debug/pprof/* on its own mux at
// addr ("host:port"; port 0 picks a free one). The server runs until
// Close — CLIs call this behind a -debug-addr flag for profiling and
// scraping long runs.
func StartDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	s := &DebugServer{ln: ln, srv: srv, mux: mux}
	//starlint:ignore goroleak Serve returns when Close closes the listener; the join is the accept loop's own error path
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound "host:port" address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Handle registers an additional handler on the server's mux
// (http.ServeMux registration is safe while serving).
func (s *DebugServer) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Close stops the server and releases its listener. In-flight requests
// are aborted; the address is immediately reusable.
func (s *DebugServer) Close() error {
	err := s.srv.Close()
	// srv.Close only closes listeners Serve has already registered;
	// closing ours directly makes Close safe however early it races the
	// Serve goroutine.
	if cerr := s.ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) && err == nil {
		err = cerr
	}
	return err
}
