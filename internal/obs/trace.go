package obs

import (
	"sync"
	"time"
)

// Event is one completed span: a named phase with its start instant and
// duration in nanoseconds.
type Event struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_unix_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Sink receives completed span events. Implementations must be safe
// for concurrent Emit calls.
type Sink interface {
	Emit(Event)
}

// Recorder is a bounded in-memory Sink: it keeps the first cap events
// and counts the overflow, so a runaway phase cannot grow memory
// without bound. Registry.Snapshot includes its events.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	dropped int64
}

// NewRecorder returns a recorder holding at most capacity events
// (<= 0 means 1024).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{cap: capacity}
}

// Emit stores the event, or counts it as dropped once full.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped returns the number of events discarded after the buffer
// filled.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Span measures one named phase. It is a plain value — starting a span
// on a nil registry yields the zero Span, whose End is a no-op — so
// disabled tracing allocates nothing.
type Span struct {
	r     *Registry
	h     *Histogram
	name  string
	start time.Time
}

// Span starts a span on the registry's clock; its duration lands in
// the histogram of the same name, and an Event goes to the sink.
func (r *Registry) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, h: r.Histogram(name), name: name, start: r.Clock().Now()}
}

// End completes the span and returns its duration (0 for a zero Span).
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := Since(s.r.Clock(), s.start)
	s.h.Observe(d)
	s.r.mu.Lock()
	sink := s.r.sink
	s.r.mu.Unlock()
	if sink != nil {
		sink.Emit(Event{Name: s.name, StartNS: s.start.UnixNano(), DurNS: int64(d)})
	}
	return d
}
