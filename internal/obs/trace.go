package obs

import (
	"sync"
	"time"
)

// Event is one completed span: a named phase with its start instant and
// duration in nanoseconds. Spans started under an Op also carry the
// trace identity — Trace/Span/Parent are zero ("", omitted from JSON)
// for registry-level spans outside any operation.
type Event struct {
	Name    string  `json:"name"`
	StartNS int64   `json:"start_unix_ns"`
	DurNS   int64   `json:"dur_ns"`
	Trace   TraceID `json:"trace_id,omitempty"`
	Span    SpanID  `json:"span_id,omitempty"`
	Parent  SpanID  `json:"parent_span_id,omitempty"`
}

// Sink receives completed span events. Implementations must be safe
// for concurrent Emit calls.
type Sink interface {
	Emit(Event)
}

// Recorder is a bounded in-memory Sink: it keeps the first cap events
// and counts the overflow, so a runaway phase cannot grow memory
// without bound. Registry.Snapshot includes its events.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	dropped int64
}

// NewRecorder returns a recorder holding at most capacity events
// (<= 0 means 1024).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{cap: capacity}
}

// Emit stores the event, or counts it as dropped once full.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped returns the number of events discarded after the buffer
// filled.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Span measures one named phase. It is a plain value — starting a span
// on a nil registry yields the zero Span, whose End is a no-op — so
// disabled tracing allocates nothing. Spans opened under an Op (or via
// Span.Span) additionally carry the trace id and their parent's span
// id, which End stamps onto the emitted Event.
type Span struct {
	r      *Registry
	h      *Histogram
	name   string
	start  time.Time
	trace  TraceID
	id     SpanID
	parent SpanID
}

// Span starts a span on the registry's clock; its duration lands in
// the histogram of the same name, and an Event goes to the sink. The
// span is untraced (no trace/span ids); use Registry.StartOp and
// Op.Span for causal telemetry.
func (r *Registry) Span(name string) Span {
	return r.span(name, 0, 0, 0)
}

// span is the common constructor behind Span, StartOp and child spans.
func (r *Registry) span(name string, trace TraceID, id SpanID, parent SpanID) Span {
	if r == nil {
		return Span{}
	}
	return Span{
		r: r, h: r.Histogram(name), name: name, start: r.Clock().Now(),
		trace: trace, id: id, parent: parent,
	}
}

// Span starts a child span: same trace, fresh span id, s as parent. On
// an untraced or zero span the child is a plain registry span (or a
// zero Span when the receiver is zero), so call sites need no guards.
func (s Span) Span(name string) Span {
	if s.r == nil {
		return Span{}
	}
	if s.trace == 0 {
		return s.r.Span(name)
	}
	return s.r.span(name, s.trace, SpanID(nextID()), s.id)
}

// Trace returns the span's trace id (zero when untraced).
func (s Span) Trace() TraceID { return s.trace }

// ID returns the span's own id (zero when untraced).
func (s Span) ID() SpanID { return s.id }

// End completes the span and returns its duration (0 for a zero Span).
// Traced spans record a slowest-K exemplar on their histogram; the
// completed Event reaches the sink and the flight recorder's span ring.
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := Since(s.r.Clock(), s.start)
	if s.trace != 0 {
		s.h.ObserveTrace(d, s.trace)
	} else {
		s.h.Observe(d)
	}
	s.r.mu.Lock()
	sink := s.r.sink
	fl := s.r.flight
	s.r.mu.Unlock()
	if sink != nil || fl != nil {
		e := Event{
			Name: s.name, StartNS: s.start.UnixNano(), DurNS: int64(d),
			Trace: s.trace, Span: s.id, Parent: s.parent,
		}
		if fl != nil {
			fl.noteSpan(e)
		}
		if sink != nil {
			sink.Emit(e)
		}
	}
	return d
}
