package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogRoundTrip(t *testing.T) {
	clock := NewManual(time.Unix(500, 0))
	var buf strings.Builder
	lg := NewEventLog(&buf, LevelInfo, clock)

	lg.Log(LevelDebug, "t.noise") // below min: dropped
	lg.Log(LevelInfo, "t.fault", F("vertex", "213456"), F("count", 3))
	clock.Advance(time.Second)
	lg.Log(LevelWarn, "t.repair", F("outcome", "splice"))

	recs, err := ReadLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (debug filtered):\n%s", len(recs), buf.String())
	}
	if recs[0].Event != "t.fault" || recs[0].Level != "info" {
		t.Errorf("first record: %+v", recs[0])
	}
	if recs[0].T != time.Unix(500, 0).UnixNano() {
		t.Errorf("timestamp not on the manual clock: %d", recs[0].T)
	}
	if recs[0].Fields["vertex"] != "213456" || recs[0].Fields["count"] != float64(3) {
		t.Errorf("fields lost in round trip: %+v", recs[0].Fields)
	}
	if recs[1].Event != "t.repair" || recs[1].T <= recs[0].T {
		t.Errorf("second record: %+v", recs[1])
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("log is not newline-terminated NDJSON")
	}
	if strings.Count(buf.String(), "\n") != 2 {
		t.Errorf("want one line per event:\n%q", buf.String())
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var lg *EventLog
	if lg.Enabled(LevelError) {
		t.Error("nil log claims to be enabled")
	}
	lg.Log(LevelError, "t.event", F("k", "v")) // must not panic
}

func TestEventLogEnabled(t *testing.T) {
	lg := NewEventLog(&strings.Builder{}, LevelWarn, nil)
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelWarn) || !lg.Enabled(LevelError) {
		t.Error("level threshold not honored")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted nonsense")
	}
	for _, l := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v: %v, %v", l, back, err)
		}
	}
}

func TestReadLogMalformed(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("{\"t_unix_ns\":1}\nnot json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	recs, err := ReadLog(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank-only input: %v, %v", recs, err)
	}
}

// TestEventLogConcurrentWriters hammers one log from many goroutines
// and replays the output: every line must parse back as a record. The
// log writes each marshaled line and its newline as a single Write, so
// concurrent writers (or another producer sharing the io.Writer) can
// never interleave mid-line; run under -race this also proves the
// write path itself is data-race free.
func TestEventLogConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	lg := NewEventLog(&buf, LevelDebug, NewManual(time.Unix(1, 0)))
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lg.Log(LevelInfo, "t.concurrent", F("writer", w), F("i", i))
			}
		}(w)
	}
	wg.Wait()

	recs, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent writers corrupted the log: %v", err)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(recs), writers*perWriter)
	}
	for _, rec := range recs {
		if rec.Event != "t.concurrent" || rec.Fields["writer"] == nil {
			t.Fatalf("mangled record: %+v", rec)
		}
	}
}

// TestRegistryEventLog covers the attach point instrumented subsystems
// reach events through.
func TestRegistryEventLog(t *testing.T) {
	var nilReg *Registry
	if nilReg.EventLog() != nil {
		t.Error("nil registry must hand out a nil (no-op) log")
	}
	nilReg.SetEventLog(NewEventLog(&strings.Builder{}, LevelInfo, nil)) // no-op, no panic

	reg := NewRegistry()
	if reg.EventLog() != nil {
		t.Error("fresh registry must have no event log")
	}
	var buf strings.Builder
	lg := NewEventLog(&buf, LevelInfo, nil)
	reg.SetEventLog(lg)
	if reg.EventLog() != lg {
		t.Error("SetEventLog did not attach")
	}
	reg.EventLog().Log(LevelInfo, "t.attached")
	if !strings.Contains(buf.String(), "t.attached") {
		t.Error("event did not reach the attached log")
	}
	reg.SetEventLog(nil)
	if reg.EventLog() != nil {
		t.Error("SetEventLog(nil) did not detach")
	}
}
