package export

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// testRegistry builds a registry on a manual clock with one metric of
// each kind.
func testRegistry(start time.Time) (*obs.Registry, *obs.Manual) {
	clock := obs.NewManual(start)
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	reg.Counter("t.ops.count").Add(3)
	reg.Gauge("t.pool.size").Set(7)
	reg.Histogram("t.phase.route").Observe(2 * time.Millisecond)
	return reg, clock
}

func TestSamplerSeries(t *testing.T) {
	start := time.Unix(1000, 0)
	reg, clock := testRegistry(start)
	s := NewSampler(reg, SamplerConfig{Capacity: 8})

	s.Sample()
	clock.Advance(time.Second)
	reg.Counter("t.ops.count").Add(5)
	reg.Gauge("t.pool.size").Set(2)
	reg.Histogram("t.phase.route").Observe(4 * time.Millisecond)
	s.Sample()

	byName := map[string]Series{}
	for _, sr := range s.Series() {
		byName[sr.Name] = sr
	}
	// 1 counter + 1 gauge + 4 histogram sub-series.
	if len(byName) != 6 {
		t.Fatalf("got %d series, want 6: %v", len(byName), byName)
	}

	ops := byName["t.ops.count"]
	if ops.Kind != "counter" || len(ops.Samples) != 2 {
		t.Fatalf("t.ops.count series: %+v", ops)
	}
	if ops.Samples[0].V != 3 || ops.Samples[1].V != 8 {
		t.Errorf("counter values = %d, %d; want 3, 8", ops.Samples[0].V, ops.Samples[1].V)
	}
	if ops.Samples[0].T != start.UnixNano() || ops.Samples[1].T != start.Add(time.Second).UnixNano() {
		t.Errorf("timestamps not on the manual clock: %+v", ops.Samples)
	}

	if g := byName["t.pool.size"]; g.Kind != "gauge" || g.Samples[1].V != 2 {
		t.Errorf("gauge series: %+v", g)
	}
	if c := byName["t.phase.route.count"]; c.Kind != "histogram" || c.Samples[0].V != 1 || c.Samples[1].V != 2 {
		t.Errorf("histogram count series: %+v", c)
	}
	if mx := byName["t.phase.route.max_ns"]; mx.Samples[1].V < int64(4*time.Millisecond) {
		t.Errorf("histogram max series did not track the 4ms observation: %+v", mx)
	}
	for _, name := range []string{"t.phase.route.p50_ns", "t.phase.route.p95_ns"} {
		if sr, ok := byName[name]; !ok || len(sr.Samples) != 2 {
			t.Errorf("missing histogram sub-series %s: %+v", name, sr)
		}
	}
}

// TestSamplerRingCapacity checks that the fixed-capacity ring keeps the
// newest samples and drops the oldest.
func TestSamplerRingCapacity(t *testing.T) {
	start := time.Unix(2000, 0)
	reg, clock := testRegistry(start)
	s := NewSampler(reg, SamplerConfig{Capacity: 3})
	for i := 0; i < 5; i++ {
		reg.Counter("t.ops.count").Inc()
		s.Sample()
		clock.Advance(time.Second)
	}
	var ops Series
	for _, sr := range s.Series() {
		if sr.Name == "t.ops.count" {
			ops = sr
		}
	}
	if len(ops.Samples) != 3 {
		t.Fatalf("ring kept %d samples, want 3", len(ops.Samples))
	}
	// Started at 3, +1 before each of 5 samples: values 4..8, ring keeps 6,7,8.
	for i, want := range []int64{6, 7, 8} {
		if ops.Samples[i].V != want {
			t.Errorf("samples[%d].V = %d, want %d (oldest-first)", i, ops.Samples[i].V, want)
		}
	}
	for i := 1; i < len(ops.Samples); i++ {
		if ops.Samples[i].T <= ops.Samples[i-1].T {
			t.Errorf("samples out of order: %+v", ops.Samples)
		}
	}
}

// TestSamplerSteadyStateAllocs is the acceptance check: once every
// metric has a ring, Sample must not allocate.
func TestSamplerSteadyStateAllocs(t *testing.T) {
	reg, clock := testRegistry(time.Unix(3000, 0))
	s := NewSampler(reg, SamplerConfig{Capacity: 16})
	s.Sample() // materialize every ring
	clock.Advance(time.Millisecond)

	allocs := testing.AllocsPerRun(200, func() {
		clock.Advance(time.Millisecond)
		s.Sample()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Sample allocates %.1f times per run, want 0", allocs)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("t.ops.count").Add(1)
	s := NewSampler(reg, SamplerConfig{Period: time.Millisecond, Capacity: 1024})
	stop := s.Start()
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent

	series := s.Series()
	if len(series) == 0 || len(series[0].Samples) == 0 {
		t.Fatalf("ticker recorded no samples: %+v", series)
	}
	n := len(series[0].Samples)
	time.Sleep(5 * time.Millisecond)
	if got := len(s.Series()[0].Samples); got != n {
		t.Errorf("sampler kept ticking after stop: %d -> %d samples", n, got)
	}
}

func TestSamplerWriteJSON(t *testing.T) {
	reg, _ := testRegistry(time.Unix(4000, 0))
	s := NewSampler(reg, SamplerConfig{Capacity: 4, Period: 250 * time.Millisecond})
	s.Sample()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump SeriesDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.PeriodNS != int64(250*time.Millisecond) {
		t.Errorf("period_ns = %d", dump.PeriodNS)
	}
	if len(dump.Series) != 6 {
		t.Errorf("got %d series, want 6", len(dump.Series))
	}
	for i := 1; i < len(dump.Series); i++ {
		if dump.Series[i].Name <= dump.Series[i-1].Name {
			t.Errorf("series not sorted by name: %q after %q", dump.Series[i].Name, dump.Series[i-1].Name)
		}
	}
}
