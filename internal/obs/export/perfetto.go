package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// Chrome trace_event JSON (the Trace Event Format), loadable by
// Perfetto and chrome://tracing. Every completed obs span becomes one
// "complete" ("ph":"X") event, so the core.phase.* pipeline and the
// repair spans render as a real timeline.

// TraceEvent is one trace_event record. Timestamps and durations are
// microseconds, the format's native unit.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// Trace is the JSON-object form of a trace file.
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// NewTrace converts recorded span events into a trace. Timestamps are
// rebased to the earliest span so the timeline starts near zero.
func NewTrace(events []obs.Event) Trace {
	tr := Trace{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
	var base int64
	for i, e := range events {
		if i == 0 || e.StartNS < base {
			base = e.StartNS
		}
	}
	for _, e := range events {
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: e.Name,
			Cat:  "obs",
			Ph:   "X",
			TS:   float64(e.StartNS-base) / 1e3,
			Dur:  float64(e.DurNS) / 1e3,
			PID:  1,
			TID:  1,
		})
	}
	return tr
}

// WriteTrace writes the spans as one indented trace_event JSON object.
func WriteTrace(w io.Writer, events []obs.Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewTrace(events))
}

// WriteTraceFile writes the trace to path (the CLIs' -trace-out flag).
func WriteTraceFile(path string, events []obs.Event) error {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ValidateTrace checks that data is a Perfetto-loadable trace_event
// document — valid JSON in the object form, every event carrying a
// name and a known phase, complete events with non-negative ts/dur —
// and returns the number of complete ("X") events. It backs the
// exporter's tests, the CI trace smoke leg, and starmon -check-trace.
func ValidateTrace(data []byte) (complete int, err error) {
	var tr struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return 0, fmt.Errorf("not trace_event JSON: %w", err)
	}
	if tr.TraceEvents == nil {
		return 0, fmt.Errorf("missing traceEvents array")
	}
	for i, e := range tr.TraceEvents {
		if e.Name == nil || *e.Name == "" {
			return 0, fmt.Errorf("traceEvents[%d]: missing name", i)
		}
		if e.Ph == nil || *e.Ph == "" {
			return 0, fmt.Errorf("traceEvents[%d]: missing ph", i)
		}
		if *e.Ph != "X" {
			continue
		}
		if e.TS == nil || *e.TS < 0 {
			return 0, fmt.Errorf("traceEvents[%d]: complete event needs ts >= 0", i)
		}
		if e.Dur == nil || *e.Dur < 0 {
			return 0, fmt.Errorf("traceEvents[%d]: complete event needs dur >= 0", i)
		}
		complete++
	}
	return complete, nil
}
