package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

// Chrome trace_event JSON (the Trace Event Format), loadable by
// Perfetto and chrome://tracing. Every completed obs span becomes one
// "complete" ("ph":"X") event. Spans are grouped into one named track
// per trace id (untraced spans share a track), nested within a track by
// lane assignment so overlapping siblings never collide, and parent →
// child causality is drawn as flow events ("ph":"s"/"f") across
// tracks — the trace renders as a real causal timeline, not a flat row.

// TraceEvent is one trace_event record. Timestamps and durations are
// microseconds, the format's native unit. ID/BP serve flow events; Args
// carries the trace identity of traced spans.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// Trace is the JSON-object form of a trace file.
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// interval is one occupied [start, end) slot in a lane.
type interval struct{ s, e int64 }

// partialOverlap reports whether two intervals overlap without either
// containing the other — the one arrangement a single trace_event lane
// cannot render (containment nests; disjoint stacks side by side).
func partialOverlap(s1, e1, s2, e2 int64) bool {
	if e1 <= s2 || e2 <= s1 {
		return false
	}
	if s2 >= s1 && e2 <= e1 {
		return false
	}
	if s1 >= s2 && e1 <= e2 {
		return false
	}
	return true
}

// NewTrace converts recorded span events into a trace. Timestamps are
// rebased to the earliest span so the timeline starts near zero. Each
// trace id gets its own contiguous band of tids, labeled by a
// thread_name metadata event; within a band, spans go to the lowest
// lane where they either nest or sit disjoint. Traced spans carry
// trace_id/span_id/parent_span_id args, and every parent → child edge
// emits a flow-start on the parent's lane and a flow-finish on the
// child's, so Perfetto draws the causal arrows.
func NewTrace(events []obs.Event) Trace {
	tr := Trace{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
	var base int64
	for i, e := range events {
		if i == 0 || e.StartNS < base {
			base = e.StartNS
		}
	}

	// Sort by start, longer span first on ties, so parents claim their
	// lane before the children they contain.
	sorted := make([]obs.Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].StartNS != sorted[j].StartNS {
			return sorted[i].StartNS < sorted[j].StartNS
		}
		return sorted[i].DurNS > sorted[j].DurNS
	})

	// Group into one band per trace id, in order of first appearance.
	type group struct {
		trace obs.TraceID
		evs   []obs.Event
	}
	var groups []*group
	byTrace := map[obs.TraceID]*group{}
	for _, e := range sorted {
		g, ok := byTrace[e.Trace]
		if !ok {
			g = &group{trace: e.Trace}
			byTrace[e.Trace] = g
			groups = append(groups, g)
		}
		g.evs = append(g.evs, e)
	}

	spanTID := map[obs.SpanID]int{}
	tid := 1
	for _, g := range groups {
		bandStart := tid
		var lanes [][]interval
		laneOf := make([]int, len(g.evs))
		for i, e := range g.evs {
			s, en := e.StartNS, e.StartNS+e.DurNS
			lane := -1
			for li := range lanes {
				fits := true
				for _, o := range lanes[li] {
					if partialOverlap(s, en, o.s, o.e) {
						fits = false
						break
					}
				}
				if fits {
					lane = li
					break
				}
			}
			if lane < 0 {
				lanes = append(lanes, nil)
				lane = len(lanes) - 1
			}
			lanes[lane] = append(lanes[lane], interval{s, en})
			laneOf[i] = lane
		}

		label := "untraced"
		if g.trace != 0 {
			label = "trace " + g.trace.String()
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", PID: 1, TID: bandStart,
			Args: map[string]string{"name": label},
		})

		for i, e := range g.evs {
			t := bandStart + laneOf[i]
			ev := TraceEvent{
				Name: e.Name, Cat: "obs", Ph: "X",
				TS: float64(e.StartNS-base) / 1e3, Dur: float64(e.DurNS) / 1e3,
				PID: 1, TID: t,
			}
			if e.Trace != 0 {
				ev.Args = map[string]string{
					"trace_id": e.Trace.String(),
					"span_id":  e.Span.String(),
				}
				if e.Parent != 0 {
					ev.Args["parent_span_id"] = e.Parent.String()
				}
				spanTID[e.Span] = t
			}
			tr.TraceEvents = append(tr.TraceEvents, ev)
		}
		tid += len(lanes)
	}

	// Causal arrows: one flow per parent → child edge whose parent span
	// completed inside this recording.
	for _, e := range sorted {
		if e.Parent == 0 || e.Span == 0 {
			continue
		}
		ptid, ok := spanTID[e.Parent]
		if !ok {
			continue
		}
		ts := float64(e.StartNS-base) / 1e3
		id := e.Span.String()
		tr.TraceEvents = append(tr.TraceEvents,
			TraceEvent{Name: "obs.flow", Cat: "obs.flow", Ph: "s", TS: ts, PID: 1, TID: ptid, ID: id},
			TraceEvent{Name: "obs.flow", Cat: "obs.flow", Ph: "f", BP: "e", TS: ts, PID: 1, TID: spanTID[e.Span], ID: id},
		)
	}
	return tr
}

// WriteTrace writes the spans as one indented trace_event JSON object.
func WriteTrace(w io.Writer, events []obs.Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewTrace(events))
}

// WriteTraceFile writes the trace to path (the CLIs' -trace-out flag).
func WriteTraceFile(path string, events []obs.Event) error {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ValidateTrace checks that data is a Perfetto-loadable trace_event
// document — valid JSON in the object form, every event carrying a
// name and a known phase, complete events with non-negative ts/dur —
// and returns the number of complete ("X") events. It backs the
// exporter's tests, the CI trace smoke leg, and starmon -check-trace.
func ValidateTrace(data []byte) (complete int, err error) {
	var tr struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return 0, fmt.Errorf("not trace_event JSON: %w", err)
	}
	if tr.TraceEvents == nil {
		return 0, fmt.Errorf("missing traceEvents array")
	}
	for i, e := range tr.TraceEvents {
		if e.Name == nil || *e.Name == "" {
			return 0, fmt.Errorf("traceEvents[%d]: missing name", i)
		}
		if e.Ph == nil || *e.Ph == "" {
			return 0, fmt.Errorf("traceEvents[%d]: missing ph", i)
		}
		if *e.Ph != "X" {
			continue
		}
		if e.TS == nil || *e.TS < 0 {
			return 0, fmt.Errorf("traceEvents[%d]: complete event needs ts >= 0", i)
		}
		if e.Dur == nil || *e.Dur < 0 {
			return 0, fmt.Errorf("traceEvents[%d]: complete event needs dur >= 0", i)
		}
		complete++
	}
	return complete, nil
}

// TraceSpanIDs returns the set of span ids (hex form) present as
// complete events in a trace_event document, keyed additionally by
// trace id. starmon's -check-events cross-check resolves event-log
// trace ids against this.
func TraceSpanIDs(data []byte) (spans map[string]bool, traces map[string]bool, err error) {
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, nil, fmt.Errorf("not trace_event JSON: %w", err)
	}
	spans = map[string]bool{}
	traces = map[string]bool{}
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" || e.Args == nil {
			continue
		}
		if id := e.Args["span_id"]; id != "" {
			spans[id] = true
		}
		if id := e.Args["trace_id"]; id != "" {
			traces[id] = true
		}
	}
	return spans, traces, nil
}
