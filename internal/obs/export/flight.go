package export

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// The post-mortem bundle: the flight recorder's black box serialized as
// three artifacts that every existing checker already understands —
//
//	flight-events.ndjson  the retained event-log records (obs.ReadLog)
//	flight-trace.json     the retained spans as a Perfetto trace
//	flight-metrics.txt    an OpenMetrics snapshot at dump time
//
// WriteFlightBundle lays them out in a directory (the -flight-dump flag
// and the on-error auto-dump), FlightHandler streams them as one tar
// over /debug/flight, and ReadFlightBundle loads either form back for
// starmon -postmortem.

// Bundle artifact names, shared by the writer, the HTTP handler and the
// reader.
const (
	FlightEventsName  = "flight-events.ndjson"
	FlightTraceName   = "flight-trace.json"
	FlightMetricsName = "flight-metrics.txt"
)

// flightArtifacts renders the recorder's current state into the three
// serialized artifacts.
func flightArtifacts(f *obs.FlightRecorder) (events, trace, metrics []byte, err error) {
	var ev bytes.Buffer
	for _, rec := range f.Events() {
		line, err := json.Marshal(rec)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("export: flight record: %w", err)
		}
		ev.Write(append(line, '\n')) //starlint:ignore uncheckederr bytes.Buffer.Write cannot fail
	}
	var tr bytes.Buffer
	if err := WriteTrace(&tr, f.SpanEvents()); err != nil {
		return nil, nil, nil, err
	}
	var om bytes.Buffer
	if err := WriteOpenMetrics(&om, f.Registry().Snapshot()); err != nil {
		return nil, nil, nil, err
	}
	return ev.Bytes(), tr.Bytes(), om.Bytes(), nil
}

// WriteFlightBundle dumps the recorder's state into dir (created if
// missing), replacing any previous bundle there.
func WriteFlightBundle(dir string, f *obs.FlightRecorder) error {
	if f == nil {
		return fmt.Errorf("export: no flight recorder installed")
	}
	events, trace, metrics, err := flightArtifacts(f)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range []struct {
		name string
		data []byte
	}{
		{FlightEventsName, events},
		{FlightTraceName, trace},
		{FlightMetricsName, metrics},
	} {
		if err := os.WriteFile(filepath.Join(dir, a.name), a.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// FlightBundleWriter adapts WriteFlightBundle to the dump-function
// shape FlightRecorder.SetAutoDump takes (the recorder cannot import
// this package).
func FlightBundleWriter(f *obs.FlightRecorder) func(dir string) error {
	return func(dir string) error { return WriteFlightBundle(dir, f) }
}

// FlightHandler serves the bundle as a tar stream on demand; mount it
// at /debug/flight on the obs debug server. Fetch with e.g.
// `curl http://addr/debug/flight | tar -x`.
func FlightHandler(f *obs.FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if f == nil {
			http.Error(w, "no flight recorder installed", http.StatusNotFound)
			return
		}
		events, trace, metrics, err := flightArtifacts(f)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-tar")
		tw := tar.NewWriter(w)
		for _, a := range []struct {
			name string
			data []byte
		}{
			{FlightEventsName, events},
			{FlightTraceName, trace},
			{FlightMetricsName, metrics},
		} {
			if err := tw.WriteHeader(&tar.Header{
				Name: a.name, Mode: 0o644, Size: int64(len(a.data)),
			}); err != nil {
				return
			}
			if _, err := tw.Write(a.data); err != nil {
				return
			}
		}
		_ = tw.Close()
	})
}

// FlightBundle is a loaded post-mortem bundle.
type FlightBundle struct {
	Events  []obs.Record
	Trace   []byte // raw trace_event JSON
	Metrics []byte // raw OpenMetrics text
}

// ReadFlightBundle loads a bundle from either form: a directory written
// by WriteFlightBundle, or a tar stream saved from /debug/flight.
func ReadFlightBundle(path string) (*FlightBundle, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var raw map[string][]byte
	if info.IsDir() {
		raw = map[string][]byte{}
		for _, name := range []string{FlightEventsName, FlightTraceName, FlightMetricsName} {
			data, err := os.ReadFile(filepath.Join(path, name))
			if err != nil {
				return nil, fmt.Errorf("export: flight bundle: %w", err)
			}
			raw[name] = data
		}
	} else {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		raw, err = readFlightTar(file)
		if err != nil {
			return nil, err
		}
	}
	b := &FlightBundle{Trace: raw[FlightTraceName], Metrics: raw[FlightMetricsName]}
	b.Events, err = obs.ReadLog(bytes.NewReader(raw[FlightEventsName]))
	if err != nil {
		return nil, err
	}
	if b.Trace == nil || b.Metrics == nil {
		return nil, fmt.Errorf("export: flight bundle %s is incomplete", path)
	}
	return b, nil
}

// readFlightTar extracts the three bundle members from a tar stream.
func readFlightTar(r io.Reader) (map[string][]byte, error) {
	want := map[string]bool{
		FlightEventsName: true, FlightTraceName: true, FlightMetricsName: true,
	}
	raw := map[string][]byte{}
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("export: flight tar: %w", err)
		}
		if !want[hdr.Name] {
			continue
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("export: flight tar %s: %w", hdr.Name, err)
		}
		raw[hdr.Name] = data
	}
	if len(raw) != len(want) {
		return nil, fmt.Errorf("export: flight tar is missing bundle members (got %d of %d)", len(raw), len(want))
	}
	return raw, nil
}
