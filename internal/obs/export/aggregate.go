package export

import (
	"repro/internal/obs"
)

// Aggregate merges N registry snapshots — typically one per machine in
// a sim fleet, taken from sibling child registries — into one fleet
// view:
//
//   - counters sum (total embeds across the fleet),
//   - gauges take the maximum (worst ring length deficit, peak
//     workers), which is the useful fleet reading for the gauges this
//     repo exports,
//   - histograms merge bucket-wise via obs.MergeHistogramStats, so
//     fleet quantiles come from the combined distribution rather than
//     an average of per-machine quantiles,
//   - Labels keep only the key/value pairs every input agrees on (the
//     common ancestry); per-machine keys like machine="m3" drop out,
//   - events are dropped — they remain per-machine evidence.
//
// Metric identities merge by their snapshot key, so inputs should be
// snapshots taken at the same registry depth (e.g. each machine's own
// child registry): their relative keys then line up exactly.
func Aggregate(snaps ...obs.Snapshot) obs.Snapshot {
	out := obs.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]obs.HistogramStats{},
	}
	for i, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if cur, ok := out.Gauges[k]; !ok || v > cur {
				out.Gauges[k] = v
			}
		}
		for k, st := range s.Histograms {
			// Exemplars are per-machine trace evidence; the merged
			// stats drop them rather than pretend a fleet histogram
			// observed one machine's trace.
			st.Exemplars = nil
			if cur, ok := out.Histograms[k]; ok {
				out.Histograms[k] = obs.MergeHistogramStats(cur, st)
			} else {
				out.Histograms[k] = st
			}
		}
		if i == 0 {
			for k, v := range s.Labels {
				if out.Labels == nil {
					out.Labels = map[string]string{}
				}
				out.Labels[k] = v
			}
			continue
		}
		for k, v := range out.Labels {
			if sv, ok := s.Labels[k]; !ok || sv != v {
				delete(out.Labels, k)
			}
		}
	}
	if len(out.Labels) == 0 {
		out.Labels = nil
	}
	return out
}
