package export

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// fleetSnaps builds two machine snapshots from real registries so the
// histogram merge runs over genuine bucket counts.
func fleetSnaps(t *testing.T) (obs.Snapshot, obs.Snapshot) {
	t.Helper()
	mk := func(id string, embeds int64, ring int64, durs []time.Duration) obs.Snapshot {
		r := obs.NewRegistry().Child("cluster", "c0").Child("machine", id)
		r.Counter("sim.embeds").Add(embeds)
		r.Gauge("sim.ring_length").Set(ring)
		for _, d := range durs {
			r.Histogram("sim.phase.repair").Observe(d)
		}
		return r.Snapshot()
	}
	a := mk("m0", 3, 100, []time.Duration{time.Millisecond, 2 * time.Millisecond})
	b := mk("m1", 5, 120, []time.Duration{4 * time.Millisecond})
	return a, b
}

func TestAggregate(t *testing.T) {
	a, b := fleetSnaps(t)
	fleet := Aggregate(a, b)

	if got := fleet.Counters["sim.embeds"]; got != 8 {
		t.Errorf("counters should sum: %d, want 8", got)
	}
	if got := fleet.Gauges["sim.ring_length"]; got != 120 {
		t.Errorf("gauges should max: %d, want 120", got)
	}
	h := fleet.Histograms["sim.phase.repair"]
	if h.Count != 3 {
		t.Errorf("merged count = %d, want 3", h.Count)
	}
	if want := int64(7 * time.Millisecond); h.SumNS != want {
		t.Errorf("merged sum = %d, want %d", h.SumNS, want)
	}
	if want := int64(4 * time.Millisecond); h.MaxNS != want {
		t.Errorf("merged max = %d, want %d", h.MaxNS, want)
	}
	// Bucket-wise merge: the fleet p95 lands in the slowest machine's
	// bucket, not at an average of per-machine quantiles.
	if h.P95NS < int64(2*time.Millisecond) {
		t.Errorf("merged p95 = %d, want >= the 4ms observation's bucket", h.P95NS)
	}
	if len(h.Exemplars) != 0 {
		t.Errorf("fleet histogram kept exemplars: %v", h.Exemplars)
	}

	// Shared ancestry labels survive; per-machine identity drops out.
	if got := fleet.Labels["cluster"]; got != "c0" {
		t.Errorf("fleet labels = %v, want cluster=c0 kept", fleet.Labels)
	}
	if _, ok := fleet.Labels["machine"]; ok {
		t.Errorf("fleet labels kept machine identity: %v", fleet.Labels)
	}
}

func TestAggregateDegenerate(t *testing.T) {
	empty := Aggregate()
	if len(empty.Counters)+len(empty.Gauges)+len(empty.Histograms) != 0 || empty.Labels != nil {
		t.Errorf("Aggregate() = %+v, want empty", empty)
	}
	a, _ := fleetSnaps(t)
	one := Aggregate(a)
	if one.Counters["sim.embeds"] != a.Counters["sim.embeds"] ||
		one.Labels["machine"] != "m0" {
		t.Errorf("single-input aggregate should be the identity: %+v", one)
	}
}

// TestAggregateQuantilesWithoutBuckets covers snapshots predating
// bucket capture (or hand-built ones): the merge must stay pessimistic
// rather than invent a distribution.
func TestAggregateQuantilesWithoutBuckets(t *testing.T) {
	a := obs.Snapshot{
		Counters: map[string]int64{}, Gauges: map[string]int64{},
		Histograms: map[string]obs.HistogramStats{
			"h": {Count: 2, SumNS: 30, P50NS: 10, P95NS: 20, MaxNS: 20},
		},
	}
	b := obs.Snapshot{
		Counters: map[string]int64{}, Gauges: map[string]int64{},
		Histograms: map[string]obs.HistogramStats{
			"h": {Count: 1, SumNS: 50, P50NS: 50, P95NS: 50, MaxNS: 50},
		},
	}
	h := Aggregate(a, b).Histograms["h"]
	if h.Count != 3 || h.SumNS != 80 || h.MaxNS != 50 {
		t.Errorf("merged = %+v", h)
	}
	if h.P50NS != 50 || h.P95NS != 50 {
		t.Errorf("bucketless merge should take pessimistic quantiles: %+v", h)
	}
}
