package export

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// The OpenMetrics text exposition (the format Prometheus scrapes).
// Dotted obs names map to underscore families: "core.s4.cache_hits"
// becomes counter core_s4_cache_hits (sample core_s4_cache_hits_total),
// gauges keep their name, and each histogram is exposed as a summary —
// p50/p95 quantiles plus _sum and _count, all in seconds — with the
// tracked maximum as a companion <name>_max_seconds gauge.

// openMetricsContentType is the content type Prometheus negotiates for
// OpenMetrics 1.0.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// MetricName maps a dotted obs metric name onto the OpenMetrics
// grammar: dots become underscores, anything else invalid becomes '_'.
func MetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// seconds renders nanoseconds as an OpenMetrics float in seconds.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// omFamily accumulates one exposition family: its TYPE and the sample
// lines belonging to it (rendered, unsorted).
type omFamily struct {
	typ   string
	lines []string
}

// renderLabels renders a label set as an exposition label clause, ""
// when empty.
func renderLabels(ls obs.Labels) string {
	if len(ls) == 0 {
		return ""
	}
	return "{" + ls.String() + "}"
}

// WriteOpenMetrics renders one registry snapshot as OpenMetrics text,
// deterministically ordered, terminated by the mandatory "# EOF".
// Labeled metric identities (name{k="v"} snapshot keys) become label
// sets on the sample lines, merged over the snapshot's own Labels, and
// every label set of one family shares a single TYPE declaration.
func WriteOpenMetrics(w io.Writer, snap obs.Snapshot) error {
	base := obs.LabelsFromMap(snap.Labels)
	fams := map[string]*omFamily{}
	add := func(fam, typ, line string) {
		f := fams[fam]
		if f == nil {
			f = &omFamily{typ: typ}
			fams[fam] = f
		}
		f.lines = append(f.lines, line)
	}
	split := func(encoded string) (string, obs.Labels, error) {
		name, ls, err := obs.ParseName(encoded)
		if err != nil {
			return "", nil, err
		}
		return MetricName(name), base.Merge(ls), nil
	}

	for name, v := range snap.Counters {
		m, ls, err := split(name)
		if err != nil {
			return err
		}
		add(m, "counter", fmt.Sprintf("%s_total%s %d", m, renderLabels(ls), v))
	}
	for name, v := range snap.Gauges {
		m, ls, err := split(name)
		if err != nil {
			return err
		}
		add(m, "gauge", fmt.Sprintf("%s%s %d", m, renderLabels(ls), v))
	}
	for name, st := range snap.Histograms {
		m, ls, err := split(name)
		if err != nil {
			return err
		}
		q50 := ls.Merge(obs.Labels{{Key: "quantile", Value: "0.5"}})
		q95 := ls.Merge(obs.Labels{{Key: "quantile", Value: "0.95"}})
		add(m, "summary", fmt.Sprintf("%s%s %s", m, renderLabels(q50), seconds(st.P50NS)))
		if len(st.Exemplars) > 0 {
			// OpenMetrics exemplar syntax: the slowest traced
			// observation rides the p95 line with its trace id, so a
			// dashboard outlier links straight to its trace.
			ex := st.Exemplars[0]
			add(m, "summary", fmt.Sprintf("%s%s %s # {trace_id=\"%s\"} %s",
				m, renderLabels(q95), seconds(st.P95NS), ex.Trace, seconds(ex.NS)))
		} else {
			add(m, "summary", fmt.Sprintf("%s%s %s", m, renderLabels(q95), seconds(st.P95NS)))
		}
		add(m, "summary", fmt.Sprintf("%s_sum%s %s", m, renderLabels(ls), seconds(st.SumNS)))
		add(m, "summary", fmt.Sprintf("%s_count%s %d", m, renderLabels(ls), st.Count))
		add(m+"_max_seconds", "gauge",
			fmt.Sprintf("%s_max_seconds%s %s", m, renderLabels(ls), seconds(st.MaxNS)))
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := fams[name]
		sort.Strings(f.lines)
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			fmt.Fprintln(bw, line)
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// MetricsHandler serves the registry's live snapshot as OpenMetrics
// text; mount it at /metrics on the obs debug server.
func MetricsHandler(r *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", openMetricsContentType)
		_ = WriteOpenMetrics(w, r.Snapshot())
	})
}

var (
	omNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// Sample grammar: name, optional labelset, value, optional
	// timestamp, optional exemplar (" # {labels} value [timestamp]").
	omSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)( [0-9.e+-]+)?( # \{([^{}]*)\} (\S+)( [0-9.e+-]+)?)?$`)
	omTypes    = map[string]bool{
		"counter": true, "gauge": true, "summary": true, "histogram": true,
		"info": true, "stateset": true, "unknown": true,
	}
)

// ValidateOpenMetrics checks that data is well-formed OpenMetrics text
// and returns the number of metric families; see
// ValidateOpenMetricsDetail for the full contract.
func ValidateOpenMetrics(data []byte) (families int, err error) {
	families, _, err = ValidateOpenMetricsDetail(data)
	return families, err
}

// ValidateOpenMetricsDetail checks that data is well-formed OpenMetrics
// text: metadata lines declare known types over legal names, every
// sample belongs to a declared family with the suffix its type allows,
// values (and exemplar values) parse as floats, and the exposition ends
// with "# EOF". It returns the number of metric families and of
// exemplar-carrying samples. It backs the exporter's unit tests, the
// CI /metrics smoke leg, and starmon -check-metrics.
func ValidateOpenMetricsDetail(data []byte) (families, exemplars int, err error) {
	lines := strings.Split(string(data), "\n")
	declared := map[string]string{} // family -> type
	sawEOF := false
	for i, line := range lines {
		lineno := i + 1
		if sawEOF {
			if strings.TrimSpace(line) != "" {
				return 0, 0, fmt.Errorf("line %d: content after # EOF", lineno)
			}
			continue
		}
		if line == "" {
			continue
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || fields[0] != "#" {
				return 0, 0, fmt.Errorf("line %d: malformed metadata line %q", lineno, line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return 0, 0, fmt.Errorf("line %d: TYPE wants '# TYPE <name> <type>', got %q", lineno, line)
				}
				name, typ := fields[2], fields[3]
				if !omNameRE.MatchString(name) {
					return 0, 0, fmt.Errorf("line %d: illegal metric family name %q", lineno, name)
				}
				if !omTypes[typ] {
					return 0, 0, fmt.Errorf("line %d: unknown metric type %q", lineno, typ)
				}
				if _, dup := declared[name]; dup {
					return 0, 0, fmt.Errorf("line %d: family %q declared twice", lineno, name)
				}
				declared[name] = typ
			case "HELP", "UNIT":
				// Optional metadata; name syntax is all we check.
				if !omNameRE.MatchString(fields[2]) {
					return 0, 0, fmt.Errorf("line %d: illegal metric family name %q", lineno, fields[2])
				}
			default:
				return 0, 0, fmt.Errorf("line %d: unknown metadata keyword %q", lineno, fields[1])
			}
			continue
		}
		m := omSampleRE.FindStringSubmatch(line)
		if m == nil {
			return 0, 0, fmt.Errorf("line %d: malformed sample line %q", lineno, line)
		}
		if m[2] != "" {
			if err := validateLabelSet(m[2][1 : len(m[2])-1]); err != nil {
				return 0, 0, fmt.Errorf("line %d: %v", lineno, err)
			}
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			return 0, 0, fmt.Errorf("line %d: sample value %q is not a float", lineno, m[3])
		}
		if familyOf(m[1], declared) == "" {
			return 0, 0, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineno, m[1])
		}
		if m[5] != "" {
			if _, err := strconv.ParseFloat(m[7], 64); err != nil {
				return 0, 0, fmt.Errorf("line %d: exemplar value %q is not a float", lineno, m[7])
			}
			exemplars++
		}
	}
	if !sawEOF {
		return 0, 0, fmt.Errorf("missing # EOF terminator")
	}
	return len(declared), exemplars, nil
}

// omLabelNameRE is the OpenMetrics label-name grammar.
var omLabelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// validateLabelSet checks the interior of a sample's {...} clause:
// name="value" pairs separated by commas, legal label names, properly
// quoted values with only the \\, \" and \n escapes, and no duplicate
// names. body is the clause without its braces.
func validateLabelSet(body string) error {
	seen := map[string]bool{}
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return fmt.Errorf("malformed label pair near %q", body)
		}
		name := body[:eq]
		if !omLabelNameRE.MatchString(name) {
			return fmt.Errorf("illegal label name %q", name)
		}
		if seen[name] {
			return fmt.Errorf("duplicate label name %q", name)
		}
		seen[name] = true
		rest := body[eq+2:]
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return fmt.Errorf("dangling escape in label %q", name)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
					i++
				default:
					return fmt.Errorf("illegal escape \\%c in label %q", rest[i+1], name)
				}
				continue
			}
			if c == '"' {
				break
			}
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated value for label %q", name)
		}
		body = rest[i+1:]
		if body == "" {
			return nil
		}
		if body[0] != ',' {
			return fmt.Errorf("expected ',' after label %q", name)
		}
		body = body[1:]
		if body == "" {
			return fmt.Errorf("trailing comma in label set")
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family, honoring the
// per-type suffixes OpenMetrics allows (_total, _sum, _count, _bucket,
// _created), or "" when no declaration covers it.
func familyOf(sample string, declared map[string]string) string {
	if _, ok := declared[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_total", "_sum", "_count", "_bucket", "_created"} {
		base, found := strings.CutSuffix(sample, suf)
		if !found {
			continue
		}
		if _, ok := declared[base]; ok {
			return base
		}
	}
	return ""
}
