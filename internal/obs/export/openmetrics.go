package export

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// The OpenMetrics text exposition (the format Prometheus scrapes).
// Dotted obs names map to underscore families: "core.s4.cache_hits"
// becomes counter core_s4_cache_hits (sample core_s4_cache_hits_total),
// gauges keep their name, and each histogram is exposed as a summary —
// p50/p95 quantiles plus _sum and _count, all in seconds — with the
// tracked maximum as a companion <name>_max_seconds gauge.

// openMetricsContentType is the content type Prometheus negotiates for
// OpenMetrics 1.0.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// MetricName maps a dotted obs metric name onto the OpenMetrics
// grammar: dots become underscores, anything else invalid becomes '_'.
func MetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// seconds renders nanoseconds as an OpenMetrics float in seconds.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WriteOpenMetrics renders one registry snapshot as OpenMetrics text,
// deterministically ordered, terminated by the mandatory "# EOF".
func WriteOpenMetrics(w io.Writer, snap obs.Snapshot) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := MetricName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", m)
		fmt.Fprintf(bw, "%s_total %d\n", m, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := MetricName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", m)
		fmt.Fprintf(bw, "%s %d\n", m, snap.Gauges[name])
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := snap.Histograms[name]
		m := MetricName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", m)
		fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", m, seconds(st.P50NS))
		if len(st.Exemplars) > 0 {
			// OpenMetrics exemplar syntax: the slowest traced
			// observation rides the p95 line with its trace id, so a
			// dashboard outlier links straight to its trace.
			ex := st.Exemplars[0]
			fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s # {trace_id=\"%s\"} %s\n",
				m, seconds(st.P95NS), ex.Trace, seconds(ex.NS))
		} else {
			fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s\n", m, seconds(st.P95NS))
		}
		fmt.Fprintf(bw, "%s_sum %s\n", m, seconds(st.SumNS))
		fmt.Fprintf(bw, "%s_count %d\n", m, st.Count)
		fmt.Fprintf(bw, "# TYPE %s_max_seconds gauge\n", m)
		fmt.Fprintf(bw, "%s_max_seconds %s\n", m, seconds(st.MaxNS))
	}

	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// MetricsHandler serves the registry's live snapshot as OpenMetrics
// text; mount it at /metrics on the obs debug server.
func MetricsHandler(r *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", openMetricsContentType)
		_ = WriteOpenMetrics(w, r.Snapshot())
	})
}

var (
	omNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// Sample grammar: name, optional labelset, value, optional
	// timestamp, optional exemplar (" # {labels} value [timestamp]").
	omSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)( [0-9.e+-]+)?( # \{([^{}]*)\} (\S+)( [0-9.e+-]+)?)?$`)
	omTypes    = map[string]bool{
		"counter": true, "gauge": true, "summary": true, "histogram": true,
		"info": true, "stateset": true, "unknown": true,
	}
)

// ValidateOpenMetrics checks that data is well-formed OpenMetrics text
// and returns the number of metric families; see
// ValidateOpenMetricsDetail for the full contract.
func ValidateOpenMetrics(data []byte) (families int, err error) {
	families, _, err = ValidateOpenMetricsDetail(data)
	return families, err
}

// ValidateOpenMetricsDetail checks that data is well-formed OpenMetrics
// text: metadata lines declare known types over legal names, every
// sample belongs to a declared family with the suffix its type allows,
// values (and exemplar values) parse as floats, and the exposition ends
// with "# EOF". It returns the number of metric families and of
// exemplar-carrying samples. It backs the exporter's unit tests, the
// CI /metrics smoke leg, and starmon -check-metrics.
func ValidateOpenMetricsDetail(data []byte) (families, exemplars int, err error) {
	lines := strings.Split(string(data), "\n")
	declared := map[string]string{} // family -> type
	sawEOF := false
	for i, line := range lines {
		lineno := i + 1
		if sawEOF {
			if strings.TrimSpace(line) != "" {
				return 0, 0, fmt.Errorf("line %d: content after # EOF", lineno)
			}
			continue
		}
		if line == "" {
			continue
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || fields[0] != "#" {
				return 0, 0, fmt.Errorf("line %d: malformed metadata line %q", lineno, line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return 0, 0, fmt.Errorf("line %d: TYPE wants '# TYPE <name> <type>', got %q", lineno, line)
				}
				name, typ := fields[2], fields[3]
				if !omNameRE.MatchString(name) {
					return 0, 0, fmt.Errorf("line %d: illegal metric family name %q", lineno, name)
				}
				if !omTypes[typ] {
					return 0, 0, fmt.Errorf("line %d: unknown metric type %q", lineno, typ)
				}
				if _, dup := declared[name]; dup {
					return 0, 0, fmt.Errorf("line %d: family %q declared twice", lineno, name)
				}
				declared[name] = typ
			case "HELP", "UNIT":
				// Optional metadata; name syntax is all we check.
				if !omNameRE.MatchString(fields[2]) {
					return 0, 0, fmt.Errorf("line %d: illegal metric family name %q", lineno, fields[2])
				}
			default:
				return 0, 0, fmt.Errorf("line %d: unknown metadata keyword %q", lineno, fields[1])
			}
			continue
		}
		m := omSampleRE.FindStringSubmatch(line)
		if m == nil {
			return 0, 0, fmt.Errorf("line %d: malformed sample line %q", lineno, line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			return 0, 0, fmt.Errorf("line %d: sample value %q is not a float", lineno, m[3])
		}
		if familyOf(m[1], declared) == "" {
			return 0, 0, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineno, m[1])
		}
		if m[5] != "" {
			if _, err := strconv.ParseFloat(m[7], 64); err != nil {
				return 0, 0, fmt.Errorf("line %d: exemplar value %q is not a float", lineno, m[7])
			}
			exemplars++
		}
	}
	if !sawEOF {
		return 0, 0, fmt.Errorf("missing # EOF terminator")
	}
	return len(declared), exemplars, nil
}

// familyOf resolves a sample name to its declared family, honoring the
// per-type suffixes OpenMetrics allows (_total, _sum, _count, _bucket,
// _created), or "" when no declaration covers it.
func familyOf(sample string, declared map[string]string) string {
	if _, ok := declared[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_total", "_sum", "_count", "_bucket", "_created"} {
		base, found := strings.CutSuffix(sample, suf)
		if !found {
			continue
		}
		if _, ok := declared[base]; ok {
			return base
		}
	}
	return ""
}
