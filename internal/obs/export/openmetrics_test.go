package export

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWriteOpenMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("t.s4.cache_hits").Add(42)
	reg.Gauge("t.route.workers").Set(8)
	reg.Histogram("t.phase.route").Observe(1500 * time.Microsecond)

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE t_s4_cache_hits counter\n",
		"t_s4_cache_hits_total 42\n",
		"# TYPE t_route_workers gauge\n",
		"t_route_workers 8\n",
		"# TYPE t_phase_route summary\n",
		`t_phase_route{quantile="0.5"} `,
		`t_phase_route{quantile="0.95"} `,
		"t_phase_route_count 1\n",
		"# TYPE t_phase_route_max_seconds gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "# EOF") {
		t.Errorf("exposition not terminated by # EOF:\n%s", out)
	}

	families, err := ValidateOpenMetrics(buf.Bytes())
	if err != nil {
		t.Fatalf("our own exposition does not validate: %v\n%s", err, out)
	}
	// counter + gauge + summary + max gauge.
	if families != 4 {
		t.Errorf("families = %d, want 4", families)
	}
}

func TestWriteOpenMetricsDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	for _, name := range []string{"t.b", "t.a", "t.c"} {
		reg.Counter(name).Inc()
	}
	var first bytes.Buffer
	if err := WriteOpenMetrics(&first, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := WriteOpenMetrics(&again, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	if idx := strings.Index(first.String(), "t_a_total"); idx < 0 || idx > strings.Index(first.String(), "t_b_total") {
		t.Errorf("families not sorted:\n%s", first.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("t.ops.count").Add(5)
	ts := httptest.NewServer(MetricsHandler(reg))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("content type %q is not the OpenMetrics negotiation", ct)
	}
	if _, err := ValidateOpenMetrics(body); err != nil {
		t.Fatalf("handler served invalid OpenMetrics: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "t_ops_count_total 5") {
		t.Errorf("live counter missing from scrape:\n%s", body)
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"missing EOF":        "# TYPE a counter\na_total 1\n",
		"undeclared sample":  "a_total 1\n# EOF\n",
		"bad type":           "# TYPE a widget\n# EOF\n",
		"bad value":          "# TYPE a gauge\na notanumber\n# EOF\n",
		"duplicate family":   "# TYPE a gauge\n# TYPE a gauge\n# EOF\n",
		"content after EOF":  "# EOF\n# TYPE a gauge\n",
		"illegal name":       "# TYPE 9bad counter\n# EOF\n",
		"malformed metadata": "# TYPE onlyname\n# EOF\n",
	}
	for label, text := range cases {
		if _, err := ValidateOpenMetrics([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted %q", label, text)
		}
	}
	if n, err := ValidateOpenMetrics([]byte("# EOF\n")); err != nil || n != 0 {
		t.Errorf("empty exposition: n=%d err=%v", n, err)
	}
}

func TestMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"core.s4.cache_hits": "core_s4_cache_hits",
		"harness.exp.F7":     "harness_exp_F7",
		"9lead":              "_lead",
		"a-b":                "a_b",
	} {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestOpenMetricsExemplars: a traced op's root-span histogram must
// expose its slowest observation as an OpenMetrics exemplar on the p95
// line, and the validator must parse and count it.
func TestOpenMetricsExemplars(t *testing.T) {
	clock := obs.NewManual(time.Unix(100, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	op := reg.StartOp("t.op.run")
	clock.Advance(time.Millisecond)
	op.Done()
	reg.Histogram("t.phase.plain").Observe(time.Millisecond) // untraced

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `t_op_run{quantile="0.95"} 0.001 # {trace_id="` + op.Trace().String() + `"} 0.001`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing exemplar line %q:\n%s", want, out)
	}
	if strings.Contains(out, `t_phase_plain{quantile="0.95"} 0.001 #`) {
		t.Errorf("untraced histogram grew an exemplar:\n%s", out)
	}
	families, exemplars, err := ValidateOpenMetricsDetail(buf.Bytes())
	if err != nil || families == 0 {
		t.Fatalf("families=%d err=%v", families, err)
	}
	if exemplars != 1 {
		t.Errorf("exemplars = %d, want 1", exemplars)
	}
}

func TestValidateOpenMetricsExemplarRejects(t *testing.T) {
	page := func(sample string) []byte {
		return []byte("# TYPE t_op_run summary\n" + sample + "\n# EOF\n")
	}
	// A well-formed exemplar passes.
	if _, n, err := ValidateOpenMetricsDetail(page(`t_op_run{quantile="0.95"} 0.1 # {trace_id="00000000000000ff"} 0.1`)); err != nil || n != 1 {
		t.Errorf("valid exemplar: n=%d err=%v", n, err)
	}
	// A non-float exemplar value fails.
	if _, _, err := ValidateOpenMetricsDetail(page(`t_op_run{quantile="0.95"} 0.1 # {trace_id="ff"} wat`)); err == nil {
		t.Error("non-float exemplar value accepted")
	}
	// An exemplar without braces is not a comment; it breaks the grammar.
	if _, _, err := ValidateOpenMetricsDetail(page(`t_op_run{quantile="0.95"} 0.1 # trace_id 0.1`)); err == nil {
		t.Error("brace-less exemplar accepted")
	}
}
