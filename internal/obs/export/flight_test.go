package export

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// flightFixture runs one traced operation — a child span, a milestone
// record, a failure — through a registry with a flight recorder, so a
// bundle has all three artifact kinds populated.
func flightFixture(t *testing.T) (*obs.FlightRecorder, obs.TraceID) {
	t.Helper()
	clock := obs.NewManual(time.Unix(100, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	reg.SetEventLog(obs.NewEventLog(io.Discard, obs.LevelDebug, clock))
	f := obs.NewFlightRecorder(reg, 32)

	op := reg.StartOp("t.op.run")
	sp := op.Span("t.phase.step")
	clock.Advance(2 * time.Millisecond)
	sp.End()
	op.Log(obs.LevelInfo, "t.milestone", obs.F("k", 1))
	clock.Advance(time.Millisecond)
	op.Done()
	return f, op.Trace()
}

func TestFlightBundleDirRoundTrip(t *testing.T) {
	f, trace := flightFixture(t)
	dir := filepath.Join(t.TempDir(), "flight")
	if err := WriteFlightBundle(dir, f); err != nil {
		t.Fatal(err)
	}

	b, err := ReadFlightBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(f.Events()); len(b.Events) != want {
		t.Errorf("bundle has %d events, recorder holds %d", len(b.Events), want)
	}
	found := false
	for _, rec := range b.Events {
		if rec.Trace == trace {
			found = true
		}
	}
	if !found {
		t.Errorf("no bundle record carries trace %s", trace)
	}
	complete, err := ValidateTrace(b.Trace)
	if err != nil || complete < 2 {
		t.Errorf("bundle trace: %d complete events, err=%v", complete, err)
	}
	_, traces, err := TraceSpanIDs(b.Trace)
	if err != nil || !traces[trace.String()] {
		t.Errorf("bundle trace does not resolve %s: traces=%v err=%v", trace, traces, err)
	}
	families, exemplars, err := ValidateOpenMetricsDetail(b.Metrics)
	if err != nil || families == 0 {
		t.Errorf("bundle metrics: %d families, err=%v", families, err)
	}
	if exemplars == 0 {
		t.Error("bundle metrics carry no exemplars despite a traced op")
	}
}

// The /debug/flight handler streams the same bundle as a tar, and
// ReadFlightBundle accepts the saved stream directly.
func TestFlightBundleTarRoundTrip(t *testing.T) {
	f, trace := flightFixture(t)
	srv := httptest.NewServer(FlightHandler(f))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-tar" {
		t.Errorf("content type %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flight.tar")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := ReadFlightBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(f.Events()); len(b.Events) != want {
		t.Errorf("tar bundle has %d events, recorder holds %d", len(b.Events), want)
	}
	if _, traces, err := TraceSpanIDs(b.Trace); err != nil || !traces[trace.String()] {
		t.Errorf("tar bundle trace does not resolve %s (err=%v)", trace, err)
	}
}

func TestFlightBundleErrors(t *testing.T) {
	if err := WriteFlightBundle(t.TempDir(), nil); err == nil {
		t.Error("nil recorder accepted")
	}
	if _, err := ReadFlightBundle(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing bundle accepted")
	}
	// A directory missing a member is incomplete.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FlightEventsName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightBundle(dir); err == nil {
		t.Error("incomplete bundle dir accepted")
	}
	// A truncated tar is rejected too.
	path := filepath.Join(t.TempDir(), "flight.tar")
	if err := os.WriteFile(path, []byte("not a tar"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightBundle(path); err == nil {
		t.Error("corrupt tar accepted")
	}

	// The handler 404s when no recorder is installed.
	srv := httptest.NewServer(FlightHandler(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("nil-recorder handler returned %d, want 404", resp.StatusCode)
	}
}
