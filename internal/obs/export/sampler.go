// Package export turns the live instrumentation of internal/obs into
// artifacts other tools can read: fixed-capacity ring-buffered time
// series (Sampler), OpenMetrics/Prometheus text exposition for a
// /metrics endpoint, Chrome trace_event JSON loadable by Perfetto, and
// helpers for the NDJSON event log (obs.EventLog). Like obs itself it
// is stdlib-only; cmd/starmon is its terminal front end.
package export

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Sample is one time-series point: a unix-nanosecond instant and the
// metric's value at it. Histogram series carry the stat named by their
// series (count, p50_ns, p95_ns, max_ns).
type Sample struct {
	T int64 `json:"t_unix_ns"`
	V int64 `json:"v"`
}

// Series is one exported metric history, oldest sample first.
type Series struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "counter" | "gauge" | "histogram"
	Samples []Sample `json:"samples"`
}

// SamplerConfig sizes a Sampler. The zero value is usable: one-second
// period, 600 samples per series (ten minutes of history), timestamps
// from the registry's own clock.
type SamplerConfig struct {
	// Period is the tick interval used by Start. Sample ignores it.
	Period time.Duration
	// Capacity is the ring size per series; older samples are
	// overwritten in place.
	Capacity int
	// Clock stamps samples; nil uses the registry's clock, so a
	// registry on an obs.Manual clock yields virtual-time series.
	Clock obs.Clock
}

// ring is one metric's fixed-capacity sample buffer. buf is allocated
// full-length once; append overwrites in place, so the steady state
// never allocates.
type ring struct {
	kind string
	buf  []Sample
	head int // next write position
	n    int // filled entries (<= len(buf))
}

func (r *ring) append(t, v int64) {
	r.buf[r.head] = Sample{T: t, V: v}
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot returns the samples oldest-first.
func (r *ring) snapshot() []Sample {
	out := make([]Sample, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// histRings caches the four stat sub-series of one histogram so the
// steady-state sample path does no string concatenation.
type histRings struct {
	count, p50, p95, max *ring
}

// Sampler periodically snapshots a Registry into per-metric ring
// buffers. Counters and gauges become one series each; a histogram
// expands into <name>.count, <name>.p50_ns, <name>.p95_ns and
// <name>.max_ns. After every live metric has been seen once, Sample
// allocates nothing (proven by TestSamplerSteadyStateAllocs).
//
// Drive it either by calling Sample explicitly — the only option under
// an obs.Manual clock — or with Start, which ticks on the wall clock at
// the configured period.
type Sampler struct {
	reg   *obs.Registry
	clock obs.Clock
	cap   int
	// period is the Start tick interval, recorded in WriteJSON output.
	period time.Duration

	mu     sync.Mutex
	now    int64 // timestamp of the sample in progress
	scalar map[string]*ring
	hists  map[string]*histRings
}

// NewSampler returns a sampler over reg.
func NewSampler(reg *obs.Registry, cfg SamplerConfig) *Sampler {
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 600
	}
	clock := cfg.Clock
	if clock == nil {
		clock = reg.Clock()
	}
	return &Sampler{
		reg:    reg,
		clock:  clock,
		cap:    cfg.Capacity,
		period: cfg.Period,
		scalar: make(map[string]*ring),
		hists:  make(map[string]*histRings),
	}
}

// Sample records one point for every live metric, stamped with the
// sampler's clock.
func (s *Sampler) Sample() {
	now := s.clock.Now().UnixNano()
	s.mu.Lock()
	s.now = now
	s.reg.Visit(s)
	s.mu.Unlock()
}

// newRing allocates one fixed-capacity series buffer.
func (s *Sampler) newRing(kind string) *ring {
	return &ring{kind: kind, buf: make([]Sample, s.cap)}
}

// VisitCounter implements obs.Visitor.
func (s *Sampler) VisitCounter(name string, c *obs.Counter) {
	r := s.scalar[name]
	if r == nil {
		r = s.newRing("counter")
		s.scalar[name] = r
	}
	r.append(s.now, c.Value())
}

// VisitGauge implements obs.Visitor.
func (s *Sampler) VisitGauge(name string, g *obs.Gauge) {
	r := s.scalar[name]
	if r == nil {
		r = s.newRing("gauge")
		s.scalar[name] = r
	}
	r.append(s.now, g.Value())
}

// VisitHistogram implements obs.Visitor.
func (s *Sampler) VisitHistogram(name string, h *obs.Histogram) {
	hr := s.hists[name]
	if hr == nil {
		hr = &histRings{
			count: s.newRing("histogram"),
			p50:   s.newRing("histogram"),
			p95:   s.newRing("histogram"),
			max:   s.newRing("histogram"),
		}
		s.hists[name] = hr
	}
	st := h.Stats()
	hr.count.append(s.now, st.Count)
	hr.p50.append(s.now, st.P50NS)
	hr.p95.append(s.now, st.P95NS)
	hr.max.append(s.now, st.MaxNS)
}

// Start ticks Sample every configured period on the wall clock until
// the returned stop function is called. stop takes one final sample
// before returning (so sub-period runs still record history) and is
// idempotent.
func (s *Sampler) Start() (stop func()) {
	ticker := time.NewTicker(s.period)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.Sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			ticker.Stop()
			close(done)
			<-finished
			s.Sample()
		})
	}
}

// Series copies every series out, sorted by name, samples oldest first.
func (s *Sampler) Series() []Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Series, 0, len(s.scalar)+4*len(s.hists))
	for name, r := range s.scalar {
		out = append(out, Series{Name: name, Kind: r.kind, Samples: r.snapshot()})
	}
	for name, hr := range s.hists {
		out = append(out,
			Series{Name: subSeries(name, ".count"), Kind: "histogram", Samples: hr.count.snapshot()},
			Series{Name: subSeries(name, ".p50_ns"), Kind: "histogram", Samples: hr.p50.snapshot()},
			Series{Name: subSeries(name, ".p95_ns"), Kind: "histogram", Samples: hr.p95.snapshot()},
			Series{Name: subSeries(name, ".max_ns"), Kind: "histogram", Samples: hr.max.snapshot()},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// subSeries appends a histogram stat suffix to a series name, keeping
// any encoded label set at the end: "h{m=\"0\"}" + ".count" becomes
// "h.count{m=\"0\"}", so rules and dashboards address labeled stat
// series the same way as unlabeled ones.
func subSeries(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// SeriesDump is the WriteJSON document shape.
type SeriesDump struct {
	PeriodNS int64    `json:"period_ns"`
	Series   []Series `json:"series"`
}

// WriteJSON writes every series as one indented JSON document.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SeriesDump{PeriodNS: int64(s.period), Series: s.Series()})
}

// WriteJSONFile writes the series document to path (the CLIs'
// -series-json flag).
func (s *Sampler) WriteJSONFile(path string) error {
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
