package export

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestWriteOpenMetricsLabeled renders a registry with labeled families
// and child registries and checks the exposition: one TYPE per family
// across all its label sets, snapshot-level labels merged into every
// sample, quantile labels composed with metric labels, and the whole
// page accepted by the validator.
func TestWriteOpenMetricsLabeled(t *testing.T) {
	reg := obs.NewRegistry()
	v := reg.CounterVec("core.embed.completed", "n", "mode")
	v.With("n", "6", "mode", "guaranteed").Add(2)
	v.With("n", "7", "mode", "besteffort").Inc()
	m0 := reg.Child("machine", "m0")
	m0.Counter("sim.embeds").Add(3)
	m0.Histogram("sim.phase.repair").Observe(2 * time.Millisecond)
	reg.Child("machine", "m1").Counter("sim.embeds").Inc()

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`core_embed_completed_total{mode="guaranteed",n="6"} 2`,
		`core_embed_completed_total{mode="besteffort",n="7"} 1`,
		`sim_embeds_total{machine="m0"} 3`,
		`sim_embeds_total{machine="m1"} 1`,
		`sim_phase_repair{machine="m0",quantile="0.5"} `,
		`sim_phase_repair_count{machine="m0"} 1`,
		`sim_phase_repair_max_seconds{machine="m0"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, out)
		}
	}
	// Two label sets, one family, one declaration.
	if got := strings.Count(out, "# TYPE core_embed_completed counter"); got != 1 {
		t.Errorf("core_embed_completed declared %d times:\n%s", got, out)
	}
	if got := strings.Count(out, "# TYPE sim_embeds counter"); got != 1 {
		t.Errorf("sim_embeds declared %d times:\n%s", got, out)
	}
	if _, _, err := ValidateOpenMetricsDetail(buf.Bytes()); err != nil {
		t.Fatalf("labeled exposition does not validate: %v\n%s", err, out)
	}

	// A child snapshot carries its identity in Labels; the exposition
	// must merge it into every sample.
	buf.Reset()
	if err := WriteOpenMetrics(&buf, m0.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `sim_embeds_total{machine="m0"} 3`) {
		t.Errorf("snapshot-level labels not merged into samples:\n%s", buf.String())
	}
	if _, _, err := ValidateOpenMetricsDetail(buf.Bytes()); err != nil {
		t.Fatalf("child exposition does not validate: %v\n%s", err, buf.String())
	}
}

// TestWriteOpenMetricsEscapedValues pushes the OpenMetrics escapes
// through the full pipeline: label values carrying quotes, backslashes
// and newlines must render escaped and still validate.
func TestWriteOpenMetricsEscapedValues(t *testing.T) {
	reg := obs.NewRegistry()
	reg.CounterVec("t.errors", "detail").With("detail", "say \"hi\"\\\n").Inc()
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `t_errors_total{detail="say \"hi\"\\\n"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, buf.String())
	}
	if _, _, err := ValidateOpenMetricsDetail(buf.Bytes()); err != nil {
		t.Fatalf("escaped exposition does not validate: %v\n%s", err, buf.String())
	}
}

func TestValidateLabelSetRejects(t *testing.T) {
	page := func(sample string) []byte {
		return []byte("# TYPE a gauge\n" + sample + "\n# EOF\n")
	}
	cases := map[string]string{
		"bare word":        `a{k} 1`,
		"unquoted value":   `a{k=v} 1`,
		"illegal name":     `a{9k="v"} 1`,
		"dotted name":      `a{k.x="v"} 1`,
		"duplicate name":   `a{k="v",k="w"} 1`,
		"missing comma":    `a{k="v"j="w"} 1`,
		"trailing comma":   `a{k="v",} 1`,
		"bad escape":       `a{k="\t"} 1`,
		"dangling escape":  `a{k="v\"} 1`,
		"unterminated val": `a{k="v} 1`,
	}
	for label, sample := range cases {
		if _, _, err := ValidateOpenMetricsDetail(page(sample)); err == nil {
			t.Errorf("%s: validator accepted %q", label, sample)
		}
	}
	for _, ok := range []string{
		`a{k="v"} 1`,
		`a{k="v",l="w"} 1`,
		`a{k="quote \" slash \\ newline \n"} 1`,
	} {
		if _, _, err := ValidateOpenMetricsDetail(page(ok)); err != nil {
			t.Errorf("validator rejected well-formed %q: %v", ok, err)
		}
	}
}
