package export

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// spanEvents records two real spans through a registry on a manual
// clock, giving deterministic starts and durations.
func spanEvents(t *testing.T) []obs.Event {
	t.Helper()
	clock := obs.NewManual(time.Unix(100, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	rec := obs.NewRecorder(16)
	reg.SetSink(rec)

	outer := reg.Span("t.phase.total")
	clock.Advance(3 * time.Millisecond)
	inner := reg.Span("t.phase.route")
	clock.Advance(2 * time.Millisecond)
	inner.End()
	outer.End()
	return rec.Events()
}

func TestWriteTrace(t *testing.T) {
	events := spanEvents(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	complete, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("our own trace does not validate: %v\n%s", err, buf.String())
	}
	if complete != 2 {
		t.Fatalf("complete events = %d, want 2", complete)
	}

	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	byName := map[string]TraceEvent{}
	for _, e := range tr.TraceEvents {
		byName[e.Name] = e
	}
	total, route := byName["t.phase.total"], byName["t.phase.route"]
	if total.Ph != "X" || route.Ph != "X" {
		t.Fatalf("events are not complete-phase: %+v", tr.TraceEvents)
	}
	// Rebased: the outer span starts at 0µs; the inner starts 3ms later
	// and lasts 2ms; the outer lasts 5ms.
	if total.TS != 0 || total.Dur != 5000 {
		t.Errorf("outer span ts/dur = %v/%v µs, want 0/5000", total.TS, total.Dur)
	}
	if route.TS != 3000 || route.Dur != 2000 {
		t.Errorf("inner span ts/dur = %v/%v µs, want 3000/2000", route.TS, route.Dur)
	}
}

func TestWriteTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, spanEvents(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateTrace(data); err != nil || n != 2 {
		t.Fatalf("trace file: n=%d err=%v", n, err)
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// An empty run must still produce a loadable document with a
	// traceEvents array, not JSON null.
	if n, err := ValidateTrace(buf.Bytes()); err != nil || n != 0 {
		t.Fatalf("empty trace: n=%d err=%v\n%s", n, err, buf.String())
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"missing array": `{"displayTimeUnit":"ms"}`,
		"missing name":  `{"traceEvents":[{"ph":"X","ts":0,"dur":1}]}`,
		"missing ph":    `{"traceEvents":[{"name":"a","ts":0,"dur":1}]}`,
		"negative ts":   `{"traceEvents":[{"name":"a","ph":"X","ts":-5,"dur":1}]}`,
		"missing dur":   `{"traceEvents":[{"name":"a","ph":"X","ts":0}]}`,
	}
	for label, text := range cases {
		if _, err := ValidateTrace([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted %q", label, text)
		}
	}
	// Non-complete phases are allowed and not counted.
	n, err := ValidateTrace([]byte(`{"traceEvents":[{"name":"m","ph":"M"},{"name":"a","ph":"X","ts":1,"dur":2}]}`))
	if err != nil || n != 1 {
		t.Errorf("mixed-phase trace: n=%d err=%v", n, err)
	}
}

// TestWriteTraceCausality exercises the causal rendering: one band of
// tids per trace labeled by thread_name metadata, contained spans
// nesting in the same band, parent → child flow arrows, and args
// carrying the identity TraceSpanIDs reads back.
func TestWriteTraceCausality(t *testing.T) {
	clock := obs.NewManual(time.Unix(100, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	rec := obs.NewRecorder(16)
	reg.SetSink(rec)

	op := reg.StartOp("t.op.run")
	child := op.Span("t.phase.a")
	clock.Advance(2 * time.Millisecond)
	child.End()
	clock.Advance(time.Millisecond)
	op.Done()
	plain := reg.Span("t.phase.plain")
	clock.Advance(time.Millisecond)
	plain.End()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("causal trace does not validate: %v\n%s", err, buf.String())
	}

	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	byName := map[string]TraceEvent{}
	var bands []string
	var flowS, flowF []TraceEvent
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			byName[e.Name] = e
		case "M":
			if e.Name == "thread_name" {
				bands = append(bands, e.Args["name"])
			}
		case "s":
			flowS = append(flowS, e)
		case "f":
			flowF = append(flowF, e)
		}
	}

	root, a := byName["t.op.run"], byName["t.phase.a"]
	if root.Args["trace_id"] != op.Trace().String() || a.Args["trace_id"] != op.Trace().String() {
		t.Errorf("traced spans missing trace_id args: root=%v a=%v", root.Args, a.Args)
	}
	if a.Args["parent_span_id"] != op.SpanID().String() {
		t.Errorf("child parent_span_id = %q, want %q", a.Args["parent_span_id"], op.SpanID())
	}
	if root.TID != a.TID {
		t.Errorf("contained child on tid %d, parent on %d — should nest in one lane", a.TID, root.TID)
	}
	if byName["t.phase.plain"].TID == root.TID {
		t.Error("untraced span shares the traced band")
	}
	if byName["t.phase.plain"].Args != nil {
		t.Errorf("untraced span carries args: %v", byName["t.phase.plain"].Args)
	}

	wantBands := map[string]bool{"trace " + op.Trace().String(): true, "untraced": true}
	for _, b := range bands {
		delete(wantBands, b)
	}
	if len(wantBands) != 0 {
		t.Errorf("missing band labels %v (got %v)", wantBands, bands)
	}

	if len(flowS) != 1 || len(flowF) != 1 {
		t.Fatalf("flow events: %d starts, %d finishes, want 1 each", len(flowS), len(flowF))
	}
	if flowS[0].ID != child.ID().String() || flowF[0].ID != child.ID().String() {
		t.Errorf("flow ids %q/%q, want child span %q", flowS[0].ID, flowF[0].ID, child.ID())
	}
	if flowS[0].TID != root.TID || flowF[0].TID != a.TID {
		t.Errorf("flow endpoints on tids %d→%d, want %d→%d", flowS[0].TID, flowF[0].TID, root.TID, a.TID)
	}
	if flowF[0].BP != "e" {
		t.Errorf("flow finish bp = %q, want \"e\" (bind to enclosing slice)", flowF[0].BP)
	}

	spans, traces, err := TraceSpanIDs(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !traces[op.Trace().String()] {
		t.Errorf("TraceSpanIDs missed trace %s: %v", op.Trace(), traces)
	}
	if !spans[op.SpanID().String()] || !spans[child.ID().String()] {
		t.Errorf("TraceSpanIDs missed spans: %v", spans)
	}
}

// Siblings that partially overlap must land on different lanes of the
// same band — a single trace_event lane cannot render a partial overlap.
func TestWriteTracePartialOverlapLanes(t *testing.T) {
	events := []obs.Event{
		{Name: "t.a", StartNS: 0, DurNS: 3000, Trace: 5, Span: 1},
		{Name: "t.b", StartNS: 2000, DurNS: 3000, Trace: 5, Span: 2},
	}
	tr := NewTrace(events)
	var a, b TraceEvent
	for _, e := range tr.TraceEvents {
		switch e.Name {
		case "t.a":
			a = e
		case "t.b":
			b = e
		}
	}
	if a.TID == b.TID {
		t.Errorf("partially overlapping siblings share tid %d", a.TID)
	}
}
