package export

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// spanEvents records two real spans through a registry on a manual
// clock, giving deterministic starts and durations.
func spanEvents(t *testing.T) []obs.Event {
	t.Helper()
	clock := obs.NewManual(time.Unix(100, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	rec := obs.NewRecorder(16)
	reg.SetSink(rec)

	outer := reg.Span("t.phase.total")
	clock.Advance(3 * time.Millisecond)
	inner := reg.Span("t.phase.route")
	clock.Advance(2 * time.Millisecond)
	inner.End()
	outer.End()
	return rec.Events()
}

func TestWriteTrace(t *testing.T) {
	events := spanEvents(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	complete, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("our own trace does not validate: %v\n%s", err, buf.String())
	}
	if complete != 2 {
		t.Fatalf("complete events = %d, want 2", complete)
	}

	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	byName := map[string]TraceEvent{}
	for _, e := range tr.TraceEvents {
		byName[e.Name] = e
	}
	total, route := byName["t.phase.total"], byName["t.phase.route"]
	if total.Ph != "X" || route.Ph != "X" {
		t.Fatalf("events are not complete-phase: %+v", tr.TraceEvents)
	}
	// Rebased: the outer span starts at 0µs; the inner starts 3ms later
	// and lasts 2ms; the outer lasts 5ms.
	if total.TS != 0 || total.Dur != 5000 {
		t.Errorf("outer span ts/dur = %v/%v µs, want 0/5000", total.TS, total.Dur)
	}
	if route.TS != 3000 || route.Dur != 2000 {
		t.Errorf("inner span ts/dur = %v/%v µs, want 3000/2000", route.TS, route.Dur)
	}
}

func TestWriteTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, spanEvents(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateTrace(data); err != nil || n != 2 {
		t.Fatalf("trace file: n=%d err=%v", n, err)
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// An empty run must still produce a loadable document with a
	// traceEvents array, not JSON null.
	if n, err := ValidateTrace(buf.Bytes()); err != nil || n != 0 {
		t.Fatalf("empty trace: n=%d err=%v\n%s", n, err, buf.String())
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"missing array": `{"displayTimeUnit":"ms"}`,
		"missing name":  `{"traceEvents":[{"ph":"X","ts":0,"dur":1}]}`,
		"missing ph":    `{"traceEvents":[{"name":"a","ts":0,"dur":1}]}`,
		"negative ts":   `{"traceEvents":[{"name":"a","ph":"X","ts":-5,"dur":1}]}`,
		"missing dur":   `{"traceEvents":[{"name":"a","ph":"X","ts":0}]}`,
	}
	for label, text := range cases {
		if _, err := ValidateTrace([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted %q", label, text)
		}
	}
	// Non-complete phases are allowed and not counted.
	n, err := ValidateTrace([]byte(`{"traceEvents":[{"name":"m","ph":"M"},{"name":"a","ph":"X","ts":1,"dur":2}]}`))
	if err != nil || n != 1 {
		t.Errorf("mixed-phase trace: n=%d err=%v", n, err)
	}
}
