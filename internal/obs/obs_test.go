package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every operation through nil receivers and the
// zero Span; none may panic, and reads must return zeros.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if s := h.Stats(); s.Count != 0 || s.MaxNS != 0 {
		t.Errorf("nil histogram has stats %+v", s)
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry returned a live metric")
	}
	r.SetClock(nil)
	r.SetSink(nil)
	if r.Clock() != Wall {
		t.Error("nil registry clock is not Wall")
	}
	sp := r.Span("phase")
	if d := sp.End(); d != 0 {
		t.Errorf("zero span measured %v", d)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	r.PublishExpvar("nil-registry")
}

func TestCounterGaugeRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(2)
	if got := r.Counter("hits").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if r.Counter("hits") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}

	snap := r.Snapshot()
	if snap.Counters["hits"] != 3 || snap.Gauges["depth"] != 6 {
		t.Errorf("snapshot wrong: %+v", snap)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	// 99 fast observations and one slow outlier: p50 stays in the fast
	// band, p95 too, max is exact.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	h.Observe(time.Second)
	s := h.Stats()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNS != int64(time.Second) {
		t.Errorf("max = %d", s.MaxNS)
	}
	if s.P50NS < 100 || s.P50NS >= 256 {
		t.Errorf("p50 = %d, want the [100,256) log bucket", s.P50NS)
	}
	if s.P95NS >= int64(time.Second) {
		t.Errorf("p95 = %d caught the outlier", s.P95NS)
	}
	if s.SumNS != 99*100+int64(time.Second) {
		t.Errorf("sum = %d", s.SumNS)
	}

	var single Histogram
	single.Observe(5 * time.Millisecond)
	ss := single.Stats()
	if ss.P50NS != ss.MaxNS || ss.P95NS != ss.MaxNS {
		t.Errorf("single sample quantiles not clamped to max: %+v", ss)
	}

	var neg Histogram
	neg.Observe(-time.Second)
	if s := neg.Stats(); s.MaxNS != 0 || s.Count != 1 {
		t.Errorf("negative observation not clamped: %+v", s)
	}
}

func TestManualClockAndSince(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatal("manual clock not at start")
	}
	m.Advance(3 * time.Second)
	if d := Since(m, start); d != 3*time.Second {
		t.Errorf("Since = %v", d)
	}
	m.Advance(-10 * time.Second)
	if d := Since(m, start); d != 0 {
		t.Errorf("backwards clock not clamped: %v", d)
	}
	if d := Since(nil, Wall.Now().Add(-time.Millisecond)); d < time.Millisecond {
		t.Errorf("nil clock did not read Wall: %v", d)
	}
}

func TestSpanRecorderAndClock(t *testing.T) {
	r := NewRegistry()
	clock := NewManual(time.Unix(5000, 0))
	r.SetClock(clock)
	rec := NewRecorder(2)
	r.SetSink(rec)

	sp := r.Span("phase.a")
	clock.Advance(250 * time.Millisecond)
	if d := sp.End(); d != 250*time.Millisecond {
		t.Fatalf("span measured %v", d)
	}
	st := r.Histogram("phase.a").Stats()
	if st.Count != 1 || st.MaxNS != int64(250*time.Millisecond) {
		t.Errorf("histogram did not record the span: %+v", st)
	}
	ev := rec.Events()
	if len(ev) != 1 || ev[0].Name != "phase.a" || ev[0].DurNS != int64(250*time.Millisecond) {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].StartNS != time.Unix(5000, 0).UnixNano() {
		t.Errorf("event start = %d", ev[0].StartNS)
	}

	// The recorder bounds its buffer and counts overflow.
	r.Span("phase.b").End()
	r.Span("phase.c").End()
	if got := len(rec.Events()); got != 2 {
		t.Errorf("recorder kept %d events, cap 2", got)
	}
	if rec.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", rec.Dropped())
	}

	// Snapshot includes the recorder's events.
	snap := r.Snapshot()
	if len(snap.Events) != 2 {
		t.Errorf("snapshot events = %d, want 2", len(snap.Events))
	}
}

func TestWriteJSONFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(4)
	r.Gauge("a.level").Set(-2)
	r.Histogram("a.phase").Observe(time.Millisecond)

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if snap.Counters["a.count"] != 4 || snap.Gauges["a.level"] != -2 {
		t.Errorf("roundtrip lost values: %+v", snap)
	}
	if h := snap.Histograms["a.phase"]; h.Count != 1 || h.MaxNS != int64(time.Millisecond) {
		t.Errorf("roundtrip lost histogram: %+v", h)
	}
}

// TestConcurrency hammers one registry from many goroutines; run under
// -race (the ci.sh race leg includes this package) it certifies the
// layer is safe on concurrent hot paths.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	r.SetSink(NewRecorder(64))
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist").Observe(time.Duration(i))
				r.Span("shared.span").End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != workers*iters {
		t.Errorf("count = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("shared.hist").Stats().Count; got != workers*iters {
		t.Errorf("hist count = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("shared.span").Stats().Count; got != workers*iters {
		t.Errorf("span count = %d, want %d", got, workers*iters)
	}
}
