package obs

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultMaxCardinality bounds how many distinct label sets one metric
// family will materialize before With starts refusing new children.
// Labels are for low-cardinality dimensions (n, outcome, machine id);
// the cap turns an accidental per-request label into a recorded error
// instead of unbounded memory growth. Override per registry with
// SetMaxCardinality before creating families.
const DefaultMaxCardinality = 1024

// family is the shared bookkeeping behind CounterVec, GaugeVec and
// HistogramVec: one metric name, a declared label-key schema, and a
// bounded map from canonical label sets to live metric slots.
type family struct {
	name string
	kind string   // "counter" | "gauge" | "histogram"
	keys []string // declared label keys, sorted
	base Labels   // owning registry's full label set (fixed at creation)
	cap  int

	mu    sync.Mutex
	err   error
	slots map[string]*slot
	order []*slot // insertion order; slice header captured under mu, append-only
}

// slot is one (label set → metric) binding. Exactly one of c/g/h is
// non-nil, matching the family kind. Encodings are precomputed so the
// export Sampler's Visit path stays allocation-free.
type slot struct {
	labels  Labels // With-supplied labels only, sorted
	full    Labels // base merged with labels — the absolute identity
	fullEnc string // EncodeName(name, full), what plain Visitors receive
	c       *Counter
	g       *Gauge
	h       *Histogram
}

func newFamily(name, kind string, keys []string, base Labels, cap int) *family {
	ks := append([]string(nil), keys...)
	sort.Strings(ks)
	f := &family{name: name, kind: kind, keys: ks, base: base, cap: cap}
	for i, k := range ks {
		if !ValidLabelKey(k) {
			f.err = fmt.Errorf("obs: %s: invalid label key %q (want lower_snake)", name, k)
		} else if i > 0 && ks[i-1] == k {
			f.err = fmt.Errorf("obs: %s: duplicate label key %q", name, k)
		}
	}
	return f
}

// resolve returns the slot for the alternating key/value pairs in kv,
// creating it on first use. Schema mismatches and cardinality-cap trips
// record the family's first error and return nil — the caller's handle
// becomes a nil metric, which is safe to use and visibly absent from
// exports, while Err() explains why.
func (f *family) resolve(kv []string) *slot {
	// kv must not reach fmt or any heap store: call sites pass it as a
	// stack-allocated variadic slice, which is what keeps a disabled
	// (nil-vec) With at 0 allocs. Diagnostics format the heap-side ls.
	ls := MakeLabels(kv...)
	if len(kv)%2 != 0 || !f.keysMatch(ls) {
		f.fail(fmt.Errorf("obs: %s: With{%s} (%d args) does not match declared label keys %v",
			f.name, ls.String(), len(kv), f.keys))
		return nil
	}
	key := ls.String()
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.slots[key]
	if ok {
		return s
	}
	if len(f.slots) >= f.cap {
		if f.err == nil {
			f.err = fmt.Errorf("obs: %s: label cardinality cap %d exceeded adding {%s}",
				f.name, f.cap, key)
		}
		return nil
	}
	full := f.base.Merge(ls)
	s = &slot{labels: ls, full: full, fullEnc: EncodeName(f.name, full)}
	switch f.kind {
	case "counter":
		s.c = &Counter{}
	case "gauge":
		s.g = &Gauge{}
	default:
		s.h = &Histogram{}
	}
	if f.slots == nil {
		f.slots = make(map[string]*slot)
	}
	f.slots[key] = s
	f.order = append(f.order, s)
	return s
}

// keysMatch reports whether the sorted label set ls covers exactly the
// declared keys.
func (f *family) keysMatch(ls Labels) bool {
	if len(ls) != len(f.keys) {
		return false
	}
	for i, l := range ls {
		if l.Key != f.keys[i] {
			return false
		}
	}
	return true
}

func (f *family) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *family) firstErr() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// snapshotSlots returns the live slots; the returned slice header is
// immutable (order is append-only under mu).
func (f *family) snapshotSlots() []*slot {
	f.mu.Lock()
	s := f.order
	f.mu.Unlock()
	return s
}

// visit walks every slot. Label-aware visitors get the base name plus
// the absolute label set; plain visitors get the precomputed encoded
// name, so the Sampler path allocates nothing once slots exist.
func (f *family) visit(v Visitor, lv LabelVisitor) {
	for _, s := range f.snapshotSlots() {
		switch f.kind {
		case "counter":
			if lv != nil {
				lv.VisitLabeledCounter(f.name, s.full, s.c)
			} else {
				v.VisitCounter(s.fullEnc, s.c)
			}
		case "gauge":
			if lv != nil {
				lv.VisitLabeledGauge(f.name, s.full, s.g)
			} else {
				v.VisitGauge(s.fullEnc, s.g)
			}
		default:
			if lv != nil {
				lv.VisitLabeledHistogram(f.name, s.full, s.h)
			} else {
				v.VisitHistogram(s.fullEnc, s.h)
			}
		}
	}
}

// snapshotInto writes every slot into s keyed relative to the
// snapshotting registry: rel is the label path from that registry down
// to the family's owner.
func (f *family) snapshotInto(s *Snapshot, rel Labels) {
	for _, sl := range f.snapshotSlots() {
		key := EncodeName(f.name, rel.Merge(sl.labels))
		switch f.kind {
		case "counter":
			s.Counters[key] = sl.c.Value()
		case "gauge":
			s.Gauges[key] = sl.g.Value()
		default:
			st := sl.h.Stats()
			st.Exemplars = sl.h.Exemplars()
			st.Buckets = sl.h.BucketCounts()
			s.Histograms[key] = st
		}
	}
}

// CounterVec is a labeled counter family. With resolves one label set
// to its *Counter once; hot paths hold the returned handle and pay the
// usual single pointer test per operation. A nil *CounterVec (from a
// nil registry) resolves to nil counters, keeping the disabled path
// allocation-free — BenchmarkObsDisabled in internal/core proves it.
type CounterVec struct{ f *family }

// With returns the counter for the alternating key/value pairs, which
// must cover exactly the keys declared at CounterVec creation. On
// schema mismatch or cardinality-cap overflow it records the family's
// first error (see Err) and returns nil.
func (v *CounterVec) With(kv ...string) *Counter {
	if v == nil {
		return nil
	}
	s := v.f.resolve(kv)
	if s == nil {
		return nil
	}
	return s.c
}

// Err returns the first schema or cardinality error recorded by With.
func (v *CounterVec) Err() error {
	if v == nil {
		return nil
	}
	return v.f.firstErr()
}

// GaugeVec is a labeled gauge family; see CounterVec.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label set; see CounterVec.With.
func (v *GaugeVec) With(kv ...string) *Gauge {
	if v == nil {
		return nil
	}
	s := v.f.resolve(kv)
	if s == nil {
		return nil
	}
	return s.g
}

// Err returns the first schema or cardinality error recorded by With.
func (v *GaugeVec) Err() error {
	if v == nil {
		return nil
	}
	return v.f.firstErr()
}

// HistogramVec is a labeled histogram family; see CounterVec.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label set; see
// CounterVec.With.
func (v *HistogramVec) With(kv ...string) *Histogram {
	if v == nil {
		return nil
	}
	s := v.f.resolve(kv)
	if s == nil {
		return nil
	}
	return s.h
}

// Err returns the first schema or cardinality error recorded by With.
func (v *HistogramVec) Err() error {
	if v == nil {
		return nil
	}
	return v.f.firstErr()
}

// CounterVec returns the named counter family, creating it on first
// use with the given label-key schema. Subsequent calls return the
// existing family; a conflicting key schema records an error on it.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cvecs[name]
	if !ok {
		v = &CounterVec{f: newFamily(name, "counter", keys, r.labels, r.maxCardLocked())}
		if r.cvecs == nil {
			r.cvecs = make(map[string]*CounterVec)
		}
		r.cvecs[name] = v
		r.fams = append(r.fams, v.f)
	} else {
		checkSchema(v.f, keys)
	}
	return v
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gvecs[name]
	if !ok {
		v = &GaugeVec{f: newFamily(name, "gauge", keys, r.labels, r.maxCardLocked())}
		if r.gvecs == nil {
			r.gvecs = make(map[string]*GaugeVec)
		}
		r.gvecs[name] = v
		r.fams = append(r.fams, v.f)
	} else {
		checkSchema(v.f, keys)
	}
	return v
}

// HistogramVec returns the named histogram family, creating it on
// first use.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hvecs[name]
	if !ok {
		v = &HistogramVec{f: newFamily(name, "histogram", keys, r.labels, r.maxCardLocked())}
		if r.hvecs == nil {
			r.hvecs = make(map[string]*HistogramVec)
		}
		r.hvecs[name] = v
		r.fams = append(r.fams, v.f)
	} else {
		checkSchema(v.f, keys)
	}
	return v
}

// checkSchema records an error when a family is re-declared with a
// different key set — two call sites disagreeing about a family's
// dimensions is a bug worth surfacing, not silently merging.
func checkSchema(f *family, keys []string) {
	if len(keys) != len(f.keys) {
		f.fail(fmt.Errorf("obs: %s: redeclared with keys %v (have %v)", f.name, keys, f.keys))
		return
	}
	ks := append([]string(nil), keys...)
	sort.Strings(ks)
	for i, k := range ks {
		if k != f.keys[i] {
			f.fail(fmt.Errorf("obs: %s: redeclared with keys %v (have %v)", f.name, keys, f.keys))
			return
		}
	}
}

// maxCardLocked resolves the registry's cardinality cap; callers hold
// r.mu.
func (r *Registry) maxCardLocked() int {
	if r.maxCard > 0 {
		return r.maxCard
	}
	return DefaultMaxCardinality
}

// SetMaxCardinality bounds the number of label sets each subsequently
// created family will accept (existing families keep their cap).
// Children created after the call inherit it.
func (r *Registry) SetMaxCardinality(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.maxCard = n
	r.mu.Unlock()
}

// VecErrors collects the first recorded error of every family in this
// registry and its children — a cheap health check for tests and the
// debug endpoint.
func (r *Registry) VecErrors() []error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.cvecs)+len(r.gvecs)+len(r.hvecs))
	for _, v := range r.cvecs {
		fams = append(fams, v.f)
	}
	for _, v := range r.gvecs {
		fams = append(fams, v.f)
	}
	for _, v := range r.hvecs {
		fams = append(fams, v.f)
	}
	children := make([]*Registry, 0, len(r.children))
	for _, c := range r.children {
		children = append(children, c)
	}
	r.mu.Unlock()

	var errs []error
	for _, f := range fams {
		if err := f.firstErr(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, c := range children {
		errs = append(errs, c.VecErrors()...)
	}
	return errs
}
