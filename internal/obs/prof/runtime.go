package prof

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"repro/internal/obs"
)

// The runtime/metrics samples the sampler reads, in the order they sit
// in RuntimeSampler.samples. Histogram-kind samples are reduced to a
// p95 before publication.
const (
	sampleHeapBytes  = "/memory/classes/heap/objects:bytes"
	sampleGCCycles   = "/gc/cycles/total:gc-cycles"
	sampleGCPauses   = "/gc/pauses:seconds"
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleSchedLat   = "/sched/latencies:seconds"
)

// RuntimeSampler publishes Go runtime health as registry gauges:
//
//	runtime.mem.heap_bytes        bytes of live heap objects
//	runtime.mem.heap_peak_bytes   high-water mark of heap_bytes across samples
//	runtime.gc.cycles             completed GC cycles
//	runtime.gc.pause_p95_ns       p95 stop-the-world pause, ns
//	runtime.sched.goroutines      live goroutines
//	runtime.sched.latency_p95_ns  p95 goroutine scheduling latency, ns
//
// heap_peak_bytes is the sampler's own reduction — the largest live-heap
// sample it has seen — so a bounded-memory claim (e.g. a streaming embed
// that never materializes its ring) is checkable from a single final
// snapshot instead of a full time series.
//
// Because they are ordinary gauges, the values flow unchanged into
// every existing export path: the OpenMetrics /metrics endpoint (as
// runtime_mem_heap_bytes etc.), export.Sampler time series, -metrics-
// json snapshots and starmon -attach frames (which render them as a
// dedicated runtime section).
//
// The sample buffer is allocated once; Sample reuses it, so after the
// first call (which lets runtime/metrics size its histogram buffers)
// the steady state allocates nothing. A nil *RuntimeSampler — what
// NewRuntimeSampler returns for a nil registry — is the disabled state:
// Sample and Start are no-ops costing a pointer test.
type RuntimeSampler struct {
	heap       *obs.Gauge
	heapPeak   *obs.Gauge
	gcCycles   *obs.Gauge
	gcPauseP95 *obs.Gauge
	goroutines *obs.Gauge
	schedP95   *obs.Gauge

	mu      sync.Mutex
	peak    int64
	samples []metrics.Sample
}

// NewRuntimeSampler resolves the runtime gauges on reg; nil in, nil
// (disabled) out.
func NewRuntimeSampler(reg *obs.Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	return &RuntimeSampler{
		heap:       reg.Gauge("runtime.mem.heap_bytes"),
		heapPeak:   reg.Gauge("runtime.mem.heap_peak_bytes"),
		gcCycles:   reg.Gauge("runtime.gc.cycles"),
		gcPauseP95: reg.Gauge("runtime.gc.pause_p95_ns"),
		goroutines: reg.Gauge("runtime.sched.goroutines"),
		schedP95:   reg.Gauge("runtime.sched.latency_p95_ns"),
		samples: []metrics.Sample{
			{Name: sampleHeapBytes},
			{Name: sampleGCCycles},
			{Name: sampleGCPauses},
			{Name: sampleGoroutines},
			{Name: sampleSchedLat},
		},
	}
}

// Sample reads the runtime metrics once and updates the gauges.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	for i := range s.samples {
		var v int64
		switch s.samples[i].Value.Kind() {
		case metrics.KindUint64:
			u := s.samples[i].Value.Uint64()
			if u > math.MaxInt64 {
				u = math.MaxInt64
			}
			v = int64(u)
		case metrics.KindFloat64Histogram:
			v = histQuantileNS(s.samples[i].Value.Float64Histogram(), 0.95)
		default:
			// KindBad: the metric does not exist on this runtime; leave
			// the gauge at its last value (zero before the first hit).
			continue
		}
		switch s.samples[i].Name {
		case sampleHeapBytes:
			s.heap.Set(v)
			if v > s.peak {
				s.peak = v
			}
			s.heapPeak.Set(s.peak)
		case sampleGCCycles:
			s.gcCycles.Set(v)
		case sampleGCPauses:
			s.gcPauseP95.Set(v)
		case sampleGoroutines:
			s.goroutines.Set(v)
		case sampleSchedLat:
			s.schedP95.Set(v)
		}
	}
}

// HeapLiveBytes reads the live-heap size once, without a registry: the
// one-shot form of the runtime.mem.heap_bytes gauge, for callers (the
// harness's scaling experiment) that want a before/after measurement
// rather than a sampling loop. prof is the sanctioned runtime/metrics
// reader, so instrumented code does not import runtime directly.
func HeapLiveBytes() int64 {
	samples := []metrics.Sample{{Name: sampleHeapBytes}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	u := samples[0].Value.Uint64()
	if u > math.MaxInt64 {
		u = math.MaxInt64
	}
	return int64(u)
}

// histQuantileNS reduces a runtime/metrics seconds histogram to the
// bucket boundary at quantile q, in nanoseconds, without allocating.
// The returned value is the upper bound of the bucket the quantile
// falls in (the lower bound for the +Inf overflow bucket), matching the
// "quantile estimate from log buckets" convention obs.Histogram uses.
func histQuantileNS(h *metrics.Float64Histogram, q float64) int64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			bound := h.Buckets[i+1]
			if math.IsInf(bound, +1) {
				bound = h.Buckets[i]
			}
			if math.IsInf(bound, -1) {
				return 0
			}
			return int64(bound * 1e9)
		}
	}
	return 0
}

// Start samples immediately, then every period on the wall clock, until
// the returned stop function is called. stop takes one final sample —
// mirroring export.Sampler.Start, so runs shorter than one period still
// publish their end state — and is idempotent.
func (s *RuntimeSampler) Start(period time.Duration) (stop func()) {
	if s == nil {
		return func() {}
	}
	if period <= 0 {
		period = time.Second
	}
	s.Sample()
	ticker := time.NewTicker(period)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.Sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			ticker.Stop()
			close(done)
			<-finished
			s.Sample()
		})
	}
}
