package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// CPUProfileHasLabel reports whether any sample in a pprof protobuf
// profile (gzipped or raw, as written by runtime/pprof) carries the
// string label key=value. It is a minimal stdlib-only reader of the
// three profile.proto fields involved — Profile.string_table,
// Profile.sample and Sample.label — used by the tests and CI to certify
// that phase labels set via Do actually reach captured profiles.
func CPUProfileHasLabel(data []byte, key, value string) (bool, error) {
	raw, err := maybeGunzip(data)
	if err != nil {
		return false, err
	}
	strings, samples, err := splitProfile(raw)
	if err != nil {
		return false, err
	}
	ki, vi := -1, -1
	for i, s := range strings {
		if s == key {
			ki = i
		}
		if s == value {
			vi = i
		}
	}
	if ki < 0 || vi < 0 {
		return false, nil
	}
	for _, sample := range samples {
		ok, err := sampleHasLabel(sample, uint64(ki), uint64(vi))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func maybeGunzip(data []byte) ([]byte, error) {
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		return data, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// Profile message field numbers (profile.proto).
const (
	profileFieldSample      = 2
	profileFieldStringTable = 6
	sampleFieldLabel        = 3
	labelFieldKey           = 1
	labelFieldStr           = 2
)

// splitProfile walks the top-level Profile message, collecting the
// string table and the raw bytes of every Sample submessage.
func splitProfile(data []byte) (strings []string, samples [][]byte, err error) {
	for len(data) > 0 {
		field, wire, rest, err := readTag(data)
		if err != nil {
			return nil, nil, err
		}
		data = rest
		switch wire {
		case 0: // varint
			if _, data, err = readVarint(data); err != nil {
				return nil, nil, err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return nil, nil, errors.New("prof: truncated fixed64")
			}
			data = data[8:]
		case 2: // length-delimited
			var chunk []byte
			if chunk, data, err = readBytes(data); err != nil {
				return nil, nil, err
			}
			switch field {
			case profileFieldStringTable:
				strings = append(strings, string(chunk))
			case profileFieldSample:
				samples = append(samples, chunk)
			}
		case 5: // fixed32
			if len(data) < 4 {
				return nil, nil, errors.New("prof: truncated fixed32")
			}
			data = data[4:]
		default:
			return nil, nil, fmt.Errorf("prof: unsupported wire type %d", wire)
		}
	}
	return strings, samples, nil
}

// sampleHasLabel scans one Sample message for a Label submessage whose
// key and str string-table indices match.
func sampleHasLabel(data []byte, keyIdx, strIdx uint64) (bool, error) {
	for len(data) > 0 {
		field, wire, rest, err := readTag(data)
		if err != nil {
			return false, err
		}
		data = rest
		switch wire {
		case 0:
			if _, data, err = readVarint(data); err != nil {
				return false, err
			}
		case 1:
			if len(data) < 8 {
				return false, errors.New("prof: truncated fixed64")
			}
			data = data[8:]
		case 2:
			var chunk []byte
			if chunk, data, err = readBytes(data); err != nil {
				return false, err
			}
			if field != sampleFieldLabel {
				continue
			}
			var k, s uint64
			lbl := chunk
			for len(lbl) > 0 {
				lf, lw, lrest, err := readTag(lbl)
				if err != nil {
					return false, err
				}
				lbl = lrest
				if lw == 0 {
					var v uint64
					if v, lbl, err = readVarint(lbl); err != nil {
						return false, err
					}
					switch lf {
					case labelFieldKey:
						k = v
					case labelFieldStr:
						s = v
					}
					continue
				}
				if lw == 2 {
					if _, lbl, err = readBytes(lbl); err != nil {
						return false, err
					}
					continue
				}
				return false, fmt.Errorf("prof: unsupported label wire type %d", lw)
			}
			if k == keyIdx && s == strIdx {
				return true, nil
			}
		case 5:
			if len(data) < 4 {
				return false, errors.New("prof: truncated fixed32")
			}
			data = data[4:]
		default:
			return false, fmt.Errorf("prof: unsupported wire type %d", wire)
		}
	}
	return false, nil
}

func readTag(data []byte) (field int, wire int, rest []byte, err error) {
	v, rest, err := readVarint(data)
	if err != nil {
		return 0, 0, nil, err
	}
	return int(v >> 3), int(v & 7), rest, nil
}

func readVarint(data []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		v |= uint64(data[i]&0x7f) << (7 * uint(i))
		if data[i]&0x80 == 0 {
			return v, data[i+1:], nil
		}
	}
	return 0, nil, errors.New("prof: truncated varint")
}

func readBytes(data []byte) (chunk, rest []byte, err error) {
	n, rest, err := readVarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, errors.New("prof: truncated length-delimited field")
	}
	return rest[:n], rest[n:], nil
}
