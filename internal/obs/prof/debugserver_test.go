package prof

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDebugServerLabeledProfile is the DebugServer x profiler
// integration check: while a labeled workload holds the process busy, a
// CPU profile is pulled over HTTP from /debug/pprof/profile — exactly
// what an operator does against a long starsweep run — and must carry
// the phase label. Closing the server afterwards must release the
// listener for an immediate rebind (the PR 4 lifecycle fix).
func TestDebugServerLabeledProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles over HTTP for ~1s")
	}
	srv, err := obs.StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			Do("embed", func() {
				spinSink = spin(time.Now().Add(50 * time.Millisecond))
			})
		}
	}()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/profile?seconds=1", addr))
	if err != nil {
		t.Fatal(err)
	}
	data, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	stop.Store(true)
	<-done
	if readErr != nil {
		t.Fatal(readErr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/profile: %s\n%s", resp.Status, data)
	}

	ok, err := CPUProfileHasLabel(data, "phase", "embed")
	if err != nil {
		t.Fatalf("parse scraped profile: %v", err)
	}
	if !ok {
		t.Error("scraped profile has no phase=embed sample")
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The port must be immediately reusable once the profile request is
	// over — the listener-lifecycle guarantee the sweep smoke relies on.
	srv2, err := obs.StartDebugServer(addr)
	if err != nil {
		t.Fatalf("rebind %s after Close: %v", addr, err)
	}
	srv2.Close()
}
