// Package prof is the repository's profiling layer: pprof phase labels
// for the embedding pipeline and a runtime/metrics-backed sampler that
// feeds Go runtime health (heap, GC, scheduler) into an obs.Registry.
//
// The rest of the module attributes CPU samples to algorithm phases by
// wrapping work in Do("embed", ...), Do("splice", ...) and so on; any
// CPU profile captured while those run — via StartCPUProfile, the
// -cpuprofile CLI flags, or a live /debug/pprof/profile scrape off
// obs.StartDebugServer — carries a `phase` goroutine label on every
// sample taken inside, so `go tool pprof -tagfocus phase=embed` (or the
// "Tag" views in the web UI) isolates one phase of the pipeline.
//
// RuntimeSampler is the module's single sanctioned reader of
// runtime/metrics (the walltime analyzer flags direct reads elsewhere):
// it publishes heap bytes, GC cycle count, GC pause p95, goroutine
// count and scheduling latency p95 as registry gauges, which then flow
// unchanged into the OpenMetrics /metrics endpoint, export.Sampler time
// series and starmon -attach frames. Like every obs API it is nil-safe:
// NewRuntimeSampler(nil) returns a nil sampler whose methods are no-ops
// costing a pointer test (BenchmarkObsDisabled in internal/core stays
// 0 allocs/op with a disabled sampler in the loop).
package prof

import (
	"context"
	"os"
	"runtime"
	"runtime/pprof"
)

// Do runs fn with the pprof goroutine label phase=<phase> set, so CPU
// samples taken inside are attributable to that phase of the pipeline.
// Labels are inherited by goroutines started inside fn (the parallel
// block-routing pool, for one) and the previous label set is restored
// when fn returns, so nested phases shadow correctly.
func Do(phase string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", phase), func(context.Context) {
		fn()
	})
}

// StartCPUProfile starts a CPU profile into path and returns the stop
// function that ends the profile and closes the file. It backs the
// CLIs' -cpuprofile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// collection timing) and writes the heap profile to path. It backs the
// CLIs' -memprofile flag.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
