package prof

import (
	"math"
	"os"
	"path/filepath"
	"runtime/metrics"
	"testing"
	"time"

	"repro/internal/obs"
)

// spin burns CPU until deadline, returning a data dependency so the
// loop cannot be optimized away. Tests run it under Do(...) to give the
// 100 Hz CPU profiler labeled samples to collect.
func spin(deadline time.Time) uint64 {
	var x uint64 = 88172645463325252
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	return x
}

var spinSink uint64

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample()
	snap := reg.Snapshot()
	for _, name := range []string{
		"runtime.mem.heap_bytes", "runtime.gc.cycles", "runtime.gc.pause_p95_ns",
		"runtime.sched.goroutines", "runtime.sched.latency_p95_ns",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing from snapshot", name)
		}
	}
	if v := snap.Gauges["runtime.mem.heap_bytes"]; v <= 0 {
		t.Errorf("runtime.mem.heap_bytes = %d, want > 0", v)
	}
	if v := snap.Gauges["runtime.sched.goroutines"]; v < 1 {
		t.Errorf("runtime.sched.goroutines = %d, want >= 1", v)
	}
}

// TestRuntimeSamplerDisabled pins the nil (disabled) path: no-ops, no
// allocations — the same contract every obs hook honors.
func TestRuntimeSamplerDisabled(t *testing.T) {
	s := NewRuntimeSampler(nil)
	if s != nil {
		t.Fatal("NewRuntimeSampler(nil) must return nil")
	}
	stop := s.Start(time.Millisecond)
	stop()
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Sample()
	}); allocs != 0 {
		t.Errorf("disabled Sample allocates %.1f times per call", allocs)
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewRuntimeSampler(reg)
	stop := s.Start(time.Hour) // period never fires; Start and stop each sample once
	stop()
	stop() // idempotent
	if v := reg.Gauge("runtime.sched.goroutines").Value(); v < 1 {
		t.Errorf("runtime.sched.goroutines = %d after Start/stop, want >= 1", v)
	}
}

func TestHistQuantileNS(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1e-6, 1e-3, math.Inf(1)},
	}
	// p95 lands in the last bucket, whose upper bound is +Inf; the lower
	// bound (1 ms) is reported instead.
	if got := histQuantileNS(h, 0.95); got != 1e6 {
		t.Errorf("p95 = %d ns, want 1e6", got)
	}
	if got := histQuantileNS(h, 0.50); got != 1e6 {
		t.Errorf("p50 = %d ns, want 1e6 (upper bound of the middle bucket)", got)
	}
	if got := histQuantileNS(&metrics.Float64Histogram{}, 0.95); got != 0 {
		t.Errorf("empty histogram p95 = %d, want 0", got)
	}
	if got := histQuantileNS(nil, 0.95); got != 0 {
		t.Errorf("nil histogram p95 = %d, want 0", got)
	}
}

// TestCPUProfileLabeled captures a real CPU profile around a labeled
// workload and asserts the phase label survives into the profile's
// samples — the contract the -cpuprofile CLI flags rely on.
func TestCPUProfileLabeled(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles for ~1s")
	}
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	Do("embed", func() {
		spinSink = spin(time.Now().Add(time.Second))
	})
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CPUProfileHasLabel(data, "phase", "embed")
	if err != nil {
		t.Fatalf("parse profile: %v", err)
	}
	if !ok {
		t.Error("no sample carries phase=embed; labels are not reaching the profile")
	}
	// A label never set must not be found (guards the parser against
	// trivially returning true).
	if ok, err := CPUProfileHasLabel(data, "phase", "no-such-phase"); err != nil || ok {
		t.Errorf("phase=no-such-phase reported %v, %v; want false, nil", ok, err)
	}
}

func TestCPUProfileHasLabelRejectsGarbage(t *testing.T) {
	if _, err := CPUProfileHasLabel([]byte{0x1f, 0x8b, 0x00}, "phase", "embed"); err == nil {
		t.Error("truncated gzip accepted")
	}
	// A raw buffer that parses as an empty/unknown message simply finds
	// nothing.
	if ok, err := CPUProfileHasLabel(nil, "phase", "embed"); err != nil || ok {
		t.Errorf("empty profile: got %v, %v; want false, nil", ok, err)
	}
}

func BenchmarkRuntimeSamplerSample(b *testing.B) {
	s := NewRuntimeSampler(obs.NewRegistry())
	s.Sample() // let runtime/metrics size its histogram buffers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

func BenchmarkRuntimeSamplerDisabled(b *testing.B) {
	var s *RuntimeSampler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}
