package obs

import (
	"reflect"
	"testing"
)

func TestMakeLabels(t *testing.T) {
	cases := []struct {
		kv   []string
		want string
	}{
		{nil, ""},
		{[]string{"n"}, ""}, // trailing odd arg dropped
		{[]string{"n", "6"}, `n="6"`},
		{[]string{"outcome", "splices", "n", "6"}, `n="6",outcome="splices"`},
		{[]string{"n", "6", "n", "7"}, `n="7"`}, // later duplicate wins
		{[]string{"a", "1", "b", "2", "c"}, `a="1",b="2"`},
	}
	for _, c := range cases {
		if got := MakeLabels(c.kv...).String(); got != c.want {
			t.Errorf("MakeLabels(%v) = %q, want %q", c.kv, got, c.want)
		}
	}
}

func TestValidLabelKey(t *testing.T) {
	for _, ok := range []string{"n", "machine", "error_budget", "x9_y"} {
		if !ValidLabelKey(ok) {
			t.Errorf("ValidLabelKey(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "N", "9n", "_n", "ma-chine", "core.n", "münze"} {
		if ValidLabelKey(bad) {
			t.Errorf("ValidLabelKey(%q) = true", bad)
		}
	}
}

func TestLabelsMergeGetWithout(t *testing.T) {
	a := MakeLabels("machine", "m0", "n", "6")
	b := MakeLabels("n", "7", "outcome", "splices")
	m := a.Merge(b)
	if got := m.String(); got != `machine="m0",n="7",outcome="splices"` {
		t.Errorf("Merge = %q", got)
	}
	// Neither input mutated.
	if a.String() != `machine="m0",n="6"` || b.String() != `n="7",outcome="splices"` {
		t.Errorf("Merge mutated inputs: %q / %q", a, b)
	}
	if v, ok := m.Get("outcome"); !ok || v != "splices" {
		t.Errorf("Get(outcome) = %q, %v", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Error("Get(missing) = present")
	}
	if got := m.Without("n", "machine").String(); got != `outcome="splices"` {
		t.Errorf("Without = %q", got)
	}
}

func TestLabelsMapRoundTrip(t *testing.T) {
	ls := MakeLabels("machine", "m3", "n", "6")
	back := LabelsFromMap(ls.Map())
	if !reflect.DeepEqual(ls, back) {
		t.Errorf("map round trip: %v -> %v", ls, back)
	}
	if Labels(nil).Map() != nil || LabelsFromMap(nil) != nil {
		t.Error("empty set should map to nil both ways")
	}
}

// TestEncodeParseNameRoundTrip drives EncodeName/ParseName through
// plain names, multi-label sets and every escape the wire form allows.
func TestEncodeParseNameRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		ls   Labels
	}{
		{"sim.embeds", nil},
		{"core.embed.completed", MakeLabels("n", "6", "mode", "guaranteed")},
		{"sim.embeds", MakeLabels("machine", "m0")},
		{"x", MakeLabels("k", `quote " slash \ newline`+"\n")},
	}
	for _, c := range cases {
		enc := EncodeName(c.name, c.ls)
		name, ls, err := ParseName(enc)
		if err != nil {
			t.Errorf("ParseName(%q): %v", enc, err)
			continue
		}
		if name != c.name || ls.String() != c.ls.String() {
			t.Errorf("round trip %q -> %q{%s}, want %q{%s}", enc, name, ls, c.name, c.ls)
		}
	}
}

func TestParseNameMalformed(t *testing.T) {
	for _, bad := range []string{
		"m{",            // unterminated clause
		`m{k="v"`,       // missing closing brace
		`m{k}`,          // no = "
		`m{k="v}`,       // unterminated value
		`m{k="v"x="y"}`, // missing separator
		`m{k="v",,}`,    // malformed pair
	} {
		if _, _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) accepted", bad)
		}
	}
	// Bare names and empty clauses are legal.
	if name, ls, err := ParseName("m{}"); err != nil || name != "m" || ls != nil {
		t.Errorf("ParseName(m{}) = %q, %v, %v", name, ls, err)
	}
}
