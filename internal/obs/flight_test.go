package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFlightNilSafe(t *testing.T) {
	if f := NewFlightRecorder(nil, 8); f != nil {
		t.Fatal("nil registry produced a live recorder")
	}
	var f *FlightRecorder
	f.noteRecord(Record{})
	f.noteSpan(Event{})
	f.SetAutoDump("x", func(string) error { return nil })
	f.NoteError(1, 2, "t.source", errors.New("boom"))
	if f.Events() != nil || f.SpanEvents() != nil || f.Registry() != nil {
		t.Error("nil recorder leaks state")
	}
	if err := f.Dump("x", func(string) error { return errors.New("no") }); err != nil {
		t.Error("nil recorder Dump errored")
	}
}

// The rings must be bounded and oldest-first: after overfilling, only
// the most recent capacity entries survive, in arrival order.
func TestFlightRingsOverwriteOldest(t *testing.T) {
	var buf strings.Builder
	reg := NewRegistry()
	clock := NewManual(time.Unix(10, 0))
	reg.SetClock(clock)
	reg.SetEventLog(NewEventLog(&buf, LevelDebug, clock))
	f := NewFlightRecorder(reg, 4)

	for i := 0; i < 6; i++ {
		reg.EventLog().Log(LevelInfo, "t.event", F("i", i))
		sp := reg.Span("t.phase.step")
		clock.Advance(time.Millisecond)
		sp.End()
	}

	events := f.Events()
	if len(events) != 4 {
		t.Fatalf("event ring holds %d, want 4", len(events))
	}
	// The ring tees in-memory records, so field values keep their Go
	// types (int here, not JSON's float64).
	for i, rec := range events {
		if got := rec.Fields["i"]; got != i+2 {
			t.Errorf("event ring[%d].i = %v, want %d (oldest-first window)", i, got, i+2)
		}
	}
	spans := f.SpanEvents()
	if len(spans) != 4 {
		t.Fatalf("span ring holds %d, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNS <= spans[i-1].StartNS {
			t.Errorf("span ring not oldest-first: %v then %v", spans[i-1].StartNS, spans[i].StartNS)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["obs.flight.events"]; got != 6 {
		t.Errorf("obs.flight.events = %d, want 6", got)
	}
	if got := snap.Counters["obs.flight.spans"]; got != 6 {
		t.Errorf("obs.flight.spans = %d, want 6", got)
	}
}

// NoteError with no event log attached must still leave evidence in
// the ring, stamped with the failing identity.
func TestFlightNoteErrorWithoutLog(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(reg, 8)
	f.NoteError(7, 9, "t.source", errors.New("boom"))
	f.NoteError(7, 9, "t.source", nil) // nil error is a no-op

	events := f.Events()
	if len(events) != 1 {
		t.Fatalf("ring holds %d records, want 1", len(events))
	}
	rec := events[0]
	if rec.Event != "obs.flight.error" || rec.Trace != 7 || rec.Span != 9 {
		t.Errorf("error record = %+v", rec)
	}
	if rec.Fields["source"] != "t.source" || rec.Fields["error"] != "boom" {
		t.Errorf("error fields = %+v", rec.Fields)
	}
	if got := reg.Snapshot().Counters["obs.flight.errors"]; got != 1 {
		t.Errorf("obs.flight.errors = %d, want 1", got)
	}
}

func TestFlightAutoDump(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(reg, 8)

	dumps := 0
	var gotDir string
	f.SetAutoDump("post", func(dir string) error {
		dumps++
		gotDir = dir
		return nil
	})
	f.NoteError(1, 2, "t.source", errors.New("boom"))
	if dumps != 1 || gotDir != "post" {
		t.Fatalf("auto-dump ran %d times into %q, want once into post", dumps, gotDir)
	}

	// A failing dump must not count.
	f.SetAutoDump("post", func(string) error { return errors.New("disk full") })
	f.NoteError(1, 2, "t.source", errors.New("boom"))
	if got := reg.Snapshot().Counters["obs.flight.dumps"]; got != 1 {
		t.Errorf("obs.flight.dumps = %d, want 1", got)
	}

	// Disarmed: no dump on error.
	f.SetAutoDump("", nil)
	f.NoteError(1, 2, "t.source", errors.New("boom"))
	if dumps != 1 {
		t.Errorf("disarmed recorder still dumped")
	}

	// On-demand Dump counts on success and propagates failure.
	if err := f.Dump("post", func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Dump("post", func(string) error { return errors.New("no") }); err == nil {
		t.Error("Dump swallowed the writer's error")
	}
	if got := reg.Snapshot().Counters["obs.flight.dumps"]; got != 2 {
		t.Errorf("obs.flight.dumps = %d, want 2", got)
	}
}

// SetEventLog after NewFlightRecorder must re-tee the new log into the
// black box (the CLIs install the discard log in either order).
func TestFlightSurvivesEventLogSwap(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(reg, 8)
	var buf strings.Builder
	reg.SetEventLog(NewEventLog(&buf, LevelDebug, reg.Clock()))
	reg.EventLog().Log(LevelInfo, "t.event")
	if events := f.Events(); len(events) != 1 || events[0].Event != "t.event" {
		t.Fatalf("swapped log not teed: %+v", events)
	}
}
