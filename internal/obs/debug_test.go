package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.count").Add(9)
	r.Histogram("test.phase").Observe(2 * time.Millisecond)
	r.PublishExpvar("obs-debug-test")
	// Re-publishing the same name must be a no-op, not a panic.
	r.PublishExpvar("obs-debug-test")
	if expvar.Get("obs-debug-test") == nil {
		t.Fatal("expvar not published")
	}

	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["obs-debug-test"], &snap); err != nil {
		t.Fatalf("published registry not in /debug/vars: %v", err)
	}
	if snap.Counters["test.count"] != 9 {
		t.Errorf("snapshot over expvar lost the counter: %+v", snap)
	}
	if snap.Histograms["test.phase"].Count != 1 {
		t.Errorf("snapshot over expvar lost the histogram: %+v", snap)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	index, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(index), "goroutine") {
		t.Fatalf("/debug/pprof/ status %d:\n%s", resp.StatusCode, index)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebugServer("256.0.0.1:bad"); err == nil {
		t.Fatal("nonsense address accepted")
	}
}

// TestDebugServerSequential is the lifecycle regression test: Close
// must release the port so a second server can bind the same address —
// the pre-Close API leaked every listener for the process lifetime.
func TestDebugServerSequential(t *testing.T) {
	first, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := first.Addr()
	if err := first.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	second, err := StartDebugServer(addr)
	if err != nil {
		t.Fatalf("rebinding %s after Close: %v", addr, err)
	}
	defer second.Close()

	resp, err := http.Get("http://" + second.Addr() + "/debug/vars")
	if err != nil {
		t.Fatalf("second server not serving: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars on the second server: status %d", resp.StatusCode)
	}
}

// TestDebugServerHandle checks that extra handlers can attach to a
// running server (the hook the /metrics exposition uses).
func TestDebugServerHandle(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "extra ok")
	}))
	resp, err := http.Get("http://" + srv.Addr() + "/extra")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(body), "extra ok") {
		t.Fatalf("extra handler not served: %v %q", err, body)
	}
}
