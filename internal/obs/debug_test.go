package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.count").Add(9)
	r.Histogram("test.phase").Observe(2 * time.Millisecond)
	r.PublishExpvar("obs-debug-test")
	// Re-publishing the same name must be a no-op, not a panic.
	r.PublishExpvar("obs-debug-test")
	if expvar.Get("obs-debug-test") == nil {
		t.Fatal("expvar not published")
	}

	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["obs-debug-test"], &snap); err != nil {
		t.Fatalf("published registry not in /debug/vars: %v", err)
	}
	if snap.Counters["test.count"] != 9 {
		t.Errorf("snapshot over expvar lost the counter: %+v", snap)
	}
	if snap.Histograms["test.phase"].Count != 1 {
		t.Errorf("snapshot over expvar lost the histogram: %+v", snap)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	index, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(index), "goroutine") {
		t.Fatalf("/debug/pprof/ status %d:\n%s", resp.StatusCode, index)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebugServer("256.0.0.1:bad"); err == nil {
		t.Fatal("nonsense address accepted")
	}
}
