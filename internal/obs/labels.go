package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one key/value dimension of a metric or registry. Keys follow
// the lower_snake convention ([a-z][a-z0-9_]*, no dots) enforced
// statically by the starlint metricname analyzer and dynamically by
// ValidLabelKey; values are free-form strings, escaped on export.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Labels is a label set, kept sorted by key with unique keys. The zero
// value (nil) is the empty set.
type Labels []Label

// ValidLabelKey reports whether k follows the label-key convention:
// lower_snake, starting with a letter, no dots.
func ValidLabelKey(k string) bool {
	if k == "" || k[0] < 'a' || k[0] > 'z' {
		return false
	}
	for i := 1; i < len(k); i++ {
		c := k[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// MakeLabels builds a sorted label set from alternating key/value
// pairs. Later duplicates of a key win; a trailing odd argument is
// dropped. Key validity is a static property of call sites (the
// metricname analyzer checks them), so MakeLabels does not reject bad
// keys — the OpenMetrics validator catches any that reach an export.
func MakeLabels(kv ...string) Labels {
	if len(kv) < 2 {
		return nil
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		ls = setLabel(ls, kv[i], kv[i+1])
	}
	return ls
}

// setLabel inserts or replaces one key, keeping ls sorted.
func setLabel(ls Labels, k, v string) Labels {
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Key >= k })
	if i < len(ls) && ls[i].Key == k {
		ls[i].Value = v
		return ls
	}
	ls = append(ls, Label{})
	copy(ls[i+1:], ls[i:])
	ls[i] = Label{Key: k, Value: v}
	return ls
}

// Merge returns the union of ls and other (other wins on shared keys)
// as a fresh sorted set; neither input is mutated.
func (ls Labels) Merge(other Labels) Labels {
	if len(other) == 0 {
		return append(Labels(nil), ls...)
	}
	out := append(Labels(nil), ls...)
	for _, l := range other {
		out = setLabel(out, l.Key, l.Value)
	}
	return out
}

// Get returns the value for key and whether it is present.
func (ls Labels) Get(key string) (string, bool) {
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Key >= key })
	if i < len(ls) && ls[i].Key == key {
		return ls[i].Value, true
	}
	return "", false
}

// Without returns ls minus the given keys, as a fresh set.
func (ls Labels) Without(keys ...string) Labels {
	var out Labels
	for _, l := range ls {
		drop := false
		for _, k := range keys {
			if l.Key == k {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, l)
		}
	}
	return out
}

// Map returns the set as a plain map, nil when empty — the JSON shape
// Snapshot carries.
func (ls Labels) Map() map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// LabelsFromMap inverts Labels.Map (sorted, deduplicated).
func LabelsFromMap(m map[string]string) Labels {
	if len(m) == 0 {
		return nil
	}
	ls := make(Labels, 0, len(m))
	for k, v := range m {
		ls = append(ls, Label{Key: k, Value: v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// String renders the set in its canonical wire form —
// k="v",k2="v2" with OpenMetrics value escaping — used both as the
// family-child map key and inside encoded metric names.
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies OpenMetrics label-value escaping: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// EncodeName renders a metric identity as name{labels}, or the bare
// name for an empty set. Snapshot keys and the series names plain
// Visitors receive are in this form.
func EncodeName(name string, ls Labels) string {
	if len(ls) == 0 {
		return name
	}
	return name + "{" + ls.String() + "}"
}

// ParseName inverts EncodeName: it splits an encoded metric identity
// into the base name and its label set. Bare names return a nil set.
func ParseName(encoded string) (name string, ls Labels, err error) {
	open := strings.IndexByte(encoded, '{')
	if open < 0 {
		return encoded, nil, nil
	}
	if !strings.HasSuffix(encoded, "}") {
		return "", nil, fmt.Errorf("obs: malformed metric identity %q", encoded)
	}
	name = encoded[:open]
	body := encoded[open+1 : len(encoded)-1]
	if body == "" {
		return name, nil, nil
	}
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return "", nil, fmt.Errorf("obs: malformed label set in %q", encoded)
		}
		key := body[:eq]
		rest := body[eq+2:]
		// Scan for the closing quote, honoring backslash escapes.
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return "", nil, fmt.Errorf("obs: unterminated label value in %q", encoded)
		}
		ls = setLabel(ls, key, val.String())
		body = rest[i+1:]
		if body == "" {
			break
		}
		if body[0] != ',' {
			return "", nil, fmt.Errorf("obs: malformed label separator in %q", encoded)
		}
		body = body[1:]
	}
	return name, ls, nil
}
