package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecWith(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("core.embed.completed", "n", "mode")
	v.With("n", "6", "mode", "guaranteed").Add(2)
	v.With("mode", "guaranteed", "n", "6").Inc() // order-insensitive: same slot
	v.With("n", "7", "mode", "besteffort").Inc()

	snap := r.Snapshot()
	if got := snap.Counters[`core.embed.completed{mode="guaranteed",n="6"}`]; got != 3 {
		t.Errorf("guaranteed n=6 = %d, want 3; %v", got, snap.Counters)
	}
	if got := snap.Counters[`core.embed.completed{mode="besteffort",n="7"}`]; got != 1 {
		t.Errorf("besteffort n=7 = %d, want 1", got)
	}
	if err := v.Err(); err != nil {
		t.Errorf("unexpected family error: %v", err)
	}
}

func TestVecSchemaMismatch(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("m", "n")
	if c := v.With("wrong_key", "1"); c != nil {
		t.Error("mismatched keys resolved a live counter")
	}
	v.With("wrong_key", "1").Inc() // nil counter: must be safe
	if err := v.Err(); err == nil || !strings.Contains(err.Error(), "declared label keys") {
		t.Errorf("Err() = %v, want schema mismatch", err)
	}
	// Odd argument count is a mismatch too (on a fresh family, since
	// only the first error is kept).
	v2 := r.CounterVec("m2", "n")
	if c := v2.With("n"); c != nil {
		t.Error("odd kv list resolved a live counter")
	}
	if v2.Err() == nil {
		t.Error("odd kv list left no error")
	}
	// Redeclaring a family with different keys is recorded, not merged
	// (fresh registry: families keep only their first error).
	r3 := NewRegistry()
	r3.CounterVec("m", "n")
	r3.CounterVec("m", "other")
	errs := r3.VecErrors()
	found := false
	for _, err := range errs {
		if strings.Contains(err.Error(), "redeclared") {
			found = true
		}
	}
	if !found {
		t.Errorf("VecErrors() = %v, want a redeclaration error", errs)
	}
}

func TestVecInvalidKey(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("m", "Not_Snake")
	if v.Err() == nil {
		t.Error("invalid label key accepted")
	}
	r2 := NewRegistry()
	if v := r2.HistogramVec("h", "n", "n"); v.Err() == nil {
		t.Error("duplicate label key accepted")
	}
}

func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxCardinality(3)
	v := r.CounterVec("m", "id")
	for i := 0; i < 3; i++ {
		if v.With("id", fmt.Sprint(i)) == nil {
			t.Fatalf("slot %d refused under the cap", i)
		}
	}
	if v.With("id", "3") != nil {
		t.Error("4th label set resolved past a cap of 3")
	}
	// Existing slots keep working.
	if v.With("id", "0") == nil {
		t.Error("existing slot lost after cap trip")
	}
	if err := v.Err(); err == nil || !strings.Contains(err.Error(), "cardinality cap") {
		t.Errorf("Err() = %v, want cardinality cap", err)
	}
	if len(r.Snapshot().Counters) != 3 {
		t.Errorf("snapshot grew past the cap: %v", r.Snapshot().Counters)
	}
}

func TestChildRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Child("machine", "m0")
	if again := r.Child("machine", "m0"); again != c {
		t.Error("Child is not idempotent per label set")
	}
	if other := r.Child("machine", "m1"); other == c {
		t.Error("distinct label sets shared a child")
	}
	g := c.Child("zone", "a")
	if got := g.Labels().String(); got != `machine="m0",zone="a"` {
		t.Errorf("grandchild labels = %q", got)
	}

	c.Counter("sim.embeds").Add(5)
	c.CounterVec("core.repair.outcome", "outcome").With("outcome", "splices").Inc()
	g.Gauge("depth").Set(2)

	// Root snapshot: fully labeled keys.
	snap := r.Snapshot()
	if got := snap.Counters[`sim.embeds{machine="m0"}`]; got != 5 {
		t.Errorf("root view = %v", snap.Counters)
	}
	if got := snap.Counters[`core.repair.outcome{machine="m0",outcome="splices"}`]; got != 1 {
		t.Errorf("root view of family = %v", snap.Counters)
	}
	if got := snap.Gauges[`depth{machine="m0",zone="a"}`]; got != 2 {
		t.Errorf("root view of grandchild = %v", snap.Gauges)
	}
	// Child snapshot: self-relative keys, identity in Labels.
	cs := c.Snapshot()
	if cs.Labels["machine"] != "m0" {
		t.Errorf("child snapshot labels = %v", cs.Labels)
	}
	if got := cs.Counters["sim.embeds"]; got != 5 {
		t.Errorf("child view = %v", cs.Counters)
	}
	if got := cs.Gauges[`depth{zone="a"}`]; got != 2 {
		t.Errorf("child view of grandchild = %v", cs.Gauges)
	}

	if len(r.Children()) != 2 {
		t.Errorf("Children() = %d, want 2", len(r.Children()))
	}
}

func TestChildEventLogStamping(t *testing.T) {
	var buf strings.Builder
	r := NewRegistry()
	r.SetEventLog(NewEventLog(&buf, LevelInfo, r.Clock()))
	r.Child("machine", "m0").EventLog().Log(LevelInfo, "boot", F("ok", true))
	recs, err := ReadLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if got, _ := recs[0].Fields["machine"].(string); got != "m0" {
		t.Errorf("machine field = %q; record %+v", got, recs[0])
	}
	if ok, _ := recs[0].Fields["ok"].(bool); !ok {
		t.Errorf("call-site field lost: %+v", recs[0])
	}
}

// labelCollector records both plain and labeled callbacks to test
// Visit's routing.
type labelCollector struct {
	plain   []string
	labeled []string
}

func (c *labelCollector) VisitCounter(name string, _ *Counter)     { c.plain = append(c.plain, name) }
func (c *labelCollector) VisitGauge(name string, _ *Gauge)         { c.plain = append(c.plain, name) }
func (c *labelCollector) VisitHistogram(name string, _ *Histogram) { c.plain = append(c.plain, name) }
func (c *labelCollector) VisitLabeledCounter(name string, ls Labels, _ *Counter) {
	c.labeled = append(c.labeled, EncodeName(name, ls))
}
func (c *labelCollector) VisitLabeledGauge(name string, ls Labels, _ *Gauge) {
	c.labeled = append(c.labeled, EncodeName(name, ls))
}
func (c *labelCollector) VisitLabeledHistogram(name string, ls Labels, _ *Histogram) {
	c.labeled = append(c.labeled, EncodeName(name, ls))
}

// plainCollector implements only Visitor; labeled metrics must arrive
// with encoded names.
type plainCollector struct{ names []string }

func (c *plainCollector) VisitCounter(name string, _ *Counter)     { c.names = append(c.names, name) }
func (c *plainCollector) VisitGauge(name string, _ *Gauge)         { c.names = append(c.names, name) }
func (c *plainCollector) VisitHistogram(name string, _ *Histogram) { c.names = append(c.names, name) }

func TestVisitLabelRouting(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain").Inc()
	r.CounterVec("fam", "n").With("n", "6").Inc()
	r.Child("machine", "m0").Counter("sim.embeds").Inc()

	lc := &labelCollector{}
	r.Visit(lc)
	if len(lc.plain) != 0 {
		t.Errorf("LabelVisitor received plain callbacks: %v", lc.plain)
	}
	wantLabeled := map[string]bool{
		"plain":                    true,
		`fam{n="6"}`:               true,
		`sim.embeds{machine="m0"}`: true,
	}
	for _, n := range lc.labeled {
		delete(wantLabeled, n)
	}
	if len(wantLabeled) != 0 {
		t.Errorf("labeled callbacks missing %v; got %v", wantLabeled, lc.labeled)
	}

	pc := &plainCollector{}
	r.Visit(pc)
	wantPlain := map[string]bool{
		"plain":                    true,
		`fam{n="6"}`:               true,
		`sim.embeds{machine="m0"}`: true,
	}
	for _, n := range pc.names {
		delete(wantPlain, n)
	}
	if len(wantPlain) != 0 {
		t.Errorf("plain callbacks missing %v; got %v", wantPlain, pc.names)
	}
}

// TestVecDisabledAllocs pins the tentpole's hot-path guarantee at the
// obs layer: With on a nil vec must not heap-allocate its key/value
// pairs (internal/core's BenchmarkObsDisabled measures the same path).
func TestVecDisabledAllocs(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	if allocs := testing.AllocsPerRun(1000, func() {
		cv.With("n", "6", "mode", "guaranteed").Inc()
		gv.With("n", "6").Set(1)
		hv.With("n", "6").Observe(1)
	}); allocs != 0 {
		t.Errorf("disabled With allocates %.1f times per call", allocs)
	}
}

// TestVecConcurrency exercises every mutating and reading surface at
// once; its real assertions run under `go test -race` (the ci.sh race
// leg): family creation vs With vs Visit vs Snapshot vs Child.
func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("m%d", w%4)
			for i := 0; i < 200; i++ {
				r.CounterVec("fam", "id").With("id", id).Inc()
				r.Child("machine", id).Counter("sim.embeds").Inc()
				switch i % 3 {
				case 0:
					r.Snapshot()
				case 1:
					r.Visit(&plainCollector{})
				default:
					r.Visit(&labelCollector{})
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for i := 0; i < 4; i++ {
		total += snap.Counters[fmt.Sprintf(`fam{id="m%d"}`, i)]
		total += snap.Counters[fmt.Sprintf(`sim.embeds{machine="m%d"}`, i)]
	}
	if want := int64(8 * 200 * 2); total != want {
		t.Errorf("lost updates: %d, want %d", total, want)
	}
}
