package obs

import (
	"sync"
	"time"
)

// Clock is an injectable time source. Production code reads Wall;
// tests and the deterministic simulator inject a Manual clock so timing
// paths are exercised without real elapsed time.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall is the real wall clock. It is the module's single sanctioned
// reader of time.Now — everywhere else the walltime analyzer requires
// timing to flow through an injected Clock.
var Wall Clock = wallClock{}

// Since returns the time elapsed on c since t; a nil clock reads Wall.
// Negative elapsed times (a manual clock stepped backwards) clamp to 0.
func Since(c Clock, t time.Time) time.Duration {
	if c == nil {
		c = Wall
	}
	d := c.Now().Sub(t)
	if d < 0 {
		d = 0
	}
	return d
}

// Manual is a Clock that only moves when advanced explicitly. It is
// safe for concurrent use.
type Manual struct {
	mu  sync.Mutex
	now time.Time
}

// NewManual returns a manual clock frozen at start.
func NewManual(start time.Time) *Manual { return &Manual{now: start} }

// Now returns the clock's current instant.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d (or backward for negative d).
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
}
