package obs

import (
	"io"
	"testing"
	"time"
)

// The disabled path must be a few nanoseconds and allocation-free:
// instrumented code calls through nil metrics unconditionally, so this
// is the price every un-observed run pays.

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("phase").End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("phase").End()
	}
}

// BenchmarkSpanEnabledWithOp prices the traced path: a child span off a
// live operation, whose End also feeds the slowest-K exemplar reservoir.
func BenchmarkSpanEnabledWithOp(b *testing.B) {
	r := NewRegistry()
	op := r.StartOp("op")
	defer op.Done()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op.Span("phase").End()
	}
}

// BenchmarkEventLogRecord prices one structured record through the
// marshal-and-single-Write path (no flight recorder attached).
func BenchmarkEventLogRecord(b *testing.B) {
	lg := NewEventLog(io.Discard, LevelInfo, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Log(LevelInfo, "bench.event", F("i", i))
	}
}
