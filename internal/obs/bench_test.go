package obs

import (
	"io"
	"testing"
	"time"
)

// The disabled path must be a few nanoseconds and allocation-free:
// instrumented code calls through nil metrics unconditionally, so this
// is the price every un-observed run pays.

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("phase").End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("phase").End()
	}
}

// BenchmarkSpanEnabledWithOp prices the traced path: a child span off a
// live operation, whose End also feeds the slowest-K exemplar reservoir.
func BenchmarkSpanEnabledWithOp(b *testing.B) {
	r := NewRegistry()
	op := r.StartOp("op")
	defer op.Done()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op.Span("phase").End()
	}
}

// BenchmarkFamilyWith prices a live labeled lookup: MakeLabels over the
// variadic pairs, the canonical-key encode, and the slot-map hit. Hot
// paths that care pre-resolve the handle once instead (see
// BenchmarkFamilyWithHeld); bench.sh archives this next to the disabled
// path so the With cost stays visible release over release.
func BenchmarkFamilyWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench.family", "n", "mode")
	v.With("n", "6", "mode", "guaranteed").Inc() // materialize the slot
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("n", "6", "mode", "guaranteed").Inc()
	}
}

// BenchmarkFamilyWithHeld is the pre-resolved pattern: With once, hold
// the *Counter, pay only the atomic add per operation.
func BenchmarkFamilyWithHeld(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("bench.family", "n", "mode").With("n", "6", "mode", "guaranteed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkFamilyWithDisabled is the nil-vec fast path the enabled
// numbers are read against; it must report 0 allocs/op.
func BenchmarkFamilyWithDisabled(b *testing.B) {
	var v *CounterVec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("n", "6", "mode", "guaranteed").Inc()
	}
}

// BenchmarkEventLogRecord prices one structured record through the
// marshal-and-single-Write path (no flight recorder attached).
func BenchmarkEventLogRecord(b *testing.B) {
	lg := NewEventLog(io.Discard, LevelInfo, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Log(LevelInfo, "bench.event", F("i", i))
	}
}
