package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is one bucket per bit length of the nanosecond value:
// bucket 0 holds exactly 0ns, bucket b holds [2^(b-1), 2^b). int64
// nanoseconds never exceed bit length 63.
const histBuckets = 64

// Histogram accumulates durations in power-of-two nanosecond buckets.
// Recording is three atomic adds plus a CAS loop for the max — no
// locks, no allocation — so it is safe on concurrent hot paths. The
// zero value is ready to use; a nil *Histogram discards observations.
//
// Quantiles are bucket upper bounds, i.e. correct to within a factor
// of two, which is ample for the phase-timing questions this layer
// answers (orders of magnitude, regressions, outliers).
type Histogram struct {
	count   int64
	sum     int64
	max     int64
	buckets [histBuckets]int64

	// Slowest-K exemplars, touched only by the traced span path
	// (ObserveTrace); plain Observe never takes the lock, so hot
	// paths stay atomic-only.
	exMu sync.Mutex
	ex   [histExemplars]Exemplar
}

// histExemplars is the per-histogram exemplar capacity: the K slowest
// traced observations kept for OpenMetrics exemplar exposition.
const histExemplars = 4

// Exemplar ties one observed duration to the trace that produced it —
// the OpenMetrics exemplar model, minus labels we do not have. A zero
// Trace marks an empty slot.
type Exemplar struct {
	NS    int64   `json:"ns"`
	Trace TraceID `json:"trace_id"`
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, ns)
	for {
		cur := atomic.LoadInt64(&h.max)
		if ns <= cur || atomic.CompareAndSwapInt64(&h.max, cur, ns) {
			break
		}
	}
	atomic.AddInt64(&h.buckets[bits.Len64(uint64(ns))], 1)
}

// ObserveTrace records one duration like Observe and, when trace is
// nonzero, competes it into the slowest-K exemplar slots. Only traced
// span Ends reach this path, so the mutex never touches the
// atomic-only hot paths.
func (h *Histogram) ObserveTrace(d time.Duration, trace TraceID) {
	h.Observe(d)
	if h == nil || trace == 0 {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.exMu.Lock()
	min := 0
	for i := 1; i < histExemplars; i++ {
		if h.ex[min].Trace == 0 {
			break // an empty slot is always the victim
		}
		if h.ex[i].Trace == 0 || h.ex[i].NS < h.ex[min].NS {
			min = i
		}
	}
	if h.ex[min].Trace == 0 || ns > h.ex[min].NS {
		h.ex[min] = Exemplar{NS: ns, Trace: trace}
	}
	h.exMu.Unlock()
}

// Exemplars returns the retained slowest traced observations, slowest
// first. Empty (and allocation-free) when nothing traced was observed.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	var out []Exemplar
	for _, e := range h.ex {
		if e.Trace != 0 {
			out = append(out, e)
		}
	}
	h.exMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].NS > out[j].NS })
	return out
}

// HistogramStats is a histogram snapshot: counts, total, and the
// p50/p95/max nanosecond marks. Exemplars and Buckets are populated
// only by Registry.Snapshot — Stats leaves them nil so the export
// Sampler's steady-state Visit path stays allocation-free. Buckets is
// the raw per-bit-length bucket array (trimmed of trailing zeros),
// which is what lets MergeHistogramStats combine machines' histograms
// bucket-wise instead of averaging quantiles.
type HistogramStats struct {
	Count     int64      `json:"count"`
	SumNS     int64      `json:"sum_ns"`
	P50NS     int64      `json:"p50_ns"`
	P95NS     int64      `json:"p95_ns"`
	MaxNS     int64      `json:"max_ns"`
	Buckets   []int64    `json:"buckets,omitempty"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Stats snapshots the histogram. Quantiles are clamped to the observed
// maximum so a single sample reports p50 = p95 = max.
func (h *Histogram) Stats() HistogramStats {
	var s HistogramStats
	if h == nil {
		return s
	}
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = atomic.LoadInt64(&h.buckets[i])
	}
	s.Count = atomic.LoadInt64(&h.count)
	s.SumNS = atomic.LoadInt64(&h.sum)
	s.MaxNS = atomic.LoadInt64(&h.max)
	s.P50NS = quantile(&counts, s.Count, 0.50, s.MaxNS)
	s.P95NS = quantile(&counts, s.Count, 0.95, s.MaxNS)
	return s
}

// BucketCounts returns the per-bucket observation counts, trimmed of
// trailing zero buckets (nil when nothing was observed). Bucket b
// holds durations of nanosecond bit length b; see histBuckets.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	hi := -1
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = atomic.LoadInt64(&h.buckets[i])
		if counts[i] != 0 {
			hi = i
		}
	}
	if hi < 0 {
		return nil
	}
	out := make([]int64, hi+1)
	copy(out, counts[:hi+1])
	return out
}

// MergeHistogramStats combines two histogram snapshots into the stats
// of their union. When both carry raw bucket counts the quantiles are
// recomputed from the merged distribution; otherwise the merge falls
// back to the pessimistic max of the inputs' quantile marks.
func MergeHistogramStats(a, b HistogramStats) HistogramStats {
	out := HistogramStats{
		Count: a.Count + b.Count,
		SumNS: a.SumNS + b.SumNS,
		MaxNS: a.MaxNS,
	}
	if b.MaxNS > out.MaxNS {
		out.MaxNS = b.MaxNS
	}
	haveBuckets := (len(a.Buckets) > 0 || a.Count == 0) && (len(b.Buckets) > 0 || b.Count == 0)
	if haveBuckets && out.Count > 0 {
		var counts [histBuckets]int64
		for i, c := range a.Buckets {
			counts[i] += c
		}
		for i, c := range b.Buckets {
			counts[i] += c
		}
		hi := -1
		for i, c := range counts {
			if c != 0 {
				hi = i
			}
		}
		out.Buckets = make([]int64, hi+1)
		copy(out.Buckets, counts[:hi+1])
		out.P50NS = quantile(&counts, out.Count, 0.50, out.MaxNS)
		out.P95NS = quantile(&counts, out.Count, 0.95, out.MaxNS)
		return out
	}
	if a.P50NS > out.P50NS {
		out.P50NS = a.P50NS
	}
	if b.P50NS > out.P50NS {
		out.P50NS = b.P50NS
	}
	if a.P95NS > out.P95NS {
		out.P95NS = a.P95NS
	}
	if b.P95NS > out.P95NS {
		out.P95NS = b.P95NS
	}
	return out
}

// quantile returns the upper bound of the bucket containing the q-th
// ranked observation, clamped to max.
func quantile(counts *[histBuckets]int64, total int64, q float64, max int64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range counts {
		seen += c
		if seen >= rank {
			var hi int64
			if b > 0 {
				hi = int64(1)<<uint(b) - 1
			}
			if hi > max {
				hi = max
			}
			return hi
		}
	}
	return max
}
