package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestIDHexJSONRoundTrip(t *testing.T) {
	for _, id := range []TraceID{0, 1, 0xdeadbeefcafe1234, ^TraceID(0)} {
		s := id.String()
		if len(s) != 16 || strings.ToLower(s) != s {
			t.Errorf("TraceID(%d).String() = %q, want 16 lowercase hex digits", id, s)
		}
		data, err := json.Marshal(id)
		if err != nil {
			t.Fatal(err)
		}
		var back TraceID
		if err := json.Unmarshal(data, &back); err != nil || back != id {
			t.Errorf("round trip %v -> %s -> %v (err %v)", id, data, back, err)
		}
	}
	var sp SpanID
	if err := json.Unmarshal([]byte(`"00000000000000ff"`), &sp); err != nil || sp != 0xff {
		t.Errorf("SpanID unmarshal: %v err=%v", sp, err)
	}
	if err := sp.UnmarshalJSON([]byte(`"zzz"`)); err == nil {
		t.Error("bad hex accepted")
	}
	// Absent / null ids decode to zero, matching omitempty on the wire.
	if err := sp.UnmarshalJSON([]byte(`null`)); err != nil || sp != 0 {
		t.Errorf("null id: %v err=%v", sp, err)
	}
}

func TestNextIDNonzeroDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		id := nextID()
		if id == 0 {
			t.Fatal("nextID returned 0")
		}
		if seen[id] {
			t.Fatalf("nextID repeated %#x after %d draws", id, i)
		}
		seen[id] = true
	}
}

// TestStartOpLinkage checks the causal chain an operation produces:
// every span shares the op's trace id, children point at their parent,
// and the root has no parent.
func TestStartOpLinkage(t *testing.T) {
	clock := NewManual(time.Unix(100, 0))
	reg := NewRegistry()
	reg.SetClock(clock)
	rec := NewRecorder(16)
	reg.SetSink(rec)

	op := reg.StartOp("t.op.run")
	if op.Trace() == 0 || op.SpanID() == 0 {
		t.Fatalf("op has zero identity: trace=%v span=%v", op.Trace(), op.SpanID())
	}
	child := op.Span("t.phase.a")
	grand := child.Span("t.phase.b")
	clock.Advance(time.Millisecond)
	grand.End()
	child.End()
	if d := op.Done(); d != time.Millisecond {
		t.Errorf("op duration = %v, want 1ms", d)
	}

	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("got %d span events, want 3", len(events))
	}
	byName := map[string]Event{}
	for _, e := range events {
		byName[e.Name] = e
		if e.Trace != op.Trace() {
			t.Errorf("%s trace = %v, want %v", e.Name, e.Trace, op.Trace())
		}
		if e.Span == 0 {
			t.Errorf("%s has no span id", e.Name)
		}
	}
	root, a, b := byName["t.op.run"], byName["t.phase.a"], byName["t.phase.b"]
	if root.Parent != 0 {
		t.Errorf("root parent = %v, want 0", root.Parent)
	}
	if a.Parent != root.Span {
		t.Errorf("child parent = %v, want root %v", a.Parent, root.Span)
	}
	if b.Parent != a.Span {
		t.Errorf("grandchild parent = %v, want child %v", b.Parent, a.Span)
	}
}

// Two ops on the same registry must not share a trace.
func TestStartOpDistinctTraces(t *testing.T) {
	reg := NewRegistry()
	a, b := reg.StartOp("t.op.a"), reg.StartOp("t.op.b")
	if a.Trace() == b.Trace() {
		t.Errorf("two ops share trace %v", a.Trace())
	}
	a.Done()
	b.Done()
}

// Spans started outside any op keep the legacy untraced behavior, even
// when chained through Span.Span.
func TestUntracedSpanStaysUntraced(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(8)
	reg.SetSink(rec)
	outer := reg.Span("t.phase.total")
	inner := outer.Span("t.phase.route")
	inner.End()
	outer.End()
	for _, e := range rec.Events() {
		if e.Trace != 0 || e.Span != 0 || e.Parent != 0 {
			t.Errorf("untraced span %s carries identity: %+v", e.Name, e)
		}
	}
}

func TestOpLogStampsIdentity(t *testing.T) {
	var buf strings.Builder
	reg := NewRegistry()
	reg.SetEventLog(NewEventLog(&buf, LevelDebug, reg.Clock()))

	op := reg.StartOp("t.op.run")
	op.Log(LevelInfo, "t.milestone", F("k", 1))
	reg.EventLog().Log(LevelInfo, "t.plain")
	op.Done()

	recs, err := ReadLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Trace != op.Trace() || recs[0].Span != op.SpanID() {
		t.Errorf("op record identity %v/%v, want %v/%v",
			recs[0].Trace, recs[0].Span, op.Trace(), op.SpanID())
	}
	if recs[1].Trace != 0 || recs[1].Span != 0 {
		t.Errorf("plain record carries identity: %+v", recs[1])
	}
	// Untraced records must omit the id keys entirely on the wire.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.Contains(lines[1], "trace_id") {
		t.Errorf("untraced line carries trace_id: %s", lines[1])
	}
}

// The disabled operation: every method on a nil *Op (and StartOp on a
// nil registry) is safe and inert.
func TestOpNilSafety(t *testing.T) {
	var reg *Registry
	op := reg.StartOp("t.op.run")
	if op != nil {
		t.Fatal("nil registry produced a live op")
	}
	if op.Trace() != 0 || op.SpanID() != 0 {
		t.Error("nil op has identity")
	}
	op.Span("t.phase.a").End()
	op.Log(LevelError, "t.event", F("k", "v"))
	if op.Enabled(LevelError) {
		t.Error("nil op claims logging is enabled")
	}
	if op.Done() != 0 {
		t.Error("nil op reports a duration")
	}
	op.Fail("t.source", errors.New("boom"))
}

// Op.Fail routes the error to the flight recorder and still completes
// the root span's histogram observation.
func TestOpFail(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(reg, 8)
	op := reg.StartOp("t.op.run")
	op.Fail("t.source", errors.New("boom"))

	snap := reg.Snapshot()
	if got := snap.Counters["obs.flight.errors"]; got != 1 {
		t.Errorf("obs.flight.errors = %d, want 1", got)
	}
	if got := snap.Histograms["t.op.run"].Count; got != 1 {
		t.Errorf("root span histogram count = %d, want 1", got)
	}
	events := f.Events()
	if len(events) != 1 || events[0].Event != "obs.flight.error" {
		t.Fatalf("flight ring = %+v, want one obs.flight.error", events)
	}
	if events[0].Trace != op.Trace() || events[0].Span != op.SpanID() {
		t.Errorf("error record identity %v/%v, want %v/%v",
			events[0].Trace, events[0].Span, op.Trace(), op.SpanID())
	}
}

func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	// Untraced observations never become exemplars.
	h.Observe(10 * time.Millisecond)
	if got := h.Exemplars(); len(got) != 0 {
		t.Fatalf("untraced observation produced exemplars: %+v", got)
	}
	// Fill past capacity with rising durations: the slowest K survive.
	for i := 1; i <= histExemplars+2; i++ {
		h.ObserveTrace(time.Duration(i)*time.Millisecond, TraceID(i))
	}
	ex := h.Exemplars()
	if len(ex) != histExemplars {
		t.Fatalf("got %d exemplars, want %d", len(ex), histExemplars)
	}
	for i, e := range ex {
		want := time.Duration(histExemplars+2-i) * time.Millisecond
		if e.NS != int64(want) {
			t.Errorf("exemplar %d = %v, want %v (slowest first)", i, time.Duration(e.NS), want)
		}
		if e.Trace == 0 {
			t.Errorf("exemplar %d has no trace", i)
		}
	}
	// A fast traced observation must not evict a slower exemplar.
	h.ObserveTrace(time.Microsecond, TraceID(99))
	for _, e := range h.Exemplars() {
		if e.Trace == 99 {
			t.Error("fast observation evicted a slower exemplar")
		}
	}
	// Stats stays exemplar-free (the sampler's alloc-free path); the
	// registry snapshot attaches them.
	if st := h.Stats(); st.Exemplars != nil {
		t.Errorf("Stats carries exemplars: %+v", st.Exemplars)
	}
	reg := NewRegistry()
	op := reg.StartOp("t.op.run")
	op.Done()
	if ex := reg.Snapshot().Histograms["t.op.run"].Exemplars; len(ex) != 1 {
		t.Errorf("snapshot exemplars = %+v, want 1", ex)
	}
}

// StartOpTrace continues a caller-supplied trace identity — the header
// round-trip behind starserve's X-Star-Trace — and falls back to a
// fresh id on a zero trace.
func TestStartOpTrace(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(16)
	reg.SetSink(rec)

	want := TraceID(0xdeadbeefcafe1234)
	op := reg.StartOpTrace("t.op.cont", want)
	if op.Trace() != want {
		t.Fatalf("op trace = %v, want %v", op.Trace(), want)
	}
	child := op.Span("t.phase.a")
	child.End()
	op.Done()
	for _, e := range rec.Events() {
		if e.Trace != want {
			t.Errorf("%s trace = %v, want the supplied id %v", e.Name, e.Trace, want)
		}
	}

	fresh := reg.StartOpTrace("t.op.fresh", 0)
	if fresh.Trace() == 0 {
		t.Error("zero supplied trace did not fall back to a fresh id")
	}
	fresh.Done()

	var nilReg *Registry
	if nilReg.StartOpTrace("t.op.nil", want) != nil {
		t.Error("nil registry should return the nil op")
	}
}

func TestParseTraceID(t *testing.T) {
	id, err := ParseTraceID("deadbeefcafe1234")
	if err != nil || id != 0xdeadbeefcafe1234 {
		t.Errorf("ParseTraceID hex: %v err=%v", id, err)
	}
	if id, err = ParseTraceID(""); err != nil || id != 0 {
		t.Errorf("empty string: %v err=%v", id, err)
	}
	if _, err = ParseTraceID("not-hex"); err == nil {
		t.Error("malformed id accepted")
	}
	// String() output must round-trip.
	want := TraceID(42)
	got, err := ParseTraceID(want.String())
	if err != nil || got != want {
		t.Errorf("round trip: %v err=%v", got, err)
	}
}
