package slo

import (
	"strings"
	"testing"
	"time"
)

func fp(v float64) *float64 { return &v }

func sec(s float64) int64 { return int64(s * float64(time.Second)) }

func TestParseAndValidate(t *testing.T) {
	good := `{"rules": [
		{"name": "ring-floor", "kind": "threshold", "metric": "sim_ring_length",
		 "window_s": 60, "min": 100},
		{"name": "failure-rate", "kind": "rate", "metric": "sim_failures_total",
		 "window_s": 30, "max_per_s": 0.5},
		{"name": "embed-burn", "kind": "burn",
		 "good_metric": "good_total", "total_metric": "all_total",
		 "objective": 0.99, "burn_factor": 2, "short_window_s": 10, "long_window_s": 60}
	]}`
	p, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(p.Rules))
	}

	bad := map[string]string{
		"not json":         `{`,
		"no rules":         `{"rules": []}`,
		"missing name":     `{"rules": [{"kind": "threshold", "metric": "m", "window_s": 1, "max": 1}]}`,
		"duplicate name":   `{"rules": [{"name": "a", "kind": "threshold", "metric": "m", "window_s": 1, "max": 1}, {"name": "a", "kind": "threshold", "metric": "m", "window_s": 1, "max": 1}]}`,
		"unknown kind":     `{"rules": [{"name": "a", "kind": "quota", "metric": "m"}]}`,
		"no bound":         `{"rules": [{"name": "a", "kind": "threshold", "metric": "m", "window_s": 1}]}`,
		"no window":        `{"rules": [{"name": "a", "kind": "threshold", "metric": "m", "max": 1}]}`,
		"rate no bound":    `{"rules": [{"name": "a", "kind": "rate", "metric": "m", "window_s": 1}]}`,
		"burn objective":   `{"rules": [{"name": "a", "kind": "burn", "good_metric": "g", "total_metric": "t", "objective": 1.5, "burn_factor": 2, "short_window_s": 1, "long_window_s": 2}]}`,
		"burn windows":     `{"rules": [{"name": "a", "kind": "burn", "good_metric": "g", "total_metric": "t", "objective": 0.9, "burn_factor": 2, "short_window_s": 5, "long_window_s": 1}]}`,
		"burn no metrics":  `{"rules": [{"name": "a", "kind": "burn", "objective": 0.9, "burn_factor": 2, "short_window_s": 1, "long_window_s": 2}]}`,
		"burn zero factor": `{"rules": [{"name": "a", "kind": "burn", "good_metric": "g", "total_metric": "t", "objective": 0.9, "short_window_s": 1, "long_window_s": 2}]}`,
	}
	for label, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", label, doc)
		}
	}
}

func TestThresholdRule(t *testing.T) {
	p := Policy{Rules: []Rule{{
		Name: "ring-floor", Kind: "threshold",
		Metric: "ring", WindowS: 10, Min: fp(100), Max: fp(200),
	}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)

	// No data yet.
	if v := e.Evaluate(sec(0))[0]; v.State != StateNoData {
		t.Errorf("empty engine: %+v", v)
	}
	if e.EverFired() {
		t.Error("no-data counted as fired")
	}

	e.Observe(sec(1), map[string]float64{"ring": 150, "ignored": 1})
	if v := e.Evaluate(sec(1))[0]; v.State != StateOK {
		t.Errorf("in-bounds: %+v", v)
	}

	// A dip below the floor fires, with the worst value reported.
	e.Observe(sec(2), map[string]float64{"ring": 80})
	v := e.Evaluate(sec(2))[0]
	if v.State != StateFiring || v.Value != 80 {
		t.Errorf("below floor: %+v", v)
	}
	if !strings.Contains(v.Detail, "floor") {
		t.Errorf("detail %q", v.Detail)
	}
	if got := e.Firing(); len(got) != 1 || got[0] != "ring-floor" {
		t.Errorf("Firing() = %v", got)
	}

	// The violation stays in the window until it slides out...
	e.Observe(sec(5), map[string]float64{"ring": 150})
	if v := e.Evaluate(sec(5))[0]; v.State != StateFiring {
		t.Errorf("violation still in window: %+v", v)
	}
	// ...then the rule resolves, but EverFired stays sticky.
	e.Observe(sec(13), map[string]float64{"ring": 150})
	if v := e.Evaluate(sec(13))[0]; v.State != StateOK {
		t.Errorf("after window slide: %+v", v)
	}
	if len(e.Firing()) != 0 {
		t.Errorf("Firing() = %v after resolution", e.Firing())
	}
	if !e.EverFired() {
		t.Error("EverFired lost the violation")
	}

	// Ceiling violations fire too.
	e.Observe(sec(14), map[string]float64{"ring": 250})
	if v := e.Evaluate(sec(14))[0]; v.State != StateFiring || !strings.Contains(v.Detail, "limit") {
		t.Errorf("above ceiling: %+v", v)
	}
}

func TestRateRule(t *testing.T) {
	p := Policy{Rules: []Rule{{
		Name: "failure-rate", Kind: "rate",
		Metric: "fails", WindowS: 10, MaxPerS: fp(1),
	}}}
	e := NewEngine(p)

	e.Observe(sec(0), map[string]float64{"fails": 0})
	if v := e.Evaluate(sec(0))[0]; v.State != StateNoData {
		t.Errorf("single point: %+v", v)
	}
	// 5 failures over 10s = 0.5/s: within bounds.
	e.Observe(sec(10), map[string]float64{"fails": 5})
	v := e.Evaluate(sec(10))[0]
	if v.State != StateOK || v.Value != 0.5 {
		t.Errorf("0.5/s: %+v", v)
	}
	// 25 more over the next 10s = 2.5/s: fires.
	e.Observe(sec(20), map[string]float64{"fails": 30})
	if v := e.Evaluate(sec(20))[0]; v.State != StateFiring || v.Value != 2.5 {
		t.Errorf("2.5/s: %+v", v)
	}

	// A min rate catches a stalled counter.
	stall := NewEngine(Policy{Rules: []Rule{{
		Name: "progress", Kind: "rate",
		Metric: "laps", WindowS: 10, MinPerS: fp(0.1),
	}}})
	stall.Observe(sec(0), map[string]float64{"laps": 7})
	stall.Observe(sec(10), map[string]float64{"laps": 7})
	if v := stall.Evaluate(sec(10))[0]; v.State != StateFiring || v.Value != 0 {
		t.Errorf("stalled counter: %+v", v)
	}
}

func TestBurnRule(t *testing.T) {
	p := Policy{Rules: []Rule{{
		Name: "embed-burn", Kind: "burn",
		GoodMetric: "good", TotalMetric: "total",
		Objective: 0.9, BurnFactor: 2,
		ShortWindowS: 10, LongWindowS: 40,
	}}}
	e := NewEngine(p)

	// Healthy phase: 100% good, burn 0.
	e.Observe(sec(0), map[string]float64{"good": 0, "total": 0})
	e.Observe(sec(10), map[string]float64{"good": 10, "total": 10})
	e.Observe(sec(20), map[string]float64{"good": 20, "total": 20})
	if v := e.Evaluate(sec(20))[0]; v.State != StateOK || v.Value != 0 {
		t.Errorf("healthy burn: %+v", v)
	}

	// Sustained 50% bad: burn = 0.5/0.1 = 5x on both windows → fires.
	e.Observe(sec(30), map[string]float64{"good": 25, "total": 30})
	e.Observe(sec(40), map[string]float64{"good": 30, "total": 40})
	v := e.Evaluate(sec(40))[0]
	if v.State != StateFiring {
		t.Errorf("sustained burn: %+v", v)
	}

	// Recovery: the short window goes clean while the long window still
	// remembers the incident — multi-window means it must NOT fire.
	e.Observe(sec(50), map[string]float64{"good": 40, "total": 50})
	e.Observe(sec(60), map[string]float64{"good": 50, "total": 60})
	if v := e.Evaluate(sec(60))[0]; v.State != StateFiring {
		// long window: from t=20 (good 20, total 20) to t=60: Δgood=30,
		// Δtotal=40 → bad 0.25 → burn 2.5x still > 2; short window
		// (t=50..60): Δgood=10, Δtotal=10 → burn 0. Short being clean
		// holds the alert back.
		if v.State != StateOK {
			t.Errorf("recovery: %+v", v)
		}
	} else {
		t.Errorf("short-window recovery did not hold the alert back: %+v", v)
	}
	if !e.EverFired() {
		t.Error("EverFired lost the burn incident")
	}
}

// TestLabeledFamilyRules pins the bare-family matching semantics: a
// rule naming sim_embeds_total covers every sim_embeds_total{...}
// series — thresholds must hold on each label set, rates sum the
// per-series deltas — while a rule pinning a label clause stays scoped
// to that one series.
func TestLabeledFamilyRules(t *testing.T) {
	p := Policy{Rules: []Rule{
		{Name: "ring-floor", Kind: "threshold",
			Metric: "ring", WindowS: 10, Min: fp(100)},
		{Name: "fleet-rate", Kind: "rate",
			Metric: "embeds", WindowS: 10, MaxPerS: fp(1)},
		{Name: "m1-only", Kind: "threshold",
			Metric: `ring{machine="m1"}`, WindowS: 10, Min: fp(100)},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)

	e.Observe(sec(0), map[string]float64{
		`ring{machine="m0"}`: 120, `ring{machine="m1"}`: 118,
		`embeds{machine="m0"}`: 0, `embeds{machine="m1"}`: 0,
	})
	e.Observe(sec(10), map[string]float64{
		`ring{machine="m0"}`: 80, `ring{machine="m1"}`: 118,
		`embeds{machine="m0"}`: 4, `embeds{machine="m1"}`: 8,
	})

	vs := e.Evaluate(sec(10))
	// m0's dip violates the family floor...
	if vs[0].State != StateFiring || vs[0].Value != 80 {
		t.Errorf("family floor: %+v", vs[0])
	}
	// ...and the family rate is the per-series sum: (4+8)/10s = 1.2/s.
	if vs[1].State != StateFiring || vs[1].Value != 1.2 {
		t.Errorf("family rate: %+v", vs[1])
	}
	// The pinned-series rule only sees m1, which stayed healthy.
	if vs[2].State != StateOK {
		t.Errorf("pinned series: %+v", vs[2])
	}
}

func TestObservePrunes(t *testing.T) {
	p := Policy{Rules: []Rule{{
		Name: "w", Kind: "threshold", Metric: "m", WindowS: 10, Max: fp(1),
	}}}
	e := NewEngine(p)
	for i := 0; i < 100; i++ {
		e.Observe(sec(float64(i)), map[string]float64{"m": 0})
	}
	// Horizon is 10s; one pre-horizon point is kept for delta baselines.
	if n := len(e.hist["m"]); n > 13 {
		t.Errorf("history grew to %d points despite a 10s window", n)
	}
	if v := e.Evaluate(sec(99))[0]; v.State != StateOK {
		t.Errorf("pruned engine: %+v", v)
	}
}
