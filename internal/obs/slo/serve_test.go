package slo

import (
	"strings"
	"testing"
)

// These tests pin the SLO semantics the committed serve policy
// (scripts/slo-serve.json) relies on: rules naming a bare serve.*
// family must cover every {route=...} labeled series the server
// exports — thresholds on each series, rates and burn ratios over the
// per-series sums — without matching the _sum/_count companions, and
// the 429 load-shed path must move both the error-rate and the
// availability-burn rules.

// TestServeLatencyThresholdAcrossRoutes: a bare serve_latency rule
// watches every {quantile,route} series of the exported summary; one
// route's p95 spike fires the family rule, and the summary's _sum
// companion (a monotonically huge counter) must not be mistaken for a
// member of the family.
func TestServeLatencyThresholdAcrossRoutes(t *testing.T) {
	p := Policy{Rules: []Rule{{
		Name: "latency-p95", Kind: "threshold",
		Metric: "serve_latency", WindowS: 60, Max: fp(5.0),
	}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)

	healthy := map[string]float64{
		`serve_latency{quantile="0.5",route="embed"}`:  0.002,
		`serve_latency{quantile="0.95",route="embed"}`: 0.008,
		`serve_latency{quantile="0.5",route="repair"}`: 0.001,
		`serve_latency{quantile="0.95",route="ring"}`:  0.004,
		// The summary companions ride the same exposition; seconds summed
		// over the run dwarf any per-request quantile.
		`serve_latency_sum{route="embed"}`:   940.0,
		`serve_latency_count{route="embed"}`: 12000,
	}
	e.Observe(sec(0), healthy)
	if v := e.Evaluate(sec(0))[0]; v.State != StateOK {
		t.Fatalf("healthy quantiles (with huge _sum present): %+v", v)
	}

	// One route degrades past the 5s ceiling.
	spiked := map[string]float64{}
	for k, v := range healthy {
		spiked[k] = v
	}
	spiked[`serve_latency{quantile="0.95",route="repair"}`] = 7.5
	e.Observe(sec(10), spiked)
	v := e.Evaluate(sec(10))[0]
	if v.State != StateFiring || v.Value != 7.5 {
		t.Fatalf("spiked repair p95: %+v", v)
	}
	if !strings.Contains(v.Detail, "limit") {
		t.Errorf("detail %q", v.Detail)
	}
}

// TestServeShedRateRule: the shed path produces 429-coded
// serve_errors_total series; a bare-family rate rule sums them with
// the 5xx series, while a rule pinning the 429 clause isolates
// shedding from real failures.
func TestServeShedRateRule(t *testing.T) {
	p := Policy{Rules: []Rule{
		{Name: "error-rate", Kind: "rate",
			Metric: "serve_errors_total", WindowS: 10, MaxPerS: fp(5)},
		{Name: "shed-rate", Kind: "rate",
			Metric: `serve_errors_total{code="429",route="embed"}`, WindowS: 10, MaxPerS: fp(3)},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)

	e.Observe(sec(0), map[string]float64{
		`serve_errors_total{code="429",route="embed"}`:  0,
		`serve_errors_total{code="429",route="repair"}`: 0,
		`serve_errors_total{code="500",route="chaos"}`:  0,
	})
	// Gentle traffic: 20 errors over 10s across all series = 2/s.
	e.Observe(sec(10), map[string]float64{
		`serve_errors_total{code="429",route="embed"}`:  10,
		`serve_errors_total{code="429",route="repair"}`: 5,
		`serve_errors_total{code="500",route="chaos"}`:  5,
	})
	vs := e.Evaluate(sec(10))
	if vs[0].State != StateOK || vs[0].Value != 2.0 {
		t.Fatalf("family rate sums per-series deltas: %+v", vs[0])
	}
	if vs[1].State != StateOK || vs[1].Value != 1.0 {
		t.Fatalf("pinned 429 clause: %+v", vs[1])
	}

	// An overload storm: the admission limit trips and /embed sheds
	// 60 requests in 10s.
	e.Observe(sec(20), map[string]float64{
		`serve_errors_total{code="429",route="embed"}`:  70,
		`serve_errors_total{code="429",route="repair"}`: 5,
		`serve_errors_total{code="500",route="chaos"}`:  6,
	})
	vs = e.Evaluate(sec(20))
	if vs[0].State != StateFiring || vs[0].Value != 6.1 {
		t.Fatalf("storm family rate: %+v", vs[0])
	}
	if vs[1].State != StateFiring || vs[1].Value != 6.0 {
		t.Fatalf("storm pinned 429 rate: %+v", vs[1])
	}
	if !e.EverFired() {
		t.Error("storm not sticky")
	}
}

// TestServeAvailabilityBurnUnderShed: shed requests count into
// serve_requests_total but never into serve_good_total, so a 429
// storm burns the availability budget. Both burn windows must see the
// storm before the rule fires, and the per-route label sets must be
// summed on both sides of the ratio.
func TestServeAvailabilityBurnUnderShed(t *testing.T) {
	p := Policy{Rules: []Rule{{
		Name: "availability-burn", Kind: "burn",
		GoodMetric: "serve_good_total", TotalMetric: "serve_requests_total",
		Objective: 0.9, BurnFactor: 2,
		ShortWindowS: 10, LongWindowS: 40,
	}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)

	obsAt := func(s float64, goodEmbed, goodRepair, reqEmbed, reqRepair float64) {
		e.Observe(sec(s), map[string]float64{
			`serve_good_total{route="embed"}`:                       goodEmbed,
			`serve_good_total{route="repair"}`:                      goodRepair,
			`serve_requests_total{code="200",n="6",route="embed"}`:  goodEmbed,
			`serve_requests_total{code="429",n="0",route="embed"}`:  reqEmbed - goodEmbed,
			`serve_requests_total{code="200",n="6",route="repair"}`: goodRepair,
			`serve_requests_total{code="429",n="0",route="repair"}`: reqRepair - goodRepair,
		})
	}

	// Healthy: everything admitted, burn 0.
	obsAt(0, 0, 0, 0, 0)
	obsAt(10, 20, 40, 20, 40)
	obsAt(20, 40, 80, 40, 80)
	if v := e.Evaluate(sec(20))[0]; v.State != StateOK || v.Value != 0 {
		t.Fatalf("healthy burn: %+v", v)
	}

	// Overload: from t=20 on, ~87% of requests shed (the drill's
	// max-inflight=1 regime). Bad ratio 0.875 over objective slack 0.1
	// is an 8.75x burn on both windows — far over factor 2.
	obsAt(30, 45, 90, 80, 160)
	obsAt(40, 50, 100, 120, 240)
	v := e.Evaluate(sec(40))[0]
	if v.State != StateFiring {
		t.Fatalf("shed storm burn: %+v", v)
	}
	if v.Value < 2 {
		t.Fatalf("burn value %v, want > factor 2", v.Value)
	}

	// NoData (a scrape gap) must not fire the burn rule.
	gap := NewEngine(p)
	if v := gap.Evaluate(sec(0))[0]; v.State != StateNoData {
		t.Fatalf("empty burn engine: %+v", v)
	}
}
