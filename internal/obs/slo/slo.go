// Package slo turns telemetry curves into pass/fail ops verdicts. A
// Policy is a small declarative rule file (JSON) over metric series —
// quantile/value thresholds and counter rates evaluated over a sliding
// window, plus multi-window burn-rate alerts over an error budget —
// and an Engine evaluates it against any stream of timestamped
// samples: live /metrics scrapes (starmon -watch -attach), a replayed
// export.SeriesDump, or hand-fed points in tests.
//
// Rules address metrics by the sample names the feeder provides:
// exposition names for live scrapes (sim_embeds_total{machine="m0"},
// core_phase_route{quantile="0.95"}), series names for replayed dumps
// (core.phase.route.p95_ns{machine="m0"}). Values are likewise in the
// feeder's units — seconds on /metrics summary quantiles, nanoseconds
// in sampler series — so thresholds are written for the source being
// watched. A rule metric with no label clause also matches every
// labeled series of that family (name{...}): thresholds must hold on
// each label set, rates and burns sum the per-series deltas — the same
// rollup semantics as export.Aggregate — so one rule covers a whole
// fleet of machine="m<i>" children.
//
// Like the rest of the obs stack it is stdlib-only and deterministic:
// the Engine has no clock of its own, every evaluation happens at a
// caller-supplied instant.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Rule is one SLO clause. Kind selects which fields apply:
//
//   - "threshold": over the trailing Window, every sample of Metric
//     must stay <= Max (if set) and >= Min (if set).
//   - "rate": the per-second increase of the (counter) Metric over the
//     trailing Window must stay <= MaxPerS (if set) and >= MinPerS (if
//     set).
//   - "burn": classic multi-window burn-rate. GoodMetric/TotalMetric
//     are cumulative counters; the bad ratio 1-Δgood/Δtotal, divided
//     by the error budget 1-Objective, is the burn rate. The rule
//     fires only when burn exceeds BurnFactor over BOTH the short and
//     the long window — the long window filters blips, the short one
//     proves the burn is still happening.
type Rule struct {
	Name string `json:"name"`
	Kind string `json:"kind"`

	// threshold + rate
	Metric  string   `json:"metric,omitempty"`
	WindowS float64  `json:"window_s,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	Min     *float64 `json:"min,omitempty"`
	MaxPerS *float64 `json:"max_per_s,omitempty"`
	MinPerS *float64 `json:"min_per_s,omitempty"`

	// burn
	GoodMetric   string  `json:"good_metric,omitempty"`
	TotalMetric  string  `json:"total_metric,omitempty"`
	Objective    float64 `json:"objective,omitempty"`
	BurnFactor   float64 `json:"burn_factor,omitempty"`
	ShortWindowS float64 `json:"short_window_s,omitempty"`
	LongWindowS  float64 `json:"long_window_s,omitempty"`
}

// Policy is a parsed rule file.
type Policy struct {
	Rules []Rule `json:"rules"`
}

// Parse decodes and validates a policy document.
func Parse(data []byte) (Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return Policy{}, fmt.Errorf("slo: parse policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// ParseFile reads and parses a policy file.
func ParseFile(path string) (Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Policy{}, err
	}
	return Parse(data)
}

// Validate checks the policy's structural invariants: at least one
// rule, unique nonempty names, known kinds, and each kind's required
// fields.
func (p Policy) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("slo: policy has no rules")
	}
	seen := map[string]bool{}
	for i, r := range p.Rules {
		where := fmt.Sprintf("slo: rule %d (%q)", i, r.Name)
		if r.Name == "" {
			return fmt.Errorf("slo: rule %d: missing name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("%s: duplicate name", where)
		}
		seen[r.Name] = true
		switch r.Kind {
		case "threshold":
			if r.Metric == "" {
				return fmt.Errorf("%s: threshold needs metric", where)
			}
			if r.WindowS <= 0 {
				return fmt.Errorf("%s: threshold needs window_s > 0", where)
			}
			if r.Max == nil && r.Min == nil {
				return fmt.Errorf("%s: threshold needs max and/or min", where)
			}
		case "rate":
			if r.Metric == "" {
				return fmt.Errorf("%s: rate needs metric", where)
			}
			if r.WindowS <= 0 {
				return fmt.Errorf("%s: rate needs window_s > 0", where)
			}
			if r.MaxPerS == nil && r.MinPerS == nil {
				return fmt.Errorf("%s: rate needs max_per_s and/or min_per_s", where)
			}
		case "burn":
			if r.GoodMetric == "" || r.TotalMetric == "" {
				return fmt.Errorf("%s: burn needs good_metric and total_metric", where)
			}
			if r.Objective <= 0 || r.Objective >= 1 {
				return fmt.Errorf("%s: burn needs 0 < objective < 1", where)
			}
			if r.BurnFactor <= 0 {
				return fmt.Errorf("%s: burn needs burn_factor > 0", where)
			}
			if r.ShortWindowS <= 0 || r.LongWindowS < r.ShortWindowS {
				return fmt.Errorf("%s: burn needs 0 < short_window_s <= long_window_s", where)
			}
		default:
			return fmt.Errorf("%s: unknown kind %q (want threshold|rate|burn)", where, r.Kind)
		}
	}
	return nil
}

// metrics returns the metric names a rule reads.
func (r Rule) metrics() []string {
	if r.Kind == "burn" {
		return []string{r.GoodMetric, r.TotalMetric}
	}
	return []string{r.Metric}
}

// windowNS returns the rule's longest lookback in nanoseconds.
func (r Rule) windowNS() int64 {
	w := r.WindowS
	if r.Kind == "burn" {
		w = r.LongWindowS
	}
	return int64(w * float64(time.Second))
}

// State is a rule's evaluation outcome.
type State int

const (
	// StateNoData: the window holds too few samples to judge.
	StateNoData State = iota
	// StateOK: the rule's condition holds.
	StateOK
	// StateFiring: the rule's condition is violated.
	StateFiring
)

// String implements fmt.Stringer ("no_data", "ok", "firing").
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateFiring:
		return "firing"
	}
	return "no_data"
}

// Verdict is one rule's state at one evaluation instant.
type Verdict struct {
	Rule   string
	State  State
	Value  float64 // the measured quantity the rule compared
	Detail string  // human-readable explanation
}

// point is one observed sample of one metric.
type point struct {
	t int64
	v float64
}

// Engine evaluates one Policy against a stream of samples. Feed it
// with Observe (all metrics of one instant at once), then call
// Evaluate at any instant for the per-rule verdicts. Firing state is
// sticky through EverFired, which is what the starmon -watch exit code
// reports: an SLO violated mid-run stays a failure even if the curve
// recovers before the last frame.
type Engine struct {
	policy  Policy
	watched map[string]bool    // metrics any rule reads
	hist    map[string][]point // per-metric window history, pruned
	maxWin  int64              // longest rule lookback
	firing  map[string]bool    // rule name → currently firing
	ever    map[string]bool    // rule name → fired at least once
}

// NewEngine builds an engine over a validated policy.
func NewEngine(p Policy) *Engine {
	e := &Engine{
		policy:  p,
		watched: map[string]bool{},
		hist:    map[string][]point{},
		firing:  map[string]bool{},
		ever:    map[string]bool{},
	}
	for _, r := range p.Rules {
		for _, m := range r.metrics() {
			e.watched[m] = true
		}
		if w := r.windowNS(); w > e.maxWin {
			e.maxWin = w
		}
	}
	return e
}

// watches reports whether some rule reads a sample name — exactly, or
// as one labeled series of a bare-family rule metric.
func (e *Engine) watches(name string) bool {
	if e.watched[name] {
		return true
	}
	if i := strings.IndexByte(name, '{'); i > 0 {
		return e.watched[name[:i]]
	}
	return false
}

// Observe records the samples of one instant. Only metrics some rule
// reads are retained; history older than the longest rule window is
// pruned (keeping one point beyond the horizon so window-edge deltas
// still resolve).
func (e *Engine) Observe(tUnixNS int64, samples map[string]float64) {
	for name, v := range samples {
		if !e.watches(name) {
			continue
		}
		h := append(e.hist[name], point{t: tUnixNS, v: v})
		horizon := tUnixNS - e.maxWin
		cut := 0
		for cut < len(h)-1 && h[cut+1].t <= horizon {
			cut++
		}
		e.hist[name] = h[cut:]
	}
}

// seriesFor resolves a rule metric to the history series it covers:
// itself, plus — when it names a bare family — every labeled series
// name{...} observed so far. A rule that pins a label clause matches
// only that exact series.
func (e *Engine) seriesFor(metric string) []string {
	names := []string{metric}
	if strings.IndexByte(metric, '{') >= 0 {
		return names
	}
	prefix := metric + "{"
	for name := range e.hist {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// window returns the points of metric within [now-winNS, now], plus
// the last point before the window (ok for delta baselines), if any.
func (e *Engine) window(metric string, now, winNS int64) (in []point, before *point) {
	h := e.hist[metric]
	lo := now - winNS
	for i := range h {
		if h[i].t < lo {
			before = &h[i]
			continue
		}
		if h[i].t <= now {
			in = append(in, h[i])
		}
	}
	return in, before
}

// Evaluate judges every rule at the given instant, in policy order,
// and updates the engine's firing/ever state.
func (e *Engine) Evaluate(nowUnixNS int64) []Verdict {
	out := make([]Verdict, 0, len(e.policy.Rules))
	for _, r := range e.policy.Rules {
		var v Verdict
		switch r.Kind {
		case "threshold":
			v = e.evalThreshold(r, nowUnixNS)
		case "rate":
			v = e.evalRate(r, nowUnixNS)
		default:
			v = e.evalBurn(r, nowUnixNS)
		}
		v.Rule = r.Name
		e.firing[r.Name] = v.State == StateFiring
		if v.State == StateFiring {
			e.ever[r.Name] = true
		}
		out = append(out, v)
	}
	return out
}

func (e *Engine) evalThreshold(r Rule, now int64) Verdict {
	// Bounds must hold on every series the metric covers, so the
	// extrema run over the union of all matching label sets.
	var in []point
	for _, s := range e.seriesFor(r.Metric) {
		w, _ := e.window(s, now, r.windowNS())
		in = append(in, w...)
	}
	if len(in) == 0 {
		return Verdict{State: StateNoData, Detail: fmt.Sprintf("%s: no samples in window", r.Metric)}
	}
	worstHi, worstLo := in[0].v, in[0].v
	for _, p := range in[1:] {
		if p.v > worstHi {
			worstHi = p.v
		}
		if p.v < worstLo {
			worstLo = p.v
		}
	}
	if r.Max != nil && worstHi > *r.Max {
		return Verdict{State: StateFiring, Value: worstHi,
			Detail: fmt.Sprintf("%s max %g > limit %g over %gs", r.Metric, worstHi, *r.Max, r.WindowS)}
	}
	if r.Min != nil && worstLo < *r.Min {
		return Verdict{State: StateFiring, Value: worstLo,
			Detail: fmt.Sprintf("%s min %g < floor %g over %gs", r.Metric, worstLo, *r.Min, r.WindowS)}
	}
	val := worstHi
	if r.Max == nil {
		val = worstLo
	}
	return Verdict{State: StateOK, Value: val,
		Detail: fmt.Sprintf("%s within bounds over %gs", r.Metric, r.WindowS)}
}

// delta returns the increase of a cumulative metric over the window
// ending at now, and the time span it covers; ok is false when the
// window cannot produce a delta (fewer than two usable points). A
// bare-family metric sums the per-series deltas over the widest
// per-series span — the Aggregate counter rollup, as a rate.
func (e *Engine) delta(metric string, now, winNS int64) (d float64, spanNS int64, ok bool) {
	for _, s := range e.seriesFor(metric) {
		sd, ss, sok := e.seriesDelta(s, now, winNS)
		if !sok {
			continue
		}
		d += sd
		if ss > spanNS {
			spanNS = ss
		}
		ok = true
	}
	return d, spanNS, ok
}

// seriesDelta computes one series' increase over the window.
func (e *Engine) seriesDelta(metric string, now, winNS int64) (d float64, spanNS int64, ok bool) {
	in, before := e.window(metric, now, winNS)
	if before != nil {
		in = append([]point{*before}, in...)
	}
	if len(in) < 2 {
		return 0, 0, false
	}
	first, last := in[0], in[len(in)-1]
	if last.t <= first.t {
		return 0, 0, false
	}
	return last.v - first.v, last.t - first.t, true
}

func (e *Engine) evalRate(r Rule, now int64) Verdict {
	d, span, ok := e.delta(r.Metric, now, r.windowNS())
	if !ok {
		return Verdict{State: StateNoData, Detail: fmt.Sprintf("%s: not enough samples for a rate", r.Metric)}
	}
	rate := d / (float64(span) / float64(time.Second))
	if r.MaxPerS != nil && rate > *r.MaxPerS {
		return Verdict{State: StateFiring, Value: rate,
			Detail: fmt.Sprintf("%s rate %.3g/s > limit %g/s over %gs", r.Metric, rate, *r.MaxPerS, r.WindowS)}
	}
	if r.MinPerS != nil && rate < *r.MinPerS {
		return Verdict{State: StateFiring, Value: rate,
			Detail: fmt.Sprintf("%s rate %.3g/s < floor %g/s over %gs", r.Metric, rate, *r.MinPerS, r.WindowS)}
	}
	return Verdict{State: StateOK, Value: rate,
		Detail: fmt.Sprintf("%s rate %.3g/s within bounds over %gs", r.Metric, rate, r.WindowS)}
}

// burnOver computes the burn rate over one window: the bad fraction of
// Δtotal, divided by the error budget.
func (e *Engine) burnOver(r Rule, now, winNS int64) (burn float64, ok bool) {
	dGood, _, okG := e.delta(r.GoodMetric, now, winNS)
	dTotal, _, okT := e.delta(r.TotalMetric, now, winNS)
	if !okG || !okT || dTotal <= 0 {
		return 0, false
	}
	bad := 1 - dGood/dTotal
	if bad < 0 {
		bad = 0
	}
	return bad / (1 - r.Objective), true
}

func (e *Engine) evalBurn(r Rule, now int64) Verdict {
	short := int64(r.ShortWindowS * float64(time.Second))
	long := int64(r.LongWindowS * float64(time.Second))
	bShort, okS := e.burnOver(r, now, short)
	bLong, okL := e.burnOver(r, now, long)
	if !okS || !okL {
		return Verdict{State: StateNoData,
			Detail: fmt.Sprintf("%s/%s: not enough samples for burn windows", r.GoodMetric, r.TotalMetric)}
	}
	if bShort > r.BurnFactor && bLong > r.BurnFactor {
		return Verdict{State: StateFiring, Value: bLong,
			Detail: fmt.Sprintf("burn %.2fx (short %.2fx) > %gx budget of %g objective",
				bLong, bShort, r.BurnFactor, r.Objective)}
	}
	return Verdict{State: StateOK, Value: bLong,
		Detail: fmt.Sprintf("burn %.2fx (short %.2fx) within %gx", bLong, bShort, r.BurnFactor)}
}

// Firing returns the names of currently firing rules, sorted.
func (e *Engine) Firing() []string {
	var out []string
	for name, f := range e.firing {
		if f {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// EverFired reports whether any rule fired at any evaluation — the
// sticky verdict behind starmon -watch's exit code.
func (e *Engine) EverFired() bool {
	for _, f := range e.ever {
		if f {
			return true
		}
	}
	return false
}
