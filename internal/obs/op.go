package obs

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one operation (an embed, a repair, a simulator
// step) across every span and event it produces. Zero means "untraced":
// telemetry emitted outside any operation context.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// String renders the id as 16 lowercase hex digits, the wire form used
// in NDJSON records, OpenMetrics exemplars and Perfetto args.
func (t TraceID) String() string { return idHex(uint64(t)) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return idHex(uint64(s)) }

func idHex(v uint64) string {
	var buf [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}

func idFromHex(data []byte) (uint64, error) {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	if s == "" || s == "null" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace/span id %q: %w", s, err)
	}
	return v, nil
}

// ParseTraceID parses the 16-hex-digit wire form of a trace id (the
// X-Star-Trace header, NDJSON records, exposition exemplars). An empty
// string parses to the zero (untraced) id; malformed input returns an
// error and the zero id, so callers can fall back to a fresh trace.
func ParseTraceID(s string) (TraceID, error) {
	v, err := idFromHex([]byte(s))
	if err != nil {
		return 0, err
	}
	return TraceID(v), nil
}

// MarshalJSON writes the id as a quoted hex string, so NDJSON consumers
// never lose precision to float64 rounding.
func (t TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + idHex(uint64(t)) + `"`), nil
}

// UnmarshalJSON reads a quoted (or bare) hex id.
func (t *TraceID) UnmarshalJSON(data []byte) error {
	v, err := idFromHex(data)
	*t = TraceID(v)
	return err
}

// MarshalJSON writes the id as a quoted hex string.
func (s SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + idHex(uint64(s)) + `"`), nil
}

// UnmarshalJSON reads a quoted (or bare) hex id.
func (s *SpanID) UnmarshalJSON(data []byte) error {
	v, err := idFromHex(data)
	*s = SpanID(v)
	return err
}

// idState seeds the process-wide id sequence. Ids must be unique within
// a process and stable across runs with the same call sequence (the
// simulator's determinism guarantee); a scrambled counter gives both
// without consulting the wall clock or math/rand.
var idState uint64

// nextID returns the next nonzero id: a splitmix64 step over an atomic
// counter, so concurrent callers never collide and ids are spread over
// the full 64-bit space rather than clustering near zero.
func nextID() uint64 {
	x := atomic.AddUint64(&idState, 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

// Op is one traced operation: a root span plus the trace identity that
// child spans and event-log records inherit. Ops are created by
// Registry.StartOp and threaded explicitly (an *Op parameter) through
// the layers an operation crosses — embedder, router workers,
// simulator — so causality needs no context.Context plumbing.
//
// A nil *Op is the disabled operation: every method is a no-op or
// returns a zero value, so call sites never branch.
type Op struct {
	r    *Registry
	root Span
}

// StartOp opens a traced operation: a fresh TraceID and a root span
// named name (its duration lands in the histogram of the same name,
// like any span). The caller must end it with Done or Fail. On a nil
// registry StartOp returns nil, the disabled operation.
func (r *Registry) StartOp(name string) *Op {
	return r.StartOpTrace(name, 0)
}

// StartOpTrace is StartOp under a caller-supplied trace identity — the
// continuation of a trace that began outside this process, such as an
// X-Star-Trace request header or a parent job id. Every span and
// event-log record of the operation carries the given trace id, so a
// client-reported id reconstructs the server-side timeline end to end.
// A zero trace falls back to a fresh id, making StartOpTrace(name, 0)
// identical to StartOp(name).
func (r *Registry) StartOpTrace(name string, trace TraceID) *Op {
	if r == nil {
		return nil
	}
	if trace == 0 {
		trace = TraceID(nextID())
	}
	op := &Op{r: r}
	op.root = r.span(name, trace, SpanID(nextID()), 0)
	return op
}

// Trace returns the operation's trace id (zero for a nil Op).
func (o *Op) Trace() TraceID {
	if o == nil {
		return 0
	}
	return o.root.trace
}

// SpanID returns the root span's id (zero for a nil Op).
func (o *Op) SpanID() SpanID {
	if o == nil {
		return 0
	}
	return o.root.id
}

// Span starts a child of the operation's root span. The child carries
// the operation's trace id and the root as its parent; grandchildren
// come from Span.Span on the returned value.
func (o *Op) Span(name string) Span {
	if o == nil {
		return Span{}
	}
	return o.root.Span(name)
}

// Log writes one event-log record stamped with the operation's trace
// and root span ids. With no event log attached (or a nil Op) it is a
// no-op; guard expensive field construction with Enabled.
func (o *Op) Log(level Level, event string, fields ...Field) {
	if o == nil {
		return
	}
	o.r.EventLog().log(o.root.trace, o.root.id, level, event, fields...)
}

// Enabled reports whether Log at level would write anything.
func (o *Op) Enabled(level Level) bool {
	return o != nil && o.r.EventLog().Enabled(level)
}

// Done ends the operation's root span and returns its duration. Exactly
// one of Done or Fail must be called, by the layer that created the Op.
func (o *Op) Done() time.Duration {
	if o == nil {
		return 0
	}
	return o.root.End()
}

// Fail ends the operation's root span and reports err to the flight
// recorder (which logs obs.flight.error and, when armed, dumps the
// post-mortem bundle). source names the failing subsystem
// ("core.embed", "core.repair", ...).
func (o *Op) Fail(source string, err error) {
	if o == nil {
		return
	}
	o.root.End()
	o.r.Flight().NoteError(o.root.trace, o.root.id, source, err)
}
