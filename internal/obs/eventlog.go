package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Level orders structured events by severity. The zero value is
// LevelDebug, the chattiest.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer ("debug", "info", "warn", "error").
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("Level(%d)", int8(l))
}

// ParseLevel inverts Level.String.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown level %q (want debug|info|warn|error)", s)
}

// Field is one key/value attribute of a structured event.
type Field struct {
	K string
	V interface{}
}

// F builds a Field; sugar for event call sites.
func F(k string, v interface{}) Field { return Field{K: k, V: v} }

// Record is one event-log line, as written and as re-read by ReadLog.
// Fields is nil when the event carried none. Trace/Span carry the
// emitting operation's identity (see Registry.StartOp) and are omitted
// for events logged outside any operation.
type Record struct {
	T      int64                  `json:"t_unix_ns"`
	Level  string                 `json:"level"`
	Event  string                 `json:"event"`
	Trace  TraceID                `json:"trace_id,omitempty"`
	Span   SpanID                 `json:"span_id,omitempty"`
	Fields map[string]interface{} `json:"fields,omitempty"`
}

// EventLog writes leveled structured events as NDJSON — one JSON object
// per line — to an io.Writer. It is the narrative counterpart of the
// registry's metrics: fault injections, repair outcomes and campaign
// milestones land here with their attributes, for replay by
// cmd/starmon or any line-oriented JSON tool.
//
// A nil *EventLog discards everything at the cost of a pointer test, so
// instrumented code logs unconditionally; guard chatty sites (per-hop
// token moves) with Enabled to skip field construction too. Writes are
// serialized by an internal mutex; timestamps come from the injected
// Clock.
//
// With returns a derived log carrying bound fields — stamped into
// every record it writes — that shares the parent's writer, mutex and
// flight tee. Registry.Child uses it to stamp tenant identity
// (machine="m3") into a shared NDJSON stream without interleaving.
type EventLog struct {
	core  *logCore
	min   Level
	clock Clock
	bound []Field // stamped into every record; With-bound copies append here
}

// logCore is the shared write half of an EventLog: one writer, one
// mutex, one flight tee, shared by the root log and every With-bound
// copy so lines never interleave and the black box sees everything.
type logCore struct {
	mu     sync.Mutex
	w      io.Writer
	flight *FlightRecorder // tee: every written record also lands in the black box
}

// NewEventLog returns a log writing events at or above min to w on
// clock (nil means Wall).
func NewEventLog(w io.Writer, min Level, clock Clock) *EventLog {
	if clock == nil {
		clock = Wall
	}
	return &EventLog{core: &logCore{w: w}, min: min, clock: clock}
}

// With returns a log that stamps the given fields into every record,
// sharing the receiver's writer, level, clock and flight tee. Bound
// fields are merged before per-call fields, so a call-site field wins
// a key collision. With no fields it returns the receiver; on a nil
// log it returns nil.
func (l *EventLog) With(fields ...Field) *EventLog {
	if l == nil || len(fields) == 0 {
		return l
	}
	bound := make([]Field, 0, len(l.bound)+len(fields))
	bound = append(bound, l.bound...)
	bound = append(bound, fields...)
	return &EventLog{core: l.core, min: l.min, clock: l.clock, bound: bound}
}

// Enabled reports whether an event at level would be written. Call
// sites that build fields for high-volume debug events use this to skip
// the work entirely.
func (l *EventLog) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Log writes one event outside any operation context. Marshal failures
// (an unserializable field value) are swallowed after replacing the
// fields with an error note — the log is diagnostic output and must
// never fail the run it observes. Events belonging to an operation go
// through Op.Log, which stamps the trace identity.
func (l *EventLog) Log(level Level, event string, fields ...Field) {
	l.log(0, 0, level, event, fields...)
}

// log is the common write path behind Log and Op.Log. The marshaled
// line and its newline go to the writer as a single Write, so records
// from concurrent writers (or an io.Writer shared with other output)
// never interleave mid-line.
func (l *EventLog) log(trace TraceID, span SpanID, level Level, event string, fields ...Field) {
	if !l.Enabled(level) {
		return
	}
	rec := Record{
		T:     l.clock.Now().UnixNano(),
		Level: level.String(),
		Event: event,
		Trace: trace,
		Span:  span,
	}
	if len(l.bound)+len(fields) > 0 {
		rec.Fields = make(map[string]interface{}, len(l.bound)+len(fields))
		for _, f := range l.bound {
			rec.Fields[f.K] = f.V
		}
		for _, f := range fields {
			rec.Fields[f.K] = f.V
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		rec.Fields = map[string]interface{}{"obs_marshal_error": err.Error()}
		line, _ = json.Marshal(rec)
	}
	line = append(line, '\n')
	c := l.core
	c.mu.Lock()
	fl := c.flight
	_, _ = c.w.Write(line)
	c.mu.Unlock()
	if fl != nil {
		fl.noteRecord(rec)
	}
}

// setFlight installs the black-box tee (Registry.SetFlight and
// SetEventLog wire it; nil detaches). The tee lives on the shared
// core, so With-bound copies inherit it in both directions.
func (l *EventLog) setFlight(f *FlightRecorder) {
	if l == nil {
		return
	}
	l.core.mu.Lock()
	l.core.flight = f
	l.core.mu.Unlock()
}

// ReadLog parses an NDJSON event stream back into records, skipping
// blank lines. A malformed line fails the whole read with its line
// number — replay tooling should not silently drop evidence.
func ReadLog(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("obs: event log line %d: %w", lineno, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: event log: %w", err)
	}
	return out, nil
}
