// Package obs is the repository's zero-dependency observability layer:
// atomic counters and gauges, log-bucketed timing histograms with
// p50/p95/max, span-style phase tracing with a pluggable event sink,
// and an injectable clock. It exists so the embedding pipeline — an
// O(n!) construction whose junction backtracks, S4 cache behavior and
// worker-pool utilization are otherwise invisible — can be measured
// without perturbing it.
//
// Every API is nil-safe: methods on a nil *Registry, *Counter, *Gauge
// or *Histogram, and End on a zero Span, are no-ops costing a pointer
// test and a return. Instrumented hot paths therefore carry no
// configuration branches of their own; they call through unconditionally
// and pay a few nanoseconds when observation is disabled (verified by
// BenchmarkObsDisabled in internal/core and the benchmarks here).
//
// Metric names are dotted paths ("core.phase.route",
// "core.s4.cache_hits"); the glossary lives in the README's
// Observability section. Snapshots serialize to JSON via WriteJSON and
// publish live through expvar (PublishExpvar, StartDebugServer).
package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter discards all operations.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil *Gauge discards all operations.
type Gauge struct {
	v int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// Registry names and owns a set of metrics. Metrics are created lazily
// on first access and live for the registry's lifetime; accessors on a
// nil *Registry return nil metrics, so a single optional *Registry
// switches a whole subsystem's instrumentation on or off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cvecs    map[string]*CounterVec
	gvecs    map[string]*GaugeVec
	hvecs    map[string]*HistogramVec
	fams     []*family // every family, in creation order (append-only)
	children map[string]*Registry
	kidList  []*Registry       // every child, in creation order (append-only)
	encCache map[string]string // plain-metric name → EncodeName(name, labels)
	labels   Labels            // full label set: ancestors' labels merged with own
	own      Labels            // labels added relative to the parent registry
	maxCard  int               // per-family label cardinality cap (0 = default)
	clock    Clock
	sink     Sink
	events   *EventLog
	flight   *FlightRecorder
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry { return &Registry{clock: Wall} }

// Child returns the child registry carrying the given additional
// labels (alternating key/value pairs), creating it on first use —
// calls with the same label set return the same child, so fleet
// aggregation can re-find a machine's registry by its identity. The
// child inherits the parent's clock, sink, flight recorder and
// cardinality cap; its event log is the parent's with the child labels
// bound as fields, so NDJSON records are stamped with the tenant
// identity. Child metrics surface through the parent's Visit and
// Snapshot with the child labels applied.
func (r *Registry) Child(kv ...string) *Registry {
	if r == nil {
		return nil
	}
	own := MakeLabels(kv...)
	key := own.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.children[key]
	if ok {
		return c
	}
	c = &Registry{
		labels:  r.labels.Merge(own),
		own:     own,
		maxCard: r.maxCard,
		clock:   r.clock,
		sink:    r.sink,
		flight:  r.flight,
		events:  r.events.With(labelFields(own)...),
	}
	if r.children == nil {
		r.children = make(map[string]*Registry)
	}
	r.children[key] = c
	r.kidList = append(r.kidList, c)
	return c
}

// Children returns the live child registries, sorted by label set.
func (r *Registry) Children() []*Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.children))
	for k := range r.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Registry, len(keys))
	for i, k := range keys {
		out[i] = r.children[k]
	}
	r.mu.Unlock()
	return out
}

// Labels returns the registry's full label set (ancestors merged with
// its own), nil for an unlabeled root.
func (r *Registry) Labels() Labels {
	if r == nil {
		return nil
	}
	return r.labels
}

// labelFields converts a label set into event-log fields.
func labelFields(ls Labels) []Field {
	if len(ls) == 0 {
		return nil
	}
	fs := make([]Field, len(ls))
	for i, l := range ls {
		fs[i] = Field{K: l.Key, V: l.Value}
	}
	return fs
}

// childrenLocked returns the append-only child list (the slice header
// is safe to iterate after the lock drops); callers hold r.mu.
func (r *Registry) childrenLocked() []*Registry {
	return r.kidList
}

// SetClock replaces the registry's time source (nil restores Wall) and
// propagates it to existing children. Spans started before the switch
// measure across both clocks.
func (r *Registry) SetClock(c Clock) {
	if r == nil {
		return
	}
	if c == nil {
		c = Wall
	}
	r.mu.Lock()
	r.clock = c
	kids := r.childrenLocked()
	r.mu.Unlock()
	for _, k := range kids {
		k.SetClock(c)
	}
}

// Clock returns the registry's time source; a nil registry reads Wall.
func (r *Registry) Clock() Clock {
	if r == nil {
		return Wall
	}
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	if c == nil {
		return Wall
	}
	return c
}

// SetSink installs the event sink that completed spans are emitted to
// (nil disables emission; histograms still record). Existing children
// inherit it.
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	kids := r.childrenLocked()
	r.mu.Unlock()
	for _, k := range kids {
		k.SetSink(s)
	}
}

// SetEventLog attaches the structured event log that instrumented
// subsystems reach through EventLog() (nil detaches it). An installed
// flight recorder is teed into the new log automatically; existing
// children re-bind their label fields onto the new log.
func (r *Registry) SetEventLog(l *EventLog) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = l
	fl := r.flight
	kids := r.childrenLocked()
	r.mu.Unlock()
	if fl != nil {
		l.setFlight(fl)
	}
	for _, k := range kids {
		k.SetEventLog(l.With(labelFields(k.own)...))
	}
}

// SetFlight installs the flight recorder fed by Span.End and teed into
// the attached event log (nil detaches). NewFlightRecorder calls this;
// most code never does directly. Existing children inherit it.
func (r *Registry) SetFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.flight = f
	l := r.events
	kids := r.childrenLocked()
	r.mu.Unlock()
	l.setFlight(f)
	for _, k := range kids {
		k.SetFlight(f)
	}
}

// Flight returns the installed flight recorder; nil (a no-op recorder)
// when none is installed or the registry is nil.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}

// EventLog returns the attached structured event log; nil (itself a
// no-op log) when none is attached or the registry is nil.
func (r *Registry) EventLog() *EventLog {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		if r.gauges == nil {
			r.gauges = make(map[string]*Gauge)
		}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		if r.hists == nil {
			r.hists = make(map[string]*Histogram)
		}
		r.hists[name] = h
	}
	return h
}

// Visitor receives one callback per live metric from Registry.Visit.
// Implementations read the metric through its atomic accessors; they
// must not call back into the registry (Visit holds its lock while
// walking plain metrics). Labeled metrics — family slots and anything
// under a child registry — arrive with the label set encoded into the
// name, name{k="v",...} (see EncodeName); visitors that also implement
// LabelVisitor receive the parts split instead.
type Visitor interface {
	VisitCounter(name string, c *Counter)
	VisitGauge(name string, g *Gauge)
	VisitHistogram(name string, h *Histogram)
}

// LabelVisitor is the label-aware extension of Visitor: when a visitor
// implements it, Visit routes every metric — plain or labeled —
// through the VisitLabeled callbacks with the base name and the
// absolute label set (nil for unlabeled metrics in the root registry).
type LabelVisitor interface {
	Visitor
	VisitLabeledCounter(name string, labels Labels, c *Counter)
	VisitLabeledGauge(name string, labels Labels, g *Gauge)
	VisitLabeledHistogram(name string, labels Labels, h *Histogram)
}

// Visit enumerates every metric, descending into child registries —
// steady-state allocation-free (encoded names are cached on first
// visit), the export Sampler's path. Order is unspecified; visitors
// that need determinism must sort on their side.
func (r *Registry) Visit(v Visitor) {
	if r == nil {
		return
	}
	lv, _ := v.(LabelVisitor)
	r.mu.Lock()
	for name, c := range r.counters {
		if lv != nil {
			lv.VisitLabeledCounter(name, r.labels, c)
		} else {
			v.VisitCounter(r.encNameLocked(name), c)
		}
	}
	for name, g := range r.gauges {
		if lv != nil {
			lv.VisitLabeledGauge(name, r.labels, g)
		} else {
			v.VisitGauge(r.encNameLocked(name), g)
		}
	}
	for name, h := range r.hists {
		if lv != nil {
			lv.VisitLabeledHistogram(name, r.labels, h)
		} else {
			v.VisitHistogram(r.encNameLocked(name), h)
		}
	}
	fams := r.familiesLocked()
	kids := r.childrenLocked()
	r.mu.Unlock()
	for _, f := range fams {
		f.visit(v, lv)
	}
	for _, k := range kids {
		k.Visit(v)
	}
}

// encNameLocked returns EncodeName(name, r.labels), cached so repeat
// visits allocate nothing; callers hold r.mu.
func (r *Registry) encNameLocked(name string) string {
	if len(r.labels) == 0 {
		return name
	}
	enc, ok := r.encCache[name]
	if !ok {
		enc = EncodeName(name, r.labels)
		if r.encCache == nil {
			r.encCache = make(map[string]string)
		}
		r.encCache[name] = enc
	}
	return enc
}

// familiesLocked returns the append-only family list (the slice header
// is safe to iterate after the lock drops); callers hold r.mu.
func (r *Registry) familiesLocked() []*family {
	return r.fams
}

// Snapshot is a point-in-time copy of a registry's metrics, shaped for
// JSON serialization and expvar publication. Histogram entries carry
// the per-phase duration statistics. Labels is the snapshotting
// registry's own full label set (nil for an unlabeled root); map keys
// are metric identities relative to it — plain names for its own
// metrics, name{k="v",...} (see EncodeName) for family slots and
// child-registry metrics.
type Snapshot struct {
	Labels     map[string]string         `json:"labels,omitempty"`
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
	Events     []Event                   `json:"events,omitempty"`
}

// Snapshot captures every metric, including labeled families and child
// registries. When the installed sink records events (implements
// Events() []Event, as Recorder does), they are included.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	s.Labels = r.labels.Map()
	r.snapshotInto(&s, nil)
	r.mu.Lock()
	sink := r.sink
	r.mu.Unlock()
	if ev, ok := sink.(interface{ Events() []Event }); ok {
		s.Events = ev.Events()
	}
	return s
}

// snapshotInto copies this registry's metrics into s, keyed with rel —
// the label path from the snapshotting ancestor down to this registry
// — then recurses into children with their own labels appended.
func (r *Registry) snapshotInto(s *Snapshot, rel Labels) {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	fams := r.familiesLocked()
	kids := r.childrenLocked()
	r.mu.Unlock()

	for k, v := range counters {
		s.Counters[EncodeName(k, rel)] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[EncodeName(k, rel)] = v.Value()
	}
	for k, v := range hists {
		st := v.Stats()
		st.Exemplars = v.Exemplars()
		st.Buckets = v.BucketCounts()
		s.Histograms[EncodeName(k, rel)] = st
	}
	for _, f := range fams {
		f.snapshotInto(s, rel)
	}
	for _, k := range kids {
		k.snapshotInto(s, rel.Merge(k.own))
	}
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile writes the current snapshot to path, replacing any
// existing file. It backs the CLIs' -metrics-json flag.
func (r *Registry) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
