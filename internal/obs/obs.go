// Package obs is the repository's zero-dependency observability layer:
// atomic counters and gauges, log-bucketed timing histograms with
// p50/p95/max, span-style phase tracing with a pluggable event sink,
// and an injectable clock. It exists so the embedding pipeline — an
// O(n!) construction whose junction backtracks, S4 cache behavior and
// worker-pool utilization are otherwise invisible — can be measured
// without perturbing it.
//
// Every API is nil-safe: methods on a nil *Registry, *Counter, *Gauge
// or *Histogram, and End on a zero Span, are no-ops costing a pointer
// test and a return. Instrumented hot paths therefore carry no
// configuration branches of their own; they call through unconditionally
// and pay a few nanoseconds when observation is disabled (verified by
// BenchmarkObsDisabled in internal/core and the benchmarks here).
//
// Metric names are dotted paths ("core.phase.route",
// "core.s4.cache_hits"); the glossary lives in the README's
// Observability section. Snapshots serialize to JSON via WriteJSON and
// publish live through expvar (PublishExpvar, StartDebugServer).
package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter discards all operations.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil *Gauge discards all operations.
type Gauge struct {
	v int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// Registry names and owns a set of metrics. Metrics are created lazily
// on first access and live for the registry's lifetime; accessors on a
// nil *Registry return nil metrics, so a single optional *Registry
// switches a whole subsystem's instrumentation on or off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	clock    Clock
	sink     Sink
	events   *EventLog
	flight   *FlightRecorder
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry { return &Registry{clock: Wall} }

// SetClock replaces the registry's time source (nil restores Wall).
// Spans started before the switch measure across both clocks.
func (r *Registry) SetClock(c Clock) {
	if r == nil {
		return
	}
	if c == nil {
		c = Wall
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// Clock returns the registry's time source; a nil registry reads Wall.
func (r *Registry) Clock() Clock {
	if r == nil {
		return Wall
	}
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	if c == nil {
		return Wall
	}
	return c
}

// SetSink installs the event sink that completed spans are emitted to
// (nil disables emission; histograms still record).
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// SetEventLog attaches the structured event log that instrumented
// subsystems reach through EventLog() (nil detaches it). An installed
// flight recorder is teed into the new log automatically.
func (r *Registry) SetEventLog(l *EventLog) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = l
	fl := r.flight
	r.mu.Unlock()
	if fl != nil {
		l.setFlight(fl)
	}
}

// SetFlight installs the flight recorder fed by Span.End and teed into
// the attached event log (nil detaches). NewFlightRecorder calls this;
// most code never does directly.
func (r *Registry) SetFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.flight = f
	l := r.events
	r.mu.Unlock()
	l.setFlight(f)
}

// Flight returns the installed flight recorder; nil (a no-op recorder)
// when none is installed or the registry is nil.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}

// EventLog returns the attached structured event log; nil (itself a
// no-op log) when none is attached or the registry is nil.
func (r *Registry) EventLog() *EventLog {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		if r.gauges == nil {
			r.gauges = make(map[string]*Gauge)
		}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		if r.hists == nil {
			r.hists = make(map[string]*Histogram)
		}
		r.hists[name] = h
	}
	return h
}

// Visitor receives one callback per live metric from Registry.Visit.
// Implementations read the metric through its atomic accessors; they
// must not call back into the registry (Visit holds its lock).
type Visitor interface {
	VisitCounter(name string, c *Counter)
	VisitGauge(name string, g *Gauge)
	VisitHistogram(name string, h *Histogram)
}

// Visit enumerates every metric without allocating — the export
// Sampler's steady-state path. Order is unspecified; visitors that need
// determinism must sort on their side.
func (r *Registry) Visit(v Visitor) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		v.VisitCounter(name, c)
	}
	for name, g := range r.gauges {
		v.VisitGauge(name, g)
	}
	for name, h := range r.hists {
		v.VisitHistogram(name, h)
	}
}

// Snapshot is a point-in-time copy of a registry's metrics, shaped for
// JSON serialization and expvar publication. Histogram entries carry
// the per-phase duration statistics.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
	Events     []Event                   `json:"events,omitempty"`
}

// Snapshot captures every metric. When the installed sink records
// events (implements Events() []Event, as Recorder does), they are
// included.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	sink := r.sink
	r.mu.Unlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		st := v.Stats()
		st.Exemplars = v.Exemplars()
		s.Histograms[k] = st
	}
	if ev, ok := sink.(interface{ Events() []Event }); ok {
		s.Events = ev.Events()
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile writes the current snapshot to path, replacing any
// existing file. It backs the CLIs' -metrics-json flag.
func (r *Registry) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
