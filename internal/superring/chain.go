package superring

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/substar"
)

// Chain is the open-path counterpart of Ring: a sequence of
// pairwise-adjacent order-r substars WITHOUT the wraparound edge. It
// underlies the longest-path embedder (an extension beyond the paper;
// the authors' follow-up work studies exactly this problem): the chain
// is anchored so that its first supervertex always contains a
// designated source vertex and its last contains the designated target.
type Chain struct {
	n     int
	order int
	verts []substar.Pattern
}

// NewChain validates a sequence into a Chain (consecutive adjacency
// only; ends stay open).
func NewChain(n int, verts []substar.Pattern) (*Chain, error) {
	if len(verts) < 2 {
		return nil, fmt.Errorf("superring: chain needs >= 2 supervertices, got %d", len(verts))
	}
	order := verts[0].R()
	for i, v := range verts {
		if v.N() != n || v.R() != order {
			return nil, fmt.Errorf("superring: chain vertex %d has wrong shape", i)
		}
		if i+1 < len(verts) && !v.Adjacent(verts[i+1]) {
			return nil, fmt.Errorf("superring: chain vertices %d and %d not adjacent", i, i+1)
		}
	}
	return &Chain{n: n, order: order, verts: verts}, nil
}

// N returns the ambient dimension.
func (c *Chain) N() int { return c.n }

// Order returns the order of each supervertex.
func (c *Chain) Order() int { return c.order }

// Len returns the number of supervertices.
func (c *Chain) Len() int { return len(c.verts) }

// At returns supervertex i (no modular arithmetic: chains have ends).
func (c *Chain) At(i int) substar.Pattern { return c.verts[i] }

// Vertices returns the underlying slice; callers must not modify it.
func (c *Chain) Vertices() []substar.Pattern { return c.verts }

// InitialChain partitions S_n at pos and orders the children into a
// path from the child containing s to the child containing t (which
// must therefore hold different symbols at pos). Fault-bearing interior
// children are spread when requested.
func InitialChain(n, pos int, s, t perm.Code, opts Options) (*Chain, error) {
	if s.Symbol(pos) == t.Symbol(pos) {
		return nil, fmt.Errorf("superring: source and target agree at position %d; no chain anchors", pos)
	}
	children := substar.Whole(n).Partition(pos)
	var first, last substar.Pattern
	interior := children[:0:0]
	for _, ch := range children {
		switch {
		case ch.Contains(s):
			first = ch
		case ch.Contains(t):
			last = ch
		default:
			interior = append(interior, ch)
		}
	}
	ordered := arrangeInterior(interior, opts)
	verts := make([]substar.Pattern, 0, len(children))
	verts = append(verts, first)
	verts = append(verts, ordered...)
	verts = append(verts, last)
	return NewChain(n, verts)
}

// arrangeInterior spreads fault-bearing patterns so no two are
// consecutive when possible (a best-effort mirror of arrangeCycle for
// the open case, where the ends carry no constraint).
func arrangeInterior(ps []substar.Pattern, opts Options) []substar.Pattern {
	if !opts.SpreadFaults || opts.FaultCount == nil {
		return ps
	}
	var fs, hs []substar.Pattern
	for _, p := range ps {
		if opts.faultCount(p) > 0 {
			fs = append(fs, p)
		} else {
			hs = append(hs, p)
		}
	}
	out := make([]substar.Pattern, 0, len(ps))
	for len(fs) > 0 || len(hs) > 0 {
		if len(fs) > 0 {
			out = append(out, fs[0])
			fs = fs[1:]
		}
		if len(hs) > 0 {
			out = append(out, hs[0])
			hs = hs[1:]
		}
	}
	return out
}

// Refine performs the pos-partition on the chain exactly as
// Ring.Refine does on a ring, except that the first clique's entry is
// forced to the child containing s, the last clique's exit is forced to
// the child containing t, and there is no cyclic closure. The
// first/last-two-connected discipline applies at every interior
// junction, so the final chain of blocks enjoys (P2) at its interior
// triples.
func (c *Chain) Refine(pos int, s, t perm.Code, opts Options) (*Chain, error) {
	m := len(c.verts)
	cliques := make([][]substar.Pattern, m)
	blockedPrev := make([]substar.Pattern, m)
	blockedNext := make([]substar.Pattern, m)
	var none substar.Pattern // the zero Pattern matches no child
	for k := 0; k < m; k++ {
		all := c.verts[k].Partition(pos)
		kept := all[:0:0]
		for _, ch := range all {
			if !opts.excluded(ch) {
				kept = append(kept, ch)
			}
		}
		if len(kept) < 2 {
			return nil, fmt.Errorf("superring: chain clique %d too small after exclusion", k)
		}
		cliques[k] = kept
		if k > 0 {
			blockedPrev[k] = c.verts[k].BlockedChild(c.verts[k-1], pos)
		} else {
			blockedPrev[k] = none
		}
		if k+1 < m {
			blockedNext[k] = c.verts[k].BlockedChild(c.verts[k+1], pos)
		} else {
			blockedNext[k] = none
		}
	}

	// Junction symbols q_0..q_{m-2}: q_k joins clique k to k+1.
	candidates := make([][]uint8, m-1)
	for k := 0; k+1 < m; k++ {
		var cs []uint8
		for _, q := range sharedFreeSymbols(c.verts[k], c.verts[k+1]) {
			exitChild := c.verts[k].Fix(pos, q)
			entryChild := c.verts[k+1].Fix(pos, q)
			if opts.excluded(exitChild) || opts.excluded(entryChild) {
				continue
			}
			if opts.HealthyJunctions && (opts.faultCount(exitChild) > 0 || opts.faultCount(entryChild) > 0) {
				continue
			}
			// The forced anchors may not double as junction children.
			if k == 0 && exitChild.Contains(s) {
				continue
			}
			if k+1 == m-1 && entryChild.Contains(t) {
				continue
			}
			cs = append(cs, q)
		}
		if len(cs) == 0 {
			return nil, fmt.Errorf("%w: chain junction %d has no candidate", ErrUnsatisfiable, k)
		}
		candidates[k] = cs
	}

	// entryOf returns the forced entry child of clique k given the
	// junction symbols chosen so far.
	qs := make([]uint8, m-1)
	entryOf := func(k int) substar.Pattern {
		if k == 0 {
			return substar.PatternOf(c.n, s, fixedPositions(cliques[0][0]))
		}
		return c.verts[k].Fix(pos, qs[k-1])
	}
	exitForced := substar.PatternOf(c.n, t, fixedPositions(cliques[m-1][0]))

	feasible := func(k int) bool {
		entry := entryOf(k)
		var exit substar.Pattern
		if k == m-1 {
			exit = exitForced
		} else {
			exit = c.verts[k].Fix(pos, qs[k])
		}
		_, ok := orderClique(cliques[k], entry, exit, blockedPrev[k], blockedNext[k], opts)
		return ok
	}

	// Sequential scan with backtracking over the m-1 junctions; clique k
	// becomes checkable once junction k is set (or, for the last clique,
	// once junction m-2 is set).
	idx := make([]int, m-1)
	const maxSteps = 1 << 16
	steps := 0
	k := 0
	for k < m-1 {
		if steps++; steps > maxSteps {
			return nil, fmt.Errorf("%w: chain junction search exceeded budget", ErrUnsatisfiable)
		}
		if idx[k] >= len(candidates[k]) {
			idx[k] = 0
			k--
			if k < 0 {
				return nil, fmt.Errorf("%w: no junction assignment threads the chain", ErrUnsatisfiable)
			}
			idx[k]++
			continue
		}
		qs[k] = candidates[k][idx[k]]
		ok := feasible(k)
		if ok && k == m-2 && !feasible(m-1) {
			ok = false
		}
		if !ok {
			idx[k]++
			continue
		}
		k++
	}
	if m == 1 {
		return nil, fmt.Errorf("superring: refining a single-clique chain is unsupported")
	}

	var out []substar.Pattern
	for k := 0; k < m; k++ {
		entry := entryOf(k)
		var exit substar.Pattern
		if k == m-1 {
			exit = exitForced
		} else {
			exit = c.verts[k].Fix(pos, qs[k])
		}
		path, ok := orderClique(cliques[k], entry, exit, blockedPrev[k], blockedNext[k], opts)
		if !ok {
			return nil, fmt.Errorf("%w: chain clique %d lost feasibility", ErrUnsatisfiable, k)
		}
		out = append(out, path...)
	}
	return NewChain(c.n, out)
}

// fixedPositions lists the fixed positions of a pattern (>= 2), used to
// project a concrete vertex onto the pattern containing it at the
// current refinement level.
func fixedPositions(p substar.Pattern) []int {
	var out []int
	for i := 2; i <= p.N(); i++ {
		if p.SymbolAt(i) != substar.Star {
			out = append(out, i)
		}
	}
	return out
}

// Validate re-checks the chain's structural invariants.
func (c *Chain) Validate() error {
	seen := make(map[substar.Pattern]bool, len(c.verts))
	for i, v := range c.verts {
		if seen[v] {
			return fmt.Errorf("superring: chain supervertex %v occurs twice", v)
		}
		seen[v] = true
		if v.R() != c.order {
			return fmt.Errorf("superring: chain supervertex %d has order %d", i, v.R())
		}
		if i+1 < len(c.verts) && !v.Adjacent(c.verts[i+1]) {
			return fmt.Errorf("superring: chain break between %d and %d", i, i+1)
		}
	}
	return nil
}

// P1 mirrors Ring.P1 for chains.
func (c *Chain) P1(faultCount func(substar.Pattern) int) bool {
	for _, v := range c.verts {
		if faultCount(v) > 1 {
			return false
		}
	}
	return true
}
