package superring

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/substar"
)

func BenchmarkRefineChain(b *testing.B) {
	for n := 6; n <= 8; n++ {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := Initial(n, 2, Options{})
				if err != nil {
					b.Fatal(err)
				}
				for pos := 3; r.Order() > 4; pos++ {
					r, err = r.Refine(pos, Options{})
					if err != nil {
						b.Fatal(err)
					}
				}
				if r.Len() != factorialOver24(n) {
					b.Fatalf("R4 length %d", r.Len())
				}
			}
		})
	}
}

func factorialOver24(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f / 24
}

func BenchmarkRefineWithFaultDiscipline(b *testing.B) {
	n := 7
	fs := faults.NewSet(n)
	for _, s := range []string{"2134567", "3124567", "4123567", "5123467"} {
		if err := fs.AddVertexString(s); err != nil {
			b.Fatal(err)
		}
	}
	w := func(p substar.Pattern) int { return fs.CountIn(p) }
	positions, _ := fs.SeparatingPositions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Initial(n, positions[0], Options{FaultCount: w})
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < len(positions); j++ {
			opts := Options{FaultCount: w}
			if j == len(positions)-1 {
				opts.SpreadFaults = true
				opts.HealthyJunctions = true
			}
			r, err = r.Refine(positions[j], opts)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
