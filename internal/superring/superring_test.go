package superring

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/substar"
)

func weightFor(fs *faults.Set) func(substar.Pattern) int {
	return func(p substar.Pattern) int { return fs.CountIn(p) }
}

func TestNewValidation(t *testing.T) {
	kids := substar.Whole(5).Partition(3)
	if _, err := New(5, kids); err != nil {
		t.Fatalf("valid K_5 ring rejected: %v", err)
	}
	if _, err := New(5, kids[:2]); err == nil {
		t.Fatal("2-vertex ring accepted")
	}
	// Mixed orders.
	bad := append([]substar.Pattern{}, kids[:4]...)
	bad = append(bad, kids[4].Fix(2, 3))
	if _, err := New(5, bad); err == nil {
		t.Fatal("mixed-order ring accepted")
	}
}

func TestInitialStructure(t *testing.T) {
	for n := 5; n <= 8; n++ {
		r, err := Initial(n, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != n || r.Order() != n-1 || r.N() != n {
			t.Fatalf("Initial(S_%d): len=%d order=%d", n, r.Len(), r.Order())
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInitialSpreadsFaults(t *testing.T) {
	n := 6
	rng := rand.New(rand.NewSource(15))
	// Construct faults in three different children of the 2-partition.
	fs := faults.NewSet(n)
	for len(fs.Vertices()) < 3 {
		v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
		dup := false
		for _, f := range fs.Vertices() {
			if f.Symbol(2) == v.Symbol(2) {
				dup = true
			}
		}
		if !dup {
			fs.AddVertex(v)
		}
	}
	r, err := Initial(n, 2, Options{FaultCount: weightFor(fs), SpreadFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	w := weightFor(fs)
	if !r.P3(w) {
		t.Fatal("Initial did not separate faulty supervertices")
	}
}

func TestInitialSpreadUnsatisfiable(t *testing.T) {
	// 3 faulty children among 5 cannot be pairwise non-adjacent in a
	// 5-cycle.
	n := 5
	fs := faults.NewSet(n)
	for _, s := range []string{"21345", "31245", "41235"} { // symbols 2,3,4 at position 2? ensure distinct children
		fs.AddVertexString(s)
	}
	// The three faults have distinct symbols at position 3? Build so
	// they land in distinct children of the 3-partition.
	_, err := Initial(n, 3, Options{FaultCount: weightFor(fs), SpreadFaults: true})
	if err == nil {
		// Acceptable only if the faults happened to share children; make
		// sure they did not.
		kids := substar.Whole(n).Partition(3)
		faulty := 0
		for _, k := range kids {
			if fs.CountIn(k) > 0 {
				faulty++
			}
		}
		if faulty > 2 {
			t.Fatal("unsatisfiable spreading succeeded")
		}
	} else if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestRefineStructure(t *testing.T) {
	for n := 6; n <= 8; n++ {
		r, err := Initial(n, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		expectedLen := n
		for pos := 3; r.Order() > 4; pos++ {
			r, err = r.Refine(pos, Options{})
			if err != nil {
				t.Fatalf("S_%d refine at %d: %v", n, pos, err)
			}
			expectedLen *= r.Order() + 1
			if r.Len() != expectedLen {
				t.Fatalf("S_%d: ring length %d, want %d", n, r.Len(), expectedLen)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("S_%d after refine: %v", n, err)
			}
		}
		if r.Order() != 4 {
			t.Fatalf("S_%d: final order %d", n, r.Order())
		}
		// The discipline of first/last-two-connected makes (P2) hold at
		// every level, in particular the final one.
		if v := r.FirstP2Violation(); v != -1 {
			t.Fatalf("S_%d: (P2) violated at %d", n, v)
		}
	}
}

// TestRefineRealizesLemma1 closes the loop with Lemma 1: on a refined
// ring with (P2), partitioning any middle supervertex leaves every
// child connected to one of its ring neighbors.
func TestRefineRealizesLemma1(t *testing.T) {
	n := 6
	r, err := Initial(n, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err = r.Refine(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// r is an R5; check Lemma 1 for the upcoming 4-partition.
	for i := 0; i < r.Len(); i++ {
		u, v, w := r.At(i-1), r.At(i), r.At(i+1)
		if !Lemma1ChildrenConnected(u, v, w, 4) {
			t.Fatalf("Lemma 1 fails at supervertex %d", i)
		}
	}
}

func TestRefineWithFaultDiscipline(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for n := 6; n <= 8; n++ {
		fs := faults.RandomVertices(n, faults.MaxTolerated(n), rng)
		positions, _ := fs.SeparatingPositions()
		w := weightFor(fs)
		r, err := Initial(n, positions[0], Options{FaultCount: w})
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(positions); j++ {
			opts := Options{FaultCount: w}
			if j == len(positions)-1 {
				opts.SpreadFaults = true
				opts.HealthyJunctions = true
			}
			r, err = r.Refine(positions[j], opts)
			if err != nil {
				t.Fatalf("S_%d refine %d: %v", n, j, err)
			}
		}
		if !r.P1(w) {
			t.Fatalf("S_%d: (P1) violated", n)
		}
		if !r.P2() {
			t.Fatalf("S_%d: (P2) violated", n)
		}
		if !r.P3(w) {
			t.Fatalf("S_%d: (P3) violated", n)
		}
	}
}

func TestRefineExclude(t *testing.T) {
	n := 6
	r, err := Initial(n, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exclude one child during the refinement at position 3.
	var excluded substar.Pattern
	found := false
	exclude := func(p substar.Pattern) bool {
		if found {
			return p == excluded
		}
		if p.R() == 4 {
			excluded = p
			found = true
			return true
		}
		return false
	}
	r2, err := r.Refine(3, Options{Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 6*5-1 {
		t.Fatalf("ring length %d, want %d", r2.Len(), 6*5-1)
	}
	for _, v := range r2.Vertices() {
		if v == excluded {
			t.Fatal("excluded supervertex present")
		}
	}
	if err := r2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAtModularIndexing(t *testing.T) {
	r, err := Initial(5, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.At(-1) != r.At(r.Len()-1) || r.At(r.Len()) != r.At(0) {
		t.Fatal("modular indexing broken")
	}
}

func TestP2Detection(t *testing.T) {
	// A ring of siblings (all difs at the same position) always has
	// (P2): symbols at the shared dif are pairwise distinct.
	r, err := Initial(5, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.P2() {
		t.Fatal("sibling ring lacks (P2)")
	}
}

func TestP1P3Detection(t *testing.T) {
	r, err := Initial(5, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Weight function marking two adjacent supervertices faulty.
	vs := r.Vertices()
	w := func(p substar.Pattern) int {
		if p == vs[0] || p == vs[1] {
			return 1
		}
		return 0
	}
	if r.P3(w) {
		t.Fatal("adjacent faulty supervertices passed (P3)")
	}
	heavy := func(p substar.Pattern) int {
		if p == vs[0] {
			return 2
		}
		return 0
	}
	if r.P1(heavy) {
		t.Fatal("two-fault supervertex passed (P1)")
	}
	if !r.P1(func(substar.Pattern) int { return 1 }) {
		t.Fatal("one-fault supervertices failed (P1)")
	}
}

func TestOrderCliqueConstraints(t *testing.T) {
	parent := substar.Whole(6).Partition(2)[0] // order-5 supervertex
	kids := parent.Partition(3)                // five order-4 children
	entry, exit := kids[0], kids[4]
	blockedPrev, blockedNext := kids[1], kids[3]
	path, ok := orderClique(kids, entry, exit, blockedPrev, blockedNext, Options{})
	if !ok {
		t.Fatal("feasible clique rejected")
	}
	if path[0] != entry || path[len(path)-1] != exit {
		t.Fatal("endpoints wrong")
	}
	if path[1] == blockedPrev {
		t.Fatal("second child blocked toward previous supervertex")
	}
	if path[len(path)-2] == blockedNext {
		t.Fatal("second-to-last child blocked toward next supervertex")
	}
	// entry == exit impossible.
	if _, ok := orderClique(kids, entry, entry, blockedPrev, blockedNext, Options{}); ok {
		t.Fatal("entry == exit accepted")
	}
	// entry blocked toward previous is invalid.
	if _, ok := orderClique(kids, blockedPrev, exit, blockedPrev, blockedNext, Options{}); ok {
		t.Fatal("blocked entry accepted")
	}
}
