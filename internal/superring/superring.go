// Package superring implements the paper's rings of supervertices
// (Definitions 4 and 5): an R_r is a cyclic sequence of order-r
// substars, pairwise adjacent as patterns. The package provides the
// i-partition refinement R_r -> R_{r-1} that underlies Lemma 3 — each
// supervertex splits into a clique K_r of children, and the refinement
// threads a Hamiltonian path through every clique, interleaved with the
// superedges — together with the entry/exit selection rules (blocked
// children, "first/last two connected" and fault spreading) that give
// the final R4 the paper's properties (P1), (P2) and (P3).
package superring

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/substar"
)

// Ring is a cyclic sequence of pairwise-adjacent order-r substars of
// S_n. Index arithmetic is modulo the length.
type Ring struct {
	n     int
	order int
	verts []substar.Pattern
}

// ErrUnsatisfiable reports that no arrangement satisfying the requested
// constraints exists; within the paper's fault budget this indicates a
// bug rather than a legitimate outcome, so callers treat it as fatal.
var ErrUnsatisfiable = errors.New("superring: constraints unsatisfiable")

// New wraps a validated sequence of supervertices into a Ring.
func New(n int, verts []substar.Pattern) (*Ring, error) {
	if len(verts) < 3 {
		return nil, fmt.Errorf("superring: ring needs >= 3 supervertices, got %d", len(verts))
	}
	order := verts[0].R()
	for i, v := range verts {
		if v.N() != n {
			return nil, fmt.Errorf("superring: vertex %d has dimension %d, want %d", i, v.N(), n)
		}
		if v.R() != order {
			return nil, fmt.Errorf("superring: vertex %d has order %d, want %d", i, v.R(), order)
		}
		next := verts[(i+1)%len(verts)]
		if !v.Adjacent(next) {
			return nil, fmt.Errorf("superring: vertices %d (%v) and %d (%v) not adjacent", i, v, (i+1)%len(verts), next)
		}
	}
	return &Ring{n: n, order: order, verts: verts}, nil
}

// N returns the ambient dimension.
func (r *Ring) N() int { return r.n }

// Order returns the order of each supervertex.
func (r *Ring) Order() int { return r.order }

// Len returns the number of supervertices.
func (r *Ring) Len() int { return len(r.verts) }

// At returns supervertex i modulo the ring length.
func (r *Ring) At(i int) substar.Pattern {
	m := len(r.verts)
	return r.verts[((i%m)+m)%m]
}

// Vertices returns the underlying slice; callers must not modify it.
func (r *Ring) Vertices() []substar.Pattern { return r.verts }

// Options direct a refinement or initial arrangement.
type Options struct {
	// FaultCount reports the number of fault witnesses inside a pattern;
	// nil means fault-oblivious construction.
	FaultCount func(substar.Pattern) int
	// Exclude drops matching children from the refined ring entirely
	// (used by the Latifi-Bagherzadeh clustered baseline). Excluded
	// children must never be entry or exit candidates.
	Exclude func(substar.Pattern) bool
	// HealthyJunctions requires every entry and exit child (the two
	// children straddling each superedge) to be fault-free. Combined
	// with SpreadFaults this yields property (P3).
	HealthyJunctions bool
	// SpreadFaults forbids two fault-bearing children from being
	// consecutive within a clique path.
	SpreadFaults bool
	// Obs receives construction telemetry: a superring.phase.initial /
	// superring.phase.refine span per call and the junction-search
	// backtrack counter. nil disables it.
	Obs *obs.Registry
}

func (o Options) faultCount(p substar.Pattern) int {
	if o.FaultCount == nil {
		return 0
	}
	return o.FaultCount(p)
}

func (o Options) excluded(p substar.Pattern) bool {
	return o.Exclude != nil && o.Exclude(p)
}

// Initial builds the first super-ring from the pos-partition of S_n: the
// n children are pairwise adjacent (they differ exactly at pos), so any
// cyclic order is an R_{n-1}; the options choose one that spreads and,
// when required, separates fault-bearing children.
func Initial(n, pos int, opts Options) (*Ring, error) {
	span := opts.Obs.Span("superring.phase.initial")
	defer span.End()
	children := substar.Whole(n).Partition(pos)
	kept := children[:0:0]
	for _, c := range children {
		if !opts.excluded(c) {
			kept = append(kept, c)
		}
	}
	if len(kept) < 3 {
		return nil, fmt.Errorf("superring: only %d children survive exclusion", len(kept))
	}
	arranged, err := arrangeCycle(kept, opts)
	if err != nil {
		return nil, err
	}
	return New(n, arranged)
}

// arrangeCycle orders patterns into a cyclic sequence with no two
// fault-bearing entries adjacent when SpreadFaults is set, via a small
// backtracking search (the sequences involved have length <= n).
func arrangeCycle(ps []substar.Pattern, opts Options) ([]substar.Pattern, error) {
	if !opts.SpreadFaults || opts.FaultCount == nil {
		return ps, nil
	}
	faulty := make([]bool, len(ps))
	numFaulty := 0
	for i, p := range ps {
		if opts.faultCount(p) > 0 {
			faulty[i] = true
			numFaulty++
		}
	}
	if numFaulty <= 1 {
		return ps, nil
	}
	if numFaulty > len(ps)/2 {
		return nil, fmt.Errorf("%w: %d faulty among %d supervertices cannot be non-adjacent in a cycle",
			ErrUnsatisfiable, numFaulty, len(ps))
	}
	// Interleave: place faulty patterns at positions 0, 2, 4, ... and
	// healthy ones in the remaining slots; with numFaulty <= len/2 this
	// never puts two faulty entries next to each other (including the
	// wraparound, because position 2*(numFaulty-1) < len-1... position
	// len-1 is healthy whenever numFaulty <= len/2).
	out := make([]substar.Pattern, 0, len(ps))
	var fs, hs []substar.Pattern
	for i, p := range ps {
		if faulty[i] {
			fs = append(fs, p)
		} else {
			hs = append(hs, p)
		}
	}
	for len(fs) > 0 || len(hs) > 0 {
		if len(fs) > 0 {
			out = append(out, fs[0])
			fs = fs[1:]
		}
		if len(hs) > 0 {
			out = append(out, hs[0])
			hs = hs[1:]
		}
	}
	// Verify the wraparound.
	for i := range out {
		if opts.faultCount(out[i]) > 0 && opts.faultCount(out[(i+1)%len(out)]) > 0 {
			return nil, fmt.Errorf("%w: fault interleaving failed", ErrUnsatisfiable)
		}
	}
	return out, nil
}

// Refine performs the pos-partition on the ring (Definition 5) and
// threads a Hamiltonian path through each resulting clique, returning
// the ring of order-(r-1) supervertices. The construction follows
// Lemma 3's proof:
//
//   - entry and exit children of each clique are never the child blocked
//     toward the relevant neighbor (otherwise no superedge would exist);
//   - the second and second-to-last children of each clique path are
//     also connected to the neighboring supervertex ("first/last two
//     connected"), which is what makes property (P2) hold after the
//     final refinement;
//   - junction children are healthy and fault-bearing children are
//     spread when the options demand it, yielding (P3).
//
// The junction symbols are chosen by a sequential scan with local
// backtracking; within the paper's fault budget a valid assignment
// always exists.
func (r *Ring) Refine(pos int, opts Options) (*Ring, error) {
	span := opts.Obs.Span("superring.phase.refine")
	defer span.End()
	m := len(r.verts)
	cliques := make([][]substar.Pattern, m)
	blockedPrev := make([]substar.Pattern, m) // child of k not adjacent to k-1
	blockedNext := make([]substar.Pattern, m) // child of k not adjacent to k+1
	for k := 0; k < m; k++ {
		all := r.verts[k].Partition(pos)
		kept := all[:0:0]
		for _, c := range all {
			if !opts.excluded(c) {
				kept = append(kept, c)
			}
		}
		if len(kept) < 3 {
			return nil, fmt.Errorf("superring: clique %d has only %d children after exclusion", k, len(kept))
		}
		cliques[k] = kept
		blockedPrev[k] = r.verts[k].BlockedChild(r.At(k-1), pos)
		blockedNext[k] = r.verts[k].BlockedChild(r.At(k+1), pos)
	}

	// Junction symbol q_k joins clique k to clique k+1: the exit of k is
	// verts[k] with q_k fixed at pos, the entry of k+1 is verts[k+1]
	// with q_k fixed at pos. Valid q_k are the free symbols shared by
	// both parents, avoiding excluded or (when required) faulty children
	// on either side.
	candidates := make([][]uint8, m)
	for k := 0; k < m; k++ {
		next := (k + 1) % m
		var cs []uint8
		for _, q := range sharedFreeSymbols(r.verts[k], r.At(k+1)) {
			exitChild := r.verts[k].Fix(pos, q)
			entryChild := r.verts[next].Fix(pos, q)
			if opts.excluded(exitChild) || opts.excluded(entryChild) {
				continue
			}
			if opts.HealthyJunctions && (opts.faultCount(exitChild) > 0 || opts.faultCount(entryChild) > 0) {
				continue
			}
			cs = append(cs, q)
		}
		if len(cs) == 0 {
			return nil, fmt.Errorf("%w: no junction candidate between supervertices %d and %d",
				ErrUnsatisfiable, k, next)
		}
		candidates[k] = cs
	}

	qs, err := chooseJunctions(r, pos, cliques, blockedPrev, blockedNext, candidates, opts)
	if err != nil {
		return nil, err
	}

	// Thread the clique paths.
	var out []substar.Pattern
	for k := 0; k < m; k++ {
		entry := r.verts[k].Fix(pos, qs[(k-1+m)%m])
		exit := r.verts[k].Fix(pos, qs[k])
		path, ok := orderClique(cliques[k], entry, exit, blockedPrev[k], blockedNext[k], opts)
		if !ok {
			return nil, fmt.Errorf("%w: clique %d admits no path from %v to %v", ErrUnsatisfiable, k, entry, exit)
		}
		out = append(out, path...)
	}
	return New(r.n, out)
}

// sharedFreeSymbols returns the symbols free in both adjacent patterns,
// i.e. all free symbols of a except the one b fixes at their dif.
func sharedFreeSymbols(a, b substar.Pattern) []uint8 {
	j := a.Dif(b)
	y := b.SymbolAt(j)
	var out []uint8
	for _, q := range a.FreeSymbols(nil) {
		if q != y {
			out = append(out, q)
		}
	}
	return out
}

// chooseJunctions assigns a junction symbol to every superedge such that
// every clique path is constructible: consecutive junction symbols of a
// clique must differ (entry != exit) and the clique ordering constraints
// must be satisfiable. A sequential scan with backtracking over the
// (small) candidate lists; the cyclic constraint couples the last choice
// back to the first.
func chooseJunctions(r *Ring, pos int, cliques [][]substar.Pattern,
	blockedPrev, blockedNext []substar.Pattern, candidates [][]uint8, opts Options) ([]uint8, error) {

	m := len(cliques)
	qs := make([]uint8, m)
	idx := make([]int, m) // next candidate index to try at each superedge
	backtracks := opts.Obs.Counter("superring.junction.backtracks")

	feasible := func(k int) bool {
		// Clique k's path runs from Fix(pos, qs[k-1]) to Fix(pos, qs[k]).
		prev := (k - 1 + m) % m
		if qs[prev] == qs[k] {
			return false
		}
		entry := r.verts[k].Fix(pos, qs[prev])
		exit := r.verts[k].Fix(pos, qs[k])
		_, ok := orderClique(cliques[k], entry, exit, blockedPrev[k], blockedNext[k], opts)
		return ok
	}

	// Depth-first over superedges 0..m-1. After assigning qs[k] we can
	// check clique k (its entry qs[k-1] is known for k >= 1); assigning
	// qs[m-1] additionally checks clique 0 (closing the cycle).
	const maxBacktrack = 1 << 20
	steps := 0
	k := 0
	for k < m {
		if steps++; steps > maxBacktrack {
			return nil, fmt.Errorf("%w: junction search exceeded backtracking budget", ErrUnsatisfiable)
		}
		if idx[k] >= len(candidates[k]) {
			// Exhausted: back up.
			idx[k] = 0
			k--
			if k < 0 {
				return nil, fmt.Errorf("%w: no junction assignment closes the ring", ErrUnsatisfiable)
			}
			idx[k]++
			backtracks.Inc()
			continue
		}
		qs[k] = candidates[k][idx[k]]
		ok := true
		if k >= 1 && !feasible(k) {
			ok = false
		}
		if ok && k == m-1 && !feasible(0) {
			ok = false
		}
		if !ok {
			idx[k]++
			backtracks.Inc()
			continue
		}
		k++
	}
	return qs, nil
}

// orderClique finds a Hamiltonian ordering of the clique's children
// starting at entry and ending at exit such that:
//
//   - the second child differs from blockedPrev (so the first two
//     children are connected to the previous supervertex);
//   - the second-to-last child differs from blockedNext;
//   - entry != blockedPrev and exit != blockedNext;
//   - fault-bearing children are pairwise non-consecutive when
//     opts.SpreadFaults is set.
//
// All children of one clique are pairwise adjacent, so any ordering is a
// valid path; only the constraints restrict the choice. The search is a
// DFS over at most len(children) <= n positions.
func orderClique(children []substar.Pattern, entry, exit, blockedPrev, blockedNext substar.Pattern, opts Options) ([]substar.Pattern, bool) {
	c := len(children)
	if entry == exit {
		return nil, false
	}
	if entry == blockedPrev || exit == blockedNext {
		return nil, false
	}
	entryIdx, exitIdx := -1, -1
	for i, ch := range children {
		if ch == entry {
			entryIdx = i
		}
		if ch == exit {
			exitIdx = i
		}
	}
	if entryIdx < 0 || exitIdx < 0 {
		return nil, false
	}

	faulty := make([]bool, c)
	for i, ch := range children {
		faulty[i] = opts.SpreadFaults && opts.faultCount(ch) > 0
	}

	order := make([]int, 0, c)
	used := make([]bool, c)
	order = append(order, entryIdx)
	used[entryIdx] = true

	var rec func() bool
	rec = func() bool {
		if len(order) == c {
			return true
		}
		slot := len(order) // 0-based position being filled
		last := slot == c-1
		for i := 0; i < c; i++ {
			if used[i] {
				continue
			}
			if last != (i == exitIdx) {
				continue // exit goes exactly in the final slot
			}
			if slot == 1 && children[i] == blockedPrev {
				continue
			}
			if slot == c-2 && children[i] == blockedNext {
				continue
			}
			if faulty[i] && faulty[order[len(order)-1]] {
				continue
			}
			used[i] = true
			order = append(order, i)
			if rec() {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return false
	}
	if !rec() {
		return nil, false
	}
	out := make([]substar.Pattern, c)
	for i, idx := range order {
		out[i] = children[idx]
	}
	return out, true
}
