package superring

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/substar"
)

func chainAnchors(t *testing.T, n int, rng *rand.Rand, fs *faults.Set) (perm.Code, perm.Code, int) {
	t.Helper()
	total := perm.Factorial(n)
	for {
		s := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		tt := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		if s == tt || fs.HasVertex(s) || fs.HasVertex(tt) {
			continue
		}
		for pos := 2; pos <= n; pos++ {
			if s.Symbol(pos) != tt.Symbol(pos) {
				return s, tt, pos
			}
		}
	}
}

func TestInitialChainStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 5; n <= 8; n++ {
		fs := faults.NewSet(n)
		s, tt, pos := chainAnchors(t, n, rng, fs)
		c, err := InitialChain(n, pos, s, tt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() != n || c.Order() != n-1 {
			t.Fatalf("chain len=%d order=%d", c.Len(), c.Order())
		}
		if !c.At(0).Contains(s) || !c.At(c.Len()-1).Contains(tt) {
			t.Fatal("anchors misplaced")
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInitialChainRejectsAgreeingAnchors(t *testing.T) {
	s := perm.IdentityCode(5)
	tt := s.SwapFirst(3)
	// s and tt agree at position 2 (the swap touched 1 and 3).
	if _, err := InitialChain(5, 2, s, tt, Options{}); err == nil {
		t.Fatal("agreeing anchors accepted")
	}
}

func TestChainRefineKeepsAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 6; n <= 8; n++ {
		fs := faults.NewSet(n)
		s, tt, first := chainAnchors(t, n, rng, fs)
		c, err := InitialChain(n, first, s, tt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		expectedLen := n
		for pos := 2; c.Order() > 4; pos++ {
			if pos == first {
				continue
			}
			c, err = c.Refine(pos, s, tt, Options{})
			if err != nil {
				t.Fatalf("S_%d refine at %d: %v", n, pos, err)
			}
			expectedLen *= c.Order() + 1
			if c.Len() != expectedLen {
				t.Fatalf("S_%d: chain %d, want %d", n, c.Len(), expectedLen)
			}
			if !c.At(0).Contains(s) {
				t.Fatalf("S_%d: source left the head", n)
			}
			if !c.At(c.Len() - 1).Contains(tt) {
				t.Fatalf("S_%d: target left the tail", n)
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		if c.Order() != 4 {
			t.Fatalf("S_%d: final order %d", n, c.Order())
		}
	}
}

func TestChainRefineWithFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 7
	for trial := 0; trial < 5; trial++ {
		fs := faults.RandomVertices(n, faults.MaxTolerated(n), rng)
		s, tt, _ := chainAnchors(t, n, rng, fs)
		positions, _, err := fs.SeparatingPositionsSplitting(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		w := weightFor(fs)
		c, err := InitialChain(n, positions[0], s, tt, Options{FaultCount: w})
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(positions); j++ {
			opts := Options{FaultCount: w}
			if j == len(positions)-1 {
				opts.SpreadFaults = true
				opts.HealthyJunctions = true
			}
			next, err := c.Refine(positions[j], s, tt, opts)
			if err != nil {
				// The anchored ends can make the strict discipline
				// unsatisfiable; the relaxed retry must then work.
				next, err = c.Refine(positions[j], s, tt, Options{FaultCount: w})
				if err != nil {
					t.Fatalf("trial %d refine %d: %v", trial, j, err)
				}
			}
			c = next
		}
		if !c.P1(w) {
			t.Fatalf("trial %d: chain violates (P1)", trial)
		}
	}
}

func TestChainCoversAllBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 6
	fs := faults.NewSet(n)
	s, tt, first := chainAnchors(t, n, rng, fs)
	c, err := InitialChain(n, first, s, tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 2; c.Order() > 4; pos++ {
		if pos == first {
			continue
		}
		if c, err = c.Refine(pos, s, tt, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Every vertex of S_n appears in exactly one chain block.
	seen := map[perm.Code]bool{}
	for i := 0; i < c.Len(); i++ {
		for _, v := range c.At(i).Vertices(nil) {
			if seen[v] {
				t.Fatalf("vertex %s in two blocks", v.StringN(n))
			}
			seen[v] = true
		}
	}
	if len(seen) != perm.Factorial(n) {
		t.Fatalf("blocks cover %d of %d vertices", len(seen), perm.Factorial(n))
	}
}

func TestNewChainValidation(t *testing.T) {
	kids := substar.Whole(5).Partition(3)
	if _, err := NewChain(5, kids); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	if _, err := NewChain(5, kids[:1]); err == nil {
		t.Fatal("single-vertex chain accepted")
	}
}
