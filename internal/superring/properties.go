package superring

import (
	"fmt"

	"repro/internal/substar"
)

// P1 reports whether every supervertex of the ring contains at most one
// fault witness (the paper's property (P1) for the R4).
func (r *Ring) P1(faultCount func(substar.Pattern) int) bool {
	for _, v := range r.verts {
		if faultCount(v) > 1 {
			return false
		}
	}
	return true
}

// P2 reports whether for every three consecutive supervertices U, V, W
// the paper's condition u_dif(U,V) != w_dif(V,W) holds (property (P2)).
// By Lemma 1 this guarantees that after a further partition every child
// of V is connected to U or to W.
func (r *Ring) P2() bool {
	return r.FirstP2Violation() == -1
}

// FirstP2Violation returns the index of the middle supervertex of the
// first violating triple, or -1 when (P2) holds everywhere.
func (r *Ring) FirstP2Violation() int {
	m := len(r.verts)
	for i := 0; i < m; i++ {
		u := r.At(i - 1)
		v := r.verts[i]
		w := r.At(i + 1)
		p := u.Dif(v)
		q := v.Dif(w)
		if p == 0 || q == 0 {
			return i
		}
		if u.SymbolAt(p) == w.SymbolAt(q) {
			return i
		}
	}
	return -1
}

// P3 reports whether no two consecutive supervertices are both faulty
// (property (P3)).
func (r *Ring) P3(faultCount func(substar.Pattern) int) bool {
	m := len(r.verts)
	for i := 0; i < m; i++ {
		if faultCount(r.verts[i]) > 0 && faultCount(r.At(i+1)) > 0 {
			return false
		}
	}
	return true
}

// Lemma1ChildrenConnected checks the conclusion of Lemma 1 for the
// middle supervertex V of a consecutive triple (U, V, W) after a
// pos-partition: every child of V must be adjacent to U or to W. It is
// used by tests to validate the refinement machinery against the
// paper's statement.
func Lemma1ChildrenConnected(u, v, w substar.Pattern, pos int) bool {
	for _, child := range v.Partition(pos) {
		if childAdjacentTo(child, u) || childAdjacentTo(child, w) {
			continue
		}
		return false
	}
	return true
}

// childAdjacentTo reports whether any cross edge joins the child pattern
// to some child of the neighboring parent pattern after the parent is
// partitioned at the same position; equivalently, the child is not the
// blocked child. The child has one more fixed position than the parent.
func childAdjacentTo(child, parent substar.Pattern) bool {
	// child is adjacent to parent's partition iff fixing the same
	// position of parent with the same symbol yields a valid pattern
	// that is adjacent to child. Find the extra fixed position.
	for i := 2; i <= child.N(); i++ {
		cs := child.SymbolAt(i)
		if cs == substar.Star || parent.SymbolAt(i) != substar.Star {
			continue
		}
		// i is the freshly fixed position; the sibling in parent with
		// the same symbol at i is adjacent to child unless the symbol is
		// not free in parent.
		free := false
		for _, q := range parent.FreeSymbols(nil) {
			if q == cs {
				free = true
				break
			}
		}
		if !free {
			return false
		}
		return child.Adjacent(parent.Fix(i, cs))
	}
	return false
}

// Validate re-runs the structural invariants (pairwise adjacency of
// consecutive supervertices, uniform order, distinctness) and returns a
// descriptive error on the first violation. New establishes the same
// invariants; Validate lets tests re-check rings after manipulation.
func (r *Ring) Validate() error {
	seen := make(map[substar.Pattern]bool, len(r.verts))
	for i, v := range r.verts {
		if seen[v] {
			return fmt.Errorf("superring: supervertex %v occurs twice", v)
		}
		seen[v] = true
		if v.R() != r.order {
			return fmt.Errorf("superring: supervertex %d has order %d, want %d", i, v.R(), r.order)
		}
		if !v.Adjacent(r.At(i + 1)) {
			return fmt.Errorf("superring: supervertices %d and %d not adjacent", i, (i+1)%len(r.verts))
		}
	}
	return nil
}
