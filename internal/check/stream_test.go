package check

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// sliceNext adapts a materialized cycle to RingStream's iterator shape.
func sliceNext(cycle []perm.Code) func() (perm.Code, bool) {
	i := 0
	return func() (perm.Code, bool) {
		if i >= len(cycle) {
			var zero perm.Code
			return zero, false
		}
		v := cycle[i]
		i++
		return v, true
	}
}

func TestRingStreamAcceptsValidCycle(t *testing.T) {
	g := star.New(3)
	count, err := RingStream(g, sliceNext(hexagon()), nil, 6)
	if err != nil {
		t.Fatalf("valid hexagon rejected: %v", err)
	}
	if count != 6 {
		t.Fatalf("count %d, want 6", count)
	}
}

// TestRingStreamMatchesRing feeds the same cycles (valid and broken)
// through both verifiers and demands identical verdicts — RingStream
// is only trustworthy at unmaterializable scale if it provably agrees
// wherever Ring can run.
func TestRingStreamMatchesRing(t *testing.T) {
	g := star.New(3)
	hex := hexagon()

	cases := []struct {
		name  string
		cycle []perm.Code
		fs    func() *faults.Set
		min   int
	}{
		{"valid", hex, nil, 6},
		{"too short vs bound", hex, nil, 7},
		{"under three vertices", hex[:2], nil, 0},
		{"duplicate vertex", append(append([]perm.Code{}, hex...), hex[0]), nil, 0},
		{"non-adjacent hop", []perm.Code{hex[0], hex[2], hex[4]}, nil, 0},
		{"open wraparound", hex[:4], nil, 0},
		{"faulty vertex", hex, func() *faults.Set {
			fs := faults.NewSet(3)
			fs.AddVertex(hex[2])
			return fs
		}, 0},
		{"faulty edge", hex, func() *faults.Set {
			fs := faults.NewSet(3)
			fs.AddEdge(hex[1], hex[2])
			return fs
		}, 0},
		{"faulty closing edge", hex, func() *faults.Set {
			fs := faults.NewSet(3)
			fs.AddEdge(hex[5], hex[0])
			return fs
		}, 0},
	}
	for _, c := range cases {
		var fs *faults.Set
		if c.fs != nil {
			fs = c.fs()
		}
		want := Ring(g, c.cycle, fs, c.min)
		_, got := RingStream(g, sliceNext(c.cycle), fs, c.min)
		if (want == nil) != (got == nil) {
			t.Errorf("%s: Ring=%v, RingStream=%v", c.name, want, got)
			continue
		}
		if got != nil && !errors.Is(got, ErrInvalidRing) {
			t.Errorf("%s: stream error not wrapping ErrInvalidRing: %v", c.name, got)
		}
	}
}

func TestRingStreamRejectsForeignVertex(t *testing.T) {
	g := star.New(3)
	bad := append([]perm.Code{}, hexagon()...)
	bad[3] = perm.None
	if _, err := RingStream(g, sliceNext(bad), nil, 0); err == nil {
		t.Fatal("foreign vertex accepted")
	}
}

// TestStreamVerifierStopsAtFirstError pins the incremental contract:
// the verdict lands on the offending Feed (so a producer can abort a
// multi-million-vertex stream early), the error is sticky, and Feed
// after Close is rejected.
func TestStreamVerifierStopsAtFirstError(t *testing.T) {
	g := star.New(3)
	hex := hexagon()

	sv := NewStreamVerifier(g, nil)
	if err := sv.Feed(hex[0]); err != nil {
		t.Fatal(err)
	}
	if err := sv.Feed(hex[2]); err == nil { // not adjacent to hex[0]
		t.Fatal("non-adjacent feed accepted")
	}
	if err := sv.Feed(hex[1]); err == nil {
		t.Fatal("error not sticky across Feed")
	}
	if err := sv.Close(0); err == nil {
		t.Fatal("error not sticky across Close")
	}

	sv = NewStreamVerifier(g, nil)
	for _, v := range hex {
		if err := sv.Feed(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := sv.Close(6); err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(6); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if err := sv.Feed(hex[0]); err == nil {
		t.Fatal("Feed after Close accepted")
	}
	if sv.Count() != 6 {
		t.Fatalf("count %d", sv.Count())
	}
}

// TestPagedBitsDistinctness exercises the rank bitset across page
// boundaries directly.
func TestPagedBitsDistinctness(t *testing.T) {
	b := newPagedBits(3 * pageBits)
	probes := []int{0, 1, pageBits - 1, pageBits, 2*pageBits + 7, 3*pageBits - 1}
	for _, i := range probes {
		if b.testAndSet(i) {
			t.Fatalf("bit %d set before first touch", i)
		}
	}
	for _, i := range probes {
		if !b.testAndSet(i) {
			t.Fatalf("bit %d lost", i)
		}
	}
	if b.testAndSet(2) {
		t.Fatal("untouched bit reads set")
	}
}
