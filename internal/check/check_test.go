package check

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// hexagon returns the 6-cycle that is S_3.
func hexagon() []perm.Code {
	v := perm.IdentityCode(3)
	out := make([]perm.Code, 0, 6)
	dim := 2
	for i := 0; i < 6; i++ {
		out = append(out, v)
		v = v.SwapFirst(dim)
		dim = 5 - dim
	}
	return out
}

func TestRingAcceptsValidCycle(t *testing.T) {
	g := star.New(3)
	if err := Ring(g, hexagon(), nil, 6); err != nil {
		t.Fatalf("valid hexagon rejected: %v", err)
	}
}

func TestRingRejections(t *testing.T) {
	g := star.New(3)
	hex := hexagon()

	cases := []struct {
		name  string
		cycle []perm.Code
		fs    func() *faults.Set
		min   int
	}{
		{"too short vs bound", hex, nil, 7},
		{"under three vertices", hex[:2], nil, 0},
		{"duplicate vertex", append(append([]perm.Code{}, hex...), hex[0]), nil, 0},
		{"non-adjacent hop", []perm.Code{hex[0], hex[2], hex[4]}, nil, 0},
		{"faulty vertex", hex, func() *faults.Set {
			fs := faults.NewSet(3)
			fs.AddVertex(hex[2])
			return fs
		}, 0},
		{"faulty edge", hex, func() *faults.Set {
			fs := faults.NewSet(3)
			fs.AddEdge(hex[1], hex[2])
			return fs
		}, 0},
		{"faulty closing edge", hex, func() *faults.Set {
			fs := faults.NewSet(3)
			fs.AddEdge(hex[5], hex[0])
			return fs
		}, 0},
	}
	for _, c := range cases {
		var fs *faults.Set
		if c.fs != nil {
			fs = c.fs()
		}
		err := Ring(g, c.cycle, fs, c.min)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !errors.Is(err, ErrInvalidRing) {
			t.Errorf("%s: wrong error type: %v", c.name, err)
		}
	}
}

func TestRingRejectsForeignVertex(t *testing.T) {
	g := star.New(3)
	bad := append([]perm.Code{}, hexagon()...)
	bad[3] = perm.None
	if err := Ring(g, bad, nil, 0); err == nil {
		t.Fatal("foreign vertex accepted")
	}
}

func TestPath(t *testing.T) {
	g := star.New(3)
	hex := hexagon()
	if err := Path(g, hex[:4], nil); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if err := Path(g, nil, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	// A path need not close: the wraparound pair may be non-adjacent.
	if err := Path(g, []perm.Code{hex[0], hex[1], hex[2]}, nil); err != nil {
		t.Fatalf("open path rejected: %v", err)
	}
	if err := Path(g, []perm.Code{hex[0], hex[2]}, nil); err == nil {
		t.Fatal("disconnected pair accepted")
	}
	fs := faults.NewSet(3)
	fs.AddVertex(hex[1])
	if err := Path(g, hex[:3], fs); err == nil {
		t.Fatal("faulty vertex on path accepted")
	}
}

func TestBipartiteUpperBound(t *testing.T) {
	n := 4
	if got := BipartiteUpperBound(n, nil); got != 24 {
		t.Fatalf("fault-free bound %d", got)
	}
	fs := faults.NewSet(n)
	fs.AddVertexString("1234") // even
	if got := BipartiteUpperBound(n, fs); got != 22 {
		t.Fatalf("one fault: %d", got)
	}
	fs.AddVertexString("1342") // also even (cycle of length 3)
	if got := BipartiteUpperBound(n, fs); got != 20 {
		t.Fatalf("two same-side faults: %d", got)
	}
	fs.AddVertexString("2134") // odd
	if got := BipartiteUpperBound(n, fs); got != 20 {
		t.Fatalf("2+1 faults: %d", got)
	}
}

func TestGuarantees(t *testing.T) {
	if GuaranteeHCH(6, 3) != 714 {
		t.Error("GuaranteeHCH")
	}
	if GuaranteeTseng(6, 3) != 708 {
		t.Error("GuaranteeTseng")
	}
	if GuaranteeLatifi(6, 3) != 714 {
		t.Error("GuaranteeLatifi")
	}
}
