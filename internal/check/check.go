// Package check independently verifies embedding artifacts. The
// embedders in internal/core and internal/baseline re-check their own
// output through this package before returning, so construction bugs
// surface as errors rather than as silently invalid rings.
package check

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// ErrInvalidRing is wrapped by every verification failure.
var ErrInvalidRing = errors.New("check: invalid ring")

// Ring verifies that cycle is a healthy simple cycle of S_n of length at
// least minLen: consecutive vertices (including the wraparound) must be
// adjacent, no vertex may repeat, no vertex may be faulty, and no used
// edge may be faulty. fs may be nil for the fault-free case.
func Ring(g star.Graph, cycle []perm.Code, fs *faults.Set, minLen int) error {
	n := g.N()
	if len(cycle) < minLen {
		return fmt.Errorf("%w: length %d < required %d", ErrInvalidRing, len(cycle), minLen)
	}
	if len(cycle) < 3 {
		return fmt.Errorf("%w: a cycle needs >= 3 vertices, got %d", ErrInvalidRing, len(cycle))
	}
	seen := make(map[perm.Code]int, len(cycle))
	for i, v := range cycle {
		if !v.Valid(n) {
			return fmt.Errorf("%w: entry %d (%#v) is not a vertex of S_%d", ErrInvalidRing, i, v, n)
		}
		if j, dup := seen[v]; dup {
			return fmt.Errorf("%w: vertex %s repeats at positions %d and %d", ErrInvalidRing, v.StringN(n), j, i)
		}
		seen[v] = i
		if fs != nil && fs.HasVertex(v) {
			return fmt.Errorf("%w: faulty vertex %s at position %d", ErrInvalidRing, v.StringN(n), i)
		}
	}
	for i, v := range cycle {
		w := cycle[(i+1)%len(cycle)]
		if !g.Adjacent(v, w) {
			return fmt.Errorf("%w: %s and %s (positions %d, %d) are not adjacent",
				ErrInvalidRing, v.StringN(n), w.StringN(n), i, (i+1)%len(cycle))
		}
		if fs != nil && fs.HasEdge(v, w) {
			return fmt.Errorf("%w: faulty edge {%s, %s} used at position %d",
				ErrInvalidRing, v.StringN(n), w.StringN(n), i)
		}
	}
	return nil
}

// Path verifies that path is a healthy simple path of S_n: consecutive
// adjacency without the wraparound, distinctness, healthiness.
func Path(g star.Graph, path []perm.Code, fs *faults.Set) error {
	n := g.N()
	if len(path) == 0 {
		return fmt.Errorf("%w: empty path", ErrInvalidRing)
	}
	seen := make(map[perm.Code]int, len(path))
	for i, v := range path {
		if !v.Valid(n) {
			return fmt.Errorf("%w: entry %d is not a vertex of S_%d", ErrInvalidRing, i, n)
		}
		if j, dup := seen[v]; dup {
			return fmt.Errorf("%w: vertex %s repeats at positions %d and %d", ErrInvalidRing, v.StringN(n), j, i)
		}
		seen[v] = i
		if fs != nil && fs.HasVertex(v) {
			return fmt.Errorf("%w: faulty vertex %s at position %d", ErrInvalidRing, v.StringN(n), i)
		}
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.Adjacent(path[i], path[i+1]) {
			return fmt.Errorf("%w: %s and %s (positions %d, %d) are not adjacent",
				ErrInvalidRing, path[i].StringN(n), path[i+1].StringN(n), i, i+1)
		}
		if fs != nil && fs.HasEdge(path[i], path[i+1]) {
			return fmt.Errorf("%w: faulty edge {%s, %s} used", ErrInvalidRing, path[i].StringN(n), path[i+1].StringN(n))
		}
	}
	return nil
}

// BipartiteUpperBound returns the largest possible length of any healthy
// cycle given the vertex faults: a cycle of a bipartite graph alternates
// sides, so it uses the same number of vertices from each partite set,
// and each side offers n!/2 minus its faults. The bound is
// n! - 2*max(f0, f1) where f0, f1 count faults per side. When all faults
// share one side this equals the paper's n! - 2|Fv|, which is why the
// paper's result is worst-case optimal.
func BipartiteUpperBound(n int, fs *faults.Set) int {
	half := perm.Factorial(n) / 2
	f0, f1 := 0, 0
	if fs != nil {
		for _, v := range fs.Vertices() {
			if v.Parity(n) == 0 {
				f0++
			} else {
				f1++
			}
		}
	}
	m := f0
	if f1 > m {
		m = f1
	}
	return 2 * (half - m)
}

// GuaranteeHCH returns the paper's guaranteed ring length n! - 2|Fv|.
func GuaranteeHCH(n, numVertexFaults int) int {
	return perm.Factorial(n) - 2*numVertexFaults
}

// GuaranteeTseng returns the prior guarantee n! - 4|Fv| of Tseng, Chang
// and Sheu.
func GuaranteeTseng(n, numVertexFaults int) int {
	return perm.Factorial(n) - 4*numVertexFaults
}

// GuaranteeLatifi returns the clustered guarantee n! - m! of Latifi and
// Bagherzadeh, where all faults lie inside one embedded S_m.
func GuaranteeLatifi(n, m int) int {
	return perm.Factorial(n) - perm.Factorial(m)
}
