package check

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
)

// StreamVerifier validates a ring incrementally, one vertex at a time,
// without ever holding the cycle: Feed checks each vertex as it
// arrives (validity, healthiness, adjacency to its predecessor, and
// distinctness), Close checks the wraparound edge and the length
// bounds. It is the constant-memory counterpart of Ring for rings too
// large to materialize — n = 10 is 3.6M vertices, n = 12 is 479M.
//
// Distinctness is tracked by Lehmer rank in a lazily paged bitset:
// n!/8 bytes fully touched, the same order as the O(#blocks) skeleton
// the streaming embedder keeps (24 ring vertices ≈ 3 bitset bytes per
// block) and far below the O(n!) words of a materialized ring plus the
// hash map Ring builds. Practical through n = 12 (60 MB of bits);
// beyond that exact distinctness outgrows memory whatever the
// representation.
//
// A StreamVerifier is single-use: after Close (or the first error) it
// rejects further Feeds. Not safe for concurrent use.
type StreamVerifier struct {
	g    star.Graph
	fs   *faults.Set
	n    int
	seen pagedBits

	first, prev perm.Code
	count       int
	err         error
	closed      bool
}

// NewStreamVerifier returns a verifier for rings of S_n streamed
// vertex by vertex. fs may be nil for the fault-free case.
func NewStreamVerifier(g star.Graph, fs *faults.Set) *StreamVerifier {
	n := g.N()
	return &StreamVerifier{g: g, fs: fs, n: n, seen: newPagedBits(perm.Factorial(n))}
}

// fail records and returns the verifier's terminal error.
func (s *StreamVerifier) fail(format string, args ...interface{}) error {
	s.err = fmt.Errorf(format, args...)
	return s.err
}

// Feed validates the next ring vertex. The first error is terminal and
// re-returned by Close.
func (s *StreamVerifier) Feed(v perm.Code) error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return s.fail("%w: Feed after Close", ErrInvalidRing)
	}
	i := s.count
	if !v.Valid(s.n) {
		return s.fail("%w: entry %d (%#v) is not a vertex of S_%d", ErrInvalidRing, i, v, s.n)
	}
	if s.fs != nil && s.fs.HasVertex(v) {
		return s.fail("%w: faulty vertex %s at position %d", ErrInvalidRing, v.StringN(s.n), i)
	}
	if s.seen.testAndSet(v.Rank(s.n)) {
		return s.fail("%w: vertex %s repeats at position %d", ErrInvalidRing, v.StringN(s.n), i)
	}
	if i == 0 {
		s.first = v
	} else {
		if !s.g.Adjacent(s.prev, v) {
			return s.fail("%w: %s and %s (positions %d, %d) are not adjacent",
				ErrInvalidRing, s.prev.StringN(s.n), v.StringN(s.n), i-1, i)
		}
		if s.fs != nil && s.fs.HasEdge(s.prev, v) {
			return s.fail("%w: faulty edge {%s, %s} used at position %d",
				ErrInvalidRing, s.prev.StringN(s.n), v.StringN(s.n), i-1)
		}
	}
	s.prev = v
	s.count++
	return nil
}

// Count returns the number of vertices fed so far.
func (s *StreamVerifier) Count() int { return s.count }

// Close checks the closing conditions — at least 3 vertices, at least
// minLen, and a healthy wraparound edge — and returns the verdict for
// the whole stream. Idempotent; a Feed error is sticky and re-returned.
func (s *StreamVerifier) Close(minLen int) error {
	if s.err != nil {
		return s.err
	}
	if !s.closed {
		s.closed = true
		if s.count < minLen {
			return s.fail("%w: length %d < required %d", ErrInvalidRing, s.count, minLen)
		}
		if s.count < 3 {
			return s.fail("%w: a cycle needs >= 3 vertices, got %d", ErrInvalidRing, s.count)
		}
		if !s.g.Adjacent(s.prev, s.first) {
			return s.fail("%w: %s and %s (positions %d, %d) are not adjacent",
				ErrInvalidRing, s.prev.StringN(s.n), s.first.StringN(s.n), s.count-1, 0)
		}
		if s.fs != nil && s.fs.HasEdge(s.prev, s.first) {
			return s.fail("%w: faulty edge {%s, %s} used at position %d",
				ErrInvalidRing, s.prev.StringN(s.n), s.first.StringN(s.n), s.count-1)
		}
	} else if s.count < minLen {
		return fmt.Errorf("%w: length %d < required %d", ErrInvalidRing, s.count, minLen)
	}
	return nil
}

// RingStream verifies a ring delivered by an iterator: next returns
// consecutive cycle vertices and false when the cycle is complete. The
// verdict and the number of vertices consumed are returned; memory
// stays bounded by the rank bitset regardless of ring length. It
// agrees with Ring on every materializable cycle (the equivalence is
// locked by tests in this package and a randomized campaign in
// internal/core).
func RingStream(g star.Graph, next func() (perm.Code, bool), fs *faults.Set, minLen int) (int, error) {
	sv := NewStreamVerifier(g, fs)
	for {
		v, ok := next()
		if !ok {
			break
		}
		if err := sv.Feed(v); err != nil {
			return sv.Count(), err
		}
	}
	return sv.Count(), sv.Close(minLen)
}

// pagedBits is a bitset over [0, size) whose backing pages are
// allocated on first touch, so sparse probes (short rings in a huge
// S_n) stay cheap while dense ones converge to size/8 bytes.
type pagedBits struct {
	pages [][]uint64
}

// pageBits is the span of one page: 1<<19 bits = 64 KiB of uint64s.
const pageBits = 1 << 19

func newPagedBits(size int) pagedBits {
	return pagedBits{pages: make([][]uint64, (size+pageBits-1)/pageBits)}
}

// testAndSet sets bit i and reports whether it was already set.
func (b *pagedBits) testAndSet(i int) bool {
	p := i / pageBits
	page := b.pages[p]
	if page == nil {
		page = make([]uint64, pageBits/64)
		b.pages[p] = page
	}
	off := i % pageBits
	w, mask := off/64, uint64(1)<<(off%64)
	if page[w]&mask != 0 {
		return true
	}
	page[w] |= mask
	return false
}
