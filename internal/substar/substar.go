// Package substar implements the embedded-substar algebra of the paper
// (Definitions 1-5): patterns <s1 s2 ... sn>_r denoting embedded copies
// of S_r inside S_n, i-partitions and (i1,...,im)-partitions, pattern
// adjacency with its dif position, and the blocked-child rule that
// drives entry/exit selection in the super-ring machinery.
package substar

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/perm"
)

// Star is the "don't care" symbol of the paper, printed as '*'.
const Star uint8 = 0

// Pattern is an embedded substar <s1 s2 ... sn>_r of S_n: position i
// holds either a fixed symbol (1..n) or Star. Position 1 is always Star
// (the paper's s1 = *), and the number of Star positions is the order r
// of the embedded star graph. Pattern is a comparable value type and can
// key maps directly.
type Pattern struct {
	n    uint8
	syms [perm.MaxN]uint8 // syms[i] = symbol fixed at position i+1, or Star
}

// Whole returns the pattern <* * ... *>_n representing all of S_n.
func Whole(n int) Pattern {
	mustf(n >= 1 && n <= perm.MaxN, "substar: dimension %d out of range [1,%d]", n, perm.MaxN)
	return Pattern{n: uint8(n)}
}

// mustf is the package's invariant helper: it panics with a formatted
// message when cond is false. Used only for programmer-error
// preconditions, never data-dependent conditions.
func mustf(cond bool, format string, args ...interface{}) {
	if !cond {
		panic(fmt.Sprintf(format, args...))
	}
}

// FromSymbols builds a pattern from a slice where entry i is the symbol
// fixed at position i+1 or Star. It validates the paper's invariants:
// position 1 free, fixed symbols distinct and within 1..n.
func FromSymbols(n int, symbols []uint8) (Pattern, error) {
	if n < 1 || n > perm.MaxN || len(symbols) != n {
		return Pattern{}, fmt.Errorf("substar: bad symbol slice length %d for n=%d", len(symbols), n)
	}
	var p Pattern
	p.n = uint8(n)
	var seen uint32
	for i, s := range symbols {
		if s == Star {
			continue
		}
		if i == 0 {
			return Pattern{}, fmt.Errorf("substar: position 1 must be free in %v", symbols)
		}
		if s < 1 || int(s) > n {
			return Pattern{}, fmt.Errorf("substar: symbol %d out of range at position %d", s, i+1)
		}
		bit := uint32(1) << (s - 1)
		if seen&bit != 0 {
			return Pattern{}, fmt.Errorf("substar: duplicate symbol %d", s)
		}
		seen |= bit
		p.syms[i] = s
	}
	return p, nil
}

// MustFromSymbols is FromSymbols, panicking on invalid input.
func MustFromSymbols(n int, symbols ...uint8) Pattern {
	p, err := FromSymbols(n, symbols)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse reads the paper's notation without angle brackets: one character
// per position, '*' for don't-care, digits/letters for fixed symbols.
// For example Parse("**3*5") is <* * 3 * 5>_3 inside S_5.
func Parse(s string) (Pattern, error) {
	const symbolRunes = "123456789abcdefg"
	n := len(s)
	symbols := make([]uint8, 0, n)
	for _, r := range s {
		if r == '*' {
			symbols = append(symbols, Star)
			continue
		}
		idx := strings.IndexRune(symbolRunes, r)
		if idx < 0 {
			return Pattern{}, fmt.Errorf("substar: bad character %q in %q", r, s)
		}
		symbols = append(symbols, uint8(idx+1))
	}
	return FromSymbols(n, symbols)
}

// MustParse is Parse, panicking on invalid input.
func MustParse(s string) Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the dimension of the ambient star graph S_n.
func (p Pattern) N() int { return int(p.n) }

// R returns the order of the embedded star graph: the number of free
// (don't care) positions.
func (p Pattern) R() int {
	r := 0
	for i := 0; i < int(p.n); i++ {
		if p.syms[i] == Star {
			r++
		}
	}
	return r
}

// Order returns the number of vertices of the embedded substar, R()!.
func (p Pattern) Order() int { return perm.Factorial(p.R()) }

// SymbolAt returns the fixed symbol at 1-based position i, or Star.
func (p Pattern) SymbolAt(i int) uint8 { return p.syms[i-1] }

// String renders the pattern in the paper's notation, e.g. "<**21>_2".
func (p Pattern) String() string {
	const symbolRunes = "123456789abcdefg"
	var b strings.Builder
	b.WriteByte('<')
	for i := 0; i < int(p.n); i++ {
		if p.syms[i] == Star {
			b.WriteByte('*')
		} else {
			b.WriteByte(symbolRunes[p.syms[i]-1])
		}
	}
	fmt.Fprintf(&b, ">_%d", p.R())
	return b.String()
}

// FreePositions appends the 1-based free positions of p to dst in
// increasing order. Position 1 is always first.
func (p Pattern) FreePositions(dst []int) []int {
	for i := 0; i < int(p.n); i++ {
		if p.syms[i] == Star {
			dst = append(dst, i+1)
		}
	}
	return dst
}

// FreeSymbols appends the symbols not fixed anywhere in p to dst in
// increasing order; these are the symbols that populate the free
// positions of the embedded substar's vertices.
func (p Pattern) FreeSymbols(dst []uint8) []uint8 {
	var used uint32
	for i := 0; i < int(p.n); i++ {
		if s := p.syms[i]; s != Star {
			used |= 1 << (s - 1)
		}
	}
	for s := uint8(1); int(s) <= int(p.n); s++ {
		if used&(1<<(s-1)) == 0 {
			dst = append(dst, s)
		}
	}
	return dst
}

// Contains reports whether vertex v of S_n belongs to the substar.
func (p Pattern) Contains(v perm.Code) bool {
	for i := 1; i <= int(p.n); i++ {
		if s := p.syms[i-1]; s != Star && v.Symbol(i) != s {
			return false
		}
	}
	return true
}

// Fix returns a copy of p with 1-based position i (currently free,
// i >= 2) fixed to symbol q (currently unused). It panics when the
// operation would break the pattern invariants; this is the primitive
// behind Partition.
func (p Pattern) Fix(i int, q uint8) Pattern {
	mustf(i >= 2 && i <= int(p.n), "substar: Fix position %d out of range [2,%d]", i, p.n)
	mustf(p.syms[i-1] == Star, "substar: Fix position %d of %v is not free", i, p)
	mustf(q >= 1 && int(q) <= int(p.n), "substar: Fix symbol %d out of range", q)
	for j := 0; j < int(p.n); j++ {
		mustf(p.syms[j] != q, "substar: Fix symbol %d already used in %v", q, p)
	}
	p.syms[i-1] = q
	return p
}

// Partition performs the paper's i-partition (Definition 2): it splits
// the order-r substar into r substars of order r-1, one per free symbol
// q, each with position i fixed to q. The children are returned in
// increasing symbol order. Position i must be free and i >= 2.
func (p Pattern) Partition(i int) []Pattern {
	syms := p.FreeSymbols(make([]uint8, 0, perm.MaxN))
	children := make([]Pattern, 0, len(syms))
	for _, q := range syms {
		children = append(children, p.Fix(i, q))
	}
	return children
}

// PartitionSeq performs the (i1, i2, ..., im)-partition of Definition 3:
// successive partitions along the given positions, producing
// r(r-1)...(r-m+1) substars of order r-m. The positions must be distinct
// free positions >= 2.
func (p Pattern) PartitionSeq(positions []int) []Pattern {
	current := []Pattern{p}
	for _, pos := range positions {
		next := make([]Pattern, 0, len(current)*p.R())
		for _, q := range current {
			next = append(next, q.Partition(pos)...)
		}
		current = next
	}
	return current
}

// Vertices appends every vertex of the substar to dst in lexicographic
// order of the free-position assignment and returns dst. The number of
// appended vertices is R()!.
func (p Pattern) Vertices(dst []perm.Code) []perm.Code {
	positions := p.FreePositions(make([]int, 0, perm.MaxN))
	symbols := p.FreeSymbols(make([]uint8, 0, perm.MaxN))
	mustf(len(positions) == len(symbols), "substar: free position/symbol count mismatch in %v", p)
	var base perm.Code
	for i := 1; i <= int(p.n); i++ {
		if s := p.syms[i-1]; s != Star {
			base = base.WithSymbol(i, s)
		}
	}
	assignment := make([]uint8, len(symbols))
	copy(assignment, symbols)
	for {
		v := base
		for k, pos := range positions {
			v = v.WithSymbol(pos, assignment[k])
		}
		dst = append(dst, v)
		if !nextPerm(assignment) {
			return dst
		}
	}
}

// nextPerm advances the slice to its lexicographic successor.
func nextPerm(a []uint8) bool {
	n := len(a)
	i := n - 2
	for i >= 0 && a[i] >= a[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for a[j] <= a[i] {
		j--
	}
	//starlint:ignore permalias advancing a to its successor in place is this helper's whole contract
	a[i], a[j] = a[j], a[i]
	for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
		a[l], a[r] = a[r], a[l]
	}
	return true
}

// PatternOf returns the order-(n-len(fixed)) pattern obtained by fixing,
// for each position in fixed, the symbol vertex v holds there. It is the
// substar containing v after an arbitrary partition sequence along those
// positions.
func PatternOf(n int, v perm.Code, fixed []int) Pattern {
	p := Whole(n)
	for _, pos := range fixed {
		p = p.Fix(pos, v.Symbol(pos))
	}
	return p
}

// Dif returns the paper's dif(p, q): the unique position j >= 2 at which
// two adjacent substars hold distinct fixed symbols. It returns 0 when
// the patterns are not adjacent.
//
// Adjacency (paper, Section 2): p and q are adjacent iff they agree at
// every position except a single j where both are fixed and different.
func (p Pattern) Dif(q Pattern) int {
	if p.n != q.n {
		return 0
	}
	dif := 0
	for i := 0; i < int(p.n); i++ {
		a, b := p.syms[i], q.syms[i]
		if a == b {
			continue
		}
		if a == Star || b == Star || dif != 0 {
			return 0
		}
		dif = i + 1
	}
	return dif
}

// Adjacent reports whether p and q are adjacent substars. An r-edge
// between two adjacent r-vertices comprises (r-1)! concrete edges of
// S_n.
func (p Pattern) Adjacent(q Pattern) bool { return p.Dif(q) != 0 }

// CrossEdges appends every concrete edge {u, w} of S_n with u in p and
// w in q, for adjacent patterns p and q. There are exactly (r-1)! such
// edges. Pairs are appended as successive (u, w) entries in us and ws.
func (p Pattern) CrossEdges(q Pattern, us, ws []perm.Code) ([]perm.Code, []perm.Code) {
	j := p.Dif(q)
	if j == 0 {
		return us, ws
	}
	y := q.syms[j-1] // symbol q fixes at the dif position
	// A cross edge swaps positions 1 and j: u must hold y at position 1
	// so that the swap moves y into position j, landing in q. There are
	// (r-1)! such u.
	for _, u := range p.Vertices(nil) {
		if u.Symbol(1) != y {
			continue
		}
		us = append(us, u)
		ws = append(ws, u.SwapFirst(j))
	}
	return us, ws
}

// BlockedChild returns the one child of an i-partition of p that is NOT
// adjacent to the neighboring substar q (paper, Section 2): when
// p = <...*_i ... x_j ...> and q = <...*_i ... y_j ...> are adjacent at
// j = dif(p, q), the child of p with symbol y fixed at position i has no
// cross edge to q. Position i must be free in both p and q.
func (p Pattern) BlockedChild(q Pattern, i int) Pattern {
	j := p.Dif(q)
	mustf(j != 0, "substar: BlockedChild of non-adjacent patterns %v, %v", p, q)
	y := q.syms[j-1]
	return p.Fix(i, y)
}

// SortPatterns orders a slice of patterns deterministically (by their
// fixed-symbol vectors); used to make constructions reproducible.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(a, b int) bool {
		pa, pb := ps[a], ps[b]
		for i := 0; i < int(pa.n); i++ {
			if pa.syms[i] != pb.syms[i] {
				return pa.syms[i] < pb.syms[i]
			}
		}
		return false
	})
}
