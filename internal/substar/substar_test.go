package substar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
	"repro/internal/star"
)

func TestWholeAndBasics(t *testing.T) {
	p := Whole(5)
	if p.N() != 5 || p.R() != 5 || p.Order() != 120 {
		t.Fatalf("Whole(5): N=%d R=%d Order=%d", p.N(), p.R(), p.Order())
	}
	if p.String() != "<*****>_5" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParseRoundtrip(t *testing.T) {
	cases := []string{"**3*5", "****", "*2", "*234*6**9"}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		q, err := Parse(s)
		if err != nil || p != q {
			t.Fatalf("Parse not deterministic for %q", s)
		}
	}
	bad := []string{"", "1***", "**1*1", "**x", "*0"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestFromSymbolsValidation(t *testing.T) {
	if _, err := FromSymbols(3, []uint8{1, Star, Star}); err == nil {
		t.Error("fixed position 1 accepted")
	}
	if _, err := FromSymbols(3, []uint8{Star, 2, 2}); err == nil {
		t.Error("duplicate symbol accepted")
	}
	if _, err := FromSymbols(3, []uint8{Star, 4, Star}); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := FromSymbols(3, []uint8{Star, Star}); err == nil {
		t.Error("wrong length accepted")
	}
}

// TestPaperExamplePartition reproduces the example after Definition 2:
// a 3-partition of <**15>_3 in S_5... the paper's S_5 example uses
// pattern <* * * 1 5> ("**15" with 3 free positions among 5). We encode
// the analogous example: partitioning <***15>_3 at position 3 yields
// three order-2 substars with symbols 2, 3, 4 fixed at position 3.
func TestPaperExamplePartition(t *testing.T) {
	p := MustParse("***15")
	if p.R() != 3 {
		t.Fatalf("R = %d", p.R())
	}
	children := p.Partition(3)
	if len(children) != 3 {
		t.Fatalf("3-partition produced %d children", len(children))
	}
	want := []string{"<**215>_2", "<**315>_2", "<**415>_2"}
	for i, c := range children {
		if c.String() != want[i] {
			t.Errorf("child %d = %v, want %s", i, c, want[i])
		}
	}
	// The (3,2)-partition of Definition 3 then yields 6 order-1
	// substars.
	leaves := p.PartitionSeq([]int{3, 2})
	if len(leaves) != 6 {
		t.Fatalf("(3,2)-partition produced %d leaves", len(leaves))
	}
	for _, l := range leaves {
		if l.R() != 1 || l.Order() != 1 {
			t.Fatalf("leaf %v has order %d", l, l.R())
		}
	}
}

func TestPartitionDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(4) + 4 // 4..7
		p := randomPattern(rng, n, rng.Intn(n-2)+2)
		free := p.FreePositions(nil)
		pos := free[rng.Intn(len(free)-1)+1] // skip position 1
		parentVerts := p.Vertices(nil)
		children := p.Partition(pos)
		if len(children) != p.R() {
			t.Fatalf("%v: %d children, want %d", p, len(children), p.R())
		}
		seen := map[perm.Code]int{}
		for _, c := range children {
			if c.R() != p.R()-1 {
				t.Fatalf("child order %d", c.R())
			}
			for _, v := range c.Vertices(nil) {
				seen[v]++
			}
		}
		if len(seen) != len(parentVerts) {
			t.Fatalf("%v: children cover %d vertices, parent has %d", p, len(seen), len(parentVerts))
		}
		for _, v := range parentVerts {
			if seen[v] != 1 {
				t.Fatalf("vertex %#v covered %d times", v, seen[v])
			}
		}
	}
}

func TestVerticesMatchContains(t *testing.T) {
	g := star.New(5)
	p := MustParse("**3*5")
	inPattern := map[perm.Code]bool{}
	for _, v := range p.Vertices(nil) {
		inPattern[v] = true
	}
	count := 0
	g.Vertices(func(v perm.Code) bool {
		if p.Contains(v) {
			count++
			if !inPattern[v] {
				t.Fatalf("Contains/Vertices disagree at %s", v.StringN(5))
			}
		}
		return true
	})
	if count != p.Order() || len(inPattern) != p.Order() {
		t.Fatalf("counts: contains=%d vertices=%d order=%d", count, len(inPattern), p.Order())
	}
}

func TestAdjacencyAndDif(t *testing.T) {
	a := MustParse("**23")
	b := MustParse("**13")
	if !a.Adjacent(b) || a.Dif(b) != 3 {
		t.Fatalf("expected adjacency at dif 3, got %d", a.Dif(b))
	}
	// Same pattern: not adjacent.
	if a.Adjacent(a) {
		t.Error("pattern adjacent to itself")
	}
	// Two differing positions: not adjacent.
	c := MustParse("**14")
	if a.Adjacent(c) {
		t.Error("patterns differing twice adjacent")
	}
	// Star vs fixed mismatch: not adjacent.
	d := MustParse("***3")
	if a.Adjacent(d) || d.Adjacent(a) {
		t.Error("patterns of different order adjacent")
	}
}

func TestSiblingsPairwiseAdjacent(t *testing.T) {
	p := Whole(6)
	children := p.Partition(4)
	for i := range children {
		for j := range children {
			if i == j {
				continue
			}
			if !children[i].Adjacent(children[j]) || children[i].Dif(children[j]) != 4 {
				t.Fatalf("siblings %v, %v not adjacent at the partition position", children[i], children[j])
			}
		}
	}
}

func TestCrossEdges(t *testing.T) {
	g := star.New(5)
	a := MustParse("***25")
	b := MustParse("***45")
	us, ws := a.CrossEdges(b, nil, nil)
	if len(us) != perm.Factorial(a.R()-1) {
		t.Fatalf("%d cross edges, want (r-1)! = %d", len(us), perm.Factorial(a.R()-1))
	}
	seen := map[perm.Code]bool{}
	for i := range us {
		u, w := us[i], ws[i]
		if !a.Contains(u) || !b.Contains(w) {
			t.Fatalf("cross edge endpoints misplaced: %s, %s", u.StringN(5), w.StringN(5))
		}
		if !g.Adjacent(u, w) {
			t.Fatalf("cross edge %s-%s not an edge", u.StringN(5), w.StringN(5))
		}
		if seen[u] {
			t.Fatalf("duplicate cross edge at %s", u.StringN(5))
		}
		seen[u] = true
	}
	// Exhaustive converse: every S_5 edge with one endpoint in each
	// pattern appears.
	total := 0
	g.Vertices(func(v perm.Code) bool {
		if !a.Contains(v) {
			return true
		}
		g.VisitNeighbors(v, func(w perm.Code, _ int) bool {
			if b.Contains(w) {
				total++
			}
			return true
		})
		return true
	})
	if total != len(us) {
		t.Fatalf("found %d actual cross edges, CrossEdges returned %d", total, len(us))
	}
}

// TestBlockedChild verifies the claim of Section 2: after an
// i-partition of two adjacent r-vertices, exactly one child on each
// side has no cross edge to the other parent, and it is the one
// BlockedChild returns.
func TestBlockedChild(t *testing.T) {
	a := MustParse("***25")
	b := MustParse("***45")
	blocked := a.BlockedChild(b, 2)
	if blocked != a.Fix(2, 4) {
		t.Fatalf("BlockedChild = %v", blocked)
	}
	for _, child := range a.Partition(2) {
		us, _ := child.CrossEdges(b, nil, nil)
		// A child is connected to b's partition iff it has cross edges
		// to b itself at pattern level... verify via sibling pairing.
		connected := false
		for _, sib := range b.Partition(2) {
			if child.Adjacent(sib) {
				connected = true
				break
			}
		}
		if child == blocked && connected {
			t.Fatalf("blocked child %v is connected", child)
		}
		if child != blocked && !connected {
			t.Fatalf("unblocked child %v is not connected", child)
		}
		_ = us
	}
}

func TestPatternOf(t *testing.T) {
	v := perm.Pack(perm.MustParse("35142"))
	p := PatternOf(5, v, []int{3, 5})
	if !p.Contains(v) {
		t.Fatal("PatternOf does not contain its vertex")
	}
	if p.R() != 3 {
		t.Fatalf("order %d, want 3", p.R())
	}
	if p.SymbolAt(3) != 1 || p.SymbolAt(5) != 2 {
		t.Fatalf("wrong fixed symbols: %v", p)
	}
}

func TestFixPanics(t *testing.T) {
	p := MustParse("**3*")
	for _, c := range []struct {
		pos int
		sym uint8
	}{
		{1, 1}, // position 1 must stay free
		{3, 1}, // already fixed
		{2, 3}, // symbol in use
		{2, 9}, // out of range
		{9, 1}, // position out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fix(%d, %d) did not panic", c.pos, c.sym)
				}
			}()
			p.Fix(c.pos, c.sym)
		}()
	}
}

func TestSortPatterns(t *testing.T) {
	ps := Whole(5).Partition(3)
	// Shuffle then sort.
	ps[0], ps[3] = ps[3], ps[0]
	ps[1], ps[4] = ps[4], ps[1]
	SortPatterns(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i-1].SymbolAt(3) >= ps[i].SymbolAt(3) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

// randomPattern fixes random positions of Whole(n) until order r.
func randomPattern(rng *rand.Rand, n, r int) Pattern {
	p := Whole(n)
	for p.R() > r {
		free := p.FreePositions(nil)
		pos := free[rng.Intn(len(free)-1)+1] // never position 1
		syms := p.FreeSymbols(nil)
		p = p.Fix(pos, syms[rng.Intn(len(syms))])
	}
	return p
}

func TestQuickPatternVertexMembership(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 4
		p := randomPattern(rng, n, rng.Intn(n-1)+1)
		vs := p.Vertices(nil)
		if len(vs) != p.Order() {
			return false
		}
		for _, v := range vs {
			if !p.Contains(v) || !v.Valid(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 4
		parent := randomPattern(rng, n, rng.Intn(n-3)+3)
		free := parent.FreePositions(nil)
		pos := free[rng.Intn(len(free)-1)+1]
		kids := parent.Partition(pos)
		a, b := kids[0], kids[1]
		return a.Dif(b) == b.Dif(a) && a.Dif(b) == pos
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
