package sim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
)

func TestBootAndCirculate(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.RingLength() != 120 {
		t.Fatalf("boot ring %d", m.RingLength())
	}
	if err := m.Circulate(3); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Laps != 3 || st.Hops != 360 {
		t.Fatalf("laps=%d hops=%d", st.Laps, st.Hops)
	}
	if st.Uptime != 360 {
		t.Fatalf("uptime %d", st.Uptime)
	}
}

func TestFailureShrinksByTwo(t *testing.T) {
	m, err := New(Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= faults.MaxTolerated(6); k++ {
		// Fail a processor currently on the ring.
		victim := m.Ring()[rng.Intn(m.RingLength())]
		if err := m.FailVertex(victim); err != nil {
			t.Fatal(err)
		}
		if m.RingLength() != 720-2*k {
			t.Fatalf("after %d failures: ring %d", k, m.RingLength())
		}
		if m.GuaranteedLength() != 720-2*k {
			t.Fatalf("guarantee %d", m.GuaranteedLength())
		}
		if err := m.Circulate(1); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Reembeds+st.Splices != faults.MaxTolerated(6) {
		t.Fatalf("reembeds %d + splices %d != %d", st.Reembeds, st.Splices, faults.MaxTolerated(6))
	}
	if st.Downtime == 0 {
		t.Fatal("no downtime charged")
	}
	if len(st.RingLengths) != 1+faults.MaxTolerated(6) {
		t.Fatalf("ring history %v", st.RingLengths)
	}
}

func TestFailSpareProcessorKeepsRing(t *testing.T) {
	// With one failure the ring misses 2 vertices; failing one of the
	// off-ring spares must not trigger a re-embedding.
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FailVertex(m.Ring()[0]); err != nil {
		t.Fatal(err)
	}
	onRing := make(map[perm.Code]bool, m.RingLength())
	for _, v := range m.Ring() {
		onRing[v] = true
	}
	var spare perm.Code
	found := false
	for r := 0; r < 120 && !found; r++ {
		v := perm.Pack(perm.Unrank(5, r))
		if !onRing[v] && !m.plan.Faulty(v) {
			spare, found = v, true
		}
	}
	if !found {
		t.Fatal("no spare vertex")
	}
	before := m.Stats()
	if err := m.FailVertex(spare); err != nil {
		t.Fatal(err)
	}
	after := m.Stats()
	if after.Reembeds != before.Reembeds || after.Splices != before.Splices {
		t.Fatal("spare failure re-routed the ring")
	}
	if after.Downtime != before.Downtime {
		t.Fatal("spare failure charged downtime")
	}
	if m.Faults() != 2 {
		t.Fatalf("faults %d, want 2", m.Faults())
	}
	if err := m.Circulate(1); err != nil {
		t.Fatal(err)
	}
}

func TestTokenHolderFailure(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FailVertex(m.TokenHolder()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TokenLost != 1 {
		t.Fatalf("token lost %d", m.Stats().TokenLost)
	}
	if err := m.Circulate(1); err != nil {
		t.Fatal(err)
	}
}

func TestVisitReachesEveryProcessorOnce(t *testing.T) {
	m, err := New(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[perm.Code]int{}
	if err := m.Visit(func(v perm.Code) { seen[v]++ }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != m.RingLength() {
		t.Fatalf("visited %d of %d", len(seen), m.RingLength())
	}
	for v, k := range seen {
		if k != 1 {
			t.Fatalf("%s visited %d times", v.StringN(4), k)
		}
	}
}

func TestHaltBeyondRepair(t *testing.T) {
	// S_3 cannot survive any failure.
	m, err := New(Config{N: 3, Embed: core.Config{BestEffort: true}})
	if err != nil {
		t.Fatal(err)
	}
	err = m.FailVertex(m.Ring()[0])
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
}

func TestBestEffortBeyondBudget(t *testing.T) {
	m, err := New(Config{N: 5, Embed: core.Config{BestEffort: true}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Budget is 2; push to 4 failures.
	for k := 1; k <= 4; k++ {
		victim := m.Ring()[rng.Intn(m.RingLength())]
		if err := m.FailVertex(victim); err != nil {
			t.Fatalf("failure %d: %v", k, err)
		}
		if err := m.Circulate(1); err != nil {
			t.Fatal(err)
		}
	}
	if m.GuaranteedLength() != 0 {
		t.Fatal("guarantee should lapse beyond the budget")
	}
	if m.RingLength() < 120-2*4-4 {
		t.Fatalf("best-effort ring unreasonably short: %d", m.RingLength())
	}
}

func TestHaltWhenBudgetExhausted(t *testing.T) {
	// S_5 tolerates 2 faults; the third must halt without BestEffort.
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < faults.MaxTolerated(5); k++ {
		if err := m.FailVertex(m.Ring()[5]); err != nil {
			t.Fatalf("failure %d: %v", k+1, err)
		}
	}
	err = m.FailVertex(m.Ring()[5])
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
}

func TestRingReturnsDefensiveCopy(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Ring()
	for i := range r {
		r[i] = r[0] // clobber the caller's copy
	}
	// The machine must be unaffected: its ring still circulates over
	// real, distinct, adjacent processors.
	if err := m.Circulate(1); err != nil {
		t.Fatalf("mutating Ring()'s result corrupted the machine: %v", err)
	}
	if m.Ring()[1] == m.Ring()[0] {
		t.Fatal("machine ring was clobbered through the accessor")
	}
}

func TestSpliceKeepsTokenInPlace(t *testing.T) {
	m, err := New(Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Park the token in the second block, then fail an interior vertex
	// of the first: the repair splices and the holder must not move.
	for i := 0; i < 30; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	holder := m.TokenHolder()
	if err := m.FailVertex(m.Ring()[2]); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Splices != 1 || st.Reembeds != 0 {
		t.Fatalf("expected one splice, got %+v", st)
	}
	if m.TokenHolder() != holder {
		t.Fatal("splice of an unrelated block moved the token holder")
	}
	if err := m.Circulate(1); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceTokenHolderLoss(t *testing.T) {
	m, err := New(Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Walk into the interior of the third block and kill the holder:
	// the repair splices and the token restarts at the repaired
	// segment's head instead of position 0.
	for i := 0; i < 50; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	victim := m.TokenHolder()
	if err := m.FailVertex(victim); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TokenLost != 1 {
		t.Fatalf("token lost %d", st.TokenLost)
	}
	if st.Splices != 1 || st.Reembeds != 0 {
		t.Fatalf("expected one splice, got %+v", st)
	}
	if m.TokenHolder() == victim {
		t.Fatal("token still on the failed processor")
	}
	if err := m.Circulate(1); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, []int) {
		m, err := New(Config{N: 5})
		if err != nil {
			t.Fatal(err)
		}
		m.FailVertex(m.Ring()[7])
		m.Circulate(2)
		m.FailVertex(m.Ring()[3])
		m.Circulate(1)
		return m.Clock(), m.Stats().RingLengths
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || len(h1) != len(h2) {
		t.Fatal("simulation not deterministic")
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("histories differ")
		}
	}
}

func BenchmarkMachineLap(b *testing.B) {
	m, err := New(Config{N: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Circulate(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.RingLength()), "ringlen")
}

func BenchmarkMachineFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := New(Config{N: 6})
		if err != nil {
			b.Fatal(err)
		}
		victim := m.Ring()[42]
		b.StartTimer()
		if err := m.FailVertex(victim); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunCampaign(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		Machine:     Config{N: 6, HopCost: 1, ReembedCostPerBlock: 4},
		Failures:    3,
		LapsBetween: 2,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GuaranteeHeld {
		t.Fatal("guarantee broken within budget")
	}
	if rep.FinalRing != 714 {
		t.Fatalf("final ring %d", rep.FinalRing)
	}
	if rep.Laps != 8 {
		t.Fatalf("laps %d", rep.Laps)
	}
	if rep.Availability <= 0 || rep.Availability >= 1 {
		t.Fatalf("availability %f", rep.Availability)
	}
	// Determinism.
	rep2, err := RunCampaign(CampaignConfig{
		Machine:     Config{N: 6, HopCost: 1, ReembedCostPerBlock: 4},
		Failures:    3,
		LapsBetween: 2,
		Seed:        5,
	})
	if err != nil || rep2.Clock != rep.Clock || rep2.FinalRing != rep.FinalRing {
		t.Fatal("campaign not deterministic")
	}
}

// TestRunCampaignStreamingEquivalence pins that a machine on a
// streaming (skeleton-only) plan behaves tick-for-tick like the
// materialized one: every hop, repair, and victim draw goes through
// RingAt/RingLen, so the campaign trajectory must be identical.
func TestRunCampaignStreamingEquivalence(t *testing.T) {
	campaign := func(streaming bool) *CampaignReport {
		rep, err := RunCampaign(CampaignConfig{
			Machine:     Config{N: 6, HopCost: 1, ReembedCostPerBlock: 4, Embed: core.Config{Streaming: streaming}},
			Failures:    3,
			LapsBetween: 2,
			Seed:        5,
		})
		if err != nil {
			t.Fatalf("streaming=%v: %v", streaming, err)
		}
		return rep
	}
	mat, str := campaign(false), campaign(true)
	if mat.Clock != str.Clock || mat.FinalRing != str.FinalRing ||
		mat.Laps != str.Laps || mat.Splices != str.Splices ||
		mat.Reembeds != str.Reembeds || mat.TokenLost != str.TokenLost {
		t.Fatalf("streaming campaign diverged:\nmaterialized %+v\nstreaming    %+v", mat, str)
	}
	if len(mat.RingLengths) != len(str.RingLengths) {
		t.Fatalf("ring-length histories differ in length")
	}
	for i := range mat.RingLengths {
		if mat.RingLengths[i] != str.RingLengths[i] {
			t.Fatalf("ring-length history diverged at %d: %d vs %d", i, mat.RingLengths[i], str.RingLengths[i])
		}
	}
}

func TestRunCampaignBeyondBudgetNeedsBestEffort(t *testing.T) {
	_, err := RunCampaign(CampaignConfig{
		Machine:  Config{N: 5},
		Failures: 4, // budget is 2
		Seed:     1,
	})
	if err == nil {
		t.Fatal("over-budget campaign without BestEffort succeeded")
	}
}
