package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/perm"
)

// CampaignConfig scripts a failure scenario: the machine alternates
// work phases (full ring laps) with processor failures drawn from a
// seeded stream, always targeting processors currently on the ring (the
// harshest choice — off-ring failures are free).
type CampaignConfig struct {
	Machine     Config
	Failures    int
	LapsBetween int
	Seed        int64
}

// CampaignReport summarizes a finished campaign.
type CampaignReport struct {
	Stats
	FinalRing    int
	Clock        int64
	Availability float64 // uptime / (uptime + downtime)
	// GuaranteeHeld reports whether, within the fault budget, every
	// re-embedding met the paper's n! - 2|Fv| bound.
	GuaranteeHeld bool
}

// RunCampaign executes the scenario and reports. The run is fully
// deterministic in (config, seed).
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) {
	if cfg.LapsBetween <= 0 {
		cfg.LapsBetween = 1
	}
	m, err := New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	held := true
	total := perm.Factorial(cfg.Machine.N)

	if err := m.Circulate(cfg.LapsBetween); err != nil {
		return nil, err
	}
	for f := 1; f <= cfg.Failures; f++ {
		victim := m.RingAt(rng.Intn(m.RingLength()))
		if err := m.FailVertex(victim); err != nil {
			return nil, fmt.Errorf("failure %d: %w", f, err)
		}
		if g := m.GuaranteedLength(); g > 0 {
			if m.RingLength() < g {
				held = false
			}
			if m.RingLength() != total-2*m.Faults() {
				held = false
			}
		}
		if err := m.Circulate(cfg.LapsBetween); err != nil {
			return nil, err
		}
	}

	st := m.Stats()
	var avail float64
	if st.Uptime+st.Downtime > 0 {
		avail = float64(st.Uptime) / float64(st.Uptime+st.Downtime)
	}
	return &CampaignReport{
		Stats:         st,
		FinalRing:     m.RingLength(),
		Clock:         m.Clock(),
		Availability:  avail,
		GuaranteeHeld: held,
	}, nil
}
