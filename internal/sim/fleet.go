package sim

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

// FleetConfig scripts the same campaign across a fleet of machines
// sharing one parent registry. Machine i is named "m<i>", runs with
// seed Campaign.Seed+i, and records into Obs.Child("machine", "m<i>"),
// so the parent sees every series labeled by machine while each child
// stays a clean per-machine view.
type FleetConfig struct {
	// Machines is the fleet size (>= 1).
	Machines int
	// Campaign is the per-machine scenario. Machine.ID and Machine.Obs
	// are overwritten per machine; Seed is the base seed.
	Campaign CampaignConfig
	// Obs is the shared parent registry. May be nil (telemetry off).
	Obs *obs.Registry
}

// FleetReport aggregates a finished fleet run. Index i of every slice
// is machine IDs[i].
type FleetReport struct {
	IDs       []string
	Reports   []*CampaignReport
	Snapshots []obs.Snapshot // per-machine child snapshots (self-relative keys)
	// Fleet merges the per-machine snapshots into one fleet-wide view:
	// counters summed, gauges maxed, histograms merged bucket-wise.
	Fleet obs.Snapshot
}

// RunFleet runs the campaign on every machine concurrently (each
// machine is deterministic in its own seed, so the fleet outcome is
// order-independent) and reports per-machine and aggregated views.
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	if cfg.Machines < 1 {
		cfg.Machines = 1
	}
	rep := &FleetReport{
		IDs:       make([]string, cfg.Machines),
		Reports:   make([]*CampaignReport, cfg.Machines),
		Snapshots: make([]obs.Snapshot, cfg.Machines),
	}
	errs := make([]error, cfg.Machines)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Machines; i++ {
		rep.IDs[i] = fmt.Sprintf("m%d", i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := cfg.Campaign
			cc.Machine.ID = rep.IDs[i]
			cc.Machine.Obs = cfg.Obs
			cc.Seed = cfg.Campaign.Seed + int64(i)
			rep.Reports[i], errs[i] = RunCampaign(cc)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: fleet machine %s: %w", rep.IDs[i], err)
		}
	}
	// Child is idempotent per label set, so this re-finds each
	// machine's registry rather than creating empty ones.
	for i, id := range rep.IDs {
		rep.Snapshots[i] = cfg.Obs.Child("machine", id).Snapshot()
	}
	rep.Fleet = export.Aggregate(rep.Snapshots...)
	return rep, nil
}
