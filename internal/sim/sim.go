// Package sim is a deterministic discrete-time simulator for a
// star-graph multiprocessor whose processes communicate over an
// embedded ring. It executes ring protocols hop by hop on the physical
// topology (every hop is checked against real star-graph adjacency and
// the live fault set), injects fail-stop vertex faults at runtime, and
// repairs the ring online through the paper's algorithm — accounting
// for the downtime each repair costs.
//
// The simulator is the operational counterpart of the paper's
// motivation: a ring-structured computation that keeps running as
// processors die, paying exactly two ring slots per failure while the
// fault budget lasts. The machine holds a core.Embedder and a live
// core.Plan: most failures are absorbed by Plan.Repair's splice fast
// path (one block re-routed, downtime charged for one block), and only
// skeleton-invalidating failures pay for a full re-embedding. It backs
// the examples and the failure-injection tests.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/star"
)

// Config sizes a simulated machine. Costs are in abstract ticks.
type Config struct {
	// N is the star-graph dimension (>= 3).
	N int
	// ID names this machine within a fleet. When set, the machine's
	// telemetry is rebased onto Obs.Child("machine", ID): every metric
	// the machine or its embedder registers carries machine="<ID>", and
	// every NDJSON event record is stamped with a machine field — so N
	// machines can share one parent registry without aliasing each
	// other's counters. Empty means the registry is used as-is (the
	// single-machine behavior).
	ID string
	// HopCost is the latency of moving the token across one physical
	// link; 0 means 1.
	HopCost int64
	// ReembedCostPerBlock models the scheduler recomputing the
	// embedding: ticks per R4 block actually re-routed — one for a
	// repair splice, all n!/24 for a full re-embedding; 0 means 1.
	ReembedCostPerBlock int64
	// Embed configures the underlying embedder. BestEffort additionally
	// lets the machine outlive its formal fault budget.
	Embed core.Config
	// Obs receives campaign accounting (sim.embeds, sim.splices,
	// sim.failures, sim.token_lost counters, the sim.ring_length gauge,
	// sim.phase.reembed spans around cold embeddings and sim.phase.repair
	// spans around online repairs). When Embed.Obs is unset it inherits
	// this registry. An event log attached to the registry
	// (obs.Registry.SetEventLog) additionally receives structured
	// sim.fault / sim.repair events for every injected failure, and
	// per-hop sim.token_move events at debug level. Instrumentation
	// never feeds back into the simulation, so determinism in
	// (config, seed) is preserved.
	Obs *obs.Registry
}

// Stats accumulates over a machine's lifetime.
type Stats struct {
	Hops     int64 // physical link traversals
	Laps     int64 // completed ring circulations
	Reembeds int   // full ring reconstructions triggered by failures
	// Splices counts failures absorbed by the repair fast path: one
	// block re-routed and spliced, the rest of the ring untouched.
	Splices   int
	Downtime  int64 // ticks spent repairing or re-embedding
	Uptime    int64 // ticks spent moving the token
	TokenLost int   // failures that hit the current token holder
	// RingLengths records the ring length after the initial embedding
	// and after every ring-changing repair (splice or rebuild).
	RingLengths []int
}

// Machine is one simulated multiprocessor.
type Machine struct {
	cfg   Config
	g     star.Graph
	eng   *core.Embedder
	plan  *core.Plan
	log   *obs.EventLog // from the registry; nil (no-op) when absent
	token int           // ring position of the token holder
	clock int64
	stats Stats
}

// ErrHalted reports that no ring survives the current fault set.
var ErrHalted = errors.New("sim: machine halted, no healthy ring remains")

// New boots a machine and embeds its initial ring.
func New(cfg Config) (*Machine, error) {
	if cfg.HopCost <= 0 {
		cfg.HopCost = 1
	}
	if cfg.ReembedCostPerBlock <= 0 {
		cfg.ReembedCostPerBlock = 1
	}
	if cfg.ID != "" {
		// Rebase all telemetry — counters, gauges, spans, the event log,
		// and (below) the embedder's metrics — onto the machine's child
		// registry before anything captures cfg.Obs.
		cfg.Obs = cfg.Obs.Child("machine", cfg.ID)
	}
	if cfg.Embed.Obs == nil {
		cfg.Embed.Obs = cfg.Obs
	}
	eng, err := core.NewEmbedder(cfg.N, cfg.Embed)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{cfg: cfg, g: star.New(cfg.N), eng: eng, log: cfg.Obs.EventLog()}

	// Boot is one traced operation: the reembed phase, the embedder's
	// phases underneath it, and the boot-time events all share a trace.
	op := cfg.Obs.StartOp("sim.op.boot")
	span := op.Span("sim.phase.reembed")
	plan, err := eng.EmbedOp(op, nil)
	span.End()
	op.Done()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHalted, err)
	}
	m.plan = plan
	cfg.Obs.Counter("sim.embeds").Inc()
	m.chargeRepair(plan.Result().Blocks)
	return m, nil
}

// chargeRepair charges downtime for re-routing the given number of
// blocks (at least one) and records the resulting ring length.
func (m *Machine) chargeRepair(blocks int) {
	if blocks < 1 {
		blocks = 1
	}
	cost := m.cfg.ReembedCostPerBlock * int64(blocks)
	m.clock += cost
	m.stats.Downtime += cost
	length := m.plan.RingLen()
	m.cfg.Obs.Gauge("sim.ring_length").Set(int64(length))
	m.stats.RingLengths = append(m.stats.RingLengths, length)
}

// Clock returns the current simulated time in ticks.
func (m *Machine) Clock() int64 { return m.clock }

// Registry returns the registry the machine records into: the child
// labeled machine="<ID>" when Config.ID was set, else Config.Obs
// verbatim (possibly nil). Fleet drivers snapshot it per machine.
func (m *Machine) Registry() *obs.Registry { return m.cfg.Obs }

// Stats returns a copy of the accumulated statistics.
func (m *Machine) Stats() Stats { return m.stats }

// RingLength returns the current ring length.
func (m *Machine) RingLength() int { return m.plan.RingLen() }

// Ring returns a copy of the current embedded ring; mutating it cannot
// affect the machine. Under a streaming embed config this materializes
// the whole cycle — prefer RingAt for spot reads.
func (m *Machine) Ring() []perm.Code { return m.plan.Ring() }

// RingAt returns the processor at the given ring position without
// materializing the cycle (streaming plans serve it from the one-block
// segment cache).
func (m *Machine) RingAt(i int) perm.Code { return m.plan.RingAt(i) }

// Plan exposes the machine's live embedding plan (read-only use; drive
// faults through FailVertex so the accounting stays consistent).
func (m *Machine) Plan() *core.Plan { return m.plan }

// Faults returns the number of failed processors so far.
func (m *Machine) Faults() int { return m.plan.Result().VertexFaults }

// TokenHolder returns the processor currently holding the token.
func (m *Machine) TokenHolder() perm.Code { return m.plan.RingAt(m.token) }

// Step moves the token to the next processor on the ring, validating
// the hop against the physical topology and the live fault set.
func (m *Machine) Step() error {
	from := m.plan.RingAt(m.token)
	next := (m.token + 1) % m.plan.RingLen()
	to := m.plan.RingAt(next)
	if !m.g.Adjacent(from, to) {
		return fmt.Errorf("sim: internal: ring hop %s -> %s is not a physical link",
			from.StringN(m.cfg.N), to.StringN(m.cfg.N))
	}
	if m.plan.Faulty(from) || m.plan.Faulty(to) {
		return fmt.Errorf("sim: internal: token touched a failed processor")
	}
	m.token = next
	m.clock += m.cfg.HopCost
	m.stats.Uptime += m.cfg.HopCost
	m.stats.Hops++
	if m.token == 0 {
		m.stats.Laps++
	}
	// Per-hop events are debug-level and guarded, so a campaign that
	// logs at info pays only this branch per step.
	if m.log.Enabled(obs.LevelDebug) {
		m.log.Log(obs.LevelDebug, "sim.token_move",
			obs.F("from", from.StringN(m.cfg.N)),
			obs.F("to", to.StringN(m.cfg.N)),
			obs.F("pos", m.token),
			obs.F("clock", m.clock))
	}
	return nil
}

// Circulate completes the given number of full ring laps.
func (m *Machine) Circulate(laps int) error {
	for l := 0; l < laps; l++ {
		for i := 0; i < m.plan.RingLen(); i++ {
			if err := m.Step(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Visit runs one lap, calling f at every processor the token reaches
// (starting with the current holder). It is the building block for
// reductions and broadcasts over the virtual ring.
func (m *Machine) Visit(f func(v perm.Code)) error {
	for i := 0; i < m.plan.RingLen(); i++ {
		f(m.plan.RingAt(m.token))
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// FailVertex marks a processor failed at the current instant and repairs
// the ring through the plan. An off-ring (spare) failure costs nothing;
// a failure absorbed by the splice fast path charges downtime for the
// one re-routed block and keeps the token in place (shifted past the
// shed vertices); a skeleton-invalidating failure pays for a full
// re-embedding and restarts the token at ring position 0. Failing the
// token holder additionally counts a lost token (the protocol above it
// would have to recover by regeneration, which the simulator models as
// restarting the lap — from the repaired segment after a splice, from
// position 0 after a rebuild).
func (m *Machine) FailVertex(v perm.Code) error {
	if m.plan.Faulty(v) {
		return nil
	}
	if !v.Valid(m.cfg.N) {
		return fmt.Errorf("sim: %#v is not a processor of S_%d", v, m.cfg.N)
	}
	lost := v == m.TokenHolder()
	if lost {
		m.stats.TokenLost++
		m.cfg.Obs.Counter("sim.token_lost").Inc()
	}
	m.cfg.Obs.Counter("sim.failures").Inc()

	// One trace covers the whole failure handling: the fault event, the
	// repair phase with the engine's spans under it, and the outcome.
	op := m.cfg.Obs.StartOp("sim.op.fail")
	defer op.Done()
	if op.Enabled(obs.LevelInfo) {
		op.Log(obs.LevelInfo, "sim.fault",
			obs.F("vertex", v.StringN(m.cfg.N)),
			obs.F("token_lost", lost),
			obs.F("clock", m.clock))
	}

	span := op.Span("sim.phase.repair")
	rep, err := m.plan.RepairOp(op, v)
	span.End()
	if err != nil {
		if op.Enabled(obs.LevelError) {
			op.Log(obs.LevelError, "sim.halted",
				obs.F("vertex", v.StringN(m.cfg.N)), obs.F("error", err.Error()))
		}
		return fmt.Errorf("%w: %v", ErrHalted, err)
	}
	if op.Enabled(obs.LevelInfo) {
		op.Log(obs.LevelInfo, "sim.repair",
			obs.F("vertex", v.StringN(m.cfg.N)),
			obs.F("outcome", rep.Outcome.String()),
			obs.F("ring", rep.NewLen),
			obs.F("clock", m.clock))
	}

	switch rep.Outcome {
	case core.RepairAvoided:
		// A spare processor died; the ring never used it, so nothing to
		// re-route and nothing to charge.
		return nil
	case core.RepairSplice:
		m.stats.Splices++
		m.cfg.Obs.Counter("sim.splices").Inc()
		m.chargeRepair(rep.BlocksRerouted)
		// Ring positions before the spliced segment are untouched;
		// inside it the token restarts at the segment head; after it,
		// positions shifted down by the two shed vertices.
		delta := rep.OldLen - rep.NewLen
		switch {
		case m.token >= rep.SegmentStart+rep.SegmentOldLen:
			m.token -= delta
		case m.token >= rep.SegmentStart:
			m.token = rep.SegmentStart
		}
		return nil
	case core.RepairRebuild:
		m.stats.Reembeds++
		m.cfg.Obs.Counter("sim.embeds").Inc()
		m.chargeRepair(rep.BlocksRerouted)
		m.token = 0
		return nil
	}
	return fmt.Errorf("sim: internal: unexpected repair outcome %v", rep.Outcome)
}

// GuaranteedLength returns the paper's bound for the current fault
// count, when still within budget; otherwise 0.
func (m *Machine) GuaranteedLength() int {
	res := m.plan.Result()
	if !res.Guaranteed {
		return 0
	}
	return res.Guarantee
}
