// Package sim is a deterministic discrete-time simulator for a
// star-graph multiprocessor whose processes communicate over an
// embedded ring. It executes ring protocols hop by hop on the physical
// topology (every hop is checked against real star-graph adjacency and
// the live fault set), injects fail-stop vertex faults at runtime, and
// re-embeds the ring online using the paper's algorithm — accounting
// for the downtime each re-embedding costs.
//
// The simulator is the operational counterpart of the paper's
// motivation: a ring-structured computation that keeps running as
// processors die, paying exactly two ring slots per failure while the
// fault budget lasts. It backs the examples and the failure-injection
// tests.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/star"
)

// Config sizes a simulated machine. Costs are in abstract ticks.
type Config struct {
	// N is the star-graph dimension (>= 3).
	N int
	// HopCost is the latency of moving the token across one physical
	// link; 0 means 1.
	HopCost int64
	// ReembedCostPerBlock models the scheduler recomputing the
	// embedding: ticks per R4 block (n!/24 blocks); 0 means 1.
	ReembedCostPerBlock int64
	// Embed configures the underlying embedder. BestEffort additionally
	// lets the machine outlive its formal fault budget.
	Embed core.Config
	// Obs receives campaign accounting (sim.embeds, sim.failures,
	// sim.token_lost counters, the sim.ring_length gauge and
	// sim.phase.reembed spans). When Embed.Obs is unset it inherits
	// this registry. Instrumentation never feeds back into the
	// simulation, so determinism in (config, seed) is preserved.
	Obs *obs.Registry
}

// Stats accumulates over a machine's lifetime.
type Stats struct {
	Hops      int64 // physical link traversals
	Laps      int64 // completed ring circulations
	Reembeds  int   // ring reconstructions triggered by failures
	Downtime  int64 // ticks spent re-embedding
	Uptime    int64 // ticks spent moving the token
	TokenLost int   // failures that hit the current token holder
	// RingLengths records the ring length after the initial embedding
	// and after every re-embedding.
	RingLengths []int
}

// Machine is one simulated multiprocessor.
type Machine struct {
	cfg   Config
	g     star.Graph
	fs    *faults.Set
	ring  []perm.Code
	index map[perm.Code]int // ring position per vertex
	token int               // ring position of the token holder
	clock int64
	stats Stats
}

// ErrHalted reports that no ring survives the current fault set.
var ErrHalted = errors.New("sim: machine halted, no healthy ring remains")

// New boots a machine and embeds its initial ring.
func New(cfg Config) (*Machine, error) {
	if cfg.HopCost <= 0 {
		cfg.HopCost = 1
	}
	if cfg.ReembedCostPerBlock <= 0 {
		cfg.ReembedCostPerBlock = 1
	}
	if cfg.Embed.Obs == nil {
		cfg.Embed.Obs = cfg.Obs
	}
	m := &Machine{
		cfg: cfg,
		g:   star.New(cfg.N),
		fs:  faults.NewSet(cfg.N),
	}
	if err := m.reembed(); err != nil {
		return nil, err
	}
	m.stats.Reembeds = 0 // the boot embedding is not a re-embedding
	return m, nil
}

// Clock returns the current simulated time in ticks.
func (m *Machine) Clock() int64 { return m.clock }

// Stats returns a copy of the accumulated statistics.
func (m *Machine) Stats() Stats { return m.stats }

// RingLength returns the current ring length.
func (m *Machine) RingLength() int { return len(m.ring) }

// Ring returns the current embedded ring; callers must not modify it.
func (m *Machine) Ring() []perm.Code { return m.ring }

// Faults returns the number of failed processors so far.
func (m *Machine) Faults() int { return m.fs.NumVertices() }

// TokenHolder returns the processor currently holding the token.
func (m *Machine) TokenHolder() perm.Code { return m.ring[m.token] }

// reembed recomputes the ring for the current fault set and charges the
// downtime. The token restarts at ring position 0.
func (m *Machine) reembed() error {
	span := m.cfg.Obs.Span("sim.phase.reembed")
	res, err := core.Embed(m.cfg.N, m.fs, m.cfg.Embed)
	span.End()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHalted, err)
	}
	m.cfg.Obs.Counter("sim.embeds").Inc()
	m.cfg.Obs.Gauge("sim.ring_length").Set(int64(len(res.Ring)))
	m.ring = res.Ring
	m.index = make(map[perm.Code]int, len(res.Ring))
	for i, v := range res.Ring {
		m.index[v] = i
	}
	m.token = 0
	blocks := res.Blocks
	if blocks == 0 {
		blocks = 1
	}
	cost := m.cfg.ReembedCostPerBlock * int64(blocks)
	m.clock += cost
	m.stats.Downtime += cost
	m.stats.Reembeds++
	m.stats.RingLengths = append(m.stats.RingLengths, len(res.Ring))
	return nil
}

// Step moves the token to the next processor on the ring, validating
// the hop against the physical topology and the live fault set.
func (m *Machine) Step() error {
	from := m.ring[m.token]
	next := (m.token + 1) % len(m.ring)
	to := m.ring[next]
	if !m.g.Adjacent(from, to) {
		return fmt.Errorf("sim: internal: ring hop %s -> %s is not a physical link",
			from.StringN(m.cfg.N), to.StringN(m.cfg.N))
	}
	if m.fs.HasVertex(from) || m.fs.HasVertex(to) {
		return fmt.Errorf("sim: internal: token touched a failed processor")
	}
	m.token = next
	m.clock += m.cfg.HopCost
	m.stats.Uptime += m.cfg.HopCost
	m.stats.Hops++
	if m.token == 0 {
		m.stats.Laps++
	}
	return nil
}

// Circulate completes the given number of full ring laps.
func (m *Machine) Circulate(laps int) error {
	for l := 0; l < laps; l++ {
		for i := 0; i < len(m.ring); i++ {
			if err := m.Step(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Visit runs one lap, calling f at every processor the token reaches
// (starting with the current holder). It is the building block for
// reductions and broadcasts over the virtual ring.
func (m *Machine) Visit(f func(v perm.Code)) error {
	for i := 0; i < len(m.ring); i++ {
		f(m.ring[m.token])
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// FailVertex marks a processor failed at the current instant and, if
// the ring used it, re-embeds. Failing the token holder additionally
// counts a lost token (the protocol above it would have to recover by
// regeneration, which the simulator models as restarting the lap).
func (m *Machine) FailVertex(v perm.Code) error {
	if m.fs.HasVertex(v) {
		return nil
	}
	if !v.Valid(m.cfg.N) {
		return fmt.Errorf("sim: %#v is not a processor of S_%d", v, m.cfg.N)
	}
	if v == m.ring[m.token] {
		m.stats.TokenLost++
		m.cfg.Obs.Counter("sim.token_lost").Inc()
	}
	if err := m.fs.AddVertex(v); err != nil {
		return err
	}
	m.cfg.Obs.Counter("sim.failures").Inc()
	if _, onRing := m.index[v]; !onRing {
		// A spare processor died; the ring — which must still avoid it
		// in the future — survives as-is only if it never used it, which
		// is exactly the onRing check. Nothing to do.
		return nil
	}
	return m.reembed()
}

// GuaranteedLength returns the paper's bound for the current fault
// count, when still within budget; otherwise 0.
func (m *Machine) GuaranteedLength() int {
	if m.fs.NumVertices() > faults.MaxTolerated(m.cfg.N) {
		return 0
	}
	return perm.Factorial(m.cfg.N) - 2*m.fs.NumVertices()
}
