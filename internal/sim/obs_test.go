package sim

import (
	"testing"

	"repro/internal/obs"
)

// TestCampaignObsAccounting runs a small campaign with a registry and
// checks the counters mirror the deterministic Stats — and that the
// instrumented run reproduces the uninstrumented one exactly.
func TestCampaignObsAccounting(t *testing.T) {
	cfg := CampaignConfig{
		Machine:     Config{N: 5},
		Failures:    2,
		LapsBetween: 1,
		Seed:        42,
	}
	plain, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg.Machine.Obs = reg
	instrumented, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Clock != instrumented.Clock || plain.Hops != instrumented.Hops ||
		plain.FinalRing != instrumented.FinalRing {
		t.Errorf("instrumentation perturbed the simulation: %+v vs %+v", plain, instrumented)
	}
	// One boot embedding plus one full re-embedding per rebuild repair;
	// splices never run the cold pipeline.
	wantEmbeds := int64(1 + instrumented.Reembeds)
	if got := reg.Counter("sim.embeds").Value(); got != wantEmbeds {
		t.Errorf("sim.embeds = %d, want %d", got, wantEmbeds)
	}
	if got := reg.Counter("sim.splices").Value(); got != int64(instrumented.Splices) {
		t.Errorf("sim.splices = %d, want %d", got, instrumented.Splices)
	}
	if instrumented.Splices+instrumented.Reembeds != cfg.Failures {
		t.Errorf("splices %d + reembeds %d != %d on-ring failures",
			instrumented.Splices, instrumented.Reembeds, cfg.Failures)
	}
	if got := reg.Counter("sim.failures").Value(); got != int64(cfg.Failures) {
		t.Errorf("sim.failures = %d, want %d", got, cfg.Failures)
	}
	if got := reg.Gauge("sim.ring_length").Value(); got != int64(instrumented.FinalRing) {
		t.Errorf("sim.ring_length = %d, want %d", got, instrumented.FinalRing)
	}
	// The boot embedding is the only sim.phase.reembed span; online
	// failures are timed under sim.phase.repair instead.
	if got := reg.Histogram("sim.phase.reembed").Stats().Count; got != 1 {
		t.Errorf("sim.phase.reembed count = %d, want 1", got)
	}
	if got := reg.Histogram("sim.phase.repair").Stats().Count; got != int64(cfg.Failures) {
		t.Errorf("sim.phase.repair count = %d, want %d", got, cfg.Failures)
	}
	if got := reg.Counter("sim.token_lost").Value(); got != int64(instrumented.TokenLost) {
		t.Errorf("sim.token_lost = %d, want %d", got, instrumented.TokenLost)
	}
	// The embedder inherited the registry through Config.Embed: the cold
	// pipeline ran for the boot and every rebuild, and the repair
	// counters account for every splice.
	if reg.Histogram("core.phase.total").Stats().Count != wantEmbeds {
		t.Error("core phases not threaded through sim.Config.Embed")
	}
	if got := reg.Counter("core.repair.splices").Value(); got != int64(instrumented.Splices) {
		t.Errorf("core.repair.splices = %d, want %d", got, instrumented.Splices)
	}
}
