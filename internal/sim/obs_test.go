package sim

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCampaignObsAccounting runs a small campaign with a registry and
// checks the counters mirror the deterministic Stats — and that the
// instrumented run reproduces the uninstrumented one exactly.
func TestCampaignObsAccounting(t *testing.T) {
	cfg := CampaignConfig{
		Machine:     Config{N: 5},
		Failures:    2,
		LapsBetween: 1,
		Seed:        42,
	}
	plain, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg.Machine.Obs = reg
	instrumented, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Clock != instrumented.Clock || plain.Hops != instrumented.Hops ||
		plain.FinalRing != instrumented.FinalRing {
		t.Errorf("instrumentation perturbed the simulation: %+v vs %+v", plain, instrumented)
	}
	// One boot embedding plus one full re-embedding per rebuild repair;
	// splices never run the cold pipeline.
	wantEmbeds := int64(1 + instrumented.Reembeds)
	if got := reg.Counter("sim.embeds").Value(); got != wantEmbeds {
		t.Errorf("sim.embeds = %d, want %d", got, wantEmbeds)
	}
	if got := reg.Counter("sim.splices").Value(); got != int64(instrumented.Splices) {
		t.Errorf("sim.splices = %d, want %d", got, instrumented.Splices)
	}
	if instrumented.Splices+instrumented.Reembeds != cfg.Failures {
		t.Errorf("splices %d + reembeds %d != %d on-ring failures",
			instrumented.Splices, instrumented.Reembeds, cfg.Failures)
	}
	if got := reg.Counter("sim.failures").Value(); got != int64(cfg.Failures) {
		t.Errorf("sim.failures = %d, want %d", got, cfg.Failures)
	}
	if got := reg.Gauge("sim.ring_length").Value(); got != int64(instrumented.FinalRing) {
		t.Errorf("sim.ring_length = %d, want %d", got, instrumented.FinalRing)
	}
	// The boot embedding is the only sim.phase.reembed span; online
	// failures are timed under sim.phase.repair instead.
	if got := reg.Histogram("sim.phase.reembed").Stats().Count; got != 1 {
		t.Errorf("sim.phase.reembed count = %d, want 1", got)
	}
	if got := reg.Histogram("sim.phase.repair").Stats().Count; got != int64(cfg.Failures) {
		t.Errorf("sim.phase.repair count = %d, want %d", got, cfg.Failures)
	}
	if got := reg.Counter("sim.token_lost").Value(); got != int64(instrumented.TokenLost) {
		t.Errorf("sim.token_lost = %d, want %d", got, instrumented.TokenLost)
	}
	// The embedder inherited the registry through Config.Embed: the cold
	// pipeline ran for the boot and every rebuild, and the repair
	// counters account for every splice.
	if reg.Histogram("core.phase.total").Stats().Count != wantEmbeds {
		t.Error("core phases not threaded through sim.Config.Embed")
	}
	if got := reg.Counter("core.repair.splices").Value(); got != int64(instrumented.Splices) {
		t.Errorf("core.repair.splices = %d, want %d", got, instrumented.Splices)
	}
}

// TestCampaignEventLog checks the structured event stream: every
// injected failure emits a sim.fault and a sim.repair record (plus the
// embedder's core.repair), per-hop token moves stay silent above debug
// level, and instrumentation still does not perturb the simulation.
func TestCampaignEventLog(t *testing.T) {
	cfg := CampaignConfig{
		Machine:     Config{N: 5},
		Failures:    2,
		LapsBetween: 1,
		Seed:        42,
	}
	plain, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	reg := obs.NewRegistry()
	reg.SetEventLog(obs.NewEventLog(&buf, obs.LevelInfo, reg.Clock()))
	cfg.Machine.Obs = reg
	logged, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Clock != logged.Clock || plain.Hops != logged.Hops || plain.FinalRing != logged.FinalRing {
		t.Errorf("event logging perturbed the simulation: %+v vs %+v", plain, logged)
	}

	recs, err := obs.ReadLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, r := range recs {
		count[r.Event]++
	}
	if count["sim.fault"] != cfg.Failures {
		t.Errorf("sim.fault events = %d, want %d", count["sim.fault"], cfg.Failures)
	}
	if count["sim.repair"] != cfg.Failures {
		t.Errorf("sim.repair events = %d, want %d", count["sim.repair"], cfg.Failures)
	}
	// The plan's own repair narrative rides along through the inherited
	// registry, as does every cold embedding.
	if count["core.repair"] != cfg.Failures {
		t.Errorf("core.repair events = %d, want %d", count["core.repair"], cfg.Failures)
	}
	if want := 1 + logged.Reembeds; count["core.embed"] != want {
		t.Errorf("core.embed events = %d, want %d", count["core.embed"], want)
	}
	if count["sim.token_move"] != 0 {
		t.Errorf("token moves leaked into an info-level log: %d", count["sim.token_move"])
	}
	for _, r := range recs {
		if r.Event == "sim.repair" {
			out, _ := r.Fields["outcome"].(string)
			if out != "splice" && out != "rebuild" && out != "avoided" {
				t.Errorf("sim.repair outcome %q", out)
			}
		}
	}

	// At debug level the token's every hop is on the record.
	var dbuf strings.Builder
	dreg := obs.NewRegistry()
	dreg.SetEventLog(obs.NewEventLog(&dbuf, obs.LevelDebug, dreg.Clock()))
	cfg.Machine.Obs = dreg
	debugRun, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drecs, err := obs.ReadLog(strings.NewReader(dbuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	for _, r := range drecs {
		if r.Event == "sim.token_move" {
			moves++
		}
	}
	if int64(moves) != debugRun.Hops {
		t.Errorf("sim.token_move events = %d, want one per hop (%d)", moves, debugRun.Hops)
	}
}
