package sim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestAllReduce(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	data := map[perm.Code]int{}
	want := 0
	for _, v := range m.Ring() {
		d := rng.Intn(100)
		data[v] = d
		want += d
	}
	got, err := m.AllReduce(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("AllReduce = %d, want %d", got, want)
	}
	// Two laps of hops were spent.
	if m.Stats().Hops != int64(2*m.RingLength()) {
		t.Fatalf("hops %d", m.Stats().Hops)
	}
}

func TestAllReduceRejectsNonParticipant(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Fail a processor so the ring misses two vertices; keying data by
	// an off-ring processor must error.
	victim := m.Ring()[0]
	if err := m.FailVertex(victim); err != nil {
		t.Fatal(err)
	}
	onRing := map[perm.Code]bool{}
	for _, v := range m.Ring() {
		onRing[v] = true
	}
	var off perm.Code
	for r := 0; r < 120; r++ {
		v := perm.Pack(perm.Unrank(5, r))
		if !onRing[v] {
			off = v
			break
		}
	}
	_, err = m.AllReduce(map[perm.Code]int{off: 1})
	if !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("want ErrNotParticipant, got %v", err)
	}
}

func TestAllReduceAfterFailover(t *testing.T) {
	m, err := New(Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := m.FailVertex(m.Ring()[k*7]); err != nil {
			t.Fatal(err)
		}
	}
	data := map[perm.Code]int{}
	want := 0
	for i, v := range m.Ring() {
		data[v] = i
		want += i
	}
	got, err := m.AllReduce(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-failover AllReduce = %d, want %d", got, want)
	}
}

func TestBroadcast(t *testing.T) {
	m, err := New(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if n != m.RingLength() {
		t.Fatalf("broadcast reached %d of %d", n, m.RingLength())
	}
}

func TestPrefixSums(t *testing.T) {
	m, err := New(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := map[perm.Code]int{}
	for i, v := range m.Ring() {
		data[v] = i + 1
	}
	// The token starts at ring position 0, so the scan follows ring
	// order from there.
	sums, err := m.PrefixSums(data)
	if err != nil {
		t.Fatal(err)
	}
	acc := 0
	for _, v := range m.Ring() {
		acc += data[v]
		if sums[v] != acc {
			t.Fatalf("prefix at %s = %d, want %d", v.StringN(4), sums[v], acc)
		}
	}
}
