package sim

import (
	"errors"
	"fmt"

	"repro/internal/perm"
)

// Ring collectives: the classic communication patterns a virtual ring
// interconnect exists to serve, executed hop by hop on the embedded
// ring with full accounting. Each collective validates its own
// round-trip so a broken embedding can never produce a silently wrong
// result.

// ErrNotParticipant reports data keyed by a processor that is not on
// the current ring.
var ErrNotParticipant = errors.New("sim: processor is not on the current ring")

// AllReduce sums one int per participating processor by circulating an
// accumulator token (one lap) and broadcasting the total (a second
// lap). It returns the global sum. Data must contain exactly the
// processors currently on the ring; missing entries contribute zero,
// unknown entries are an error.
func (m *Machine) AllReduce(data map[perm.Code]int) (int, error) {
	for v := range data {
		if !m.plan.OnRing(v) {
			return 0, fmt.Errorf("%w: %s", ErrNotParticipant, v.StringN(m.cfg.N))
		}
	}
	sum := 0
	if err := m.Visit(func(v perm.Code) { sum += data[v] }); err != nil {
		return 0, err
	}
	// Broadcast lap: every processor learns the sum (modeled as one
	// more circulation; the per-processor delivery is implicit).
	if err := m.Circulate(1); err != nil {
		return 0, err
	}
	return sum, nil
}

// Broadcast delivers a payload marker from the current token holder to
// every participant in one lap, returning the number of deliveries.
func (m *Machine) Broadcast() (int, error) {
	delivered := 0
	if err := m.Visit(func(perm.Code) { delivered++ }); err != nil {
		return 0, err
	}
	return delivered, nil
}

// PrefixSums computes, for every ring position, the sum of the data at
// positions 0..i in ring order — the scan primitive of systolic ring
// algorithms. One lap of hops.
func (m *Machine) PrefixSums(data map[perm.Code]int) (map[perm.Code]int, error) {
	for v := range data {
		if !m.plan.OnRing(v) {
			return nil, fmt.Errorf("%w: %s", ErrNotParticipant, v.StringN(m.cfg.N))
		}
	}
	out := make(map[perm.Code]int, m.RingLength())
	acc := 0
	if err := m.Visit(func(v perm.Code) {
		acc += data[v]
		out[v] = acc
	}); err != nil {
		return nil, err
	}
	return out, nil
}
