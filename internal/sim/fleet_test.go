package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

// TestRunFleet runs four machines off one parent registry and checks
// the three telemetry views: per-machine child snapshots (self-relative
// keys, machine identity in Labels), the parent snapshot (every series
// labeled by machine), and the aggregated fleet view (counters summed
// across machines, identity intersected away).
func TestRunFleet(t *testing.T) {
	reg := obs.NewRegistry()
	fc := FleetConfig{
		Machines: 4,
		Campaign: CampaignConfig{
			Machine:     Config{N: 5},
			Failures:    2,
			LapsBetween: 1,
			Seed:        42,
		},
		Obs: reg,
	}
	rep, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reports) != 4 || len(rep.Snapshots) != 4 {
		t.Fatalf("fleet size: %d reports, %d snapshots", len(rep.Reports), len(rep.Snapshots))
	}

	var embeds, failures int64
	for i, snap := range rep.Snapshots {
		id := fmt.Sprintf("m%d", i)
		if rep.IDs[i] != id {
			t.Errorf("IDs[%d] = %q, want %q", i, rep.IDs[i], id)
		}
		if snap.Labels["machine"] != id {
			t.Errorf("machine %d snapshot labels = %v", i, snap.Labels)
		}
		// Child snapshots are self-relative: plain keys, no machine label.
		if snap.Counters["sim.embeds"] < 1 {
			t.Errorf("machine %s recorded %d embeds", id, snap.Counters["sim.embeds"])
		}
		if got := snap.Counters["sim.failures"]; got != int64(fc.Campaign.Failures) {
			t.Errorf("machine %s sim.failures = %d, want %d", id, got, fc.Campaign.Failures)
		}
		embeds += snap.Counters["sim.embeds"]
		failures += snap.Counters["sim.failures"]

		// Each machine is the deterministic solo campaign at its seed:
		// identity labels must not perturb the simulation.
		solo := fc.Campaign
		solo.Seed += int64(i)
		want, err := RunCampaign(solo)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Reports[i]
		if got.Clock != want.Clock || got.Hops != want.Hops || got.FinalRing != want.FinalRing {
			t.Errorf("machine %s diverged from solo campaign: %+v vs %+v", id, got, want)
		}
	}

	// The parent sees every machine's series, labeled.
	parent := reg.Snapshot()
	for i := range rep.IDs {
		key := fmt.Sprintf(`sim.embeds{machine="m%d"}`, i)
		if parent.Counters[key] != rep.Snapshots[i].Counters["sim.embeds"] {
			t.Errorf("parent %s = %d, want %d; counters %v",
				key, parent.Counters[key], rep.Snapshots[i].Counters["sim.embeds"], parent.Counters)
		}
	}

	// The fleet view merges the children: counters summed, identity gone.
	if got := rep.Fleet.Counters["sim.embeds"]; got != embeds {
		t.Errorf("fleet sim.embeds = %d, want %d", got, embeds)
	}
	if got := rep.Fleet.Counters["sim.failures"]; got != failures {
		t.Errorf("fleet sim.failures = %d, want %d", got, failures)
	}
	if _, ok := rep.Fleet.Labels["machine"]; ok {
		t.Errorf("fleet view kept a machine identity: %v", rep.Fleet.Labels)
	}
	if got := rep.Fleet.Histograms["sim.phase.repair"].Count; got != failures {
		t.Errorf("fleet sim.phase.repair count = %d, want %d", got, failures)
	}
}

// TestFleetOpenMetrics renders both the per-machine-labeled parent
// exposition and the aggregated fleet exposition and validates them
// against the OpenMetrics grammar — the same checks starmon
// -check-metrics applies in the CI obs-smoke leg.
func TestFleetOpenMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := RunFleet(FleetConfig{
		Machines: 4,
		Campaign: CampaignConfig{
			Machine:     Config{N: 5},
			Failures:    1,
			LapsBetween: 1,
			Seed:        7,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := export.WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := export.ValidateOpenMetricsDetail(buf.Bytes()); err != nil {
		t.Fatalf("parent exposition invalid: %v\n%s", err, buf.String())
	}
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf(`machine="m%d"`, i)
		if !strings.Contains(buf.String(), want) {
			t.Errorf("parent exposition missing %s samples", want)
		}
	}

	buf.Reset()
	if err := export.WriteOpenMetrics(&buf, rep.Fleet); err != nil {
		t.Fatal(err)
	}
	if _, _, err := export.ValidateOpenMetricsDetail(buf.Bytes()); err != nil {
		t.Fatalf("fleet exposition invalid: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), `machine="`) {
		t.Error("fleet exposition leaked machine labels")
	}
	if !strings.Contains(buf.String(), "sim_embeds_total") {
		t.Errorf("fleet exposition missing sim_embeds_total:\n%s", buf.String())
	}
}

// TestFleetEventLogStamping attaches an NDJSON event log to the parent
// registry and checks every machine's records are stamped with its
// identity — the fix for per-machine events aliasing into one
// indistinguishable stream.
func TestFleetEventLogStamping(t *testing.T) {
	var buf strings.Builder
	reg := obs.NewRegistry()
	reg.SetEventLog(obs.NewEventLog(&buf, obs.LevelInfo, reg.Clock()))
	_, err := RunFleet(FleetConfig{
		Machines: 4,
		Campaign: CampaignConfig{
			Machine:     Config{N: 5},
			Failures:    2,
			LapsBetween: 1,
			Seed:        42,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	perMachine := map[string]int{}
	for _, r := range recs {
		if r.Event != "sim.fault" {
			continue
		}
		id, _ := r.Fields["machine"].(string)
		if id == "" {
			t.Fatalf("sim.fault record missing machine stamp: %+v", r)
		}
		perMachine[id]++
	}
	if len(perMachine) != 4 {
		t.Fatalf("sim.fault events from %d machines, want 4: %v", len(perMachine), perMachine)
	}
	for id, n := range perMachine {
		if n != 2 {
			t.Errorf("machine %s emitted %d sim.fault events, want 2", id, n)
		}
	}
}
