// Package harness drives the evaluation suite. The paper is a theory
// paper without experimental tables, so the harness reproduces each of
// its quantitative claims as a table or data series (experiments T1-T6,
// F1-F8 and the A1 ablations, indexed in DESIGN.md): Theorem 1's length guarantee and its
// worst-case optimality, the improvements over the Tseng-Chang-Sheu and
// Latifi-Bagherzadeh baselines, the edge-fault and mixed-fault
// extensions, the scaling of the construction itself, the latency of
// the incremental repair engine, and the memory profile of the
// streaming (skeleton-form) pipeline.
package harness

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Cell is one table cell: the rendered text plus the typed value it
// came from, so machine consumers (starsweep -json, cmd/starbench) read
// numbers instead of re-parsing "150µs"-style strings. Exactly one of
// Num/NS is set for numeric cells; plain text cells carry neither.
type Cell struct {
	Text string `json:"text"`
	// Num is the numeric value for count/ratio cells (ints and floats).
	Num *float64 `json:"num,omitempty"`
	// NS is the duration in nanoseconds for timing cells.
	NS *int64 `json:"ns,omitempty"`
}

// TextCell wraps a plain, untyped cell.
func TextCell(s string) Cell { return Cell{Text: s} }

// NumCell pairs rendered text with its numeric value.
func NumCell(text string, v float64) Cell { return Cell{Text: text, Num: &v} }

// DurationCell renders d with time.Duration formatting and keeps the
// exact nanosecond value.
func DurationCell(d time.Duration) Cell {
	ns := int64(d)
	return Cell{Text: d.String(), NS: &ns}
}

// ptrInt64 is for building Cells whose text rounds a duration the NS
// field keeps exact.
func ptrInt64(v int64) *int64 { return &v }

// Table is a rendered experiment result: a titled grid plus the
// commentary tying it back to the paper's claim. The JSON tags shape
// starsweep -json output.
type Table struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Caption string   `json:"caption"`
	Headers []string `json:"headers"`
	Rows    [][]Cell `json:"rows"`
}

// AddRow appends a row of cells. Ints, floats and time.Durations become
// typed cells (formatting matches the old stringified rows exactly:
// "%v" for ints, "%.2f" for floats, Duration.String for durations);
// pre-built Cells pass through for custom text such as "n/a" or "12x";
// anything else is formatted with %v as plain text.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case Cell:
			row[i] = v
		case time.Duration:
			row[i] = DurationCell(v)
		case int:
			row[i] = NumCell(strconv.Itoa(v), float64(v))
		case int64:
			row[i] = NumCell(strconv.FormatInt(v, 10), float64(v))
		case float64:
			row[i] = NumCell(fmt.Sprintf("%.2f", v), v)
		default:
			row[i] = TextCell(fmt.Sprintf("%v", c))
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c.Text) > widths[i] {
				widths[i] = len(c.Text)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(cellTexts(row))
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "\n%s\n", wrap(t.Caption, 72))
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavored markdown (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(cellTexts(row), " | "))
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "\n%s\n", t.Caption)
	}
	fmt.Fprintln(w)
}

// cellTexts projects a row onto its rendered strings.
func cellTexts(row []Cell) []string {
	out := make([]string, len(row))
	for i, c := range row {
		out[i] = c.Text
	}
	return out
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func wrap(s string, width int) string {
	words := strings.Fields(s)
	var b strings.Builder
	col := 0
	for i, w := range words {
		if col+len(w)+1 > width && col > 0 {
			b.WriteByte('\n')
			col = 0
		} else if i > 0 {
			b.WriteByte(' ')
			col++
		}
		b.WriteString(w)
		col += len(w)
	}
	return b.String()
}

// SweepConfig sizes the sweeps. The zero value is upgraded by Defaults.
type SweepConfig struct {
	// MaxN bounds the largest dimension swept (experiments use smaller
	// ranges where exhaustiveness demands it). Default 8; F2 scales to
	// MaxN+1.
	MaxN int
	// Seeds is the number of random fault sets per configuration.
	Seeds int
	// Quick shrinks everything for smoke runs.
	Quick bool
	// Clock is the time source behind the wall-clock measurements (F2,
	// A1); nil means obs.Wall. Tests inject an obs.Manual clock to pin
	// timing columns.
	Clock obs.Clock
	// Obs receives sweep telemetry: one harness.exp.<ID> span per
	// experiment, plus whatever the embedder records when the experiment
	// threads the registry through (F2 does). nil disables it.
	Obs *obs.Registry
}

// Defaults fills unset fields.
func (c SweepConfig) Defaults() SweepConfig {
	if c.MaxN == 0 {
		c.MaxN = 8
	}
	if c.Seeds == 0 {
		c.Seeds = 10
	}
	if c.Quick {
		if c.MaxN > 7 {
			c.MaxN = 7
		}
		c.Seeds = 3
	}
	if c.Clock == nil {
		c.Clock = obs.Wall
	}
	return c
}

// clock returns the configured time source, defaulting to obs.Wall so
// experiments work on configs that skipped Defaults.
func (c SweepConfig) clock() obs.Clock {
	if c.Clock == nil {
		return obs.Wall
	}
	return c.Clock
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg SweepConfig) ([]*Table, error)
}

// All lists every experiment in DESIGN.md's index order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Theorem 1 length guarantee across fault distributions", T1},
		{"T2", "Worst-case optimality against the bipartite bound", T2},
		{"T3", "Improvement over Tseng-Chang-Sheu (n!-4|Fv|)", T3},
		{"T4", "Clustered faults vs Latifi-Bagherzadeh (n!-m!)", T4},
		{"T5", "Edge faults: Hamiltonian rings with |Fe| <= n-3", T5},
		{"T6", "Mixed faults: n!-2|Fv| with |Fv|+|Fe| <= n-3", T6},
		{"F1", "Series: ring length vs |Fv| per algorithm (n=7)", F1},
		{"F2", "Series: construction time and memory vs n", F2},
		{"F3", "Beyond worst case: fault parity mix (n=7)", F3},
		{"F4", "Extension: longest s-t paths by endpoint parity (n=7)", F4},
		{"F5", "Operational campaign on the machine simulator", F5},
		{"F6", "Empirical edge-fault tolerance beyond the budget", F6},
		{"F7", "Repair latency: splice fast path vs full rebuild", F7},
		{"F8", "Streaming scaling: skeleton-form embed + stream verify", F8},
		{"A1", "Ablations: cache, branch ordering, greedy separation", A1},
	}
}

// Collect runs the named experiment (or all of them for "all") and
// returns the tables, timing each experiment under a harness.exp.<ID>
// span when cfg.Obs is set.
func Collect(id string, cfg SweepConfig) ([]*Table, error) {
	cfg = cfg.Defaults()
	var out []*Table
	matched := false
	for _, e := range All() {
		if id != "all" && !strings.EqualFold(id, e.ID) {
			continue
		}
		matched = true
		span := cfg.Obs.Span("harness.exp." + e.ID)
		tables, err := e.Run(cfg)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		out = append(out, tables...)
	}
	if !matched && id != "all" {
		return nil, fmt.Errorf("harness: unknown experiment %q", id)
	}
	return out, nil
}

// Run executes the named experiment (or all of them for "all") and
// prints its tables to w.
func Run(w io.Writer, id string, cfg SweepConfig) error {
	tables, err := Collect(id, cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}
