package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/pathsearch"
	"repro/internal/perm"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/substar"
)

// distribution names a fault generator used in the sweeps.
type distribution struct {
	name string
	gen  func(n, k int, rng *rand.Rand) (*faults.Set, error)
}

func distributions() []distribution {
	return []distribution{
		{"uniform", func(n, k int, rng *rand.Rand) (*faults.Set, error) {
			return faults.RandomVertices(n, k, rng), nil
		}},
		{"same-partite", func(n, k int, rng *rand.Rand) (*faults.Set, error) {
			return faults.SamePartiteVertices(n, k, 0, rng), nil
		}},
		{"clustered", func(n, k int, rng *rand.Rand) (*faults.Set, error) {
			m := 3
			for perm.Factorial(m) < k {
				m++
			}
			fs, _, err := faults.ClusteredVertices(n, k, m, rng)
			return fs, err
		}},
	}
}

// T1 validates Theorem 1: every embedding meets n! - 2|Fv|, for every
// dimension, fault count and distribution; small configurations are
// swept exhaustively over all fault positions.
func T1(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "T1",
		Title: "Theorem 1: healthy ring of length >= n!-2|Fv| (|Fv| <= n-3)",
		Caption: "Every trial re-verified: simple, closed, fault-free, length >= guarantee. " +
			"min/max lengths are across trials; 'exhaustive' sweeps every fault placement.",
		Headers: []string{"n", "|Fv|", "distribution", "trials", "min len", "max len", "guarantee", "ok"},
	}
	// Exhaustive: S4 with every single fault; S5 with every fault pair
	// (its complete budget); S6 with every single fault.
	if err := t1Exhaustive(t, 4, 1, cfg.Obs); err != nil {
		return nil, err
	}
	for k := 1; k <= 2; k++ {
		if err := t1Exhaustive(t, 5, k, cfg.Obs); err != nil {
			return nil, err
		}
	}
	if err := t1Exhaustive(t, 6, 1, cfg.Obs); err != nil {
		return nil, err
	}
	for n := 6; n <= cfg.MaxN; n++ {
		for k := 0; k <= faults.MaxTolerated(n); k++ {
			for _, d := range distributions() {
				if d.name == "clustered" && k == 0 {
					continue
				}
				minLen, maxLen := 1<<62, 0
				want := perm.Factorial(n) - 2*k
				for seed := 0; seed < cfg.Seeds; seed++ {
					rng := rand.New(rand.NewSource(int64(seed + 7919*n + 104729*k)))
					fs, err := d.gen(n, k, rng)
					if err != nil {
						return nil, fmt.Errorf("n=%d k=%d %s: %w", n, k, d.name, err)
					}
					res, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
					if err != nil {
						return nil, fmt.Errorf("n=%d k=%d %s: %w", n, k, d.name, err)
					}
					if res.Len() < want {
						return nil, fmt.Errorf("n=%d k=%d %s: len %d < %d", n, k, d.name, res.Len(), want)
					}
					if res.Len() < minLen {
						minLen = res.Len()
					}
					if res.Len() > maxLen {
						maxLen = res.Len()
					}
				}
				t.AddRow(n, k, d.name, cfg.Seeds, minLen, maxLen, want, "yes")
			}
		}
	}
	return []*Table{t}, nil
}

// t1Exhaustive sweeps every k-subset of vertex faults in S_n (only
// sensible for tiny n).
func t1Exhaustive(t *Table, n, k int, reg *obs.Registry) error {
	total := perm.Factorial(n)
	want := total - 2*k
	minLen, maxLen, trials := 1<<62, 0, 0
	var rec func(start int, picked []int) error
	rec = func(start int, picked []int) error {
		if len(picked) == k {
			fs := faults.NewSet(n)
			for _, r := range picked {
				if err := fs.AddVertex(perm.Pack(perm.Unrank(n, r))); err != nil {
					return err
				}
			}
			res, err := core.Embed(n, fs, core.Config{Obs: reg})
			if err != nil {
				return fmt.Errorf("exhaustive n=%d %v: %w", n, picked, err)
			}
			if res.Len() < want {
				return fmt.Errorf("exhaustive n=%d %v: len %d < %d", n, picked, res.Len(), want)
			}
			trials++
			if res.Len() < minLen {
				minLen = res.Len()
			}
			if res.Len() > maxLen {
				maxLen = res.Len()
			}
			return nil
		}
		for r := start; r < total; r++ {
			if err := rec(r+1, append(picked, r)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil); err != nil {
		return err
	}
	t.AddRow(n, k, "exhaustive", trials, minLen, maxLen, want, "yes")
	return nil
}

// T2 certifies worst-case optimality: with all faults in one partite
// set the bipartite ceiling equals n! - 2|Fv| and the algorithm attains
// it exactly; on S4 an exhaustive longest-cycle search independently
// confirms that no longer cycle exists for any fault placement.
func T2(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "T2",
		Title: "Optimality: same-partite faults meet the bipartite ceiling exactly",
		Caption: "ceiling = n! - 2*max(f_even, f_odd) bounds ANY healthy cycle. With all " +
			"faults on one side it equals the guarantee, so the embedded ring is longest " +
			"possible. The S4 row is certified by exhaustive longest-cycle search.",
		Headers: []string{"n", "|Fv|", "achieved", "ceiling", "achieved=ceiling", "certification"},
	}
	// Exhaustive S4 certification: for every vertex fault, the longest
	// cycle found by unbounded search is exactly 22.
	worst := 0
	best := 1 << 62
	for f := 0; f < pathsearch.BlockOrder; f++ {
		_, l := pathsearch.Canon.LongestCycleAvoiding(1<<uint(f), nil)
		if l > worst {
			worst = l
		}
		if l < best {
			best = l
		}
	}
	if best != 22 || worst != 22 {
		return nil, fmt.Errorf("T2: S4 exhaustive longest cycle in [%d,%d], want 22", best, worst)
	}
	t.AddRow(4, 1, 22, 22, "yes", "exhaustive search, all 24 fault positions")

	for n := 5; n <= cfg.MaxN; n++ {
		k := faults.MaxTolerated(n)
		rng := rand.New(rand.NewSource(int64(n)))
		fs := faults.SamePartiteVertices(n, k, 0, rng)
		res, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}
		ceiling := check.BipartiteUpperBound(n, fs)
		eq := "yes"
		if res.Len() != ceiling {
			eq = "NO"
		}
		t.AddRow(n, k, res.Len(), ceiling, eq, "bipartite counting bound")
	}
	return []*Table{t}, nil
}

// T3 compares against Tseng-Chang-Sheu on identical fault sets.
func T3(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "T3",
		Title: "Paper (n!-2|Fv|) vs Tseng et al. (n!-4|Fv|) on identical fault sets",
		Caption: "Both algorithms run on the same fault sets; lengths are means over seeds. " +
			"The guarantee gap is exactly 2|Fv|; the measured gap matches because both " +
			"constructions realize their bounds.",
		Headers: []string{"n", "|Fv|", "paper len", "tseng len", "paper guar", "tseng guar", "gap"},
	}
	for n := 5; n <= cfg.MaxN; n++ {
		for k := 1; k <= faults.MaxTolerated(n); k++ {
			var sumP, sumT int
			for seed := 0; seed < cfg.Seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(31*seed + n*1000 + k)))
				fs := faults.RandomVertices(n, k, rng)
				p, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
				if err != nil {
					return nil, err
				}
				q, err := baseline.Tseng(n, fs, core.Config{Obs: cfg.Obs})
				if err != nil {
					return nil, err
				}
				if p.Len() < p.Guarantee {
					return nil, fmt.Errorf("T3: paper under its guarantee (n=%d k=%d)", n, k)
				}
				if len(q.Ring) < q.Guarantee {
					return nil, fmt.Errorf("T3: baseline under its guarantee (n=%d k=%d)", n, k)
				}
				sumP += p.Len()
				sumT += len(q.Ring)
			}
			meanP := float64(sumP) / float64(cfg.Seeds)
			meanT := float64(sumT) / float64(cfg.Seeds)
			t.AddRow(n, k, meanP, meanT,
				perm.Factorial(n)-2*k, perm.Factorial(n)-4*k, meanP-meanT)
		}
	}
	return []*Table{t}, nil
}

// T4 charts the clustered regime: guarantee gap m! - 2|Fv| flips sign at
// the crossover 2|Fv| = m!.
func T4(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "T4",
		Title: "Clustered faults: paper vs Latifi-Bagherzadeh (n!-m!)",
		Caption: "All faults inside one S_m. The guarantee gap is m!-2|Fv|: the paper wins " +
			"whenever faults do not pack into a tiny cluster (2|Fv| < m!), and the clustered " +
			"bound wins below the crossover 2|Fv| = m! — the regime it was designed for.",
		Headers: []string{"n", "m", "|Fv|", "paper len", "latifi len", "paper guar", "latifi guar", "winner"},
	}
	for n := 5; n <= cfg.MaxN; n++ {
		for _, m := range []int{2, 3, 4} {
			if m >= n {
				continue
			}
			k := faults.MaxTolerated(n)
			if f := perm.Factorial(m); k > f {
				k = f
			}
			rng := rand.New(rand.NewSource(int64(n*100 + m)))
			fs, _, err := faults.ClusteredVertices(n, k, m, rng)
			if err != nil {
				return nil, err
			}
			p, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			q, err := baseline.Latifi(n, fs, core.Config{Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			winner := "paper"
			switch {
			case q.Guarantee > p.Guarantee:
				winner = "latifi"
			case q.Guarantee == p.Guarantee:
				winner = "tie"
			}
			t.AddRow(n, q.M, k, p.Len(), len(q.Ring), p.Guarantee, q.Guarantee, winner)
		}
	}
	return []*Table{t}, nil
}

// T5 checks the edge-fault companion: |Fe| <= n-3 leaves the ring
// Hamiltonian.
func T5(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:      "T5",
		Title:   "Edge faults only: Hamiltonian ring (length n!) with |Fe| <= n-3",
		Caption: "Vertex count is unreduced: the block search routes around faulty edges and junction selection avoids faulty crossing edges.",
		Headers: []string{"n", "|Fe|", "trials", "min len", "n!", "hamiltonian"},
	}
	for n := 4; n <= cfg.MaxN; n++ {
		for k := 1; k <= faults.MaxTolerated(n); k++ {
			minLen := 1 << 62
			for seed := 0; seed < cfg.Seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(17*seed + n*100 + k)))
				fs := faults.RandomEdges(n, k, rng)
				res, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
				if err != nil {
					return nil, fmt.Errorf("T5 n=%d k=%d: %w", n, k, err)
				}
				if res.Len() < minLen {
					minLen = res.Len()
				}
			}
			ok := "yes"
			if minLen != perm.Factorial(n) {
				ok = "NO"
			}
			t.AddRow(n, k, cfg.Seeds, minLen, perm.Factorial(n), ok)
		}
	}
	return []*Table{t}, nil
}

// T6 checks the mixed-fault extension from the concluding remarks.
func T6(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:      "T6",
		Title:   "Mixed faults: length >= n!-2|Fv| whenever |Fv|+|Fe| <= n-3",
		Caption: "Every split of the budget between vertex and edge faults; the loss depends only on |Fv|.",
		Headers: []string{"n", "|Fv|", "|Fe|", "trials", "min len", "guarantee", "ok"},
	}
	for n := 5; n <= cfg.MaxN; n++ {
		budget := faults.MaxTolerated(n)
		for kv := 0; kv <= budget; kv++ {
			ke := budget - kv
			minLen := 1 << 62
			want := perm.Factorial(n) - 2*kv
			for seed := 0; seed < cfg.Seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(13*seed + n*50 + kv)))
				fs := faults.Mixed(n, kv, ke, rng)
				res, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
				if err != nil {
					return nil, fmt.Errorf("T6 n=%d kv=%d ke=%d: %w", n, kv, ke, err)
				}
				if res.Len() < minLen {
					minLen = res.Len()
				}
			}
			ok := "yes"
			if minLen < want {
				ok = "NO"
			}
			t.AddRow(n, kv, ke, cfg.Seeds, minLen, want, ok)
		}
	}
	return []*Table{t}, nil
}

// F1 produces the headline series: ring length vs |Fv| for each
// algorithm at n=7, plus the bipartite ceiling.
func F1(cfg SweepConfig) ([]*Table, error) {
	n := 7
	if cfg.MaxN < 7 {
		n = cfg.MaxN
	}
	t := &Table{
		ID:    "F1",
		Title: fmt.Sprintf("Ring length vs |Fv| per algorithm (n=%d, uniform faults, mean of %d seeds)", n, cfg.Seeds),
		Caption: "The data behind the paper's comparison: the paper tracks the ceiling at " +
			"distance 2|Fv| from n!, Tseng at 4|Fv|; the clustered baseline depends on how " +
			"tightly the random faults happen to cluster (here: not at all, so m is large and " +
			"its guarantee collapses).",
		Headers: []string{"|Fv|", "ceiling(worst)", "paper", "tseng", "latifi"},
	}
	for k := 0; k <= faults.MaxTolerated(n); k++ {
		var sumP, sumT float64
		latifi := "n/a"
		var sumL float64
		latifiOK := 0
		for seed := 0; seed < cfg.Seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(97*seed + k)))
			fs := faults.RandomVertices(n, k, rng)
			p, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			sumP += float64(p.Len())
			q, err := baseline.Tseng(n, fs, core.Config{Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			sumT += float64(len(q.Ring))
			if k > 0 {
				if l, err := baseline.Latifi(n, fs, core.Config{Obs: cfg.Obs}); err == nil {
					sumL += float64(len(l.Ring))
					latifiOK++
				}
			}
		}
		if latifiOK > 0 {
			latifi = fmt.Sprintf("%.2f", sumL/float64(latifiOK))
		}
		t.AddRow(k, perm.Factorial(n)-2*k,
			sumP/float64(cfg.Seeds), sumT/float64(cfg.Seeds), latifi)
	}
	return []*Table{t}, nil
}

// F2 measures construction cost vs dimension at the maximum fault
// budget.
func F2(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "F2",
		Title: "Construction time and output size vs n (|Fv| = n-3)",
		Caption: "Wall time for one embedding including self-verification; the algorithm is " +
			"near-linear in the output (n! ring entries of 8 bytes).",
		Headers: []string{"n", "|Fv|", "ring len", "blocks", "time", "ring MiB"},
	}
	top := cfg.MaxN + 1
	if top > 10 {
		top = 10
	}
	clock := cfg.clock()
	for n := 4; n <= top; n++ {
		k := faults.MaxTolerated(n)
		rng := rand.New(rand.NewSource(int64(n)))
		fs := faults.RandomVertices(n, k, rng)
		start := clock.Now()
		res, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}
		elapsed := obs.Since(clock, start).Round(10 * time.Microsecond)
		t.AddRow(n, k, res.Len(), res.Blocks, elapsed,
			float64(res.Len()*8)/(1<<20))
	}
	return []*Table{t}, nil
}

// F3 sweeps the fault parity mix: the algorithm always loses exactly
// 2|Fv|, while the ceiling n! - 2*max(f0, f1) relaxes as faults split
// across the bipartition — quantifying the gap Theorem 1 leaves open
// outside the worst case.
func F3(cfg SweepConfig) ([]*Table, error) {
	n := 7
	if cfg.MaxN < 7 {
		n = cfg.MaxN
	}
	k := faults.MaxTolerated(n)
	t := &Table{
		ID:    "F3",
		Title: fmt.Sprintf("Fault parity mix (n=%d, |Fv|=%d): achieved vs ceiling", n, k),
		Caption: "With j faults even / k-j odd the ceiling is n! - 2*max(j, k-j); the paper's " +
			"construction pays 2 per fault regardless, so it is exactly optimal at the " +
			"extremes (all faults one side) and leaves a gap in between. The opportunistic " +
			"extension (this library, beyond the paper) recovers the gap by routing one " +
			"faulty block per fault-parity run with 23 vertices instead of 22.",
		Headers: []string{"even faults", "odd faults", "paper", "opportunistic", "guarantee", "ceiling"},
	}
	for j := 0; j <= k; j++ {
		rng := rand.New(rand.NewSource(int64(41*j + 5)))
		fs := faults.NewSet(n)
		for fs.NumVertices() < j {
			v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
			if v.Parity(n) == 0 {
				if err := fs.AddVertex(v); err != nil {
					return nil, err
				}
			}
		}
		for fs.NumVertices() < k {
			v := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
			if v.Parity(n) == 1 {
				if err := fs.AddVertex(v); err != nil {
					return nil, err
				}
			}
		}
		res, err := core.Embed(n, fs, core.Config{Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}
		opp, err := core.Embed(n, fs, core.Config{Opportunistic: true, Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}
		ceiling := check.BipartiteUpperBound(n, fs)
		t.AddRow(j, k-j, res.Len(), opp.Len(), res.Guarantee, ceiling)
	}
	return []*Table{t}, nil
}

// F4 charts the longest-path extension: guaranteed and measured path
// lengths between endpoints of equal and opposite parity.
func F4(cfg SweepConfig) ([]*Table, error) {
	n := 7
	if cfg.MaxN < 7 {
		n = cfg.MaxN
	}
	t := &Table{
		ID:    "F4",
		Title: fmt.Sprintf("Longest s-t paths (n=%d): measured vs guarantee by endpoint parity", n),
		Caption: "Extension beyond the paper (the authors' follow-up problem): a healthy s-t " +
			"path of n!-2|Fv| vertices when s, t lie in different partite sets, one fewer when " +
			"they share one — and one MORE when a faulty block can shed only its fault " +
			"(same-side endpoints, opposite-side fault).",
		Headers: []string{"|Fv|", "parity", "trials", "min len", "max len", "guarantee"},
	}
	for k := 0; k <= faults.MaxTolerated(n); k++ {
		for _, same := range []bool{false, true} {
			minLen, maxLen := 1<<62, 0
			want := perm.Factorial(n) - 2*k
			label := "opposite"
			if same {
				want--
				label = "same"
			}
			trials := 0
			for seed := 0; seed < cfg.Seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(59*seed + 10*n + k)))
				fs := faults.RandomVertices(n, k, rng)
				var s, tt perm.Code
				for {
					s = perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
					tt = perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
					if s == tt || fs.HasVertex(s) || fs.HasVertex(tt) {
						continue
					}
					if (s.Parity(n) == tt.Parity(n)) == same {
						break
					}
				}
				res, err := core.EmbedPath(n, fs, s, tt, core.Config{Obs: cfg.Obs})
				if err != nil {
					return nil, fmt.Errorf("F4 k=%d seed=%d: %w", k, seed, err)
				}
				if res.Len() < want {
					return nil, fmt.Errorf("F4 k=%d: path %d < %d", k, res.Len(), want)
				}
				trials++
				if res.Len() < minLen {
					minLen = res.Len()
				}
				if res.Len() > maxLen {
					maxLen = res.Len()
				}
			}
			t.AddRow(k, label, trials, minLen, maxLen, want)
		}
	}
	return []*Table{t}, nil
}

// F5 runs the operational campaign on the machine simulator: processors
// fail between work phases, the ring is re-embedded online, and the
// table reports availability and capacity — the system-level view of
// the paper's per-failure cost.
func F5(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "F5",
		Title: "Operational campaign (internal/sim): availability under failures",
		Caption: "Each row is a deterministic campaign: work laps interleaved with on-ring " +
			"failures and online repair (4 ticks per re-routed block). Failures absorbed by " +
			"the splice fast path re-route one block; only skeleton-invalidating failures " +
			"pay for a full re-embedding. Within the budget every failure costs exactly 2 " +
			"ring slots (guarantee column); beyond it the machine continues best-effort.",
		Headers: []string{"n", "failures", "laps", "final ring", "availability", "splices", "reembeds", "guarantee held"},
	}
	for _, n := range []int{5, 6, 7} {
		if n > cfg.MaxN {
			continue
		}
		budget := faults.MaxTolerated(n)
		for _, failures := range []int{budget, budget + 2} {
			rep, err := sim.RunCampaign(sim.CampaignConfig{
				Machine: sim.Config{
					N:                   n,
					HopCost:             1,
					ReembedCostPerBlock: 4,
					Embed:               core.Config{BestEffort: true},
					Obs:                 cfg.Obs,
				},
				Failures:    failures,
				LapsBetween: 2,
				Seed:        int64(100*n + failures),
			})
			if err != nil {
				return nil, fmt.Errorf("F5 n=%d failures=%d: %w", n, failures, err)
			}
			held := "yes"
			if !rep.GuaranteeHeld {
				held = "NO"
			}
			if failures > budget {
				held = "n/a (beyond budget)"
			}
			t.AddRow(n, failures, rep.Laps, rep.FinalRing,
				fmt.Sprintf("%.2f%%", 100*rep.Availability), rep.Splices, rep.Reembeds, held)
		}
	}
	return []*Table{t}, nil
}

// A1 tabulates the ablations DESIGN.md calls out: the canonical-block
// result cache, the Warnsdorff branch ordering in the block DFS, and
// Lemma 2's greedy separation vs naive fixed positions. Timings are
// wall-clock for a fixed workload; the structural column shows what the
// greedy protects (zero (P1) violations).
func A1(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "Ablations: block-search cache, branch ordering, greedy separation",
		Caption: "Workload for the first two rows: a full Lemma 4 sweep (every fault, every " +
			"adjacent healthy pair, 22-vertex target). The separation rows embed one " +
			"adversarially clustered instance in S_7; naive positions leave a multi-fault " +
			"block, so the n!-2|Fv| GUARANTEE no longer applies even when the measured " +
			"length survives via degraded routing.",
		Headers: []string{"variant", "workload time", "(P1) violations", "note"},
	}

	clock := cfg.clock()
	sweep := func(noCache, noHeuristic bool) (time.Duration, error) {
		start := clock.Now()
		for f := 0; f < pathsearch.BlockOrder; f++ {
			forb := uint32(1) << uint(f)
			for u := 0; u < pathsearch.BlockOrder; u++ {
				if u == f {
					continue
				}
				for a := pathsearch.Canon.Adjacency(uint8(u)) &^ forb; a != 0; a &= a - 1 {
					v := uint8(trailingZeros32(a))
					q := pathsearch.Query{From: uint8(u), To: v, ForbidV: forb, Target: 22,
						NoCache: noCache, NoHeuristic: noHeuristic}
					if _, ok := pathsearch.Canon.FindPath(q); !ok {
						return 0, fmt.Errorf("harness: Lemma 4 sweep found no 22-vertex path for %+v", q)
					}
				}
			}
		}
		return obs.Since(clock, start), nil
	}
	if _, err := sweep(false, false); err != nil { // populate the cache
		return nil, err
	}
	for _, variant := range []struct {
		label                string
		noCache, noHeuristic bool
		note                 string
	}{
		{"full engine, warm cache", false, false, "steady state: map lookups only"},
		{"no cache", true, false, "every query re-searched"},
		{"no cache, no heuristic", true, true, "plain DFS ordering"},
	} {
		d, err := sweep(variant.noCache, variant.noHeuristic)
		if err != nil {
			return nil, err
		}
		t.AddRow(variant.label, d.Round(10*time.Microsecond), "-", variant.note)
	}

	// Separation ablation.
	n := 7
	fs := faults.NewSet(n)
	base := []uint8{1, 2, 3, 4, 5, 6, 7}
	for _, p := range []int{0, 4, 5, 6} {
		v := append([]uint8{}, base...)
		v[0], v[p] = v[p], v[0]
		pp, err := perm.New(v)
		if err != nil {
			return nil, err
		}
		if err := fs.AddVertex(perm.Pack(pp)); err != nil {
			return nil, err
		}
	}
	countViolations := func(positions []int) int {
		k := 0
		for _, blk := range substar.Whole(n).PartitionSeq(positions) {
			if fs.CountIn(blk) > 1 {
				k++
			}
		}
		return k
	}
	greedy, _ := fs.SeparatingPositions()
	naive := []int{2, 3, 4}
	t.AddRow("Lemma 2 greedy positions", "-", countViolations(greedy), fmt.Sprintf("positions %v", greedy))
	t.AddRow("naive positions 2..n-3", "-", countViolations(naive), "guarantee lost: one block holds all faults")
	return []*Table{t}, nil
}

func trailingZeros32(x uint32) int {
	k := 0
	for x&1 == 0 {
		x >>= 1
		k++
	}
	return k
}

// F6 probes beyond the proven edge-fault budget: the theorem guarantees
// Hamiltonian rings only for |Fe| <= n-3, but the exact block search
// and junction backtracking often absorb many more faulty edges. The
// table reports, for random edge-fault sets past the budget, how often
// a full n! ring still comes out (best-effort mode, so the run cannot
// fail outright).
func F6(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "F6",
		Title: "Empirical edge-fault tolerance beyond the proven budget |Fe| <= n-3",
		Caption: "Strictly beyond the paper: measured behavior, not a guarantee. 'hamiltonian' " +
			"counts trials whose best-effort ring still reached n!; 'min len' is the worst " +
			"observed. Failures concentrate when faults gang up on one block or superedge.",
		Headers: []string{"n", "|Fe|", "budget", "trials", "hamiltonian", "min len", "n!"},
	}
	for _, n := range []int{6, 7} {
		if n > cfg.MaxN {
			continue
		}
		budget := faults.MaxTolerated(n)
		seen := map[int]bool{}
		for _, ke := range []int{budget, budget + 2, 2*n - 7, 3 * budget} {
			if seen[ke] {
				continue
			}
			seen[ke] = true
			ham, minLen := 0, 1<<62
			for seed := 0; seed < cfg.Seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(7*seed + 100*n + ke)))
				fs := faults.RandomEdges(n, ke, rng)
				res, err := core.Embed(n, fs, core.Config{BestEffort: true, Obs: cfg.Obs})
				if err != nil {
					return nil, fmt.Errorf("F6 n=%d ke=%d seed=%d: %w", n, ke, seed, err)
				}
				if res.Len() == perm.Factorial(n) {
					ham++
				}
				if res.Len() < minLen {
					minLen = res.Len()
				}
			}
			t.AddRow(n, ke, budget, cfg.Seeds,
				fmt.Sprintf("%d/%d", ham, cfg.Seeds), minLen, perm.Factorial(n))
		}
	}
	return []*Table{t}, nil
}

// F8 measures the streaming pipeline the ring-cursor refactor enables:
// Config.Streaming leaves the embedding in skeleton form (O(#blocks)
// memory; the ring is re-derived block by block on demand) and
// verification runs through check.RingStream one vertex at a time. The
// table contrasts the bytes a materialized ring would occupy against
// the live-heap growth observed across a streaming embed plus a full
// stream verification — the gap is the memory the cursor saves.
func F8(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "F8",
		Title: "Streaming scaling: skeleton-form embed + stream verify vs materialized ring size",
		Caption: "Each row embeds with Config.Streaming (ring never materialized) and verifies " +
			"through check.RingStream via a fresh block cursor. 'ring MiB' is what the " +
			"materialized cycle would occupy (8 bytes/vertex); 'heap delta MiB' is live-heap " +
			"growth across embed+verify measured by prof.HeapLiveBytes (GC noise makes it an " +
			"estimate, so it is reported, not asserted). Larger dimensions (the n=10 run in " +
			"EXPERIMENTS.md) go through `starring -n 10 -stream` with the runtime sampler.",
		Headers: []string{"n", "|Fv|", "ring len", "blocks", "embed", "stream verify", "ring MiB", "heap delta MiB"},
	}
	clock := cfg.clock()
	top := cfg.MaxN
	if top > 9 {
		top = 9 // n=10 belongs to the CLI-level scaling run, not the sweep
	}
	for n := 6; n <= top; n++ {
		k := faults.MaxTolerated(n)
		rng := rand.New(rand.NewSource(int64(n)))
		fs := faults.RandomVertices(n, k, rng)
		heap0 := prof.HeapLiveBytes()
		start := clock.Now()
		e, err := core.NewEmbedder(n, core.Config{Streaming: true, Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}
		p, err := e.Embed(fs)
		if err != nil {
			return nil, fmt.Errorf("F8 n=%d: %w", n, err)
		}
		embedT := obs.Since(clock, start)
		res := p.Result()
		want := res.Guarantee
		start = clock.Now()
		count, err := check.RingStream(star.New(n), p.Cursor().Next, fs, want)
		verifyT := obs.Since(clock, start)
		if err != nil {
			return nil, fmt.Errorf("F8 n=%d: stream verify: %w", n, err)
		}
		if count != res.Len() {
			return nil, fmt.Errorf("F8 n=%d: cursor emitted %d vertices, skeleton declares %d", n, count, res.Len())
		}
		delta := prof.HeapLiveBytes() - heap0
		if delta < 0 {
			delta = 0 // a GC ran mid-measurement
		}
		t.AddRow(n, k, count, res.Blocks,
			embedT.Round(10*time.Microsecond), verifyT.Round(10*time.Microsecond),
			float64(count*8)/(1<<20), float64(delta)/(1<<20))
	}
	return []*Table{t}, nil
}

// F7 measures the incremental repair engine: seeded campaigns of
// random on-ring failures drive core.Plan.Repair, timing every repair
// and classifying it as a splice (one 24-vertex block re-routed and
// spliced in place) or a full rebuild, then timing a cold core.Embed
// of the same final fault set for reference. The speedup column is the
// headline claim of the Plan/Repair pipeline: the splice fast path is
// orders of magnitude cheaper than cold embedding because it searches
// one S_4 block instead of re-running the whole n! pipeline.
func F7(cfg SweepConfig) ([]*Table, error) {
	t := &Table{
		ID:    "F7",
		Title: "Repair latency: splice fast path vs full rebuild vs cold embedding",
		Caption: "Seeded campaigns fail random on-ring processors up to the budget n-3; every " +
			"repaired ring is re-checked against n!-2|Fv|. 'cold' is a fresh Embed of the " +
			"final fault set; 'splice speedup' is mean cold / mean splice ('n/a' when no " +
			"splice occurred or under a zero-width test clock). Splices win by roughly the " +
			"n!/24 block ratio; rebuilds cost a full cold embedding.",
		Headers: []string{"n", "blocks", "repairs", "splices", "rebuilds",
			"mean splice", "mean rebuild", "mean cold", "splice speedup"},
	}
	clock := cfg.clock()
	for n := 5; n <= cfg.MaxN; n++ {
		var spliceTime, rebuildTime, coldTime time.Duration
		repairs, splices, rebuilds := 0, 0, 0
		blocks := perm.Factorial(n) / pathsearch.BlockOrder
		for seed := 0; seed < cfg.Seeds; seed++ {
			e, err := core.NewEmbedder(n, core.Config{Obs: cfg.Obs})
			if err != nil {
				return nil, err
			}
			p, err := e.Embed(nil)
			if err != nil {
				return nil, fmt.Errorf("F7 n=%d seed=%d: %w", n, seed, err)
			}
			rng := rand.New(rand.NewSource(int64(23*seed + 1000*n)))
			for i := 0; i < faults.MaxTolerated(n); i++ {
				v := p.RingAt(rng.Intn(p.RingLen()))
				start := clock.Now()
				rep, err := p.Repair(v)
				d := obs.Since(clock, start)
				if err != nil {
					return nil, fmt.Errorf("F7 n=%d seed=%d fault %d: %w", n, seed, i, err)
				}
				repairs++
				switch rep.Outcome {
				case core.RepairSplice:
					splices++
					spliceTime += d
				case core.RepairRebuild:
					rebuilds++
					rebuildTime += d
				}
				res := p.Result()
				if !res.Guaranteed || res.Len() < res.Guarantee {
					return nil, fmt.Errorf("F7 n=%d seed=%d: repaired ring %d under guarantee %d",
						n, seed, res.Len(), res.Guarantee)
				}
			}
			start := clock.Now()
			if _, err := core.Embed(n, p.Faults(), core.Config{Obs: cfg.Obs}); err != nil {
				return nil, fmt.Errorf("F7 n=%d seed=%d: cold embed of final fault set: %w",
					n, seed, err)
			}
			coldTime += obs.Since(clock, start)
		}
		// Mean cells keep the exact nanosecond value typed; only the text
		// is rounded. Zero-count means render "n/a" with no value, so
		// machine consumers skip them instead of reading 0 ns.
		mean := func(total time.Duration, count int) (time.Duration, Cell) {
			if count == 0 {
				return 0, TextCell("n/a")
			}
			m := total / time.Duration(count)
			return m, Cell{Text: m.Round(time.Microsecond).String(), NS: ptrInt64(int64(m))}
		}
		meanSplice, spliceCell := mean(spliceTime, splices)
		_, rebuildCell := mean(rebuildTime, rebuilds)
		meanCold, coldCell := mean(coldTime, cfg.Seeds)
		speedup := TextCell("n/a")
		if splices > 0 && meanSplice > 0 {
			ratio := float64(meanCold) / float64(meanSplice)
			speedup = NumCell(fmt.Sprintf("%.0fx", ratio), ratio)
		}
		t.AddRow(n, blocks, repairs, splices, rebuilds, spliceCell, rebuildCell, coldCell, speedup)
	}
	return []*Table{t}, nil
}
