package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment end to end in quick
// mode; each experiment self-checks its claims and errors on violation,
// so a pass here certifies the full evaluation once more.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := SweepConfig{Quick: true}.Defaults()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s produced an empty table", e.ID)
				}
				if len(tab.Headers) == 0 {
					t.Fatalf("%s has no headers", e.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Headers) {
						t.Fatalf("%s: ragged row %v", e.ID, row)
					}
				}
				// No experiment may report a violation marker.
				for _, row := range tab.Rows {
					for _, cell := range row {
						if cell.Text == "NO" {
							t.Fatalf("%s reports a violated claim: %v", e.ID, row)
						}
					}
				}
			}
		})
	}
}

func TestRunByID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "T2", SweepConfig{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== T2") {
		t.Fatalf("missing header in output: %q", out[:80])
	}
	if err := Run(&buf, "nope", SweepConfig{Quick: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "demo",
		Caption: "a caption that should wrap when it grows long enough to need it",
		Headers: []string{"a", "long-header"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("wide-cell-value", "x")

	var buf bytes.Buffer
	tab.Fprint(&buf)
	text := buf.String()
	if !strings.Contains(text, "== X: demo ==") || !strings.Contains(text, "2.50") {
		t.Fatalf("text rendering wrong:\n%s", text)
	}
	lines := strings.Split(text, "\n")
	if !strings.HasPrefix(lines[1], "a ") {
		t.Fatalf("header row wrong: %q", lines[1])
	}

	buf.Reset()
	tab.Markdown(&buf)
	md := buf.String()
	if !strings.Contains(md, "### X: demo") || !strings.Contains(md, "| a | long-header |") {
		t.Fatalf("markdown rendering wrong:\n%s", md)
	}
}

func TestSweepConfigDefaults(t *testing.T) {
	c := SweepConfig{}.Defaults()
	if c.MaxN != 8 || c.Seeds != 10 {
		t.Fatalf("defaults: %+v", c)
	}
	q := SweepConfig{Quick: true, MaxN: 9}.Defaults()
	if q.MaxN != 7 || q.Seeds != 3 {
		t.Fatalf("quick defaults: %+v", q)
	}
}
