package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCollectSpansExperiments checks Collect's table passthrough and
// the per-experiment span.
func TestCollectSpansExperiments(t *testing.T) {
	reg := obs.NewRegistry()
	tables, err := Collect("T2", SweepConfig{Quick: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || tables[0].ID != "T2" {
		t.Fatalf("tables = %+v", tables)
	}
	if got := reg.Histogram("harness.exp.T2").Stats().Count; got != 1 {
		t.Errorf("harness.exp.T2 span count = %d, want 1", got)
	}
	if _, err := Collect("nope", SweepConfig{Quick: true}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestF2UsesInjectedClock pins F2's wall-time column with a manual
// clock: every measured duration must be exactly zero, proving no
// direct time.Now call leaks past the obs.Clock seam.
func TestF2UsesInjectedClock(t *testing.T) {
	clock := obs.NewManual(time.Unix(0, 0))
	cfg := SweepConfig{MaxN: 4, Seeds: 1, Clock: clock}
	tables, err := F2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if got := row[4].Text; got != "0s" {
			t.Errorf("time column %q, want 0s under a frozen clock (row %v)", got, row)
		}
		if row[4].NS == nil || *row[4].NS != 0 {
			t.Errorf("time column carries no zero typed value: %+v", row[4])
		}
	}
	if !strings.Contains(strings.Join(tables[0].Headers, " "), "time") {
		t.Fatalf("F2 layout changed: %v", tables[0].Headers)
	}
}
