package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/perm"
	"repro/internal/substar"
)

// Generators produce reproducible fault sets for the evaluation harness.
// All take an explicit *rand.Rand so that experiments are seeded and
// repeatable.

// RandomVertices adds k distinct uniformly random faulty vertices.
func RandomVertices(n, k int, rng *rand.Rand) *Set {
	s := NewSet(n)
	total := perm.Factorial(n)
	for s.NumVertices() < k {
		v := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		s.addVertex(v)
	}
	return s
}

// SamePartiteVertices adds k distinct random faulty vertices all drawn
// from one partite set (parity 0 or 1). This is the worst case of the
// paper: with all faults on one side of the bipartition, no cycle longer
// than n!-2k can avoid them, so the algorithm's output is exactly
// optimal on these sets.
func SamePartiteVertices(n, k, parity int, rng *rand.Rand) *Set {
	s := NewSet(n)
	total := perm.Factorial(n)
	for s.NumVertices() < k {
		v := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		if v.Parity(n) != parity {
			continue
		}
		s.addVertex(v)
	}
	return s
}

// ClusteredVertices adds k distinct random faulty vertices all lying in
// one random embedded S_m (m >= 2, k <= m!). This is the regime the
// Latifi-Bagherzadeh baseline was designed for.
func ClusteredVertices(n, k, m int, rng *rand.Rand) (*Set, substar.Pattern, error) {
	if m < 2 || m > n {
		return nil, substar.Pattern{}, fmt.Errorf("faults: cluster order %d out of range [2,%d]", m, n)
	}
	if k > perm.Factorial(m) {
		return nil, substar.Pattern{}, fmt.Errorf("faults: %d faults cannot fit in an S_%d (%d vertices)", k, m, perm.Factorial(m))
	}
	// Pick a random embedded S_m: fix n-m random positions (>= 2) to the
	// symbols of a random permutation.
	base := perm.Pack(perm.Unrank(n, rng.Intn(perm.Factorial(n))))
	positions := rng.Perm(n - 1) // values 0..n-2 representing positions 2..n
	pattern := substar.Whole(n)
	for i := 0; i < n-m; i++ {
		pos := positions[i] + 2
		pattern = pattern.Fix(pos, base.Symbol(pos))
	}
	vertices := pattern.Vertices(nil)
	s := NewSet(n)
	order := rng.Perm(len(vertices))
	for i := 0; i < k; i++ {
		s.addVertex(vertices[order[i]])
	}
	return s, pattern, nil
}

// SpreadVertices adds k faulty vertices chosen greedily to be pairwise
// far apart: each new fault maximizes its minimum star-graph distance to
// the faults chosen so far, over a random candidate pool. This
// adversarially defeats clustering-based algorithms.
func SpreadVertices(n, k int, rng *rand.Rand, dist func(a, b perm.Code) int) *Set {
	const pool = 32
	s := NewSet(n)
	total := perm.Factorial(n)
	for s.NumVertices() < k {
		var best perm.Code
		bestScore := -1
		for c := 0; c < pool; c++ {
			v := perm.Pack(perm.Unrank(n, rng.Intn(total)))
			if s.HasVertex(v) {
				continue
			}
			score := 1 << 30
			for _, f := range s.Vertices() {
				if d := dist(v, f); d < score {
					score = d
				}
			}
			if s.NumVertices() == 0 {
				score = 0
			}
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		if bestScore >= 0 {
			s.addVertex(best)
		}
	}
	return s
}

// RandomEdges adds k distinct uniformly random faulty edges.
func RandomEdges(n, k int, rng *rand.Rand) *Set {
	s := NewSet(n)
	total := perm.Factorial(n)
	for s.NumEdges() < k {
		u := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		dim := 2 + rng.Intn(n-1)
		s.addEdge(NewEdge(u, u.SwapFirst(dim)))
	}
	return s
}

// Mixed adds kv random faulty vertices and ke random faulty edges, with
// no faulty edge incident to a faulty vertex (a faulty endpoint already
// removes its edges from consideration).
func Mixed(n, kv, ke int, rng *rand.Rand) *Set {
	s := NewSet(n)
	total := perm.Factorial(n)
	for s.NumVertices() < kv {
		s.addVertex(perm.Pack(perm.Unrank(n, rng.Intn(total))))
	}
	for s.NumEdges() < ke {
		u := perm.Pack(perm.Unrank(n, rng.Intn(total)))
		dim := 2 + rng.Intn(n-1)
		v := u.SwapFirst(dim)
		if s.HasVertex(u) || s.HasVertex(v) {
			continue
		}
		s.addEdge(NewEdge(u, v))
	}
	return s
}

// FromStrings builds a vertex-fault set from permutation strings, for
// tests and the command-line tools.
func FromStrings(n int, vs ...string) (*Set, error) {
	s := NewSet(n)
	for _, str := range vs {
		p, err := perm.Parse(str)
		if err != nil {
			return nil, err
		}
		if p.N() != n {
			return nil, fmt.Errorf("faults: %q has dimension %d, want %d", str, p.N(), n)
		}
		if err := s.AddVertex(perm.Pack(p)); err != nil {
			return nil, err
		}
	}
	return s, nil
}
